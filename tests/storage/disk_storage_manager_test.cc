#include "storage/disk_storage_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/fault_injection.h"

namespace modb::storage {
namespace {

namespace fs = std::filesystem;

class DiskStorageManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("modb_disk_mgr_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string PageFile() const { return (dir_ / "index.pages").string(); }

  fs::path dir_;
};

TEST_F(DiskStorageManagerTest, WriteReadRoundTripAndPayloadCap) {
  DiskStorageManager::Options options;
  options.page_size = 512;
  auto mgr = DiskStorageManager::Open(PageFile(), options);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ((*mgr)->page_payload_size(), 512 - kPageHeaderSize);

  const auto id = (*mgr)->AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*mgr)->WritePage(*id, "paged bytes").ok());
  EXPECT_EQ(*(*mgr)->ReadPage(*id), "paged bytes");

  const std::string too_big(512 - kPageHeaderSize + 1, 'x');
  EXPECT_FALSE((*mgr)->WritePage(*id, too_big).ok());
  const std::string max_fit(512 - kPageHeaderSize, 'y');
  EXPECT_TRUE((*mgr)->WritePage(*id, max_fit).ok());
  EXPECT_EQ(*(*mgr)->ReadPage(*id), max_fit);
}

TEST_F(DiskStorageManagerTest, UnsyncedPagesAreReadableBeforeFlush) {
  // Appended bytes may sit in the writer's buffer; the tail cache must
  // serve them anyway.
  DiskStorageManager::Options options;
  options.page_size = 512;
  options.sync_watermark_pages = 1000;  // never auto-sync
  auto mgr = DiskStorageManager::Open(PageFile(), options);
  ASSERT_TRUE(mgr.ok());
  for (int i = 0; i < 10; ++i) {
    const auto id = (*mgr)->AllocatePage();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE((*mgr)->WritePage(*id, "p" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*(*mgr)->ReadPage(static_cast<PageId>(i)),
              "p" + std::to_string(i));
  }
}

TEST_F(DiskStorageManagerTest, CommittedStateSurvivesReopen) {
  DiskStorageManager::Options options;
  options.page_size = 512;
  {
    auto mgr = DiskStorageManager::Open(PageFile(), options);
    ASSERT_TRUE(mgr.ok());
    for (int i = 0; i < 5; ++i) {
      const auto id = (*mgr)->AllocatePage();
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE((*mgr)->WritePage(*id, "page " + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*mgr)->FreePage(3).ok());
    ASSERT_TRUE((*mgr)->Flush().ok());
  }
  DiskStorageManager::Options reopen = options;
  reopen.truncate = false;
  auto mgr = DiskStorageManager::Open(PageFile(), reopen);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ((*mgr)->num_pages(), 4u);
  for (int i = 0; i < 5; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(*(*mgr)->ReadPage(static_cast<PageId>(i)),
              "page " + std::to_string(i));
  }
  // The freed id is recycled, not leaked, across the reopen.
  const auto id = (*mgr)->AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 3u);
}

TEST_F(DiskStorageManagerTest, UncommittedWritesDiscardedByReopen) {
  // The checkpoint contract: page versions not covered by a Flush must not
  // resurrect after a crash+reopen.
  DiskStorageManager::Options options;
  options.page_size = 512;
  options.sync_watermark_pages = 1000;
  {
    auto mgr = DiskStorageManager::Open(PageFile(), options);
    ASSERT_TRUE(mgr.ok());
    const auto id = (*mgr)->AllocatePage();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE((*mgr)->WritePage(*id, "committed").ok());
    ASSERT_TRUE((*mgr)->Flush().ok());
    ASSERT_TRUE((*mgr)->WritePage(*id, "uncommitted overwrite").ok());
    // No flush: the manager is dropped with the new version in flight.
  }
  DiskStorageManager::Options reopen = options;
  reopen.truncate = false;
  auto mgr = DiskStorageManager::Open(PageFile(), reopen);
  ASSERT_TRUE(mgr.ok());
  EXPECT_EQ(*(*mgr)->ReadPage(0), "committed");
}

TEST_F(DiskStorageManagerTest, ReopenCompactsGarbageVersions) {
  DiskStorageManager::Options options;
  options.page_size = 512;
  std::uint64_t bytes_before_compaction = 0;
  {
    auto mgr = DiskStorageManager::Open(PageFile(), options);
    ASSERT_TRUE(mgr.ok());
    const auto id = (*mgr)->AllocatePage();
    ASSERT_TRUE(id.ok());
    // 50 versions of one page: 49 are log garbage.
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*mgr)->WritePage(*id, "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*mgr)->Flush().ok());
    bytes_before_compaction = (*mgr)->file_bytes();
  }
  DiskStorageManager::Options reopen = options;
  reopen.truncate = false;
  auto mgr = DiskStorageManager::Open(PageFile(), reopen);
  ASSERT_TRUE(mgr.ok());
  EXPECT_EQ(*(*mgr)->ReadPage(0), "v49");
  EXPECT_LT((*mgr)->file_bytes(), bytes_before_compaction);
}

TEST_F(DiskStorageManagerTest, CorruptedPageDetectedByCrc) {
  DiskStorageManager::Options options;
  options.page_size = 512;
  options.sync_watermark_pages = 1;  // sync every page so bytes hit the file
  auto mgr = DiskStorageManager::Open(PageFile(), options);
  ASSERT_TRUE(mgr.ok());
  const auto id = (*mgr)->AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*mgr)->WritePage(*id, "precious payload").ok());
  ASSERT_TRUE((*mgr)->Flush().ok());
  // Rot a payload byte in the page's slot on disk (header is 28 bytes).
  ASSERT_TRUE(util::FlipFileByte(PageFile(), kPageHeaderSize + 3).ok());
  const auto back = (*mgr)->ReadPage(*id);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), util::StatusCode::kInternal);
  EXPECT_NE(back.status().message().find("corrupt"), std::string::npos);
}

TEST_F(DiskStorageManagerTest, TornCommitFallsBackToPreviousCommit) {
  // Chop bytes off the tail (a torn final commit record): reopen must land
  // on the previous durable commit, not fail and not serve the torn state.
  DiskStorageManager::Options options;
  options.page_size = 512;
  {
    auto mgr = DiskStorageManager::Open(PageFile(), options);
    ASSERT_TRUE(mgr.ok());
    const auto id = (*mgr)->AllocatePage();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE((*mgr)->WritePage(*id, "epoch one").ok());
    ASSERT_TRUE((*mgr)->Flush().ok());
    ASSERT_TRUE((*mgr)->WritePage(*id, "epoch two").ok());
    ASSERT_TRUE((*mgr)->Flush().ok());
  }
  const auto size = util::FileSize(PageFile());
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(util::TruncateFile(PageFile(), *size - 100).ok());
  DiskStorageManager::Options reopen = options;
  reopen.truncate = false;
  auto mgr = DiskStorageManager::Open(PageFile(), reopen);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ(*(*mgr)->ReadPage(0), "epoch one");
}

TEST_F(DiskStorageManagerTest, InjectedAppendFaultPoisonsWriterButKeepsReads) {
  util::FaultPlan plan;
  plan.fail_appends_after = 2;  // page 0, page 1, then the window opens
  plan.fail_appends_count = 1;
  util::FaultInjector injector(plan);
  DiskStorageManager::Options options;
  options.page_size = 512;
  options.sync_watermark_pages = 1;
  options.file_factory = injector.factory();
  auto mgr = DiskStorageManager::Open(PageFile(), options);
  ASSERT_TRUE(mgr.ok());
  const auto a = (*mgr)->AllocatePage();
  const auto b = (*mgr)->AllocatePage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*mgr)->WritePage(*a, "safe").ok());
  ASSERT_TRUE((*mgr)->WritePage(*b, "also safe").ok());
  // This append dies in the fault window; the writer is poisoned.
  EXPECT_FALSE((*mgr)->WritePage(*b, "doomed").ok());
  EXPECT_EQ(injector.injected_append_faults(), 1u);
  EXPECT_FALSE((*mgr)->WritePage(*a, "still doomed").ok());
  EXPECT_FALSE((*mgr)->Flush().ok());
  // Previously synced pages stay readable.
  EXPECT_EQ(*(*mgr)->ReadPage(*a), "safe");
  EXPECT_EQ(*(*mgr)->ReadPage(*b), "also safe");
  // Reset reopens a fresh generation and clears the poison.
  ASSERT_TRUE((*mgr)->Reset().ok());
  const auto fresh = (*mgr)->AllocatePage();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*mgr)->WritePage(*fresh, "recovered").ok());
  EXPECT_EQ(*(*mgr)->ReadPage(*fresh), "recovered");
}

TEST_F(DiskStorageManagerTest, RejectsUndersizedPageSize) {
  DiskStorageManager::Options options;
  options.page_size = 64;  // < kMinPageSize
  EXPECT_FALSE(DiskStorageManager::Open(PageFile(), options).ok());
}

TEST_F(DiskStorageManagerTest, StatsTrackPageTraffic) {
  DiskStorageManager::Options options;
  options.page_size = 512;
  options.sync_watermark_pages = 1;
  auto mgr = DiskStorageManager::Open(PageFile(), options);
  ASSERT_TRUE(mgr.ok());
  const auto id = (*mgr)->AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*mgr)->WritePage(*id, "abcd").ok());
  ASSERT_TRUE((*mgr)->ReadPage(*id).ok());
  ASSERT_TRUE((*mgr)->Flush().ok());
  const StorageStats stats = (*mgr)->stats();
  EXPECT_EQ(stats.page_allocs, 1u);
  EXPECT_EQ(stats.page_writes, 1u);
  EXPECT_EQ(stats.page_reads, 1u);
  EXPECT_GE(stats.flushes, 1u);
  EXPECT_EQ(stats.bytes_written, 4u);
  EXPECT_EQ(stats.bytes_read, 4u);
}

}  // namespace
}  // namespace modb::storage
