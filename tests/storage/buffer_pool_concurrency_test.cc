#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/memory_storage_manager.h"

namespace modb::storage {
namespace {

std::shared_ptr<void> Obj(const std::string& s) {
  return std::make_shared<std::string>(s);
}

// The pool's contract is "internally synchronised": concurrent readers may
// fault pages in, advance the clock, and pin/unpin simultaneously. These
// tests exist to run under TSan (the `Concurrent` name matches the tsan
// ctest filter), where any lock hole in the pool shows up as a race.

TEST(BufferPoolConcurrentTest, ParallelFetchOfSharedWorkingSet) {
  MemoryStorageManager mgr;
  BufferPool pool(&mgr, StringPageCodec(), BufferPoolOptions{});
  constexpr std::size_t kPages = 64;
  std::vector<PageId> ids;
  for (std::size_t i = 0; i < kPages; ++i) {
    auto h = pool.Create(Obj("page " + std::to_string(i)));
    ASSERT_TRUE(h.ok());
    ids.push_back(h->id());
  }
  ASSERT_TRUE(pool.FlushDirty().ok());

  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 2000;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        const std::size_t slot =
            (static_cast<std::size_t>(t) * 31 + static_cast<std::size_t>(i)) %
            kPages;
        auto h = pool.Fetch(ids[slot]);
        if (!h.ok()) {
          ++mismatches;
          continue;
        }
        const auto& s = *static_cast<const std::string*>(h->get());
        if (s != "page " + std::to_string(slot)) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(pool.stats().hits,
            static_cast<std::uint64_t>(kThreads) * kReadsPerThread);
}

TEST(BufferPoolConcurrentTest, ParallelFaultInUnderEvictionPressure) {
  // Small pool, large working set: threads continuously miss, fault pages
  // in, and push each other's frames out. Pins must keep every frame a
  // thread is reading alive, and the clock state must stay consistent.
  MemoryStorageManager mgr;
  BufferPoolOptions options;
  options.capacity_pages = 8;
  BufferPool pool(&mgr, StringPageCodec(), options);
  constexpr std::size_t kPages = 64;
  std::vector<PageId> ids;
  for (std::size_t i = 0; i < kPages; ++i) {
    auto h = pool.Create(Obj("v" + std::to_string(i)));
    ASSERT_TRUE(h.ok());
    ids.push_back(h->id());
  }
  ASSERT_TRUE(pool.FlushDirty().ok());
  // Shrink residency down to the cap before the storm.
  for (std::size_t i = 0; i + options.capacity_pages < kPages; ++i) {
    auto h = pool.Fetch(ids[i]);
    ASSERT_TRUE(h.ok());
  }

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 1500;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t state = static_cast<std::uint64_t>(t) + 1;
      for (int i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const std::size_t slot = static_cast<std::size_t>(state >> 33) % kPages;
        auto h = pool.Fetch(ids[slot]);
        if (!h.ok()) {
          ++errors;
          continue;
        }
        if (*static_cast<const std::string*>(h->get()) !=
            "v" + std::to_string(slot)) {
          ++errors;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(pool.stats().evictions, 0u);
  // Clean frames only: eviction pressure must not have written anything
  // beyond the initial flush.
  EXPECT_EQ(pool.stats().writebacks, static_cast<std::uint64_t>(kPages));
}

TEST(BufferPoolConcurrentTest, WritersOnDisjointPagesWithSharedPoolState) {
  // One writer per page: each thread repeatedly pins ITS page, mutates the
  // object, marks it dirty, and unpins. The objects are disjoint (mutating
  // a pinned object is the client's concern, and these clients never
  // share one) but the pool bookkeeping — frame map, pin counts, dirty
  // bits, stats — is hammered from every thread at once.
  MemoryStorageManager mgr;
  BufferPool pool(&mgr, StringPageCodec(), BufferPoolOptions{});
  constexpr int kWriters = 8;
  std::vector<PageId> ids;
  for (int i = 0; i < kWriters; ++i) {
    auto h = pool.Create(Obj("0"));
    ASSERT_TRUE(h.ok());
    ids.push_back(h->id());
  }

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 1; i <= 1000; ++i) {
        auto h = pool.Fetch(ids[static_cast<std::size_t>(w)]);
        if (!h.ok()) {
          ++errors;
          continue;
        }
        *static_cast<std::string*>(h->get()) = std::to_string(i);
        h->MarkDirty();
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(pool.FlushDirty().ok());
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(*mgr.ReadPage(ids[static_cast<std::size_t>(w)]), "1000");
  }
}

}  // namespace
}  // namespace modb::storage
