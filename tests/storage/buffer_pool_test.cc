#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "storage/disk_storage_manager.h"
#include "storage/memory_storage_manager.h"
#include "util/fault_injection.h"

namespace modb::storage {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<void> Obj(const std::string& s) {
  return std::make_shared<std::string>(s);
}

const std::string& Str(const BufferPool::Handle& h) {
  return *static_cast<const std::string*>(h.get());
}

TEST(BufferPoolTest, CreateFetchRoundTripWithoutStorageTraffic) {
  MemoryStorageManager mgr;
  BufferPool pool(&mgr, StringPageCodec(), BufferPoolOptions{});
  auto h = pool.Create(Obj("cached object"));
  ASSERT_TRUE(h.ok());
  const PageId id = h->id();
  h->Release();

  // A fetch of a resident frame is a pure cache hit: no storage read.
  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Str(*again), "cached object");
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
  EXPECT_EQ(mgr.stats().page_reads, 0u);
  EXPECT_EQ(mgr.stats().page_writes, 0u);  // dirty, but not yet written back
}

TEST(BufferPoolTest, PinRefcountsBlockEviction) {
  MemoryStorageManager mgr;
  BufferPoolOptions options;
  options.capacity_pages = 1;  // every admit evicts the previous frame
  BufferPool pool(&mgr, StringPageCodec(), options);

  auto pinned = pool.Create(Obj("pinned"));
  ASSERT_TRUE(pinned.ok());
  auto second = pool.Fetch(pinned->id());  // second pin on the same frame
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(pool.pinned_frames(), 1u);

  // Admitting another frame cannot evict the pinned one: the pool
  // overflows its soft cap instead.
  auto other = pool.Create(Obj("other"));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(pool.num_frames(), 2u);
  EXPECT_GE(pool.stats().overflow_frames, 1u);
  EXPECT_EQ(pool.stats().evictions, 0u);

  // Dropping one handle keeps the frame pinned; dropping both unpins it.
  second->Release();
  EXPECT_EQ(pool.pinned_frames(), 2u);  // both frames still hold one pin
  other->Release();
  pinned->Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, ClockEvictsInSecondChanceOrder) {
  MemoryStorageManager mgr;
  BufferPoolOptions options;
  options.capacity_pages = 2;
  BufferPool pool(&mgr, StringPageCodec(), options);

  auto a = pool.Create(Obj("a"));
  auto b = pool.Create(Obj("b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const PageId id_a = a->id();
  const PageId id_b = b->id();
  a->Release();
  b->Release();

  // Both frames carry the reference bit. The first admit over budget
  // sweeps the clock: a's bit is cleared first (hand order), then b's,
  // then a — the oldest un-referenced frame — is evicted.
  auto c = pool.Create(Obj("c"));
  ASSERT_TRUE(c.ok());
  c->Release();
  EXPECT_EQ(pool.stats().evictions, 1u);

  // a was evicted (written back), b survived: fetching b is a hit,
  // fetching a is a miss that faults it back in.
  const auto hits_before = pool.stats().hits;
  auto b2 = pool.Fetch(id_b);
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(pool.stats().hits, hits_before + 1);
  b2->Release();
  const auto misses_before = pool.stats().misses;
  auto a2 = pool.Fetch(id_a);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(Str(*a2), "a");
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
}

TEST(BufferPoolTest, ReferenceBitGrantsSecondChance) {
  MemoryStorageManager mgr;
  BufferPoolOptions options;
  options.capacity_pages = 3;
  BufferPool pool(&mgr, StringPageCodec(), options);

  auto a = pool.Create(Obj("a"));
  auto b = pool.Create(Obj("b"));
  auto c = pool.Create(Obj("c"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  const PageId id_b = b->id();
  const PageId id_c = c->id();
  a->Release();
  b->Release();
  c->Release();

  // Admitting d sweeps the full ring (clearing every bit) and evicts a,
  // leaving b and c with cleared bits and d freshly referenced.
  auto d = pool.Create(Obj("d"));
  ASSERT_TRUE(d.ok());
  d->Release();
  ASSERT_EQ(pool.stats().evictions, 1u);

  // Touch b: its reference bit is set again. The next eviction reaches b
  // first, grants it the second chance (clears the bit, moves on), and
  // takes c — the frame that was NOT recently used.
  pool.Fetch(id_b)->Release();
  auto e = pool.Create(Obj("e"));
  ASSERT_TRUE(e.ok());
  e->Release();
  ASSERT_EQ(pool.stats().evictions, 2u);

  const auto misses_before = pool.stats().misses;
  pool.Fetch(id_b)->Release();
  EXPECT_EQ(pool.stats().misses, misses_before) << "b must still be resident";
  auto c2 = pool.Fetch(id_c);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(pool.stats().misses, misses_before + 1) << "c must have been evicted";
  EXPECT_EQ(Str(*c2), "c");
}

TEST(BufferPoolTest, DirtyFramesWrittenBackOnEviction) {
  MemoryStorageManager mgr;
  BufferPoolOptions options;
  options.capacity_pages = 1;
  BufferPool pool(&mgr, StringPageCodec(), options);

  auto a = pool.Create(Obj("dirty payload"));
  ASSERT_TRUE(a.ok());
  const PageId id_a = a->id();
  a->Release();  // Create leaves the frame dirty

  auto b = pool.Create(Obj("b"));
  ASSERT_TRUE(b.ok());
  b->Release();
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.stats().writebacks, 1u);
  // The evicted object round-trips through storage.
  EXPECT_EQ(*mgr.ReadPage(id_a), "dirty payload");

  // Faulting it back and evicting again without MarkDirty: clean frames
  // are dropped without a second write.
  auto a2 = pool.Fetch(id_a);
  ASSERT_TRUE(a2.ok());
  a2->Release();
  const auto writebacks = pool.stats().writebacks;
  auto c = pool.Create(Obj("c"));
  ASSERT_TRUE(c.ok());
  c->Release();
  EXPECT_EQ(pool.stats().writebacks, writebacks);
}

TEST(BufferPoolTest, FlushDirtyWritesOnlyDirtyFrames) {
  MemoryStorageManager mgr;
  BufferPool pool(&mgr, StringPageCodec(), BufferPoolOptions{});

  auto a = pool.Create(Obj("a"));
  auto b = pool.Create(Obj("b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const PageId id_a = a->id();
  a->Release();
  b->Release();
  EXPECT_EQ(pool.dirty_frames(), 2u);
  ASSERT_TRUE(pool.FlushDirty().ok());
  EXPECT_EQ(pool.dirty_frames(), 0u);
  EXPECT_EQ(pool.stats().writebacks, 2u);
  EXPECT_EQ(mgr.stats().flushes, 1u);

  // A quiescent pool flushes nothing (the incremental-checkpoint claim).
  ASSERT_TRUE(pool.FlushDirty().ok());
  EXPECT_EQ(pool.stats().writebacks, 2u);

  // Mutate one page: exactly one frame goes back out.
  auto a2 = pool.Fetch(id_a);
  ASSERT_TRUE(a2.ok());
  *static_cast<std::string*>(a2->get()) = "a mutated";
  a2->MarkDirty();
  a2->Release();
  ASSERT_TRUE(pool.FlushDirty().ok());
  EXPECT_EQ(pool.stats().writebacks, 3u);
  EXPECT_EQ(*mgr.ReadPage(id_a), "a mutated");
}

TEST(BufferPoolTest, FreeRefusesPinnedFrames) {
  MemoryStorageManager mgr;
  BufferPool pool(&mgr, StringPageCodec(), BufferPoolOptions{});
  auto h = pool.Create(Obj("held"));
  ASSERT_TRUE(h.ok());
  const PageId id = h->id();
  const util::Status s = pool.Free(id);
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition);
  h->Release();
  EXPECT_TRUE(pool.Free(id).ok());
  EXPECT_EQ(pool.num_frames(), 0u);
  EXPECT_EQ(mgr.num_pages(), 0u);
}

TEST(BufferPoolTest, DropAllRefusesPinnedAndDropsWithoutWriteback) {
  MemoryStorageManager mgr;
  BufferPool pool(&mgr, StringPageCodec(), BufferPoolOptions{});
  auto h = pool.Create(Obj("x"));
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(pool.DropAll().ok());
  h->Release();
  ASSERT_TRUE(pool.DropAll().ok());
  EXPECT_EQ(pool.num_frames(), 0u);
  EXPECT_EQ(mgr.stats().page_writes, 0u);  // dropped dirty frame never wrote
}

TEST(BufferPoolTest, FetchMissSurfacesStorageError) {
  MemoryStorageManager mgr;
  BufferPool pool(&mgr, StringPageCodec(), BufferPoolOptions{});
  const auto missing = pool.Fetch(777);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST(BufferPoolTest, MoveOnlyHandleTransfersThePin) {
  MemoryStorageManager mgr;
  BufferPool pool(&mgr, StringPageCodec(), BufferPoolOptions{});
  auto h = pool.Create(Obj("moved"));
  ASSERT_TRUE(h.ok());
  BufferPool::Handle stolen = std::move(*h);
  EXPECT_FALSE(h->valid());
  EXPECT_TRUE(stolen.valid());
  EXPECT_EQ(pool.pinned_frames(), 1u);
  stolen.Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

// Crash between dirty-page writeback and the commit record: the reopened
// store must serve the last *committed* state, never the half-written-back
// one. This is the window the checkpoint protocol (flush pages, then
// publish snapshot) leans on.
TEST(BufferPoolTest, CrashBetweenWritebackAndCommitKeepsOldState) {
  const fs::path dir =
      fs::temp_directory_path() / "modb_pool_crash_window";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "pool.pages").string();

  util::FaultPlan plan;
  // The v1 page + commit fill the first two 512-byte slots (synced at the
  // first Flush). The crash tears the NEXT append — v2's dirty-page
  // writeback — and `lose_unsynced_on_crash` drops the torn tail the way
  // a dead page cache would.
  plan.crash_after_bytes = 1100;
  plan.lose_unsynced_on_crash = true;
  util::FaultInjector injector(plan);

  DiskStorageManager::Options options;
  options.page_size = 512;
  options.sync_watermark_pages = 1000;  // only Flush syncs
  options.file_factory = injector.factory();
  {
    auto mgr = DiskStorageManager::Open(path, options);
    ASSERT_TRUE(mgr.ok());
    BufferPool pool(mgr->get(), StringPageCodec(), BufferPoolOptions{});
    auto h = pool.Create(Obj("committed v1"));
    ASSERT_TRUE(h.ok());
    h->Release();
    ASSERT_TRUE(pool.FlushDirty().ok());  // sync #0 passes — v1 durable

    auto h2 = pool.Fetch(0);
    ASSERT_TRUE(h2.ok());
    *static_cast<std::string*>(h2->get()) = "torn v2";
    h2->MarkDirty();
    h2->Release();
    // The writeback append tears mid-crash: the flush must report the
    // failure, so the caller never publishes the checkpoint built on it.
    EXPECT_FALSE(pool.FlushDirty().ok());
    EXPECT_TRUE(injector.crashed());
  }

  // Reopen without the injector (the "after reboot" view): the newest
  // valid commit is v1's. The torn v2 writeback is log garbage.
  DiskStorageManager::Options reopen;
  reopen.page_size = 512;
  reopen.truncate = false;
  auto mgr = DiskStorageManager::Open(path, reopen);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ(*(*mgr)->ReadPage(0), "committed v1");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace modb::storage
