#include "storage/memory_storage_manager.h"

#include <gtest/gtest.h>

#include <string>

#include "storage/storage_manager.h"

namespace modb::storage {
namespace {

TEST(MemoryStorageManagerTest, AllocateWriteReadRoundTrip) {
  MemoryStorageManager mgr{MemoryStorageManager::Options{}};
  const auto id = mgr.AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr.WritePage(*id, "hello pages").ok());
  const auto back = mgr.ReadPage(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello pages");
  EXPECT_EQ(mgr.num_pages(), 1u);
}

TEST(MemoryStorageManagerTest, ReadBeforeFirstWriteIsNotFound) {
  MemoryStorageManager mgr{MemoryStorageManager::Options{}};
  const auto id = mgr.AllocatePage();
  ASSERT_TRUE(id.ok());
  const auto back = mgr.ReadPage(*id);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), util::StatusCode::kNotFound);
}

TEST(MemoryStorageManagerTest, ReadOfUnknownIdIsNotFound) {
  MemoryStorageManager mgr{MemoryStorageManager::Options{}};
  EXPECT_EQ(mgr.ReadPage(12345).status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(mgr.ReadPage(kInvalidPageId).status().code(),
            util::StatusCode::kNotFound);
}

TEST(MemoryStorageManagerTest, WriteReplacesPayload) {
  MemoryStorageManager mgr{MemoryStorageManager::Options{}};
  const auto id = mgr.AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr.WritePage(*id, "v1").ok());
  ASSERT_TRUE(mgr.WritePage(*id, "version two").ok());
  EXPECT_EQ(*mgr.ReadPage(*id), "version two");
}

TEST(MemoryStorageManagerTest, FreedIdsAreRecycled) {
  MemoryStorageManager mgr{MemoryStorageManager::Options{}};
  const auto a = mgr.AllocatePage();
  const auto b = mgr.AllocatePage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(mgr.WritePage(*b, "doomed").ok());
  ASSERT_TRUE(mgr.FreePage(*b).ok());
  EXPECT_EQ(mgr.num_pages(), 1u);
  // The freed id comes back, and its old payload does not.
  const auto again = mgr.AllocatePage();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *b);
  EXPECT_EQ(mgr.ReadPage(*again).status().code(), util::StatusCode::kNotFound);
}

TEST(MemoryStorageManagerTest, DoubleFreeAndUnknownFreeFail) {
  MemoryStorageManager mgr{MemoryStorageManager::Options{}};
  const auto id = mgr.AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr.FreePage(*id).ok());
  EXPECT_FALSE(mgr.FreePage(*id).ok());
  EXPECT_FALSE(mgr.FreePage(999).ok());
}

TEST(MemoryStorageManagerTest, PayloadSizeCapEnforced) {
  MemoryStorageManager::Options options;
  options.page_payload_size = 8;
  MemoryStorageManager mgr{options};
  const auto id = mgr.AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(mgr.WritePage(*id, "12345678").ok());
  EXPECT_FALSE(mgr.WritePage(*id, "123456789").ok());
}

TEST(MemoryStorageManagerTest, ResetDropsPagesButKeepsStats) {
  MemoryStorageManager mgr{MemoryStorageManager::Options{}};
  const auto id = mgr.AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr.WritePage(*id, "x").ok());
  ASSERT_TRUE(mgr.ReadPage(*id).ok());
  ASSERT_TRUE(mgr.Reset().ok());
  EXPECT_EQ(mgr.num_pages(), 0u);
  EXPECT_EQ(mgr.ReadPage(*id).status().code(), util::StatusCode::kNotFound);
  // Stats are monotonic across Reset (the metrics contract).
  const StorageStats stats = mgr.stats();
  EXPECT_EQ(stats.page_allocs, 1u);
  EXPECT_EQ(stats.page_writes, 1u);
  EXPECT_EQ(stats.page_reads, 1u);
}

TEST(MemoryStorageManagerTest, StatsCountOperations) {
  MemoryStorageManager mgr{MemoryStorageManager::Options{}};
  const auto id = mgr.AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr.WritePage(*id, "abcd").ok());
  ASSERT_TRUE(mgr.ReadPage(*id).ok());
  ASSERT_TRUE(mgr.Flush().ok());
  const StorageStats stats = mgr.stats();
  EXPECT_EQ(stats.page_allocs, 1u);
  EXPECT_EQ(stats.page_writes, 1u);
  EXPECT_EQ(stats.page_reads, 1u);
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_EQ(stats.bytes_written, 4u);
  EXPECT_EQ(stats.bytes_read, 4u);
}

TEST(MemoryStorageManagerTest, OpenStorageBuildsMemoryByDefault) {
  StorageConfig config;
  const auto mgr = OpenStorage(config);
  ASSERT_TRUE(mgr.ok());
  EXPECT_EQ((*mgr)->name(), "memory");
}

TEST(MemoryStorageManagerTest, OpenStorageDiskRequiresPath) {
  StorageConfig config;
  config.kind = StorageKind::kDisk;
  EXPECT_FALSE(OpenStorage(config).ok());
}

}  // namespace
}  // namespace modb::storage
