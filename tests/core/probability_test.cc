// Tests of the MAY-answer probability refinement: position uniform over
// the uncertainty interval, in-polygon probability = in-polygon fraction
// of the interval's arc length.

#include <gtest/gtest.h>

#include "core/uncertainty.h"
#include "db/mod_database.h"

namespace modb::core {
namespace {

geo::Route StraightRoute(double length = 100.0) {
  return geo::Route(0, geo::Polyline({{0.0, 0.0}, {length, 0.0}}));
}

TEST(ProbabilityInPolygonTest, FullyInsideIsOne) {
  const geo::Route route = StraightRoute();
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -1.0, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(ProbabilityInPolygon({10.0, 20.0}, route, region), 1.0);
}

TEST(ProbabilityInPolygonTest, FullyOutsideIsZero) {
  const geo::Route route = StraightRoute();
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -1.0, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(ProbabilityInPolygon({60.0, 80.0}, route, region), 0.0);
}

TEST(ProbabilityInPolygonTest, StraddlingFraction) {
  const geo::Route route = StraightRoute();
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -1.0, 50.0, 1.0);
  // Interval [40, 60]: half inside.
  EXPECT_NEAR(ProbabilityInPolygon({40.0, 60.0}, route, region), 0.5, 1e-9);
  // Interval [45, 65]: a quarter inside.
  EXPECT_NEAR(ProbabilityInPolygon({45.0, 65.0}, route, region), 0.25, 1e-9);
}

TEST(ProbabilityInPolygonTest, DegenerateInterval) {
  const geo::Route route = StraightRoute();
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -1.0, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(ProbabilityInPolygon({10.0, 10.0}, route, region), 1.0);
  EXPECT_DOUBLE_EQ(ProbabilityInPolygon({70.0, 70.0}, route, region), 0.0);
}

TEST(ProbabilityInPolygonTest, RouteDippingOutOfRegion) {
  // U-shaped route: middle third outside the region.
  const geo::Route route(
      0, geo::Polyline({{0.0, 0.0}, {10.0, 0.0}, {10.0, -10.0},
                        {20.0, -10.0}, {20.0, 0.0}, {30.0, 0.0}}));
  const geo::Polygon region = geo::Polygon::Rectangle(-1.0, -1.0, 31.0, 1.0);
  // Interval covering the whole 50-length route: inside on the two
  // horizontal arms (10 + 10) plus the 1-unit verticals inside y >= -1
  // (1 + 1) = 22 of 50.
  EXPECT_NEAR(ProbabilityInPolygon({0.0, 50.0}, route, region), 22.0 / 50.0,
              1e-9);
}

TEST(ProbabilityInPolygonTest, ConsistentWithClassification) {
  const geo::Route route = StraightRoute();
  const geo::Polygon region = geo::Polygon::Rectangle(20.0, -1.0, 40.0, 1.0);
  for (double lo = 0.0; lo <= 50.0; lo += 2.5) {
    const UncertaintyInterval iv{lo, lo + 7.5};
    const double p = ProbabilityInPolygon(iv, route, region);
    switch (ClassifyAgainstPolygon(iv, route, region)) {
      case RegionRelation::kMustBeIn:
        EXPECT_DOUBLE_EQ(p, 1.0) << "lo=" << lo;
        break;
      case RegionRelation::kOutside:
        EXPECT_DOUBLE_EQ(p, 0.0) << "lo=" << lo;
        break;
      case RegionRelation::kMayBeIn:
        // A boundary-touching MAY has measure-zero overlap: p may be 0.
        EXPECT_GE(p, 0.0) << "lo=" << lo;
        EXPECT_LT(p, 1.0) << "lo=" << lo;
        break;
    }
  }
}

TEST(RangeAnswerProbabilityTest, ParallelArraysFromDatabase) {
  geo::RouteNetwork network;
  const geo::RouteId street =
      network.AddStraightRoute({0.0, 0.0}, {200.0, 0.0});
  db::ModDatabase db(&network);
  // Three parked objects: deep inside, straddling, outside.
  for (const auto& [id, s] : std::vector<std::pair<ObjectId, double>>{
           {1, 50.0}, {2, 99.0}, {3, 150.0}}) {
    PositionAttribute attr;
    attr.route = street;
    attr.start_route_distance = s;
    attr.start_position = {s, 0.0};
    attr.speed = 0.0;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = PolicyKind::kAverageImmediateLinear;
    ASSERT_TRUE(db.Insert(id, "", attr).ok());
  }
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -1.0, 100.0, 1.0);
  // t=2: fast bound = min(5, 3) = 3 -> intervals [s, s+3].
  const db::RangeAnswer answer = db.QueryRange(region, 2.0);
  ASSERT_EQ(answer.must.size(), 1u);
  EXPECT_EQ(answer.must[0], 1u);
  ASSERT_EQ(answer.may.size(), 1u);
  EXPECT_EQ(answer.may[0], 2u);
  ASSERT_EQ(answer.may_probability.size(), 1u);
  // Object 2's interval [99, 102]: 1 of 3 inside.
  EXPECT_NEAR(answer.may_probability[0], 1.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace modb::core
