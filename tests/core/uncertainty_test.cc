#include "core/uncertainty.h"

#include <gtest/gtest.h>

#include "core/bounds.h"

namespace modb::core {
namespace {

geo::Route StraightRoute(double length = 100.0) {
  return geo::Route(0, geo::Polyline({{0.0, 0.0}, {length, 0.0}}));
}

PositionAttribute MakeAttr(PolicyKind kind = PolicyKind::kDelayedLinear) {
  PositionAttribute attr;
  attr.start_time = 0.0;
  attr.route = 0;
  attr.start_route_distance = 20.0;
  attr.start_position = {20.0, 0.0};
  attr.speed = 1.0;
  attr.update_cost = 5.0;
  attr.max_speed = 1.5;
  attr.policy = kind;
  return attr;
}

TEST(UncertaintyIntervalTest, WidthAndContains) {
  const UncertaintyInterval iv{2.0, 5.0};
  EXPECT_DOUBLE_EQ(iv.Width(), 3.0);
  EXPECT_TRUE(iv.ContainsDistance(2.0));
  EXPECT_TRUE(iv.ContainsDistance(3.5));
  EXPECT_TRUE(iv.ContainsDistance(5.0));
  EXPECT_FALSE(iv.ContainsDistance(5.1));
}

TEST(ComputeUncertaintyTest, ZeroAtUpdateTime) {
  const geo::Route route = StraightRoute();
  const UncertaintyInterval iv = ComputeUncertainty(MakeAttr(), route, 0.0);
  EXPECT_DOUBLE_EQ(iv.lo, 20.0);
  EXPECT_DOUBLE_EQ(iv.hi, 20.0);
}

TEST(ComputeUncertaintyTest, ForwardIntervalBracketsDatabasePosition) {
  const geo::Route route = StraightRoute();
  const PositionAttribute attr = MakeAttr();
  const Time t = 2.0;
  const UncertaintyInterval iv = ComputeUncertainty(attr, route, t);
  const double db = attr.DatabaseRouteDistanceAt(t);  // 22
  EXPECT_DOUBLE_EQ(db, 22.0);
  EXPECT_DOUBLE_EQ(iv.lo, db - DlSlowBound(1.0, 5.0, 2.0));   // 20
  EXPECT_DOUBLE_EQ(iv.hi, db + DlFastBound(1.5, 1.0, 5.0, 2.0));  // 23
  EXPECT_LE(iv.lo, db);
  EXPECT_GE(iv.hi, db);
}

TEST(ComputeUncertaintyTest, BackwardDirectionMirrorsBounds) {
  const geo::Route route = StraightRoute();
  PositionAttribute attr = MakeAttr();
  attr.direction = TravelDirection::kBackward;
  attr.start_route_distance = 80.0;
  const Time t = 2.0;
  const UncertaintyInterval iv = ComputeUncertainty(attr, route, t);
  const double db = attr.DatabaseRouteDistanceAt(t);  // 78
  // Travelling toward decreasing distance: "slow" (behind) is at larger
  // route distance, "fast" (ahead) at smaller.
  EXPECT_DOUBLE_EQ(iv.hi, db + DlSlowBound(1.0, 5.0, 2.0));
  EXPECT_DOUBLE_EQ(iv.lo, db - DlFastBound(1.5, 1.0, 5.0, 2.0));
}

TEST(ComputeUncertaintyTest, ClampsToRouteEnds) {
  const geo::Route route = StraightRoute(25.0);
  const PositionAttribute attr = MakeAttr();
  // At t = 10 the database position (30) is past the route end.
  const UncertaintyInterval iv = ComputeUncertainty(attr, route, 10.0);
  EXPECT_GE(iv.lo, 0.0);
  EXPECT_LE(iv.hi, 25.0);
  EXPECT_LE(iv.lo, iv.hi);
}

TEST(ComputeUncertaintyTest, QueryBeforeStartTimeIsPointInterval) {
  const geo::Route route = StraightRoute();
  const UncertaintyInterval iv = ComputeUncertainty(MakeAttr(), route, -5.0);
  EXPECT_DOUBLE_EQ(iv.Width(), 0.0);
}

TEST(ComputeUncertaintyTest, ImmediatePolicyShrinksForLargeT) {
  const geo::Route route = StraightRoute(1000.0);
  const PositionAttribute attr =
      MakeAttr(PolicyKind::kAverageImmediateLinear);
  const double w_peak =
      ComputeUncertainty(attr, route, 3.2).Width();
  const double w_late =
      ComputeUncertainty(attr, route, 30.0).Width();
  EXPECT_LT(w_late, w_peak);
}

TEST(RegionRelationNameTest, Names) {
  EXPECT_EQ(RegionRelationName(RegionRelation::kMustBeIn), "must");
  EXPECT_EQ(RegionRelationName(RegionRelation::kMayBeIn), "may");
  EXPECT_EQ(RegionRelationName(RegionRelation::kOutside), "outside");
}

TEST(ClassifyTest, MustWhenWholeIntervalInside) {
  const geo::Route route = StraightRoute();
  const geo::Polygon region = geo::Polygon::Rectangle(10.0, -1.0, 30.0, 1.0);
  EXPECT_EQ(ClassifyAgainstPolygon({15.0, 25.0}, route, region),
            RegionRelation::kMustBeIn);
}

TEST(ClassifyTest, MayWhenPartiallyInside) {
  const geo::Route route = StraightRoute();
  const geo::Polygon region = geo::Polygon::Rectangle(10.0, -1.0, 30.0, 1.0);
  EXPECT_EQ(ClassifyAgainstPolygon({25.0, 40.0}, route, region),
            RegionRelation::kMayBeIn);
  EXPECT_EQ(ClassifyAgainstPolygon({5.0, 15.0}, route, region),
            RegionRelation::kMayBeIn);
  // Interval covering the whole region still only "may" be inside.
  EXPECT_EQ(ClassifyAgainstPolygon({5.0, 40.0}, route, region),
            RegionRelation::kMayBeIn);
}

TEST(ClassifyTest, OutsideWhenDisjoint) {
  const geo::Route route = StraightRoute();
  const geo::Polygon region = geo::Polygon::Rectangle(10.0, -1.0, 30.0, 1.0);
  EXPECT_EQ(ClassifyAgainstPolygon({40.0, 50.0}, route, region),
            RegionRelation::kOutside);
  EXPECT_EQ(ClassifyAgainstPolygon({0.0, 5.0}, route, region),
            RegionRelation::kOutside);
}

TEST(ClassifyTest, PointIntervalClassification) {
  const geo::Route route = StraightRoute();
  const geo::Polygon region = geo::Polygon::Rectangle(10.0, -1.0, 30.0, 1.0);
  EXPECT_EQ(ClassifyAgainstPolygon({20.0, 20.0}, route, region),
            RegionRelation::kMustBeIn);
  EXPECT_EQ(ClassifyAgainstPolygon({50.0, 50.0}, route, region),
            RegionRelation::kOutside);
}

TEST(ClassifyTest, RouteLeavingAndReenteringPolygon) {
  // U-shaped route dips below the polygon between two inside stretches.
  const geo::Route route(
      1, geo::Polyline(
             {{0.0, 0.0}, {10.0, 0.0}, {10.0, -10.0}, {20.0, -10.0},
              {20.0, 0.0}, {30.0, 0.0}}));
  const geo::Polygon region = geo::Polygon::Rectangle(-1.0, -1.0, 31.0, 1.0);
  // Interval spanning the dip: intersects but is not contained.
  EXPECT_EQ(ClassifyAgainstPolygon({5.0, route.Length() - 5.0}, route, region),
            RegionRelation::kMayBeIn);
  // Interval inside the first stretch.
  EXPECT_EQ(ClassifyAgainstPolygon({1.0, 8.0}, route, region),
            RegionRelation::kMustBeIn);
  // Interval fully in the dip.
  EXPECT_EQ(ClassifyAgainstPolygon({15.0, 25.0}, route, region),
            RegionRelation::kOutside);
}

}  // namespace
}  // namespace modb::core
