// Tests of ComputeUncertaintySpan: the smallest interval covering the
// uncertainty interval at every instant of a time window (used by the
// o-plane builder and window queries). The span must cover a dense time
// sampling exactly (the critical-time construction makes it exact, not
// merely conservative).

#include <gtest/gtest.h>

#include "core/uncertainty.h"

namespace modb::core {
namespace {

geo::Route StraightRoute(double length = 1000.0) {
  return geo::Route(0, geo::Polyline({{0.0, 0.0}, {length, 0.0}}));
}

PositionAttribute MakeAttr(PolicyKind kind) {
  PositionAttribute attr;
  attr.start_time = 5.0;
  attr.route = 0;
  attr.start_route_distance = 100.0;
  attr.start_position = {100.0, 0.0};
  attr.speed = 1.0;
  attr.update_cost = 5.0;
  attr.max_speed = 1.5;
  attr.policy = kind;
  attr.fixed_threshold = 2.0;
  attr.period = 1.0;
  attr.step_threshold = 1.5;
  return attr;
}

class UncertaintySpanTest : public testing::TestWithParam<PolicyKind> {};

TEST_P(UncertaintySpanTest, CoversDenseSamplingExactly) {
  const geo::Route route = StraightRoute();
  const PositionAttribute attr = MakeAttr(GetParam());
  for (const auto& [t1, t2] : std::vector<std::pair<Time, Time>>{
           {5.0, 6.0}, {5.0, 25.0}, {7.0, 9.0}, {6.5, 18.25}, {10.0, 40.0}}) {
    const UncertaintyInterval span =
        ComputeUncertaintySpan(attr, route, t1, t2);
    double lo = 1e300;
    double hi = -1e300;
    for (double t = t1; t <= t2 + 1e-12; t += 0.001) {
      const UncertaintyInterval iv = ComputeUncertainty(attr, route, t);
      lo = std::min(lo, iv.lo);
      hi = std::max(hi, iv.hi);
    }
    // Exact within dense-sampling resolution.
    EXPECT_NEAR(span.lo, lo, 2e-3) << "window [" << t1 << ", " << t2 << "]";
    EXPECT_NEAR(span.hi, hi, 2e-3) << "window [" << t1 << ", " << t2 << "]";
    // Never under-covers.
    EXPECT_LE(span.lo, lo + 1e-12);
    EXPECT_GE(span.hi, hi - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, UncertaintySpanTest,
    testing::Values(PolicyKind::kDelayedLinear,
                    PolicyKind::kAverageImmediateLinear,
                    PolicyKind::kCurrentImmediateLinear,
                    PolicyKind::kFixedThreshold, PolicyKind::kPeriodic,
                    PolicyKind::kHybridAdaptive, PolicyKind::kStepThreshold),
    [](const testing::TestParamInfo<PolicyKind>& info) {
      return std::string(PolicyKindName(info.param));
    });

TEST(UncertaintySpanEdgeTest, ReversedWindowNormalised) {
  const geo::Route route = StraightRoute();
  const PositionAttribute attr = MakeAttr(PolicyKind::kDelayedLinear);
  const UncertaintyInterval a = ComputeUncertaintySpan(attr, route, 6.0, 12.0);
  const UncertaintyInterval b = ComputeUncertaintySpan(attr, route, 12.0, 6.0);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(UncertaintySpanEdgeTest, PointWindowEqualsInstant) {
  const geo::Route route = StraightRoute();
  const PositionAttribute attr = MakeAttr(PolicyKind::kAverageImmediateLinear);
  const UncertaintyInterval instant = ComputeUncertainty(attr, route, 9.0);
  const UncertaintyInterval span = ComputeUncertaintySpan(attr, route, 9.0, 9.0);
  EXPECT_DOUBLE_EQ(span.lo, instant.lo);
  EXPECT_DOUBLE_EQ(span.hi, instant.hi);
}

}  // namespace
}  // namespace modb::core
