// Property tests of the paper's central guarantees, exercised through the
// full onboard-computer simulation across a randomized workload sweep:
//
//  P1. Bound soundness (propositions 2-4): the actual deviation never
//      exceeds the DBMS-computable bound (within one tick of worst-case
//      growth, the discretisation tolerance).
//  P2. Threshold behaviour: the number of updates decreases as the update
//      cost C grows (the paper's headline frequency/cost trade-off).
//  P3. Deviation is eliminated by updates: immediately after any update the
//      deviation is zero.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/update_policy.h"
#include "sim/simulator.h"
#include "sim/speed_curve.h"
#include "util/rng.h"

namespace modb::core {
namespace {

using sim::CurveGenOptions;
using sim::RunMetrics;
using sim::SimulationOptions;
using sim::SpeedCurve;

SpeedCurve CurveByName(const std::string& kind, util::Rng& rng) {
  const CurveGenOptions options;
  if (kind == "highway") return sim::MakeHighwayCurve(rng, options);
  if (kind == "city") return sim::MakeCityCurve(rng, options);
  if (kind == "jam") return sim::MakeTrafficJamCurve(rng, options);
  return sim::MakeRushHourCurve(rng, options);
}

using PolicyCase = std::tuple<PolicyKind, std::string, double>;

class PolicyPropertyTest : public testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyPropertyTest, DeviationNeverExceedsBound) {
  const auto [kind, curve_kind, C] = GetParam();
  util::Rng rng(1234);
  PolicyConfig policy;
  policy.kind = kind;
  policy.update_cost = C;
  policy.max_speed = 1.5;
  policy.fixed_threshold = 1.5;
  policy.period = 1.0;
  SimulationOptions sim_options;
  sim_options.check_bounds = true;
  for (int rep = 0; rep < 5; ++rep) {
    const SpeedCurve curve = CurveByName(curve_kind, rng);
    const RunMetrics metrics =
        sim::SimulatePolicyOnCurve(curve, policy, sim_options);
    EXPECT_EQ(metrics.bound_violations, 0u)
        << PolicyKindName(kind) << " on " << curve_kind << " C=" << C
        << " rep=" << rep;
  }
}

TEST_P(PolicyPropertyTest, CostsAreFiniteAndConsistent) {
  const auto [kind, curve_kind, C] = GetParam();
  util::Rng rng(99);
  PolicyConfig policy;
  policy.kind = kind;
  policy.update_cost = C;
  policy.max_speed = 1.5;
  policy.fixed_threshold = 1.5;
  SimulationOptions sim_options;
  const SpeedCurve curve = CurveByName(curve_kind, rng);
  const RunMetrics m = sim::SimulatePolicyOnCurve(curve, policy, sim_options);
  EXPECT_GE(m.deviation_cost, 0.0);
  EXPECT_TRUE(std::isfinite(m.total_cost));
  EXPECT_NEAR(m.total_cost,
              C * static_cast<double>(m.messages) + m.deviation_cost, 1e-9);
  EXPECT_GE(m.avg_uncertainty, 0.0);
  EXPECT_GE(m.max_deviation, m.avg_deviation);
  EXPECT_EQ(m.ticks, 60u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyCurveCostGrid, PolicyPropertyTest,
    testing::Combine(
        testing::Values(PolicyKind::kDelayedLinear,
                        PolicyKind::kAverageImmediateLinear,
                        PolicyKind::kCurrentImmediateLinear,
                        PolicyKind::kFixedThreshold, PolicyKind::kPeriodic,
                        PolicyKind::kHybridAdaptive),
        testing::Values(std::string("highway"), std::string("city"),
                        std::string("jam"), std::string("rush")),
        testing::Values(1.0, 5.0, 20.0)),
    [](const testing::TestParamInfo<PolicyCase>& info) {
      return std::string(PolicyKindName(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param) + "_C" +
             std::to_string(static_cast<int>(std::get<2>(info.param)));
    });

class CostMonotonicityTest
    : public testing::TestWithParam<std::tuple<PolicyKind, std::string>> {};

TEST_P(CostMonotonicityTest, MoreExpensiveMessagesMeanFewerUpdates) {
  const auto [kind, curve_kind] = GetParam();
  util::Rng rng(7);
  const SpeedCurve curve = CurveByName(curve_kind, rng);
  SimulationOptions sim_options;
  sim_options.check_bounds = false;
  std::size_t prev = SIZE_MAX;
  for (double C : {0.5, 2.0, 8.0, 32.0}) {
    PolicyConfig policy;
    policy.kind = kind;
    policy.update_cost = C;
    policy.max_speed = 1.5;
    const RunMetrics m =
        sim::SimulatePolicyOnCurve(curve, policy, sim_options);
    EXPECT_LE(m.messages, prev) << "C=" << C;
    prev = m.messages;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CostGrid, CostMonotonicityTest,
    testing::Combine(testing::Values(PolicyKind::kDelayedLinear,
                                     PolicyKind::kAverageImmediateLinear,
                                     PolicyKind::kCurrentImmediateLinear),
                     testing::Values(std::string("city"),
                                     std::string("highway"))),
    [](const testing::TestParamInfo<std::tuple<PolicyKind, std::string>>&
           info) {
      return std::string(PolicyKindName(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param);
    });

TEST(PolicyInvariantTest, PerfectSpeedPredictionNeverUpdates) {
  // A vehicle that drives exactly at the declared speed has deviation 0
  // forever; no cost-based policy should ever send an update.
  const SpeedCurve constant = SpeedCurve::Constant(1.0, 60.0);
  SimulationOptions sim_options;
  for (PolicyKind kind :
       {PolicyKind::kDelayedLinear, PolicyKind::kAverageImmediateLinear,
        PolicyKind::kCurrentImmediateLinear, PolicyKind::kFixedThreshold}) {
    PolicyConfig policy;
    policy.kind = kind;
    policy.update_cost = 5.0;
    policy.max_speed = 1.5;
    policy.fixed_threshold = 1.0;
    const RunMetrics m =
        sim::SimulatePolicyOnCurve(constant, policy, sim_options);
    EXPECT_EQ(m.messages, 0u) << PolicyKindName(kind);
    EXPECT_EQ(m.deviation_cost, 0.0) << PolicyKindName(kind);
  }
}

TEST(PolicyInvariantTest, PeriodicSendsOnePerPeriodRegardless) {
  const SpeedCurve constant = SpeedCurve::Constant(1.0, 60.0);
  PolicyConfig policy;
  policy.kind = PolicyKind::kPeriodic;
  policy.period = 1.0;
  policy.max_speed = 1.5;
  const RunMetrics m =
      sim::SimulatePolicyOnCurve(constant, policy, SimulationOptions{});
  EXPECT_EQ(m.messages, 60u);
}

TEST(PolicyInvariantTest, MotionModelBeatsTraditionalOnMessageCount) {
  // The paper's headline: position attributes cut updates to ~15% of the
  // per-time-unit traditional method. Verify a large reduction on the
  // standard suite.
  util::Rng rng(2026);
  const auto suite = sim::MakeStandardSuite(rng, 3, CurveGenOptions{});
  double mod_msgs = 0.0;
  double trad_msgs = 0.0;
  for (const auto& named : suite) {
    PolicyConfig ail;
    ail.kind = PolicyKind::kAverageImmediateLinear;
    ail.update_cost = 5.0;
    ail.max_speed = 1.5;
    mod_msgs += static_cast<double>(
        sim::SimulatePolicyOnCurve(named.curve, ail, SimulationOptions{})
            .messages);
    PolicyConfig periodic;
    periodic.kind = PolicyKind::kPeriodic;
    periodic.period = 1.0;
    periodic.max_speed = 1.5;
    trad_msgs += static_cast<double>(
        sim::SimulatePolicyOnCurve(named.curve, periodic, SimulationOptions{})
            .messages);
  }
  EXPECT_LT(mod_msgs, 0.3 * trad_msgs);
}

}  // namespace
}  // namespace modb::core
