#include "core/deviation.h"

#include <gtest/gtest.h>

namespace modb::core {
namespace {

TEST(UniformDeviationCostTest, TrapezoidArea) {
  const UniformDeviationCost cost;
  EXPECT_DOUBLE_EQ(cost.IntervalCost(0.0, 2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(cost.IntervalCost(2.0, 2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(cost.IntervalCost(1.0, 3.0, 2.0), 4.0);
  EXPECT_EQ(cost.name(), "uniform");
}

TEST(StepDeviationCostTest, BelowThresholdIsFree) {
  const StepDeviationCost cost(2.0);
  EXPECT_DOUBLE_EQ(cost.IntervalCost(0.0, 2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(cost.IntervalCost(1.0, 1.5, 5.0), 0.0);
  EXPECT_EQ(cost.name(), "step");
  EXPECT_EQ(cost.threshold(), 2.0);
}

TEST(StepDeviationCostTest, AboveThresholdChargesFullInterval) {
  const StepDeviationCost cost(2.0);
  EXPECT_DOUBLE_EQ(cost.IntervalCost(3.0, 5.0, 2.0), 2.0);
}

TEST(StepDeviationCostTest, CrossingChargesExactFraction) {
  const StepDeviationCost cost(2.0);
  // Rising 1 -> 3 crosses the threshold halfway.
  EXPECT_DOUBLE_EQ(cost.IntervalCost(1.0, 3.0, 1.0), 0.5);
  // Falling 4 -> 0 is above threshold for the first half.
  EXPECT_DOUBLE_EQ(cost.IntervalCost(4.0, 0.0, 1.0), 0.5);
  // Rising 0 -> 4: above threshold for the second half.
  EXPECT_DOUBLE_EQ(cost.IntervalCost(0.0, 4.0, 2.0), 1.0);
}

TEST(StepDeviationCostTest, ZeroLengthInterval) {
  const StepDeviationCost cost(1.0);
  EXPECT_DOUBLE_EQ(cost.IntervalCost(5.0, 5.0, 0.0), 0.0);
}

class DeviationTrackerTest : public testing::Test {
 protected:
  DeviationTracker tracker_{1e-9};
};

TEST_F(DeviationTrackerTest, ResetState) {
  tracker_.Reset(10.0, 100.0);
  EXPECT_EQ(tracker_.update_time(), 10.0);
  EXPECT_EQ(tracker_.current_deviation(), 0.0);
  EXPECT_EQ(tracker_.last_zero_time(), 10.0);
  EXPECT_EQ(tracker_.DelayOffset(), 0.0);
  EXPECT_EQ(tracker_.DeviationIntegral(), 0.0);
  EXPECT_EQ(tracker_.num_observations(), 0u);
}

TEST_F(DeviationTrackerTest, TracksCurrentDeviation) {
  tracker_.Reset(0.0, 0.0);
  tracker_.Observe(1.0, 0.5, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(tracker_.current_deviation(), 0.5);
  EXPECT_EQ(tracker_.num_observations(), 1u);
  tracker_.Observe(2.0, 1.5, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(tracker_.current_deviation(), 1.5);
}

TEST_F(DeviationTrackerTest, DelayOffsetTracksLastZero) {
  // Paper §3.2 simple fitting: b is the time from the last update until the
  // last time unit when the deviation was 0.
  tracker_.Reset(0.0, 0.0);
  tracker_.Observe(1.0, 0.0, 1.0, 1.0);
  tracker_.Observe(2.0, 0.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(tracker_.DelayOffset(), 2.0);
  tracker_.Observe(3.0, 1.0, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(tracker_.DelayOffset(), 2.0);  // frozen at last zero
  tracker_.Observe(4.0, 2.0, 4.0, 1.0);
  EXPECT_DOUBLE_EQ(tracker_.DelayOffset(), 2.0);
}

TEST_F(DeviationTrackerTest, DeviationReturningToZeroResetsDelay) {
  tracker_.Reset(0.0, 0.0);
  tracker_.Observe(1.0, 1.0, 1.0, 1.0);
  tracker_.Observe(2.0, 0.0, 2.0, 1.0);  // back to zero
  EXPECT_DOUBLE_EQ(tracker_.DelayOffset(), 2.0);
}

TEST_F(DeviationTrackerTest, IntegralIsTrapezoidal) {
  tracker_.Reset(0.0, 0.0);
  tracker_.Observe(1.0, 2.0, 1.0, 1.0);  // area 0..1: (0+2)/2 = 1
  tracker_.Observe(3.0, 4.0, 3.0, 1.0);  // area 1..3: (2+4)/2*2 = 6
  EXPECT_DOUBLE_EQ(tracker_.DeviationIntegral(), 7.0);
}

TEST_F(DeviationTrackerTest, AverageSpeedFromDistanceCovered) {
  tracker_.Reset(0.0, 10.0);
  tracker_.Observe(2.0, 0.5, 13.0, 1.5);
  EXPECT_DOUBLE_EQ(tracker_.AverageSpeed(2.0), 1.5);
  tracker_.Observe(4.0, 0.5, 14.0, 0.5);
  EXPECT_DOUBLE_EQ(tracker_.AverageSpeed(4.0), 1.0);
}

TEST_F(DeviationTrackerTest, AverageSpeedBackwardTravel) {
  tracker_.Reset(0.0, 10.0);
  tracker_.Observe(2.0, 0.0, 6.0, 2.0);
  EXPECT_DOUBLE_EQ(tracker_.AverageSpeed(2.0), 2.0);
}

TEST_F(DeviationTrackerTest, AverageSpeedAtUpdateTimeIsZero) {
  tracker_.Reset(5.0, 0.0);
  EXPECT_DOUBLE_EQ(tracker_.AverageSpeed(5.0), 0.0);
}

TEST_F(DeviationTrackerTest, TimeSinceUpdate) {
  tracker_.Reset(3.0, 0.0);
  EXPECT_DOUBLE_EQ(tracker_.TimeSinceUpdate(7.5), 4.5);
}

TEST_F(DeviationTrackerTest, LeastSquaresSlopeMatchesPerfectLine) {
  tracker_.Reset(0.0, 0.0);
  for (int t = 1; t <= 10; ++t) {
    tracker_.Observe(t, 0.7 * t, t, 1.0);
  }
  EXPECT_NEAR(tracker_.LeastSquaresImmediateSlope(), 0.7, 1e-12);
}

TEST_F(DeviationTrackerTest, LeastSquaresSlopeNonNegativeWhenEmpty) {
  tracker_.Reset(0.0, 0.0);
  EXPECT_EQ(tracker_.LeastSquaresImmediateSlope(), 0.0);
}

TEST_F(DeviationTrackerTest, SpeedStatsAccumulate) {
  tracker_.Reset(0.0, 0.0);
  tracker_.Observe(1.0, 0.0, 1.0, 1.0);
  tracker_.Observe(2.0, 0.0, 2.0, 3.0);
  EXPECT_EQ(tracker_.speed_stats().count(), 2u);
  EXPECT_DOUBLE_EQ(tracker_.speed_stats().mean(), 2.0);
}

TEST_F(DeviationTrackerTest, ResetClearsEverything) {
  tracker_.Reset(0.0, 0.0);
  tracker_.Observe(1.0, 5.0, 1.0, 1.0);
  tracker_.Reset(10.0, 50.0);
  EXPECT_EQ(tracker_.current_deviation(), 0.0);
  EXPECT_EQ(tracker_.DeviationIntegral(), 0.0);
  EXPECT_EQ(tracker_.speed_stats().count(), 0u);
  EXPECT_EQ(tracker_.DelayOffset(), 0.0);
}

}  // namespace
}  // namespace modb::core
