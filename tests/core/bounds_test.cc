#include "core/bounds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace modb::core {
namespace {

// Paper Example 1 (continued) constants: C = 5 cents, P.speed v = 1 mi/min,
// maximum speed V = 1.5 mi/min.
constexpr double kC = 5.0;
constexpr double kV = 1.5;
constexpr double kSpeed = 1.0;

TEST(DlBoundsTest, PaperExample1SlowBound) {
  // "the bound on the slow-deviation increases at the rate of 1 mile per
  //  minute for the first 3 minutes ... after that it remains constant at
  //  3.16 miles" (sqrt(2vC) = sqrt(10)).
  EXPECT_DOUBLE_EQ(DlSlowBound(kSpeed, kC, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(DlSlowBound(kSpeed, kC, 3.0), 3.0);
  EXPECT_NEAR(DlSlowBound(kSpeed, kC, 4.0), std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(DlSlowBound(kSpeed, kC, 10.0), 3.16, 0.01);
  EXPECT_NEAR(DlSlowBound(kSpeed, kC, 15.0), DlSlowBound(kSpeed, kC, 10.0),
              1e-12);
}

TEST(DlBoundsTest, PaperExample1FastBound) {
  // "the fast-deviation increases at the rate of 0.5 miles per minute for
  //  the first 4.5 minutes ... after that it remains constant at 2.24
  //  miles" (sqrt(2*0.5*5) = sqrt(5)).
  EXPECT_DOUBLE_EQ(DlFastBound(kV, kSpeed, kC, 2.0), 1.0);
  EXPECT_NEAR(DlFastBound(kV, kSpeed, kC, 4.472), 2.236, 0.001);
  EXPECT_NEAR(DlFastBound(kV, kSpeed, kC, 10.0), std::sqrt(5.0), 1e-12);
  EXPECT_NEAR(DlFastBound(kV, kSpeed, kC, 10.0), 2.24, 0.01);
}

TEST(DlBoundsTest, CombinedBoundUsesDominantRate) {
  // Corollary 1: D = max{v, V - v} = 1.
  EXPECT_DOUBLE_EQ(DlBound(kV, kSpeed, kC, 2.0), 2.0);
  EXPECT_NEAR(DlBound(kV, kSpeed, kC, 100.0), std::sqrt(10.0), 1e-12);
}

TEST(DlBoundsTest, ZeroAtZeroTime) {
  EXPECT_EQ(DlSlowBound(kSpeed, kC, 0.0), 0.0);
  EXPECT_EQ(DlFastBound(kV, kSpeed, kC, 0.0), 0.0);
  EXPECT_EQ(DlBound(kV, kSpeed, kC, 0.0), 0.0);
}

TEST(DlBoundsTest, ZeroRateGivesZeroBound) {
  EXPECT_EQ(DlSlowBound(0.0, kC, 10.0), 0.0);
  // Database speed equals max speed: no fast deviation possible.
  EXPECT_EQ(DlFastBound(1.0, 1.0, kC, 10.0), 0.0);
  // Database speed above the declared max clamps instead of going negative.
  EXPECT_EQ(DlFastBound(1.0, 2.0, kC, 10.0), 0.0);
}

TEST(DlBoundsTest, NeverDecreasesOverTime) {
  double prev = 0.0;
  for (double t = 0.0; t <= 20.0; t += 0.25) {
    const double b = DlSlowBound(kSpeed, kC, t);
    EXPECT_GE(b, prev - 1e-12);
    prev = b;
  }
}

TEST(IlBoundsTest, PaperExample1SlowBound) {
  // "the bound on the slow-deviation increases at the rate of 1 mile per
  //  minute for the first 3 minutes ... after that it decreases, i.e. for
  //  t >= 4, it is 10/t."
  EXPECT_DOUBLE_EQ(IlSlowBound(kSpeed, kC, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(IlSlowBound(kSpeed, kC, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(IlSlowBound(kSpeed, kC, 4.0), 2.5);    // 10/4
  EXPECT_DOUBLE_EQ(IlSlowBound(kSpeed, kC, 10.0), 1.0);   // 10/10
  EXPECT_DOUBLE_EQ(IlSlowBound(kSpeed, kC, 20.0), 0.5);
}

TEST(IlBoundsTest, PaperExample1FastBound) {
  // Fast: rate 0.5 for the first 4.5 minutes, then 10/t.
  EXPECT_DOUBLE_EQ(IlFastBound(kV, kSpeed, kC, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(IlFastBound(kV, kSpeed, kC, 5.0), 2.0);   // 10/5
  EXPECT_DOUBLE_EQ(IlFastBound(kV, kSpeed, kC, 10.0), 1.0);
}

TEST(IlBoundsTest, BoundDecreasesAfterPeak) {
  // The paper's "surprising positive result": after t* = sqrt(2C/D) the
  // uncertainty shrinks as time-since-update grows.
  const double peak = IlSlowBoundPeakTime(kSpeed, kC);
  EXPECT_NEAR(peak, std::sqrt(10.0), 1e-12);
  double prev = IlSlowBound(kSpeed, kC, peak);
  for (double t = peak + 0.5; t <= 30.0; t += 0.5) {
    const double b = IlSlowBound(kSpeed, kC, t);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(IlBoundsTest, PeakTimes) {
  EXPECT_NEAR(IlFastBoundPeakTime(kV, kSpeed, kC), std::sqrt(20.0), 1e-12);
  EXPECT_TRUE(std::isinf(IlSlowBoundPeakTime(0.0, kC)));
  EXPECT_TRUE(std::isinf(IlFastBoundPeakTime(1.0, 1.0, kC)));
}

TEST(IlBoundsTest, PeakValueMatchesBothBranches) {
  const double t_star = IlSlowBoundPeakTime(kSpeed, kC);
  EXPECT_NEAR(IlSlowBound(kSpeed, kC, t_star), kSpeed * t_star, 1e-9);
  EXPECT_NEAR(IlSlowBound(kSpeed, kC, t_star), 2.0 * kC / t_star, 1e-9);
}

TEST(IlBoundsTest, CombinedBound) {
  EXPECT_DOUBLE_EQ(IlBound(kV, kSpeed, kC, 2.0), 2.0);   // D t with D = 1
  EXPECT_DOUBLE_EQ(IlBound(kV, kSpeed, kC, 10.0), 1.0);  // 2C/t
}

TEST(IlBoundsTest, IlBoundNeverExceedsDlBound) {
  // min{2C/t, Dt} <= min{sqrt(2DC), Dt}: the immediate policies' bound is
  // uniformly at least as tight — the reason the paper calls ail superior.
  for (double t = 0.1; t <= 40.0; t += 0.1) {
    EXPECT_LE(IlBound(kV, kSpeed, kC, t), DlBound(kV, kSpeed, kC, t) + 1e-12);
  }
}

PositionAttribute AttrWithPolicy(PolicyKind kind) {
  PositionAttribute attr;
  attr.speed = kSpeed;
  attr.update_cost = kC;
  attr.max_speed = kV;
  attr.policy = kind;
  attr.fixed_threshold = 2.0;
  attr.period = 3.0;
  return attr;
}

TEST(PolicyBoundDispatchTest, DelayedLinear) {
  const PositionAttribute attr = AttrWithPolicy(PolicyKind::kDelayedLinear);
  EXPECT_DOUBLE_EQ(SlowDeviationBound(attr, 2.0), DlSlowBound(kSpeed, kC, 2.0));
  EXPECT_DOUBLE_EQ(FastDeviationBound(attr, 2.0),
                   DlFastBound(kV, kSpeed, kC, 2.0));
  EXPECT_DOUBLE_EQ(DeviationBound(attr, 2.0),
                   std::max(SlowDeviationBound(attr, 2.0),
                            FastDeviationBound(attr, 2.0)));
}

TEST(PolicyBoundDispatchTest, ImmediatePolicies) {
  for (PolicyKind kind : {PolicyKind::kAverageImmediateLinear,
                          PolicyKind::kCurrentImmediateLinear}) {
    const PositionAttribute attr = AttrWithPolicy(kind);
    EXPECT_DOUBLE_EQ(SlowDeviationBound(attr, 8.0),
                     IlSlowBound(kSpeed, kC, 8.0));
    EXPECT_DOUBLE_EQ(FastDeviationBound(attr, 8.0),
                     IlFastBound(kV, kSpeed, kC, 8.0));
  }
}

TEST(PolicyBoundDispatchTest, HybridUsesDlEnvelope) {
  const PositionAttribute attr = AttrWithPolicy(PolicyKind::kHybridAdaptive);
  EXPECT_DOUBLE_EQ(SlowDeviationBound(attr, 8.0), DlSlowBound(kSpeed, kC, 8.0));
}

TEST(PolicyBoundDispatchTest, FixedThreshold) {
  const PositionAttribute attr = AttrWithPolicy(PolicyKind::kFixedThreshold);
  // Dead reckoning: bounded by B = 2 and by the growth rate.
  EXPECT_DOUBLE_EQ(SlowDeviationBound(attr, 1.0), 1.0);  // v t
  EXPECT_DOUBLE_EQ(SlowDeviationBound(attr, 10.0), 2.0);  // B
  EXPECT_DOUBLE_EQ(FastDeviationBound(attr, 10.0), 2.0);
  // The fixed bound never shrinks — contrast with the il policies.
  EXPECT_DOUBLE_EQ(SlowDeviationBound(attr, 100.0), 2.0);
}

TEST(PolicyBoundDispatchTest, Periodic) {
  const PositionAttribute attr = AttrWithPolicy(PolicyKind::kPeriodic);
  // The database position is static: nothing to lag behind.
  EXPECT_EQ(SlowDeviationBound(attr, 2.0), 0.0);
  // Ahead by at most V * min(t, period).
  EXPECT_DOUBLE_EQ(FastDeviationBound(attr, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(FastDeviationBound(attr, 10.0), 4.5);  // V * period
}

TEST(BoundCriticalTimesTest, ImmediateFamily) {
  const PositionAttribute attr =
      AttrWithPolicy(PolicyKind::kAverageImmediateLinear);
  const std::vector<Duration> times = BoundCriticalTimes(attr);
  ASSERT_EQ(times.size(), 2u);
  // sqrt(2C/v) = sqrt(10) and sqrt(2C/(V-v)) = sqrt(20).
  EXPECT_NEAR(std::min(times[0], times[1]), std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(std::max(times[0], times[1]), std::sqrt(20.0), 1e-12);
}

TEST(BoundCriticalTimesTest, FixedAndPeriodic) {
  const PositionAttribute fixed = AttrWithPolicy(PolicyKind::kFixedThreshold);
  const std::vector<Duration> ft = BoundCriticalTimes(fixed);
  ASSERT_EQ(ft.size(), 2u);  // B/v = 2 and B/(V-v) = 4
  const PositionAttribute periodic = AttrWithPolicy(PolicyKind::kPeriodic);
  const std::vector<Duration> pt = BoundCriticalTimes(periodic);
  ASSERT_EQ(pt.size(), 1u);
  EXPECT_DOUBLE_EQ(pt[0], 3.0);
}

TEST(BoundCriticalTimesTest, DropsDegenerateEntries) {
  PositionAttribute attr = AttrWithPolicy(PolicyKind::kDelayedLinear);
  attr.speed = 0.0;
  attr.max_speed = 0.0;
  EXPECT_TRUE(BoundCriticalTimes(attr).empty());
}

}  // namespace
}  // namespace modb::core
