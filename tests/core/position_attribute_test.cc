#include "core/position_attribute.h"

#include <gtest/gtest.h>

namespace modb::core {
namespace {

geo::Route MakeRoute() {
  // L-shaped route of length 20.
  return geo::Route(7, geo::Polyline({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}}));
}

PositionAttribute MakeAttr() {
  PositionAttribute attr;
  attr.start_time = 5.0;
  attr.route = 7;
  attr.start_route_distance = 2.0;
  attr.start_position = {2.0, 0.0};
  attr.direction = TravelDirection::kForward;
  attr.speed = 1.0;
  return attr;
}

TEST(PolicyKindNameTest, AllNames) {
  EXPECT_EQ(PolicyKindName(PolicyKind::kDelayedLinear), "dl");
  EXPECT_EQ(PolicyKindName(PolicyKind::kAverageImmediateLinear), "ail");
  EXPECT_EQ(PolicyKindName(PolicyKind::kCurrentImmediateLinear), "cil");
  EXPECT_EQ(PolicyKindName(PolicyKind::kFixedThreshold), "fixed");
  EXPECT_EQ(PolicyKindName(PolicyKind::kPeriodic), "periodic");
  EXPECT_EQ(PolicyKindName(PolicyKind::kHybridAdaptive), "hybrid");
}

TEST(PositionAttributeTest, DatabaseDistanceAtStartTime) {
  const PositionAttribute attr = MakeAttr();
  EXPECT_DOUBLE_EQ(attr.DatabaseRouteDistanceAt(5.0), 2.0);
}

TEST(PositionAttributeTest, DatabaseDistanceAdvancesLinearly) {
  // Paper §2: database position at starttime + t0 is at route-distance
  // P.speed * t0 from the start position.
  const PositionAttribute attr = MakeAttr();
  EXPECT_DOUBLE_EQ(attr.DatabaseRouteDistanceAt(8.0), 5.0);
  EXPECT_DOUBLE_EQ(attr.DatabaseRouteDistanceAt(15.0), 12.0);
}

TEST(PositionAttributeTest, BackwardDirectionDecreasesDistance) {
  PositionAttribute attr = MakeAttr();
  attr.direction = TravelDirection::kBackward;
  attr.start_route_distance = 10.0;
  EXPECT_DOUBLE_EQ(attr.DatabaseRouteDistanceAt(8.0), 7.0);
}

TEST(PositionAttributeTest, ClampedAtRouteEnds) {
  const geo::Route route = MakeRoute();
  PositionAttribute attr = MakeAttr();
  EXPECT_DOUBLE_EQ(attr.ClampedDatabaseRouteDistanceAt(100.0, route.Length()),
                   20.0);
  attr.direction = TravelDirection::kBackward;
  EXPECT_DOUBLE_EQ(attr.ClampedDatabaseRouteDistanceAt(100.0, route.Length()),
                   0.0);
}

TEST(PositionAttributeTest, DatabasePositionFollowsRouteGeometry) {
  const geo::Route route = MakeRoute();
  const PositionAttribute attr = MakeAttr();
  // At t=13, distance = 2 + 8 = 10 -> the corner (10, 0).
  EXPECT_TRUE(geo::ApproxEqual(attr.DatabasePositionAt(route, 13.0),
                               {10.0, 0.0}));
  // At t=18, distance = 15 -> (10, 5) on the vertical leg.
  EXPECT_TRUE(geo::ApproxEqual(attr.DatabasePositionAt(route, 18.0),
                               {10.0, 5.0}));
}

TEST(PositionAttributeTest, ZeroSpeedIsStationary) {
  PositionAttribute attr = MakeAttr();
  attr.speed = 0.0;
  EXPECT_DOUBLE_EQ(attr.DatabaseRouteDistanceAt(1000.0), 2.0);
}

TEST(PositionAttributeTest, ToStringMentionsKeyFields) {
  const std::string s = MakeAttr().ToString();
  EXPECT_NE(s.find("route=7"), std::string::npos);
  EXPECT_NE(s.find("v=1.000"), std::string::npos);
}

TEST(DirectionSignTest, Values) {
  EXPECT_EQ(DirectionSign(TravelDirection::kForward), 1.0);
  EXPECT_EQ(DirectionSign(TravelDirection::kBackward), -1.0);
}

}  // namespace
}  // namespace modb::core
