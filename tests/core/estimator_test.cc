#include "core/estimator.h"

#include <gtest/gtest.h>

namespace modb::core {
namespace {

TEST(FittingMethodNameTest, Names) {
  EXPECT_EQ(FittingMethodName(FittingMethod::kSimple), "simple");
  EXPECT_EQ(FittingMethodName(FittingMethod::kLeastSquares), "least_squares");
}

TEST(DelayedLinearEstimateTest, Evaluation) {
  const DelayedLinearEstimate est{0.5, 2.0};
  EXPECT_DOUBLE_EQ(est.At(0.0), 0.0);
  EXPECT_DOUBLE_EQ(est.At(2.0), 0.0);   // still in the delay
  EXPECT_DOUBLE_EQ(est.At(4.0), 1.0);   // 0.5 * (4 - 2)
  EXPECT_DOUBLE_EQ(est.At(10.0), 4.0);
}

TEST(ImmediateLinearEstimateTest, Evaluation) {
  const ImmediateLinearEstimate est{0.25};
  EXPECT_DOUBLE_EQ(est.At(0.0), 0.0);
  EXPECT_DOUBLE_EQ(est.At(8.0), 2.0);
}

class EstimatorFitTest : public testing::Test {
 protected:
  DeviationTracker tracker_{1e-9};
};

TEST_F(EstimatorFitTest, SimpleFitDelayedLinear) {
  // Deviation 0 for two ticks (delay 2), then grows 1 per tick.
  tracker_.Reset(0.0, 0.0);
  tracker_.Observe(1.0, 0.0, 1.0, 1.0);
  tracker_.Observe(2.0, 0.0, 2.0, 1.0);
  tracker_.Observe(3.0, 1.0, 3.0, 0.0);
  tracker_.Observe(4.0, 2.0, 4.0, 0.0);
  const DelayedLinearEstimate est = FitDelayedLinear(tracker_, 4.0);
  EXPECT_DOUBLE_EQ(est.delay, 2.0);
  // Paper: a = k / (t - b) = 2 / (4 - 2).
  EXPECT_DOUBLE_EQ(est.slope, 1.0);
}

TEST_F(EstimatorFitTest, SimpleFitImmediateLinear) {
  tracker_.Reset(0.0, 0.0);
  tracker_.Observe(2.0, 1.0, 2.0, 1.0);
  tracker_.Observe(4.0, 2.0, 4.0, 1.0);
  const ImmediateLinearEstimate est = FitImmediateLinear(tracker_, 4.0);
  // a = k / t = 2 / 4.
  EXPECT_DOUBLE_EQ(est.slope, 0.5);
}

TEST_F(EstimatorFitTest, ZeroDeviationGivesZeroSlope) {
  tracker_.Reset(0.0, 0.0);
  tracker_.Observe(1.0, 0.0, 1.0, 1.0);
  EXPECT_EQ(FitDelayedLinear(tracker_, 1.0).slope, 0.0);
  EXPECT_EQ(FitImmediateLinear(tracker_, 1.0).slope, 0.0);
}

TEST_F(EstimatorFitTest, LeastSquaresImmediateMatchesLine) {
  tracker_.Reset(0.0, 0.0);
  for (int t = 1; t <= 20; ++t) tracker_.Observe(t, 0.3 * t, t, 1.0);
  const ImmediateLinearEstimate est =
      FitImmediateLinear(tracker_, 20.0, FittingMethod::kLeastSquares);
  EXPECT_NEAR(est.slope, 0.3, 1e-12);
}

TEST_F(EstimatorFitTest, LeastSquaresSmoothsNoisyTail) {
  // A last-tick spike skews the simple fit but barely moves least squares.
  tracker_.Reset(0.0, 0.0);
  for (int t = 1; t <= 9; ++t) tracker_.Observe(t, 0.1 * t, t, 1.0);
  tracker_.Observe(10.0, 5.0, 10.0, 1.0);  // spike
  const double simple =
      FitImmediateLinear(tracker_, 10.0, FittingMethod::kSimple).slope;
  const double ls =
      FitImmediateLinear(tracker_, 10.0, FittingMethod::kLeastSquares).slope;
  EXPECT_DOUBLE_EQ(simple, 0.5);  // 5 / 10
  EXPECT_LT(ls, simple);
  EXPECT_GT(ls, 0.1);
}

TEST_F(EstimatorFitTest, DelayedLeastSquaresKeepsSimpleDelay) {
  tracker_.Reset(0.0, 0.0);
  tracker_.Observe(1.0, 0.0, 1.0, 1.0);
  tracker_.Observe(2.0, 1.0, 2.0, 1.0);
  tracker_.Observe(3.0, 2.0, 3.0, 1.0);
  const DelayedLinearEstimate est =
      FitDelayedLinear(tracker_, 3.0, FittingMethod::kLeastSquares);
  EXPECT_DOUBLE_EQ(est.delay, 1.0);
  EXPECT_GT(est.slope, 0.0);
}

}  // namespace
}  // namespace modb::core
