#include "core/thresholds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

namespace modb::core {
namespace {

TEST(ThresholdTest, PaperExample1) {
  // Paper Example 1: a = 1, b = 2, C = 5 -> k_opt = sqrt(14) - 2 = 1.74.
  const double k = OptimalThresholdDelayedLinear(1.0, 2.0, 5.0);
  EXPECT_NEAR(k, std::sqrt(14.0) - 2.0, 1e-12);
  EXPECT_NEAR(k, 1.74, 0.005);
}

TEST(ThresholdTest, ImmediateSpecialCase) {
  // b = 0 reduces to sqrt(2aC).
  EXPECT_DOUBLE_EQ(OptimalThresholdDelayedLinear(2.0, 0.0, 9.0),
                   OptimalThresholdImmediateLinear(2.0, 9.0));
  EXPECT_DOUBLE_EQ(OptimalThresholdImmediateLinear(2.0, 9.0), 6.0);
}

TEST(ThresholdTest, ZeroSlopeNeverUpdates) {
  EXPECT_EQ(OptimalThresholdDelayedLinear(0.0, 5.0, 10.0), 0.0);
  EXPECT_EQ(OptimalThresholdImmediateLinear(0.0, 10.0), 0.0);
}

TEST(ThresholdTest, ZeroUpdateCostMeansUpdateImmediately) {
  EXPECT_DOUBLE_EQ(OptimalThresholdDelayedLinear(1.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(OptimalThresholdImmediateLinear(1.0, 0.0), 0.0);
}

TEST(ThresholdTest, DelayedLowerThanImmediate) {
  // Paper §3.2: for b > 0, k_opt^{a,b} <= k_opt^{a,0}.
  for (double a : {0.2, 1.0, 3.0}) {
    for (double b : {0.5, 2.0, 10.0}) {
      for (double C : {1.0, 5.0, 20.0}) {
        EXPECT_LE(OptimalThresholdDelayedLinear(a, b, C),
                  OptimalThresholdImmediateLinear(a, C) + 1e-12)
            << "a=" << a << " b=" << b << " C=" << C;
      }
    }
  }
}

TEST(ThresholdTest, MonotoneInSlopeAndCost) {
  // Threshold grows with the slope and with the update cost.
  EXPECT_LT(OptimalThresholdDelayedLinear(1.0, 2.0, 5.0),
            OptimalThresholdDelayedLinear(2.0, 2.0, 5.0));
  EXPECT_LT(OptimalThresholdDelayedLinear(1.0, 2.0, 5.0),
            OptimalThresholdDelayedLinear(1.0, 2.0, 10.0));
  // ... and shrinks as the delay grows.
  EXPECT_GT(OptimalThresholdDelayedLinear(1.0, 1.0, 5.0),
            OptimalThresholdDelayedLinear(1.0, 4.0, 5.0));
}

TEST(CostPerTimeUnitTest, KnownValue) {
  // a=1, b=0, C=5, k=sqrt(10): cycle length sqrt(10), cycle cost 5+5=10.
  const double k = std::sqrt(10.0);
  EXPECT_NEAR(CostPerTimeUnitDelayedLinear(k, 1.0, 0.0, 5.0),
              10.0 / std::sqrt(10.0), 1e-12);
}

// Property: Proposition 1 — k_opt minimises the cost per time unit over a
// dense grid of alternative thresholds, across a parameter sweep.
class Proposition1Property
    : public testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(Proposition1Property, OptimalThresholdMinimisesCost) {
  const auto [a, b, C] = GetParam();
  const double k_opt = OptimalThresholdDelayedLinear(a, b, C);
  ASSERT_GT(k_opt, 0.0);
  const double best = CostPerTimeUnitDelayedLinear(k_opt, a, b, C);
  for (int i = 1; i <= 400; ++i) {
    const double k = k_opt * 4.0 * i / 400.0;
    if (k <= 0.0) continue;
    EXPECT_GE(CostPerTimeUnitDelayedLinear(k, a, b, C), best - 1e-9)
        << "a=" << a << " b=" << b << " C=" << C << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SlopeDelayCostGrid, Proposition1Property,
    testing::Combine(testing::Values(0.1, 0.5, 1.0, 2.0, 5.0),
                     testing::Values(0.0, 0.5, 2.0, 8.0),
                     testing::Values(0.5, 5.0, 50.0)));

// Property: the first-order condition holds — the derivative of the cost at
// k_opt vanishes (checked by symmetric finite differences).
TEST(Proposition1Test, StationaryPoint) {
  const double a = 1.3;
  const double b = 2.7;
  const double C = 7.0;
  const double k = OptimalThresholdDelayedLinear(a, b, C);
  const double h = 1e-6;
  const double deriv = (CostPerTimeUnitDelayedLinear(k + h, a, b, C) -
                        CostPerTimeUnitDelayedLinear(k - h, a, b, C)) /
                       (2.0 * h);
  EXPECT_NEAR(deriv, 0.0, 1e-6);
}

TEST(ImmediateSimpleFitThresholdTest, Equation3) {
  // Paper eq. (3): k_opt = 2C / t under simple fitting.
  EXPECT_DOUBLE_EQ(ImmediateSimpleFitThreshold(5.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(ImmediateSimpleFitThreshold(5.0, 10.0), 1.0);
  EXPECT_TRUE(std::isinf(ImmediateSimpleFitThreshold(5.0, 0.0)));
}

TEST(ImmediateSimpleFitThresholdTest, ConsistentWithSqrtForm) {
  // k >= sqrt(2aC) with a = k/t iff k >= 2C/t: at equality both forms agree.
  const double C = 5.0;
  const double t = 4.0;
  const double k = ImmediateSimpleFitThreshold(C, t);  // 2C/t
  const double a = k / t;
  EXPECT_NEAR(k, OptimalThresholdImmediateLinear(a, C), 1e-12);
}

TEST(ImmediateSimpleFitThresholdTest, DecreasesOverTime) {
  // Paper: the threshold decreases as time passes without an update, so an
  // update may fire even while the deviation is decreasing.
  double prev = std::numeric_limits<double>::infinity();
  for (double t = 1.0; t <= 32.0; t *= 2.0) {
    const double k = ImmediateSimpleFitThreshold(3.0, t);
    EXPECT_LT(k, prev);
    prev = k;
  }
}

}  // namespace
}  // namespace modb::core
