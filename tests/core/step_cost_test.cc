// Tests of the step-deviation-cost analysis and the kStepThreshold policy
// (the paper's §3.1 alternative cost function, DESIGN.md §5 ablation 4).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/bounds.h"
#include "core/policies/policies.h"
#include "core/thresholds.h"
#include "core/update_policy.h"
#include "sim/simulator.h"
#include "sim/speed_curve.h"
#include "util/rng.h"

namespace modb::core {
namespace {

TEST(StepCostPerTimeUnitTest, KnownValues) {
  // a=1, b=0, h=2, C=3, k=2: cycle 2, above-h time 0 -> cost 3/2.
  EXPECT_DOUBLE_EQ(StepCostPerTimeUnit(2.0, 1.0, 0.0, 2.0, 3.0), 1.5);
  // k=4: cycle 4, above-h time 2 -> cost (3+2)/4.
  EXPECT_DOUBLE_EQ(StepCostPerTimeUnit(4.0, 1.0, 0.0, 2.0, 3.0), 1.25);
}

TEST(StepCostPerTimeUnitTest, ApproachesOneForLargeK) {
  // Never updating costs 1 per time unit in the limit.
  EXPECT_NEAR(StepCostPerTimeUnit(1e9, 1.0, 2.0, 1.0, 5.0), 1.0, 1e-6);
}

TEST(StepCostShouldUpdateTest, BangBangRule) {
  // C < b + h/a -> update at h.
  EXPECT_TRUE(StepCostShouldUpdate(1.0, 2.0, 3.0, 4.0));   // 4 < 5
  EXPECT_FALSE(StepCostShouldUpdate(1.0, 2.0, 3.0, 6.0));  // 6 > 5
  EXPECT_FALSE(StepCostShouldUpdate(1.0, 0.0, 1.0, 1.0));  // 1 == 1: not <
}

// Property: the bang-bang rule picks the cheaper of "update at h" vs
// "never update" over a dense threshold sweep.
class StepCostOptimality
    : public testing::TestWithParam<std::tuple<double, double, double, double>> {
};

TEST_P(StepCostOptimality, RuleMatchesSweep) {
  const auto [a, b, h, C] = GetParam();
  const double update_at_h = StepCostPerTimeUnit(h, a, b, h, C);
  const double never = 1.0;  // limit cost rate
  double sweep_best = never;
  for (int i = 0; i <= 300; ++i) {
    const double k = h + (static_cast<double>(i) / 10.0);
    sweep_best = std::min(sweep_best, StepCostPerTimeUnit(k, a, b, h, C));
  }
  if (StepCostShouldUpdate(a, b, h, C)) {
    EXPECT_NEAR(sweep_best, update_at_h, 1e-9);
    EXPECT_LT(update_at_h, never);
  } else {
    // Never updating is at least as good as any finite threshold, up to
    // the sweep's finite horizon.
    EXPECT_GE(update_at_h, sweep_best - 1e-9);
    EXPECT_GE(sweep_best, std::min(1.0, update_at_h) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StepCostOptimality,
    testing::Combine(testing::Values(0.5, 1.0, 2.0),   // a
                     testing::Values(0.0, 1.0, 4.0),   // b
                     testing::Values(0.5, 2.0),        // h
                     testing::Values(0.5, 3.0, 10.0)));  // C

TEST(StepThresholdBoundTest, ActiveRegimeCapsAtH) {
  // C < h/rate: guaranteed update-at-h regime.
  EXPECT_DOUBLE_EQ(StepThresholdBound(1.0, 3.0, 2.0, 1.0), 1.0);  // rate*t
  EXPECT_DOUBLE_EQ(StepThresholdBound(1.0, 3.0, 2.0, 10.0), 3.0);  // h
}

TEST(StepThresholdBoundTest, SilentRegimeGrowsLinearly) {
  // C >= h/rate: the policy may stay silent; only rate*t holds.
  EXPECT_DOUBLE_EQ(StepThresholdBound(1.0, 3.0, 5.0, 10.0), 10.0);
}

TEST(StepThresholdBoundTest, DegenerateInputs) {
  EXPECT_EQ(StepThresholdBound(0.0, 1.0, 1.0, 5.0), 0.0);
  EXPECT_EQ(StepThresholdBound(1.0, 1.0, 1.0, 0.0), 0.0);
}

PolicyConfig StepConfig(double h, double C) {
  PolicyConfig config;
  config.kind = PolicyKind::kStepThreshold;
  config.step_threshold = h;
  config.update_cost = C;
  config.max_speed = 1.5;
  return config;
}

TEST(StepThresholdPolicyTest, UpdatesAtThresholdWhenWorthIt) {
  // Example-1 pattern: drive 2 min, stop. h=1.5, C=2: fitted b=2, a=1 ->
  // C=2 < b + h/a = 3.5 -> update once deviation reaches h.
  const auto policy = MakePolicy(StepConfig(1.5, 2.0));
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  tracker.Observe(1.0, 0.0, 1.0, 1.0);
  tracker.Observe(2.0, 0.0, 2.0, 1.0);
  tracker.Observe(3.0, 1.0, 2.0, 0.0);
  EXPECT_FALSE(policy->Decide(tracker, 3.0, 0.0).has_value());  // below h
  tracker.Observe(4.0, 2.0, 2.0, 0.0);
  EXPECT_TRUE(policy->Decide(tracker, 4.0, 0.0).has_value());
}

TEST(StepThresholdPolicyTest, StaysSilentWhenUpdateTooExpensive) {
  // h=1, fitted b=0 (deviation grows immediately), a=1: b + h/a = 1; with
  // C=5 the update never pays off.
  const auto policy = MakePolicy(StepConfig(1.0, 5.0));
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  for (double t = 1.0; t <= 20.0; t += 1.0) {
    tracker.Observe(t, t, t, 1.0);
    EXPECT_FALSE(policy->Decide(tracker, t, 1.0).has_value()) << t;
  }
}

TEST(StepThresholdPolicyTest, SimulationRespectsBound) {
  util::Rng rng(77);
  sim::SimulationOptions sim_options;
  for (double C : {0.5, 2.0, 10.0}) {
    PolicyConfig config = StepConfig(1.0, C);
    for (int rep = 0; rep < 5; ++rep) {
      const sim::SpeedCurve curve =
          sim::MakeCityCurve(rng, sim::CurveGenOptions{});
      const sim::RunMetrics m =
          sim::SimulatePolicyOnCurve(curve, config, sim_options);
      EXPECT_EQ(m.bound_violations, 0u) << "C=" << C << " rep=" << rep;
    }
  }
}

TEST(StepThresholdPolicyTest, StepCostBeatsUniformPoliciesOnStepMetric) {
  // On the metric it optimises (step cost with threshold h), the step
  // policy should not lose to the uniform-cost dl policy.
  util::Rng rng(88);
  const StepDeviationCost step_cost(1.0);
  sim::SimulationOptions sim_options;
  sim_options.cost_function = &step_cost;
  double step_total = 0.0;
  double dl_total = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    const sim::SpeedCurve curve =
        sim::MakeCityCurve(rng, sim::CurveGenOptions{});
    PolicyConfig step_config = StepConfig(1.0, 5.0);
    PolicyConfig dl_config;
    dl_config.kind = PolicyKind::kDelayedLinear;
    dl_config.update_cost = 5.0;
    dl_config.max_speed = 1.5;
    step_total +=
        sim::SimulatePolicyOnCurve(curve, step_config, sim_options).total_cost;
    dl_total +=
        sim::SimulatePolicyOnCurve(curve, dl_config, sim_options).total_cost;
  }
  EXPECT_LE(step_total, dl_total * 1.05);
}

TEST(StepPolicyBoundDispatchTest, AttributeDispatch) {
  PositionAttribute attr;
  attr.policy = PolicyKind::kStepThreshold;
  attr.speed = 1.0;
  attr.max_speed = 1.5;
  attr.update_cost = 2.0;
  attr.step_threshold = 3.0;
  // C=2 < h/v=3 -> capped at h.
  EXPECT_DOUBLE_EQ(SlowDeviationBound(attr, 10.0), 3.0);
  // Fast rate 0.5: C=2 < 3/0.5=6 -> capped at h as well.
  EXPECT_DOUBLE_EQ(FastDeviationBound(attr, 10.0), 3.0);
  const std::vector<Duration> critical = BoundCriticalTimes(attr);
  ASSERT_EQ(critical.size(), 2u);  // h/v = 3 and h/(V-v) = 6
}

}  // namespace
}  // namespace modb::core
