#include "core/policies/policies.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/thresholds.h"
#include "core/update_policy.h"

namespace modb::core {
namespace {

PolicyConfig ConfigFor(PolicyKind kind, double C = 5.0) {
  PolicyConfig config;
  config.kind = kind;
  config.update_cost = C;
  config.max_speed = 1.5;
  return config;
}

// Feeds the tracker a deviation history of (t, deviation) pairs with unit
// actual speed.
void Feed(DeviationTracker& tracker,
          const std::vector<std::pair<double, double>>& history) {
  for (const auto& [t, d] : history) tracker.Observe(t, d, t, 1.0);
}

TEST(MakePolicyTest, CreatesEveryKind) {
  for (PolicyKind kind :
       {PolicyKind::kDelayedLinear, PolicyKind::kAverageImmediateLinear,
        PolicyKind::kCurrentImmediateLinear, PolicyKind::kFixedThreshold,
        PolicyKind::kPeriodic, PolicyKind::kHybridAdaptive}) {
    const auto policy = MakePolicy(ConfigFor(kind));
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_EQ(policy->name(), PolicyKindName(kind));
    EXPECT_EQ(policy->config().update_cost, 5.0);
  }
}

TEST(DlPolicyTest, NoDecisionAtZeroDeviation) {
  const auto policy = MakePolicy(ConfigFor(PolicyKind::kDelayedLinear));
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  Feed(tracker, {{1.0, 0.0}, {2.0, 0.0}});
  EXPECT_FALSE(policy->Decide(tracker, 2.0, 1.0).has_value());
}

TEST(DlPolicyTest, UpdatesAtOptimalThreshold) {
  // Paper Example 1: speed declared 1, travels 2 minutes (delay 2) then
  // stops; deviation grows 1/min. k_opt = 1.74, so the update fires at the
  // first tick with deviation >= 1.74.
  const auto policy = MakePolicy(ConfigFor(PolicyKind::kDelayedLinear));
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  Feed(tracker, {{1.0, 0.0}, {2.0, 0.0}});
  // Deviation starts rising at t=2 (the jam).
  tracker.Observe(3.0, 1.0, 2.0, 0.0);
  EXPECT_FALSE(policy->Decide(tracker, 3.0, 0.0).has_value());  // 1.0 < 1.74
  tracker.Observe(4.0, 2.0, 2.0, 0.0);
  const auto decision = policy->Decide(tracker, 4.0, 0.0);
  ASSERT_TRUE(decision.has_value());  // 2.0 >= 1.74
  // dl declares the current speed.
  EXPECT_DOUBLE_EQ(decision->declared_speed, 0.0);
}

TEST(DlPolicyTest, FractionalTickExampleMatchesPaper) {
  // With 0.25-minute ticks the dl policy should fire once the deviation
  // first reaches 1.74 miles, i.e. at t = 3.75 (deviation 1.75).
  const auto policy = MakePolicy(ConfigFor(PolicyKind::kDelayedLinear));
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  double fired_at = -1.0;
  for (double t = 0.25; t <= 6.0; t += 0.25) {
    const double deviation = t <= 2.0 ? 0.0 : t - 2.0;
    const double actual = std::min(t, 2.0);
    tracker.Observe(t, deviation, actual, t <= 2.0 ? 1.0 : 0.0);
    if (policy->Decide(tracker, t, 0.0).has_value()) {
      fired_at = t;
      break;
    }
  }
  EXPECT_NEAR(fired_at, 3.75, 1e-9);
}

TEST(AilPolicyTest, Fires2COverT) {
  // Equation (3): update iff k >= 2C/t. C=5 -> threshold 10/t.
  const auto policy =
      MakePolicy(ConfigFor(PolicyKind::kAverageImmediateLinear));
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  tracker.Observe(4.0, 2.0, 4.0, 1.0);
  EXPECT_FALSE(policy->Decide(tracker, 4.0, 1.0).has_value());  // 2 < 2.5
  tracker.Observe(5.0, 2.1, 5.0, 1.0);
  EXPECT_TRUE(policy->Decide(tracker, 5.0, 1.0).has_value());  // 2.1 >= 2
}

TEST(AilPolicyTest, DeclaresAverageSpeed) {
  const auto policy =
      MakePolicy(ConfigFor(PolicyKind::kAverageImmediateLinear));
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  // Covered 6 route units in 4 time units -> average speed 1.5.
  tracker.Observe(4.0, 3.0, 6.0, 2.0);
  const auto decision = policy->Decide(tracker, 4.0, 2.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_DOUBLE_EQ(decision->declared_speed, 1.5);
}

TEST(AilPolicyTest, CanFireWhileDeviationDecreases) {
  // Paper §3.2: k_opt = 2C/t decreases with t, so an update can fire while
  // the deviation itself is shrinking.
  const auto policy =
      MakePolicy(ConfigFor(PolicyKind::kAverageImmediateLinear));
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  tracker.Observe(2.0, 1.8, 2.0, 1.0);
  EXPECT_FALSE(policy->Decide(tracker, 2.0, 1.0).has_value());  // 1.8 < 5
  tracker.Observe(8.0, 1.4, 8.0, 1.0);  // deviation decreased
  EXPECT_TRUE(policy->Decide(tracker, 8.0, 1.0).has_value());  // 1.4 >= 1.25
}

TEST(CilPolicyTest, DeclaresCurrentSpeed) {
  const auto policy =
      MakePolicy(ConfigFor(PolicyKind::kCurrentImmediateLinear));
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  tracker.Observe(4.0, 3.0, 6.0, 2.0);
  const auto decision = policy->Decide(tracker, 4.0, 0.75);
  ASSERT_TRUE(decision.has_value());
  EXPECT_DOUBLE_EQ(decision->declared_speed, 0.75);
}

TEST(CilAndAilShareThreshold, SameFiringTick) {
  const auto ail = MakePolicy(ConfigFor(PolicyKind::kAverageImmediateLinear));
  const auto cil = MakePolicy(ConfigFor(PolicyKind::kCurrentImmediateLinear));
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  for (double t = 1.0; t <= 10.0; t += 1.0) {
    tracker.Observe(t, 0.4 * t, t, 1.0);
    EXPECT_EQ(ail->Decide(tracker, t, 1.0).has_value(),
              cil->Decide(tracker, t, 1.0).has_value())
        << "t=" << t;
  }
}

TEST(FixedThresholdPolicyTest, FiresAtConfiguredBound) {
  PolicyConfig config = ConfigFor(PolicyKind::kFixedThreshold);
  config.fixed_threshold = 2.5;
  const auto policy = MakePolicy(config);
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  tracker.Observe(1.0, 2.4, 1.0, 1.0);
  EXPECT_FALSE(policy->Decide(tracker, 1.0, 1.0).has_value());
  tracker.Observe(2.0, 2.5, 2.0, 1.0);
  const auto decision = policy->Decide(tracker, 2.0, 0.9);
  ASSERT_TRUE(decision.has_value());
  EXPECT_DOUBLE_EQ(decision->declared_speed, 0.9);
}

TEST(FixedThresholdPolicyTest, IndependentOfUpdateCost) {
  // The weakness the paper points out: B ignores C.
  PolicyConfig cheap = ConfigFor(PolicyKind::kFixedThreshold, 0.1);
  cheap.fixed_threshold = 2.0;
  PolicyConfig expensive = ConfigFor(PolicyKind::kFixedThreshold, 100.0);
  expensive.fixed_threshold = 2.0;
  const auto a = MakePolicy(cheap);
  const auto b = MakePolicy(expensive);
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  tracker.Observe(1.0, 3.0, 1.0, 1.0);
  EXPECT_EQ(a->Decide(tracker, 1.0, 1.0).has_value(),
            b->Decide(tracker, 1.0, 1.0).has_value());
}

TEST(PeriodicPolicyTest, ReportsEveryPeriod) {
  PolicyConfig config = ConfigFor(PolicyKind::kPeriodic);
  config.period = 2.0;
  const auto policy = MakePolicy(config);
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  policy->OnUpdateSent(0.0);
  tracker.Observe(1.0, 0.5, 1.0, 1.0);
  EXPECT_FALSE(policy->Decide(tracker, 1.0, 1.0).has_value());
  tracker.Observe(2.0, 1.0, 2.0, 1.0);
  const auto decision = policy->Decide(tracker, 2.0, 1.0);
  ASSERT_TRUE(decision.has_value());
  // Traditional method: declared speed 0 (no motion model).
  EXPECT_DOUBLE_EQ(decision->declared_speed, 0.0);
  policy->OnUpdateSent(2.0);
  tracker.Observe(3.0, 0.5, 3.0, 1.0);
  EXPECT_FALSE(policy->Decide(tracker, 3.0, 1.0).has_value());
}

TEST(PeriodicPolicyTest, FiresRegardlessOfDeviation) {
  PolicyConfig config = ConfigFor(PolicyKind::kPeriodic);
  config.period = 1.0;
  const auto policy = MakePolicy(config);
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  policy->OnUpdateSent(0.0);
  tracker.Observe(1.0, 0.0, 1.0, 1.0);  // zero deviation
  EXPECT_TRUE(policy->Decide(tracker, 1.0, 1.0).has_value());
}

TEST(HybridPolicyTest, SteadySpeedUsesDlMode) {
  PolicyConfig config = ConfigFor(PolicyKind::kHybridAdaptive);
  const auto policy = MakePolicy(config);
  auto* hybrid = static_cast<HybridAdaptivePolicy*>(policy.get());
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  // Constant speed (cv = 0) with a growing deviation.
  for (double t = 1.0; t <= 3.0; t += 1.0) {
    tracker.Observe(t, 0.4 * t, t, 1.0);
    policy->Decide(tracker, t, 1.0);
  }
  EXPECT_FALSE(hybrid->in_ail_mode());
}

TEST(HybridPolicyTest, FluctuatingSpeedUsesAilMode) {
  PolicyConfig config = ConfigFor(PolicyKind::kHybridAdaptive);
  config.hybrid_cv_switch = 0.3;
  const auto policy = MakePolicy(config);
  auto* hybrid = static_cast<HybridAdaptivePolicy*>(policy.get());
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  // Stop-and-go speeds: 2, 0, 2, 0 -> cv = 1.
  double dist = 0.0;
  for (int i = 1; i <= 4; ++i) {
    const double v = (i % 2 == 1) ? 2.0 : 0.0;
    dist += v;
    tracker.Observe(i, 0.3 * i, dist, v);
    policy->Decide(tracker, i, v);
  }
  EXPECT_TRUE(hybrid->in_ail_mode());
}

TEST(HybridPolicyTest, AilModeDeclaresAverageSpeed) {
  PolicyConfig config = ConfigFor(PolicyKind::kHybridAdaptive, 0.5);
  const auto policy = MakePolicy(config);
  DeviationTracker tracker;
  tracker.Reset(0.0, 0.0);
  double dist = 0.0;
  std::optional<UpdateDecision> decision;
  for (int i = 1; i <= 6 && !decision; ++i) {
    const double v = (i % 2 == 1) ? 2.0 : 0.0;
    dist += v;
    tracker.Observe(i, 0.5 * i, dist, v);
    decision = policy->Decide(tracker, i, v);
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_NEAR(decision->declared_speed, 1.0, 0.35);  // near the mean speed
}

}  // namespace
}  // namespace modb::core
