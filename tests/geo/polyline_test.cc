#include "geo/polyline.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace modb::geo {
namespace {

Polyline MakeL() {
  // L-shaped: (0,0) -> (10,0) -> (10,10); total length 20.
  return Polyline({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}});
}

TEST(PolylineTest, LengthAndValidity) {
  const Polyline line = MakeL();
  EXPECT_TRUE(line.Valid());
  EXPECT_DOUBLE_EQ(line.Length(), 20.0);
  EXPECT_EQ(line.num_segments(), 2u);
}

TEST(PolylineTest, CollapsesConsecutiveDuplicates) {
  const Polyline line(
      {{0.0, 0.0}, {0.0, 0.0}, {5.0, 0.0}, {5.0, 0.0}, {5.0, 5.0}});
  EXPECT_EQ(line.points().size(), 3u);
  EXPECT_DOUBLE_EQ(line.Length(), 10.0);
}

TEST(PolylineTest, InvalidWithFewPoints) {
  EXPECT_FALSE(Polyline().Valid());
  EXPECT_FALSE(Polyline({{1.0, 1.0}}).Valid());
  EXPECT_FALSE(Polyline({{1.0, 1.0}, {1.0, 1.0}}).Valid());
}

TEST(PolylineTest, PointAtDistance) {
  const Polyline line = MakeL();
  EXPECT_EQ(line.PointAtDistance(0.0), (Point2{0.0, 0.0}));
  EXPECT_EQ(line.PointAtDistance(5.0), (Point2{5.0, 0.0}));
  EXPECT_EQ(line.PointAtDistance(10.0), (Point2{10.0, 0.0}));  // vertex
  EXPECT_EQ(line.PointAtDistance(15.0), (Point2{10.0, 5.0}));
  EXPECT_EQ(line.PointAtDistance(20.0), (Point2{10.0, 10.0}));
  // Clamps beyond the ends.
  EXPECT_EQ(line.PointAtDistance(-5.0), (Point2{0.0, 0.0}));
  EXPECT_EQ(line.PointAtDistance(25.0), (Point2{10.0, 10.0}));
}

TEST(PolylineTest, TangentAtDistance) {
  const Polyline line = MakeL();
  EXPECT_TRUE(ApproxEqual(line.TangentAtDistance(5.0), {1.0, 0.0}));
  EXPECT_TRUE(ApproxEqual(line.TangentAtDistance(15.0), {0.0, 1.0}));
}

TEST(PolylineTest, ProjectPointOntoSegments) {
  const Polyline line = MakeL();
  double dist = 0.0;
  EXPECT_DOUBLE_EQ(line.ProjectPoint({5.0, 3.0}, &dist), 5.0);
  EXPECT_DOUBLE_EQ(dist, 3.0);
  EXPECT_DOUBLE_EQ(line.ProjectPoint({12.0, 5.0}, &dist), 15.0);
  EXPECT_DOUBLE_EQ(dist, 2.0);
}

TEST(PolylineTest, ProjectPointPicksNearerSegment) {
  const Polyline line = MakeL();
  // Near the corner, slightly closer to the vertical segment.
  const double s = line.ProjectPoint({10.5, 1.0});
  EXPECT_NEAR(s, 11.0, 1e-9);
}

TEST(PolylineTest, ProjectRoundTripsPointAt) {
  const Polyline line = MakeL();
  util::Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    const double s = rng.Uniform(0.0, line.Length());
    double dist = 1.0;
    const double s_back = line.ProjectPoint(line.PointAtDistance(s), &dist);
    EXPECT_NEAR(s_back, s, 1e-9);
    EXPECT_NEAR(dist, 0.0, 1e-9);
  }
}

TEST(PolylineTest, BoundingBoxBetween) {
  const Polyline line = MakeL();
  // Spanning the corner.
  const Box2 box = line.BoundingBoxBetween(5.0, 15.0);
  EXPECT_EQ(box.min, (Point2{5.0, 0.0}));
  EXPECT_EQ(box.max, (Point2{10.0, 5.0}));
  // Swapped arguments are normalised.
  const Box2 swapped = line.BoundingBoxBetween(15.0, 5.0);
  EXPECT_EQ(swapped.min, box.min);
  EXPECT_EQ(swapped.max, box.max);
  // Zero-width interval.
  const Box2 point_box = line.BoundingBoxBetween(5.0, 5.0);
  EXPECT_EQ(point_box.min, (Point2{5.0, 0.0}));
  EXPECT_EQ(point_box.max, (Point2{5.0, 0.0}));
}

TEST(PolylineTest, SubPolylineIncludesInteriorVertices) {
  const Polyline line = MakeL();
  const std::vector<Point2> sub = line.SubPolyline(5.0, 15.0);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub[0], (Point2{5.0, 0.0}));
  EXPECT_EQ(sub[1], (Point2{10.0, 0.0}));
  EXPECT_EQ(sub[2], (Point2{10.0, 5.0}));
}

TEST(PolylineTest, SubPolylineDegenerate) {
  const Polyline line = MakeL();
  const std::vector<Point2> sub = line.SubPolyline(7.0, 7.0);
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_EQ(sub[0], (Point2{7.0, 0.0}));
}

TEST(PolylineTest, SubIntersectsPolygon) {
  const Polyline line = MakeL();
  const Polygon square = Polygon::Rectangle(4.0, -1.0, 6.0, 1.0);
  EXPECT_TRUE(line.SubIntersectsPolygon(0.0, 10.0, square));
  EXPECT_TRUE(line.SubIntersectsPolygon(4.5, 5.5, square));
  EXPECT_FALSE(line.SubIntersectsPolygon(7.0, 9.0, square));
  EXPECT_FALSE(line.SubIntersectsPolygon(12.0, 18.0, square));
}

TEST(PolylineTest, SubInsidePolygon) {
  const Polyline line = MakeL();
  const Polygon big = Polygon::Rectangle(-1.0, -1.0, 11.0, 11.0);
  EXPECT_TRUE(line.SubInsidePolygon(0.0, 20.0, big));
  const Polygon small = Polygon::Rectangle(4.0, -1.0, 6.0, 1.0);
  EXPECT_TRUE(line.SubInsidePolygon(4.5, 5.5, small));
  EXPECT_FALSE(line.SubInsidePolygon(4.5, 8.0, small));
}

TEST(PolylineTest, SubInsidePolygonSpanningCorner) {
  const Polyline line = MakeL();
  // Polygon covering only the corner region.
  const Polygon corner = Polygon::Rectangle(8.0, -1.0, 11.0, 3.0);
  EXPECT_TRUE(line.SubInsidePolygon(9.0, 12.0, corner));
  EXPECT_FALSE(line.SubInsidePolygon(9.0, 14.0, corner));
}

TEST(PolylineTest, SegmentIndexAt) {
  const Polyline line = MakeL();
  EXPECT_EQ(line.SegmentIndexAt(0.0), 0u);
  EXPECT_EQ(line.SegmentIndexAt(9.9), 0u);
  EXPECT_EQ(line.SegmentIndexAt(10.1), 1u);
  EXPECT_EQ(line.SegmentIndexAt(20.0), 1u);
}

}  // namespace
}  // namespace modb::geo
