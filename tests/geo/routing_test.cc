#include "geo/routing.h"

#include <gtest/gtest.h>

#include <cmath>

namespace modb::geo {
namespace {

TEST(RoutingGraphTest, CrossDetection) {
  RouteNetwork net;
  net.AddStraightRoute({-10.0, 0.0}, {10.0, 0.0}, "ew");
  net.AddStraightRoute({0.0, -10.0}, {0.0, 10.0}, "ns");
  const RoutingGraph graph(&net);
  ASSERT_EQ(graph.num_junctions(), 1u);
  EXPECT_TRUE(ApproxEqual(graph.JunctionPositions()[0], {0.0, 0.0}));
}

TEST(RoutingGraphTest, GridJunctionCount) {
  RouteNetwork net;
  net.AddGridNetwork(3, 4, 10.0);  // 3 EW x 4 NS streets
  const RoutingGraph graph(&net);
  EXPECT_EQ(graph.num_junctions(), 12u);  // every EW-NS crossing
  // Each EW street has 4 stops -> 3 edges; each NS street has 3 stops ->
  // 2 edges: 3*3 + 4*2 = 17.
  EXPECT_EQ(graph.num_edges(), 17u);
}

TEST(RoutingGraphTest, DisconnectedRoutes) {
  RouteNetwork net;
  net.AddStraightRoute({0.0, 0.0}, {10.0, 0.0});
  net.AddStraightRoute({0.0, 5.0}, {10.0, 5.0});  // parallel, never meets
  const RoutingGraph graph(&net);
  EXPECT_EQ(graph.num_junctions(), 0u);
  const auto path = graph.ShortestPath({0, 2.0}, {1, 3.0});
  EXPECT_EQ(path.status().code(), util::StatusCode::kNotFound);
}

TEST(RoutingGraphTest, SameRoutePath) {
  RouteNetwork net;
  net.AddStraightRoute({0.0, 0.0}, {100.0, 0.0});
  const RoutingGraph graph(&net);
  const auto path = graph.ShortestPath({0, 20.0}, {0, 70.0});
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_EQ((*path)[0].route, 0u);
  EXPECT_DOUBLE_EQ((*path)[0].from, 20.0);
  EXPECT_DOUBLE_EQ((*path)[0].to, 70.0);
  EXPECT_DOUBLE_EQ(RoutingGraph::PathLength(*path), 50.0);
}

TEST(RoutingGraphTest, SameRouteBackwardPath) {
  RouteNetwork net;
  net.AddStraightRoute({0.0, 0.0}, {100.0, 0.0});
  const RoutingGraph graph(&net);
  const auto path = graph.ShortestPath({0, 70.0}, {0, 20.0});
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_DOUBLE_EQ((*path)[0].from, 70.0);
  EXPECT_DOUBLE_EQ((*path)[0].to, 20.0);
}

TEST(RoutingGraphTest, ZeroLengthTrip) {
  RouteNetwork net;
  net.AddStraightRoute({0.0, 0.0}, {100.0, 0.0});
  const RoutingGraph graph(&net);
  const auto path = graph.ShortestPath({0, 20.0}, {0, 20.0});
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->empty());
}

TEST(RoutingGraphTest, TurnAtJunction) {
  RouteNetwork net;
  const RouteId ew = net.AddStraightRoute({-10.0, 0.0}, {10.0, 0.0});
  const RouteId ns = net.AddStraightRoute({0.0, -10.0}, {0.0, 10.0});
  const RoutingGraph graph(&net);
  // From (-5, 0) on EW to (0, 5) on NS: 5 east + 5 north.
  const auto path = graph.ShortestPath({ew, 5.0}, {ns, 15.0});
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ((*path)[0].route, ew);
  EXPECT_DOUBLE_EQ((*path)[0].from, 5.0);
  EXPECT_DOUBLE_EQ((*path)[0].to, 10.0);  // junction at EW arc length 10
  EXPECT_EQ((*path)[1].route, ns);
  EXPECT_DOUBLE_EQ((*path)[1].from, 10.0);  // junction at NS arc length 10
  EXPECT_DOUBLE_EQ((*path)[1].to, 15.0);
  EXPECT_DOUBLE_EQ(RoutingGraph::PathLength(*path), 10.0);
}

TEST(RoutingGraphTest, GridManhattanDistance) {
  RouteNetwork net;
  net.AddGridNetwork(4, 4, 10.0);
  const RoutingGraph graph(&net);
  // EW street 0 (y=0) at x=5 to EW street 3 (y=30) at x=25: Manhattan
  // distance = |25-5| + 30 with an optimal L-shaped path.
  const auto path = graph.ShortestPath({0, 5.0}, {3, 25.0});
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(RoutingGraph::PathLength(*path), 50.0);
  // Legs alternate roads and stay contiguous in space.
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    const Point2 end =
        net.route((*path)[i].route).PointAt((*path)[i].to);
    const Point2 next_start =
        net.route((*path)[i + 1].route).PointAt((*path)[i + 1].from);
    EXPECT_TRUE(ApproxEqual(end, next_start, 1e-6)) << "leg " << i;
  }
}

TEST(RoutingGraphTest, PathMergesConsecutiveSameRouteLegs) {
  RouteNetwork net;
  net.AddGridNetwork(3, 3, 10.0);
  const RoutingGraph graph(&net);
  // Straight along one street through two junctions: one merged leg.
  const auto path = graph.ShortestPath({0, 1.0}, {0, 19.0});
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_DOUBLE_EQ((*path)[0].Length(), 18.0);
}

TEST(RoutingGraphTest, InvalidAnchors) {
  RouteNetwork net;
  net.AddStraightRoute({0.0, 0.0}, {10.0, 0.0});
  const RoutingGraph graph(&net);
  EXPECT_EQ(graph.ShortestPath({9, 0.0}, {0, 1.0}).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(graph.ShortestPath({0, -1.0}, {0, 1.0}).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(graph.ShortestPath({0, 1.0}, {0, 50.0}).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(RoutingGraphTest, TouchingEndpointsConnect) {
  // Two roads sharing only an endpoint (the airport-shuttle layout).
  RouteNetwork net;
  const RouteId a = net.AddStraightRoute({0.0, 0.0}, {10.0, 0.0});
  const RouteId b = net.AddStraightRoute({10.0, 0.0}, {10.0, 20.0});
  const RoutingGraph graph(&net);
  EXPECT_EQ(graph.num_junctions(), 1u);
  const auto path = graph.ShortestPath({a, 2.0}, {b, 15.0});
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(RoutingGraph::PathLength(*path), 23.0);
}

TEST(RoutingGraphTest, PicksShorterOfTwoAlternatives) {
  // A square of four roads: going around the short way must win.
  RouteNetwork net;
  const RouteId south = net.AddStraightRoute({0.0, 0.0}, {10.0, 0.0});
  net.AddStraightRoute({10.0, 0.0}, {10.0, 10.0});  // east
  net.AddStraightRoute({10.0, 10.0}, {0.0, 10.0});  // north
  const RouteId west = net.AddStraightRoute({0.0, 10.0}, {0.0, 0.0});
  const RoutingGraph graph(&net);
  EXPECT_EQ(graph.num_junctions(), 4u);
  // From south road near its west end to the west road: going via the
  // shared corner (0,0) is far shorter than around three sides.
  const auto path = graph.ShortestPath({south, 1.0}, {west, 9.0});
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(RoutingGraph::PathLength(*path), 2.0);
}

}  // namespace
}  // namespace modb::geo
