#include "geo/segment.h"

#include <gtest/gtest.h>

namespace modb::geo {
namespace {

TEST(SegmentTest, LengthAndAt) {
  const Segment s({0.0, 0.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.Length(), 5.0);
  EXPECT_EQ(s.At(0.0), (Point2{0.0, 0.0}));
  EXPECT_EQ(s.At(1.0), (Point2{3.0, 4.0}));
  EXPECT_EQ(s.At(0.5), (Point2{1.5, 2.0}));
  // Parameter clamps.
  EXPECT_EQ(s.At(-1.0), s.At(0.0));
  EXPECT_EQ(s.At(2.0), s.At(1.0));
}

TEST(SegmentTest, ClosestPointInterior) {
  const Segment s({0.0, 0.0}, {10.0, 0.0});
  EXPECT_EQ(s.ClosestPoint({5.0, 3.0}), (Point2{5.0, 0.0}));
  EXPECT_DOUBLE_EQ(s.DistanceTo({5.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(s.ClosestParam({5.0, 3.0}), 0.5);
}

TEST(SegmentTest, ClosestPointClampsToEndpoints) {
  const Segment s({0.0, 0.0}, {10.0, 0.0});
  EXPECT_EQ(s.ClosestPoint({-4.0, 3.0}), (Point2{0.0, 0.0}));
  EXPECT_EQ(s.ClosestPoint({14.0, -3.0}), (Point2{10.0, 0.0}));
  EXPECT_DOUBLE_EQ(s.DistanceTo({-4.0, 3.0}), 5.0);
}

TEST(SegmentTest, DegenerateSegment) {
  const Segment s({2.0, 2.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(s.Length(), 0.0);
  EXPECT_EQ(s.ClosestPoint({5.0, 6.0}), (Point2{2.0, 2.0}));
  EXPECT_DOUBLE_EQ(s.DistanceTo({5.0, 6.0}), 5.0);
}

TEST(SegmentTest, BoundingBox) {
  const Segment s({3.0, -1.0}, {1.0, 4.0});
  const Box2 box = s.BoundingBox();
  EXPECT_EQ(box.min, (Point2{1.0, -1.0}));
  EXPECT_EQ(box.max, (Point2{3.0, 4.0}));
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {2, 2}),
                                Segment({0, 2}, {2, 0})));
}

TEST(SegmentsIntersectTest, Disjoint) {
  EXPECT_FALSE(SegmentsIntersect(Segment({0, 0}, {1, 0}),
                                 Segment({0, 1}, {1, 1})));
  EXPECT_FALSE(SegmentsIntersect(Segment({0, 0}, {1, 1}),
                                 Segment({2, 2}, {3, 3})));
}

TEST(SegmentsIntersectTest, TouchingEndpoint) {
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {1, 1}),
                                Segment({1, 1}, {2, 0})));
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {2, 0}),
                                Segment({1, 0}, {1, 5})));
}

TEST(SegmentsIntersectTest, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {2, 0}),
                                Segment({1, 0}, {3, 0})));
  EXPECT_FALSE(SegmentsIntersect(Segment({0, 0}, {1, 0}),
                                 Segment({2, 0}, {3, 0})));
}

TEST(SegmentIntersectionTest, CrossingPoint) {
  const auto p = SegmentIntersection(Segment({0, 0}, {2, 2}),
                                     Segment({0, 2}, {2, 0}));
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(ApproxEqual(*p, {1.0, 1.0}));
}

TEST(SegmentIntersectionTest, ParallelDisjoint) {
  EXPECT_FALSE(SegmentIntersection(Segment({0, 0}, {1, 0}),
                                   Segment({0, 1}, {1, 1}))
                   .has_value());
}

TEST(SegmentIntersectionTest, NonParallelButMissing) {
  EXPECT_FALSE(SegmentIntersection(Segment({0, 0}, {1, 0}),
                                   Segment({5, 1}, {5, -1}))
                   .has_value());
}

TEST(SegmentIntersectionTest, CollinearOverlapReturnsSharedPoint) {
  const auto p = SegmentIntersection(Segment({0, 0}, {2, 0}),
                                     Segment({1, 0}, {3, 0}));
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {2, 0}),
                                Segment(*p, *p)));
}

TEST(SegmentIntersectionTest, EndpointTouch) {
  const auto p = SegmentIntersection(Segment({0, 0}, {1, 1}),
                                     Segment({1, 1}, {5, 1}));
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(ApproxEqual(*p, {1.0, 1.0}));
}

}  // namespace
}  // namespace modb::geo
