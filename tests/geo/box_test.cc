#include "geo/box.h"

#include <gtest/gtest.h>

namespace modb::geo {
namespace {

TEST(Box2Test, DefaultIsEmpty) {
  Box2 box;
  EXPECT_TRUE(box.Empty());
  EXPECT_EQ(box.Area(), 0.0);
  EXPECT_FALSE(box.Contains({0.0, 0.0}));
}

TEST(Box2Test, ExpandByPoints) {
  Box2 box;
  box.Expand({1.0, 2.0});
  EXPECT_FALSE(box.Empty());
  EXPECT_TRUE(box.Contains({1.0, 2.0}));
  box.Expand({-1.0, 5.0});
  EXPECT_TRUE(box.Contains({0.0, 3.0}));
  EXPECT_DOUBLE_EQ(box.Width(), 2.0);
  EXPECT_DOUBLE_EQ(box.Height(), 3.0);
  EXPECT_DOUBLE_EQ(box.Area(), 6.0);
}

TEST(Box2Test, ExpandByBox) {
  Box2 a({0.0, 0.0}, {1.0, 1.0});
  a.Expand(Box2({2.0, 2.0}, {3.0, 3.0}));
  EXPECT_TRUE(a.Contains({1.5, 1.5}));
  Box2 empty;
  a.Expand(empty);  // no-op
  EXPECT_DOUBLE_EQ(a.Area(), 9.0);
}

TEST(Box2Test, IntersectsIncludesTouching) {
  const Box2 a({0.0, 0.0}, {1.0, 1.0});
  EXPECT_TRUE(a.Intersects(Box2({1.0, 0.0}, {2.0, 1.0})));
  EXPECT_FALSE(a.Intersects(Box2({1.1, 0.0}, {2.0, 1.0})));
  EXPECT_TRUE(a.Intersects(Box2({0.25, 0.25}, {0.75, 0.75})));
  EXPECT_FALSE(a.Intersects(Box2()));
}

TEST(Box2Test, Inflate) {
  Box2 a({0.0, 0.0}, {1.0, 1.0});
  a.Inflate(0.5);
  EXPECT_TRUE(a.Contains({-0.5, -0.5}));
  EXPECT_TRUE(a.Contains({1.5, 1.5}));
}

TEST(Box2Test, Center) {
  const Box2 a({0.0, 2.0}, {4.0, 6.0});
  EXPECT_EQ(a.Center(), (Point2{2.0, 4.0}));
}

TEST(Box3Test, DefaultIsEmpty) {
  Box3 box;
  EXPECT_TRUE(box.Empty());
  EXPECT_EQ(box.Volume(), 0.0);
  EXPECT_EQ(box.Margin(), 0.0);
}

TEST(Box3Test, ConstructionAndVolume) {
  const Box3 box(0.0, 0.0, 0.0, 2.0, 3.0, 4.0);
  EXPECT_FALSE(box.Empty());
  EXPECT_DOUBLE_EQ(box.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 9.0);
  EXPECT_DOUBLE_EQ(box.Extent(0), 2.0);
  EXPECT_DOUBLE_EQ(box.Extent(2), 4.0);
}

TEST(Box3Test, LiftFrom2D) {
  const Box2 flat({1.0, 2.0}, {3.0, 4.0});
  const Box3 box(flat, 5.0, 7.0);
  EXPECT_DOUBLE_EQ(box.min[0], 1.0);
  EXPECT_DOUBLE_EQ(box.max[1], 4.0);
  EXPECT_DOUBLE_EQ(box.min[2], 5.0);
  EXPECT_DOUBLE_EQ(box.max[2], 7.0);
}

TEST(Box3Test, IntersectsAndContains) {
  const Box3 a(0, 0, 0, 10, 10, 10);
  const Box3 b(5, 5, 5, 15, 15, 15);
  const Box3 inside(1, 1, 1, 2, 2, 2);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_TRUE(a.Contains(inside));
  EXPECT_FALSE(inside.Contains(a));
  EXPECT_FALSE(a.Contains(b));
  const Box3 disjoint(11, 0, 0, 12, 1, 1);
  EXPECT_FALSE(a.Intersects(disjoint));
}

TEST(Box3Test, DegenerateTimeSliceIntersects) {
  // Query slabs have zero thickness in t; intersection must still work.
  const Box3 slab(0, 0, 5, 10, 10, 5);
  const Box3 plane(2, 2, 0, 3, 3, 10);
  EXPECT_TRUE(slab.Intersects(plane));
  EXPECT_TRUE(plane.Intersects(slab));
}

TEST(Box3Test, OverlapVolume) {
  const Box3 a(0, 0, 0, 4, 4, 4);
  const Box3 b(2, 2, 2, 6, 6, 6);
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 8.0);
  EXPECT_DOUBLE_EQ(b.OverlapVolume(a), 8.0);
  const Box3 disjoint(5, 5, 5, 6, 6, 6);
  EXPECT_DOUBLE_EQ(a.OverlapVolume(disjoint), 0.0);
}

TEST(Box3Test, UnionAndEnlargement) {
  const Box3 a(0, 0, 0, 1, 1, 1);
  const Box3 b(2, 0, 0, 3, 1, 1);
  const Box3 u = a.Union(b);
  EXPECT_DOUBLE_EQ(u.Volume(), 3.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 2.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(Box3Test, ExpandAccumulates) {
  Box3 acc;
  acc.Expand(Box3(0, 0, 0, 1, 1, 1));
  acc.Expand(Box3(-1, -1, -1, 0, 0, 0));
  EXPECT_DOUBLE_EQ(acc.Volume(), 8.0);
  EXPECT_DOUBLE_EQ(acc.CenterDim(0), 0.0);
}

}  // namespace
}  // namespace modb::geo
