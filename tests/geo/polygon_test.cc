#include "geo/polygon.h"

#include <gtest/gtest.h>

#include <cmath>

namespace modb::geo {
namespace {

TEST(PolygonTest, RectangleFactoryNormalisesCorners) {
  const Polygon r = Polygon::Rectangle(3.0, 4.0, 1.0, 2.0);
  EXPECT_TRUE(r.Valid());
  EXPECT_TRUE(r.Contains({2.0, 3.0}));
  EXPECT_DOUBLE_EQ(r.Area(), 4.0);
}

TEST(PolygonTest, CenteredRectangle) {
  const Polygon r = Polygon::CenteredRectangle({5.0, 5.0}, 2.0, 1.0);
  EXPECT_TRUE(r.Contains({5.0, 5.0}));
  EXPECT_TRUE(r.Contains({7.0, 6.0}));   // corner, boundary counts
  EXPECT_FALSE(r.Contains({7.1, 5.0}));
  EXPECT_DOUBLE_EQ(r.Area(), 8.0);
}

TEST(PolygonTest, ContainsInteriorBoundaryExterior) {
  const Polygon square = Polygon::Rectangle(0.0, 0.0, 10.0, 10.0);
  EXPECT_TRUE(square.Contains({5.0, 5.0}));
  EXPECT_TRUE(square.Contains({0.0, 5.0}));    // edge
  EXPECT_TRUE(square.Contains({10.0, 10.0}));  // vertex
  EXPECT_FALSE(square.Contains({10.01, 5.0}));
  EXPECT_FALSE(square.Contains({-0.01, 5.0}));
}

TEST(PolygonTest, TriangleContains) {
  const Polygon tri({{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}});
  EXPECT_TRUE(tri.Contains({1.0, 1.0}));
  EXPECT_TRUE(tri.Contains({2.0, 2.0}));  // hypotenuse
  EXPECT_FALSE(tri.Contains({3.0, 3.0}));
}

TEST(PolygonTest, NonConvexContains) {
  // L-shaped polygon.
  const Polygon ell({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  EXPECT_TRUE(ell.Contains({1.0, 3.0}));
  EXPECT_TRUE(ell.Contains({3.0, 1.0}));
  EXPECT_FALSE(ell.Contains({3.0, 3.0}));  // the notch
}

TEST(PolygonTest, RegularNGonApproximatesCircle) {
  const Polygon hexadecagon = Polygon::RegularNGon({0.0, 0.0}, 1.0, 16);
  EXPECT_EQ(hexadecagon.size(), 16u);
  // Area of an inscribed n-gon: (n/2) r^2 sin(2 pi / n).
  const double expected = 8.0 * std::sin(M_PI / 8.0);
  EXPECT_NEAR(hexadecagon.Area(), expected, 1e-9);
  EXPECT_TRUE(hexadecagon.Contains({0.0, 0.0}));
  EXPECT_FALSE(hexadecagon.Contains({1.01, 0.0}));
}

TEST(PolygonTest, SignedAreaOrientation) {
  const Polygon ccw({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  const Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_GT(ccw.SignedArea(), 0.0);
  EXPECT_LT(cw.SignedArea(), 0.0);
  EXPECT_DOUBLE_EQ(ccw.Area(), cw.Area());
}

TEST(PolygonTest, ClockwiseWindingContainsStillWorks) {
  const Polygon cw({{0, 0}, {0, 10}, {10, 10}, {10, 0}});
  EXPECT_TRUE(cw.Contains({5.0, 5.0}));
  EXPECT_FALSE(cw.Contains({11.0, 5.0}));
}

TEST(PolygonTest, IntersectsSegment) {
  const Polygon square = Polygon::Rectangle(0.0, 0.0, 10.0, 10.0);
  // Fully inside.
  EXPECT_TRUE(square.Intersects(Segment({1, 1}, {2, 2})));
  // Crossing one edge.
  EXPECT_TRUE(square.Intersects(Segment({5, 5}, {15, 5})));
  // Crossing the whole polygon, endpoints outside.
  EXPECT_TRUE(square.Intersects(Segment({-5, 5}, {15, 5})));
  // Fully outside.
  EXPECT_FALSE(square.Intersects(Segment({11, 11}, {12, 12})));
  // Touching a corner.
  EXPECT_TRUE(square.Intersects(Segment({10, 10}, {12, 12})));
}

TEST(PolygonTest, ContainsSegmentConvex) {
  const Polygon square = Polygon::Rectangle(0.0, 0.0, 10.0, 10.0);
  EXPECT_TRUE(square.ContainsSegment(Segment({1, 1}, {9, 9})));
  EXPECT_TRUE(square.ContainsSegment(Segment({0, 0}, {10, 10})));
  EXPECT_FALSE(square.ContainsSegment(Segment({5, 5}, {15, 5})));
  EXPECT_FALSE(square.ContainsSegment(Segment({-1, 5}, {5, 5})));
}

TEST(PolygonTest, ContainsSegmentNonConvex) {
  const Polygon ell({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  EXPECT_TRUE(ell.ContainsSegment(Segment({0.5, 0.5}, {3.5, 0.5})));
  // Endpoints inside the two arms, segment passes through the notch.
  EXPECT_FALSE(ell.ContainsSegment(Segment({1.0, 3.5}, {3.5, 1.0})));
}

TEST(PolygonTest, InvalidPolygon) {
  Polygon empty;
  EXPECT_FALSE(empty.Valid());
  EXPECT_FALSE(empty.Contains({0.0, 0.0}));
  EXPECT_FALSE(empty.Intersects(Segment({0, 0}, {1, 1})));
  const Polygon degenerate({{0, 0}, {1, 1}});
  EXPECT_FALSE(degenerate.Valid());
}

TEST(PolygonTest, BoundingBox) {
  const Polygon tri({{1.0, 2.0}, {5.0, 3.0}, {2.0, 7.0}});
  const Box2 box = tri.BoundingBox();
  EXPECT_EQ(box.min, (Point2{1.0, 2.0}));
  EXPECT_EQ(box.max, (Point2{5.0, 7.0}));
}

TEST(PolygonTest, EdgeAccessorWraps) {
  const Polygon tri({{0, 0}, {1, 0}, {0, 1}});
  const Segment last = tri.Edge(2);
  EXPECT_EQ(last.a, (Point2{0.0, 1.0}));
  EXPECT_EQ(last.b, (Point2{0.0, 0.0}));
}

}  // namespace
}  // namespace modb::geo
