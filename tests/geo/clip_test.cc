// Tests of the exact clipping primitives behind probability refinement:
// Polygon::IntersectionLength and Polyline::SubLengthInsidePolygon.

#include <gtest/gtest.h>

#include <cmath>

#include "geo/polygon.h"
#include "geo/polyline.h"
#include "util/rng.h"

namespace modb::geo {
namespace {

TEST(IntersectionLengthTest, FullyInside) {
  const Polygon square = Polygon::Rectangle(0.0, 0.0, 10.0, 10.0);
  EXPECT_DOUBLE_EQ(square.IntersectionLength(Segment({1, 5}, {9, 5})), 8.0);
}

TEST(IntersectionLengthTest, FullyOutside) {
  const Polygon square = Polygon::Rectangle(0.0, 0.0, 10.0, 10.0);
  EXPECT_DOUBLE_EQ(square.IntersectionLength(Segment({11, 5}, {20, 5})), 0.0);
  EXPECT_DOUBLE_EQ(square.IntersectionLength(Segment({-5, 20}, {15, 20})),
                   0.0);
}

TEST(IntersectionLengthTest, CrossingOneEdge) {
  const Polygon square = Polygon::Rectangle(0.0, 0.0, 10.0, 10.0);
  // Enters at x=10, 5 units inside.
  EXPECT_DOUBLE_EQ(square.IntersectionLength(Segment({5, 5}, {15, 5})), 5.0);
}

TEST(IntersectionLengthTest, CrossingWholePolygon) {
  const Polygon square = Polygon::Rectangle(0.0, 0.0, 10.0, 10.0);
  EXPECT_DOUBLE_EQ(square.IntersectionLength(Segment({-5, 5}, {15, 5})),
                   10.0);
}

TEST(IntersectionLengthTest, DiagonalThroughSquare) {
  const Polygon square = Polygon::Rectangle(0.0, 0.0, 10.0, 10.0);
  EXPECT_NEAR(square.IntersectionLength(Segment({-1, -1}, {11, 11})),
              10.0 * std::sqrt(2.0), 1e-9);
}

TEST(IntersectionLengthTest, NonConvexNotch) {
  // L-shape; a segment passing over the notch is inside on two pieces.
  const Polygon ell({{0, 0}, {4, 0}, {4, 4}, {3, 4}, {3, 1}, {1, 1},
                     {1, 4}, {0, 4}});
  // y = 2 crosses: inside [0,1] and [3,4] -> length 2.
  EXPECT_NEAR(ell.IntersectionLength(Segment({-1, 2}, {5, 2})), 2.0, 1e-9);
  // y = 0.5 is inside the base: [0,4] -> length 4.
  EXPECT_NEAR(ell.IntersectionLength(Segment({-1, 0.5}, {5, 0.5})), 4.0,
              1e-9);
}

TEST(IntersectionLengthTest, DegenerateSegment) {
  const Polygon square = Polygon::Rectangle(0.0, 0.0, 10.0, 10.0);
  EXPECT_DOUBLE_EQ(square.IntersectionLength(Segment({5, 5}, {5, 5})), 0.0);
}

TEST(IntersectionLengthTest, SegmentAlongBoundary) {
  const Polygon square = Polygon::Rectangle(0.0, 0.0, 10.0, 10.0);
  // Boundary counts as contained: the full run lies "inside".
  EXPECT_NEAR(square.IntersectionLength(Segment({0, 0}, {10, 0})), 10.0,
              1e-9);
}

TEST(IntersectionLengthTest, InvalidPolygon) {
  const Polygon invalid;
  EXPECT_DOUBLE_EQ(invalid.IntersectionLength(Segment({0, 0}, {1, 1})), 0.0);
}

// Property: length inside + length outside == total, sampled check.
TEST(IntersectionLengthTest, ComplementsToTotalLength) {
  const Polygon hexagon = Polygon::RegularNGon({5.0, 5.0}, 4.0, 6);
  util::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const Segment s({rng.Uniform(-2.0, 12.0), rng.Uniform(-2.0, 12.0)},
                    {rng.Uniform(-2.0, 12.0), rng.Uniform(-2.0, 12.0)});
    const double inside = hexagon.IntersectionLength(s);
    EXPECT_GE(inside, -1e-9);
    EXPECT_LE(inside, s.Length() + 1e-9);
    // Cross-check against dense sampling.
    int in_samples = 0;
    const int kSamples = 2000;
    for (int k = 0; k < kSamples; ++k) {
      const double t = (k + 0.5) / kSamples;
      if (hexagon.Contains(s.At(t))) ++in_samples;
    }
    const double sampled = s.Length() * in_samples / kSamples;
    EXPECT_NEAR(inside, sampled, s.Length() * 5e-3 + 1e-9) << "i=" << i;
  }
}

TEST(SubLengthInsidePolygonTest, PolylineSpanningRegion) {
  // L-shaped polyline; region covers the first arm fully and half of the
  // second.
  const Polyline line({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}});
  const Polygon region = Polygon::Rectangle(-1.0, -1.0, 11.0, 5.0);
  EXPECT_NEAR(line.SubLengthInsidePolygon(0.0, 20.0, region), 15.0, 1e-9);
  EXPECT_NEAR(line.SubLengthInsidePolygon(5.0, 20.0, region), 10.0, 1e-9);
  EXPECT_NEAR(line.SubLengthInsidePolygon(16.0, 20.0, region), 0.0, 1e-9);
}

TEST(SubLengthInsidePolygonTest, DegenerateInterval) {
  const Polyline line({{0.0, 0.0}, {10.0, 0.0}});
  const Polygon region = Polygon::Rectangle(-1.0, -1.0, 11.0, 1.0);
  EXPECT_DOUBLE_EQ(line.SubLengthInsidePolygon(5.0, 5.0, region), 0.0);
}

}  // namespace
}  // namespace modb::geo
