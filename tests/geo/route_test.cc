#include "geo/route.h"

#include <gtest/gtest.h>

#include <cmath>

namespace modb::geo {
namespace {

TEST(RouteTest, BasicAccessors) {
  const Route route(3, Polyline({{0.0, 0.0}, {8.0, 6.0}}), "diagonal");
  EXPECT_EQ(route.id(), 3u);
  EXPECT_EQ(route.name(), "diagonal");
  EXPECT_TRUE(route.Valid());
  EXPECT_DOUBLE_EQ(route.Length(), 10.0);
}

TEST(RouteTest, DefaultIsInvalid) {
  const Route route;
  EXPECT_FALSE(route.Valid());
  EXPECT_EQ(route.id(), kInvalidRouteId);
}

TEST(RouteTest, PointAtAndProject) {
  const Route route(0, Polyline({{0.0, 0.0}, {10.0, 0.0}}));
  EXPECT_EQ(route.PointAt(4.0), (Point2{4.0, 0.0}));
  double dist = 0.0;
  EXPECT_DOUBLE_EQ(route.Project({4.0, 2.0}, &dist), 4.0);
  EXPECT_DOUBLE_EQ(dist, 2.0);
}

TEST(RouteDistanceTest, SameRoute) {
  EXPECT_DOUBLE_EQ(RouteDistance(1, 3.0, 1, 7.5), 4.5);
  EXPECT_DOUBLE_EQ(RouteDistance(1, 7.5, 1, 3.0), 4.5);
  EXPECT_DOUBLE_EQ(RouteDistance(1, 2.0, 1, 2.0), 0.0);
}

TEST(RouteDistanceTest, DifferentRoutesAreInfinitelyFar) {
  // Paper §3.1: cross-route distance is infinite so a route change always
  // triggers a position update.
  EXPECT_TRUE(std::isinf(RouteDistance(1, 0.0, 2, 0.0)));
}

}  // namespace
}  // namespace modb::geo
