#include "geo/point.h"

#include <gtest/gtest.h>

#include <cmath>

namespace modb::geo {
namespace {

TEST(Point2Test, ArithmeticOperators) {
  const Point2 a{1.0, 2.0};
  const Point2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Point2{0.5, 1.0}));
}

TEST(Point2Test, CompoundAssignment) {
  Point2 p{1.0, 1.0};
  p += {2.0, 3.0};
  EXPECT_EQ(p, (Point2{3.0, 4.0}));
  p -= {1.0, 1.0};
  EXPECT_EQ(p, (Point2{2.0, 3.0}));
}

TEST(Point2Test, NormAndDistance) {
  const Point2 p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(p.NormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(Distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Point2Test, DotAndCross) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 0.0}, {0.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Dot({2.0, 3.0}, {4.0, 5.0}), 23.0);
  EXPECT_DOUBLE_EQ(Cross({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(Cross({0.0, 1.0}, {1.0, 0.0}), -1.0);
  EXPECT_DOUBLE_EQ(Cross({2.0, 2.0}, {4.0, 4.0}), 0.0);
}

TEST(Point2Test, Lerp) {
  const Point2 a{0.0, 0.0};
  const Point2 b{10.0, -10.0};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  EXPECT_EQ(Lerp(a, b, 0.5), (Point2{5.0, -5.0}));
}

TEST(Point2Test, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual({1.0, 1.0}, {1.0 + 1e-12, 1.0 - 1e-12}));
  EXPECT_FALSE(ApproxEqual({1.0, 1.0}, {1.001, 1.0}));
  EXPECT_TRUE(ApproxEqual({1.0, 1.0}, {1.01, 1.0}, 0.1));
}

TEST(Point2Test, ToStringMentionsCoordinates) {
  const std::string s = Point2{1.5, -2.0}.ToString();
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("-2"), std::string::npos);
}

}  // namespace
}  // namespace modb::geo
