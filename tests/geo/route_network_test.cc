#include "geo/route_network.h"

#include <gtest/gtest.h>

namespace modb::geo {
namespace {

TEST(RouteNetworkTest, AddAndFind) {
  RouteNetwork net;
  const RouteId id = net.AddRoute(Polyline({{0.0, 0.0}, {1.0, 0.0}}), "r0");
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(net.size(), 1u);
  const auto found = net.FindRoute(id);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->name(), "r0");
  EXPECT_EQ(net.route(id).id(), id);
}

TEST(RouteNetworkTest, FindUnknownRoute) {
  RouteNetwork net;
  const auto missing = net.FindRoute(42);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST(RouteNetworkTest, IdsAreSequential) {
  RouteNetwork net;
  EXPECT_EQ(net.AddStraightRoute({0, 0}, {1, 0}), 0u);
  EXPECT_EQ(net.AddStraightRoute({0, 0}, {0, 1}), 1u);
  EXPECT_EQ(net.AddStraightRoute({1, 1}, {2, 2}), 2u);
}

TEST(RouteNetworkTest, GridNetworkGeometry) {
  RouteNetwork net;
  const std::vector<RouteId> ids = net.AddGridNetwork(3, 4, 10.0);
  EXPECT_EQ(ids.size(), 7u);  // 3 east-west + 4 north-south
  EXPECT_EQ(net.size(), 7u);
  // East-west street r=1 runs along y=10 for the grid width (3 cols ->
  // width 30).
  const Route& ew1 = net.route(ids[1]);
  EXPECT_DOUBLE_EQ(ew1.Length(), 30.0);
  EXPECT_EQ(ew1.PointAt(0.0), (Point2{0.0, 10.0}));
  EXPECT_EQ(ew1.PointAt(30.0), (Point2{30.0, 10.0}));
  // North-south street c=3 runs along x=30 for the grid height (2 spacing).
  const Route& ns3 = net.route(ids[6]);
  EXPECT_DOUBLE_EQ(ns3.Length(), 20.0);
  EXPECT_EQ(ns3.PointAt(0.0), (Point2{30.0, 0.0}));
}

TEST(RouteNetworkTest, GridBoundingBox) {
  RouteNetwork net;
  net.AddGridNetwork(2, 2, 5.0);
  const Box2 box = net.BoundingBox();
  EXPECT_EQ(box.min, (Point2{0.0, 0.0}));
  EXPECT_EQ(box.max, (Point2{5.0, 5.0}));
}

TEST(RouteNetworkTest, RandomWindingRouteHasRequestedShape) {
  RouteNetwork net;
  util::Rng rng(5);
  const RouteId id =
      net.AddRandomWindingRoute(rng, {0.0, 0.0}, 20, 2.0, 0.4, "winding");
  const Route& route = net.route(id);
  EXPECT_EQ(route.shape().num_segments(), 20u);
  EXPECT_NEAR(route.Length(), 40.0, 1e-9);  // 20 legs x 2.0
  EXPECT_EQ(route.name(), "winding");
}

TEST(RouteNetworkTest, RandomWindingRouteDeterministicPerSeed) {
  RouteNetwork a;
  RouteNetwork b;
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  a.AddRandomWindingRoute(rng_a, {1.0, 1.0}, 10, 1.0, 0.5);
  b.AddRandomWindingRoute(rng_b, {1.0, 1.0}, 10, 1.0, 0.5);
  for (std::size_t i = 0; i < a.route(0).shape().points().size(); ++i) {
    EXPECT_EQ(a.route(0).shape().points()[i], b.route(0).shape().points()[i]);
  }
}

TEST(RouteNetworkTest, LoopRouteLength) {
  RouteNetwork net;
  const RouteId id = net.AddLoopRoute(0.0, 0.0, 10.0, 5.0, 3, "loop");
  // Perimeter 30, three laps.
  EXPECT_DOUBLE_EQ(net.route(id).Length(), 90.0);
  // A full lap returns to the start corner.
  EXPECT_TRUE(ApproxEqual(net.route(id).PointAt(30.0), {0.0, 0.0}));
  EXPECT_TRUE(ApproxEqual(net.route(id).PointAt(90.0), {0.0, 0.0}));
}

}  // namespace
}  // namespace modb::geo
