// Satellite of the failure-domain PR: continuous queries across shard
// recovery. A quarantined shard healed in place (WAL reopen) or by a full
// re-recovery swap must leave the merged subscription event stream
// byte-identical to a store that never faulted — the swap silently
// re-primes the engine from the recovered state instead of replaying
// registration transitions. Restart recovery must emit no replay events.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "db/sharded_database.h"
#include "db/subscription_engine.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace modb::db {
namespace {

namespace fs = std::filesystem;

class SubscriptionRecoveryTest : public testing::Test {
 protected:
  SubscriptionRecoveryTest() {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {400.0, 0.0}, "street");
  }

  void SetUp() override {
    dir_ = (fs::path(testing::TempDir()) /
            ("sub_recovery_" +
             std::string(testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  core::PositionAttribute Attr(double s, double v) const {
    core::PositionAttribute attr;
    attr.route = street_;
    attr.start_route_distance = s;
    attr.start_position = network_.route(street_).PointAt(s);
    attr.speed = v;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, core::Time t, double s,
                              double v) const {
    core::PositionUpdate update;
    update.object = id;
    update.time = t;
    update.route = street_;
    update.route_distance = s;
    update.position = network_.route(street_).PointAt(s);
    update.direction = core::TravelDirection::kForward;
    update.speed = v;
    return update;
  }

  ShardedModDatabaseOptions BaseOptions() const {
    ShardedModDatabaseOptions options;
    options.num_shards = 4;
    options.num_query_threads = 0;  // inline fan-out: deterministic
    options.enable_subscriptions = true;
    options.supervisor.auto_remediate = false;  // tests step recovery
    return options;
  }

  ShardedModDatabaseOptions DurableOptions() const {
    ShardedModDatabaseOptions options = BaseOptions();
    options.durable_dir = dir_;
    options.durability.wal.sync_every_append = true;
    return options;
  }

  static std::vector<std::pair<SubscriptionId, SubscriptionSpec>>
  StandingQueries() {
    std::vector<std::pair<SubscriptionId, SubscriptionSpec>> subs;
    util::Rng rng(5);
    for (SubscriptionId id = 0; id < 12; ++id) {
      const double x0 = rng.Uniform(0.0, 330.0);
      SubscriptionSpec spec;
      spec.region = geo::Polygon::Rectangle(
          x0, -2.0, x0 + rng.Uniform(20.0, 60.0), 2.0);
      spec.mode = static_cast<SubscriptionMode>(rng.UniformInt(0, 2));
      if (rng.Uniform() < 0.5) {
        spec.time = rng.Uniform(0.0, 40.0);
      } else {
        spec.windowed = true;
        spec.time = rng.Uniform(0.0, 20.0);
        spec.window_end = rng.Uniform(20.0, 40.0);
      }
      subs.emplace_back(id, spec);
    }
    return subs;
  }

  void SubscribeAll(ShardedModDatabase* db) {
    for (const auto& [id, spec] : StandingQueries()) {
      ASSERT_TRUE(db->Subscribe(id, spec).ok());
    }
  }

  /// One seeded mutation round applied identically to both stores. Rounds
  /// are numbered globally so phase 2 continues where phase 1 stopped.
  void ApplyRound(int round, std::uint64_t seed, ShardedModDatabase* a,
                  ShardedModDatabase* b) {
    util::Rng rng(seed + static_cast<std::uint64_t>(round));
    std::vector<core::PositionUpdate> updates;
    for (core::ObjectId id = 0; id < 24; ++id) {
      if (rng.Uniform() < 0.6) {
        updates.push_back(Update(id, round * 2.0, rng.Uniform(0.0, 380.0),
                                 rng.Uniform(0.0, 1.4)));
      }
    }
    const auto ra = a->ApplyUpdateBatch(updates);
    const auto rb = b->ApplyUpdateBatch(updates);
    ASSERT_EQ(ra.applied, rb.applied);
    const auto loner =
        Update(round % 11, round * 2.0 + 1.0, rng.Uniform(0.0, 380.0), 0.7);
    ASSERT_EQ(a->ApplyUpdate(loner).ok(), b->ApplyUpdate(loner).ok());
  }

  void LoadFleet(ShardedModDatabase* db) {
    util::Rng rng(21);
    for (core::ObjectId id = 0; id < 24; ++id) {
      ASSERT_TRUE(
          db->Insert(id, "o", Attr(rng.Uniform(0.0, 380.0),
                                   rng.Uniform(0.0, 1.4)))
              .ok());
    }
  }

  static void DrainInto(ShardedModDatabase* db,
                        std::vector<std::string>* stream) {
    for (const SubscriptionEvent& event : db->TakeSubscriptionEvents()) {
      stream->push_back(event.ToString());
    }
  }

  static void ExpectSameStream(const std::vector<std::string>& control,
                               const std::vector<std::string>& healed) {
    ASSERT_EQ(control.size(), healed.size());
    for (std::size_t i = 0; i < control.size(); ++i) {
      ASSERT_EQ(control[i], healed[i]) << "event " << i;
    }
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  std::string dir_;
};

// Full re-recovery swap with live subscriptions: the healed stream must be
// indistinguishable from the never-faulted control — no replayed enters,
// no spurious leave/enter pairs around the swap, no lost transitions.
TEST_F(SubscriptionRecoveryTest, ReRecoverySwapPreservesEventStream) {
  ShardedModDatabase control(&network_, BaseOptions());
  ShardedModDatabase durable(&network_, DurableOptions());
  ASSERT_TRUE(durable.durability_status().ok());
  SubscribeAll(&control);
  SubscribeAll(&durable);
  LoadFleet(&control);
  LoadFleet(&durable);

  std::vector<std::string> control_stream;
  std::vector<std::string> healed_stream;
  DrainInto(&control, &control_stream);
  DrainInto(&durable, &healed_stream);
  ASSERT_GT(control_stream.size(), 0u) << "fleet load must emit enters";

  for (int round = 1; round <= 4; ++round) {
    ApplyRound(round, 400, &control, &durable);
    DrainInto(&control, &control_stream);
    DrainInto(&durable, &healed_stream);
  }

  // Fault + heal one shard via the swap flavour (the WAL is healthy, so
  // remediation replays the shard's durable home into a fresh store).
  durable.supervisor().ReportFault(2, util::Status::Internal("operator"));
  ASSERT_TRUE(durable.supervisor().TryRecoverShard(2).ok());
  ASSERT_EQ(durable.shard_health(2), ShardHealth::kHealthy);
  // The swap itself is silent: re-priming emits nothing.
  EXPECT_TRUE(durable.TakeSubscriptionEvents().empty());
  EXPECT_EQ(durable.num_subscriptions(), StandingQueries().size());

  for (int round = 5; round <= 8; ++round) {
    ApplyRound(round, 400, &control, &durable);
    DrainInto(&control, &control_stream);
    DrainInto(&durable, &healed_stream);
  }
  ASSERT_TRUE(control.Erase(3).ok());
  ASSERT_TRUE(durable.Erase(3).ok());
  DrainInto(&control, &control_stream);
  DrainInto(&durable, &healed_stream);

  ExpectSameStream(control_stream, healed_stream);
}

// In-place WAL reopen with live subscriptions: the store never moves, so
// the stream must continue seamlessly after the poison heals.
TEST_F(SubscriptionRecoveryTest, WalReopenHealPreservesEventStream) {
  // Only shard 1's WAL segments fault; the 25th append poisons it
  // (24 fleet inserts hit every shard, so the exact index is irrelevant —
  // the window is wide enough to catch one mid-run append).
  util::FaultPlan plan;
  plan.fail_appends_after = 10;
  plan.fail_appends_count = 1;
  util::FaultInjector injector(plan);
  auto faulty = injector.factory();

  ShardedModDatabaseOptions options = DurableOptions();
  options.durability.wal.file_factory =
      [faulty](const std::string& path)
      -> util::Result<std::unique_ptr<util::WritableFile>> {
    const bool shard1_wal = path.find("shard-0001") != std::string::npos &&
                            path.find("wal-") != std::string::npos;
    if (shard1_wal) return faulty(path);
    return util::DefaultWritableFileFactory()(path);
  };
  ShardedModDatabase control(&network_, BaseOptions());
  ShardedModDatabase durable(&network_, options);
  ASSERT_TRUE(durable.durability_status().ok());
  SubscribeAll(&control);
  SubscribeAll(&durable);
  LoadFleet(&control);
  LoadFleet(&durable);

  std::vector<std::string> control_stream;
  std::vector<std::string> healed_stream;
  DrainInto(&control, &control_stream);
  DrainInto(&durable, &healed_stream);

  // Drive rounds until the injected fault lands (a write to shard 1 fails
  // and quarantines it), healing and retrying the failed write so both
  // stores apply the identical mutation sequence.
  bool faulted = false;
  for (int round = 1; round <= 8; ++round) {
    util::Rng rng(700 + static_cast<std::uint64_t>(round));
    for (core::ObjectId id = 0; id < 24; ++id) {
      if (rng.Uniform() >= 0.5) continue;
      const auto update =
          Update(id, round * 2.0, rng.Uniform(0.0, 380.0),
                 rng.Uniform(0.0, 1.4));
      ASSERT_TRUE(control.ApplyUpdate(update).ok());
      util::Status status = durable.ApplyUpdate(update);
      if (!status.ok()) {
        // The injected WAL fault: shard 1 quarantined itself. Heal in
        // place and retry — in-memory state was never touched by the
        // failed write, so the retry is the same logical mutation.
        faulted = true;
        ASSERT_EQ(durable.shard_health(1), ShardHealth::kQuarantined);
        ASSERT_EQ(durable.ShardOf(id), 1u);
        ASSERT_TRUE(durable.supervisor().TryRecoverShard(1).ok());
        status = durable.ApplyUpdate(update);
      }
      ASSERT_TRUE(status.ok());
    }
    DrainInto(&control, &control_stream);
    DrainInto(&durable, &healed_stream);
  }
  ASSERT_TRUE(faulted) << "fault plan never fired; injected="
                       << injector.injected_faults();
  ExpectSameStream(control_stream, healed_stream);
}

// Restart recovery: construction replays the epoch chain with the engines
// already attached, and must emit zero events. Fresh subscriptions on the
// recovered store then behave exactly like fresh subscriptions on a store
// that reached the same state without ever restarting.
TEST_F(SubscriptionRecoveryTest, RestartReplayIsSilentAndStreamsContinue) {
  // Phase 1: populate a durable store (with live subscriptions, to prove
  // their registrations are not persisted), then close it.
  {
    ShardedModDatabase durable(&network_, DurableOptions());
    ASSERT_TRUE(durable.durability_status().ok());
    SubscribeAll(&durable);
    LoadFleet(&durable);
    ShardedModDatabase bootstrap_control(&network_, BaseOptions());
    LoadFleet(&bootstrap_control);
    for (int round = 1; round <= 3; ++round) {
      ApplyRound(round, 900, &durable, &bootstrap_control);
    }
    (void)durable.TakeSubscriptionEvents();
  }

  // Never-restarted control: same fleet state, built in memory.
  ShardedModDatabase control(&network_, BaseOptions());
  LoadFleet(&control);
  {
    ShardedModDatabase scratch(&network_, BaseOptions());
    LoadFleet(&scratch);
    for (int round = 1; round <= 3; ++round) {
      ApplyRound(round, 900, &control, &scratch);
    }
  }
  (void)control.TakeSubscriptionEvents();

  // Phase 2: reopen. Recovery replay runs with engines attached and must
  // surface nothing; registrations start empty.
  ShardedModDatabase reopened(&network_, DurableOptions());
  ASSERT_TRUE(reopened.durability_status().ok());
  EXPECT_TRUE(reopened.TakeSubscriptionEvents().empty())
      << "recovery replay leaked transition events";
  EXPECT_EQ(reopened.num_subscriptions(), 0u)
      << "subscription registrations must not be persisted";
  EXPECT_EQ(reopened.num_objects(), control.num_objects());

  SubscribeAll(&control);
  SubscribeAll(&reopened);
  std::vector<std::string> control_stream;
  std::vector<std::string> reopened_stream;
  for (int round = 4; round <= 7; ++round) {
    ApplyRound(round, 900, &control, &reopened);
    DrainInto(&control, &control_stream);
    DrainInto(&reopened, &reopened_stream);
  }
  ASSERT_GT(control_stream.size(), 0u);
  ExpectSameStream(control_stream, reopened_stream);
}

}  // namespace
}  // namespace modb::db
