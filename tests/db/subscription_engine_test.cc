#include "db/subscription_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/position_attribute.h"
#include "core/uncertainty.h"
#include "db/mod_database.h"
#include "db/result_cache.h"
#include "geo/polygon.h"
#include "geo/route_network.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace modb::db {
namespace {

using core::RegionRelation;

// One straight street from (0,0) to (200,0); objects travel along it with
// the same policy parameters as the query-language tests, so the MUST/MAY
// geometry below matches the classifications those tests already pin down.
class SubscriptionEngineTest : public testing::Test {
 protected:
  SubscriptionEngineTest() : db_(&network_) {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {200.0, 0.0}, "street");
    engine_ = std::make_unique<SubscriptionEngine>(&network_);
    db_.AttachSubscriptions(engine_.get());
  }

  core::PositionAttribute Attr(double distance, double speed,
                               core::Time start = 0.0) const {
    core::PositionAttribute attr;
    attr.start_time = start;
    attr.route = street_;
    attr.start_route_distance = distance;
    attr.start_position = {distance, 0.0};
    attr.speed = speed;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, core::Time time,
                              double distance, double speed) const {
    core::PositionUpdate u;
    u.object = id;
    u.time = time;
    u.route = street_;
    u.route_distance = distance;
    u.position = {distance, 0.0};
    u.speed = speed;
    return u;
  }

  // Ground truth straight from the core layer: what the engine's tracked
  // relation for `attr` at the subscribed instant must be.
  RegionRelation TruthAt(const core::PositionAttribute& attr,
                         const geo::Polygon& region, core::Time t) const {
    const auto route = network_.FindRoute(attr.route);
    return core::ClassifyAgainstPolygon(
        core::ComputeUncertainty(attr, **route, t), **route, region);
  }

  static SubscriptionSpec At(const geo::Polygon& region, core::Time t,
                             SubscriptionMode mode = SubscriptionMode::kAll) {
    SubscriptionSpec spec;
    spec.region = region;
    spec.time = t;
    spec.mode = mode;
    return spec;
  }

  static SubscriptionSpec During(const geo::Polygon& region, core::Time t1,
                                 core::Time t2,
                                 SubscriptionMode mode = SubscriptionMode::kAll) {
    SubscriptionSpec spec = At(region, t1, mode);
    spec.windowed = true;
    spec.window_end = t2;
    return spec;
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  ModDatabase db_;
  std::unique_ptr<SubscriptionEngine> engine_;
};

// ---- Registration ----

TEST_F(SubscriptionEngineTest, SubscribeValidatesRegion) {
  const auto status = engine_->Subscribe(1, At(geo::Polygon{}, 6.0));
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(engine_->num_subscriptions(), 0u);
}

TEST_F(SubscriptionEngineTest, SubscribeRejectsDuplicateId) {
  const geo::Polygon rect = geo::Polygon::Rectangle(0, -1, 50, 1);
  ASSERT_TRUE(engine_->Subscribe(1, At(rect, 6.0)).ok());
  EXPECT_EQ(engine_->Subscribe(1, At(rect, 9.0)).code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(engine_->num_subscriptions(), 1u);
  EXPECT_TRUE(engine_->contains(1));
}

TEST_F(SubscriptionEngineTest, UnsubscribeUnknownIsNotFound) {
  EXPECT_EQ(engine_->Unsubscribe(99).code(), util::StatusCode::kNotFound);
}

TEST_F(SubscriptionEngineTest, UnsubscribeStopsEvents) {
  ASSERT_TRUE(
      engine_->Subscribe(1, At(geo::Polygon::Rectangle(0, -1, 50, 1), 6.0))
          .ok());
  ASSERT_TRUE(engine_->Unsubscribe(1).ok());
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 1.0)).ok());
  EXPECT_EQ(engine_->num_pending_events(), 0u);
}

// ---- Transition taxonomy ----

TEST_F(SubscriptionEngineTest, InsertEmitsEnterEvent) {
  const geo::Polygon rect = geo::Polygon::Rectangle(0, -1, 50, 1);
  ASSERT_TRUE(engine_->Subscribe(1, At(rect, 6.0)).ok());
  // Object 7 at distance 10, speed 1: position 16 at t=6, well inside —
  // the query-language tests pin this down as MUST.
  const auto attr = Attr(10.0, 1.0);
  ASSERT_EQ(TruthAt(attr, rect, 6.0), RegionRelation::kMustBeIn);
  ASSERT_TRUE(db_.Insert(7, "truck", attr).ok());

  const auto events = engine_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].subscription, 1u);
  EXPECT_EQ(events[0].object, 7u);
  EXPECT_EQ(events[0].from, RegionRelation::kOutside);
  EXPECT_EQ(events[0].to, RegionRelation::kMustBeIn);
  EXPECT_DOUBLE_EQ(events[0].at, 0.0);
  EXPECT_EQ(engine_->RelationOf(1, 7), RegionRelation::kMustBeIn);
}

TEST_F(SubscriptionEngineTest, UpdateAwayEmitsLeaveEvent) {
  const geo::Polygon rect = geo::Polygon::Rectangle(0, -1, 50, 1);
  ASSERT_TRUE(engine_->Subscribe(1, At(rect, 6.0)).ok());
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 1.0)).ok());
  engine_->TakeEvents();

  // Re-report at distance 100: position 103 at the subscribed instant —
  // outside the region.
  ASSERT_EQ(TruthAt(Attr(100.0, 1.0, 3.0), rect, 6.0),
            RegionRelation::kOutside);
  ASSERT_TRUE(db_.ApplyUpdate(Update(7, 3.0, 100.0, 1.0)).ok());

  const auto events = engine_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].from, RegionRelation::kMustBeIn);
  EXPECT_EQ(events[0].to, RegionRelation::kOutside);
  EXPECT_DOUBLE_EQ(events[0].at, 3.0);
  EXPECT_EQ(engine_->RelationOf(1, 7), RegionRelation::kOutside);
}

TEST_F(SubscriptionEngineTest, UpgradeEmitsMayToMustEvent) {
  // The parked-object MAY case from the query-language tests: object at
  // 150, region [140, 151], t=4 — the uncertainty interval straddles the
  // right boundary.
  const geo::Polygon rect = geo::Polygon::Rectangle(140, -1, 151, 1);
  ASSERT_TRUE(engine_->Subscribe(1, At(rect, 4.0)).ok());
  const auto parked = Attr(150.0, 0.0);
  ASSERT_EQ(TruthAt(parked, rect, 4.0), RegionRelation::kMayBeIn);
  ASSERT_TRUE(db_.Insert(8, "parked", parked).ok());
  {
    const auto events = engine_->TakeEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].to, RegionRelation::kMayBeIn);
  }

  // A fresh report just before the subscribed instant shrinks the
  // uncertainty interval inside the region: MAY -> MUST upgrade.
  const auto fresh = Attr(145.0, 0.0, 3.5);
  ASSERT_EQ(TruthAt(fresh, rect, 4.0), RegionRelation::kMustBeIn);
  ASSERT_TRUE(db_.ApplyUpdate(Update(8, 3.5, 145.0, 0.0)).ok());

  const auto events = engine_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].from, RegionRelation::kMayBeIn);
  EXPECT_EQ(events[0].to, RegionRelation::kMustBeIn);
}

TEST_F(SubscriptionEngineTest, EraseEmitsLeaveEvent) {
  ASSERT_TRUE(
      engine_->Subscribe(1, At(geo::Polygon::Rectangle(0, -1, 50, 1), 6.0))
          .ok());
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 1.0)).ok());
  engine_->TakeEvents();
  ASSERT_TRUE(db_.Erase(7).ok());

  const auto events = engine_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].from, RegionRelation::kMustBeIn);
  EXPECT_EQ(events[0].to, RegionRelation::kOutside);
  EXPECT_EQ(engine_->RelationOf(1, 7), RegionRelation::kOutside);
}

// ---- Mode filter ----

TEST_F(SubscriptionEngineTest, MustModeIgnoresMayTransitions) {
  const geo::Polygon rect = geo::Polygon::Rectangle(140, -1, 151, 1);
  ASSERT_TRUE(engine_->Subscribe(1, At(rect, 4.0, SubscriptionMode::kMust))
                  .ok());
  // Outside -> MAY: invisible to a MUST subscriber.
  ASSERT_TRUE(db_.Insert(8, "parked", Attr(150.0, 0.0)).ok());
  EXPECT_EQ(engine_->TakeEvents().size(), 0u);
  // MAY -> MUST: "must" membership flipped, so this one fires.
  ASSERT_TRUE(db_.ApplyUpdate(Update(8, 3.5, 145.0, 0.0)).ok());
  const auto events = engine_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].to, RegionRelation::kMustBeIn);
  // State is tracked even while the filter swallows events.
  EXPECT_EQ(engine_->RelationOf(1, 8), RegionRelation::kMustBeIn);
}

TEST_F(SubscriptionEngineTest, MayModeIgnoresUpgrades) {
  const geo::Polygon rect = geo::Polygon::Rectangle(140, -1, 151, 1);
  ASSERT_TRUE(
      engine_->Subscribe(1, At(rect, 4.0, SubscriptionMode::kMay)).ok());
  // Outside -> MAY: "may" membership flipped — fires.
  ASSERT_TRUE(db_.Insert(8, "parked", Attr(150.0, 0.0)).ok());
  EXPECT_EQ(engine_->TakeEvents().size(), 1u);
  // MAY -> MUST: still "may be in", no event for a MAY subscriber.
  ASSERT_TRUE(db_.ApplyUpdate(Update(8, 3.5, 145.0, 0.0)).ok());
  EXPECT_EQ(engine_->TakeEvents().size(), 0u);
}

// ---- Horizon gate and windows ----

TEST_F(SubscriptionEngineTest, SubscribedInstantBeyondHorizonIsOutside) {
  // Subscribed instant 500 is past start + horizon (120 by default): the
  // standing query sees nothing, exactly like the o-plane indexes.
  ASSERT_TRUE(
      engine_->Subscribe(1, At(geo::Polygon::Rectangle(0, -1, 200, 1), 500.0))
          .ok());
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 0.1)).ok());
  EXPECT_EQ(engine_->TakeEvents().size(), 0u);
  EXPECT_EQ(engine_->RelationOf(1, 7), RegionRelation::kOutside);
}

TEST_F(SubscriptionEngineTest, WindowedSubscriptionMatchesPassingObject) {
  // Object 7 sweeps [100, 110] around t = 95; a window that covers the
  // crossing sees the enter, one strictly before it does not.
  const geo::Polygon rect = geo::Polygon::Rectangle(100, -1, 110, 1);
  ASSERT_TRUE(engine_->Subscribe(1, During(rect, 80.0, 110.0)).ok());
  ASSERT_TRUE(engine_->Subscribe(2, During(rect, 0.0, 20.0)).ok());
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 1.0)).ok());

  const auto events = engine_->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].subscription, 1u);
  EXPECT_NE(events[0].to, RegionRelation::kOutside);
  EXPECT_EQ(engine_->RelationOf(2, 7), RegionRelation::kOutside);
}

TEST_F(SubscriptionEngineTest, WindowNormalisesReversedEndpoints) {
  const geo::Polygon rect = geo::Polygon::Rectangle(100, -1, 110, 1);
  ASSERT_TRUE(engine_->Subscribe(1, During(rect, 110.0, 80.0)).ok());
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 1.0)).ok());
  EXPECT_EQ(engine_->TakeEvents().size(), 1u);
}

// ---- Determinism: batch vs sequential (the supersede bugfix) ----

// A batch containing several updates for the same object must emit exactly
// the events sequential ingest emits — in particular no spurious MAY
// transitions from the per-object index dedup in write-path stage 4.
TEST_F(SubscriptionEngineTest, BatchOfNEmitsSameEventsAsSequential) {
  geo::RouteNetwork network2;
  const auto street2 =
      network2.AddStraightRoute({0.0, 0.0}, {200.0, 0.0}, "street");
  ASSERT_EQ(street2, street_);
  ModDatabase seq_db(&network2);
  SubscriptionEngine seq_engine(&network2);
  seq_db.AttachSubscriptions(&seq_engine);

  const geo::Polygon rect = geo::Polygon::Rectangle(0, -1, 50, 1);
  for (auto* engine : {engine_.get(), &seq_engine}) {
    ASSERT_TRUE(engine->Subscribe(1, At(rect, 6.0)).ok());
    ASSERT_TRUE(
        engine->Subscribe(2, During(rect, 0.0, 40.0, SubscriptionMode::kMay))
            .ok());
  }
  for (auto* db : {&db_, &seq_db}) {
    ASSERT_TRUE(db->Insert(7, "a", Attr(10.0, 1.0)).ok());
    ASSERT_TRUE(db->Insert(8, "b", Attr(150.0, 0.0)).ok());
  }
  engine_->TakeEvents();
  seq_engine.TakeEvents();

  // Object 7 leaves, re-enters, and leaves again *within one batch*; the
  // middle versions are superseded in the index but must still notify.
  const std::vector<core::PositionUpdate> updates = {
      Update(7, 1.0, 100.0, 1.0),  // leave
      Update(8, 1.5, 150.0, 0.5),  // unrelated object interleaved
      Update(7, 2.0, 20.0, 1.0),   // re-enter
      Update(7, 3.0, 120.0, 1.0),  // leave again
  };

  const auto batch = db_.ApplyUpdateBatch(updates);
  for (const auto& status : batch.statuses) ASSERT_TRUE(status.ok());
  for (const auto& update : updates) {
    ASSERT_TRUE(seq_db.ApplyUpdate(update).ok());
  }

  const auto batched = engine_->TakeEvents();
  const auto sequential = seq_engine.TakeEvents();
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].ToString(), sequential[i].ToString()) << i;
  }
  // The stream saw every intermediate version, so object 7's in-batch
  // excursion produced leave + enter + leave, not one collapsed delta.
  std::size_t transitions_of_7 = 0;
  for (const auto& event : batched) {
    if (event.object == 7 && event.subscription == 1) ++transitions_of_7;
  }
  EXPECT_EQ(transitions_of_7, 3u);
}

// ---- Determinism: incremental vs naive rescan ----

TEST_F(SubscriptionEngineTest, IncrementalMatchesNaiveRescanByteForByte) {
  geo::RouteNetwork network2;
  network2.AddStraightRoute({0.0, 0.0}, {200.0, 0.0}, "street");
  ModDatabase naive_db(&network2);
  SubscriptionEngine::Options naive_options;
  naive_options.naive_rescan = true;
  SubscriptionEngine naive(&network2, naive_options);
  naive_db.AttachSubscriptions(&naive);

  // A spread of standing queries along the street, mixed modes and forms.
  util::Rng rng(42);
  for (SubscriptionId id = 0; id < 40; ++id) {
    const double x0 = rng.Uniform(0.0, 180.0);
    const double x1 = x0 + rng.Uniform(2.0, 20.0);
    const auto mode = static_cast<SubscriptionMode>(rng.UniformInt(0, 2));
    const geo::Polygon rect = geo::Polygon::Rectangle(x0, -1.0, x1, 1.0);
    SubscriptionSpec spec = rng.Uniform() < 0.5
                                ? At(rect, rng.Uniform(0.0, 60.0), mode)
                                : During(rect, rng.Uniform(0.0, 30.0),
                                         rng.Uniform(30.0, 60.0), mode);
    ASSERT_TRUE(engine_->Subscribe(id, spec).ok());
    ASSERT_TRUE(naive.Subscribe(id, spec).ok());
  }

  // Seeded fleet with inserts, updates, and erases.
  for (core::ObjectId id = 0; id < 30; ++id) {
    const auto attr = Attr(rng.Uniform(0.0, 190.0), rng.Uniform(0.0, 1.5));
    ASSERT_TRUE(db_.Insert(id, "obj", attr).ok());
    ASSERT_TRUE(naive_db.Insert(id, "obj", attr).ok());
  }
  for (int round = 1; round <= 5; ++round) {
    std::vector<core::PositionUpdate> updates;
    for (core::ObjectId id = 0; id < 30; ++id) {
      if (rng.Uniform() < 0.6) {
        updates.push_back(Update(id, static_cast<double>(round),
                                 rng.Uniform(0.0, 190.0),
                                 rng.Uniform(0.0, 1.5)));
      }
    }
    db_.ApplyUpdateBatch(updates);
    naive_db.ApplyUpdateBatch(updates);
  }
  ASSERT_TRUE(db_.Erase(3).ok());
  ASSERT_TRUE(naive_db.Erase(3).ok());

  const auto incremental_events = engine_->TakeEvents();
  const auto naive_events = naive.TakeEvents();
  ASSERT_EQ(incremental_events.size(), naive_events.size());
  for (std::size_t i = 0; i < incremental_events.size(); ++i) {
    EXPECT_EQ(incremental_events[i].ToString(), naive_events[i].ToString())
        << i;
  }
  ASSERT_GT(naive_events.size(), 0u);

  // The spatial join must have skipped work the rescan paid for.
  EXPECT_LT(engine_->evals(), naive.evals());
  EXPECT_GT(engine_->evals_saved(), 0u);
  EXPECT_EQ(engine_->evals() + engine_->evals_saved(), naive.evals());
  EXPECT_EQ(engine_->events_emitted(), naive.events_emitted());
}

// ---- Metrics ----

TEST_F(SubscriptionEngineTest, MetricsRegisterAndCount) {
  util::MetricsRegistry registry;
  engine_->SetMetrics(&registry);
  ASSERT_TRUE(
      engine_->Subscribe(1, At(geo::Polygon::Rectangle(0, -1, 50, 1), 6.0))
          .ok());
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 1.0)).ok());
  const std::string dump = registry.Dump();
  EXPECT_NE(dump.find("sub.evals"), std::string::npos);
  EXPECT_NE(dump.find("sub.events_emitted"), std::string::npos);
  EXPECT_NE(dump.find("sub.match_latency_us"), std::string::npos);
  EXPECT_EQ(registry.GetCounter("sub.events_emitted")->value(), 1u);
}

// ---- Result cache ----

class RangeQueryCacheTest : public SubscriptionEngineTest {
 protected:
  RangeQueryCacheTest() {
    RangeQueryCache::Options options;
    options.capacity = 2;
    cache_ = std::make_unique<RangeQueryCache>(&network_, options);
    db_.AttachResultCache(cache_.get());
  }

  std::unique_ptr<RangeQueryCache> cache_;
};

TEST_F(RangeQueryCacheTest, HitIsByteIdenticalToRecompute) {
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 1.0)).ok());
  ASSERT_TRUE(db_.Insert(8, "parked", Attr(150.0, 0.0)).ok());
  const geo::Polygon rect = geo::Polygon::Rectangle(140, -1, 151, 1);

  const auto first = db_.QueryRangeCached(rect, 4.0);
  EXPECT_EQ(cache_->misses(), 1u);
  const auto second = db_.QueryRangeCached(rect, 4.0);
  EXPECT_EQ(cache_->hits(), 1u);
  const auto uncached = db_.QueryRange(rect, 4.0);
  EXPECT_EQ(second.must, uncached.must);
  EXPECT_EQ(second.may, uncached.may);
  EXPECT_EQ(second.may_probability, uncached.may_probability);
  EXPECT_EQ(first.may, uncached.may);
}

TEST_F(RangeQueryCacheTest, DeltaStreamInvalidatesOverlappingEntry) {
  ASSERT_TRUE(db_.Insert(8, "parked", Attr(150.0, 0.0)).ok());
  const geo::Polygon rect = geo::Polygon::Rectangle(140, -1, 151, 1);

  auto answer = db_.QueryRangeCached(rect, 4.0);
  EXPECT_EQ(answer.may, std::vector<core::ObjectId>{8});
  // Moving the object must evict the entry, so the next lookup recomputes
  // and sees the move rather than serving the stale MAY answer.
  ASSERT_TRUE(db_.ApplyUpdate(Update(8, 1.0, 20.0, 0.0)).ok());
  EXPECT_GE(cache_->invalidations(), 1u);
  answer = db_.QueryRangeCached(rect, 4.0);
  EXPECT_TRUE(answer.may.empty());
  EXPECT_TRUE(answer.must.empty());
  EXPECT_EQ(cache_->misses(), 2u);
}

TEST_F(RangeQueryCacheTest, UnrelatedDeltaKeepsEntry) {
  ASSERT_TRUE(db_.Insert(8, "parked", Attr(150.0, 0.0)).ok());
  const geo::Polygon rect = geo::Polygon::Rectangle(140, -1, 151, 1);
  db_.QueryRangeCached(rect, 4.0);
  ASSERT_EQ(cache_->size(), 1u);
  // An object on the far end of the street cannot affect this answer.
  ASSERT_TRUE(db_.Insert(9, "far", Attr(5.0, 0.0)).ok());
  EXPECT_EQ(cache_->size(), 1u);
  db_.QueryRangeCached(rect, 4.0);
  EXPECT_EQ(cache_->hits(), 1u);
}

TEST_F(RangeQueryCacheTest, LruEvictsAtCapacity) {
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 1.0)).ok());
  const geo::Polygon a = geo::Polygon::Rectangle(0, -1, 20, 1);
  const geo::Polygon b = geo::Polygon::Rectangle(20, -1, 40, 1);
  const geo::Polygon c = geo::Polygon::Rectangle(40, -1, 60, 1);
  db_.QueryRangeCached(a, 1.0);
  db_.QueryRangeCached(b, 1.0);
  db_.QueryRangeCached(c, 1.0);  // capacity 2: evicts a
  EXPECT_EQ(cache_->size(), 2u);
  db_.QueryRangeCached(b, 1.0);
  db_.QueryRangeCached(c, 1.0);
  EXPECT_EQ(cache_->hits(), 2u);
  db_.QueryRangeCached(a, 1.0);
  EXPECT_EQ(cache_->misses(), 4u);
}

TEST_F(RangeQueryCacheTest, QueryRangeCachedFallsBackWithoutCache) {
  db_.AttachResultCache(nullptr);
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 1.0)).ok());
  const geo::Polygon rect = geo::Polygon::Rectangle(0, -1, 50, 1);
  const auto cached = db_.QueryRangeCached(rect, 6.0);
  const auto plain = db_.QueryRange(rect, 6.0);
  EXPECT_EQ(cached.must, plain.must);
  EXPECT_EQ(cached.may, plain.may);
}

TEST_F(RangeQueryCacheTest, MetricsRegisterAndCount) {
  util::MetricsRegistry registry;
  cache_->SetMetrics(&registry);
  ASSERT_TRUE(db_.Insert(7, "truck", Attr(10.0, 1.0)).ok());
  const geo::Polygon rect = geo::Polygon::Rectangle(0, -1, 50, 1);
  db_.QueryRangeCached(rect, 6.0);
  db_.QueryRangeCached(rect, 6.0);
  EXPECT_EQ(registry.GetCounter("sub.cache.hits")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("sub.cache.misses")->value(), 1u);
}

}  // namespace
}  // namespace modb::db
