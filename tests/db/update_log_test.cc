#include "db/update_log.h"

#include <gtest/gtest.h>

namespace modb::db {
namespace {

core::PositionUpdate MakeUpdate(core::ObjectId id, core::Time t) {
  core::PositionUpdate u;
  u.object = id;
  u.time = t;
  u.route = 0;
  u.route_distance = t;
  u.speed = 1.0;
  return u;
}

TEST(UpdateLogTest, CountsTotalsAndPerObject) {
  UpdateLog log;
  log.Append(MakeUpdate(1, 1.0));
  log.Append(MakeUpdate(1, 2.0));
  log.Append(MakeUpdate(2, 3.0));
  EXPECT_EQ(log.total_updates(), 3u);
  EXPECT_EQ(log.updates_for(1), 2u);
  EXPECT_EQ(log.updates_for(2), 1u);
  EXPECT_EQ(log.updates_for(3), 0u);
}

TEST(UpdateLogTest, HistoryPreservesOrder) {
  UpdateLog log;
  for (int i = 0; i < 5; ++i) log.Append(MakeUpdate(7, i));
  ASSERT_EQ(log.history().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(log.history()[i].time, static_cast<double>(i));
  }
}

TEST(UpdateLogTest, CappedHistoryKeepsExactCounters) {
  UpdateLog log(/*max_history=*/10);
  for (int i = 0; i < 100; ++i) log.Append(MakeUpdate(1, i));
  EXPECT_EQ(log.total_updates(), 100u);
  EXPECT_EQ(log.updates_for(1), 100u);
  EXPECT_LE(log.history().size(), 10u);
  // The newest entry is always retained.
  EXPECT_DOUBLE_EQ(log.history().back().time, 99.0);
}

TEST(UpdateLogTest, ClearResetsEverything) {
  UpdateLog log;
  log.Append(MakeUpdate(1, 1.0));
  log.Clear();
  EXPECT_EQ(log.total_updates(), 0u);
  EXPECT_EQ(log.updates_for(1), 0u);
  EXPECT_TRUE(log.history().empty());
}

TEST(UpdateLogTest, UncappedLogNeverDrops) {
  UpdateLog log;
  for (int i = 0; i < 1000; ++i) log.Append(MakeUpdate(1, i));
  EXPECT_EQ(log.dropped_count(), 0u);
  EXPECT_EQ(log.history().size(), 1000u);
}

TEST(UpdateLogTest, DroppedCountAccountsForEveryEviction) {
  UpdateLog log(/*max_history=*/10);
  for (int i = 0; i < 100; ++i) {
    log.Append(MakeUpdate(1, i));
    // Invariant: nothing is lost silently — every appended update is
    // either still in the history or counted as dropped.
    EXPECT_EQ(log.dropped_count() + log.history().size(),
              log.total_updates())
        << "after append " << i;
  }
  EXPECT_GT(log.dropped_count(), 0u);
  // The retained suffix is contiguous and ends at the newest update.
  const std::size_t n = log.history().size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(log.history()[i].time,
                     static_cast<double>(100 - n + i));
  }
}

TEST(UpdateLogTest, ClearResetsDroppedCount) {
  UpdateLog log(/*max_history=*/4);
  for (int i = 0; i < 20; ++i) log.Append(MakeUpdate(1, i));
  ASSERT_GT(log.dropped_count(), 0u);
  log.Clear();
  EXPECT_EQ(log.dropped_count(), 0u);
}

}  // namespace
}  // namespace modb::db
