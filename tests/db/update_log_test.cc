#include "db/update_log.h"

#include <gtest/gtest.h>

namespace modb::db {
namespace {

core::PositionUpdate MakeUpdate(core::ObjectId id, core::Time t) {
  core::PositionUpdate u;
  u.object = id;
  u.time = t;
  u.route = 0;
  u.route_distance = t;
  u.speed = 1.0;
  return u;
}

TEST(UpdateLogTest, CountsTotalsAndPerObject) {
  UpdateLog log;
  log.Append(MakeUpdate(1, 1.0));
  log.Append(MakeUpdate(1, 2.0));
  log.Append(MakeUpdate(2, 3.0));
  EXPECT_EQ(log.total_updates(), 3u);
  EXPECT_EQ(log.updates_for(1), 2u);
  EXPECT_EQ(log.updates_for(2), 1u);
  EXPECT_EQ(log.updates_for(3), 0u);
}

TEST(UpdateLogTest, HistoryPreservesOrder) {
  UpdateLog log;
  for (int i = 0; i < 5; ++i) log.Append(MakeUpdate(7, i));
  ASSERT_EQ(log.history().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(log.history()[i].time, static_cast<double>(i));
  }
}

TEST(UpdateLogTest, CappedHistoryKeepsExactCounters) {
  UpdateLog log(/*max_history=*/10);
  for (int i = 0; i < 100; ++i) log.Append(MakeUpdate(1, i));
  EXPECT_EQ(log.total_updates(), 100u);
  EXPECT_EQ(log.updates_for(1), 100u);
  EXPECT_LE(log.history().size(), 10u);
  // The newest entry is always retained.
  EXPECT_DOUBLE_EQ(log.history().back().time, 99.0);
}

TEST(UpdateLogTest, ClearResetsEverything) {
  UpdateLog log;
  log.Append(MakeUpdate(1, 1.0));
  log.Clear();
  EXPECT_EQ(log.total_updates(), 0u);
  EXPECT_EQ(log.updates_for(1), 0u);
  EXPECT_TRUE(log.history().empty());
}

}  // namespace
}  // namespace modb::db
