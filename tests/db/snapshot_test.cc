#include "db/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "index/velocity_partitioned_index.h"

namespace modb::db {
namespace {

class SnapshotTest : public testing::Test {
 protected:
  SnapshotTest() {
    main_ = network_.AddStraightRoute({0.0, 0.0}, {100.0, 0.0}, "main st");
    bend_ = network_.AddRoute(
        geo::Polyline({{0.0, 10.0}, {30.0, 10.0}, {30.0, 40.0}}), "bend");
  }

  core::PositionAttribute Attr(geo::RouteId route, double s, double v) const {
    core::PositionAttribute attr;
    attr.start_time = 3.5;
    attr.route = route;
    attr.start_route_distance = s;
    attr.start_position = network_.route(route).PointAt(s);
    attr.direction = core::TravelDirection::kBackward;
    attr.speed = v;
    attr.policy = core::PolicyKind::kDelayedLinear;
    attr.update_cost = 7.25;
    attr.max_speed = 1.75;
    attr.fixed_threshold = 2.5;
    attr.period = 0.5;
    attr.step_threshold = 1.25;
    return attr;
  }

  geo::RouteNetwork network_;
  geo::RouteId main_ = geo::kInvalidRouteId;
  geo::RouteId bend_ = geo::kInvalidRouteId;
};

TEST_F(SnapshotTest, RoundTripPreservesEverything) {
  ModDatabaseOptions options;
  options.index_kind = IndexKind::kTimeSpaceRTree;
  options.oplane_horizon = 77.0;
  options.oplane_slab_width = 3.5;
  options.max_log_history = 16;
  ModDatabase db(&network_, options);
  ASSERT_TRUE(db.Insert(1, "cab with spaces", Attr(main_, 10.5, 1.125)).ok());
  ASSERT_TRUE(db.Insert(42, "", Attr(bend_, 20.0, 0.875)).ok());

  std::stringstream stream;
  ASSERT_TRUE(WriteSnapshot(db, stream).ok());

  const auto loaded = ReadSnapshot(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ModDatabase& db2 = *loaded->database;

  // Options.
  EXPECT_EQ(db2.options().index_kind, IndexKind::kTimeSpaceRTree);
  EXPECT_DOUBLE_EQ(db2.options().oplane_horizon, 77.0);
  EXPECT_DOUBLE_EQ(db2.options().oplane_slab_width, 3.5);
  EXPECT_EQ(db2.options().max_log_history, 16u);

  // Network.
  ASSERT_EQ(loaded->network->size(), 2u);
  EXPECT_EQ(loaded->network->route(main_).name(), "main st");
  EXPECT_DOUBLE_EQ(loaded->network->route(bend_).Length(), 60.0);

  // Objects, bit-exact attributes.
  ASSERT_EQ(db2.num_objects(), 2u);
  const auto rec = db2.Get(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->label, "cab with spaces");
  const core::PositionAttribute& a = (*rec)->attr;
  EXPECT_EQ(a.start_time, 3.5);
  EXPECT_EQ(a.route, main_);
  EXPECT_EQ(a.start_route_distance, 10.5);
  EXPECT_EQ(a.direction, core::TravelDirection::kBackward);
  EXPECT_EQ(a.speed, 1.125);
  EXPECT_EQ(a.policy, core::PolicyKind::kDelayedLinear);
  EXPECT_EQ(a.update_cost, 7.25);
  EXPECT_EQ(a.max_speed, 1.75);
  EXPECT_EQ(a.fixed_threshold, 2.5);
  EXPECT_EQ(a.period, 0.5);
  EXPECT_EQ(a.step_threshold, 1.25);
  EXPECT_TRUE(db2.Get(42).ok());
}

TEST_F(SnapshotTest, LoadedDatabaseAnswersQueries) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "x", Attr(main_, 50.0, 1.0)).ok());
  std::stringstream stream;
  ASSERT_TRUE(WriteSnapshot(db, stream).ok());
  const auto loaded = ReadSnapshot(stream);
  ASSERT_TRUE(loaded.ok());

  const auto a = db.QueryPosition(1, 5.0);
  const auto b = loaded->database->QueryPosition(1, 5.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->route_distance, b->route_distance);
  EXPECT_EQ(a->deviation_bound, b->deviation_bound);

  const geo::Polygon region = geo::Polygon::Rectangle(30.0, -1.0, 60.0, 1.0);
  const RangeAnswer ra = db.QueryRange(region, 5.0);
  const RangeAnswer rb = loaded->database->QueryRange(region, 5.0);
  EXPECT_EQ(ra.must, rb.must);
  EXPECT_EQ(ra.may, rb.may);
}

TEST_F(SnapshotTest, FileRoundTrip) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(9, "file-test", Attr(main_, 1.0, 1.0)).ok());
  const std::string path = testing::TempDir() + "/modb_snapshot_test.txt";
  ASSERT_TRUE(SaveSnapshot(db, path).ok());
  const auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->database->num_objects(), 1u);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadSnapshot("/nonexistent-dir/zzz.snap").status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(SnapshotTest, MalformedInputsRejected) {
  const auto expect_invalid = [](const std::string& text) {
    std::stringstream stream(text);
    const auto loaded = ReadSnapshot(stream);
    ASSERT_FALSE(loaded.ok()) << text;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  };
  expect_invalid("");
  expect_invalid("not-a-snapshot 2");
  expect_invalid("modb-snapshot 999");
  expect_invalid("modb-snapshot 1");                              // old version
  expect_invalid("modb-snapshot 2\noptions 0 60 4 0");            // truncated
  expect_invalid("modb-snapshot 2\noptions 0 60 4 0 0\nroutes x");
  expect_invalid(
      "modb-snapshot 2\noptions 0 60 4 0 0\nroutes 1\nroute 5 2 0 0 1 1 2 ab");
  expect_invalid("modb-snapshot 3\noptions 0 60 4 0 0");          // v3 truncated
}

TEST_F(SnapshotTest, TrajectoryVersionCapRoundTrips) {
  // Regression: v2 serialized only 5 of the 6 option fields, so a restored
  // database silently stopped capping trajectory history.
  ModDatabaseOptions options;
  options.keep_trajectory = true;
  options.max_trajectory_versions = 2;
  ModDatabase db(&network_, options);
  ASSERT_TRUE(db.Insert(1, "capped", Attr(main_, 0.0, 1.0)).ok());

  std::stringstream stream;
  ASSERT_TRUE(WriteSnapshot(db, stream).ok());
  const auto loaded = ReadSnapshot(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->database->options().max_trajectory_versions, 2u);

  // The restored database keeps enforcing the cap.
  ModDatabase& db2 = *loaded->database;
  for (int i = 1; i <= 5; ++i) {
    core::PositionUpdate update;
    update.object = 1;
    update.time = 3.5 + i;
    update.route = main_;
    update.route_distance = 10.0 + i;
    update.position = {10.0 + i, 0.0};
    update.direction = core::TravelDirection::kForward;
    update.speed = 1.0;
    ASSERT_TRUE(db2.ApplyUpdate(update).ok()) << i;
  }
  const auto rec = db2.Get(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->past.size(), 2u);
}

TEST_F(SnapshotTest, ReadsVersion2SnapshotsWithoutCapField) {
  // A v2 snapshot (pre-cap format) must still load, defaulting the cap to
  // 0 (unlimited).
  const std::string v2 =
      "modb-snapshot 2\n"
      "options 0 120 4 0 1\n"
      "routes 1\n"
      "route 0 2 0 0 100 0 7 main st\n"
      "objects 1\n"
      "object 1 3 cab 0 0 0 0 0 1 1 0 5 1.5 0 1 1 0 0 0\n";
  std::stringstream stream(v2);
  const auto loaded = ReadSnapshot(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->database->options().keep_trajectory);
  EXPECT_EQ(loaded->database->options().max_trajectory_versions, 0u);
  EXPECT_EQ(loaded->database->num_objects(), 1u);
}

TEST_F(SnapshotTest, WritesVersion5Header) {
  ModDatabase db(&network_);
  std::stringstream stream;
  ASSERT_TRUE(WriteSnapshot(db, stream).ok());
  EXPECT_EQ(stream.str().rfind("modb-snapshot 5\n", 0), 0u);
}

TEST_F(SnapshotTest, ReadsVersion3SnapshotsWithoutVelocityFields) {
  // A v3 snapshot (pre-velocity-partitioning) must still load, defaulting
  // the velocity fields.
  const std::string v3 =
      "modb-snapshot 3\n"
      "options 0 120 4 0 0 2\n"
      "routes 1\n"
      "route 0 2 0 0 100 0 7 main st\n"
      "objects 1\n"
      "object 1 3 cab 0 0 0 0 0 1 1 0 5 1.5 0 1 1 0 0 0\n";
  std::stringstream stream(v3);
  const auto loaded = ReadSnapshot(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->database->options().max_trajectory_versions, 2u);
  EXPECT_TRUE(loaded->database->options().velocity_band_bounds.empty());
  EXPECT_EQ(loaded->database->num_objects(), 1u);
}

TEST_F(SnapshotTest, PreV4SnapshotsRejectVelocityIndexKind) {
  // index_kind 2 did not exist before v4; an old header naming it is
  // corrupt, not a velocity-partitioned store.
  const std::string v3 =
      "modb-snapshot 3\n"
      "options 2 120 4 0 0 0\n"
      "routes 0\n"
      "objects 0\n";
  std::stringstream stream(v3);
  const auto loaded = ReadSnapshot(stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, VelocityPartitionedRoundTripPreservesBanding) {
  // The writer persists the *derived* band bounds, so the restored store
  // bands identically to the live one (not a re-derivation from whatever
  // the restored fleet's quantiles are).
  ModDatabaseOptions options;
  options.index_kind = IndexKind::kVelocityPartitioned;
  options.velocity_bands = 3;
  ModDatabase db(&network_, options);
  std::vector<ModDatabase::BulkObject> fleet;
  for (core::ObjectId id = 0; id < 30; ++id) {
    ModDatabase::BulkObject o;
    o.id = id;
    o.attr = Attr(main_, static_cast<double>(id),
                  0.1 + 0.05 * static_cast<double>(id));  // mixed speeds
    fleet.push_back(o);
  }
  ASSERT_TRUE(db.BulkInsert(std::move(fleet)).ok());
  const auto* vp = dynamic_cast<const index::VelocityPartitionedIndex*>(
      &db.object_index());
  ASSERT_NE(vp, nullptr);
  ASSERT_TRUE(vp->banded());
  const std::vector<double> live_bounds = vp->band_bounds();

  std::stringstream stream;
  ASSERT_TRUE(WriteSnapshot(db, stream).ok());
  const auto loaded = ReadSnapshot(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->database->options().index_kind,
            IndexKind::kVelocityPartitioned);
  EXPECT_EQ(loaded->database->options().velocity_band_bounds, live_bounds);
  const auto* vp2 = dynamic_cast<const index::VelocityPartitionedIndex*>(
      &loaded->database->object_index());
  ASSERT_NE(vp2, nullptr);
  EXPECT_EQ(vp2->band_bounds(), live_bounds);
  EXPECT_EQ(vp2->num_entries(), vp->num_entries());

  // Same answers, and a second save is byte-identical to the first.
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -2.0, 50.0, 2.0);
  const RangeAnswer a = db.QueryRange(region, 5.0);
  const RangeAnswer b = loaded->database->QueryRange(region, 5.0);
  EXPECT_EQ(a.must, b.must);
  EXPECT_EQ(a.may, b.may);
  std::stringstream again;
  ASSERT_TRUE(WriteSnapshot(*loaded->database, again).ok());
  EXPECT_EQ(stream.str(), again.str());
}

TEST_F(SnapshotTest, TrajectoryHistoryRoundTrips) {
  ModDatabaseOptions options;
  options.keep_trajectory = true;
  ModDatabase db(&network_, options);
  core::PositionAttribute attr = Attr(main_, 0.0, 1.0);
  attr.start_time = 0.0;
  attr.direction = core::TravelDirection::kForward;
  ASSERT_TRUE(db.Insert(1, "t", attr).ok());
  core::PositionUpdate update;
  update.object = 1;
  update.time = 10.0;
  update.route = main_;
  update.route_distance = 10.0;
  update.position = {10.0, 0.0};
  update.direction = core::TravelDirection::kForward;
  update.speed = 2.0;
  ASSERT_TRUE(db.ApplyUpdate(update).ok());

  std::stringstream stream;
  ASSERT_TRUE(WriteSnapshot(db, stream).ok());
  const auto loaded = ReadSnapshot(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->database->options().keep_trajectory);
  const auto rec = loaded->database->Get(1);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ((*rec)->past.size(), 1u);
  EXPECT_DOUBLE_EQ((*rec)->past[0].speed, 1.0);
  // Time-travel queries work on the restored database.
  EXPECT_DOUBLE_EQ(loaded->database->QueryPosition(1, 5.0)->route_distance,
                   5.0);
  EXPECT_DOUBLE_EQ(loaded->database->QueryPosition(1, 12.0)->route_distance,
                   14.0);
}

TEST_F(SnapshotTest, TruncatedSnapshotsNeverLoadPartially) {
  // Robustness sweep: a snapshot cut at EVERY byte position must either be
  // rejected as InvalidArgument or parse to the complete state (possible
  // only near the end, where the lost bytes are trailing whitespace).
  // Never a crash, never a silently partial database.
  ModDatabaseOptions options;
  options.keep_trajectory = true;
  ModDatabase db(&network_, options);
  ASSERT_TRUE(db.Insert(1, "bus one", Attr(main_, 10.0, 1.0)).ok());
  ASSERT_TRUE(db.Insert(2, "bus two", Attr(bend_, 20.0, 0.5)).ok());
  core::PositionUpdate update;
  update.object = 1;
  update.time = 5.0;
  update.route = main_;
  update.route_distance = 12.0;
  update.position = {12.0, 0.0};
  update.direction = core::TravelDirection::kForward;
  update.speed = 1.5;
  ASSERT_TRUE(db.ApplyUpdate(update).ok());

  std::stringstream full;
  ASSERT_TRUE(WriteSnapshot(db, full).ok());
  const std::string text = full.str();

  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    std::stringstream stream(text.substr(0, cut));
    const auto loaded = ReadSnapshot(stream);
    if (loaded.ok()) {
      // Tolerated only when nothing meaningful was lost.
      EXPECT_EQ(loaded->database->num_objects(), 2u) << "cut at " << cut;
      EXPECT_EQ(loaded->network->size(), 2u) << "cut at " << cut;
      const auto rec = loaded->database->Get(1);
      ASSERT_TRUE(rec.ok()) << "cut at " << cut;
      EXPECT_EQ((*rec)->past.size(), 1u) << "cut at " << cut;
    } else {
      EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument)
          << "cut at " << cut << ": " << loaded.status().message();
    }
  }
}

TEST_F(SnapshotTest, ByteCorruptedSnapshotsNeverCrash) {
  // Flip every byte of a snapshot (one at a time) and feed it to the
  // reader. Any outcome is acceptable except a crash or a non-
  // InvalidArgument error; a successful parse must still satisfy basic
  // invariants (declared object count matches the table).
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "a", Attr(main_, 10.0, 1.0)).ok());
  ASSERT_TRUE(db.Insert(2, "b", Attr(bend_, 20.0, 0.5)).ok());
  std::stringstream full;
  ASSERT_TRUE(WriteSnapshot(db, full).ok());
  const std::string text = full.str();

  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    for (const char replacement : {'\0', 'X', '9', ' '}) {
      std::string corrupt = text;
      if (corrupt[pos] == replacement) continue;
      corrupt[pos] = replacement;
      std::stringstream stream(corrupt);
      const auto loaded = ReadSnapshot(stream);
      if (loaded.ok()) {
        EXPECT_LE(loaded->database->num_objects(), 2u) << "pos " << pos;
      } else {
        EXPECT_EQ(loaded.status().code(),
                  util::StatusCode::kInvalidArgument)
            << "pos " << pos << ": " << loaded.status().message();
      }
    }
  }
}

// Regression: ReadString used to `resize(len)` straight off the length
// prefix in the file, so a corrupted prefix claiming gigabytes committed
// the allocation (bad_alloc / OOM-kill) before any byte was read. An
// oversized prefix must now be a clean InvalidArgument.
TEST_F(SnapshotTest, OversizedStringPrefixRejectedWithoutAllocating) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "bus one", Attr(main_, 10.0, 1.0)).ok());
  std::stringstream full;
  ASSERT_TRUE(WriteSnapshot(db, full).ok());
  const std::string text = full.str();
  const std::string label_prefix = "7 bus one";
  const auto at = text.find(label_prefix);
  ASSERT_NE(at, std::string::npos);

  // Sweep hostile lengths: just past the 1 MiB cap, multi-GB (the original
  // OOM shape), 2^63-ish, and a "plausible but past EOF" length that only
  // the remaining-stream-size check can catch.
  for (const std::string& hostile :
       {std::string("1048577"), std::string("4294967296"),
        std::string("9223372036854775807"), std::string("4096")}) {
    std::string corrupt = text;
    corrupt.replace(at, 1, hostile);  // "7 bus one" -> "<len> bus one"
    std::stringstream stream(corrupt);
    const auto loaded = ReadSnapshot(stream);
    ASSERT_FALSE(loaded.ok()) << "len " << hostile;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument)
        << "len " << hostile << ": " << loaded.status().message();
  }
}

TEST_F(SnapshotTest, DeterministicOutput) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(3, "c", Attr(main_, 3.0, 1.0)).ok());
  ASSERT_TRUE(db.Insert(1, "a", Attr(main_, 1.0, 1.0)).ok());
  ASSERT_TRUE(db.Insert(2, "b", Attr(main_, 2.0, 1.0)).ok());
  std::stringstream s1;
  std::stringstream s2;
  ASSERT_TRUE(WriteSnapshot(db, s1).ok());
  ASSERT_TRUE(WriteSnapshot(db, s2).ok());
  EXPECT_EQ(s1.str(), s2.str());
  // Objects are written in id order.
  EXPECT_LT(s1.str().find("object 1"), s1.str().find("object 2"));
  EXPECT_LT(s1.str().find("object 2"), s1.str().find("object 3"));
}

}  // namespace
}  // namespace modb::db
