// Tests of the extended query forms: k-nearest-neighbour with
// uncertainty-aware distance brackets, bulk insertion, and time-window
// range queries (the future-time query family §4.2 enables).

#include <gtest/gtest.h>

#include <algorithm>

#include "db/mod_database.h"
#include "util/rng.h"

namespace modb::db {
namespace {

class AdvancedQueryTest : public testing::Test {
 protected:
  AdvancedQueryTest() {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {400.0, 0.0}, "street");
    avenue_ = network_.AddStraightRoute({0.0, 30.0}, {400.0, 30.0}, "avenue");
  }

  core::PositionAttribute Attr(geo::RouteId route, double s,
                               double v = 0.0) const {
    core::PositionAttribute attr;
    attr.route = route;
    attr.start_route_distance = s;
    attr.start_position = network_.route(route).PointAt(s);
    attr.speed = v;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  geo::RouteId avenue_ = geo::kInvalidRouteId;
};

TEST_F(AdvancedQueryTest, NearestOrdersByDatabaseDistance) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "near", Attr(street_, 100.0)).ok());
  ASSERT_TRUE(db.Insert(2, "mid", Attr(street_, 130.0)).ok());
  ASSERT_TRUE(db.Insert(3, "far", Attr(street_, 300.0)).ok());
  const NearestAnswer answer = db.QueryNearest({100.0, 0.0}, 2, 0.0);
  ASSERT_EQ(answer.items.size(), 2u);
  EXPECT_EQ(answer.items[0].id, 1u);
  EXPECT_DOUBLE_EQ(answer.items[0].db_distance, 0.0);
  EXPECT_EQ(answer.items[1].id, 2u);
  EXPECT_DOUBLE_EQ(answer.items[1].db_distance, 30.0);
}

TEST_F(AdvancedQueryTest, NearestDistanceBracketsCoverTruth) {
  ModDatabase db(&network_);
  // Parked at 100 with ail: at t=2 the interval is [100-0, 100+1.5*...];
  // parked speed 0 -> slow 0, fast = min(2C/t, 1.5t).
  ASSERT_TRUE(db.Insert(1, "p", Attr(street_, 100.0, 0.0)).ok());
  const NearestAnswer answer = db.QueryNearest({90.0, 0.0}, 1, 2.0);
  ASSERT_EQ(answer.items.size(), 1u);
  const auto& item = answer.items[0];
  EXPECT_DOUBLE_EQ(item.db_distance, 10.0);
  EXPECT_LE(item.min_possible_distance, item.db_distance);
  EXPECT_GE(item.max_possible_distance, item.db_distance);
  // fast bound at t=2: min(5, 3) = 3 -> interval [100, 103]:
  EXPECT_DOUBLE_EQ(item.min_possible_distance, 10.0);
  EXPECT_DOUBLE_EQ(item.max_possible_distance, 13.0);
}

TEST_F(AdvancedQueryTest, NearestFindsFringeObjects) {
  // An object just outside the first expanding probe must still beat a
  // candidate found early. Place many decoys far away and the winner at a
  // fringe position.
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "winner", Attr(street_, 210.0)).ok());
  for (core::ObjectId id = 2; id < 8; ++id) {
    ASSERT_TRUE(
        db.Insert(id, "decoy", Attr(street_, 250.0 + 10.0 * id)).ok());
  }
  const NearestAnswer answer = db.QueryNearest({200.0, 0.0}, 3, 0.0);
  ASSERT_GE(answer.items.size(), 3u);
  EXPECT_EQ(answer.items[0].id, 1u);
}

TEST_F(AdvancedQueryTest, NearestAcrossRoutes) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "on-street", Attr(street_, 100.0)).ok());
  ASSERT_TRUE(db.Insert(2, "on-avenue", Attr(avenue_, 100.0)).ok());
  // Query point between the parallel roads, slightly closer to the avenue.
  const NearestAnswer answer = db.QueryNearest({100.0, 20.0}, 2, 0.0);
  ASSERT_EQ(answer.items.size(), 2u);
  EXPECT_EQ(answer.items[0].id, 2u);
  EXPECT_DOUBLE_EQ(answer.items[0].db_distance, 10.0);
  EXPECT_DOUBLE_EQ(answer.items[1].db_distance, 20.0);
}

TEST_F(AdvancedQueryTest, NearestEdgeCases) {
  ModDatabase db(&network_);
  EXPECT_TRUE(db.QueryNearest({0.0, 0.0}, 3, 0.0).items.empty());
  ASSERT_TRUE(db.Insert(1, "only", Attr(street_, 10.0)).ok());
  EXPECT_TRUE(db.QueryNearest({0.0, 0.0}, 0, 0.0).items.empty());
  // k larger than the database: returns everything.
  const NearestAnswer all = db.QueryNearest({0.0, 0.0}, 10, 0.0);
  EXPECT_EQ(all.items.size(), 1u);
}

TEST_F(AdvancedQueryTest, NearestAgreesAcrossIndexKinds) {
  ModDatabaseOptions scan_opts;
  scan_opts.index_kind = IndexKind::kLinearScan;
  ModDatabase rtree_db(&network_);
  ModDatabase scan_db(&network_, scan_opts);
  util::Rng rng(3);
  for (core::ObjectId id = 0; id < 40; ++id) {
    const auto attr = Attr(id % 2 == 0 ? street_ : avenue_,
                           rng.Uniform(0.0, 350.0), rng.Uniform(0.0, 1.2));
    ASSERT_TRUE(rtree_db.Insert(id, "", attr).ok());
    ASSERT_TRUE(scan_db.Insert(id, "", attr).ok());
  }
  for (int q = 0; q < 20; ++q) {
    const geo::Point2 p{rng.Uniform(0.0, 400.0), rng.Uniform(-10.0, 40.0)};
    const core::Time t = rng.Uniform(0.0, 30.0);
    const NearestAnswer a = rtree_db.QueryNearest(p, 5, t);
    const NearestAnswer b = scan_db.QueryNearest(p, 5, t);
    ASSERT_EQ(a.items.size(), b.items.size()) << q;
    for (std::size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i].id, b.items[i].id) << q << " item " << i;
      EXPECT_NEAR(a.items[i].db_distance, b.items[i].db_distance, 1e-9);
    }
  }
}

TEST_F(AdvancedQueryTest, BulkInsertMatchesIndividualInserts) {
  ModDatabase bulk_db(&network_);
  ModDatabase one_db(&network_);
  std::vector<ModDatabase::BulkObject> batch;
  util::Rng rng(9);
  for (core::ObjectId id = 0; id < 50; ++id) {
    ModDatabase::BulkObject object;
    object.id = id;
    object.label = "o" + std::to_string(id);
    object.attr = Attr(street_, rng.Uniform(0.0, 390.0), rng.Uniform(0.0, 1.0));
    ASSERT_TRUE(one_db.Insert(id, object.label, object.attr).ok());
    batch.push_back(std::move(object));
  }
  ASSERT_TRUE(bulk_db.BulkInsert(std::move(batch)).ok());
  EXPECT_EQ(bulk_db.num_objects(), 50u);
  for (double t : {0.0, 10.0, 40.0}) {
    const geo::Polygon region =
        geo::Polygon::Rectangle(100.0, -1.0, 250.0, 1.0);
    const RangeAnswer a = bulk_db.QueryRange(region, t);
    const RangeAnswer b = one_db.QueryRange(region, t);
    EXPECT_EQ(a.must, b.must) << t;
    EXPECT_EQ(a.may, b.may) << t;
  }
}

TEST_F(AdvancedQueryTest, BulkInsertValidatesAtomically) {
  ModDatabase db(&network_);
  std::vector<ModDatabase::BulkObject> batch;
  batch.push_back({1, "ok", Attr(street_, 10.0)});
  core::PositionAttribute bad = Attr(street_, 10.0);
  bad.route = 99;  // unknown route
  batch.push_back({2, "bad", bad});
  EXPECT_FALSE(db.BulkInsert(std::move(batch)).ok());
  EXPECT_EQ(db.num_objects(), 0u);  // unchanged

  std::vector<ModDatabase::BulkObject> dup;
  dup.push_back({1, "a", Attr(street_, 10.0)});
  dup.push_back({1, "b", Attr(street_, 20.0)});
  EXPECT_EQ(db.BulkInsert(std::move(dup)).code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(db.num_objects(), 0u);
}

TEST_F(AdvancedQueryTest, IntervalQueryCatchesPassingObject) {
  ModDatabase db(&network_);
  // Drives through [200, 210] somewhere around t = 100 (speed 1 from 100).
  ASSERT_TRUE(db.Insert(1, "mover", Attr(street_, 100.0, 1.0)).ok());
  const geo::Polygon region =
      geo::Polygon::Rectangle(200.0, -1.0, 210.0, 1.0);
  // At no sampled single instant before t=50 is it inside...
  EXPECT_TRUE(db.QueryRange(region, 20.0).may.empty());
  // ...but over the window [50, 150] it must pass through.
  const IntervalRangeAnswer over = db.QueryRangeInterval(region, 50.0, 150.0);
  ASSERT_EQ(over.may.size(), 1u);
  EXPECT_EQ(over.may[0], 1u);
  // A window that ends before arrival sees nothing.
  const IntervalRangeAnswer before = db.QueryRangeInterval(region, 0.0, 30.0);
  EXPECT_TRUE(before.may.empty());
}

TEST_F(AdvancedQueryTest, IntervalQueryMustAtSomeTime) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "mover", Attr(street_, 100.0, 1.0)).ok());
  // A wide region the object sits deep inside around t=100.
  const geo::Polygon wide = geo::Polygon::Rectangle(150.0, -1.0, 260.0, 1.0);
  const IntervalRangeAnswer answer =
      db.QueryRangeInterval(wide, 80.0, 120.0, 1.0);
  ASSERT_EQ(answer.may.size(), 1u);
  ASSERT_EQ(answer.must_at_some_time.size(), 1u);
  EXPECT_EQ(answer.must_at_some_time[0], 1u);
}

TEST_F(AdvancedQueryTest, IntervalQueryAgreesAcrossIndexKinds) {
  ModDatabaseOptions rtree_opts;
  rtree_opts.oplane_horizon = 200.0;
  ModDatabaseOptions scan_opts;
  scan_opts.index_kind = IndexKind::kLinearScan;
  ModDatabase rtree_db(&network_, rtree_opts);
  ModDatabase scan_db(&network_, scan_opts);
  util::Rng rng(21);
  for (core::ObjectId id = 0; id < 30; ++id) {
    const auto attr = Attr(id % 2 == 0 ? street_ : avenue_,
                           rng.Uniform(0.0, 200.0), rng.Uniform(0.2, 1.2));
    ASSERT_TRUE(rtree_db.Insert(id, "", attr).ok());
    ASSERT_TRUE(scan_db.Insert(id, "", attr).ok());
  }
  for (int q = 0; q < 15; ++q) {
    const double x0 = rng.Uniform(0.0, 350.0);
    const geo::Polygon region =
        geo::Polygon::Rectangle(x0, -5.0, x0 + 30.0, 35.0);
    const double t1 = rng.Uniform(0.0, 80.0);
    const double t2 = t1 + rng.Uniform(1.0, 60.0);
    const IntervalRangeAnswer a = rtree_db.QueryRangeInterval(region, t1, t2);
    const IntervalRangeAnswer b = scan_db.QueryRangeInterval(region, t1, t2);
    EXPECT_EQ(a.may, b.may) << "q=" << q;
    EXPECT_EQ(a.must_at_some_time, b.must_at_some_time) << "q=" << q;
  }
}

TEST_F(AdvancedQueryTest, IntervalQuerySamplesWindowEndEdge) {
  // Regression: with sample_step > t2 - t1 the MUST loop used to stop
  // after sampling t1, dropping an object that is provably inside only at
  // the t2 edge.
  ModDatabase db(&network_);
  // Speed 1 from 100: deep inside [195, 215] only around t = 105.
  ASSERT_TRUE(db.Insert(1, "edge", Attr(street_, 100.0, 1.0)).ok());
  const geo::Polygon region =
      geo::Polygon::Rectangle(195.0, -1.0, 215.0, 1.0);
  // Sanity: at t=105 the object MUST be in the region...
  ASSERT_EQ(db.QueryRange(region, 105.0).must.size(), 1u);
  // ...and t=105 is the *end* of the window, with a step far larger than
  // the window: the edge sample is the only chance to detect MUST.
  const IntervalRangeAnswer answer =
      db.QueryRangeInterval(region, 95.0, 105.0, 1000.0);
  ASSERT_EQ(answer.may.size(), 1u);
  ASSERT_EQ(answer.must_at_some_time.size(), 1u) << "t2 edge not sampled";
  EXPECT_EQ(answer.must_at_some_time[0], 1u);
}

TEST_F(AdvancedQueryTest, IntervalQueryZeroLengthWindow) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "still", Attr(street_, 100.0, 1.0)).ok());
  const geo::Polygon region =
      geo::Polygon::Rectangle(150.0, -1.0, 250.0, 1.0);
  const IntervalRangeAnswer answer =
      db.QueryRangeInterval(region, 100.0, 100.0, 5.0);
  ASSERT_EQ(answer.may.size(), 1u);
  EXPECT_EQ(answer.must_at_some_time.size(), 1u);
}

TEST_F(AdvancedQueryTest, NearestAccumulatesCandidatesAcrossProbes) {
  // Regression: candidates_examined was overwritten by each expanding
  // probe, under-reporting the refinement work actually done.
  ModDatabase db(&network_);
  // One object near the query point (found by an early small probe) and a
  // cluster far away, so reaching k = 2 takes several doublings that each
  // re-examine the near object.
  ASSERT_TRUE(db.Insert(1, "near", Attr(street_, 10.0)).ok());
  ASSERT_TRUE(db.Insert(2, "far", Attr(street_, 390.0)).ok());
  const NearestAnswer answer = db.QueryNearest({10.0, 0.0}, 2, 0.0);
  ASSERT_EQ(answer.items.size(), 2u);
  // The near object is a candidate of every probe radius that contains it;
  // the total must exceed the final probe's yield of 2.
  EXPECT_GT(answer.candidates_examined, 2u);
}

TEST_F(AdvancedQueryTest, NearestWidensPastFilteredCandidates) {
  // The probe loop must expand until k *surviving* items are found, not k
  // raw candidates: refinement may drop candidates (stale index entries,
  // unknown routes), and stopping on the raw count could return fewer
  // than k while closer objects sit outside the probe. With the built-in
  // indexes the raw and surviving counts coincide, so this doubles as an
  // ordering sanity check over a spread-out fleet.
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "close", Attr(street_, 40.0)).ok());
  ASSERT_TRUE(db.Insert(2, "mid", Attr(street_, 120.0)).ok());
  ASSERT_TRUE(db.Insert(3, "far", Attr(street_, 360.0)).ok());
  const NearestAnswer baseline = db.QueryNearest({40.0, 0.0}, 3, 0.0);
  ASSERT_EQ(baseline.items.size(), 3u);
  EXPECT_EQ(baseline.items[0].id, 1u);
  EXPECT_EQ(baseline.items[1].id, 2u);
  EXPECT_EQ(baseline.items[2].id, 3u);
}

TEST_F(AdvancedQueryTest, IntervalQuerySwapsReversedWindow) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "x", Attr(street_, 100.0, 1.0)).ok());
  const geo::Polygon region =
      geo::Polygon::Rectangle(90.0, -1.0, 160.0, 1.0);
  const IntervalRangeAnswer a = db.QueryRangeInterval(region, 40.0, 10.0);
  EXPECT_EQ(a.window_start, 10.0);
  EXPECT_EQ(a.window_end, 40.0);
  EXPECT_EQ(a.may.size(), 1u);
}

}  // namespace
}  // namespace modb::db
