#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>

#include "db/sharded_database.h"
#include "util/fault_injection.h"

namespace modb::db {
namespace {

namespace fs = std::filesystem;

std::string Fingerprint(const ShardedModDatabase& db) {
  std::map<core::ObjectId, std::string> rows;
  db.ForEachRecord([&](const MovingObjectRecord& record) {
    std::ostringstream row;
    row << std::hexfloat << record.label << ' ' << record.attr.start_time
        << ' ' << record.attr.start_route_distance << ' '
        << record.attr.speed;
    rows[record.id] = row.str();
  });
  std::string out;
  for (const auto& [id, row] : rows) {
    out += std::to_string(id) + ':' + row + '\n';
  }
  return out;
}

class ShardedDurabilityTest : public testing::Test {
 protected:
  ShardedDurabilityTest() {
    main_ = network_.AddStraightRoute({0.0, 0.0}, {500.0, 0.0}, "main st");
  }

  void SetUp() override {
    dir_ = (fs::path(testing::TempDir()) /
            ("sharded_durability_" +
             std::string(testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ShardedModDatabaseOptions Options() const {
    ShardedModDatabaseOptions options;
    options.num_shards = 4;
    options.num_query_threads = 0;  // inline fan-out: single-core friendly
    options.durable_dir = dir_;
    return options;
  }

  core::PositionAttribute Attr(double s, double v) const {
    core::PositionAttribute attr;
    attr.start_time = 0.0;
    attr.route = main_;
    attr.start_route_distance = s;
    attr.start_position = network_.route(main_).PointAt(s);
    attr.direction = core::TravelDirection::kForward;
    attr.speed = v;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, double time,
                              double s) const {
    core::PositionUpdate update;
    update.object = id;
    update.time = time;
    update.route = main_;
    update.route_distance = s;
    update.position = network_.route(main_).PointAt(s);
    update.direction = core::TravelDirection::kForward;
    update.speed = 1.0;
    return update;
  }

  geo::RouteNetwork network_;
  geo::RouteId main_ = geo::kInvalidRouteId;
  std::string dir_;
};

TEST_F(ShardedDurabilityTest, BootstrapCreatesPerShardDirectories) {
  ShardedModDatabase db(&network_, Options());
  ASSERT_TRUE(db.durability_status().ok())
      << db.durability_status().message();
  EXPECT_FALSE(db.recovery_report().recovered);
  std::size_t shard_dirs = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().rfind("shard-", 0) == 0) {
      ++shard_dirs;
    }
  }
  EXPECT_EQ(shard_dirs, 4u);
}

TEST_F(ShardedDurabilityTest, ReopenRecoversEveryShard) {
  std::string expected;
  {
    ShardedModDatabase db(&network_, Options());
    ASSERT_TRUE(db.durability_status().ok());
    for (core::ObjectId id = 1; id <= 40; ++id) {
      ASSERT_TRUE(
          db.Insert(id, "obj-" + std::to_string(id),
                    Attr(static_cast<double>(id) * 10.0, 1.0))
              .ok());
    }
    for (core::ObjectId id = 1; id <= 40; ++id) {
      ASSERT_TRUE(
          db.ApplyUpdate(
                Update(id, 1.0, static_cast<double>(id) * 10.0 + 1.0))
              .ok());
    }
    ASSERT_TRUE(db.Erase(7).ok());
    ASSERT_TRUE(db.Erase(23).ok());
    expected = Fingerprint(db);
  }

  ShardedModDatabase db(&network_, Options());
  ASSERT_TRUE(db.durability_status().ok())
      << db.durability_status().message();
  EXPECT_TRUE(db.recovery_report().recovered);
  EXPECT_TRUE(db.recovery_report().clean);
  EXPECT_EQ(db.recovery_report().wal_records_replayed, 82u);
  EXPECT_EQ(db.num_objects(), 38u);
  EXPECT_EQ(Fingerprint(db), expected);

  // The recovered store answers queries and keeps logging.
  auto answer = db.QueryPosition(1, 2.0);
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(1, 3.0, 14.0)).ok());
}

TEST_F(ShardedDurabilityTest, BulkInsertIsDurablePerRecord) {
  {
    ShardedModDatabase db(&network_, Options());
    ASSERT_TRUE(db.durability_status().ok());
    std::vector<ShardedModDatabase::BulkObject> batch;
    for (core::ObjectId id = 1; id <= 20; ++id) {
      batch.push_back(
          {id, "bulk-" + std::to_string(id),
           Attr(static_cast<double>(id) * 5.0, 0.5)});
    }
    ASSERT_TRUE(db.BulkInsert(std::move(batch)).ok());
  }
  ShardedModDatabase db(&network_, Options());
  ASSERT_TRUE(db.durability_status().ok());
  EXPECT_EQ(db.num_objects(), 20u);
}

TEST_F(ShardedDurabilityTest, CheckpointTruncatesEveryShardLog) {
  ShardedModDatabaseOptions options = Options();
  // Keep one checkpoint so superseded epochs are pruned immediately.
  options.durability.checkpoints_to_keep = 1;
  ShardedModDatabase db(&network_, options);
  ASSERT_TRUE(db.durability_status().ok());
  for (core::ObjectId id = 1; id <= 16; ++id) {
    ASSERT_TRUE(db.Insert(id, "o", Attr(static_cast<double>(id), 1.0)).ok());
  }
  ASSERT_TRUE(db.Checkpoint().ok());
  // Every shard's live WAL moved past epoch 1 and is empty again.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    for (const auto& file : fs::directory_iterator(entry.path())) {
      const std::string name = file.path().filename().string();
      if (name.rfind("wal-", 0) == 0) {
        EXPECT_EQ(fs::file_size(file.path()), 0u) << file.path();
      }
    }
  }
}

TEST_F(ShardedDurabilityTest, CheckpointWithoutDurabilityIsRejected) {
  ShardedModDatabaseOptions options;
  options.num_shards = 2;
  options.num_query_threads = 0;
  ShardedModDatabase db(&network_, options);
  EXPECT_TRUE(db.durability_status().ok());  // off = trivially OK
  EXPECT_EQ(db.Checkpoint().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ShardedDurabilityTest, MetricsExposeWalAndRecoveryCounters) {
  {
    ShardedModDatabase db(&network_, Options());
    ASSERT_TRUE(db.durability_status().ok());
    for (core::ObjectId id = 1; id <= 8; ++id) {
      ASSERT_TRUE(db.Insert(id, "o", Attr(static_cast<double>(id), 1.0)).ok());
    }
    EXPECT_EQ(db.metrics().GetCounter("wal.appends")->value(), 8u);
    EXPECT_GT(db.metrics().GetCounter("wal.bytes")->value(), 0u);
    const std::string dump = db.DumpMetrics();
    EXPECT_NE(dump.find("wal.appends"), std::string::npos);
  }
  ShardedModDatabase db(&network_, Options());
  EXPECT_EQ(db.metrics().GetCounter("recovery.records_replayed")->value(),
            8u);
  const std::string dump = db.DumpMetrics();
  EXPECT_NE(dump.find("recovery.records_replayed"), std::string::npos);
}

TEST_F(ShardedDurabilityTest, ParallelRecoveryMatchesInlineRecovery) {
  // Shards recover concurrently on the fan-out pool; the recovered state
  // and the aggregated report must be identical for any pool size. Two
  // copies of the same durable tree are reopened — one inline (0 threads),
  // one on a 3-thread pool — and compared field by field.
  std::string expected;
  {
    ShardedModDatabase db(&network_, Options());
    ASSERT_TRUE(db.durability_status().ok());
    for (core::ObjectId id = 1; id <= 60; ++id) {
      ASSERT_TRUE(
          db.Insert(id, "obj-" + std::to_string(id),
                    Attr(static_cast<double>(id) * 5.0, 1.0))
              .ok());
    }
    for (core::ObjectId id = 1; id <= 60; ++id) {
      ASSERT_TRUE(
          db.ApplyUpdate(Update(id, 1.0, static_cast<double>(id) * 5.0 + 1.0))
              .ok());
    }
    ASSERT_TRUE(db.Erase(11).ok());
    expected = Fingerprint(db);
  }
  const std::string copy = dir_ + "_copy";
  fs::remove_all(copy);
  fs::copy(dir_, copy, fs::copy_options::recursive);

  ShardedModDatabaseOptions inline_options = Options();
  inline_options.num_query_threads = 0;
  ShardedModDatabaseOptions pooled_options = Options();
  pooled_options.durable_dir = copy;
  pooled_options.num_query_threads = 3;

  RecoveryReport inline_report;
  std::string inline_fingerprint;
  {
    ShardedModDatabase db(&network_, inline_options);
    ASSERT_TRUE(db.durability_status().ok())
        << db.durability_status().message();
    inline_report = db.recovery_report();
    inline_fingerprint = Fingerprint(db);
  }
  {
    ShardedModDatabase db(&network_, pooled_options);
    ASSERT_TRUE(db.durability_status().ok())
        << db.durability_status().message();
    EXPECT_EQ(db.num_query_threads(), 3u);
    const RecoveryReport& pooled = db.recovery_report();
    EXPECT_EQ(Fingerprint(db), inline_fingerprint);
    EXPECT_EQ(Fingerprint(db), expected);
    EXPECT_EQ(pooled.recovered, inline_report.recovered);
    EXPECT_EQ(pooled.clean, inline_report.clean);
    EXPECT_EQ(pooled.checkpoint_id, inline_report.checkpoint_id);
    EXPECT_EQ(pooled.objects_restored, inline_report.objects_restored);
    EXPECT_EQ(pooled.wal_records_replayed,
              inline_report.wal_records_replayed);
    EXPECT_EQ(pooled.wal_records_skipped, inline_report.wal_records_skipped);
    EXPECT_EQ(pooled.wal_bytes_truncated, inline_report.wal_bytes_truncated);
    EXPECT_TRUE(inline_report.recovered);
    EXPECT_EQ(inline_report.wal_records_replayed, 121u);
    EXPECT_GT(pooled.duration_ms, 0.0);
  }
  fs::remove_all(copy);
}

TEST_F(ShardedDurabilityTest, CheckpointFailureIsIsolatedToTheFailingShard) {
  // One shard's fresh-epoch WAL refuses to open; the checkpoint must still
  // run on every other shard, the error must name the culprit, and the
  // failing shard's old WAL must stay attached and intact — no record may
  // be lost (a log is never truncated before its replacement snapshot and
  // fresh epoch are in place).
  ShardedModDatabaseOptions options = Options();
  options.durability.checkpoints_to_keep = 1;
  // Epoch-1 (bootstrap) opens succeed everywhere; shard 2's epoch-2 open —
  // the one Checkpoint() needs — fails.
  const util::WritableFileFactory real = util::DefaultWritableFileFactory();
  options.durability.wal.file_factory =
      [real](const std::string& path)
      -> util::Result<std::unique_ptr<util::WritableFile>> {
    if (path.find("shard-0002") != std::string::npos &&
        path.find("wal-00000002") != std::string::npos) {
      return util::Status::Internal("injected: no space for a new epoch");
    }
    return real(path);
  };

  std::string expected;
  {
    ShardedModDatabase db(&network_, options);
    ASSERT_TRUE(db.durability_status().ok());
    for (core::ObjectId id = 1; id <= 24; ++id) {
      ASSERT_TRUE(
          db.Insert(id, "obj-" + std::to_string(id),
                    Attr(static_cast<double>(id) * 10.0, 1.0))
              .ok());
    }
    expected = Fingerprint(db);

    const util::Status status = db.Checkpoint();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), util::StatusCode::kInternal);
    EXPECT_NE(status.message().find("shard 2"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("3 checkpointed successfully"),
              std::string::npos)
        << status.message();

    // The failing shard keeps logging into its old epoch: a write to an
    // object it owns still succeeds after the failed checkpoint.
    core::ObjectId on_failed_shard = 0;
    for (core::ObjectId id = 1; id <= 24; ++id) {
      if (db.ShardOf(id) == 2) {
        on_failed_shard = id;
        break;
      }
    }
    ASSERT_NE(on_failed_shard, 0u);
    ASSERT_TRUE(
        db.ApplyUpdate(Update(on_failed_shard, 2.0,
                              static_cast<double>(on_failed_shard) * 10.0 + 3.0))
            .ok());
    expected = Fingerprint(db);
  }

  // The other shards moved to epoch 2; shard 2 still has its epoch-1 log.
  bool shard2_epoch1 = false;
  bool other_epoch2 = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string shard = entry.path().filename().string();
    if (shard.rfind("shard-", 0) != 0) continue;
    for (const auto& file : fs::directory_iterator(entry.path())) {
      const std::string name = file.path().filename().string();
      if (name.rfind("wal-00000001", 0) == 0 &&
          fs::file_size(file.path()) > 0 && shard == "shard-0002") {
        shard2_epoch1 = true;
      }
      if (name.rfind("wal-00000002", 0) == 0 && shard != "shard-0002") {
        other_epoch2 = true;
      }
    }
  }
  EXPECT_TRUE(shard2_epoch1);
  EXPECT_TRUE(other_epoch2);

  // Everything — checkpointed shards and the failed one — recovers.
  ShardedModDatabase db(&network_, Options());
  ASSERT_TRUE(db.durability_status().ok())
      << db.durability_status().message();
  EXPECT_EQ(db.num_objects(), 24u);
  EXPECT_EQ(Fingerprint(db), expected);
}

TEST_F(ShardedDurabilityTest, TornShardLogLosesOnlyThatShardsTail) {
  ShardedModDatabaseOptions options = Options();
  {
    ShardedModDatabase db(&network_, options);
    ASSERT_TRUE(db.durability_status().ok());
    for (core::ObjectId id = 1; id <= 24; ++id) {
      ASSERT_TRUE(
          db.Insert(id, "obj-" + std::to_string(id),
                    Attr(static_cast<double>(id) * 10.0, 1.0))
              .ok());
    }
  }

  // Tear the tail of one shard's log; the other shards are untouched.
  std::string victim_log;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().rfind("shard-", 0) != 0) continue;
    for (const auto& file : fs::directory_iterator(entry.path())) {
      const std::string name = file.path().filename().string();
      if (name.rfind("wal-", 0) == 0 && fs::file_size(file.path()) > 0) {
        victim_log = file.path().string();
        break;
      }
    }
    if (!victim_log.empty()) break;
  }
  ASSERT_FALSE(victim_log.empty());
  auto size = util::FileSize(victim_log);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(util::TruncateFile(victim_log, *size - 5).ok());

  ShardedModDatabase db(&network_, options);
  ASSERT_TRUE(db.durability_status().ok());
  EXPECT_TRUE(db.recovery_report().recovered);
  EXPECT_FALSE(db.recovery_report().clean);
  EXPECT_GT(db.recovery_report().wal_bytes_truncated, 0u);
  // Exactly one record (the torn tail of one shard) is missing.
  EXPECT_EQ(db.num_objects(), 23u);
}

}  // namespace
}  // namespace modb::db
