// Equivalence and durability properties of the staged batch write path:
// ApplyUpdateBatch must be observationally identical to the same updates
// applied one by one through ApplyUpdate — same final records, same query
// answers on every index kind, same accept/reject decisions, and the same
// recovered state after a crash + WAL replay.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "db/mod_database.h"
#include "db/recovery.h"
#include "db/wal.h"
#include "util/fault_injection.h"
#include "util/metrics.h"

namespace modb::db {
namespace {

namespace fs = std::filesystem;

/// Order-independent, bit-exact state fingerprint (attribute, history and
/// update counters — the batch path must reproduce all of them).
std::string Signature(const ModDatabase& db) {
  std::map<core::ObjectId, std::string> rows;
  db.ForEachRecord([&](const MovingObjectRecord& record) {
    std::ostringstream row;
    row << std::hexfloat;
    const auto put_attr = [&row](const core::PositionAttribute& a) {
      row << ' ' << a.start_time << ' ' << a.route << ' '
          << a.start_route_distance << ' ' << a.start_position.x << ' '
          << a.start_position.y << ' ' << static_cast<int>(a.direction) << ' '
          << a.speed;
    };
    row << record.label << " updates=" << record.update_count;
    put_attr(record.attr);
    row << " past=" << record.past.size();
    for (const core::PositionAttribute& past : record.past) put_attr(past);
    rows[record.id] = row.str();
  });
  std::string signature;
  for (const auto& [id, row] : rows) {
    signature += std::to_string(id) + ':' + row + '\n';
  }
  return signature;
}

class BatchIngestTest : public testing::Test {
 protected:
  BatchIngestTest() {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {200.0, 0.0}, "main-st");
    avenue_ = network_.AddStraightRoute({50.0, -100.0}, {50.0, 100.0}, "ave");
  }

  core::PositionAttribute Attr(double start, double speed) const {
    core::PositionAttribute attr;
    attr.start_time = 0.0;
    attr.route = street_;
    attr.start_route_distance = start;
    attr.start_position = {start, 0.0};
    attr.speed = speed;
    attr.max_speed = 2.5;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, core::Time t, double s,
                              double speed,
                              geo::RouteId route = geo::kInvalidRouteId) const {
    core::PositionUpdate u;
    u.object = id;
    u.time = t;
    u.route = route == geo::kInvalidRouteId ? street_ : route;
    u.route_distance = s;
    u.position = u.route == street_ ? geo::Point2{s, 0.0}
                                    : geo::Point2{50.0, s - 100.0};
    u.direction = core::TravelDirection::kForward;
    u.speed = speed;
    return u;
  }

  void Seed(ModDatabase& db, std::size_t n) const {
    for (core::ObjectId id = 1; id <= n; ++id) {
      ASSERT_TRUE(
          db.Insert(id, "obj-" + std::to_string(id),
                    Attr(5.0 * static_cast<double>(id), 1.0))
              .ok());
    }
  }

  /// A scripted stream exercising the batch path's edge cases: several
  /// objects, repeated objects inside one batch window, a time-regressing
  /// record, an unknown object and an unknown route.
  std::vector<core::PositionUpdate> Script() const {
    std::vector<core::PositionUpdate> updates;
    for (int round = 1; round <= 6; ++round) {
      const double t = static_cast<double>(round) * 2.0;
      for (core::ObjectId id = 1; id <= 8; ++id) {
        updates.push_back(
            Update(id, t, 10.0 + static_cast<double>(id) + t, 1.2));
      }
      // Same object twice in the same window (later one supersedes).
      updates.push_back(Update(3, t + 0.5, 60.0 + t, 0.8));
      // Cross-route move.
      updates.push_back(Update(5, t + 0.6, 80.0 + t, 1.1, avenue_));
    }
    // Rejections: unknown object, regressing time, unknown route.
    updates.push_back(Update(99, 100.0, 10.0, 1.0));
    core::PositionUpdate regress = Update(2, 1.0, 11.0, 1.0);
    updates.push_back(regress);
    core::PositionUpdate bad_route = Update(4, 100.0, 1.0, 1.0);
    bad_route.route = 77;
    updates.push_back(bad_route);
    return updates;
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  geo::RouteId avenue_ = geo::kInvalidRouteId;
};

TEST_F(BatchIngestTest, BatchMatchesSequentialOnEveryIndexKind) {
  for (const IndexKind kind : {IndexKind::kLinearScan,
                               IndexKind::kTimeSpaceRTree,
                               IndexKind::kVelocityPartitioned}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                    std::size_t{7}, std::size_t{1000}}) {
      ModDatabaseOptions options;
      options.index_kind = kind;
      options.keep_trajectory = true;
      options.max_trajectory_versions = 3;  // exercise history eviction
      ModDatabase sequential(&network_, options);
      ModDatabase batched(&network_, options);
      Seed(sequential, 8);
      Seed(batched, 8);

      const std::vector<core::PositionUpdate> script = Script();
      std::vector<util::Status> seq_statuses;
      seq_statuses.reserve(script.size());
      for (const core::PositionUpdate& u : script) {
        seq_statuses.push_back(sequential.ApplyUpdate(u));
      }
      std::vector<util::Status> batch_statuses;
      for (std::size_t i = 0; i < script.size(); i += batch) {
        const std::size_t n = std::min(batch, script.size() - i);
        UpdateBatchResult r = batched.ApplyUpdateBatch(
            std::span<const core::PositionUpdate>(script.data() + i, n));
        ASSERT_EQ(r.statuses.size(), n);
        EXPECT_EQ(r.applied + r.rejected, n);
        for (util::Status& s : r.statuses) {
          batch_statuses.push_back(std::move(s));
        }
      }

      ASSERT_EQ(batch_statuses.size(), seq_statuses.size());
      for (std::size_t i = 0; i < seq_statuses.size(); ++i) {
        EXPECT_EQ(batch_statuses[i].code(), seq_statuses[i].code())
            << "record " << i << " batch=" << batch;
      }
      EXPECT_EQ(Signature(batched), Signature(sequential))
          << "kind=" << static_cast<int>(kind) << " batch=" << batch;

      // Query answers must agree everywhere, not just the raw records.
      for (const double t : {2.0, 5.0, 9.0, 12.5}) {
        const geo::Polygon region =
            geo::Polygon::Rectangle(0.0, -120.0, 200.0, 120.0);
        const RangeAnswer a = sequential.QueryRange(region, t);
        const RangeAnswer b = batched.QueryRange(region, t);
        EXPECT_EQ(a.must, b.must) << "t=" << t;
        EXPECT_EQ(a.may, b.may) << "t=" << t;
        const geo::Polygon narrow =
            geo::Polygon::Rectangle(30.0, -5.0, 90.0, 5.0);
        const RangeAnswer c = sequential.QueryRange(narrow, t);
        const RangeAnswer d = batched.QueryRange(narrow, t);
        EXPECT_EQ(c.must, d.must) << "t=" << t;
        EXPECT_EQ(c.may, d.may) << "t=" << t;
      }
    }
  }
}

TEST_F(BatchIngestTest, BatchLocalValidationSeesEarlierRecordsOfTheBatch) {
  ModDatabase db(&network_);
  Seed(db, 1);
  // Second record regresses against the *first record of the batch*, not
  // the stored attribute — sequential application would reject it, so the
  // batch must too.
  const std::vector<core::PositionUpdate> batch = {
      Update(1, 10.0, 20.0, 1.0), Update(1, 4.0, 25.0, 1.0),
      Update(1, 12.0, 30.0, 1.0)};
  const UpdateBatchResult r = db.ApplyUpdateBatch(batch);
  EXPECT_TRUE(r.statuses[0].ok());
  EXPECT_EQ(r.statuses[1].code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(r.statuses[2].ok());
  EXPECT_EQ(r.applied, 2u);
  EXPECT_EQ(r.rejected, 1u);
  const auto rec = db.Get(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->attr.start_time, 12.0);
  EXPECT_EQ((*rec)->update_count, 2u);
}

TEST_F(BatchIngestTest, EmptyAndSingletonBatches) {
  ModDatabase db(&network_);
  Seed(db, 1);
  const UpdateBatchResult empty = db.ApplyUpdateBatch({});
  EXPECT_TRUE(empty.all_ok());
  EXPECT_EQ(empty.applied, 0u);
  const std::vector<core::PositionUpdate> one = {Update(1, 3.0, 20.0, 1.0)};
  const UpdateBatchResult r = db.ApplyUpdateBatch(one);
  EXPECT_TRUE(r.all_ok());
  EXPECT_EQ(r.applied, 1u);
  EXPECT_TRUE(r.first_error().ok());
}

TEST_F(BatchIngestTest, RejectionsAreCountedAndDoNotBlockTheRest) {
  util::MetricsRegistry registry;
  ModDatabase db(&network_);
  db.SetMetrics(&registry, "mod.");
  Seed(db, 2);
  const std::vector<core::PositionUpdate> batch = {
      Update(1, 2.0, 20.0, 1.0), Update(99, 2.0, 20.0, 1.0),
      Update(2, 2.0, 30.0, 1.0)};
  const UpdateBatchResult r = db.ApplyUpdateBatch(batch);
  EXPECT_EQ(r.applied, 2u);
  EXPECT_EQ(r.rejected, 1u);
  EXPECT_EQ(r.statuses[1].code(), util::StatusCode::kNotFound);
  EXPECT_FALSE(r.all_ok());
  EXPECT_EQ(r.first_error().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(registry.GetCounter("mod.ingest.validate_reject")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("mod.updates_applied")->value(), 2u);
  EXPECT_EQ(registry.GetLatency("mod.ingest.batch_size")->count(), 1u);
}

class BatchIngestDurabilityTest : public BatchIngestTest {
 protected:
  void SetUp() override {
    dir_ = (fs::path(testing::TempDir()) /
            ("batch_ingest_" +
             std::string(testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(BatchIngestDurabilityTest, BatchedUpdatesSurviveCrashAndReplay) {
  std::string live_signature;
  {
    ModDatabase db(&network_);
    auto manager = DurabilityManager::Open(&db, dir_);
    ASSERT_TRUE(manager.ok()) << manager.status().message();
    Seed(db, 8);
    const std::vector<core::PositionUpdate> script = Script();
    for (std::size_t i = 0; i < script.size(); i += 5) {
      const std::size_t n = std::min<std::size_t>(5, script.size() - i);
      db.ApplyUpdateBatch(
          std::span<const core::PositionUpdate>(script.data() + i, n));
    }
    live_signature = Signature(db);
    // No Checkpoint(), no clean shutdown: recovery must come from the
    // bootstrap checkpoint plus the batched WAL records alone.
  }
  ModDatabase recovered(&network_);
  auto manager = DurabilityManager::Open(&recovered, dir_);
  ASSERT_TRUE(manager.ok()) << manager.status().message();
  EXPECT_TRUE((*manager)->recovery_report().recovered);
  EXPECT_EQ(Signature(recovered), live_signature);
}

TEST_F(BatchIngestDurabilityTest, BulkInsertLogsOneBatchedRecord) {
  util::MetricsRegistry registry;
  WalWriterOptions options;
  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  (*writer)->SetMetrics(&registry);

  ModDatabase db(&network_);
  db.AttachWal(writer->get());
  std::vector<ModDatabase::BulkObject> objects;
  for (core::ObjectId id = 1; id <= 50; ++id) {
    objects.push_back({id, "bulk-" + std::to_string(id),
                       Attr(static_cast<double>(id), 1.0)});
  }
  ASSERT_TRUE(db.BulkInsert(std::move(objects)).ok());
  // One frame for the whole call — the N-frame amplification is gone.
  EXPECT_EQ(registry.GetCounter("wal.appends")->value(), 1u);
  ASSERT_TRUE((*writer)->Close().ok());

  // The frame decodes as one batch of 50 nested inserts and replays to the
  // same fleet.
  ModDatabase replayed(&network_);
  std::size_t top_level = 0;
  auto stats = ReplayWal(dir_, 1, [&](const WalRecord& record) {
    ++top_level;
    EXPECT_EQ(record.type, WalRecordType::kUpdateBatch);
    for (const WalRecord& sub : record.batch) {
      EXPECT_EQ(sub.type, WalRecordType::kInsert);
      EXPECT_TRUE(replayed.Insert(sub.id, sub.label, sub.attr).ok());
    }
    return util::Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->clean);
  EXPECT_EQ(top_level, 1u);
  EXPECT_EQ(replayed.num_objects(), 50u);
  EXPECT_EQ(Signature(replayed), Signature(db));
}

TEST_F(BatchIngestDurabilityTest, MidBatchWalFailureFailsWholeBatchCleanly) {
  util::MetricsRegistry registry;
  util::FaultPlan plan;
  plan.crash_after_bytes = 512;  // torn write partway into the stream
  util::FaultInjector injector(plan);
  WalWriterOptions options;
  options.file_factory = injector.factory();
  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());

  ModDatabase db(&network_);
  db.SetMetrics(&registry, "mod.");
  Seed(db, 4);  // in-memory only; WAL attached after the seed
  db.AttachWal(writer->get());
  const std::string before = Signature(db);

  // Push batches until the planned crash fires inside an append.
  std::vector<core::PositionUpdate> batch;
  UpdateBatchResult failed;
  double t = 1.0;
  std::string applied_signature = before;
  bool crashed = false;
  for (int round = 0; round < 64 && !crashed; ++round, t += 1.0) {
    batch.clear();
    for (core::ObjectId id = 1; id <= 4; ++id) {
      batch.push_back(Update(id, t, 20.0 + t, 1.0));
    }
    const UpdateBatchResult r = db.ApplyUpdateBatch(batch);
    if (r.all_ok()) {
      applied_signature = Signature(db);
      continue;
    }
    crashed = true;
    failed = r;
  }
  ASSERT_TRUE(crashed);
  // All-or-nothing: the failed batch left no memory effect at all.
  EXPECT_EQ(failed.applied, 0u);
  for (const util::Status& s : failed.statuses) EXPECT_FALSE(s.ok());
  EXPECT_EQ(Signature(db), applied_signature);
  EXPECT_GE(registry.GetCounter("mod.ingest.wal_fail")->value(), 1u);
  // The writer is poisoned: later writes — batched or not — keep failing.
  EXPECT_FALSE(db.ApplyUpdate(Update(1, t + 1.0, 30.0, 1.0)).ok());
  EXPECT_EQ(Signature(db), applied_signature);

  // Replay recovers exactly the fully-appended prefix; the torn batch
  // frame is truncated away, never half-applied.
  ModDatabase recovered(&network_);
  Seed(recovered, 4);
  auto stats = ReplayWal(dir_, 1, [&](const WalRecord& record) {
    EXPECT_EQ(record.type, WalRecordType::kUpdateBatch);
    std::vector<core::PositionUpdate> updates;
    for (const WalRecord& sub : record.batch) updates.push_back(sub.update);
    return recovered.ApplyUpdateBatch(updates).first_error();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Signature(recovered), applied_signature);
}

}  // namespace
}  // namespace modb::db
