#include "db/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/fault_injection.h"
#include "util/metrics.h"

namespace modb::db {
namespace {

namespace fs = std::filesystem;

core::PositionAttribute MakeAttr(double start_time) {
  core::PositionAttribute attr;
  attr.start_time = start_time;
  attr.route = 7;
  attr.start_route_distance = 12.5;
  attr.start_position = {3.0, 4.0};
  attr.direction = core::TravelDirection::kBackward;
  attr.speed = 0.9;
  attr.policy = core::PolicyKind::kDelayedLinear;
  attr.update_cost = 2.5;
  attr.max_speed = 1.5;
  attr.fixed_threshold = 0.25;
  attr.period = 2.0;
  attr.step_threshold = 0.5;
  return attr;
}

core::PositionUpdate MakeUpdate(core::ObjectId id, double time) {
  core::PositionUpdate update;
  update.object = id;
  update.time = time;
  update.route = 7;
  update.route_distance = 20.0 + time;
  update.position = {1.0 + time, 2.0 - time};
  update.direction = core::TravelDirection::kForward;
  update.speed = 1.25;
  return update;
}

class WalTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(testing::TempDir()) /
            ("wal_test_" +
             std::string(testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(WalTest, RecordEncodingRoundTrips) {
  WalRecord insert;
  insert.type = WalRecordType::kInsert;
  insert.id = 42;
  insert.label = "bus-42";
  insert.attr = MakeAttr(5.0);

  WalRecord update;
  update.type = WalRecordType::kUpdate;
  update.update = MakeUpdate(42, 6.5);

  WalRecord erase;
  erase.type = WalRecordType::kErase;
  erase.id = 42;

  for (const WalRecord& original : {insert, update, erase}) {
    const std::string payload = EncodeWalRecord(original);
    WalRecord decoded;
    ASSERT_TRUE(DecodeWalRecord(payload, &decoded));
    EXPECT_EQ(decoded.type, original.type);
    switch (original.type) {
      case WalRecordType::kInsert:
        EXPECT_EQ(decoded.id, original.id);
        EXPECT_EQ(decoded.label, original.label);
        EXPECT_EQ(decoded.attr.start_time, original.attr.start_time);
        EXPECT_EQ(decoded.attr.route, original.attr.route);
        EXPECT_EQ(decoded.attr.start_route_distance,
                  original.attr.start_route_distance);
        EXPECT_EQ(decoded.attr.start_position.x,
                  original.attr.start_position.x);
        EXPECT_EQ(decoded.attr.start_position.y,
                  original.attr.start_position.y);
        EXPECT_EQ(decoded.attr.direction, original.attr.direction);
        EXPECT_EQ(decoded.attr.speed, original.attr.speed);
        EXPECT_EQ(decoded.attr.policy, original.attr.policy);
        EXPECT_EQ(decoded.attr.update_cost, original.attr.update_cost);
        EXPECT_EQ(decoded.attr.max_speed, original.attr.max_speed);
        EXPECT_EQ(decoded.attr.fixed_threshold,
                  original.attr.fixed_threshold);
        EXPECT_EQ(decoded.attr.period, original.attr.period);
        EXPECT_EQ(decoded.attr.step_threshold,
                  original.attr.step_threshold);
        break;
      case WalRecordType::kUpdate:
        EXPECT_EQ(decoded.update.object, original.update.object);
        EXPECT_EQ(decoded.update.time, original.update.time);
        EXPECT_EQ(decoded.update.route, original.update.route);
        EXPECT_EQ(decoded.update.route_distance,
                  original.update.route_distance);
        EXPECT_EQ(decoded.update.position.x, original.update.position.x);
        EXPECT_EQ(decoded.update.position.y, original.update.position.y);
        EXPECT_EQ(decoded.update.direction, original.update.direction);
        EXPECT_EQ(decoded.update.speed, original.update.speed);
        break;
      case WalRecordType::kErase:
        EXPECT_EQ(decoded.id, original.id);
        break;
    }
  }
}

TEST_F(WalTest, DecodeRejectsMalformedPayloads) {
  WalRecord record;
  EXPECT_FALSE(DecodeWalRecord("", &record));
  EXPECT_FALSE(DecodeWalRecord("\x09", &record));  // unknown type
  EXPECT_FALSE(DecodeWalRecord("\x03\x01\x02", &record));  // short erase

  WalRecord insert;
  insert.type = WalRecordType::kInsert;
  insert.id = 1;
  insert.label = "m";
  insert.attr = MakeAttr(0.0);
  std::string payload = EncodeWalRecord(insert);
  // Every strict prefix must be rejected, never crash.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeWalRecord(std::string_view(payload).substr(0, len), &record))
        << "prefix length " << len;
  }
  // Trailing garbage is rejected too (frame length must match exactly).
  EXPECT_FALSE(DecodeWalRecord(payload + "x", &record));
  // An out-of-range direction byte is rejected. The direction of an insert
  // payload sits after type(1) + id(8) + label_len(4) + label(1) +
  // start_time(8) + route(4) + start_route_distance(8) + position(16).
  std::string bad = payload;
  bad[1 + 8 + 4 + 1 + 8 + 4 + 8 + 16] = '\x02';
  EXPECT_FALSE(DecodeWalRecord(bad, &record));
}

TEST_F(WalTest, WriteThenReplayRoundTrips) {
  WalWriterOptions options;
  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status().message();

  ASSERT_TRUE((*writer)->AppendInsert(1, "bus-1", MakeAttr(0.0)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, 1.0 + i)).ok());
  }
  ASSERT_TRUE((*writer)->AppendErase(1).ok());
  EXPECT_EQ((*writer)->appends(), 7u);
  ASSERT_TRUE((*writer)->Close().ok());

  std::vector<WalRecord> replayed;
  auto stats = ReplayWal(dir_, 1, [&](const WalRecord& r) {
    replayed.push_back(r);
    return util::Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_TRUE(stats->clean);
  EXPECT_EQ(stats->records, 7u);
  EXPECT_EQ(stats->bytes_replayed, (*writer)->bytes());
  EXPECT_EQ(stats->bytes_truncated, 0u);
  ASSERT_EQ(replayed.size(), 7u);
  EXPECT_EQ(replayed.front().type, WalRecordType::kInsert);
  EXPECT_EQ(replayed.front().label, "bus-1");
  EXPECT_EQ(replayed[3].type, WalRecordType::kUpdate);
  EXPECT_EQ(replayed[3].update.time, 3.0);
  EXPECT_EQ(replayed.back().type, WalRecordType::kErase);
}

TEST_F(WalTest, RotatesSegmentsAndReplaysAcrossThem) {
  WalWriterOptions options;
  options.segment_max_bytes = 128;  // a few records per segment
  auto writer = WalWriter::Open(dir_, 3, options);
  ASSERT_TRUE(writer.ok());

  const int kRecords = 40;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(9, i)).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_GT((*writer)->segments_opened(), 3u);
  EXPECT_EQ(ListWalSegments(dir_).size(), (*writer)->segments_opened());

  int next_time = 0;
  auto stats = ReplayWal(dir_, 3, [&](const WalRecord& r) {
    EXPECT_EQ(r.update.time, static_cast<double>(next_time++));
    return util::Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->clean);
  EXPECT_EQ(stats->records, static_cast<std::uint64_t>(kRecords));
  EXPECT_EQ(stats->segments, (*writer)->segments_opened());
}

TEST_F(WalTest, ReplayIgnoresOtherEpochs) {
  auto writer1 = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer1.ok());
  ASSERT_TRUE((*writer1)->AppendErase(1).ok());
  ASSERT_TRUE((*writer1)->Close().ok());
  auto writer2 = WalWriter::Open(dir_, 2, {});
  ASSERT_TRUE(writer2.ok());
  ASSERT_TRUE((*writer2)->AppendErase(2).ok());
  ASSERT_TRUE((*writer2)->AppendErase(3).ok());
  ASSERT_TRUE((*writer2)->Close().ok());

  auto stats = ReplayWal(dir_, 2, [](const WalRecord& r) {
    EXPECT_NE(r.id, 1u);
    return util::Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records, 2u);
}

TEST_F(WalTest, TornTailIsTruncatedNotFatal) {
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, i)).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  const std::string path =
      (fs::path(dir_) / WalSegmentFileName(1, 1)).string();
  auto size = util::FileSize(path);
  ASSERT_TRUE(size.ok());
  // Tear the last record in half.
  const std::uint64_t torn_size = *size - 30;
  ASSERT_TRUE(util::TruncateFile(path, torn_size).ok());

  std::uint64_t replayed = 0;
  auto stats = ReplayWal(dir_, 1, [&](const WalRecord&) {
    ++replayed;
    return util::Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->clean);
  EXPECT_EQ(stats->records, 9u);
  EXPECT_EQ(replayed, 9u);
  EXPECT_EQ(stats->bytes_replayed + stats->bytes_truncated, torn_size);
  EXPECT_NE(stats->detail.find("torn frame"), std::string::npos);
}

TEST_F(WalTest, CorruptFrameStopsReplayAtPrefix) {
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  std::vector<std::uint64_t> offsets;  // frame start offsets
  for (int i = 0; i < 10; ++i) {
    offsets.push_back((*writer)->bytes());
    ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, i)).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  const std::string path =
      (fs::path(dir_) / WalSegmentFileName(1, 1)).string();
  // Flip a payload byte of record 6 (skip the 8-byte frame header).
  ASSERT_TRUE(util::FlipFileByte(path, offsets[6] + 8 + 3).ok());

  std::uint64_t replayed = 0;
  auto stats = ReplayWal(dir_, 1, [&](const WalRecord&) {
    ++replayed;
    return util::Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->clean);
  EXPECT_EQ(replayed, 6u);  // records 0..5 survive
  EXPECT_EQ(stats->corrupt_segments, 1u);
  EXPECT_NE(stats->detail.find("corrupt frame"), std::string::npos);
}

TEST_F(WalTest, SegmentSequenceGapEndsThePrefix) {
  WalWriterOptions options;
  options.segment_max_bytes = 128;
  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, i)).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  ASSERT_GT((*writer)->segments_opened(), 3u);

  // Drop segment 2: replay must stop after segment 1 and count the rest
  // as truncated.
  fs::remove(fs::path(dir_) / WalSegmentFileName(1, 2));

  std::uint64_t replayed = 0;
  auto stats = ReplayWal(dir_, 1, [&](const WalRecord&) {
    ++replayed;
    return util::Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->clean);
  EXPECT_EQ(stats->segments, 1u);
  EXPECT_GT(replayed, 0u);
  EXPECT_LT(replayed, 40u);
  EXPECT_GT(stats->bytes_truncated, 0u);
  EXPECT_NE(stats->detail.find("sequence gap"), std::string::npos);
}

TEST_F(WalTest, ReplaySkipsRecordsTheApplyRejects) {
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*writer)->AppendErase(i).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  auto stats = ReplayWal(dir_, 1, [](const WalRecord& r) {
    return r.id % 2 == 0 ? util::Status::Ok()
                         : util::Status::NotFound("odd");
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records, 4u);
  EXPECT_EQ(stats->records_skipped, 2u);
  EXPECT_TRUE(stats->clean);  // skipped applies are not corruption
}

TEST_F(WalTest, ReplayOfMissingDirectoryIsNotFound) {
  auto stats = ReplayWal(dir_ + "/nope", 1,
                         [](const WalRecord&) { return util::Status::Ok(); });
  EXPECT_FALSE(stats.ok());
}

TEST_F(WalTest, ReplayOfEmptyEpochIsCleanAndEmpty) {
  fs::create_directories(dir_);
  auto stats = ReplayWal(dir_, 5,
                         [](const WalRecord&) { return util::Status::Ok(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->clean);
  EXPECT_EQ(stats->records, 0u);
}

TEST_F(WalTest, SyncEveryAppendGoesThroughSync) {
  WalWriterOptions options;
  options.sync_every_append = true;
  util::FaultPlan plan;  // no faults; just count syncs
  util::FaultInjector injector(plan);
  options.file_factory = injector.factory();
  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendErase(1).ok());
  ASSERT_TRUE((*writer)->AppendErase(2).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_EQ(injector.syncs_attempted(), 2u);
}

TEST_F(WalTest, MetricsCountersTrackAppends) {
  util::MetricsRegistry registry;
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  (*writer)->SetMetrics(&registry);
  ASSERT_TRUE((*writer)->AppendErase(1).ok());
  ASSERT_TRUE((*writer)->AppendErase(2).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ(registry.GetCounter("wal.appends")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("wal.bytes")->value(), (*writer)->bytes());
  EXPECT_EQ(registry.GetCounter("wal.syncs")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("wal.rotations")->value(), 0u);
}

TEST_F(WalTest, AppendFailsAfterClose) {
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_FALSE((*writer)->AppendErase(1).ok());
  EXPECT_FALSE((*writer)->Sync().ok());
  EXPECT_TRUE((*writer)->Close().ok());  // idempotent
}

TEST_F(WalTest, GroupCommitByteTriggerBatchesSyncs) {
  const std::uint64_t frame_bytes = [] {
    WalRecord record;
    record.type = WalRecordType::kErase;
    record.id = 1;
    return EncodeWalRecord(record).size() + 8;  // payload + frame header
  }();

  WalWriterOptions options;
  options.sync_every_bytes = 2 * frame_bytes;  // one sync per two appends
  util::FaultPlan plan;
  util::FaultInjector injector(plan);
  options.file_factory = injector.factory();
  util::MetricsRegistry registry;

  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  (*writer)->SetMetrics(&registry);

  ASSERT_TRUE((*writer)->AppendErase(1).ok());
  EXPECT_EQ(injector.syncs_attempted(), 0u);
  EXPECT_EQ((*writer)->unsynced_appends(), 1u);
  EXPECT_EQ((*writer)->unsynced_bytes(), frame_bytes);

  ASSERT_TRUE((*writer)->AppendErase(2).ok());  // hits the byte trigger
  EXPECT_EQ(injector.syncs_attempted(), 1u);
  EXPECT_EQ((*writer)->unsynced_appends(), 0u);
  EXPECT_EQ((*writer)->unsynced_bytes(), 0u);

  for (core::ObjectId id = 3; id <= 6; ++id) {
    ASSERT_TRUE((*writer)->AppendErase(id).ok());
  }
  EXPECT_EQ(injector.syncs_attempted(), 3u);

  // The batch distribution counted one entry per sync, each of 2 records.
  util::LatencyHistogram* batch =
      registry.GetLatency("wal.group_commit_batch");
  EXPECT_EQ(batch->count(), 3u);
  EXPECT_DOUBLE_EQ(batch->mean_micros(), 2.0);
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST_F(WalTest, ExplicitPolicySyncsOnlyOnDemand) {
  WalWriterOptions options;  // all triggers off: caller-driven syncs
  util::FaultPlan plan;
  util::FaultInjector injector(plan);
  options.file_factory = injector.factory();

  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  for (core::ObjectId id = 1; id <= 20; ++id) {
    ASSERT_TRUE((*writer)->AppendErase(id).ok());
  }
  EXPECT_EQ(injector.syncs_attempted(), 0u);
  EXPECT_EQ((*writer)->unsynced_appends(), 20u);

  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ(injector.syncs_attempted(), 1u);

  // Nothing appended since: Sync is a no-op, not another fsync.
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ(injector.syncs_attempted(), 1u);
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST_F(WalTest, IntervalTriggerChecksElapsedTimeAtAppend) {
  // A huge interval never comes due; a tiny one is due at every append.
  for (const double interval_ms : {1e12, 1e-9}) {
    const std::string dir = dir_ + (interval_ms > 1.0 ? "_huge" : "_tiny");
    WalWriterOptions options;
    options.sync_interval_ms = interval_ms;
    util::FaultPlan plan;
    util::FaultInjector injector(plan);
    options.file_factory = injector.factory();

    auto writer = WalWriter::Open(dir, 1, options);
    ASSERT_TRUE(writer.ok());
    for (core::ObjectId id = 1; id <= 5; ++id) {
      ASSERT_TRUE((*writer)->AppendErase(id).ok());
    }
    if (interval_ms > 1.0) {
      EXPECT_EQ(injector.syncs_attempted(), 0u);
      EXPECT_EQ((*writer)->unsynced_appends(), 5u);
    } else {
      EXPECT_EQ(injector.syncs_attempted(), 5u);
      EXPECT_EQ((*writer)->unsynced_appends(), 0u);
    }
    ASSERT_TRUE((*writer)->Close().ok());
    fs::remove_all(dir);
  }
}

TEST_F(WalTest, PoisonedAfterFailedDeferredSync) {
  // The fsync of a group-commit batch fails. The injector would happily
  // accept more *appends* — but the writer must refuse them: records
  // appended after the un-synced batch would sit beyond a potential hole
  // in the log, and recovery replays a prefix.
  WalWriterOptions options;
  options.sync_every_bytes = 1;  // every append triggers a sync
  util::FaultPlan plan;
  plan.fail_syncs_after = 0;  // every sync fails
  util::FaultInjector injector(plan);
  options.file_factory = injector.factory();

  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  const util::Status first = (*writer)->AppendErase(1);
  EXPECT_FALSE(first.ok());
  EXPECT_FALSE((*writer)->poison().ok());

  // Every later call surfaces the same sticky error.
  const util::Status later = (*writer)->AppendErase(2);
  EXPECT_FALSE(later.ok());
  EXPECT_EQ(later.message(), first.message());
  EXPECT_FALSE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->appends(), 1u);  // the second append never ran
}

TEST_F(WalTest, PoisonedAfterAppendFailure) {
  WalWriterOptions options;
  util::FaultPlan plan;
  plan.crash_after_bytes = 10;  // first append tears mid-frame
  util::FaultInjector injector(plan);
  options.file_factory = injector.factory();

  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE((*writer)->AppendErase(1).ok());
  EXPECT_FALSE((*writer)->poison().ok());
  EXPECT_FALSE((*writer)->AppendErase(2).ok());
  EXPECT_FALSE((*writer)->Sync().ok());
}

TEST_F(WalTest, TryReopenClearsPoisonAndResumesAppending) {
  WalWriterOptions options;
  options.sync_every_append = true;
  util::FaultPlan plan;
  plan.fail_syncs_after = 2;  // third sync fails...
  plan.fail_syncs_count = 1;  // ...then the fault clears
  util::FaultInjector injector(plan);
  options.file_factory = injector.factory();

  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, 0.0)).ok());
  ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, 1.0)).ok());
  EXPECT_FALSE((*writer)->AppendUpdate(MakeUpdate(1, 2.0)).ok());
  ASSERT_FALSE((*writer)->poison().ok());
  EXPECT_FALSE((*writer)->AppendUpdate(MakeUpdate(1, 3.0)).ok());

  ASSERT_TRUE((*writer)->TryReopen().ok());
  EXPECT_TRUE((*writer)->poison().ok());
  // Appends land in a fresh segment with clean framing.
  ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, 4.0)).ok());
  ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, 5.0)).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  // Replay sees every fully-appended record — including the one whose
  // frame landed before its fsync failed — with no corruption.
  std::vector<double> times;
  auto stats = ReplayWal(dir_, 1, [&](const WalRecord& r) {
    times.push_back(r.update.time);
    return util::Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_TRUE(stats->clean) << stats->detail;
  EXPECT_EQ(stats->segments, 2u);
  EXPECT_EQ(times, (std::vector<double>{0.0, 1.0, 2.0, 4.0, 5.0}));
}

TEST_F(WalTest, TryReopenTruncatesTornTailOfAbandonedSegment) {
  WalWriterOptions options;
  options.sync_every_append = true;  // nothing buffered in stdio
  util::FaultPlan plan;
  plan.fail_appends_after = 3;
  plan.fail_appends_count = 1;
  util::FaultInjector injector(plan);
  options.file_factory = injector.factory();

  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, i)).ok());
  }
  const std::uint64_t whole_frames = (*writer)->bytes();
  EXPECT_FALSE((*writer)->AppendUpdate(MakeUpdate(1, 3.0)).ok());
  ASSERT_FALSE((*writer)->poison().ok());

  // Simulate the torn half-frame a failed append can leave behind.
  const std::string first_path =
      (fs::path(dir_) / WalSegmentFileName(1, 1)).string();
  {
    std::ofstream out(first_path, std::ios::binary | std::ios::app);
    const char torn[8] = {0x13, 0x00, 0x00, 0x00, 't', 'o', 'r', 'n'};
    out.write(torn, sizeof torn);
  }
  auto torn_size = util::FileSize(first_path);
  ASSERT_TRUE(torn_size.ok());
  ASSERT_GT(*torn_size, whole_frames);

  ASSERT_TRUE((*writer)->TryReopen().ok());
  // The abandoned segment was cut back to its last whole-frame boundary,
  // so replay never meets the torn frame.
  auto healed_size = util::FileSize(first_path);
  ASSERT_TRUE(healed_size.ok());
  EXPECT_EQ(*healed_size, whole_frames);

  ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, 4.0)).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  std::vector<double> times;
  auto stats = ReplayWal(dir_, 1, [&](const WalRecord& r) {
    times.push_back(r.update.time);
    return util::Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->clean) << stats->detail;
  EXPECT_EQ(times, (std::vector<double>{0.0, 1.0, 2.0, 4.0}));
}

TEST_F(WalTest, TryReopenReusesSeqWhenRotationNeverCreatedItsFile) {
  WalWriterOptions options;
  options.segment_max_bytes = 1;  // every append rotates
  util::FaultPlan plan;
  plan.fail_opens_after = 1;  // segment 2's open fails once
  plan.fail_opens_count = 1;
  util::FaultInjector injector(plan);
  options.file_factory = injector.factory();

  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, 0.0)).ok());
  // This append needs segment 2; the injected open failure poisons.
  EXPECT_FALSE((*writer)->AppendUpdate(MakeUpdate(1, 1.0)).ok());
  ASSERT_FALSE((*writer)->poison().ok());

  ASSERT_TRUE((*writer)->TryReopen().ok());
  ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, 2.0)).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  // Sequence numbers stayed contiguous: segment 2 exists, no gap, and
  // replay walks the full chain.
  std::vector<double> times;
  auto stats = ReplayWal(dir_, 1, [&](const WalRecord& r) {
    times.push_back(r.update.time);
    return util::Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->clean) << stats->detail;
  EXPECT_EQ(times, (std::vector<double>{0.0, 2.0}));
}

TEST_F(WalTest, TryReopenFailureKeepsPoisonUntilARetrySucceeds) {
  WalWriterOptions options;
  options.segment_max_bytes = 1;
  util::FaultPlan plan;
  plan.fail_opens_after = 1;  // rotation open AND first reopen both fail
  plan.fail_opens_count = 2;
  util::FaultInjector injector(plan);
  options.file_factory = injector.factory();

  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, 0.0)).ok());
  EXPECT_FALSE((*writer)->AppendUpdate(MakeUpdate(1, 1.0)).ok());

  // First remediation attempt hits the still-open fault window.
  const util::Status reopen = (*writer)->TryReopen();
  EXPECT_FALSE(reopen.ok());
  // The failure names the epoch and segment so the quarantine reason does.
  EXPECT_NE(reopen.message().find("epoch 1"), std::string::npos)
      << reopen.message();
  EXPECT_NE(reopen.message().find("wal-"), std::string::npos)
      << reopen.message();
  EXPECT_FALSE((*writer)->poison().ok()) << "failed reopen must stay poisoned";
  EXPECT_FALSE((*writer)->AppendUpdate(MakeUpdate(1, 2.0)).ok());

  // The retry loop comes back once the window closes.
  ASSERT_TRUE((*writer)->TryReopen().ok());
  EXPECT_TRUE((*writer)->poison().ok());
  ASSERT_TRUE((*writer)->AppendUpdate(MakeUpdate(1, 3.0)).ok());
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST_F(WalTest, TryReopenOnClosedWriterFails) {
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_FALSE((*writer)->TryReopen().ok());
}

TEST_F(WalTest, ReplayReadFaultSurfacesEpochAndSegment) {
  auto writer = WalWriter::Open(dir_, 4, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendErase(1).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  util::FaultPlan plan;
  plan.fail_reads_after = 0;
  plan.fail_reads_count = 1;
  util::FaultInjector injector(plan);
  auto stats =
      ReplayWal(dir_, 4, [](const WalRecord&) { return util::Status::Ok(); },
                injector.reader());
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(injector.injected_read_faults(), 1u);
  // The I/O error names the epoch and the segment file it hit.
  EXPECT_NE(stats.status().message().find("epoch 4"), std::string::npos)
      << stats.status().message();
  EXPECT_NE(stats.status().message().find(WalSegmentFileName(4, 1)),
            std::string::npos)
      << stats.status().message();
}

TEST_F(WalTest, RotationSyncsPendingBatchUnderBoundedWindow) {
  // The byte trigger alone won't fire before the segment fills; rotation
  // must flush the pending batch anyway, or the loss window would grow to
  // a whole segment.
  WalWriterOptions options;
  options.segment_max_bytes = 64;      // a couple of records per segment
  options.sync_every_bytes = 1 << 20;  // never reached
  util::FaultPlan plan;
  util::FaultInjector injector(plan);
  options.file_factory = injector.factory();

  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  for (core::ObjectId id = 1; id <= 12; ++id) {
    ASSERT_TRUE((*writer)->AppendErase(id).ok());
  }
  EXPECT_GT((*writer)->segments_opened(), 1u);
  EXPECT_EQ(injector.syncs_attempted(), (*writer)->segments_opened() - 1);
  ASSERT_TRUE((*writer)->Close().ok());
}

}  // namespace
}  // namespace modb::db
