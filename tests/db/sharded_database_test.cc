// Tests of the sharded concurrency layer: cross-shard parity with a single
// ModDatabase on identical fleets, bulk-load atomicity across shards, and
// the metrics endpoint.

#include "db/sharded_database.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace modb::db {
namespace {

class ShardedDatabaseTest : public testing::Test {
 protected:
  ShardedDatabaseTest() {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {400.0, 0.0}, "street");
    avenue_ = network_.AddStraightRoute({0.0, 30.0}, {400.0, 30.0}, "avenue");
  }

  core::PositionAttribute Attr(geo::RouteId route, double s,
                               double v = 0.0) const {
    core::PositionAttribute attr;
    attr.route = route;
    attr.start_route_distance = s;
    attr.start_position = network_.route(route).PointAt(s);
    attr.speed = v;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, core::Time t,
                              double s, double v) const {
    core::PositionUpdate update;
    update.object = id;
    update.time = t;
    update.route = street_;
    update.route_distance = s;
    update.position = network_.route(street_).PointAt(s);
    update.direction = core::TravelDirection::kForward;
    update.speed = v;
    return update;
  }

  /// Builds the same random fleet in both databases.
  void LoadIdenticalFleet(ModDatabase* single, ShardedModDatabase* sharded,
                          std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    for (core::ObjectId id = 0; id < n; ++id) {
      const auto attr = Attr(id % 2 == 0 ? street_ : avenue_,
                             rng.Uniform(0.0, 350.0), rng.Uniform(0.0, 1.2));
      ASSERT_TRUE(single->Insert(id, "o", attr).ok());
      ASSERT_TRUE(sharded->Insert(id, "o", attr).ok());
    }
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  geo::RouteId avenue_ = geo::kInvalidRouteId;
};

ShardedModDatabaseOptions FourShards() {
  ShardedModDatabaseOptions options;
  options.num_shards = 4;
  options.num_query_threads = 2;  // exercise the pool path deterministically
  return options;
}

TEST_F(ShardedDatabaseTest, BasicCrudRoutesToOwningShard) {
  ShardedModDatabase db(&network_, FourShards());
  EXPECT_EQ(db.num_shards(), 4u);
  ASSERT_TRUE(db.Insert(7, "cab", Attr(street_, 100.0, 1.0)).ok());
  EXPECT_EQ(db.Insert(7, "dup", Attr(street_, 0.0)).code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(db.num_objects(), 1u);

  const auto record = db.GetRecord(7);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->label, "cab");

  ASSERT_TRUE(db.ApplyUpdate(Update(7, 5.0, 110.0, 0.5)).ok());
  const auto answer = db.QueryPosition(7, 5.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer->route_distance, 110.0);

  EXPECT_EQ(db.ApplyUpdate(Update(99, 1.0, 0.0, 0.0)).code(),
            util::StatusCode::kNotFound);
  ASSERT_TRUE(db.Erase(7).ok());
  EXPECT_EQ(db.num_objects(), 0u);
  EXPECT_EQ(db.Erase(7).code(), util::StatusCode::kNotFound);
}

TEST_F(ShardedDatabaseTest, ShardOfIsStableAndCoversAllShards) {
  ShardedModDatabase db(&network_, FourShards());
  std::vector<bool> hit(db.num_shards(), false);
  for (core::ObjectId id = 0; id < 256; ++id) {
    const std::size_t s = db.ShardOf(id);
    ASSERT_LT(s, db.num_shards());
    EXPECT_EQ(s, db.ShardOf(id));  // stable
    hit[s] = true;
  }
  for (std::size_t s = 0; s < hit.size(); ++s) {
    EXPECT_TRUE(hit[s]) << "shard " << s << " never used";
  }
}

TEST_F(ShardedDatabaseTest, RangeQueryMatchesSingleDatabase) {
  ModDatabase single(&network_);
  ShardedModDatabase sharded(&network_, FourShards());
  LoadIdenticalFleet(&single, &sharded, 60, 11);

  util::Rng rng(12);
  for (int q = 0; q < 25; ++q) {
    const double x0 = rng.Uniform(0.0, 350.0);
    const geo::Polygon region =
        geo::Polygon::Rectangle(x0, -5.0, x0 + 40.0, 35.0);
    const core::Time t = rng.Uniform(0.0, 40.0);
    const RangeAnswer a = single.QueryRange(region, t);
    const RangeAnswer b = sharded.QueryRange(region, t);
    EXPECT_EQ(a.must, b.must) << "q=" << q;
    EXPECT_EQ(a.may, b.may) << "q=" << q;
    ASSERT_EQ(a.may_probability.size(), b.may_probability.size());
    for (std::size_t i = 0; i < a.may_probability.size(); ++i) {
      EXPECT_NEAR(a.may_probability[i], b.may_probability[i], 1e-12);
    }
    EXPECT_EQ(a.candidates_examined, b.candidates_examined) << "q=" << q;
  }
}

TEST_F(ShardedDatabaseTest, VelocityPartitionedShardsMatchSingleDatabase) {
  // Velocity-banded shards: each shard's index fans its band probes out on
  // the same pool the shard fan-out runs on (ParallelFor is caller-
  // participating, so the nesting must not deadlock) — and the refined
  // answers still match a single unsharded database.
  ModDatabaseOptions banded;
  banded.index_kind = IndexKind::kVelocityPartitioned;
  banded.velocity_band_bounds = {0.5, 1.0};
  ModDatabase single(&network_, banded);
  ShardedModDatabaseOptions sharded_options = FourShards();
  sharded_options.db = banded;
  ShardedModDatabase sharded(&network_, sharded_options);
  LoadIdenticalFleet(&single, &sharded, 60, 21);

  util::Rng rng(22);
  for (int q = 0; q < 25; ++q) {
    const double x0 = rng.Uniform(0.0, 350.0);
    const geo::Polygon region =
        geo::Polygon::Rectangle(x0, -5.0, x0 + 40.0, 35.0);
    const core::Time t = rng.Uniform(0.0, 40.0);
    const RangeAnswer a = single.QueryRange(region, t);
    const RangeAnswer b = sharded.QueryRange(region, t);
    EXPECT_EQ(a.must, b.must) << "q=" << q;
    EXPECT_EQ(a.may, b.may) << "q=" << q;
  }
}

TEST_F(ShardedDatabaseTest, NearestQueryMatchesSingleDatabase) {
  ModDatabase single(&network_);
  ShardedModDatabase sharded(&network_, FourShards());
  LoadIdenticalFleet(&single, &sharded, 60, 21);

  util::Rng rng(22);
  for (int q = 0; q < 25; ++q) {
    const geo::Point2 p{rng.Uniform(0.0, 400.0), rng.Uniform(-10.0, 40.0)};
    const core::Time t = rng.Uniform(0.0, 30.0);
    const std::size_t k = 1 + static_cast<std::size_t>(q) % 7;
    const NearestAnswer a = single.QueryNearest(p, k, t);
    const NearestAnswer b = sharded.QueryNearest(p, k, t);
    ASSERT_EQ(a.items.size(), b.items.size()) << "q=" << q;
    for (std::size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i].id, b.items[i].id) << "q=" << q << " i=" << i;
      EXPECT_NEAR(a.items[i].db_distance, b.items[i].db_distance, 1e-9);
      EXPECT_NEAR(a.items[i].min_possible_distance,
                  b.items[i].min_possible_distance, 1e-9);
      EXPECT_NEAR(a.items[i].max_possible_distance,
                  b.items[i].max_possible_distance, 1e-9);
    }
  }
}

TEST_F(ShardedDatabaseTest, IntervalQueryMatchesSingleDatabase) {
  ModDatabase single(&network_);
  ShardedModDatabase sharded(&network_, FourShards());
  LoadIdenticalFleet(&single, &sharded, 40, 31);

  util::Rng rng(32);
  for (int q = 0; q < 15; ++q) {
    const double x0 = rng.Uniform(0.0, 320.0);
    const geo::Polygon region =
        geo::Polygon::Rectangle(x0, -5.0, x0 + 40.0, 35.0);
    const double t1 = rng.Uniform(0.0, 50.0);
    const double t2 = t1 + rng.Uniform(0.5, 40.0);
    const IntervalRangeAnswer a = single.QueryRangeInterval(region, t1, t2);
    const IntervalRangeAnswer b = sharded.QueryRangeInterval(region, t1, t2);
    EXPECT_EQ(a.may, b.may) << "q=" << q;
    EXPECT_EQ(a.must_at_some_time, b.must_at_some_time) << "q=" << q;
  }
}

TEST_F(ShardedDatabaseTest, InlineFanOutMatchesPooledFanOut) {
  ShardedModDatabaseOptions inline_opts = FourShards();
  inline_opts.num_query_threads = 0;
  ShardedModDatabase pooled(&network_, FourShards());
  ShardedModDatabase inlined(&network_, inline_opts);
  EXPECT_EQ(inlined.num_query_threads(), 0u);

  util::Rng rng(41);
  for (core::ObjectId id = 0; id < 30; ++id) {
    const auto attr = Attr(street_, rng.Uniform(0.0, 350.0), 0.5);
    ASSERT_TRUE(pooled.Insert(id, "", attr).ok());
    ASSERT_TRUE(inlined.Insert(id, "", attr).ok());
  }
  const geo::Polygon region =
      geo::Polygon::Rectangle(100.0, -1.0, 250.0, 1.0);
  const RangeAnswer a = pooled.QueryRange(region, 10.0);
  const RangeAnswer b = inlined.QueryRange(region, 10.0);
  EXPECT_EQ(a.must, b.must);
  EXPECT_EQ(a.may, b.may);
}

TEST_F(ShardedDatabaseTest, BulkInsertLoadsAllShardsAtomically) {
  ShardedModDatabase db(&network_, FourShards());
  std::vector<ShardedModDatabase::BulkObject> batch;
  for (core::ObjectId id = 0; id < 40; ++id) {
    batch.push_back({id, "b" + std::to_string(id), Attr(street_, 5.0 * id)});
  }
  ASSERT_TRUE(db.BulkInsert(std::move(batch)).ok());
  EXPECT_EQ(db.num_objects(), 40u);
  EXPECT_EQ(db.GetRecord(17)->label, "b17");

  // A bad row anywhere rolls back every shard.
  std::vector<ShardedModDatabase::BulkObject> bad_batch;
  for (core::ObjectId id = 100; id < 120; ++id) {
    bad_batch.push_back({id, "x", Attr(street_, 1.0)});
  }
  core::PositionAttribute bad = Attr(street_, 1.0);
  bad.route = 77;  // unknown route
  bad_batch.push_back({120, "bad", bad});
  EXPECT_FALSE(db.BulkInsert(std::move(bad_batch)).ok());
  EXPECT_EQ(db.num_objects(), 40u);  // unchanged

  // Cross-shard duplicate detection within one batch.
  std::vector<ShardedModDatabase::BulkObject> dup;
  dup.push_back({200, "a", Attr(street_, 1.0)});
  dup.push_back({200, "b", Attr(street_, 2.0)});
  EXPECT_EQ(db.BulkInsert(std::move(dup)).code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(db.num_objects(), 40u);
}

TEST_F(ShardedDatabaseTest, ForEachRecordVisitsEveryObjectOnce) {
  ShardedModDatabase db(&network_, FourShards());
  for (core::ObjectId id = 0; id < 25; ++id) {
    ASSERT_TRUE(db.Insert(id, "", Attr(street_, 10.0 * (id % 30))).ok());
  }
  std::vector<core::ObjectId> seen;
  db.ForEachRecord(
      [&seen](const MovingObjectRecord& r) { seen.push_back(r.id); });
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 25u);
  for (core::ObjectId id = 0; id < 25; ++id) EXPECT_EQ(seen[id], id);
}

TEST_F(ShardedDatabaseTest, MetricsCountOperationsAndQueries) {
  ShardedModDatabase db(&network_, FourShards());
  for (core::ObjectId id = 0; id < 10; ++id) {
    ASSERT_TRUE(db.Insert(id, "", Attr(street_, 10.0 * id, 1.0)).ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.ApplyUpdate(Update(i, 1.0, 10.0 * i + 1.0, 1.0)).ok());
  }
  const geo::Polygon region =
      geo::Polygon::Rectangle(0.0, -1.0, 200.0, 1.0);
  (void)db.QueryRange(region, 1.0);
  (void)db.QueryRange(region, 2.0);
  (void)db.QueryNearest({50.0, 0.0}, 3, 1.0);
  (void)db.QueryRangeInterval(region, 0.0, 5.0);

  EXPECT_EQ(db.metrics().GetCounter("mod.inserts")->value(), 10u);
  EXPECT_EQ(db.metrics().GetCounter("mod.updates_applied")->value(), 5u);
  EXPECT_EQ(db.metrics().GetCounter("sharded.queries_range")->value(), 2u);
  EXPECT_EQ(db.metrics().GetCounter("sharded.queries_nearest")->value(), 1u);
  EXPECT_EQ(db.metrics().GetCounter("sharded.queries_interval")->value(), 1u);
  // Each fan-out range query probes every shard's index once.
  EXPECT_GE(db.metrics().GetCounter("mod.index_probes")->value(),
            2u * db.num_shards());
  EXPECT_EQ(db.metrics().GetLatency("sharded.query_range")->count(), 2u);

  const std::string dump = db.DumpMetrics();
  EXPECT_NE(dump.find("counter mod.inserts 10"), std::string::npos);
  EXPECT_NE(dump.find("counter sharded.queries_range 2"), std::string::npos);
  EXPECT_NE(dump.find("latency sharded.query_range count=2"),
            std::string::npos);
  EXPECT_NE(dump.find("gauge sharded.num_shards 4"), std::string::npos);
}

TEST_F(ShardedDatabaseTest, SingleShardDegeneratesToPlainDatabase) {
  ShardedModDatabaseOptions options;
  options.num_shards = 1;
  options.num_query_threads = 0;
  ModDatabase single(&network_);
  ShardedModDatabase sharded(&network_, options);
  LoadIdenticalFleet(&single, &sharded, 30, 51);
  const geo::Polygon region =
      geo::Polygon::Rectangle(50.0, -5.0, 300.0, 35.0);
  const RangeAnswer a = single.QueryRange(region, 7.0);
  const RangeAnswer b = sharded.QueryRange(region, 7.0);
  EXPECT_EQ(a.must, b.must);
  EXPECT_EQ(a.may, b.may);
  EXPECT_EQ(a.candidates_examined, b.candidates_examined);
}

}  // namespace
}  // namespace modb::db
