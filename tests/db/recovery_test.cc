#include "db/recovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "db/wal.h"
#include "util/fault_injection.h"
#include "util/metrics.h"

namespace modb::db {
namespace {

namespace fs = std::filesystem;

/// Order-independent, bit-exact state fingerprint. Deliberately excludes
/// the update counters: a recovered database re-derives them from replay,
/// and the checkpoint does not persist them.
std::string Signature(const ModDatabase& db) {
  std::map<core::ObjectId, std::string> rows;
  db.ForEachRecord([&](const MovingObjectRecord& record) {
    std::ostringstream row;
    row << std::hexfloat;
    const auto put_attr = [&row](const core::PositionAttribute& a) {
      row << ' ' << a.start_time << ' ' << a.route << ' '
          << a.start_route_distance << ' ' << a.start_position.x << ' '
          << a.start_position.y << ' ' << static_cast<int>(a.direction) << ' '
          << a.speed << ' ' << static_cast<int>(a.policy) << ' '
          << a.update_cost << ' ' << a.max_speed << ' ' << a.fixed_threshold
          << ' ' << a.period << ' ' << a.step_threshold;
    };
    row << record.label;
    put_attr(record.attr);
    row << " past=" << record.past.size();
    for (const core::PositionAttribute& past : record.past) put_attr(past);
    rows[record.id] = row.str();
  });
  std::string signature;
  for (const auto& [id, row] : rows) {
    signature += std::to_string(id) + ':' + row + '\n';
  }
  return signature;
}

class RecoveryTest : public testing::Test {
 protected:
  RecoveryTest() {
    main_ = network_.AddStraightRoute({0.0, 0.0}, {100.0, 0.0}, "main st");
  }

  void SetUp() override {
    dir_ = (fs::path(testing::TempDir()) /
            ("recovery_test_" +
             std::string(testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  core::PositionAttribute Attr(double s, double v) const {
    core::PositionAttribute attr;
    attr.start_time = 0.0;
    attr.route = main_;
    attr.start_route_distance = s;
    attr.start_position = network_.route(main_).PointAt(s);
    attr.direction = core::TravelDirection::kForward;
    attr.speed = v;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, double time,
                              double s) const {
    core::PositionUpdate update;
    update.object = id;
    update.time = time;
    update.route = main_;
    update.route_distance = s;
    update.position = network_.route(main_).PointAt(s);
    update.direction = core::TravelDirection::kForward;
    update.speed = 1.0;
    return update;
  }

  std::size_t CountCheckpoints() const {
    std::size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().filename().string().find("checkpoint-") == 0) ++n;
    }
    return n;
  }

  geo::RouteNetwork network_;
  geo::RouteId main_ = geo::kInvalidRouteId;
  std::string dir_;
};

TEST_F(RecoveryTest, BootstrapCheckpointsAndAttachesWal) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "seed", Attr(5.0, 1.0)).ok());

  auto manager = DurabilityManager::Open(&db, dir_);
  ASSERT_TRUE(manager.ok()) << manager.status().message();
  EXPECT_FALSE((*manager)->recovery_report().recovered);
  EXPECT_TRUE((*manager)->recovery_report().clean);
  EXPECT_EQ(db.wal(), (*manager)->wal());
  ASSERT_NE(db.wal(), nullptr);
  EXPECT_EQ(db.wal()->epoch(), 1u);
  EXPECT_TRUE(fs::exists(fs::path(dir_) / CheckpointFileName(1)));

  // Mutations flow into the WAL.
  ASSERT_TRUE(db.ApplyUpdate(Update(1, 1.0, 6.0)).ok());
  EXPECT_EQ(db.wal()->appends(), 1u);
}

TEST_F(RecoveryTest, ManagerDetachesWalOnDestruction) {
  ModDatabase db(&network_);
  {
    auto manager = DurabilityManager::Open(&db, dir_);
    ASSERT_TRUE(manager.ok());
    ASSERT_NE(db.wal(), nullptr);
  }
  EXPECT_EQ(db.wal(), nullptr);
}

TEST_F(RecoveryTest, RecoverRestoresCheckpointPlusWalSuffix) {
  std::string expected;
  {
    ModDatabase db(&network_);
    auto manager = DurabilityManager::Open(&db, dir_);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Insert(1, "bus-1", Attr(5.0, 1.0)).ok());
    ASSERT_TRUE(db.Insert(2, "bus-2", Attr(10.0, 0.5)).ok());
    ASSERT_TRUE(db.ApplyUpdate(Update(1, 1.0, 6.5)).ok());
    ASSERT_TRUE(db.Insert(3, "bus-3", Attr(20.0, 2.0)).ok());
    ASSERT_TRUE(db.Erase(2).ok());
    expected = Signature(db);
  }

  auto recovered = Recover(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_TRUE(recovered->report.recovered);
  EXPECT_TRUE(recovered->report.clean);
  EXPECT_EQ(recovered->report.wal_records_replayed, 5u);
  EXPECT_EQ(recovered->report.wal_records_skipped, 0u);
  EXPECT_EQ(Signature(*recovered->database), expected);
  // The recovered store is live: its WAL is attached and writable.
  ASSERT_NE(recovered->database->wal(), nullptr);
  ASSERT_TRUE(
      recovered->database->ApplyUpdate(Update(1, 2.0, 8.0)).ok());
}

TEST_F(RecoveryTest, OpenRecoversIntoCallerDatabase) {
  std::string expected;
  {
    ModDatabase db(&network_);
    auto manager = DurabilityManager::Open(&db, dir_);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Insert(1, "bus-1", Attr(5.0, 1.0)).ok());
    ASSERT_TRUE(db.ApplyUpdate(Update(1, 2.0, 7.0)).ok());
    expected = Signature(db);
  }

  ModDatabase db(&network_);
  auto manager = DurabilityManager::Open(&db, dir_);
  ASSERT_TRUE(manager.ok()) << manager.status().message();
  EXPECT_TRUE((*manager)->recovery_report().recovered);
  EXPECT_EQ(Signature(db), expected);
}

TEST_F(RecoveryTest, OpenRequiresEmptyDatabaseWhenRecovering) {
  {
    ModDatabase db(&network_);
    ASSERT_TRUE(DurabilityManager::Open(&db, dir_).ok());
  }
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "pre-existing", Attr(1.0, 1.0)).ok());
  auto manager = DurabilityManager::Open(&db, dir_);
  ASSERT_FALSE(manager.ok());
  EXPECT_EQ(manager.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, RecoverOfMissingDirectoryIsNotFound) {
  EXPECT_EQ(Recover(dir_).status().code(), util::StatusCode::kNotFound);
  fs::create_directories(dir_);
  EXPECT_EQ(Recover(dir_).status().code(), util::StatusCode::kNotFound);
}

TEST_F(RecoveryTest, CheckpointStartsFreshEpochAndPrunes) {
  DurabilityOptions options;
  options.checkpoints_to_keep = 1;
  ModDatabase db(&network_);
  auto manager = DurabilityManager::Open(&db, dir_, options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(db.Insert(1, "bus", Attr(5.0, 1.0)).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.ApplyUpdate(Update(1, 1.0 + i, 6.0 + i)).ok());
  }
  const std::string before = Signature(db);
  ASSERT_FALSE(ListWalSegments(dir_).empty());

  ASSERT_TRUE((*manager)->Checkpoint().ok());
  EXPECT_EQ(db.wal()->epoch(), 2u);
  EXPECT_EQ(CountCheckpoints(), 1u);
  EXPECT_TRUE(fs::exists(fs::path(dir_) / CheckpointFileName(2)));
  // Epoch-1 segments are superseded by checkpoint 2 and deleted.
  for (const WalSegmentInfo& seg : ListWalSegments(dir_)) {
    EXPECT_GE(seg.epoch, 2u);
  }

  // State survives a checkpoint + reopen with nothing in the WAL.
  (void)manager->reset();
  auto recovered = Recover(dir_, options);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Signature(*recovered->database), before);
  EXPECT_EQ(recovered->report.wal_records_replayed, 0u);
}

TEST_F(RecoveryTest, CorruptNewestCheckpointFallsBackAndChainsEpochs) {
  DurabilityOptions options;
  options.checkpoints_to_keep = 2;
  std::string expected;
  {
    ModDatabase db(&network_);
    auto manager = DurabilityManager::Open(&db, dir_, options);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Insert(1, "bus", Attr(5.0, 1.0)).ok());
    ASSERT_TRUE(db.ApplyUpdate(Update(1, 1.0, 6.0)).ok());
    ASSERT_TRUE((*manager)->Checkpoint().ok());  // checkpoint 2, epoch 2
    ASSERT_TRUE(db.ApplyUpdate(Update(1, 2.0, 7.0)).ok());
    ASSERT_TRUE(db.Insert(2, "van", Attr(50.0, 0.5)).ok());
    expected = Signature(db);
  }

  // Newest checkpoint rots on disk. Recovery must fall back to checkpoint
  // 1 and chain epoch 1 + epoch 2 forward — losing nothing.
  const std::string newest =
      (fs::path(dir_) / CheckpointFileName(2)).string();
  auto size = util::FileSize(newest);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(util::TruncateFile(newest, *size / 2).ok());

  auto recovered = Recover(dir_, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_FALSE(recovered->report.clean);
  EXPECT_EQ(recovered->report.checkpoint_id, 1u);
  EXPECT_EQ(recovered->report.checkpoints_skipped, 1u);
  EXPECT_EQ(recovered->report.wal_records_replayed, 4u);
  EXPECT_EQ(Signature(*recovered->database), expected);
}

TEST_F(RecoveryTest, EveryCheckpointCorruptFailsRecovery) {
  {
    ModDatabase db(&network_);
    ASSERT_TRUE(DurabilityManager::Open(&db, dir_).ok());
  }
  ASSERT_TRUE(util::TruncateFile(
                  (fs::path(dir_) / CheckpointFileName(1)).string(), 3)
                  .ok());
  EXPECT_FALSE(Recover(dir_).ok());
}

TEST_F(RecoveryTest, TornWalTailRecoversThePrefix) {
  std::string prefix_signature;
  std::uint64_t full_bytes = 0;
  {
    ModDatabase db(&network_);
    auto manager = DurabilityManager::Open(&db, dir_);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Insert(1, "bus", Attr(5.0, 1.0)).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db.ApplyUpdate(Update(1, 1.0 + i, 6.0 + i)).ok());
      if (i == 3) prefix_signature = Signature(db);
    }
    full_bytes = db.wal()->bytes();
  }

  // Tear the log inside the last update record: byte sizes per record are
  // fixed for updates, so cutting 10 bytes off the tail lands mid-frame.
  const auto segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  auto size = util::FileSize(segments[0].path);
  ASSERT_TRUE(size.ok());
  ASSERT_EQ(*size, full_bytes);
  ASSERT_TRUE(util::TruncateFile(segments[0].path, *size - 10).ok());

  auto recovered = Recover(dir_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->report.clean);
  EXPECT_GT(recovered->report.wal_bytes_truncated, 0u);
  EXPECT_EQ(recovered->report.wal_records_replayed, 5u);  // insert + 4
  EXPECT_EQ(Signature(*recovered->database), prefix_signature);
}

TEST_F(RecoveryTest, RecoveryNeverLosesCheckpointedState) {
  // Even with the entire WAL destroyed, recovery returns at least the
  // last checkpoint.
  std::string checkpointed;
  {
    ModDatabase db(&network_);
    auto manager = DurabilityManager::Open(&db, dir_);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Insert(1, "bus", Attr(5.0, 1.0)).ok());
    ASSERT_TRUE((*manager)->Checkpoint().ok());
    checkpointed = Signature(db);
    ASSERT_TRUE(db.ApplyUpdate(Update(1, 1.0, 6.0)).ok());
  }
  for (const WalSegmentInfo& seg : ListWalSegments(dir_)) {
    fs::remove(seg.path);
  }
  auto recovered = Recover(dir_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Signature(*recovered->database), checkpointed);
}

TEST_F(RecoveryTest, ExportMetricsCountsRecoveryAndLiveWal) {
  {
    ModDatabase db(&network_);
    auto manager = DurabilityManager::Open(&db, dir_);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Insert(1, "bus", Attr(5.0, 1.0)).ok());
    ASSERT_TRUE(db.ApplyUpdate(Update(1, 1.0, 6.0)).ok());
  }

  auto recovered = Recover(dir_);
  ASSERT_TRUE(recovered.ok());
  util::MetricsRegistry registry;
  recovered->durability->ExportMetrics(&registry);
  EXPECT_EQ(registry.GetCounter("recovery.records_replayed")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("recovery.bytes_truncated")->value(), 0u);

  // The live WAL reports through the same registry — including after a
  // checkpoint swaps in a fresh-epoch writer.
  ASSERT_TRUE(recovered->database->ApplyUpdate(Update(1, 2.0, 7.0)).ok());
  EXPECT_EQ(registry.GetCounter("wal.appends")->value(), 1u);
  ASSERT_TRUE(recovered->durability->Checkpoint().ok());
  ASSERT_TRUE(recovered->database->ApplyUpdate(Update(1, 3.0, 8.0)).ok());
  EXPECT_EQ(registry.GetCounter("wal.appends")->value(), 2u);
}

TEST_F(RecoveryTest, SyncEveryAppendSurvivesWithFaultFreeInjector) {
  DurabilityOptions options;
  options.wal.sync_every_append = true;
  ModDatabase db(&network_);
  auto manager = DurabilityManager::Open(&db, dir_, options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(db.Insert(1, "bus", Attr(5.0, 1.0)).ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(1, 1.0, 6.0)).ok());
}

}  // namespace
}  // namespace modb::db
