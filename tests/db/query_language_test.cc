#include "db/query_language.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "db/subscription_engine.h"

namespace modb::db {
namespace {

// ---- Parser ----

TEST(ParseQueryTest, PositionForm) {
  const auto parsed = ParseQuery("POSITION OF 7 AT 6.5");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* spec = std::get_if<PositionQuerySpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->id, 7u);
  EXPECT_DOUBLE_EQ(spec->time, 6.5);
}

TEST(ParseQueryTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(ParseQuery("position of 7 at 6").ok());
  EXPECT_TRUE(ParseQuery("Select All Inside Rect(0,0,1,1) At 5").ok());
  EXPECT_TRUE(ParseQuery("nearest 2 to point(1,2) at 3").ok());
}

TEST(ParseQueryTest, RangeAtForm) {
  const auto parsed =
      ParseQuery("SELECT MUST INSIDE RECT(0, -1, 20, 1) AT 6");
  ASSERT_TRUE(parsed.ok());
  const auto* spec = std::get_if<RangeQuerySpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->scope, RangeQuerySpec::Scope::kMust);
  EXPECT_FALSE(spec->windowed);
  EXPECT_DOUBLE_EQ(spec->time, 6.0);
  EXPECT_TRUE(spec->region.Contains({10.0, 0.0}));
  EXPECT_FALSE(spec->region.Contains({30.0, 0.0}));
  EXPECT_EQ(spec->region_text, "RECT(0, -1, 20, 1)");
}

TEST(ParseQueryTest, RangeDuringForm) {
  const auto parsed =
      ParseQuery("SELECT ALL INSIDE CIRCLE(5, 5, 2) DURING 10 TO 20");
  ASSERT_TRUE(parsed.ok());
  const auto* spec = std::get_if<RangeQuerySpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->scope, RangeQuerySpec::Scope::kAll);
  EXPECT_TRUE(spec->windowed);
  EXPECT_DOUBLE_EQ(spec->time, 10.0);
  EXPECT_DOUBLE_EQ(spec->window_end, 20.0);
  // 32-gon inscribed in the circle.
  EXPECT_TRUE(spec->region.Contains({5.0, 5.0}));
  EXPECT_TRUE(spec->region.Contains({6.8, 5.0}));
  EXPECT_FALSE(spec->region.Contains({7.2, 5.0}));
}

TEST(ParseQueryTest, NearestForm) {
  const auto parsed = ParseQuery("NEAREST 3 TO POINT(1.5, -2) AT 12");
  ASSERT_TRUE(parsed.ok());
  const auto* spec = std::get_if<NearestQuerySpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->k, 3u);
  EXPECT_EQ(spec->point, (geo::Point2{1.5, -2.0}));
  EXPECT_DOUBLE_EQ(spec->time, 12.0);
}

TEST(ParseQueryTest, OverflowingNumbersAreLexErrors) {
  // std::strtod turns "1e999" into +inf with ERANGE; the lexer must reject
  // it instead of letting an infinite coordinate/time into a query spec.
  for (const char* statement : {
           "POSITION OF 7 AT 1e999",
           "POSITION OF 7 AT -1e999",
           "SELECT ALL INSIDE RECT(0, 0, 1e999, 1) AT 5",
           "NEAREST 2 TO POINT(1, 1e999) AT 3",
       }) {
    const auto parsed = ParseQuery(statement);
    ASSERT_FALSE(parsed.ok()) << statement;
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find("out of range"),
              std::string::npos)
        << parsed.status().ToString();
  }
}

TEST(ParseQueryTest, ExtremeFiniteNumbersStillParse) {
  // Near-DBL_MAX is finite and stays accepted; gradual underflow to a
  // denormal (or to zero) is not an error either — only non-finite results
  // are rejected.
  EXPECT_TRUE(ParseQuery("POSITION OF 7 AT 1e308").ok());
  EXPECT_TRUE(ParseQuery("POSITION OF 7 AT 1e-320").ok());
  EXPECT_TRUE(ParseQuery("POSITION OF 7 AT 1e-999").ok());
}

TEST(ParseQueryTest, NamedNonFiniteFormsAreRejected) {
  // strtod would happily parse "inf"/"nan"; the lexer's [0-9.+-] gate
  // keeps them out as unexpected identifiers, never as numbers.
  EXPECT_FALSE(ParseQuery("POSITION OF 7 AT inf").ok());
  EXPECT_FALSE(ParseQuery("POSITION OF 7 AT nan").ok());
}

TEST(ParseQueryTest, NegativeAndScientificNumbers) {
  const auto parsed =
      ParseQuery("SELECT ALL INSIDE RECT(-1.5, -2e1, 3.25, 1e-1) AT -4");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* spec = std::get_if<RangeQuerySpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_DOUBLE_EQ(spec->time, -4.0);
  EXPECT_TRUE(spec->region.Contains({0.0, -10.0}));
}

TEST(ParseQueryTest, SubscribeAtForm) {
  const auto parsed =
      ParseQuery("SUBSCRIBE 42 TO MAY INSIDE RECT(0, -1, 20, 1) AT 6");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* spec = std::get_if<SubscribeSpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->id, 42u);
  EXPECT_EQ(spec->subscription.mode, SubscriptionMode::kMay);
  EXPECT_FALSE(spec->subscription.windowed);
  EXPECT_DOUBLE_EQ(spec->subscription.time, 6.0);
  EXPECT_TRUE(spec->subscription.region.Contains({10.0, 0.0}));
  EXPECT_EQ(spec->subscription.region_text, "RECT(0, -1, 20, 1)");
}

TEST(ParseQueryTest, SubscribeDuringForm) {
  const auto parsed = ParseQuery(
      "subscribe 0 to must inside circle(5, 5, 2) during 10 to 20");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* spec = std::get_if<SubscribeSpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->id, 0u);
  EXPECT_EQ(spec->subscription.mode, SubscriptionMode::kMust);
  EXPECT_TRUE(spec->subscription.windowed);
  EXPECT_DOUBLE_EQ(spec->subscription.time, 10.0);
  EXPECT_DOUBLE_EQ(spec->subscription.window_end, 20.0);
}

TEST(ParseQueryTest, SubscribeAcceptsNegativeCoordinatesAndTimes) {
  const auto parsed = ParseQuery(
      "SUBSCRIBE 1 TO ALL INSIDE RECT(-10, -10, -1, -1) AT -5");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* spec = std::get_if<SubscribeSpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_DOUBLE_EQ(spec->subscription.time, -5.0);
  EXPECT_TRUE(spec->subscription.region.Contains({-5.0, -5.0}));
}

// A zero-area rectangle is grammatically fine — it parses; registration is
// where semantic validation lives.
TEST(ParseQueryTest, SubscribeEmptyRectParses) {
  EXPECT_TRUE(
      ParseQuery("SUBSCRIBE 1 TO MAY INSIDE RECT(5, 1, 5, 1) AT 6").ok());
}

TEST(ParseQueryTest, UnsubscribeForm) {
  const auto parsed = ParseQuery("UNSUBSCRIBE 42");
  ASSERT_TRUE(parsed.ok());
  const auto* spec = std::get_if<UnsubscribeSpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->id, 42u);
}

TEST(ParseQueryTest, EventsForm) {
  const auto parsed = ParseQuery("EVENTS");
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(std::get_if<EventsSpec>(&*parsed), nullptr);
}

TEST(ParseQueryTest, RangeAllowPartial) {
  const auto parsed =
      ParseQuery("SELECT ALL INSIDE RECT(0, -1, 20, 1) AT 6 ALLOW PARTIAL");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* spec = std::get_if<RangeQuerySpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_TRUE(spec->allow_partial);
}

TEST(ParseQueryTest, RangeExplicitStrict) {
  const auto parsed =
      ParseQuery("SELECT MUST INSIDE RECT(0, -1, 20, 1) AT 6 STRICT");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* spec = std::get_if<RangeQuerySpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_FALSE(spec->allow_partial);
}

TEST(ParseQueryTest, RangeDefaultsToStrict) {
  const auto parsed = ParseQuery("SELECT ALL INSIDE RECT(0, -1, 20, 1) AT 6");
  ASSERT_TRUE(parsed.ok());
  const auto* spec = std::get_if<RangeQuerySpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_FALSE(spec->allow_partial);
}

TEST(ParseQueryTest, WindowedRangeAllowPartial) {
  const auto parsed = ParseQuery(
      "SELECT ALL INSIDE CIRCLE(5, 5, 2) DURING 10 TO 20 allow partial");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* spec = std::get_if<RangeQuerySpec>(&*parsed);
  ASSERT_NE(spec, nullptr);
  EXPECT_TRUE(spec->windowed);
  EXPECT_TRUE(spec->allow_partial);
}

TEST(ParseQueryTest, NearestPartialityBothSpellings) {
  const auto partial =
      ParseQuery("NEAREST 3 TO POINT(1.5, -2) AT 12 ALLOW PARTIAL");
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  const auto* p = std::get_if<NearestQuerySpec>(&*partial);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->allow_partial);

  const auto strict = ParseQuery("NEAREST 3 TO POINT(1.5, -2) AT 12 STRICT");
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  const auto* s = std::get_if<NearestQuerySpec>(&*strict);
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->allow_partial);

  const auto bare = ParseQuery("NEAREST 3 TO POINT(1.5, -2) AT 12");
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(std::get_if<NearestQuerySpec>(&*bare)->allow_partial);
}

struct BadQueryCase {
  const char* name;
  const char* text;
};

class BadQueryTest : public testing::TestWithParam<BadQueryCase> {};

TEST_P(BadQueryTest, Rejected) {
  const auto parsed = ParseQuery(GetParam().text);
  ASSERT_FALSE(parsed.ok()) << GetParam().text;
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
  // Errors carry an offset to help the user.
  EXPECT_NE(parsed.status().message().find("offset"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, BadQueryTest,
    testing::Values(
        BadQueryCase{"empty", ""},
        BadQueryCase{"unknown_verb", "DELETE FROM objects"},
        BadQueryCase{"missing_of", "POSITION 7 AT 6"},
        BadQueryCase{"fractional_id", "POSITION OF 1.5 AT 6"},
        BadQueryCase{"negative_id", "POSITION OF -1 AT 6"},
        BadQueryCase{"missing_time", "POSITION OF 1 AT"},
        BadQueryCase{"bad_scope", "SELECT SOME INSIDE RECT(0,0,1,1) AT 5"},
        BadQueryCase{"bad_region", "SELECT ALL INSIDE TRIANGLE(0,0,1) AT 5"},
        BadQueryCase{"missing_paren", "SELECT ALL INSIDE RECT(0,0,1,1 AT 5"},
        BadQueryCase{"too_few_args", "SELECT ALL INSIDE RECT(0,0,1) AT 5"},
        BadQueryCase{"zero_radius", "SELECT ALL INSIDE CIRCLE(0,0,0) AT 5"},
        BadQueryCase{"missing_when", "SELECT ALL INSIDE RECT(0,0,1,1)"},
        BadQueryCase{"during_missing_to",
                     "SELECT ALL INSIDE RECT(0,0,1,1) DURING 1 2"},
        BadQueryCase{"zero_k", "NEAREST 0 TO POINT(1,1) AT 5"},
        BadQueryCase{"fractional_k", "NEAREST 1.5 TO POINT(1,1) AT 5"},
        BadQueryCase{"trailing_garbage", "POSITION OF 1 AT 5 EXTRA"},
        BadQueryCase{"stray_symbol", "POSITION OF 1 AT 5 ;"},
        BadQueryCase{"subscribe_missing_id",
                     "SUBSCRIBE TO MAY INSIDE RECT(0,0,1,1) AT 5"},
        BadQueryCase{"subscribe_negative_id",
                     "SUBSCRIBE -1 TO MAY INSIDE RECT(0,0,1,1) AT 5"},
        BadQueryCase{"subscribe_fractional_id",
                     "SUBSCRIBE 1.5 TO MAY INSIDE RECT(0,0,1,1) AT 5"},
        BadQueryCase{"subscribe_missing_to",
                     "SUBSCRIBE 1 MAY INSIDE RECT(0,0,1,1) AT 5"},
        BadQueryCase{"subscribe_bad_scope",
                     "SUBSCRIBE 1 TO SOME INSIDE RECT(0,0,1,1) AT 5"},
        BadQueryCase{"subscribe_missing_inside",
                     "SUBSCRIBE 1 TO MAY RECT(0,0,1,1) AT 5"},
        BadQueryCase{"subscribe_bad_region",
                     "SUBSCRIBE 1 TO MAY INSIDE BLOB(0,0,1,1) AT 5"},
        BadQueryCase{"subscribe_rect_arity",
                     "SUBSCRIBE 1 TO MAY INSIDE RECT(0,0,1) AT 5"},
        BadQueryCase{"subscribe_zero_radius",
                     "SUBSCRIBE 1 TO MAY INSIDE CIRCLE(0,0,0) AT 5"},
        BadQueryCase{"subscribe_missing_when",
                     "SUBSCRIBE 1 TO MAY INSIDE RECT(0,0,1,1)"},
        BadQueryCase{"subscribe_during_missing_to",
                     "SUBSCRIBE 1 TO MAY INSIDE RECT(0,0,1,1) DURING 1 2"},
        BadQueryCase{"subscribe_trailing_garbage",
                     "SUBSCRIBE 1 TO MAY INSIDE RECT(0,0,1,1) AT 5 NOW"},
        BadQueryCase{"allow_without_partial",
                     "SELECT ALL INSIDE RECT(0,0,1,1) AT 5 ALLOW"},
        BadQueryCase{"partiality_trailing_garbage",
                     "SELECT ALL INSIDE RECT(0,0,1,1) AT 5 ALLOW PARTIAL X"},
        BadQueryCase{"strict_trailing_garbage",
                     "NEAREST 1 TO POINT(1,1) AT 5 STRICT NOW"},
        BadQueryCase{"double_partiality",
                     "SELECT ALL INSIDE RECT(0,0,1,1) AT 5 STRICT STRICT"},
        BadQueryCase{"unsubscribe_missing_id", "UNSUBSCRIBE"},
        BadQueryCase{"unsubscribe_negative_id", "UNSUBSCRIBE -3"},
        BadQueryCase{"unsubscribe_trailing", "UNSUBSCRIBE 3 4"},
        BadQueryCase{"events_trailing", "EVENTS NOW"}),
    [](const testing::TestParamInfo<BadQueryCase>& info) {
      return info.param.name;
    });

// ---- Execution ----

class ExecuteQueryTest : public testing::Test {
 protected:
  ExecuteQueryTest() : db_(&network_) {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {200.0, 0.0}, "street");
    core::PositionAttribute attr;
    attr.route = street_;
    attr.start_route_distance = 10.0;
    attr.start_position = {10.0, 0.0};
    attr.speed = 1.0;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    db_.Insert(7, "truck", attr).ok();
    attr.start_route_distance = 150.0;
    attr.start_position = {150.0, 0.0};
    attr.speed = 0.0;
    db_.Insert(8, "parked", attr).ok();
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  ModDatabase db_;
};

TEST_F(ExecuteQueryTest, PositionAnswer) {
  const auto out = ExecuteQuery(db_, "POSITION OF 7 AT 6");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("object 7"), std::string::npos);
  EXPECT_NE(out->find("(16, 0)"), std::string::npos);
  EXPECT_NE(out->find("bound"), std::string::npos);
}

TEST_F(ExecuteQueryTest, PositionUnknownObject) {
  const auto out = ExecuteQuery(db_, "POSITION OF 99 AT 6");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kNotFound);
}

TEST_F(ExecuteQueryTest, RangeMustAndMay) {
  const auto out =
      ExecuteQuery(db_, "SELECT ALL INSIDE RECT(0, -1, 50, 1) AT 6");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("MUST: 7"), std::string::npos);
  EXPECT_NE(out->find("MAY: (none)"), std::string::npos);
}

TEST_F(ExecuteQueryTest, RangeScopeFiltersOutput) {
  const auto must_only =
      ExecuteQuery(db_, "SELECT MUST INSIDE RECT(0, -1, 50, 1) AT 6");
  ASSERT_TRUE(must_only.ok());
  EXPECT_EQ(must_only->find("MAY"), std::string::npos);
  const auto may_only =
      ExecuteQuery(db_, "SELECT MAY INSIDE RECT(0, -1, 50, 1) AT 6");
  ASSERT_TRUE(may_only.ok());
  EXPECT_EQ(may_only->find("MUST"), std::string::npos);
}

TEST_F(ExecuteQueryTest, MayAnswerCarriesProbability) {
  // Region boundary cutting the parked object's uncertainty interval.
  const auto out =
      ExecuteQuery(db_, "SELECT MAY INSIDE RECT(140, -1, 151, 1) AT 4");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("8(p="), std::string::npos);
}

TEST_F(ExecuteQueryTest, WindowQuery) {
  // Object 7 passes [100, 110] around t = 95; the window catches it.
  const auto out = ExecuteQuery(
      db_, "SELECT ALL INSIDE RECT(100, -1, 110, 1) DURING 80 TO 110");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("MAY within window: 7"), std::string::npos);
}

TEST_F(ExecuteQueryTest, NearestAnswer) {
  const auto out = ExecuteQuery(db_, "NEAREST 2 TO POINT(12, 0) AT 0");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("object 7"), std::string::npos);
  EXPECT_NE(out->find("object 8"), std::string::npos);
  // Item 7 (distance 2) precedes item 8 (distance 138).
  EXPECT_LT(out->find("object 7"), out->find("object 8"));
}

TEST_F(ExecuteQueryTest, ParseErrorsPropagate) {
  const auto out = ExecuteQuery(db_, "SELECT nonsense");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kInvalidArgument);
}

// ---- Standing queries through the language ----

TEST_F(ExecuteQueryTest, SubscribeWithoutEngineIsFailedPrecondition) {
  for (const char* statement :
       {"SUBSCRIBE 1 TO MAY INSIDE RECT(0, -1, 50, 1) AT 6", "UNSUBSCRIBE 1",
        "EVENTS"}) {
    const auto out = ExecuteQuery(db_, statement);
    EXPECT_FALSE(out.ok()) << statement;
    EXPECT_EQ(out.status().code(), util::StatusCode::kFailedPrecondition)
        << statement;
  }
}

class ExecuteSubscribeTest : public ExecuteQueryTest {
 protected:
  ExecuteSubscribeTest() : engine_(&network_) {
    db_.AttachSubscriptions(&engine_);
  }

  SubscriptionEngine engine_;
};

TEST_F(ExecuteSubscribeTest, SubscribeEchoesRegistration) {
  const auto out =
      ExecuteQuery(db_, "SUBSCRIBE 42 TO MAY INSIDE RECT(0, -1, 50, 1) AT 6");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "subscribed 42: MAY inside RECT(0, -1, 50, 1) at t=6");
  EXPECT_TRUE(engine_.contains(42));

  const auto windowed = ExecuteQuery(
      db_, "SUBSCRIBE 43 TO ALL INSIDE CIRCLE(5, 5, 2) DURING 10 TO 20");
  ASSERT_TRUE(windowed.ok());
  EXPECT_EQ(*windowed,
            "subscribed 43: ALL inside CIRCLE(5, 5, 2) during [10, 20]");
}

TEST_F(ExecuteSubscribeTest, DuplicateSubscribeSurfacesAlreadyExists) {
  ASSERT_TRUE(
      ExecuteQuery(db_, "SUBSCRIBE 1 TO MAY INSIDE RECT(0,0,1,1) AT 5").ok());
  const auto out =
      ExecuteQuery(db_, "SUBSCRIBE 1 TO MAY INSIDE RECT(0,0,2,2) AT 5");
  EXPECT_EQ(out.status().code(), util::StatusCode::kAlreadyExists);
}

// Degenerate regions and out-of-horizon instants are semantic conditions,
// not crashes: an essentially-empty region registers and matches nothing,
// a beyond-horizon subscription registers and never fires.
TEST_F(ExecuteSubscribeTest, EmptyRegionExecutesWithoutCrash) {
  for (const char* statement :
       {"SUBSCRIBE 1 TO MAY INSIDE RECT(5, 1, 5, 1) AT 6",
        "SUBSCRIBE 2 TO ALL INSIDE CIRCLE(5, 0, 1e-30) AT 6"}) {
    const auto out = ExecuteQuery(db_, statement);
    ASSERT_TRUE(out.ok()) << statement;  // grammatically fine
  }
  ASSERT_TRUE(db_.ApplyUpdate({7, 1.0, street_, 5.0, {5.0, 0.0},
                               core::TravelDirection::kForward, 0.0})
                  .ok());
  const auto events = ExecuteQuery(db_, "EVENTS");
  ASSERT_TRUE(events.ok());
}

TEST_F(ExecuteSubscribeTest, SubscribeBeyondHorizonNeverMatches) {
  ASSERT_TRUE(
      ExecuteQuery(db_, "SUBSCRIBE 1 TO ALL INSIDE RECT(0, -1, 200, 1) AT 1e6")
          .ok());
  ASSERT_TRUE(db_.ApplyUpdate({7, 1.0, street_, 20.0, {20.0, 0.0},
                               core::TravelDirection::kForward, 1.0})
                  .ok());
  const auto events = ExecuteQuery(db_, "EVENTS");
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(*events, "events: (none)");
}

TEST_F(ExecuteSubscribeTest, EventsDrainsTransitions) {
  ASSERT_TRUE(
      ExecuteQuery(db_, "SUBSCRIBE 42 TO ALL INSIDE RECT(90, -1, 120, 1) AT 8")
          .ok());
  // Move object 7 so its position at the subscribed instant (t=8) lands
  // inside [90, 120]: report at t=2 from distance 100, parked.
  ASSERT_TRUE(db_.ApplyUpdate({7, 2.0, street_, 100.0, {100.0, 0.0},
                               core::TravelDirection::kForward, 0.0})
                  .ok());
  const auto events = ExecuteQuery(db_, "EVENTS");
  ASSERT_TRUE(events.ok());
  EXPECT_NE(events->find("sub 42: object 7 outside->"), std::string::npos);
  EXPECT_NE(events->find("at t=2"), std::string::npos);
  // Drained: a second EVENTS is empty.
  const auto again = ExecuteQuery(db_, "EVENTS");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, "events: (none)");
}

TEST_F(ExecuteSubscribeTest, UnsubscribeRemovesStandingQuery) {
  ASSERT_TRUE(
      ExecuteQuery(db_, "SUBSCRIBE 9 TO MAY INSIDE RECT(0,0,1,1) AT 5").ok());
  const auto out = ExecuteQuery(db_, "UNSUBSCRIBE 9");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "unsubscribed 9");
  EXPECT_FALSE(engine_.contains(9));
  EXPECT_EQ(ExecuteQuery(db_, "UNSUBSCRIBE 9").status().code(),
            util::StatusCode::kNotFound);
}

// ---- Degraded reads through the language (sharded executor) ----

class ExecuteShardedQueryTest : public testing::Test {
 protected:
  static constexpr std::size_t kShards = 4;

  static ShardedModDatabaseOptions Options() {
    ShardedModDatabaseOptions options;
    options.num_shards = kShards;
    options.num_query_threads = 0;  // inline fan-out: deterministic order
    options.enable_subscriptions = true;
    options.supervisor.auto_remediate = false;  // tests step the machine
    return options;
  }

  ExecuteShardedQueryTest() : db_(&network_, Options()) {}

  void SetUp() override {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {200.0, 0.0}, "street");
    // One parked object per shard, spread along the street, so every
    // fan-out answer has a contribution from each failure domain.
    for (std::size_t s = 0; s < kShards; ++s) {
      const core::ObjectId id = IdOnShard(s);
      ASSERT_NE(id, core::kInvalidObjectId);
      core::PositionAttribute attr;
      attr.route = street_;
      attr.start_route_distance = 10.0 + 40.0 * static_cast<double>(s);
      attr.start_position = {attr.start_route_distance, 0.0};
      attr.speed = 0.0;
      attr.update_cost = 5.0;
      attr.max_speed = 1.5;
      attr.policy = core::PolicyKind::kAverageImmediateLinear;
      ASSERT_TRUE(db_.Insert(id, "obj", attr).ok());
      ids_[s] = id;
    }
  }

  core::ObjectId IdOnShard(std::size_t s) const {
    for (core::ObjectId id = 1; id < 100000; ++id) {
      if (db_.ShardOf(id) == s) return id;
    }
    return core::kInvalidObjectId;
  }

  static constexpr const char* kEverywhereMust =
      "SELECT MUST INSIDE RECT(-10, -10, 210, 10) AT 0";

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  ShardedModDatabase db_;
  core::ObjectId ids_[kShards] = {};
};

TEST_F(ExecuteShardedQueryTest, HealthyAnswersAreCompleteUnderBothModes) {
  const auto strict = ExecuteQuery(db_, std::string(kEverywhereMust) + " STRICT");
  const auto partial =
      ExecuteQuery(db_, std::string(kEverywhereMust) + " ALLOW PARTIAL");
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  // Nothing quarantined: identical renderings, no partial annotation.
  EXPECT_EQ(*strict, *partial);
  EXPECT_EQ(strict->find("partial"), std::string::npos);
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_NE(strict->find(std::to_string(ids_[s])), std::string::npos);
  }
}

TEST_F(ExecuteShardedQueryTest, StrictRefusesPartialAnswer) {
  db_.supervisor().ReportFault(2, util::Status::Internal("test fault"));
  for (const char* statement :
       {kEverywhereMust,
        "SELECT ALL INSIDE RECT(-10, -10, 210, 10) DURING 0 TO 5 STRICT",
        "NEAREST 2 TO POINT(12, 0) AT 0"}) {
    const auto out = ExecuteQuery(db_, statement);
    ASSERT_FALSE(out.ok()) << statement;
    EXPECT_EQ(out.status().code(), util::StatusCode::kUnavailable) << statement;
    EXPECT_NE(out.status().message().find("partial answer refused (STRICT)"),
              std::string::npos)
        << out.status().ToString();
    EXPECT_NE(out.status().message().find("shard(s) 2"), std::string::npos)
        << out.status().ToString();
  }
}

TEST_F(ExecuteShardedQueryTest, AllowPartialAnnotatesExcludedShards) {
  db_.supervisor().ReportFault(2, util::Status::Internal("test fault"));
  const auto out =
      ExecuteQuery(db_, std::string(kEverywhereMust) + " ALLOW PARTIAL");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("partial (excluded shards: 2; listed MUST answers "
                      "remain sound)"),
            std::string::npos)
      << *out;
  // Surviving shards still answer; the quarantined shard's object is absent.
  // Tokenize the MUST line — raw substring search would match digits in the
  // region echo or the excluded-shards annotation.
  const auto must_at = out->find("MUST:");
  ASSERT_NE(must_at, std::string::npos) << *out;
  const auto line_end = out->find('\n', must_at);
  std::istringstream must_line(
      out->substr(must_at + 5, line_end - (must_at + 5)));
  std::set<std::string> listed;
  for (std::string token; must_line >> token;) listed.insert(token);
  for (std::size_t s = 0; s < kShards; ++s) {
    const bool expected_present = s != 2;
    EXPECT_EQ(listed.count(std::to_string(ids_[s])) != 0, expected_present)
        << "shard " << s << ": " << *out;
  }
}

TEST_F(ExecuteShardedQueryTest, NearestAllowPartialSkipsQuarantinedShard) {
  db_.supervisor().ReportFault(1, util::Status::Internal("test fault"));
  const auto out = ExecuteQuery(
      db_, "NEAREST 4 TO POINT(12, 0) AT 0 ALLOW PARTIAL");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("partial (excluded shards: 1"), std::string::npos);
  EXPECT_EQ(out->find("object " + std::to_string(ids_[1]) + ":"),
            std::string::npos)
      << *out;
}

TEST_F(ExecuteShardedQueryTest, PositionOfQuarantinedObjectPassesUnavailable) {
  db_.supervisor().ReportFault(3, util::Status::Internal("test fault"));
  const auto down = ExecuteQuery(
      db_, "POSITION OF " + std::to_string(ids_[3]) + " AT 0");
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.status().code(), util::StatusCode::kUnavailable);
  EXPECT_NE(down.status().message().find("retry_after_ms="), std::string::npos)
      << down.status().ToString();
  // Objects on healthy shards still answer point queries.
  const auto up = ExecuteQuery(
      db_, "POSITION OF " + std::to_string(ids_[0]) + " AT 0");
  EXPECT_TRUE(up.ok()) << up.status().ToString();
}

TEST_F(ExecuteShardedQueryTest, SubscriptionStatementsRouteThroughShardedApi) {
  ASSERT_TRUE(
      ExecuteQuery(db_, "SUBSCRIBE 42 TO ALL INSIDE RECT(0, -5, 60, 5) AT 1")
          .ok());
  EXPECT_EQ(db_.num_subscriptions(), 1u);
  // The seeded objects sit parked inside the region, so the registration's
  // next update produces transitions; at minimum EVENTS must execute.
  const auto events = ExecuteQuery(db_, "EVENTS");
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  const auto out = ExecuteQuery(db_, "UNSUBSCRIBE 42");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "unsubscribed 42");
  EXPECT_EQ(db_.num_subscriptions(), 0u);
}

TEST_F(ExecuteShardedQueryTest, EventsWithoutEnginesIsFailedPrecondition) {
  ShardedModDatabaseOptions options = Options();
  options.enable_subscriptions = false;
  ShardedModDatabase plain(&network_, options);
  for (const char* statement :
       {"SUBSCRIBE 1 TO MAY INSIDE RECT(0,0,1,1) AT 5", "EVENTS"}) {
    const auto out = ExecuteQuery(plain, statement);
    EXPECT_FALSE(out.ok()) << statement;
    EXPECT_EQ(out.status().code(), util::StatusCode::kFailedPrecondition)
        << statement;
  }
}

}  // namespace
}  // namespace modb::db
