#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "db/recovery.h"
#include "db/wal.h"
#include "geo/polygon.h"
#include "util/fault_injection.h"

namespace modb::db {
namespace {

namespace fs = std::filesystem;

// Group-tracking crash torture: the scripted stream drives convoy
// formations, cohesion splits, leader-erase re-elections, and a dissolve
// through a durable store, then a power-loss sweep kills the WAL at every
// offset. The torture invariant extends the plain one: after recovery not
// just the record table but the *group membership* and the *query answers*
// must be byte-identical to the uncrashed control at the same prefix of
// the applied mutation stream — form/split transitions ride the
// `kGroupBatch` frames, erase cascades are replayed deterministically from
// `kErase`, and a torn tail frame must cost the whole batch, never leave a
// half-formed group behind.

/// One scripted operation against the convoy fleet.
struct Op {
  enum Kind {
    kInsert,      // insert `id` into the convoy lane
    kBatch,       // cohesive update batch for every alive member
    kDefect,      // `id` turns onto the cross route (cohesion split)
    kErase,       // erase `id` (leader re-election / dissolve cascade)
    kCheckpoint,  // snapshot (v5: persists membership) + epoch switch
  } kind = kBatch;
  core::ObjectId id = 0;
  double time = 0.0;
};

std::vector<Op> MakeScript() {
  std::vector<Op> ops;
  double t = 0.0;
  const auto next = [&t] { return t += 1.0; };
  for (core::ObjectId i = 1; i <= 6; ++i) ops.push_back({Op::kInsert, i, 0.0});
  ops.push_back({Op::kBatch, 0, next()});   // formation
  ops.push_back({Op::kBatch, 0, next()});   // cohesive follow-up
  ops.push_back({Op::kDefect, 6, next()});  // split: member leaves
  ops.push_back({Op::kBatch, 0, next()});
  ops.push_back({Op::kErase, 1, 0.0});  // leader erase: re-election
  ops.push_back({Op::kCheckpoint, 0, 0.0});
  ops.push_back({Op::kBatch, 0, next()});
  ops.push_back({Op::kDefect, 5, next()});  // down to 3 members
  ops.push_back({Op::kDefect, 4, next()});  // below min size: dissolve
  ops.push_back({Op::kBatch, 0, next()});
  return ops;
}

class GroupCrashTortureTest : public testing::Test {
 protected:
  GroupCrashTortureTest() {
    lane_ = network_.AddStraightRoute({0.0, 0.0}, {200.0, 0.0}, "lane");
    cross_ = network_.AddStraightRoute({0.0, 0.0}, {0.0, 200.0}, "cross");
    script_ = MakeScript();
  }

  void SetUp() override {
    root_ = (fs::path(testing::TempDir()) /
             ("group_crash_torture_" +
              std::string(testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static ModDatabaseOptions TrackingOptions() {
    ModDatabaseOptions options;
    options.group_tracking.enabled = true;
    return options;
  }

  core::PositionUpdate Update(core::ObjectId id, double time,
                              geo::RouteId route, double s) const {
    core::PositionUpdate update;
    update.object = id;
    update.time = time;
    update.route = route;
    update.route_distance = s;
    update.position = network_.route(route).PointAt(s);
    update.direction = core::TravelDirection::kForward;
    update.speed = 1.0;
    return update;
  }

  /// Applies `op`, tracking the alive-and-cohesive member set so the
  /// scripted stream is identical on every life.
  util::Status ApplyOp(ModDatabase* db, const Op& op,
                       std::vector<core::ObjectId>* members) const {
    switch (op.kind) {
      case Op::kInsert: {
        const double s = 0.5 * static_cast<double>(op.id);
        core::PositionAttribute attr;
        attr.start_time = 0.0;
        attr.route = lane_;
        attr.start_route_distance = s;
        attr.start_position = network_.route(lane_).PointAt(s);
        attr.direction = core::TravelDirection::kForward;
        attr.speed = 1.0;
        attr.update_cost = 5.0;
        attr.max_speed = 1.5;
        attr.policy = core::PolicyKind::kCurrentImmediateLinear;
        members->push_back(op.id);
        return db->Insert(op.id, "v" + std::to_string(op.id), attr);
      }
      case Op::kBatch: {
        std::vector<core::PositionUpdate> updates;
        for (core::ObjectId id : *members) {
          updates.push_back(Update(id, op.time, lane_,
                                   op.time + 0.5 * static_cast<double>(id)));
        }
        return db->ApplyUpdateBatch(updates).first_error();
      }
      case Op::kDefect:
        members->erase(
            std::remove(members->begin(), members->end(), op.id),
            members->end());
        return db->ApplyUpdate(Update(op.id, op.time, cross_, 10.0));
      case Op::kErase:
        members->erase(
            std::remove(members->begin(), members->end(), op.id),
            members->end());
        return db->Erase(op.id);
      case Op::kCheckpoint:
        return util::Status::Internal("checkpoint is not a db op");
    }
    return util::Status::Internal("unreachable");
  }

  /// Records + membership + answers in one bit-exact fingerprint.
  std::string Signature(const ModDatabase& db) const {
    std::ostringstream out;
    out << std::hexfloat;
    std::map<core::ObjectId, std::string> rows;
    db.ForEachRecord([&](const MovingObjectRecord& record) {
      std::ostringstream row;
      row << std::hexfloat << record.attr.start_time << ' '
          << record.attr.route << ' ' << record.attr.start_route_distance
          << ' ' << record.attr.speed;
      rows[record.id] = row.str();
    });
    for (const auto& [id, row] : rows) out << id << ':' << row << '\n';
    out << "groups next=" << db.group_next_id() << '\n';
    for (const PersistedGroup& g : db.ExportGroups()) {
      out << g.id << " leader=" << g.leader << " v=" << g.model.speed
          << " t0=" << g.model.anchor_time << " s0=" << g.model.anchor_distance
          << " lo=" << g.model.window_lo << " hi=" << g.model.window_hi
          << " members=";
      for (core::ObjectId m : g.members) out << m << ',';
      out << '\n';
    }
    for (const double t : {2.0, 8.0}) {
      const RangeAnswer range =
          db.QueryRange(geo::Polygon::Rectangle(1.0, -1.0, 40.0, 1.0), t);
      out << "R" << t << " must=";
      for (core::ObjectId id : range.must) out << id << ',';
      out << " may=";
      for (std::size_t i = 0; i < range.may.size(); ++i) {
        out << range.may[i] << '@' << range.may_probability[i] << ',';
      }
      out << '\n';
      const NearestAnswer near = db.QueryNearest({10.0, 0.0}, 3, t);
      out << "N" << t << ' ';
      for (const NearestAnswer::Item& item : near.items) {
        out << item.id << '@' << item.db_distance << '/'
            << item.min_possible_distance << '/'
            << item.max_possible_distance << ' ';
      }
      out << '\n';
    }
    return out.str();
  }

  DurabilityOptions TortureOptions() const {
    DurabilityOptions options;
    options.wal.segment_max_bytes = 512;  // force rotations mid-script
    return options;
  }

  geo::RouteNetwork network_;
  geo::RouteId lane_ = geo::kInvalidRouteId;
  geo::RouteId cross_ = geo::kInvalidRouteId;
  std::vector<Op> script_;
  std::string root_;
};

TEST_F(GroupCrashTortureTest, PowerLossSweepRecoversExactGroupPrefix) {
  // Clean control run: signature after every mutation.
  std::vector<std::string> signatures;
  std::size_t records_at_checkpoint = 0;
  bool saw_groups = false;
  {
    ModDatabase db(&network_, TrackingOptions());
    auto manager =
        DurabilityManager::Open(&db, root_ + "/clean", TortureOptions());
    ASSERT_TRUE(manager.ok()) << manager.status().message();
    std::vector<core::ObjectId> members;
    signatures.push_back(Signature(db));
    for (const Op& op : script_) {
      if (op.kind == Op::kCheckpoint) {
        records_at_checkpoint = signatures.size() - 1;
        ASSERT_TRUE((*manager)->Checkpoint().ok());
        continue;
      }
      ASSERT_TRUE(ApplyOp(&db, op, &members).ok());
      saw_groups = saw_groups || db.group_tracker().num_groups() > 0;
      signatures.push_back(Signature(db));
    }
    // The script must exercise the machinery it claims to torture.
    ASSERT_TRUE(saw_groups);
    ASSERT_EQ(db.group_tracker().num_groups(), 0u);  // ends dissolved
  }
  std::uint64_t total_wal_bytes = 0;
  for (const WalSegmentInfo& seg : ListWalSegments(root_ + "/clean")) {
    total_wal_bytes += *util::FileSize(seg.path);
  }
  ASSERT_GT(total_wal_bytes, 0u);
  ASSERT_GT(records_at_checkpoint, 0u);

  for (std::uint64_t crash_at = 0; crash_at < total_wal_bytes;
       crash_at += 11) {
    SCOPED_TRACE("crash after " + std::to_string(crash_at) + " WAL bytes");
    const std::string dir = root_ + "/crash";
    fs::remove_all(dir);

    util::FaultPlan plan;
    plan.crash_after_bytes = crash_at;
    util::FaultInjector injector(plan);
    DurabilityOptions faulty = TortureOptions();
    faulty.wal.file_factory = injector.factory();

    std::size_t applied = 0;
    bool checkpointed = false;
    {
      ModDatabase db(&network_, TrackingOptions());
      auto manager = DurabilityManager::Open(&db, dir, faulty);
      ASSERT_TRUE(manager.ok()) << manager.status().message();
      std::vector<core::ObjectId> members;
      for (const Op& op : script_) {
        util::Status s = op.kind == Op::kCheckpoint
                             ? (*manager)->Checkpoint()
                             : ApplyOp(&db, op, &members);
        if (!s.ok()) {
          ASSERT_TRUE(injector.crashed()) << s.message();
          break;
        }
        if (op.kind == Op::kCheckpoint) {
          checkpointed = true;
        } else {
          ++applied;
        }
      }
    }

    auto recovered = Recover(dir, TortureOptions());
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    // Byte-identical to the uncrashed control at the same prefix: records,
    // group membership, and MUST/MAY/nearest answers.
    EXPECT_EQ(Signature(*recovered->database), signatures[applied]);
    if (checkpointed) {
      EXPECT_GE(applied, records_at_checkpoint);
    }
  }
}

TEST_F(GroupCrashTortureTest, RepeatedCrashRecoverCyclesKeepMembership) {
  // Crash, recover, continue the convoy script on the recovered store —
  // group state never regresses or forks from the control across lives.
  std::vector<std::string> signatures;
  {
    ModDatabase db(&network_, TrackingOptions());
    auto manager =
        DurabilityManager::Open(&db, root_ + "/reference", TortureOptions());
    ASSERT_TRUE(manager.ok());
    std::vector<core::ObjectId> members;
    signatures.push_back(Signature(db));
    for (const Op& op : script_) {
      if (op.kind == Op::kCheckpoint) {
        ASSERT_TRUE((*manager)->Checkpoint().ok());
        continue;
      }
      ASSERT_TRUE(ApplyOp(&db, op, &members).ok());
      signatures.push_back(Signature(db));
    }
  }

  const std::string dir = root_ + "/cycles";
  std::size_t applied = 0;
  std::size_t script_pos = 0;
  int crashes = 0;
  // Replays the member bookkeeping up to `script_pos` so every life's
  // stream matches the control's.
  const auto members_at = [this](std::size_t pos) {
    std::vector<core::ObjectId> members;
    for (std::size_t i = 0; i < pos; ++i) {
      const Op& op = script_[i];
      if (op.kind == Op::kInsert) members.push_back(op.id);
      if (op.kind == Op::kDefect || op.kind == Op::kErase) {
        members.erase(std::remove(members.begin(), members.end(), op.id),
                      members.end());
      }
    }
    return members;
  };
  while (script_pos < script_.size()) {
    util::FaultPlan plan;
    plan.crash_after_bytes = 100 + 170 * crashes;
    util::FaultInjector injector(plan);
    DurabilityOptions faulty = TortureOptions();
    faulty.wal.file_factory = injector.factory();

    auto recovered = Recover(dir, faulty);
    std::unique_ptr<ModDatabase> owned;
    std::unique_ptr<DurabilityManager> manager;
    ModDatabase* db = nullptr;
    if (recovered.ok()) {
      ASSERT_EQ(Signature(*recovered->database), signatures[applied]);
      db = recovered->database.get();
    } else {
      owned = std::make_unique<ModDatabase>(&network_, TrackingOptions());
      auto opened = DurabilityManager::Open(owned.get(), dir, faulty);
      ASSERT_TRUE(opened.ok()) << opened.status().message();
      manager = std::move(*opened);
      db = owned.get();
    }

    std::vector<core::ObjectId> members = members_at(script_pos);
    while (script_pos < script_.size()) {
      const Op& op = script_[script_pos];
      util::Status s;
      if (op.kind == Op::kCheckpoint) {
        s = recovered.ok() ? recovered->durability->Checkpoint()
                           : manager->Checkpoint();
      } else {
        s = ApplyOp(db, op, &members);
      }
      if (!s.ok()) {
        ASSERT_TRUE(injector.crashed()) << s.message();
        ++crashes;
        break;
      }
      ++script_pos;
      if (op.kind != Op::kCheckpoint) ++applied;
    }
  }
  EXPECT_GT(crashes, 0) << "the plan never fired; weaken crash_after_bytes";
  auto final_state = Recover(dir, TortureOptions());
  ASSERT_TRUE(final_state.ok());
  EXPECT_EQ(Signature(*final_state->database), signatures.back());
}

}  // namespace
}  // namespace modb::db
