#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "db/mod_database.h"
#include "db/recovery.h"
#include "db/snapshot.h"
#include "db/subscription_engine.h"
#include "db/wal.h"
#include "geo/polygon.h"
#include "sim/fleet.h"
#include "util/fault_injection.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace modb::db {
namespace {

namespace fs = std::filesystem;

/// Order-independent, bit-exact fingerprint of the stored attributes
/// (excludes replay-derived counters, like the recovery suite's).
std::string Signature(const ModDatabase& db) {
  std::map<core::ObjectId, std::string> rows;
  db.ForEachRecord([&](const MovingObjectRecord& record) {
    std::ostringstream row;
    row << std::hexfloat;
    const core::PositionAttribute& a = record.attr;
    row << record.label << ' ' << a.start_time << ' ' << a.route << ' '
        << a.start_route_distance << ' ' << a.start_position.x << ' '
        << a.start_position.y << ' ' << static_cast<int>(a.direction) << ' '
        << a.speed << ' ' << static_cast<int>(a.policy) << ' '
        << a.update_cost << ' ' << a.max_speed;
    rows[record.id] = row.str();
  });
  std::string signature;
  for (const auto& [id, row] : rows) {
    signature += std::to_string(id) + ':' + row + '\n';
  }
  return signature;
}

/// Bit-exact fingerprint of the group state.
std::string GroupsSignature(const ModDatabase& db) {
  std::ostringstream out;
  out << std::hexfloat << "next=" << db.group_next_id() << '\n';
  for (const PersistedGroup& g : db.ExportGroups()) {
    out << g.id << " leader=" << g.leader << " route=" << g.model.route
        << " dir=" << core::DirectionSign(g.model.direction)
        << " v=" << g.model.speed << " t0=" << g.model.anchor_time
        << " s0=" << g.model.anchor_distance << " lo=" << g.model.window_lo
        << " hi=" << g.model.window_hi << " vmax=" << g.model.vmax
        << " w=" << g.model.width << " members=";
    for (core::ObjectId m : g.members) out << m << ',';
    out << '\n';
  }
  return out.str();
}

/// Bit-exact rendering of every query form over a fixed probe grid.
std::string AnswerSignature(const ModDatabase& db) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const double x0 : {0.0, 30.0, 60.0}) {
    for (const double t : {2.0, 10.0, 25.0, 39.0}) {
      const geo::Polygon region =
          geo::Polygon::Rectangle(x0, -5.0, x0 + 50.0, 125.0);
      const RangeAnswer range = db.QueryRange(region, t);
      out << "R " << x0 << ' ' << t << " must=";
      for (core::ObjectId id : range.must) out << id << ',';
      out << " may=";
      for (std::size_t i = 0; i < range.may.size(); ++i) {
        out << range.may[i] << '@' << range.may_probability[i] << ',';
      }
      out << '\n';
      const IntervalRangeAnswer win =
          db.QueryRangeInterval(region, t, t + 6.0, 2.0);
      out << "W " << x0 << ' ' << t << " may=";
      for (core::ObjectId id : win.may) out << id << ',';
      out << " must=";
      for (core::ObjectId id : win.must_at_some_time) out << id << ',';
      out << '\n';
      const NearestAnswer near =
          db.QueryNearest({x0 + 20.0, 40.0}, 5, t);
      out << "N " << x0 << ' ' << t << ' ';
      for (const NearestAnswer::Item& item : near.items) {
        out << item.id << '@' << item.db_distance << '/'
            << item.min_possible_distance << '/'
            << item.max_possible_distance << ' ';
      }
      out << '\n';
    }
  }
  return out.str();
}

class GroupTrackingTest : public testing::Test {
 protected:
  GroupTrackingTest() { network_.AddGridNetwork(4, 4, 40.0); }

  ModDatabaseOptions Options(bool tracking) const {
    ModDatabaseOptions options;
    options.group_tracking.enabled = tracking;
    return options;
  }

  /// Drives the standard convoy-heavy scenario into `db`; deterministic for
  /// a given (seed, batch) so on/off runs see identical update streams.
  sim::FleetStats RunConvoyFleet(ModDatabase* db, std::size_t batch = 1,
                                 std::uint64_t seed = 7) const {
    sim::FleetOptions fleet_options;
    fleet_options.update_batch_size = batch;
    sim::FleetSimulator fleet(db, fleet_options);
    sim::ConvoyScenarioOptions scenario;
    scenario.num_convoys = 3;
    scenario.vehicles_per_convoy = 6;
    scenario.num_singletons = 4;
    scenario.curve.duration = 40.0;
    util::Rng rng(seed);
    sim::BuildConvoyFleet(fleet, network_, scenario, rng);
    EXPECT_TRUE(fleet.RegisterAll().ok());
    EXPECT_TRUE(fleet.Run().ok());
    return fleet.stats();
  }

  core::PositionAttribute Attr(geo::RouteId route, double s, double v,
                               core::Time t0 = 0.0) const {
    core::PositionAttribute attr;
    attr.start_time = t0;
    attr.route = route;
    attr.start_route_distance = s;
    attr.start_position = network_.route(route).PointAt(s);
    attr.direction = core::TravelDirection::kForward;
    attr.speed = v;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kCurrentImmediateLinear;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, core::Time t,
                              geo::RouteId route, double s,
                              double v = 1.0) const {
    core::PositionUpdate u;
    u.object = id;
    u.time = t;
    u.route = route;
    u.route_distance = s;
    u.position = network_.route(route).PointAt(s);
    u.direction = core::TravelDirection::kForward;
    u.speed = v;
    return u;
  }

  /// Inserts `n` objects on route 0 spaced 0.5 apart (tight enough that
  /// every offset plus the policy's deviation bound fits the join window)
  /// and updates them all at t=1 in one batch, triggering a formation.
  void FormConvoy(ModDatabase* db, std::size_t n,
                  core::ObjectId first_id = 1) const {
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = first_id + static_cast<core::ObjectId>(i);
      ASSERT_TRUE(
          db->Insert(id, "m" + std::to_string(id),
                     Attr(0, 0.5 * static_cast<double>(i), 1.0))
              .ok());
    }
    std::vector<core::PositionUpdate> updates;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = first_id + static_cast<core::ObjectId>(i);
      updates.push_back(
          Update(id, 1.0, 0, 1.0 + 0.5 * static_cast<double>(i)));
    }
    ASSERT_TRUE(db->ApplyUpdateBatch(updates).all_ok());
  }

  geo::RouteNetwork network_;
};

TEST_F(GroupTrackingTest, DisabledByDefaultAndWithLinearScan) {
  ModDatabase plain(&network_);
  EXPECT_FALSE(plain.group_tracker().enabled());
  ModDatabaseOptions options = Options(true);
  options.index_kind = IndexKind::kLinearScan;
  ModDatabase scan(&network_, options);
  EXPECT_FALSE(scan.group_tracker().enabled());
  ModDatabase on(&network_, Options(true));
  EXPECT_TRUE(on.group_tracker().enabled());
}

TEST_F(GroupTrackingTest, ManualConvoyFormsOneGroup) {
  ModDatabase db(&network_, Options(true));
  FormConvoy(&db, 4);
  EXPECT_EQ(db.group_tracker().num_groups(), 1u);
  EXPECT_EQ(db.group_tracker().num_grouped_objects(), 4u);
  const auto groups = db.ExportGroups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 4u);
  EXPECT_TRUE(db.group_tracker().IsGrouped(groups[0].leader));
}

TEST_F(GroupTrackingTest, RouteChangeSplitsMemberOut) {
  ModDatabase db(&network_, Options(true));
  FormConvoy(&db, 4);
  ASSERT_EQ(db.group_tracker().num_groups(), 1u);
  // Member 4 turns onto another route: cohesion broken, it must leave and
  // the remaining three keep the group.
  ASSERT_TRUE(db.ApplyUpdate(Update(4, 2.0, 4, 10.0)).ok());
  EXPECT_FALSE(db.group_tracker().IsGrouped(4));
  EXPECT_EQ(db.group_tracker().num_groups(), 1u);
  EXPECT_EQ(db.group_tracker().num_grouped_objects(), 3u);
  // One more leaver drops the group below min size: dissolve.
  ASSERT_TRUE(db.ApplyUpdate(Update(3, 3.0, 4, 10.0)).ok());
  EXPECT_EQ(db.group_tracker().num_groups(), 0u);
  EXPECT_EQ(db.group_tracker().num_grouped_objects(), 0u);
}

TEST_F(GroupTrackingTest, LeaderEraseReelectsThenDissolves) {
  ModDatabase db(&network_, Options(true));
  FormConvoy(&db, 4);
  auto groups = db.ExportGroups();
  ASSERT_EQ(groups.size(), 1u);
  const core::ObjectId leader = groups[0].leader;
  ASSERT_TRUE(db.Erase(leader).ok());
  groups = db.ExportGroups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_NE(groups[0].leader, leader);
  EXPECT_EQ(groups[0].members.size(), 3u);
  // Erasing below min size dissolves; the two survivors answer as
  // individuals again.
  ASSERT_TRUE(db.Erase(groups[0].members[0]).ok());
  EXPECT_EQ(db.group_tracker().num_groups(), 0u);
  EXPECT_EQ(db.num_objects(), 2u);
  const RangeAnswer all =
      db.QueryRange(geo::Polygon::Rectangle(-5.0, -5.0, 125.0, 125.0), 1.0);
  EXPECT_EQ(all.must.size() + all.may.size(), 2u);
}

TEST_F(GroupTrackingTest, ConvoyFleetFormsGroupsAndSkipsTreeWork) {
  util::MetricsRegistry metrics;
  ModDatabase db(&network_, Options(true));
  db.SetMetrics(&metrics, "mod.");
  RunConvoyFleet(&db);
  // Convoys formed and survived to the end of the run.
  EXPECT_GT(db.group_tracker().num_groups(), 0u);
  EXPECT_GE(db.group_tracker().num_grouped_objects(), 3u);
  EXPECT_GT(metrics.GetCounter("mod.group.forms")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("mod.group.leader_upserts")->value(), 0u);
  // The savings: member updates rewritten to box-less hidden rows.
  EXPECT_GT(metrics.GetCounter("mod.group.member_skips")->value(), 0u);
  EXPECT_EQ(metrics.GetGauge("mod.group.count")->value(),
            static_cast<std::int64_t>(db.group_tracker().num_groups()));
  EXPECT_EQ(metrics.GetGauge("mod.group.size")->value(),
            static_cast<std::int64_t>(
                db.group_tracker().num_grouped_objects()));
}

TEST_F(GroupTrackingTest, AnswersByteIdenticalOnVersusOff) {
  ModDatabase off(&network_, Options(false));
  ModDatabase on(&network_, Options(true));
  RunConvoyFleet(&off);
  RunConvoyFleet(&on);
  ASSERT_GT(on.group_tracker().num_groups(), 0u);  // groups actually active
  EXPECT_EQ(Signature(on), Signature(off));
  EXPECT_EQ(AnswerSignature(on), AnswerSignature(off));
}

TEST_F(GroupTrackingTest, SubscriptionStreamsByteIdenticalOnVersusOff) {
  auto run = [this](bool tracking) {
    ModDatabase db(&network_, Options(tracking));
    SubscriptionEngine engine(&network_);
    db.AttachSubscriptions(&engine);
    SubscriptionSpec spec;
    spec.region = geo::Polygon::Rectangle(20.0, -5.0, 90.0, 125.0);
    spec.mode = SubscriptionMode::kMay;
    EXPECT_TRUE(engine.Subscribe(1, spec).ok());
    SubscriptionSpec must_spec = spec;
    must_spec.mode = SubscriptionMode::kMust;
    EXPECT_TRUE(engine.Subscribe(2, must_spec).ok());
    RunConvoyFleet(&db);
    std::string stream;
    for (const SubscriptionEvent& event : engine.TakeEvents()) {
      stream += event.ToString() + '\n';
    }
    return stream;
  };
  const std::string off = run(false);
  const std::string on = run(true);
  EXPECT_FALSE(off.empty());
  EXPECT_EQ(on, off);
}

TEST_F(GroupTrackingTest, BatchSizeInvariantWithGroups) {
  // The group path must keep the batch ≡ sequential contract: final store,
  // membership, and subscription streams identical for any uplink batch.
  auto run = [this](std::size_t batch) {
    auto db = std::make_unique<ModDatabase>(&network_, Options(true));
    auto engine = std::make_unique<SubscriptionEngine>(&network_);
    db->AttachSubscriptions(engine.get());
    SubscriptionSpec spec;
    spec.region = geo::Polygon::Rectangle(20.0, -5.0, 90.0, 125.0);
    spec.mode = SubscriptionMode::kMay;
    EXPECT_TRUE(engine->Subscribe(1, spec).ok());
    RunConvoyFleet(db.get(), batch);
    std::string stream;
    for (const SubscriptionEvent& event : engine->TakeEvents()) {
      stream += event.ToString() + '\n';
    }
    return std::tuple(Signature(*db), GroupsSignature(*db),
                      AnswerSignature(*db), stream);
  };
  const auto base = run(1);
  for (const std::size_t batch : {std::size_t{3}, std::size_t{64}}) {
    const auto other = run(batch);
    EXPECT_EQ(std::get<0>(other), std::get<0>(base)) << "batch=" << batch;
    EXPECT_EQ(std::get<1>(other), std::get<1>(base)) << "batch=" << batch;
    EXPECT_EQ(std::get<2>(other), std::get<2>(base)) << "batch=" << batch;
    EXPECT_EQ(std::get<3>(other), std::get<3>(base)) << "batch=" << batch;
  }
}

TEST_F(GroupTrackingTest, VelocityPartitionedIndexAnswersIdentically) {
  ModDatabaseOptions off_options = Options(false);
  off_options.index_kind = IndexKind::kVelocityPartitioned;
  ModDatabaseOptions on_options = Options(true);
  on_options.index_kind = IndexKind::kVelocityPartitioned;
  ModDatabase off(&network_, off_options);
  ModDatabase on(&network_, on_options);
  RunConvoyFleet(&off);
  RunConvoyFleet(&on);
  ASSERT_GT(on.group_tracker().num_groups(), 0u);
  EXPECT_EQ(AnswerSignature(on), AnswerSignature(off));
}

TEST_F(GroupTrackingTest, SnapshotRoundTripRestoresGroups) {
  ModDatabase db(&network_, Options(true));
  RunConvoyFleet(&db);
  ASSERT_GT(db.group_tracker().num_groups(), 0u);
  std::stringstream stream;
  ASSERT_TRUE(WriteSnapshot(db, stream).ok());
  const auto loaded = ReadSnapshot(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->database->group_tracker().enabled());
  EXPECT_EQ(GroupsSignature(*loaded->database), GroupsSignature(db));
  EXPECT_EQ(Signature(*loaded->database), Signature(db));
  EXPECT_EQ(AnswerSignature(*loaded->database), AnswerSignature(db));
}

TEST_F(GroupTrackingTest, WalRecoveryRestoresGroupsAndAnswers) {
  const std::string dir =
      (fs::path(testing::TempDir()) / "group_wal_recovery").string();
  fs::remove_all(dir);
  std::string records, groups, answers;
  {
    ModDatabase db(&network_, Options(true));
    auto manager = DurabilityManager::Open(&db, dir);
    ASSERT_TRUE(manager.ok()) << manager.status().message();
    RunConvoyFleet(&db);
    ASSERT_GT(db.group_tracker().num_groups(), 0u);
    records = Signature(db);
    groups = GroupsSignature(db);
    answers = AnswerSignature(db);
  }
  const auto recovered = Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_TRUE(recovered->report.clean);
  EXPECT_EQ(Signature(*recovered->database), records);
  EXPECT_EQ(GroupsSignature(*recovered->database), groups);
  EXPECT_EQ(AnswerSignature(*recovered->database), answers);
  fs::remove_all(dir);
}

TEST_F(GroupTrackingTest, MetricsAggregateAcrossDatabases) {
  // Two databases sharing one registry must aggregate like shards: the
  // signed-delta gauges sum, and a detach withdraws the contribution.
  util::MetricsRegistry metrics;
  ModDatabase a(&network_, Options(true));
  ModDatabase b(&network_, Options(true));
  a.SetMetrics(&metrics, "mod.");
  b.SetMetrics(&metrics, "mod.");
  FormConvoy(&a, 4, 1);
  FormConvoy(&b, 3, 100);
  EXPECT_EQ(metrics.GetGauge("mod.group.count")->value(), 2);
  EXPECT_EQ(metrics.GetGauge("mod.group.size")->value(), 7);
  EXPECT_EQ(metrics.GetCounter("mod.group.forms")->value(), 2u);
  b.SetMetrics(nullptr);
  EXPECT_EQ(metrics.GetGauge("mod.group.count")->value(), 1);
  EXPECT_EQ(metrics.GetGauge("mod.group.size")->value(), 4);
}

TEST_F(GroupTrackingTest, WalFailureRollsBackGroupState) {
  // A formation whose WAL append fails must leave no group behind and keep
  // the store untouched.
  ModDatabase db(&network_, Options(true));
  for (core::ObjectId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(db.Insert(id, "m", Attr(0, static_cast<double>(id), 1.0))
                    .ok());
  }
  const std::string before = Signature(db);
  const std::string dir =
      (fs::path(testing::TempDir()) / "group_wal_failure").string();
  fs::remove_all(dir);
  util::FaultPlan plan;
  plan.crash_after_bytes = 1;  // first append fails mid-frame
  util::FaultInjector injector(plan);
  WalWriterOptions wal_options;
  wal_options.file_factory = injector.factory();
  auto wal = WalWriter::Open(dir, 1, wal_options);
  ASSERT_TRUE(wal.ok());
  db.AttachWal(wal->get());
  std::vector<core::PositionUpdate> updates;
  for (core::ObjectId id = 1; id <= 4; ++id) {
    updates.push_back(Update(id, 1.0, 0, 1.0 + static_cast<double>(id)));
  }
  const UpdateBatchResult result = db.ApplyUpdateBatch(updates);
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(db.group_tracker().num_groups(), 0u);
  EXPECT_EQ(db.group_tracker().num_grouped_objects(), 0u);
  EXPECT_EQ(Signature(db), before);
  db.AttachWal(nullptr);
  // The tracker still works after the rollback.
  std::vector<core::PositionUpdate> retry;
  for (core::ObjectId id = 1; id <= 4; ++id) {
    retry.push_back(Update(id, 2.0, 0, 2.0 + static_cast<double>(id)));
  }
  ASSERT_TRUE(db.ApplyUpdateBatch(retry).all_ok());
  EXPECT_EQ(db.group_tracker().num_groups(), 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace modb::db
