// Cross-shard batch ingest: ApplyUpdateBatch on the sharded layer must
// partition by owning shard, apply sub-batches in parallel, scatter
// per-record statuses back in input order, and end in exactly the state a
// sequential per-update drive would — including under concurrent callers.

#include "db/sharded_database.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "db/mod_database.h"
#include "util/rng.h"

namespace modb::db {
namespace {

class ShardedBatchIngestTest : public testing::Test {
 protected:
  ShardedBatchIngestTest() {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {400.0, 0.0}, "street");
    avenue_ = network_.AddStraightRoute({0.0, 30.0}, {400.0, 30.0}, "avenue");
  }

  core::PositionAttribute Attr(geo::RouteId route, double s, double v) const {
    core::PositionAttribute attr;
    attr.route = route;
    attr.start_route_distance = s;
    attr.start_position = network_.route(route).PointAt(s);
    attr.speed = v;
    attr.max_speed = 1.5;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, core::Time t, double s,
                              double v) const {
    core::PositionUpdate update;
    update.object = id;
    update.time = t;
    update.route = street_;
    update.route_distance = s;
    update.position = network_.route(street_).PointAt(s);
    update.direction = core::TravelDirection::kForward;
    update.speed = v;
    return update;
  }

  static ShardedModDatabaseOptions FourShards() {
    ShardedModDatabaseOptions options;
    options.num_shards = 4;
    options.num_query_threads = 2;
    return options;
  }

  /// Canonical dump of every record's current attribute.
  static std::map<core::ObjectId, std::string> Dump(
      const ShardedModDatabase& db) {
    std::map<core::ObjectId, std::string> rows;
    db.ForEachRecord([&](const MovingObjectRecord& record) {
      rows[record.id] = std::to_string(record.attr.start_time) + '|' +
                        std::to_string(record.attr.route) + '|' +
                        std::to_string(record.attr.start_route_distance) +
                        '|' + std::to_string(record.update_count);
    });
    return rows;
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  geo::RouteId avenue_ = geo::kInvalidRouteId;
};

TEST_F(ShardedBatchIngestTest, BatchMatchesSequentialAcrossShards) {
  ShardedModDatabase batched(&network_, FourShards());
  ShardedModDatabase sequential(&network_, FourShards());
  util::Rng rng(7);
  const std::size_t fleet = 64;
  for (core::ObjectId id = 0; id < fleet; ++id) {
    const auto attr = Attr(id % 2 == 0 ? street_ : avenue_,
                           rng.Uniform(0.0, 350.0), rng.Uniform(0.0, 1.2));
    ASSERT_TRUE(batched.Insert(id, "o", attr).ok());
    ASSERT_TRUE(sequential.Insert(id, "o", attr).ok());
  }

  // Batches that straddle every shard, repeat objects, and carry a few
  // rejects (unknown object, regressing time) in the middle.
  for (int round = 1; round <= 5; ++round) {
    std::vector<core::PositionUpdate> batch;
    const double t = static_cast<double>(round);
    for (core::ObjectId id = 0; id < fleet; ++id) {
      batch.push_back(Update(id, t, 10.0 * t + static_cast<double>(id % 30),
                             rng.Uniform(0.2, 1.2)));
    }
    batch.push_back(Update(9999, t, 5.0, 1.0));       // unknown object
    batch.push_back(Update(3, t - 0.5, 50.0, 1.0));   // regresses vs above
    batch.push_back(Update(3, t + 0.25, 55.0, 1.0));  // supersedes

    std::vector<util::Status> expected;
    expected.reserve(batch.size());
    for (const core::PositionUpdate& u : batch) {
      expected.push_back(sequential.ApplyUpdate(u));
    }
    const UpdateBatchResult r = batched.ApplyUpdateBatch(batch);
    ASSERT_EQ(r.statuses.size(), batch.size());
    std::size_t ok_count = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(r.statuses[i].code(), expected[i].code()) << "record " << i;
      if (expected[i].ok()) ++ok_count;
    }
    EXPECT_EQ(r.applied, ok_count);
    EXPECT_EQ(r.rejected, batch.size() - ok_count);
  }
  EXPECT_EQ(Dump(batched), Dump(sequential));

  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -5.0, 400.0, 35.0);
  for (const double t : {1.5, 3.0, 5.5}) {
    const RangeAnswer a = batched.QueryRange(region, t);
    const RangeAnswer b = sequential.QueryRange(region, t);
    EXPECT_EQ(a.must, b.must) << "t=" << t;
    EXPECT_EQ(a.may, b.may) << "t=" << t;
  }
}

TEST_F(ShardedBatchIngestTest, EmptyBatchIsANoOp) {
  ShardedModDatabase db(&network_, FourShards());
  const UpdateBatchResult r = db.ApplyUpdateBatch({});
  EXPECT_TRUE(r.all_ok());
  EXPECT_EQ(r.applied, 0u);
  EXPECT_EQ(r.rejected, 0u);
}

TEST_F(ShardedBatchIngestTest, ConcurrentBatchesOnDisjointObjectsAllLand) {
  ShardedModDatabase db(&network_, FourShards());
  const std::size_t kThreads = 4;
  const std::size_t kPerThread = 32;
  for (core::ObjectId id = 0; id < kThreads * kPerThread; ++id) {
    ASSERT_TRUE(db.Insert(id, "o", Attr(street_, 1.0, 0.5)).ok());
  }
  std::vector<std::thread> threads;
  std::vector<std::size_t> applied(kThreads, 0);
  for (std::size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      // Each worker owns a disjoint object slice but its batches span all
      // shards, so sub-batches from different workers contend on the same
      // shard locks in parallel.
      for (int round = 1; round <= 8; ++round) {
        std::vector<core::PositionUpdate> batch;
        for (std::size_t j = 0; j < kPerThread; ++j) {
          batch.push_back(Update(w * kPerThread + j,
                                 static_cast<double>(round),
                                 static_cast<double>(round) * 2.0, 0.8));
        }
        applied[w] += db.ApplyUpdateBatch(batch).applied;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t w = 0; w < kThreads; ++w) {
    EXPECT_EQ(applied[w], 8u * kPerThread) << "worker " << w;
  }
  db.ForEachRecord([&](const MovingObjectRecord& record) {
    EXPECT_EQ(record.update_count, 8u);
    EXPECT_EQ(record.attr.start_time, 8.0);
  });
}

}  // namespace
}  // namespace modb::db
