#include "db/statistics.h"

#include <gtest/gtest.h>

namespace modb::db {
namespace {

class StatisticsTest : public testing::Test {
 protected:
  StatisticsTest() : db_(&network_) {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {300.0, 0.0});
  }

  core::PositionAttribute Attr(double s, double v, core::PolicyKind kind,
                               core::Time t0 = 0.0) const {
    core::PositionAttribute attr;
    attr.start_time = t0;
    attr.route = street_;
    attr.start_route_distance = s;
    attr.start_position = {s, 0.0};
    attr.speed = v;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = kind;
    return attr;
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  ModDatabase db_;
};

TEST_F(StatisticsTest, EmptyDatabase) {
  const DatabaseStats stats = ComputeStatistics(db_, 5.0);
  EXPECT_EQ(stats.num_objects, 0u);
  EXPECT_EQ(stats.total_updates, 0u);
  EXPECT_EQ(stats.bound.count(), 0u);
  const std::string table = StatisticsTable(stats).ToString();
  EXPECT_NE(table.find("objects"), std::string::npos);
}

TEST_F(StatisticsTest, CountsPerPolicyAndAggregates) {
  ASSERT_TRUE(db_.Insert(1, "a",
                         Attr(10.0, 1.0,
                              core::PolicyKind::kAverageImmediateLinear))
                  .ok());
  ASSERT_TRUE(db_.Insert(2, "b",
                         Attr(50.0, 0.5,
                              core::PolicyKind::kAverageImmediateLinear))
                  .ok());
  ASSERT_TRUE(
      db_.Insert(3, "c", Attr(90.0, 1.2, core::PolicyKind::kDelayedLinear))
          .ok());

  const DatabaseStats stats = ComputeStatistics(db_, 2.0);
  EXPECT_EQ(stats.num_objects, 3u);
  EXPECT_EQ(stats.objects_per_policy[static_cast<std::size_t>(
                core::PolicyKind::kAverageImmediateLinear)],
            2u);
  EXPECT_EQ(stats.objects_per_policy[static_cast<std::size_t>(
                core::PolicyKind::kDelayedLinear)],
            1u);
  EXPECT_EQ(stats.bound.count(), 3u);
  EXPECT_GT(stats.bound.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.staleness.mean(), 2.0);  // all inserted at t0 = 0
  EXPECT_NEAR(stats.declared_speed.mean(), (1.0 + 0.5 + 1.2) / 3.0, 1e-12);
  EXPECT_EQ(stats.updates_per_object.max(), 0.0);
}

TEST_F(StatisticsTest, UpdatesAffectStalenessAndCounts) {
  ASSERT_TRUE(db_.Insert(1, "a",
                         Attr(10.0, 1.0,
                              core::PolicyKind::kAverageImmediateLinear))
                  .ok());
  core::PositionUpdate update;
  update.object = 1;
  update.time = 8.0;
  update.route = street_;
  update.route_distance = 20.0;
  update.position = {20.0, 0.0};
  update.speed = 1.0;
  ASSERT_TRUE(db_.ApplyUpdate(update).ok());

  const DatabaseStats stats = ComputeStatistics(db_, 10.0);
  EXPECT_EQ(stats.total_updates, 1u);
  EXPECT_DOUBLE_EQ(stats.staleness.mean(), 2.0);  // since the update at t=8
  EXPECT_DOUBLE_EQ(stats.updates_per_object.mean(), 1.0);
  const std::string table = StatisticsTable(stats).ToString();
  EXPECT_NE(table.find("updates received"), std::string::npos);
  EXPECT_NE(table.find("objects using ail"), std::string::npos);
}

}  // namespace
}  // namespace modb::db
