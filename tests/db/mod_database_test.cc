#include "db/mod_database.h"

#include <gtest/gtest.h>

#include <cmath>

namespace modb::db {
namespace {

class ModDatabaseTest : public testing::Test {
 protected:
  ModDatabaseTest() {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {200.0, 0.0}, "main-st");
    avenue_ = network_.AddStraightRoute({50.0, -100.0}, {50.0, 100.0}, "ave");
  }

  core::PositionAttribute Attr(double start, double speed,
                               core::Time t0 = 0.0) const {
    core::PositionAttribute attr;
    attr.start_time = t0;
    attr.route = street_;
    attr.start_route_distance = start;
    attr.start_position = {start, 0.0};
    attr.speed = speed;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, core::Time t, double s,
                              double speed) const {
    core::PositionUpdate u;
    u.object = id;
    u.time = t;
    u.route = street_;
    u.route_distance = s;
    u.position = {s, 0.0};
    u.direction = core::TravelDirection::kForward;
    u.speed = speed;
    return u;
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  geo::RouteId avenue_ = geo::kInvalidRouteId;
};

TEST_F(ModDatabaseTest, InsertAndGet) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "cab-1", Attr(10.0, 1.0)).ok());
  EXPECT_EQ(db.num_objects(), 1u);
  const auto rec = db.Get(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->label, "cab-1");
  EXPECT_EQ((*rec)->update_count, 0u);
}

TEST_F(ModDatabaseTest, InsertRejectsDuplicates) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "a", Attr(0.0, 1.0)).ok());
  const util::Status dup = db.Insert(1, "b", Attr(0.0, 1.0));
  EXPECT_EQ(dup.code(), util::StatusCode::kAlreadyExists);
}

TEST_F(ModDatabaseTest, InsertValidatesAttribute) {
  ModDatabase db(&network_);
  core::PositionAttribute bad_route = Attr(0.0, 1.0);
  bad_route.route = 99;
  EXPECT_EQ(db.Insert(1, "x", bad_route).code(),
            util::StatusCode::kNotFound);
  core::PositionAttribute bad_speed = Attr(0.0, -1.0);
  EXPECT_EQ(db.Insert(2, "x", bad_speed).code(),
            util::StatusCode::kInvalidArgument);
  core::PositionAttribute off_route = Attr(500.0, 1.0);
  EXPECT_EQ(db.Insert(3, "x", off_route).code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(ModDatabaseTest, QueryPositionExtrapolates) {
  // Paper §1: the DBMS answers position queries from the motion model
  // without any update traffic.
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "cab", Attr(10.0, 2.0)).ok());
  const auto answer = db.QueryPosition(1, 5.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer->route_distance, 20.0);
  EXPECT_TRUE(geo::ApproxEqual(answer->position, {20.0, 0.0}));
  EXPECT_EQ(answer->route, street_);
}

TEST_F(ModDatabaseTest, QueryPositionCarriesBounds) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "cab", Attr(10.0, 1.0)).ok());
  const auto answer = db.QueryPosition(1, 2.0);
  ASSERT_TRUE(answer.ok());
  // ail bounds at t=2: slow = min(2C/t, vt) = min(5, 2) = 2;
  // fast = min(5, 0.5*2) = 1.
  EXPECT_DOUBLE_EQ(answer->slow_bound, 2.0);
  EXPECT_DOUBLE_EQ(answer->fast_bound, 1.0);
  EXPECT_DOUBLE_EQ(answer->deviation_bound, 2.0);
  EXPECT_DOUBLE_EQ(answer->uncertainty.lo, 10.0);
  EXPECT_DOUBLE_EQ(answer->uncertainty.hi, 13.0);
}

TEST_F(ModDatabaseTest, QueryPositionUnknownObject) {
  ModDatabase db(&network_);
  EXPECT_EQ(db.QueryPosition(5, 0.0).status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(ModDatabaseTest, ApplyUpdateMovesObject) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "cab", Attr(10.0, 1.0)).ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(1, 10.0, 30.0, 0.5)).ok());
  const auto rec = db.Get(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->update_count, 1u);
  EXPECT_DOUBLE_EQ((*rec)->attr.start_time, 10.0);
  EXPECT_DOUBLE_EQ((*rec)->attr.speed, 0.5);
  // Policy parameters survive updates.
  EXPECT_EQ((*rec)->attr.policy, core::PolicyKind::kAverageImmediateLinear);
  EXPECT_DOUBLE_EQ((*rec)->attr.update_cost, 5.0);
  const auto answer = db.QueryPosition(1, 12.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer->route_distance, 31.0);
}

TEST_F(ModDatabaseTest, ApplyUpdateValidation) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "cab", Attr(10.0, 1.0, 5.0)).ok());
  EXPECT_EQ(db.ApplyUpdate(Update(9, 10.0, 0.0, 1.0)).code(),
            util::StatusCode::kNotFound);
  // Time regression.
  EXPECT_EQ(db.ApplyUpdate(Update(1, 2.0, 0.0, 1.0)).code(),
            util::StatusCode::kInvalidArgument);
  // Unknown route.
  core::PositionUpdate bad = Update(1, 10.0, 0.0, 1.0);
  bad.route = 99;
  EXPECT_EQ(db.ApplyUpdate(bad).code(), util::StatusCode::kNotFound);
}

TEST_F(ModDatabaseTest, RouteChangeUpdate) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "cab", Attr(50.0, 1.0)).ok());
  core::PositionUpdate turn = Update(1, 10.0, 100.0, 1.0);
  turn.route = avenue_;  // turn onto the avenue at its midpoint
  turn.position = {50.0, 0.0};
  ASSERT_TRUE(db.ApplyUpdate(turn).ok());
  const auto answer = db.QueryPosition(1, 20.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->route, avenue_);
  EXPECT_TRUE(geo::ApproxEqual(answer->position, {50.0, 10.0}));
}

TEST_F(ModDatabaseTest, UpdatesAreLogged) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "cab", Attr(10.0, 1.0)).ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(1, 5.0, 15.0, 1.0)).ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(1, 9.0, 19.0, 1.1)).ok());
  EXPECT_EQ(db.log().total_updates(), 2u);
  EXPECT_EQ(db.log().updates_for(1), 2u);
  ASSERT_EQ(db.log().history().size(), 2u);
  EXPECT_DOUBLE_EQ(db.log().history()[1].speed, 1.1);
}

TEST_F(ModDatabaseTest, EraseRemovesObject) {
  ModDatabase db(&network_);
  ASSERT_TRUE(db.Insert(1, "cab", Attr(10.0, 1.0)).ok());
  ASSERT_TRUE(db.Erase(1).ok());
  EXPECT_EQ(db.num_objects(), 0u);
  EXPECT_EQ(db.Erase(1).code(), util::StatusCode::kNotFound);
  EXPECT_FALSE(db.QueryPosition(1, 0.0).ok());
}

TEST_F(ModDatabaseTest, RangeQueryMustMaySemantics) {
  ModDatabase db(&network_);
  // Object 1 near x=10 (inside region with its whole uncertainty interval),
  // object 2 parked at x=120 (outside), object 3 near the region edge (may).
  ASSERT_TRUE(db.Insert(1, "in", Attr(10.0, 0.0)).ok());
  ASSERT_TRUE(db.Insert(2, "out", Attr(120.0, 0.0)).ok());
  ASSERT_TRUE(db.Insert(3, "edge", Attr(39.8, 1.0)).ok());
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -5.0, 40.0, 5.0);
  const RangeAnswer answer = db.QueryRange(region, 1.0);
  ASSERT_EQ(answer.must.size(), 1u);
  EXPECT_EQ(answer.must[0], 1u);
  ASSERT_EQ(answer.may.size(), 1u);
  EXPECT_EQ(answer.may[0], 3u);
  EXPECT_GE(answer.candidates_examined, 2u);
}

TEST_F(ModDatabaseTest, RangeQueryAgreesAcrossIndexKinds) {
  // The refined MUST / MAY answers must be identical whichever access
  // method produced the candidates — the linear scan is ground truth.
  ModDatabaseOptions rtree_opts;
  rtree_opts.index_kind = IndexKind::kTimeSpaceRTree;
  ModDatabaseOptions scan_opts;
  scan_opts.index_kind = IndexKind::kLinearScan;
  ModDatabaseOptions banded_opts;
  banded_opts.index_kind = IndexKind::kVelocityPartitioned;
  banded_opts.velocity_band_bounds = {0.5, 1.0};
  ModDatabase rtree_db(&network_, rtree_opts);
  ModDatabase scan_db(&network_, scan_opts);
  ModDatabase banded_db(&network_, banded_opts);
  for (core::ObjectId id = 0; id < 30; ++id) {
    // Mixed speeds so the velocity bands all get members.
    const double speed = 0.2 + 0.04 * static_cast<double>(id);
    const auto attr = Attr(static_cast<double>(id) * 6.0, speed);
    ASSERT_TRUE(rtree_db.Insert(id, "", attr).ok());
    ASSERT_TRUE(scan_db.Insert(id, "", attr).ok());
    ASSERT_TRUE(banded_db.Insert(id, "", attr).ok());
  }
  for (double t : {0.0, 5.0, 20.0, 60.0}) {
    const geo::Polygon region =
        geo::Polygon::Rectangle(30.0, -1.0, 90.0, 1.0);
    const RangeAnswer truth = scan_db.QueryRange(region, t);
    const RangeAnswer a = rtree_db.QueryRange(region, t);
    const RangeAnswer c = banded_db.QueryRange(region, t);
    EXPECT_EQ(a.must, truth.must) << "t=" << t;
    EXPECT_EQ(a.may, truth.may) << "t=" << t;
    EXPECT_EQ(c.must, truth.must) << "t=" << t;
    EXPECT_EQ(c.may, truth.may) << "t=" << t;
  }
}

TEST_F(ModDatabaseTest, MustSetIsAlwaysActuallyInside) {
  // Theorem 6 semantics: a MUST object's entire uncertainty interval lies
  // in the polygon, so the database position itself must be inside.
  ModDatabase db(&network_);
  for (core::ObjectId id = 0; id < 20; ++id) {
    ASSERT_TRUE(db.Insert(id, "", Attr(static_cast<double>(id) * 10.0, 1.0))
                    .ok());
  }
  const geo::Polygon region = geo::Polygon::Rectangle(25.0, -2.0, 95.0, 2.0);
  const RangeAnswer answer = db.QueryRange(region, 3.0);
  for (core::ObjectId id : answer.must) {
    const auto pos = db.QueryPosition(id, 3.0);
    ASSERT_TRUE(pos.ok());
    EXPECT_TRUE(region.Contains(pos->position)) << "object " << id;
  }
}

TEST_F(ModDatabaseTest, OptionsArePlumbedThrough) {
  ModDatabaseOptions options;
  options.index_kind = IndexKind::kLinearScan;
  options.max_log_history = 4;
  ModDatabase db(&network_, options);
  EXPECT_EQ(db.object_index().name(), "scan");
  EXPECT_EQ(db.options().max_log_history, 4u);
  EXPECT_EQ(&db.network(), &network_);
}

}  // namespace
}  // namespace modb::db
