// Tests of valid-time trajectory history: with `keep_trajectory` on, a
// position query at a past time is answered from the motion model that was
// in force then (paper §2: valid-time equals transaction-time).

#include <gtest/gtest.h>

#include "db/mod_database.h"

namespace modb::db {
namespace {

class TrajectoryTest : public testing::Test {
 protected:
  TrajectoryTest() {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {500.0, 0.0});
  }

  core::PositionAttribute Attr(double s, double v) const {
    core::PositionAttribute attr;
    attr.route = street_;
    attr.start_route_distance = s;
    attr.start_position = {s, 0.0};
    attr.speed = v;
    attr.update_cost = 5.0;
    attr.max_speed = 2.0;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  }

  core::PositionUpdate Update(core::Time t, double s, double v) const {
    core::PositionUpdate u;
    u.object = 1;
    u.time = t;
    u.route = street_;
    u.route_distance = s;
    u.position = {s, 0.0};
    u.speed = v;
    return u;
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
};

TEST_F(TrajectoryTest, PastQueriesUseThePastModel) {
  ModDatabaseOptions options;
  options.keep_trajectory = true;
  ModDatabase db(&network_, options);
  // v=1 from s=0 at t=0; at t=10 the object reports s=10 and speeds up to
  // v=2; at t=20 it reports s=30 and stops.
  ASSERT_TRUE(db.Insert(1, "x", Attr(0.0, 1.0)).ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(10.0, 10.0, 2.0)).ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(20.0, 30.0, 0.0)).ok());

  // Current time: stopped at 30.
  EXPECT_DOUBLE_EQ(db.QueryPosition(1, 25.0)->route_distance, 30.0);
  // During the middle segment: 10 + 2 * (t - 10).
  EXPECT_DOUBLE_EQ(db.QueryPosition(1, 15.0)->route_distance, 20.0);
  EXPECT_DOUBLE_EQ(db.QueryPosition(1, 10.0)->route_distance, 10.0);
  // During the first segment: t * 1.
  EXPECT_DOUBLE_EQ(db.QueryPosition(1, 4.0)->route_distance, 4.0);
  // Before the trip: anchored at the first version's start.
  EXPECT_DOUBLE_EQ(db.QueryPosition(1, -5.0)->route_distance, 0.0);
}

TEST_F(TrajectoryTest, PastBoundsComeFromThePastVersion) {
  ModDatabaseOptions options;
  options.keep_trajectory = true;
  ModDatabase db(&network_, options);
  ASSERT_TRUE(db.Insert(1, "x", Attr(0.0, 1.0)).ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(10.0, 10.0, 2.0)).ok());
  // At t=2 the deviation bound is the one quoted back then: ail with v=1,
  // C=5 -> slow = min(2C/t, vt) = 2.
  const auto answer = db.QueryPosition(1, 2.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer->slow_bound, 2.0);
}

TEST_F(TrajectoryTest, HistoryOffRetainsOnlyCurrent) {
  ModDatabase db(&network_);  // keep_trajectory defaults off
  ASSERT_TRUE(db.Insert(1, "x", Attr(0.0, 1.0)).ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(10.0, 10.0, 2.0)).ok());
  const auto rec = db.Get(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE((*rec)->past.empty());
  // Past query falls back to extrapolating the current model backwards
  // (10 + 2*(5-10) = 0) — documented behaviour without history.
  EXPECT_DOUBLE_EQ(db.QueryPosition(1, 5.0)->route_distance, 0.0);
}

TEST_F(TrajectoryTest, HistoryGrowsPerUpdate) {
  ModDatabaseOptions options;
  options.keep_trajectory = true;
  ModDatabase db(&network_, options);
  ASSERT_TRUE(db.Insert(1, "x", Attr(0.0, 1.0)).ok());
  for (int k = 1; k <= 5; ++k) {
    ASSERT_TRUE(db.ApplyUpdate(Update(k * 10.0, k * 10.0, 1.0)).ok());
  }
  const auto rec = db.Get(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->past.size(), 5u);
  EXPECT_EQ((*rec)->update_count, 5u);
  // Versions are ordered by start time.
  for (std::size_t i = 0; i + 1 < (*rec)->past.size(); ++i) {
    EXPECT_LT((*rec)->past[i].start_time, (*rec)->past[i + 1].start_time);
  }
}

TEST_F(TrajectoryTest, VersionCapDropsOldest) {
  ModDatabaseOptions options;
  options.keep_trajectory = true;
  options.max_trajectory_versions = 3;
  ModDatabase db(&network_, options);
  ASSERT_TRUE(db.Insert(1, "x", Attr(0.0, 1.0)).ok());
  for (int k = 1; k <= 6; ++k) {
    ASSERT_TRUE(db.ApplyUpdate(Update(k * 10.0, k * 10.0, 1.0)).ok());
  }
  const auto rec = db.Get(1);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ((*rec)->past.size(), 3u);
  // The three newest superseded versions survive (t0 = 30, 40, 50).
  EXPECT_DOUBLE_EQ((*rec)->past.front().start_time, 30.0);
  EXPECT_DOUBLE_EQ((*rec)->past.back().start_time, 50.0);
  // A query before the oldest retained version answers from that version,
  // extrapolated backwards: 30 + 1 * (5 - 30) = 5.
  EXPECT_DOUBLE_EQ(db.QueryPosition(1, 5.0)->route_distance, 5.0);
}

TEST_F(TrajectoryTest, RestoreTrajectoryValidates) {
  ModDatabaseOptions options;
  options.keep_trajectory = true;
  ModDatabase db(&network_, options);
  ASSERT_TRUE(db.Insert(1, "x", Attr(0.0, 1.0)).ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(30.0, 30.0, 1.0)).ok());
  EXPECT_EQ(db.RestoreTrajectory(9, {}).code(),
            util::StatusCode::kNotFound);
  // Unordered versions are rejected.
  core::PositionAttribute v1 = Attr(0.0, 1.0);
  v1.start_time = 20.0;
  core::PositionAttribute v2 = Attr(5.0, 1.0);
  v2.start_time = 10.0;
  EXPECT_EQ(db.RestoreTrajectory(1, {v1, v2}).code(),
            util::StatusCode::kInvalidArgument);
  // Ordered versions preceding the current one (start 30) are accepted.
  EXPECT_TRUE(db.RestoreTrajectory(1, {v2, v1}).ok());
  EXPECT_EQ((*db.Get(1))->past.size(), 2u);
}

TEST_F(TrajectoryTest, RejectedUpdateLeavesHistoryUntouched) {
  ModDatabaseOptions options;
  options.keep_trajectory = true;
  ModDatabase db(&network_, options);
  ASSERT_TRUE(db.Insert(1, "x", Attr(0.0, 1.0)).ok());
  core::PositionUpdate bad = Update(10.0, 10.0, 1.0);
  bad.route = 99;
  ASSERT_FALSE(db.ApplyUpdate(bad).ok());
  EXPECT_TRUE((*db.Get(1))->past.empty());
}

}  // namespace
}  // namespace modb::db
