#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "db/recovery.h"
#include "db/wal.h"
#include "util/fault_injection.h"

namespace modb::db {
namespace {

namespace fs = std::filesystem;

// The torture invariant: crash anywhere, recover, and the store equals the
// state after some prefix of the *successfully applied* mutation stream —
// never a crash, never a torn half-mutation, never data older than the
// last checkpoint. Each sweep below injects a different failure (power
// loss at a byte offset, bit rot, a truncated tail) at every interesting
// position of the log.

/// One scripted operation.
struct Op {
  enum Kind { kInsert, kUpdate, kErase, kCheckpoint } kind = kUpdate;
  core::ObjectId id = 0;
  double time = 0.0;
};

std::vector<Op> MakeScript() {
  std::vector<Op> ops;
  double t = 1.0;
  const auto next = [&t] { return t += 0.25; };
  for (core::ObjectId i = 1; i <= 5; ++i) {
    ops.push_back({Op::kInsert, i, next()});
  }
  for (int round = 0; round < 3; ++round) {
    for (core::ObjectId i = 1; i <= 5; ++i) {
      ops.push_back({Op::kUpdate, i, next()});
    }
  }
  ops.push_back({Op::kErase, 2, next()});
  ops.push_back({Op::kCheckpoint, 0, 0.0});
  for (int round = 0; round < 3; ++round) {
    for (core::ObjectId i : {1, 3, 4, 5}) {
      ops.push_back({Op::kUpdate, i, next()});
    }
  }
  ops.push_back({Op::kErase, 5, next()});
  ops.push_back({Op::kInsert, 6, next()});
  ops.push_back({Op::kUpdate, 6, next()});
  return ops;
}

/// Order-independent bit-exact fingerprint of the object table. Excludes
/// the per-object update counters, which checkpoints do not persist.
std::string Signature(const ModDatabase& db) {
  std::map<core::ObjectId, std::string> rows;
  db.ForEachRecord([&](const MovingObjectRecord& record) {
    std::ostringstream row;
    row << std::hexfloat << record.label << ' ' << record.attr.start_time
        << ' ' << record.attr.route << ' ' << record.attr.start_route_distance
        << ' ' << record.attr.start_position.x << ' '
        << record.attr.start_position.y << ' '
        << static_cast<int>(record.attr.direction) << ' ' << record.attr.speed
        << ' ' << record.past.size();
    rows[record.id] = row.str();
  });
  std::string signature;
  for (const auto& [id, row] : rows) {
    signature += std::to_string(id) + ':' + row + '\n';
  }
  return signature;
}

class CrashTortureTest : public testing::Test {
 protected:
  CrashTortureTest() {
    main_ = network_.AddStraightRoute({0.0, 0.0}, {200.0, 0.0}, "main st");
    script_ = MakeScript();
  }

  void SetUp() override {
    root_ = (fs::path(testing::TempDir()) /
             ("crash_torture_" +
              std::string(testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  util::Status ApplyOp(ModDatabase* db, const Op& op) const {
    const double s = static_cast<double>(op.id) * 10.0 + op.time * 0.5;
    switch (op.kind) {
      case Op::kInsert: {
        core::PositionAttribute attr;
        attr.start_time = op.time;
        attr.route = main_;
        attr.start_route_distance = s;
        attr.start_position = network_.route(main_).PointAt(s);
        attr.direction = core::TravelDirection::kForward;
        attr.speed = 0.75;
        return db->Insert(op.id, "obj-" + std::to_string(op.id), attr);
      }
      case Op::kUpdate: {
        core::PositionUpdate update;
        update.object = op.id;
        update.time = op.time;
        update.route = main_;
        update.route_distance = s;
        update.position = network_.route(main_).PointAt(s);
        update.direction = core::TravelDirection::kForward;
        update.speed = 1.0;
        return db->ApplyUpdate(update);
      }
      case Op::kErase:
        return db->Erase(op.id);
      case Op::kCheckpoint:
        return util::Status::Internal("checkpoint is not a db op");
    }
    return util::Status::Internal("unreachable");
  }

  /// Applies the whole script to a durable store in `dir`. Returns the
  /// signature after each successful mutation: `signatures[k]` is the
  /// state once k records hit the WAL (signatures[0] = empty store).
  /// Sets `records_at_checkpoint_` to k at the mid-script checkpoint.
  std::vector<std::string> RunCleanDurable(const std::string& dir,
                                           const DurabilityOptions& options) {
    ModDatabase db(&network_);
    auto manager = DurabilityManager::Open(&db, dir, options);
    EXPECT_TRUE(manager.ok()) << manager.status().message();
    std::vector<std::string> signatures;
    signatures.push_back(Signature(db));
    for (const Op& op : script_) {
      if (op.kind == Op::kCheckpoint) {
        records_at_checkpoint_ = signatures.size() - 1;
        EXPECT_TRUE((*manager)->Checkpoint().ok());
        continue;
      }
      EXPECT_TRUE(ApplyOp(&db, op).ok());
      signatures.push_back(Signature(db));
    }
    total_wal_bytes_ = 0;
    for (const WalSegmentInfo& seg : ListWalSegments(dir)) {
      total_wal_bytes_ += *util::FileSize(seg.path);
    }
    return signatures;
  }

  /// Index of `signature` in `signatures`, or npos.
  static std::size_t FindPrefix(const std::vector<std::string>& signatures,
                                const std::string& signature) {
    const auto it =
        std::find(signatures.begin(), signatures.end(), signature);
    return it == signatures.end()
               ? std::string::npos
               : static_cast<std::size_t>(it - signatures.begin());
  }

  DurabilityOptions TortureOptions() const {
    DurabilityOptions options;
    options.wal.segment_max_bytes = 256;  // force rotations mid-script
    return options;
  }

  geo::RouteNetwork network_;
  geo::RouteId main_ = geo::kInvalidRouteId;
  std::vector<Op> script_;
  std::size_t records_at_checkpoint_ = 0;
  std::uint64_t total_wal_bytes_ = 0;
  std::string root_;
};

TEST_F(CrashTortureTest, PowerLossAtEveryWalOffsetRecoversTheExactPrefix) {
  const DurabilityOptions options = TortureOptions();
  const std::vector<std::string> signatures =
      RunCleanDurable(root_ + "/clean", options);
  ASSERT_GT(total_wal_bytes_, 0u);
  ASSERT_GT(records_at_checkpoint_, 0u);

  std::vector<std::uint64_t> crash_offsets;
  for (std::uint64_t x = 0; x < total_wal_bytes_; x += 13) {
    crash_offsets.push_back(x);
  }
  crash_offsets.push_back(total_wal_bytes_ - 1);

  for (const std::uint64_t crash_at : crash_offsets) {
    SCOPED_TRACE("crash after " + std::to_string(crash_at) + " WAL bytes");
    const std::string dir = root_ + "/crash";
    fs::remove_all(dir);

    util::FaultPlan plan;
    plan.crash_after_bytes = crash_at;
    util::FaultInjector injector(plan);
    DurabilityOptions faulty = options;
    faulty.wal.file_factory = injector.factory();

    std::size_t applied = 0;
    bool checkpointed = false;
    {
      ModDatabase db(&network_);
      auto manager = DurabilityManager::Open(&db, dir, faulty);
      ASSERT_TRUE(manager.ok()) << manager.status().message();
      for (const Op& op : script_) {
        util::Status s = op.kind == Op::kCheckpoint ? (*manager)->Checkpoint()
                                                    : ApplyOp(&db, op);
        if (!s.ok()) {
          // The only legal failure is the injected power loss; the store
          // "dies" here, mid-script.
          ASSERT_TRUE(injector.crashed()) << s.message();
          break;
        }
        if (op.kind == Op::kCheckpoint) {
          checkpointed = true;
        } else {
          ++applied;
        }
      }
    }

    auto recovered = Recover(dir, options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    // Exactly the applied prefix: aborted mutations and torn frames are
    // invisible, committed ones all survive.
    EXPECT_EQ(Signature(*recovered->database), signatures[applied]);
    if (checkpointed) {
      EXPECT_GE(applied, records_at_checkpoint_);
      EXPECT_GE(recovered->report.checkpoint_id, 2u);
    }
  }
}

TEST_F(CrashTortureTest, GroupCommitPowerLossStaysWithinTheSyncWindow) {
  // Group commit trades the per-append fsync for a bounded loss window: a
  // power cut between a batch append and its deferred fsync may lose the
  // unsynced tail, but never more than `sync_every_bytes` plus the frame
  // in flight, and never anything already fsynced. The injected crash
  // drops the unsynced tail of the live segment (`lose_unsynced_on_crash`
  // models the page cache dying with the machine).
  const std::uint64_t kWindow = 128;
  DurabilityOptions options = TortureOptions();
  options.wal.sync_every_bytes = kWindow;

  // Clean reference run, tracking the cumulative WAL byte position after
  // every applied record. The position accumulates across the checkpoint's
  // epoch switch, matching the injector's cumulative offsets (each fresh
  // epoch gets a new writer whose own byte count restarts at zero).
  std::vector<std::string> signatures;
  std::vector<std::uint64_t> cum;
  {
    ModDatabase db(&network_);
    auto manager = DurabilityManager::Open(&db, root_ + "/clean", options);
    ASSERT_TRUE(manager.ok()) << manager.status().message();
    std::uint64_t epoch_base = 0;
    signatures.push_back(Signature(db));
    cum.push_back(0);
    for (const Op& op : script_) {
      if (op.kind == Op::kCheckpoint) {
        records_at_checkpoint_ = signatures.size() - 1;
        epoch_base += (*manager)->wal()->bytes();
        ASSERT_TRUE((*manager)->Checkpoint().ok());
        continue;
      }
      ASSERT_TRUE(ApplyOp(&db, op).ok());
      signatures.push_back(Signature(db));
      cum.push_back(epoch_base + (*manager)->wal()->bytes());
    }
  }
  const std::uint64_t total = cum.back();
  ASSERT_GT(total, 0u);
  std::uint64_t max_frame = 0;
  for (std::size_t k = 1; k < cum.size(); ++k) {
    max_frame = std::max(max_frame, cum[k] - cum[k - 1]);
  }

  std::size_t lossy_recoveries = 0;
  for (std::uint64_t crash_at = 0; crash_at < total; ++crash_at) {
    SCOPED_TRACE("crash after " + std::to_string(crash_at) + " WAL bytes");
    const std::string dir = root_ + "/crash";
    fs::remove_all(dir);

    util::FaultPlan plan;
    plan.crash_after_bytes = crash_at;
    plan.lose_unsynced_on_crash = true;
    util::FaultInjector injector(plan);
    DurabilityOptions faulty = options;
    faulty.wal.file_factory = injector.factory();

    std::size_t applied = 0;
    bool checkpointed = false;
    {
      ModDatabase db(&network_);
      auto manager = DurabilityManager::Open(&db, dir, faulty);
      ASSERT_TRUE(manager.ok()) << manager.status().message();
      for (const Op& op : script_) {
        util::Status s = op.kind == Op::kCheckpoint ? (*manager)->Checkpoint()
                                                    : ApplyOp(&db, op);
        if (!s.ok()) {
          ASSERT_TRUE(injector.crashed()) << s.message();
          break;
        }
        if (op.kind == Op::kCheckpoint) {
          checkpointed = true;
        } else {
          ++applied;
        }
      }
    }

    auto recovered = Recover(dir, options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    const std::size_t prefix =
        FindPrefix(signatures, Signature(*recovered->database));
    ASSERT_NE(prefix, std::string::npos)
        << "recovered state is not a prefix of the applied stream";
    // Never newer than what was applied; never older than the sync window.
    // Everything fsynced before the crash survives, and at the crash at
    // most one full batch window plus the frame in flight was unsynced.
    EXPECT_LE(prefix, applied);
    EXPECT_GE(cum[prefix] + kWindow + max_frame,
              std::min(crash_at, cum[applied]));
    // A durable checkpoint is a floor regardless of the sync window.
    if (checkpointed) {
      EXPECT_GE(prefix, records_at_checkpoint_);
    }
    if (prefix < applied) ++lossy_recoveries;
  }
  // The sweep must actually hit the lossy region between an append and its
  // deferred fsync, otherwise the window bound above is vacuous.
  EXPECT_GT(lossy_recoveries, 0u);
}

TEST_F(CrashTortureTest, BitRotAtEveryWalByteRecoversAConsistentPrefix) {
  const DurabilityOptions options = TortureOptions();
  const std::string master = root_ + "/master";
  const std::vector<std::string> signatures =
      RunCleanDurable(master, options);
  const std::size_t full = signatures.size() - 1;

  // Epochs still on disk after the mid-script checkpoint: the checkpoint
  // epoch boundary tells which records a corrupt segment can cost.
  for (const WalSegmentInfo& seg : ListWalSegments(master)) {
    const auto size = util::FileSize(seg.path);
    ASSERT_TRUE(size.ok());
    for (std::uint64_t offset = 0; offset < *size; offset += 29) {
      SCOPED_TRACE(seg.path + " flip at " + std::to_string(offset));
      const std::string dir = root_ + "/rot";
      fs::remove_all(dir);
      fs::copy(master, dir, fs::copy_options::recursive);

      const std::string victim =
          (fs::path(dir) / fs::path(seg.path).filename()).string();
      ASSERT_TRUE(util::FlipFileByte(victim, offset).ok());

      auto recovered = Recover(dir, options);
      ASSERT_TRUE(recovered.ok()) << recovered.status().message();
      const std::size_t prefix =
          FindPrefix(signatures, Signature(*recovered->database));
      ASSERT_NE(prefix, std::string::npos)
          << "recovered state is not a prefix of the applied stream";
      // Rot in a pre-checkpoint epoch is shadowed by the newer checkpoint;
      // rot after it can cost at most the post-checkpoint suffix.
      if (seg.epoch == 1) {
        EXPECT_EQ(prefix, full);
      } else {
        EXPECT_GE(prefix, records_at_checkpoint_);
      }
    }
  }
}

TEST_F(CrashTortureTest, TruncatedWalTailRecoversAConsistentPrefix) {
  const DurabilityOptions options = TortureOptions();
  const std::string master = root_ + "/master";
  const std::vector<std::string> signatures =
      RunCleanDurable(master, options);

  // Shorten the newest segment of the newest epoch to every length.
  std::vector<WalSegmentInfo> segments = ListWalSegments(master);
  ASSERT_FALSE(segments.empty());
  const WalSegmentInfo last = segments.back();
  const auto size = util::FileSize(last.path);
  ASSERT_TRUE(size.ok());

  for (std::uint64_t keep = 0; keep <= *size; keep += 7) {
    SCOPED_TRACE("tail truncated to " + std::to_string(keep) + " bytes");
    const std::string dir = root_ + "/trunc";
    fs::remove_all(dir);
    fs::copy(master, dir, fs::copy_options::recursive);
    ASSERT_TRUE(
        util::TruncateFile(
            (fs::path(dir) / fs::path(last.path).filename()).string(), keep)
            .ok());

    auto recovered = Recover(dir, options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    const std::size_t prefix =
        FindPrefix(signatures, Signature(*recovered->database));
    ASSERT_NE(prefix, std::string::npos);
    EXPECT_GE(prefix, records_at_checkpoint_);
  }
}

TEST_F(CrashTortureTest, RepeatedCrashRecoverCyclesConverge) {
  // Crash, recover, keep going, crash again — state never regresses.
  const DurabilityOptions options = TortureOptions();
  const std::string dir = root_ + "/cycles";
  const std::vector<std::string> signatures =
      RunCleanDurable(root_ + "/reference", options);

  std::size_t applied = 0;
  std::size_t script_pos = 0;
  int crashes = 0;
  // First life bootstraps; later lives recover and continue the script.
  while (script_pos < script_.size()) {
    util::FaultPlan plan;
    plan.crash_after_bytes = 120 + 160 * crashes;
    util::FaultInjector injector(plan);
    DurabilityOptions faulty = options;
    faulty.wal.file_factory = injector.factory();

    auto recovered = Recover(dir, faulty);
    std::unique_ptr<ModDatabase> owned;
    std::unique_ptr<DurabilityManager> manager;
    ModDatabase* db = nullptr;
    if (recovered.ok()) {
      ASSERT_EQ(Signature(*recovered->database), signatures[applied]);
      db = recovered->database.get();
    } else {
      owned = std::make_unique<ModDatabase>(&network_);
      auto opened = DurabilityManager::Open(owned.get(), dir, faulty);
      ASSERT_TRUE(opened.ok()) << opened.status().message();
      manager = std::move(*opened);
      db = owned.get();
    }

    while (script_pos < script_.size()) {
      const Op& op = script_[script_pos];
      util::Status s;
      if (op.kind == Op::kCheckpoint) {
        s = recovered.ok() ? recovered->durability->Checkpoint()
                           : manager->Checkpoint();
      } else {
        s = ApplyOp(db, op);
      }
      if (!s.ok()) {
        ASSERT_TRUE(injector.crashed()) << s.message();
        ++crashes;
        break;
      }
      ++script_pos;
      if (op.kind != Op::kCheckpoint) ++applied;
    }
  }
  EXPECT_GT(crashes, 0) << "the plan never fired; weaken crash_after_bytes";
  auto final_state = Recover(dir, options);
  ASSERT_TRUE(final_state.ok());
  EXPECT_EQ(Signature(*final_state->database), signatures.back());
}

}  // namespace
}  // namespace modb::db
