// Tests of the failure-domain layer: the ShardSupervisor state machine and
// backoff loop in isolation, then wired into ShardedModDatabase — write
// rejection on quarantined shards, partial-read completeness, and both
// remediation flavours (WAL reopen in place, full re-recovery swap).

#include "db/shard_supervisor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "db/sharded_database.h"
#include "util/fault_injection.h"
#include "util/metrics.h"

namespace modb::db {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;

ShardSupervisorOptions ManualOptions() {
  ShardSupervisorOptions options;
  options.auto_remediate = false;  // tests step the machine themselves
  options.retry.initial_delay_ms = 1;
  options.retry.max_delay_ms = 8;
  return options;
}

TEST(ShardSupervisorTest, StartsHealthyEverywhere) {
  ShardSupervisor sup(4, ManualOptions(), nullptr);
  EXPECT_EQ(sup.num_shards(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(sup.health(s), ShardHealth::kHealthy);
    EXPECT_TRUE(sup.writable(s));
    EXPECT_TRUE(sup.readable(s));
    EXPECT_TRUE(sup.reason(s).ok());
  }
  EXPECT_EQ(sup.num_unavailable(), 0u);
  EXPECT_TRUE(sup.UnavailableShards().empty());
  EXPECT_TRUE(sup.AwaitAllAvailable(milliseconds(0)));
}

TEST(ShardSupervisorTest, FaultQuarantinesAndKeepsFirstReason) {
  ShardSupervisor sup(3, ManualOptions(), nullptr);
  sup.ReportFault(1, util::Status::Internal("wal torn"));
  EXPECT_EQ(sup.health(1), ShardHealth::kQuarantined);
  EXPECT_FALSE(sup.writable(1));
  EXPECT_FALSE(sup.readable(1));
  EXPECT_EQ(sup.reason(1).message(), "wal torn");
  // A second fault on a downed shard must not overwrite the root cause.
  sup.ReportFault(1, util::Status::Internal("cascading noise"));
  EXPECT_EQ(sup.reason(1).message(), "wal torn");
  // Other shards are untouched — that is the whole point of the domain.
  EXPECT_EQ(sup.health(0), ShardHealth::kHealthy);
  EXPECT_EQ(sup.health(2), ShardHealth::kHealthy);
  EXPECT_EQ(sup.UnavailableShards(), (std::vector<std::size_t>{1}));
  EXPECT_FALSE(sup.AwaitAllAvailable(milliseconds(1)));
}

TEST(ShardSupervisorTest, UnavailableStatusNamesShardReasonAndHint) {
  ShardSupervisorOptions options = ManualOptions();
  options.retry.initial_delay_ms = 60000;  // hint clearly nonzero
  options.retry.jitter_fraction = 0.0;
  ShardSupervisor sup(2, options, nullptr);
  sup.ReportFault(1, util::Status::Internal("disk on fire"));
  const util::Status status = sup.UnavailableStatus(1);
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("shard 1"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("disk on fire"), std::string::npos)
      << status.message();
  const auto pos = status.message().find("retry_after_ms=");
  ASSERT_NE(pos, std::string::npos) << status.message();
  const long hint =
      std::stol(status.message().substr(pos + std::string("retry_after_ms=").size()));
  EXPECT_GT(hint, 0);
  EXPECT_LE(hint, 60000);
}

TEST(ShardSupervisorTest, DegradedIsSoftAndClearable) {
  ShardSupervisor sup(2, ManualOptions(), nullptr);
  sup.ReportDegraded(0, util::Status::Internal("unclean recovery"));
  EXPECT_EQ(sup.health(0), ShardHealth::kDegraded);
  // Degraded shards still serve reads and writes.
  EXPECT_TRUE(sup.writable(0));
  EXPECT_TRUE(sup.readable(0));
  EXPECT_EQ(sup.num_unavailable(), 0u);
  // Degrading again does not escalate; clearing restores healthy.
  sup.ReportDegraded(0, util::Status::Internal("again"));
  EXPECT_EQ(sup.reason(0).message(), "unclean recovery");
  sup.ClearDegraded(0);
  EXPECT_EQ(sup.health(0), ShardHealth::kHealthy);
  EXPECT_TRUE(sup.reason(0).ok());
  // A hard fault escalates a degraded shard...
  sup.ReportDegraded(1, util::Status::Internal("soft"));
  sup.ReportFault(1, util::Status::Internal("hard"));
  EXPECT_EQ(sup.health(1), ShardHealth::kQuarantined);
  EXPECT_EQ(sup.reason(1).message(), "hard");
  // ...and neither the soft nor the clear path touches a quarantined one.
  sup.ReportDegraded(1, util::Status::Internal("soft again"));
  sup.ClearDegraded(1);
  EXPECT_EQ(sup.health(1), ShardHealth::kQuarantined);
}

TEST(ShardSupervisorTest, ManualRecoveryStepsTheMachine) {
  ShardSupervisor sup(2, ManualOptions(), nullptr);
  std::atomic<int> attempts{0};
  std::atomic<bool> heal{false};
  sup.Start([&](std::size_t shard) {
    EXPECT_EQ(shard, 0u);
    ++attempts;
    return heal.load() ? util::Status::Ok()
                       : util::Status::Internal("still broken");
  });

  // Nothing to recover on a healthy shard.
  EXPECT_EQ(sup.TryRecoverShard(0).code(),
            util::StatusCode::kFailedPrecondition);

  sup.ReportFault(0, util::Status::Internal("fault"));
  EXPECT_FALSE(sup.TryRecoverShard(0).ok());
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(sup.health(0), ShardHealth::kQuarantined)
      << "failed attempt returns to quarantined";
  EXPECT_EQ(sup.reason(0).message(), "fault") << "root cause survives retries";

  heal = true;
  EXPECT_TRUE(sup.TryRecoverShard(0).ok());
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(sup.health(0), ShardHealth::kHealthy);
  EXPECT_TRUE(sup.reason(0).ok());
  EXPECT_TRUE(sup.AwaitAllAvailable(milliseconds(0)));
}

TEST(ShardSupervisorTest, AutoRemediateLoopHealsFlakyShard) {
  ShardSupervisorOptions options;
  options.retry.initial_delay_ms = 1;
  options.retry.max_delay_ms = 4;
  options.poll_interval_ms = 5;
  util::MetricsRegistry metrics;
  ShardSupervisor sup(2, options, &metrics);
  std::atomic<int> attempts{0};
  sup.Start([&](std::size_t) {
    // Two failures, then the third attempt heals.
    return ++attempts < 3 ? util::Status::Internal("transient")
                          : util::Status::Ok();
  });

  sup.ReportFault(1, util::Status::Internal("chaos"));
  EXPECT_TRUE(sup.AwaitAllAvailable(milliseconds(10000)))
      << "loop never re-admitted the shard; attempts=" << attempts.load();
  EXPECT_EQ(sup.health(1), ShardHealth::kHealthy);
  EXPECT_GE(attempts.load(), 3);
  EXPECT_EQ(metrics.GetCounter("shard.quarantine_total")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("shard.recoveries")->value(), 1u);
  EXPECT_GE(metrics.GetCounter("shard.recovery_failures")->value(), 2u);
  EXPECT_EQ(metrics.GetGauge("shard.quarantined")->value(), 0);
  sup.Stop();
}

TEST(ShardSupervisorTest, MetricsTrackStateAndDurations) {
  util::MetricsRegistry metrics;
  ShardSupervisor sup(2, ManualOptions(), &metrics);
  sup.Start([](std::size_t) { return util::Status::Ok(); });
  EXPECT_EQ(metrics.GetGauge("sharded.shard0.state")->value(), 0);

  sup.ReportFault(0, util::Status::Internal("x"));
  EXPECT_EQ(metrics.GetGauge("sharded.shard0.state")->value(),
            static_cast<std::int64_t>(ShardHealth::kQuarantined));
  EXPECT_EQ(metrics.GetGauge("shard.quarantined")->value(), 1);

  ASSERT_TRUE(sup.TryRecoverShard(0).ok());
  EXPECT_EQ(metrics.GetGauge("sharded.shard0.state")->value(), 0);
  EXPECT_EQ(metrics.GetGauge("shard.quarantined")->value(), 0);
  EXPECT_EQ(metrics.GetLatency("shard.quarantine_duration")->count(), 1u);
  EXPECT_EQ(metrics.GetLatency("shard.recovery_duration")->count(), 1u);
}

TEST(ShardSupervisorTest, DisabledSupervisorNoOpsEverything) {
  ShardSupervisorOptions options;
  options.enabled = false;
  ShardSupervisor sup(2, options, nullptr);
  sup.Start([](std::size_t) { return util::Status::Ok(); });
  sup.ReportFault(0, util::Status::Internal("ignored"));
  sup.ReportDegraded(1, util::Status::Internal("ignored"));
  EXPECT_EQ(sup.health(0), ShardHealth::kHealthy);
  EXPECT_EQ(sup.health(1), ShardHealth::kHealthy);
  EXPECT_TRUE(sup.writable(0));
  EXPECT_EQ(sup.TryRecoverShard(0).code(),
            util::StatusCode::kFailedPrecondition);
  sup.Stop();
}

TEST(ShardSupervisorTest, ConcurrentFaultsAndRecoveriesStayConsistent) {
  ShardSupervisorOptions options;
  options.retry.initial_delay_ms = 1;
  options.retry.max_delay_ms = 2;
  options.poll_interval_ms = 2;
  ShardSupervisor sup(4, options, nullptr);
  sup.Start([](std::size_t) { return util::Status::Ok(); });

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sup, t] {
      for (int i = 0; i < 50; ++i) {
        const std::size_t shard = static_cast<std::size_t>((t + i) % 4);
        sup.ReportFault(shard, util::Status::Internal("storm"));
        (void)sup.TryRecoverShard(shard);
        (void)sup.health(shard);
        (void)sup.UnavailableShards();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_TRUE(sup.AwaitAllAvailable(milliseconds(10000)));
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(sup.health(s), ShardHealth::kHealthy) << "shard " << s;
    EXPECT_TRUE(sup.reason(s).ok());
  }
  sup.Stop();
}

// ---------------------------------------------------------------------------
// Integration with ShardedModDatabase.

class ShardFailureDomainTest : public testing::Test {
 protected:
  ShardFailureDomainTest() {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {400.0, 0.0}, "street");
  }

  void SetUp() override {
    dir_ = (fs::path(testing::TempDir()) /
            ("shard_failure_" +
             std::string(testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  core::PositionAttribute Attr(double s, double v = 1.0) const {
    core::PositionAttribute attr;
    attr.route = street_;
    attr.start_route_distance = s;
    attr.start_position = network_.route(street_).PointAt(s);
    attr.speed = v;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, core::Time t,
                              double s) const {
    core::PositionUpdate update;
    update.object = id;
    update.time = t;
    update.route = street_;
    update.route_distance = s;
    update.position = network_.route(street_).PointAt(s);
    update.direction = core::TravelDirection::kForward;
    update.speed = 1.0;
    return update;
  }

  /// First `n` object ids owned by shard `shard` of `db`.
  static std::vector<core::ObjectId> IdsOnShard(const ShardedModDatabase& db,
                                                std::size_t shard,
                                                std::size_t n) {
    std::vector<core::ObjectId> ids;
    for (core::ObjectId id = 0; ids.size() < n && id < 100000; ++id) {
      if (db.ShardOf(id) == shard) ids.push_back(id);
    }
    return ids;
  }

  static geo::Polygon WholeStreet() {
    return geo::Polygon::Rectangle(-10.0, -10.0, 410.0, 10.0);
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  std::string dir_;
};

ShardedModDatabaseOptions InMemoryManual() {
  ShardedModDatabaseOptions options;
  options.num_shards = 4;
  options.num_query_threads = 0;  // inline fan-out: deterministic
  options.supervisor.auto_remediate = false;
  return options;
}

TEST_F(ShardFailureDomainTest, QuarantinedShardRejectsWritesOthersServe) {
  ShardedModDatabase db(&network_, InMemoryManual());
  const auto sick = IdsOnShard(db, 2, 2);
  const auto well = IdsOnShard(db, 0, 2);
  ASSERT_TRUE(db.Insert(sick[0], "s0", Attr(10.0)).ok());
  ASSERT_TRUE(db.Insert(well[0], "w0", Attr(20.0)).ok());

  db.supervisor().ReportFault(2, util::Status::Internal("operator fault"));
  EXPECT_EQ(db.shard_health(2), ShardHealth::kQuarantined);

  // Every write form routed at shard 2 is refused with the typed status.
  const util::Status insert = db.Insert(sick[1], "s1", Attr(30.0));
  EXPECT_EQ(insert.code(), util::StatusCode::kUnavailable);
  EXPECT_NE(insert.message().find("retry_after_ms="), std::string::npos);
  EXPECT_EQ(db.ApplyUpdate(Update(sick[0], 1.0, 11.0)).code(),
            util::StatusCode::kUnavailable);
  EXPECT_EQ(db.Erase(sick[0]).code(), util::StatusCode::kUnavailable);
  // Point reads of quarantined objects are refused too (the store may be
  // mid-swap during remediation).
  EXPECT_EQ(db.QueryPosition(sick[0], 1.0).status().code(),
            util::StatusCode::kUnavailable);
  EXPECT_EQ(db.GetRecord(sick[0]).status().code(),
            util::StatusCode::kUnavailable);

  // The surviving shards never notice.
  EXPECT_TRUE(db.Insert(well[1], "w1", Attr(40.0)).ok());
  EXPECT_TRUE(db.ApplyUpdate(Update(well[0], 1.0, 21.0)).ok());
  EXPECT_TRUE(db.QueryPosition(well[0], 1.0).ok());
}

TEST_F(ShardFailureDomainTest, BatchWritesRejectOnlyTheQuarantinedSlice) {
  ShardedModDatabase db(&network_, InMemoryManual());
  const auto sick = IdsOnShard(db, 1, 1);
  const auto well = IdsOnShard(db, 3, 1);
  ASSERT_TRUE(db.Insert(sick[0], "s", Attr(10.0)).ok());
  ASSERT_TRUE(db.Insert(well[0], "w", Attr(20.0)).ok());
  db.supervisor().ReportFault(1, util::Status::Internal("fault"));

  std::vector<core::PositionUpdate> updates = {Update(sick[0], 1.0, 11.0),
                                               Update(well[0], 1.0, 21.0)};
  const UpdateBatchResult result = db.ApplyUpdateBatch(updates);
  EXPECT_EQ(result.statuses[0].code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(result.statuses[1].ok());

  // BulkInsert is all-or-nothing, so one quarantined target fails the lot
  // and leaves the store unchanged.
  std::vector<ShardedModDatabase::BulkObject> bulk;
  const auto more_sick = IdsOnShard(db, 1, 2);
  bulk.push_back({more_sick[1], "x", Attr(30.0)});
  const std::size_t before = db.num_objects();
  EXPECT_EQ(db.BulkInsert(std::move(bulk)).code(),
            util::StatusCode::kUnavailable);
  EXPECT_EQ(db.num_objects(), before);
}

TEST_F(ShardFailureDomainTest, FanOutAnswersTurnPartialNotWrong) {
  ShardedModDatabase db(&network_, InMemoryManual());
  std::vector<core::ObjectId> on_sick;
  for (core::ObjectId id = 0; id < 40; ++id) {
    ASSERT_TRUE(db.Insert(id, "o", Attr(5.0 + 2.0 * id)).ok());
    if (db.ShardOf(id) == 3) on_sick.push_back(id);
  }
  ASSERT_FALSE(on_sick.empty());
  const geo::Polygon region = WholeStreet();

  const RangeAnswer healthy = db.QueryRange(region, 0.0);
  EXPECT_TRUE(healthy.completeness.complete);
  EXPECT_TRUE(healthy.completeness.excluded_shards.empty());

  db.supervisor().ReportFault(3, util::Status::Internal("fault"));
  const RangeAnswer partial = db.QueryRange(region, 0.0);
  EXPECT_FALSE(partial.completeness.complete);
  EXPECT_EQ(partial.completeness.excluded_shards,
            (std::vector<std::size_t>{3}));
  // The partial MUST set is exactly the healthy MUST set minus shard 3's
  // objects: sound for every object it still speaks for.
  std::vector<core::ObjectId> expected;
  for (core::ObjectId id : healthy.must) {
    if (db.ShardOf(id) != 3) expected.push_back(id);
  }
  EXPECT_EQ(partial.must, expected);

  // Nearest and interval answers carry the same record.
  const NearestAnswer nearest = db.QueryNearest({100.0, 0.0}, 5, 0.0);
  EXPECT_FALSE(nearest.completeness.complete);
  for (const auto& item : nearest.items) {
    EXPECT_NE(db.ShardOf(item.id), 3u);
  }
  const IntervalRangeAnswer window = db.QueryRangeInterval(region, 0.0, 5.0);
  EXPECT_FALSE(window.completeness.complete);
  EXPECT_EQ(window.completeness.excluded_shards,
            (std::vector<std::size_t>{3}));
}

TEST_F(ShardFailureDomainTest, ResultCacheNeverServesAPartialAnswer) {
  // Unit-level guard: an incomplete answer is returned but not cached.
  RangeQueryCache cache(&network_, RangeQueryCache::Options{});
  const geo::Polygon region = WholeStreet();
  int computes = 0;
  const auto partial = [&] {
    ++computes;
    RangeAnswer answer;
    answer.completeness.complete = false;
    answer.completeness.excluded_shards = {1};
    return answer;
  };
  EXPECT_FALSE(cache.GetOrCompute(region, 0.0, partial).completeness.complete);
  EXPECT_FALSE(cache.GetOrCompute(region, 0.0, partial).completeness.complete);
  EXPECT_EQ(computes, 2) << "partial answers must not be cached";
  EXPECT_EQ(cache.size(), 0u);

  const auto complete = [&] {
    ++computes;
    return RangeAnswer{};
  };
  (void)cache.GetOrCompute(region, 0.0, complete);
  (void)cache.GetOrCompute(region, 0.0, complete);
  EXPECT_EQ(computes, 3) << "complete answers cache as before";
  EXPECT_EQ(cache.hits(), 1u);

  // End to end: cached fan-outs recompute while a shard is out, and heal
  // back to cache hits once it returns.
  ShardedModDatabaseOptions options = InMemoryManual();
  options.result_cache_entries = 16;
  ShardedModDatabase db(&network_, options);
  for (core::ObjectId id = 0; id < 20; ++id) {
    ASSERT_TRUE(db.Insert(id, "o", Attr(5.0 + 2.0 * id)).ok());
  }
  db.supervisor().ReportFault(0, util::Status::Internal("fault"));
  const RangeAnswer a = db.QueryRangeCached(region, 0.0);
  const RangeAnswer b = db.QueryRangeCached(region, 0.0);
  EXPECT_FALSE(a.completeness.complete);
  EXPECT_FALSE(b.completeness.complete);
  EXPECT_EQ(a.must.size(), b.must.size());
}

TEST_F(ShardFailureDomainTest, WalPoisonQuarantinesAndReopenHealsInPlace) {
  // Chaos is routed per shard: only shard 1's WAL files fail, so the test
  // is deterministic regardless of fan-out interleaving.
  util::FaultPlan plan;
  plan.fail_appends_after = 3;  // setup makes 3 appends to shard 1
  plan.fail_appends_count = 1;
  util::FaultInjector injector(plan);
  auto faulty = injector.factory();

  ShardedModDatabaseOptions options = InMemoryManual();
  options.durable_dir = dir_;
  options.durability.wal.sync_every_append = true;
  options.durability.wal.file_factory =
      [faulty](const std::string& path)
      -> util::Result<std::unique_ptr<util::WritableFile>> {
    const bool shard1_wal = path.find("shard-0001") != std::string::npos &&
                            path.find("wal-") != std::string::npos;
    if (shard1_wal) return faulty(path);
    return util::DefaultWritableFileFactory()(path);
  };
  ShardedModDatabase db(&network_, options);
  ASSERT_TRUE(db.durability_status().ok());

  const auto sick = IdsOnShard(db, 1, 3);
  const auto well = IdsOnShard(db, 0, 1);
  ASSERT_TRUE(db.Insert(sick[0], "a", Attr(10.0)).ok());  // append 0
  ASSERT_TRUE(db.Insert(sick[1], "b", Attr(20.0)).ok());  // append 1
  ASSERT_TRUE(db.Insert(sick[2], "c", Attr(30.0)).ok());  // append 2
  ASSERT_TRUE(db.Insert(well[0], "w", Attr(40.0)).ok());

  // Append 3 hits the fault window: the write fails, the WAL is poisoned,
  // and the shard quarantines itself — with the epoch + segment in the
  // recorded reason.
  const util::Status failed = db.ApplyUpdate(Update(sick[0], 1.0, 11.0));
  EXPECT_FALSE(failed.ok());
  ASSERT_EQ(injector.injected_append_faults(), 1u) << "plan never fired";
  ASSERT_EQ(db.shard_health(1), ShardHealth::kQuarantined);
  const std::string reason(db.supervisor().reason(1).message());
  EXPECT_NE(reason.find("wal epoch"), std::string::npos) << reason;
  EXPECT_NE(reason.find("wal-"), std::string::npos) << reason;

  // Further writes to the quarantined shard are refused with the typed
  // status while the rest of the fleet keeps serving.
  EXPECT_EQ(db.ApplyUpdate(Update(sick[1], 1.0, 21.0)).code(),
            util::StatusCode::kUnavailable);
  EXPECT_TRUE(db.ApplyUpdate(Update(well[0], 1.0, 41.0)).ok());

  // Manual remediation (flavour 1): reopen the WAL in place, checkpoint,
  // re-admit. The in-memory state never moved, so nothing is lost.
  ASSERT_TRUE(db.supervisor().TryRecoverShard(1).ok());
  EXPECT_EQ(db.shard_health(1), ShardHealth::kHealthy);
  EXPECT_TRUE(db.supervisor().reason(1).ok());

  // The failed update can now be retried, and durability is live again.
  ASSERT_TRUE(db.ApplyUpdate(Update(sick[0], 1.0, 11.0)).ok());
  const auto record = db.GetRecord(sick[0]);
  ASSERT_TRUE(record.ok());
  EXPECT_DOUBLE_EQ(record->attr.start_route_distance, 11.0);
  const RangeAnswer all = db.QueryRange(WholeStreet(), 1.0);
  EXPECT_TRUE(all.completeness.complete);
  EXPECT_EQ(all.must.size() + 0u, db.num_objects());
}

TEST_F(ShardFailureDomainTest, FullReRecoverySwapRestoresDurableState) {
  ShardedModDatabaseOptions options = InMemoryManual();
  options.durable_dir = dir_;
  options.durability.wal.sync_every_append = true;
  ShardedModDatabase db(&network_, options);
  ASSERT_TRUE(db.durability_status().ok());

  const auto sick = IdsOnShard(db, 2, 2);
  ASSERT_TRUE(db.Insert(sick[0], "a", Attr(10.0)).ok());
  ASSERT_TRUE(db.Insert(sick[1], "b", Attr(20.0)).ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(sick[0], 1.0, 12.0)).ok());

  // An operator fault with a healthy WAL takes the re-recovery flavour:
  // replay the shard's durable home into a fresh store and swap it in.
  db.supervisor().ReportFault(2, util::Status::Internal("operator"));
  ASSERT_TRUE(db.supervisor().TryRecoverShard(2).ok());
  EXPECT_EQ(db.shard_health(2), ShardHealth::kHealthy);

  const auto a = db.GetRecord(sick[0]);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->label, "a");
  EXPECT_DOUBLE_EQ(a->attr.start_route_distance, 12.0);
  const auto b = db.GetRecord(sick[1]);
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(b->attr.start_route_distance, 20.0);
  // And the swapped-in shard accepts writes again.
  EXPECT_TRUE(db.ApplyUpdate(Update(sick[1], 2.0, 22.0)).ok());
}

TEST_F(ShardFailureDomainTest, InMemoryShardHasNoDurableHomeToRecover) {
  ShardedModDatabase db(&network_, InMemoryManual());
  db.supervisor().ReportFault(0, util::Status::Internal("fault"));
  const util::Status status = db.supervisor().TryRecoverShard(0);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.shard_health(0), ShardHealth::kQuarantined)
      << "an unrecoverable shard stays quarantined, not half-open";
}

TEST_F(ShardFailureDomainTest, ConcurrentWritersDuringQuarantineAndHeal) {
  ShardedModDatabaseOptions options;
  options.num_shards = 4;
  options.num_query_threads = 2;
  options.durable_dir = dir_;
  options.supervisor.retry.initial_delay_ms = 1;
  options.supervisor.retry.max_delay_ms = 4;
  options.supervisor.poll_interval_ms = 2;
  ShardedModDatabase db(&network_, options);
  ASSERT_TRUE(db.durability_status().ok());
  for (core::ObjectId id = 0; id < 32; ++id) {
    ASSERT_TRUE(db.Insert(id, "o", Attr(5.0 + id)).ok());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      double time = 1.0;
      while (!stop.load()) {
        for (core::ObjectId id = static_cast<core::ObjectId>(t); id < 32;
             id += 3) {
          // Unavailable is an acceptable (typed) outcome mid-quarantine.
          (void)db.ApplyUpdate(Update(id, time, 5.0 + id));
          (void)db.QueryRange(WholeStreet(), time);
        }
        time += 1.0;
      }
    });
  }

  for (int round = 0; round < 5; ++round) {
    db.supervisor().ReportFault(static_cast<std::size_t>(round % 4),
                                util::Status::Internal("storm"));
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_TRUE(db.supervisor().AwaitAllAvailable(milliseconds(20000)));
  stop = true;
  for (std::thread& t : writers) t.join();

  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(db.shard_health(s), ShardHealth::kHealthy) << "shard " << s;
  }
  EXPECT_EQ(db.num_objects(), 32u);
  EXPECT_TRUE(db.QueryRange(WholeStreet(), 100.0).completeness.complete);
}

}  // namespace
}  // namespace modb::db
