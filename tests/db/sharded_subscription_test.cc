// Continuous queries on the sharded layer: deterministic cross-shard event
// merging (byte-identical to an unsharded database fed the same
// mutations), cached fan-out queries, bulk-load rollback semantics, and a
// multi-threaded stress run for the ThreadSanitizer gate.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "db/mod_database.h"
#include "db/sharded_database.h"
#include "db/subscription_engine.h"
#include "util/rng.h"

namespace modb::db {
namespace {

class ShardedSubscriptionTest : public testing::Test {
 protected:
  ShardedSubscriptionTest() {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {400.0, 0.0}, "street");
    avenue_ = network_.AddStraightRoute({0.0, 30.0}, {400.0, 30.0}, "avenue");
  }

  core::PositionAttribute Attr(geo::RouteId route, double s,
                               double v = 0.0) const {
    core::PositionAttribute attr;
    attr.route = route;
    attr.start_route_distance = s;
    attr.start_position = network_.route(route).PointAt(s);
    attr.speed = v;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, core::Time t, double s,
                              double v) const {
    core::PositionUpdate update;
    update.object = id;
    update.time = t;
    update.route = street_;
    update.route_distance = s;
    update.position = network_.route(street_).PointAt(s);
    update.direction = core::TravelDirection::kForward;
    update.speed = v;
    return update;
  }

  static ShardedModDatabaseOptions WithSubscriptions(std::size_t shards) {
    ShardedModDatabaseOptions options;
    options.num_shards = shards;
    options.num_query_threads = 2;
    options.enable_subscriptions = true;
    return options;
  }

  // The standing queries every determinism test registers: a spread of
  // regions along the street, mixed modes and AT / DURING forms.
  static std::vector<std::pair<SubscriptionId, SubscriptionSpec>>
  StandingQueries() {
    std::vector<std::pair<SubscriptionId, SubscriptionSpec>> subs;
    util::Rng rng(7);
    for (SubscriptionId id = 0; id < 24; ++id) {
      const double x0 = rng.Uniform(0.0, 360.0);
      SubscriptionSpec spec;
      spec.region = geo::Polygon::Rectangle(x0, -2.0, x0 + rng.Uniform(5.0, 40.0), 2.0);
      spec.mode = static_cast<SubscriptionMode>(rng.UniformInt(0, 2));
      if (rng.Uniform() < 0.5) {
        spec.time = rng.Uniform(0.0, 50.0);
      } else {
        spec.windowed = true;
        spec.time = rng.Uniform(0.0, 25.0);
        spec.window_end = rng.Uniform(25.0, 50.0);
      }
      subs.emplace_back(id * 3, spec);  // gaps in the id space
    }
    return subs;
  }

  static std::vector<std::string> Render(
      const std::vector<SubscriptionEvent>& events) {
    std::vector<std::string> lines;
    lines.reserve(events.size());
    for (const auto& event : events) lines.push_back(event.ToString());
    return lines;
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  geo::RouteId avenue_ = geo::kInvalidRouteId;
};

TEST_F(ShardedSubscriptionTest, DisabledByDefaultIsFailedPrecondition) {
  ShardedModDatabaseOptions options;
  options.num_shards = 2;
  ShardedModDatabase db(&network_, options);
  EXPECT_FALSE(db.subscriptions_enabled());
  SubscriptionSpec spec;
  spec.region = geo::Polygon::Rectangle(0, -1, 10, 1);
  EXPECT_EQ(db.Subscribe(1, spec).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.Unsubscribe(1).code(), util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(db.TakeSubscriptionEvents().empty());
}

TEST_F(ShardedSubscriptionTest, SubscribeIsAllOrNothingAcrossShards) {
  ShardedModDatabase db(&network_, WithSubscriptions(4));
  ASSERT_TRUE(db.subscriptions_enabled());
  SubscriptionSpec spec;
  spec.region = geo::Polygon::Rectangle(0, -1, 10, 1);
  ASSERT_TRUE(db.Subscribe(1, spec).ok());
  EXPECT_EQ(db.num_subscriptions(), 1u);
  // Duplicate id: rejected everywhere, registration count unchanged.
  EXPECT_EQ(db.Subscribe(1, spec).code(), util::StatusCode::kAlreadyExists);
  EXPECT_EQ(db.num_subscriptions(), 1u);
  // Degenerate region: rejected, nothing registered.
  EXPECT_EQ(db.Subscribe(2, SubscriptionSpec{}).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(db.num_subscriptions(), 1u);
  ASSERT_TRUE(db.Unsubscribe(1).ok());
  EXPECT_EQ(db.num_subscriptions(), 0u);
  EXPECT_EQ(db.Unsubscribe(1).code(), util::StatusCode::kNotFound);
}

// Satellite of ISSUE 6: the merged cross-shard stream must be
// byte-identical to an unsharded database fed the same mutations — same
// events, same order — for every shard count, with batched ingest, single
// updates, erases, and bulk loads mixed together.
TEST_F(ShardedSubscriptionTest, EventStreamMatchesUnshardedForAnyShardCount) {
  for (const std::size_t shards : {1u, 2u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));

    ModDatabase single(&network_);
    SubscriptionEngine engine(&network_);
    single.AttachSubscriptions(&engine);
    ShardedModDatabase sharded(&network_, WithSubscriptions(shards));

    for (const auto& [id, spec] : StandingQueries()) {
      ASSERT_TRUE(engine.Subscribe(id, spec).ok());
      ASSERT_TRUE(sharded.Subscribe(id, spec).ok());
    }

    std::vector<std::string> single_stream;
    std::vector<std::string> sharded_stream;
    auto drain = [&] {
      for (auto& line : Render(engine.TakeEvents())) {
        single_stream.push_back(std::move(line));
      }
      for (auto& line : Render(sharded.TakeSubscriptionEvents())) {
        sharded_stream.push_back(std::move(line));
      }
    };

    // Bulk-load a fleet, then mixed mutation rounds.
    util::Rng rng(shards * 1000 + 13);
    std::vector<ModDatabase::BulkObject> fleet;
    for (core::ObjectId id = 0; id < 40; ++id) {
      fleet.push_back({id, "o",
                       Attr(id % 3 == 0 ? avenue_ : street_,
                            rng.Uniform(0.0, 380.0), rng.Uniform(0.0, 1.4))});
    }
    ASSERT_TRUE(single.BulkInsert(fleet).ok());
    ASSERT_TRUE(sharded.BulkInsert(fleet).ok());
    drain();

    for (int round = 1; round <= 6; ++round) {
      std::vector<core::PositionUpdate> updates;
      for (core::ObjectId id = 0; id < 40; ++id) {
        if (rng.Uniform() < 0.5) {
          updates.push_back(Update(id, round * 2.0, rng.Uniform(0.0, 380.0),
                                   rng.Uniform(0.0, 1.4)));
        }
      }
      // Same-object churn inside one batch.
      if (!updates.empty()) {
        auto again = updates.front();
        again.time += 1.0;
        again.route_distance = rng.Uniform(0.0, 380.0);
        again.position = network_.route(street_).PointAt(again.route_distance);
        updates.push_back(again);
      }
      single.ApplyUpdateBatch(updates);
      sharded.ApplyUpdateBatch(updates);
      drain();

      const auto loner =
          Update(round % 7, round * 2.0 + 1.5, rng.Uniform(0.0, 380.0), 0.5);
      ASSERT_EQ(single.ApplyUpdate(loner).ok(), sharded.ApplyUpdate(loner).ok());
      drain();
    }
    ASSERT_TRUE(single.Erase(5).ok());
    ASSERT_TRUE(sharded.Erase(5).ok());
    drain();

    ASSERT_GT(single_stream.size(), 0u);
    ASSERT_EQ(single_stream.size(), sharded_stream.size());
    for (std::size_t i = 0; i < single_stream.size(); ++i) {
      ASSERT_EQ(single_stream[i], sharded_stream[i]) << "event " << i;
    }
  }
}

TEST_F(ShardedSubscriptionTest, BulkInsertRollbackDiscardsEvents) {
  ShardedModDatabase db(&network_, WithSubscriptions(4));
  SubscriptionSpec everywhere;
  everywhere.region = geo::Polygon::Rectangle(0, -2, 400, 2);
  everywhere.time = 1.0;
  everywhere.mode = SubscriptionMode::kAll;
  ASSERT_TRUE(db.Subscribe(1, everywhere).ok());

  ASSERT_TRUE(db.Insert(5, "seed", Attr(street_, 100.0, 1.0)).ok());
  EXPECT_EQ(db.TakeSubscriptionEvents().size(), 1u);

  // Id 5 already exists: the whole bulk load fails, shards that had loaded
  // their partition roll back, and none of the transient enter/leave pairs
  // may surface.
  const auto failed = db.BulkInsert({{4, "a", Attr(street_, 10.0, 0.5)},
                                     {5, "dup", Attr(street_, 20.0, 0.5)},
                                     {6, "b", Attr(street_, 30.0, 0.5)}});
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(db.num_objects(), 1u);
  EXPECT_TRUE(db.TakeSubscriptionEvents().empty());

  // The rollback restored Outside state: a successful retry emits fresh
  // enter events for exactly the new objects.
  ASSERT_TRUE(db.BulkInsert({{4, "a", Attr(street_, 10.0, 0.5)},
                             {6, "b", Attr(street_, 30.0, 0.5)}})
                  .ok());
  const auto events = db.TakeSubscriptionEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].object, 4u);
  EXPECT_EQ(events[1].object, 6u);
}

TEST_F(ShardedSubscriptionTest, CachedRangeQueriesMatchPlainFanOut) {
  auto options = WithSubscriptions(4);
  options.result_cache_entries = 8;
  ShardedModDatabase db(&network_, options);

  util::Rng rng(99);
  for (core::ObjectId id = 0; id < 30; ++id) {
    ASSERT_TRUE(
        db.Insert(id, "o", Attr(street_, rng.Uniform(0.0, 380.0),
                                rng.Uniform(0.0, 1.4)))
            .ok());
  }
  const geo::Polygon region = geo::Polygon::Rectangle(50, -2, 250, 2);
  for (int i = 0; i < 3; ++i) {
    const auto cached = db.QueryRangeCached(region, 10.0);
    const auto plain = db.QueryRange(region, 10.0);
    ASSERT_EQ(cached.must, plain.must);
    ASSERT_EQ(cached.may, plain.may);
    ASSERT_EQ(cached.may_probability, plain.may_probability);
    // Merged answers carry no cross-shard duplicates.
    for (std::size_t j = 1; j < cached.must.size(); ++j) {
      EXPECT_LT(cached.must[j - 1], cached.must[j]);
    }
    for (std::size_t j = 1; j < cached.may.size(); ++j) {
      EXPECT_LT(cached.may[j - 1], cached.may[j]);
    }
  }
  EXPECT_GT(db.metrics().GetCounter("sub.cache.hits")->value(), 0u);

  // A write invalidates; the cached answer tracks the new fleet state.
  ASSERT_TRUE(db.ApplyUpdate(Update(0, 5.0, 150.0, 0.0)).ok());
  const auto cached = db.QueryRangeCached(region, 10.0);
  const auto plain = db.QueryRange(region, 10.0);
  EXPECT_EQ(cached.must, plain.must);
  EXPECT_EQ(cached.may, plain.may);
}

// ThreadSanitizer stress: concurrent writers on disjoint object ranges,
// cached fan-out readers, and an event-drain thread, all against the same
// sharded database. Correctness of the interleaved stream is covered by
// the deterministic tests above; this one is about data races.
TEST_F(ShardedSubscriptionTest, ConcurrentMutationsQueriesAndDrainsAreRaceFree) {
  auto options = WithSubscriptions(4);
  options.result_cache_entries = 8;
  ShardedModDatabase db(&network_, options);
  for (const auto& [id, spec] : StandingQueries()) {
    ASSERT_TRUE(db.Subscribe(id, spec).ok());
  }
  constexpr std::size_t kObjectsPerWriter = 16;
  constexpr std::size_t kWriters = 3;
  for (core::ObjectId id = 0; id < kWriters * kObjectsPerWriter; ++id) {
    ASSERT_TRUE(db.Insert(id, "o", Attr(street_, 5.0 + id, 1.0)).ok());
  }

  std::atomic<std::size_t> drained{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      util::Rng rng(w + 1);
      for (int round = 1; round <= 30; ++round) {
        std::vector<core::PositionUpdate> updates;
        for (std::size_t i = 0; i < kObjectsPerWriter; ++i) {
          updates.push_back(Update(w * kObjectsPerWriter + i, round * 2.0,
                                   rng.Uniform(0.0, 380.0),
                                   rng.Uniform(0.0, 1.4)));
        }
        db.ApplyUpdateBatch(updates);
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      drained.fetch_add(db.TakeSubscriptionEvents().size(),
                        std::memory_order_relaxed);
    }
  });
  threads.emplace_back([&] {
    const geo::Polygon region = geo::Polygon::Rectangle(50, -2, 250, 2);
    while (!stop.load(std::memory_order_acquire)) {
      (void)db.QueryRangeCached(region, 10.0);
      (void)db.QueryRange(region, 30.0);
    }
  });
  for (std::size_t w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  drained.fetch_add(db.TakeSubscriptionEvents().size(),
                    std::memory_order_relaxed);
  EXPECT_GT(drained.load(), 0u);
}

}  // namespace
}  // namespace modb::db
