#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "db/mod_database.h"
#include "db/recovery.h"
#include "db/sharded_database.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace modb::db {
namespace {

namespace fs = std::filesystem;

// End-to-end coverage of `ModDatabaseOptions::index_storage`: a database
// whose range index lives on disk-backed pages behind a small buffer pool
// must answer byte-identically to the default all-in-memory configuration,
// through every write path (Insert/ApplyUpdate/Erase, bulk ingest) and
// through the checkpoint protocol.

class PagedIndexDbTest : public testing::Test {
 protected:
  PagedIndexDbTest() {
    main_ = network_.AddStraightRoute({0.0, 0.0}, {100.0, 0.0}, "main st");
    cross_ = network_.AddStraightRoute({50.0, -50.0}, {50.0, 50.0}, "cross");
  }

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("modb_paged_db_" + std::string(testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ModDatabaseOptions DiskOptions(const std::string& file,
                                 std::size_t pool_pages = 16) const {
    ModDatabaseOptions options;
    options.index_storage.kind = storage::StorageKind::kDisk;
    options.index_storage.path = (dir_ / file).string();
    options.index_storage.pool_pages = pool_pages;
    return options;
  }

  core::PositionAttribute Attr(geo::RouteId route, double s, double v) const {
    core::PositionAttribute attr;
    attr.start_time = 0.0;
    attr.route = route;
    attr.start_route_distance = s;
    attr.start_position = network_.route(route).PointAt(s);
    attr.direction = core::TravelDirection::kForward;
    attr.speed = v;
    return attr;
  }

  core::PositionUpdate Update(core::ObjectId id, double time, double s) const {
    core::PositionUpdate update;
    update.object = id;
    update.time = time;
    update.route = main_;
    update.route_distance = s;
    update.position = network_.route(main_).PointAt(s);
    update.direction = core::TravelDirection::kForward;
    update.speed = 1.0;
    return update;
  }

  geo::RouteNetwork network_;
  geo::RouteId main_ = geo::kInvalidRouteId;
  geo::RouteId cross_ = geo::kInvalidRouteId;
  fs::path dir_;
};

void ExpectSameAnswer(const RangeAnswer& memory, const RangeAnswer& paged) {
  EXPECT_EQ(memory.must, paged.must);
  EXPECT_EQ(memory.may, paged.may);
  EXPECT_EQ(memory.may_probability, paged.may_probability);
}

TEST_F(PagedIndexDbTest, DiskBackedIndexMatchesMemoryBackedAnswers) {
  ModDatabase memory_db(&network_);
  ModDatabase paged_db(&network_, DiskOptions("rtree.pages", /*pool_pages=*/8));

  util::Rng rng(11);
  for (core::ObjectId id = 1; id <= 120; ++id) {
    const auto route = (id % 3 == 0) ? cross_ : main_;
    const double s = rng.Uniform(0.0, 99.0);
    const double v = rng.Uniform(0.5, 3.0);
    ASSERT_TRUE(
        memory_db.Insert(id, "obj" + std::to_string(id), Attr(route, s, v))
            .ok());
    ASSERT_TRUE(
        paged_db.Insert(id, "obj" + std::to_string(id), Attr(route, s, v))
            .ok());
  }
  for (core::ObjectId id = 1; id <= 120; id += 4) {
    const auto update = Update(id, 5.0, rng.Uniform(0.0, 99.0));
    ASSERT_TRUE(memory_db.ApplyUpdate(update).ok());
    ASSERT_TRUE(paged_db.ApplyUpdate(update).ok());
  }
  for (core::ObjectId id = 7; id <= 120; id += 17) {
    ASSERT_TRUE(memory_db.Erase(id).ok());
    ASSERT_TRUE(paged_db.Erase(id).ok());
  }

  for (double t : {0.0, 2.5, 7.0, 20.0}) {
    for (const auto& region :
         {geo::Polygon::Rectangle(0.0, -5.0, 40.0, 5.0),
          geo::Polygon::Rectangle(30.0, -20.0, 70.0, 20.0),
          geo::Polygon::Rectangle(45.0, -50.0, 55.0, 50.0)}) {
      ExpectSameAnswer(memory_db.QueryRange(region, t),
                       paged_db.QueryRange(region, t));
    }
  }
}

TEST_F(PagedIndexDbTest, IndexPageTrafficSurfacesInMetrics) {
  ModDatabase db(&network_, DiskOptions("rtree.pages", /*pool_pages=*/4));
  util::MetricsRegistry registry;
  db.SetMetrics(&registry, "db.");
  util::Rng rng(3);
  for (core::ObjectId id = 1; id <= 200; ++id) {
    ASSERT_TRUE(db.Insert(id, "m" + std::to_string(id),
                          Attr(main_, rng.Uniform(0.0, 99.0), 1.0))
                    .ok());
  }
  (void)db.QueryRange(geo::Polygon::Rectangle(0.0, -5.0, 100.0, 5.0), 1.0);
  // A 4-frame pool under a 200-object tree cannot avoid misses/evictions.
  EXPECT_GT(registry.GetCounter("db.index.pages.misses")->value(), 0u);
  EXPECT_GT(registry.GetCounter("db.index.pages.evictions")->value(), 0u);
  EXPECT_GT(registry.GetCounter("db.index.pages.writes")->value(), 0u);
}

TEST_F(PagedIndexDbTest, BulkIngestRebuildsDiskIndexInPlace) {
  // FinishBulkIngest tears the old index down and rebuilds it over the SAME
  // page file; the rebuild must not trip over the previous generation.
  ModDatabase db(&network_, DiskOptions("rtree.pages", /*pool_pages=*/8));
  ASSERT_TRUE(db.BeginBulkIngest().ok());
  util::Rng rng(29);
  for (core::ObjectId id = 1; id <= 150; ++id) {
    ASSERT_TRUE(db.Insert(id, "b" + std::to_string(id),
                          Attr(main_, rng.Uniform(0.0, 99.0), 1.0))
                    .ok());
  }
  ASSERT_TRUE(db.FinishBulkIngest().ok());

  ModDatabase plain(&network_);
  util::Rng rng2(29);
  for (core::ObjectId id = 1; id <= 150; ++id) {
    ASSERT_TRUE(plain.Insert(id, "b" + std::to_string(id),
                             Attr(main_, rng2.Uniform(0.0, 99.0), 1.0))
                    .ok());
  }
  ExpectSameAnswer(
      plain.QueryRange(geo::Polygon::Rectangle(20.0, -2.0, 80.0, 2.0), 1.0),
      db.QueryRange(geo::Polygon::Rectangle(20.0, -2.0, 80.0, 2.0), 1.0));
  // Post-rebuild writes land in the fresh index generation.
  ASSERT_TRUE(db.Insert(999, "late", Attr(main_, 50.0, 1.0)).ok());
  const auto answer =
      db.QueryRange(geo::Polygon::Rectangle(49.0, -1.0, 51.0, 1.0), 0.0);
  EXPECT_NE(std::find(answer.must.begin(), answer.must.end(), 999),
            answer.must.end());
}

TEST_F(PagedIndexDbTest, CheckpointFlushesIndexPagesFirst) {
  // The durability manager's checkpoint protocol calls FlushIndexStorage
  // before publishing the snapshot; with a disk-backed index this must
  // commit the page file and keep the store fully usable afterwards.
  ModDatabase db(&network_, DiskOptions("rtree.pages", /*pool_pages=*/8));
  ASSERT_TRUE(db.Insert(1, "one", Attr(main_, 10.0, 1.0)).ok());
  auto manager = DurabilityManager::Open(&db, (dir_ / "store").string());
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  for (core::ObjectId id = 2; id <= 80; ++id) {
    ASSERT_TRUE(
        db.Insert(id, "c" + std::to_string(id), Attr(main_, 1.0 + id, 1.0))
            .ok());
  }
  ASSERT_TRUE((*manager)->Checkpoint().ok());
  ASSERT_TRUE(db.ApplyUpdate(Update(1, 4.0, 30.0)).ok());
  const auto answer =
      db.QueryRange(geo::Polygon::Rectangle(29.0, -1.0, 31.0, 1.0), 4.0);
  EXPECT_NE(std::find(answer.must.begin(), answer.must.end(), 1),
            answer.must.end());
}

TEST_F(PagedIndexDbTest, VelocityPartitionedIndexSplitsPageFilePerBand) {
  ModDatabaseOptions options = DiskOptions("banded.pages");
  options.index_kind = IndexKind::kVelocityPartitioned;
  options.velocity_band_bounds = {1.0, 2.0};
  ModDatabase db(&network_, options);
  util::Rng rng(17);
  for (core::ObjectId id = 1; id <= 60; ++id) {
    ASSERT_TRUE(db.Insert(id, "v" + std::to_string(id),
                          Attr(main_, rng.Uniform(0.0, 99.0),
                               rng.Uniform(0.2, 3.0)))
                    .ok());
  }
  // One page file per speed band, derived from the configured path.
  EXPECT_TRUE(fs::exists(dir_ / "banded.pages.band0"));
  EXPECT_TRUE(fs::exists(dir_ / "banded.pages.band1"));
  EXPECT_TRUE(fs::exists(dir_ / "banded.pages.band2"));

  ModDatabaseOptions plain_options;
  plain_options.index_kind = IndexKind::kVelocityPartitioned;
  plain_options.velocity_band_bounds = {1.0, 2.0};
  ModDatabase plain(&network_, plain_options);
  util::Rng rng2(17);
  for (core::ObjectId id = 1; id <= 60; ++id) {
    ASSERT_TRUE(plain.Insert(id, "v" + std::to_string(id),
                             Attr(main_, rng2.Uniform(0.0, 99.0),
                                  rng2.Uniform(0.2, 3.0)))
                    .ok());
  }
  ExpectSameAnswer(
      plain.QueryRange(geo::Polygon::Rectangle(10.0, -2.0, 90.0, 2.0), 2.0),
      db.QueryRange(geo::Polygon::Rectangle(10.0, -2.0, 90.0, 2.0), 2.0));
}

TEST_F(PagedIndexDbTest, ShardedDatabaseUsesOnePageFilePerShard) {
  ShardedModDatabaseOptions options;
  options.num_shards = 4;
  options.db = DiskOptions("shards.pages", /*pool_pages=*/8);
  ShardedModDatabase db(&network_, options);
  util::Rng rng(23);
  for (core::ObjectId id = 1; id <= 100; ++id) {
    ASSERT_TRUE(db.Insert(id, "s" + std::to_string(id),
                          Attr(main_, rng.Uniform(0.0, 99.0), 1.0))
                    .ok());
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fs::exists(dir_ / ("shards.pages.shard" + std::to_string(i))))
        << "shard " << i;
  }
  const auto answer =
      db.QueryRange(geo::Polygon::Rectangle(0.0, -5.0, 100.0, 5.0), 0.5);
  EXPECT_EQ(answer.must.size() + answer.may.size(), 100u);
}

}  // namespace
}  // namespace modb::db
