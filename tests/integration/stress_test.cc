// Randomized end-to-end stress test: random grid networks, vehicles with
// routing-graph-planned multi-route journeys and random policies, a lossy
// channel, a mid-run snapshot round-trip — every database answer is checked
// against simulation ground truth and against the linear-scan baseline.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "db/mod_database.h"
#include "db/snapshot.h"
#include "geo/routing.h"
#include "sim/fleet.h"
#include "sim/itinerary.h"
#include "sim/speed_curve.h"
#include "util/rng.h"

namespace modb {
namespace {

core::PolicyKind RandomPolicy(util::Rng& rng) {
  static constexpr core::PolicyKind kKinds[] = {
      core::PolicyKind::kDelayedLinear,
      core::PolicyKind::kAverageImmediateLinear,
      core::PolicyKind::kCurrentImmediateLinear,
      core::PolicyKind::kFixedThreshold,
      core::PolicyKind::kHybridAdaptive,
      core::PolicyKind::kStepThreshold,
  };
  return kKinds[rng.UniformInt(0, 5)];
}

class StressTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, FullPipelineInvariants) {
  util::Rng rng(GetParam());

  // Random grid network.
  const auto rows = static_cast<std::size_t>(rng.UniformInt(3, 6));
  const auto cols = static_cast<std::size_t>(rng.UniformInt(3, 6));
  const double spacing = rng.Uniform(20.0, 50.0);
  geo::RouteNetwork network;
  network.AddGridNetwork(rows, cols, spacing);
  const geo::RoutingGraph roads(&network);

  db::ModDatabase db(&network);
  sim::FleetOptions fleet_options;
  fleet_options.message_loss_probability = rng.Uniform(0.0, 0.2);
  fleet_options.seed = GetParam() * 7 + 1;
  sim::FleetSimulator fleet(&db, fleet_options);

  const auto num_vehicles = static_cast<std::size_t>(rng.UniformInt(8, 16));
  sim::CurveGenOptions curve_options;
  curve_options.duration = 40.0;
  for (core::ObjectId id = 0; id < num_vehicles; ++id) {
    core::PolicyConfig policy;
    policy.kind = RandomPolicy(rng);
    policy.update_cost = rng.Uniform(1.0, 10.0);
    policy.max_speed = 1.5;
    policy.fixed_threshold = rng.Uniform(0.5, 3.0);
    policy.step_threshold = rng.Uniform(0.5, 3.0);
    // Half the fleet runs routing-planned multi-route journeys, half
    // single-route trips.
    if (id % 2 == 0) {
      geo::RouteAnchor from;
      geo::RouteAnchor to;
      std::vector<geo::PathLeg> path;
      for (int attempt = 0; attempt < 10 && path.empty(); ++attempt) {
        from.route = static_cast<geo::RouteId>(
            rng.UniformInt(0, static_cast<std::int64_t>(network.size()) - 1));
        from.distance =
            rng.Uniform(0.0, network.route(from.route).Length());
        to.route = static_cast<geo::RouteId>(
            rng.UniformInt(0, static_cast<std::int64_t>(network.size()) - 1));
        to.distance = rng.Uniform(0.0, network.route(to.route).Length());
        const auto candidate = roads.ShortestPath(from, to);
        if (candidate.ok() && !candidate->empty()) path = *candidate;
      }
      ASSERT_FALSE(path.empty());
      fleet.AddVehicle(sim::ItineraryVehicle(
          id,
          sim::MakeItineraryFromPath(network, path, 0.0,
                                     sim::MakeCityCurve(rng, curve_options)),
          core::MakePolicy(policy)));
    } else {
      const auto route_id = static_cast<geo::RouteId>(
          rng.UniformInt(0, static_cast<std::int64_t>(network.size()) - 1));
      const geo::Route& route = network.route(route_id);
      sim::Trip trip(&route, rng.Uniform(0.0, route.Length() * 0.3),
                     core::TravelDirection::kForward, 0.0,
                     sim::MakeHighwayCurve(rng, curve_options));
      fleet.AddVehicle(
          sim::Vehicle(id, std::move(trip), core::MakePolicy(policy)));
    }
  }
  ASSERT_TRUE(fleet.RegisterAll().ok());

  for (core::Time t = 1.0; t <= 40.0; t += 1.0) {
    ASSERT_TRUE(fleet.Step(t).ok());

    if (static_cast<int>(t) % 8 != 0) continue;

    // Invariant 1: every object's true position is inside its uncertainty
    // interval (handled by the fleet's built-in verifier; checked at end).

    // Invariant 2: range answers never miss an object that is safely
    // inside the region, and MUST objects with matching routes really are
    // inside.
    const geo::Polygon region = geo::Polygon::CenteredRectangle(
        {rng.Uniform(0.0, spacing * static_cast<double>(cols - 1)),
         rng.Uniform(0.0, spacing * static_cast<double>(rows - 1))},
        spacing * 0.8, spacing * 0.8);
    const db::RangeAnswer answer = db.QueryRange(region, t);
    const double tolerance = 2.0 * 1.5 * 1.0;
    for (std::size_t i = 0; i < fleet.num_vehicles(); ++i) {
      const sim::VehicleBase& v = fleet.vehicle(i);
      // Skip vehicles whose route-change update is still in flight.
      if (v.GroundTruthRouteIdAt(t) != v.attribute().route) continue;
      const geo::Point2 actual = v.GroundTruthPositionAt(t);
      geo::Box2 shrunk = region.BoundingBox();
      shrunk.Inflate(-tolerance);
      if (!shrunk.Empty() && shrunk.Contains(actual)) {
        const bool found =
            std::binary_search(answer.must.begin(), answer.must.end(),
                               v.id()) ||
            std::binary_search(answer.may.begin(), answer.may.end(), v.id());
        EXPECT_TRUE(found) << "seed " << GetParam() << " object " << v.id()
                           << " missed at t=" << t;
      }
    }

    // Invariant 3: MAY probabilities are proper fractions, aligned with
    // their ids.
    ASSERT_EQ(answer.may.size(), answer.may_probability.size());
    for (double p : answer.may_probability) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }

    // Invariant 4: a snapshot round-trip mid-run reproduces every answer.
    std::stringstream stream;
    ASSERT_TRUE(db::WriteSnapshot(db, stream).ok());
    const auto restored = db::ReadSnapshot(stream);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    const db::RangeAnswer again =
        restored->database->QueryRange(region, t);
    EXPECT_EQ(answer.must, again.must) << "seed " << GetParam();
    EXPECT_EQ(answer.may, again.may) << "seed " << GetParam();
  }

  // The fleet verifier ran every tick: no bound violations beyond the
  // loss-streak allowance.
  EXPECT_LT(fleet.stats().max_bound_excess, 6.0 * 1.5)
      << "seed " << GetParam();
  if (fleet_options.message_loss_probability == 0.0) {
    EXPECT_EQ(fleet.stats().bound_violations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace modb
