// End-to-end integration tests: a fleet of simulated vehicles drives a road
// network, each running its own cost-based update policy; their messages
// flow into the moving-objects database, which answers position and range
// queries. Ground truth comes from the trips, so every DBMS answer can be
// checked against reality:
//   - the actual position always lies inside the returned uncertainty
//     interval (within the tick-discretisation tolerance),
//   - every MUST object is actually in the polygon,
//   - every object actually in the polygon is in MUST or MAY (no false
//     negatives),
//   - the R*-tree path agrees with the linear-scan path.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "db/mod_database.h"
#include "sim/simulator.h"
#include "sim/speed_curve.h"
#include "sim/trip.h"
#include "sim/vehicle.h"
#include "util/rng.h"

namespace modb {
namespace {

struct FleetFixture {
  geo::RouteNetwork network;
  std::vector<sim::Trip> trips;
  std::vector<sim::Vehicle> vehicles;

  explicit FleetFixture(std::uint64_t seed, std::size_t num_vehicles,
                        core::PolicyKind kind) {
    util::Rng rng(seed);
    // A 5x5 street grid, 30 route-distance units apart (larger than any
    // one-hour trip at max speed 1.5 needs per street: streets are 120
    // long).
    network.AddGridNetwork(5, 5, 30.0);
    sim::CurveGenOptions curve_options;
    curve_options.duration = 60.0;

    trips.reserve(num_vehicles);
    for (std::size_t i = 0; i < num_vehicles; ++i) {
      const geo::RouteId route = static_cast<geo::RouteId>(
          rng.UniformInt(0, static_cast<std::int64_t>(network.size()) - 1));
      const geo::Route& r = network.route(route);
      sim::SpeedCurve curve;
      switch (i % 3) {
        case 0:
          curve = sim::MakeHighwayCurve(rng, curve_options);
          break;
        case 1:
          curve = sim::MakeCityCurve(rng, curve_options);
          break;
        default:
          curve = sim::MakeTrafficJamCurve(rng, curve_options);
          break;
      }
      const bool forward = rng.Bernoulli(0.5);
      const double start =
          forward ? rng.Uniform(0.0, r.Length() * 0.2)
                  : rng.Uniform(r.Length() * 0.8, r.Length());
      trips.emplace_back(&r, start,
                         forward ? core::TravelDirection::kForward
                                 : core::TravelDirection::kBackward,
                         0.0, std::move(curve));
    }
    core::PolicyConfig policy;
    policy.kind = kind;
    policy.update_cost = 5.0;
    policy.max_speed = 1.5;
    policy.fixed_threshold = 1.5;
    vehicles.reserve(num_vehicles);
    for (std::size_t i = 0; i < num_vehicles; ++i) {
      vehicles.emplace_back(static_cast<core::ObjectId>(i), trips[i],
                            core::MakePolicy(policy));
    }
  }

  void Register(db::ModDatabase& db) {
    for (auto& v : vehicles) {
      ASSERT_TRUE(
          db.Insert(v.id(), "veh-" + std::to_string(v.id()),
                    v.InitialAttribute())
              .ok());
    }
  }

  void TickAll(db::ModDatabase& db, core::Time t) {
    for (auto& v : vehicles) {
      if (const auto update = v.Tick(t)) {
        ASSERT_TRUE(db.ApplyUpdate(*update).ok());
      }
    }
  }
};

class EndToEndTest : public testing::TestWithParam<core::PolicyKind> {};

TEST_P(EndToEndTest, PositionAnswersAreSound) {
  FleetFixture fleet(101, 20, GetParam());
  db::ModDatabase db(&fleet.network);
  fleet.Register(db);
  const double tick = 1.0;
  // Twice the max-speed-per-tick: deviation growth plus bound shrinkage
  // within one policy-evaluation interval.
  const double tolerance = 2.0 * 1.5 * tick + 1e-9;
  for (core::Time t = 1.0; t <= 60.0; t += tick) {
    fleet.TickAll(db, t);
    for (const auto& v : fleet.vehicles) {
      const auto answer = db.QueryPosition(v.id(), t);
      ASSERT_TRUE(answer.ok());
      const double actual_s = v.motion().ActualRouteDistanceAt(t);
      // The actual position must lie inside the returned uncertainty
      // interval (modulo the one-tick policy-evaluation slack).
      EXPECT_GE(actual_s, answer->uncertainty.lo - tolerance)
          << "object " << v.id() << " t=" << t;
      EXPECT_LE(actual_s, answer->uncertainty.hi + tolerance)
          << "object " << v.id() << " t=" << t;
      // And the database's deviation bound must hold.
      const double deviation = std::fabs(actual_s - answer->route_distance);
      EXPECT_LE(deviation, answer->deviation_bound + tolerance)
          << "object " << v.id() << " t=" << t;
    }
  }
}

TEST_P(EndToEndTest, RangeQueriesAreSoundAndComplete) {
  FleetFixture fleet(202, 25, GetParam());
  db::ModDatabase db(&fleet.network);
  fleet.Register(db);
  util::Rng rng(303);
  const double tick = 1.0;
  const double tolerance = 1.5 * tick;
  for (core::Time t = 1.0; t <= 60.0; t += tick) {
    fleet.TickAll(db, t);
    if (static_cast<int>(t) % 5 != 0) continue;
    for (int q = 0; q < 3; ++q) {
      const geo::Polygon region = geo::Polygon::CenteredRectangle(
          {rng.Uniform(0.0, 120.0), rng.Uniform(0.0, 120.0)}, 25.0, 20.0);
      const db::RangeAnswer answer = db.QueryRange(region, t);
      // MUST objects are actually inside.
      for (core::ObjectId id : answer.must) {
        const geo::Point2 actual =
            fleet.vehicles[id].motion().ActualPositionAt(t);
        geo::Polygon inflated = region;  // tolerance via containment check
        EXPECT_TRUE(
            region.Contains(actual) ||
            region.BoundingBox().Contains(actual) ||
            [&] {
              geo::Box2 grown = region.BoundingBox();
              grown.Inflate(tolerance);
              return grown.Contains(actual);
            }())
            << "MUST object " << id << " outside at t=" << t;
      }
      // Completeness: an object actually inside (by a safe margin) must be
      // in MUST or MAY.
      for (const auto& v : fleet.vehicles) {
        const geo::Point2 actual = v.motion().ActualPositionAt(t);
        geo::Box2 shrunk = region.BoundingBox();
        shrunk.Inflate(-tolerance);
        if (shrunk.Empty() || !shrunk.Contains(actual)) continue;
        const bool in_must = std::binary_search(answer.must.begin(),
                                                answer.must.end(), v.id());
        const bool in_may =
            std::binary_search(answer.may.begin(), answer.may.end(), v.id());
        EXPECT_TRUE(in_must || in_may)
            << "object " << v.id() << " at t=" << t << " missed";
      }
    }
  }
}

TEST_P(EndToEndTest, IndexKindsAgree) {
  FleetFixture fleet_a(404, 15, GetParam());
  FleetFixture fleet_b(404, 15, GetParam());
  db::ModDatabaseOptions rtree_opts;
  rtree_opts.index_kind = db::IndexKind::kTimeSpaceRTree;
  db::ModDatabaseOptions scan_opts;
  scan_opts.index_kind = db::IndexKind::kLinearScan;
  db::ModDatabase rtree_db(&fleet_a.network, rtree_opts);
  db::ModDatabase scan_db(&fleet_b.network, scan_opts);
  fleet_a.Register(rtree_db);
  fleet_b.Register(scan_db);
  util::Rng rng(505);
  for (core::Time t = 1.0; t <= 40.0; t += 1.0) {
    fleet_a.TickAll(rtree_db, t);
    fleet_b.TickAll(scan_db, t);
    const geo::Polygon region = geo::Polygon::CenteredRectangle(
        {rng.Uniform(0.0, 120.0), rng.Uniform(0.0, 120.0)}, 30.0, 30.0);
    const db::RangeAnswer a = rtree_db.QueryRange(region, t);
    const db::RangeAnswer b = scan_db.QueryRange(region, t);
    EXPECT_EQ(a.must, b.must) << "t=" << t;
    EXPECT_EQ(a.may, b.may) << "t=" << t;
  }
  // Both databases saw the same update stream.
  EXPECT_EQ(rtree_db.log().total_updates(), scan_db.log().total_updates());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EndToEndTest,
    testing::Values(core::PolicyKind::kDelayedLinear,
                    core::PolicyKind::kAverageImmediateLinear,
                    core::PolicyKind::kCurrentImmediateLinear,
                    core::PolicyKind::kFixedThreshold,
                    core::PolicyKind::kHybridAdaptive),
    [](const testing::TestParamInfo<core::PolicyKind>& info) {
      return std::string(core::PolicyKindName(info.param));
    });

TEST(EndToEndScenarioTest, TaxiDispatchStory) {
  // The paper's motivating query: "retrieve the free cabs currently within
  // 1 mile of 33 N. Michigan Ave." — one cab parked next to the customer,
  // one cruising far away.
  geo::RouteNetwork network;
  const geo::RouteId michigan_ave =
      network.AddStraightRoute({0.0, 0.0}, {0.0, 100.0}, "michigan-ave");
  db::ModDatabase db(&network);

  core::PositionAttribute near_cab;
  near_cab.route = michigan_ave;
  near_cab.start_route_distance = 50.0;
  near_cab.start_position = {0.0, 50.0};
  near_cab.speed = 0.0;
  near_cab.update_cost = 5.0;
  near_cab.max_speed = 1.5;
  near_cab.policy = core::PolicyKind::kAverageImmediateLinear;
  ASSERT_TRUE(db.Insert(1, "cab-near", near_cab).ok());

  core::PositionAttribute far_cab = near_cab;
  far_cab.start_route_distance = 95.0;
  far_cab.start_position = {0.0, 95.0};
  ASSERT_TRUE(db.Insert(2, "cab-far", far_cab).ok());

  // Customer at (0, 49); 1-mile disc approximated by a 32-gon.
  const geo::Polygon disc = geo::Polygon::RegularNGon({0.0, 49.0}, 1.0, 32);
  const db::RangeAnswer answer = db.QueryRange(disc, 0.5);
  ASSERT_EQ(answer.must.size() + answer.may.size(), 1u);
  const core::ObjectId found =
      answer.must.empty() ? answer.may[0] : answer.must[0];
  EXPECT_EQ(found, 1u);
}

}  // namespace
}  // namespace modb
