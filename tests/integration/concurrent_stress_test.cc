// Multi-threaded stress test of the sharded database: concurrent writers
// applying dead-reckoning style updates, readers issuing every query form,
// and churn (insert/erase) all at once. Run it under ThreadSanitizer via
// -DMODB_SANITIZE=thread to gate future concurrency work on race
// detection; the assertions here check invariants that survive any legal
// interleaving.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "db/sharded_database.h"
#include "util/rng.h"

namespace modb::db {
namespace {

class ConcurrentStressTest : public testing::Test {
 protected:
  ConcurrentStressTest() {
    for (int i = 0; i < 4; ++i) {
      routes_.push_back(network_.AddStraightRoute(
          {0.0, 25.0 * i}, {500.0, 25.0 * i}, "r" + std::to_string(i)));
    }
  }

  core::PositionAttribute Attr(geo::RouteId route, double s, double v) const {
    core::PositionAttribute attr;
    attr.route = route;
    attr.start_route_distance = s;
    attr.start_position = network_.route(route).PointAt(s);
    attr.speed = v;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  }

  geo::RouteNetwork network_;
  std::vector<geo::RouteId> routes_;
};

TEST_F(ConcurrentStressTest, MixedUpdateQueryChurnWorkload) {
  ShardedModDatabaseOptions options;
  options.num_shards = 8;
  options.num_query_threads = 2;
  ShardedModDatabase db(&network_, options);

  // Stable fleet the writers keep updating (never erased).
  constexpr core::ObjectId kStableObjects = 64;
  for (core::ObjectId id = 0; id < kStableObjects; ++id) {
    ASSERT_TRUE(
        db.Insert(id, "stable", Attr(routes_[id % 4], 10.0, 1.0)).ok());
  }

  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kOpsPerThread = 400;
  std::atomic<int> update_failures{0};
  std::vector<std::thread> threads;

  // Writers: monotone-time updates to the stable fleet. Each object's
  // timestamps come from one writer (id striped by writer index), so every
  // ApplyUpdate must succeed.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      util::Rng rng(1000 + w);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const core::ObjectId id =
            (static_cast<core::ObjectId>(rng.UniformInt(0, 63)) / kWriters) *
                kWriters +
            w;
        if (id >= kStableObjects) continue;
        core::PositionUpdate update;
        update.object = id;
        update.time = 1.0 + op;  // per-writer monotone per object
        update.route = routes_[id % 4];
        const double s = rng.Uniform(0.0, 450.0);
        update.route_distance = s;
        update.position = network_.route(update.route).PointAt(s);
        update.direction = core::TravelDirection::kForward;
        update.speed = rng.Uniform(0.0, 1.4);
        if (!db.ApplyUpdate(update).ok()) update_failures.fetch_add(1);
      }
    });
  }

  // Churn: a private id range per churner, inserted and erased repeatedly.
  threads.emplace_back([&] {
    util::Rng rng(77);
    for (int op = 0; op < kOpsPerThread; ++op) {
      const core::ObjectId id =
          1000 + static_cast<core::ObjectId>(rng.UniformInt(0, 15));
      if (db.GetRecord(id).ok()) {
        (void)db.Erase(id);
      } else {
        (void)db.Insert(id, "churn",
                        Attr(routes_[id % 4], rng.Uniform(0.0, 450.0), 0.5));
      }
    }
  });

  // Readers: every query form; answers must stay structurally sane.
  std::atomic<int> malformed_answers{0};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      util::Rng rng(2000 + r);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const double x0 = rng.Uniform(0.0, 400.0);
        const geo::Polygon region =
            geo::Polygon::Rectangle(x0, -5.0, x0 + 60.0, 80.0);
        const core::Time t = rng.Uniform(0.0, 100.0);
        switch (op % 4) {
          case 0: {
            const RangeAnswer a = db.QueryRange(region, t);
            if (a.may.size() != a.may_probability.size()) {
              malformed_answers.fetch_add(1);
            }
            if (!std::is_sorted(a.must.begin(), a.must.end()) ||
                !std::is_sorted(a.may.begin(), a.may.end())) {
              malformed_answers.fetch_add(1);
            }
            break;
          }
          case 1: {
            const NearestAnswer a =
                db.QueryNearest({x0, rng.Uniform(0.0, 75.0)}, 5, t);
            if (a.items.size() > 5) malformed_answers.fetch_add(1);
            for (std::size_t i = 1; i < a.items.size(); ++i) {
              if (a.items[i - 1].db_distance > a.items[i].db_distance) {
                malformed_answers.fetch_add(1);
              }
            }
            break;
          }
          case 2: {
            const IntervalRangeAnswer a =
                db.QueryRangeInterval(region, t, t + 10.0, 2.0);
            if (!std::includes(a.may.begin(), a.may.end(),
                               a.must_at_some_time.begin(),
                               a.must_at_some_time.end())) {
              malformed_answers.fetch_add(1);
            }
            break;
          }
          case 3: {
            const core::ObjectId id =
                static_cast<core::ObjectId>(rng.UniformInt(0, 63));
            const auto a = db.QueryPosition(id, t);
            if (a.ok() && a->route_distance < 0.0) {
              malformed_answers.fetch_add(1);
            }
            break;
          }
        }
      }
    });
  }

  for (auto& t : threads) t.join();

  EXPECT_EQ(update_failures.load(), 0);
  EXPECT_EQ(malformed_answers.load(), 0);
  // The stable fleet survived the churn untouched.
  EXPECT_GE(db.num_objects(), kStableObjects);
  for (core::ObjectId id = 0; id < kStableObjects; ++id) {
    EXPECT_TRUE(db.GetRecord(id).ok()) << id;
  }
  // Metrics kept exact counts despite concurrency.
  EXPECT_EQ(
      db.metrics().GetCounter("sharded.queries_range")->value() +
          db.metrics().GetCounter("sharded.queries_nearest")->value() +
          db.metrics().GetCounter("sharded.queries_interval")->value() +
          db.metrics().GetCounter("sharded.queries_position")->value(),
      static_cast<std::uint64_t>(kReaders) * kOpsPerThread);
}

TEST_F(ConcurrentStressTest, ParallelBulkLoadThenConcurrentReads) {
  ShardedModDatabaseOptions options;
  options.num_shards = 4;
  options.num_query_threads = 2;
  ShardedModDatabase db(&network_, options);

  std::vector<ShardedModDatabase::BulkObject> batch;
  util::Rng rng(5);
  for (core::ObjectId id = 0; id < 500; ++id) {
    batch.push_back({id, "",
                     Attr(routes_[id % 4], rng.Uniform(0.0, 450.0),
                          rng.Uniform(0.0, 1.2))});
  }
  ASSERT_TRUE(db.BulkInsert(std::move(batch)).ok());
  ASSERT_EQ(db.num_objects(), 500u);

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      util::Rng thread_rng(100 + r);
      for (int q = 0; q < 50; ++q) {
        const double x0 = thread_rng.Uniform(0.0, 400.0);
        const geo::Polygon region =
            geo::Polygon::Rectangle(x0, -5.0, x0 + 50.0, 80.0);
        const RangeAnswer a = db.QueryRange(region, 5.0);
        const RangeAnswer b = db.QueryRange(region, 5.0);
        if (a.must != b.must || a.may != b.may) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);  // no writers -> queries are repeatable
}

// 8 readers racing 1 writer while the group tracker forms, splits and
// re-forms convoys on the write path. Gates the group layer's mutations
// (detection cells, membership, envelope rows, shared metrics) under
// ThreadSanitizer, and checks the final answers byte-for-byte against an
// ungrouped, unsharded replay of the same update stream.
TEST_F(ConcurrentStressTest, GroupTrackedConvoysUnderReaderWriterStress) {
  constexpr std::size_t kConvoys = 3;
  constexpr std::size_t kMembers = 6;
  constexpr int kTicks = 120;
  constexpr int kReaders = 8;

  const auto member_id = [](std::size_t c, std::size_t m) {
    return static_cast<core::ObjectId>(100 * (c + 1) + m);
  };
  // One deterministic update stream, replayed later for the reference:
  // per tick, every member advances 1.0 at declared speed 1.0 (cohesive);
  // one member per convoy periodically defects to route 3 and back, so
  // groups split and re-form while the readers run.
  const auto build_tick = [&](int tick) {
    std::vector<core::PositionUpdate> batch;
    for (std::size_t c = 0; c < kConvoys; ++c) {
      for (std::size_t m = 0; m < kMembers; ++m) {
        const bool defector = m == 0 && (tick / 20) % 2 == 1;
        core::PositionUpdate u;
        u.object = member_id(c, m);
        u.time = 1.0 + tick;
        u.route = defector ? routes_[3] : routes_[c];
        u.route_distance = 1.0 * (1 + tick) + 0.5 * m;
        u.position = network_.route(u.route).PointAt(u.route_distance);
        u.direction = core::TravelDirection::kForward;
        u.speed = 1.0;
        batch.push_back(u);
      }
    }
    return batch;
  };

  ShardedModDatabaseOptions options;
  options.num_shards = 4;
  options.num_query_threads = 2;
  options.db.group_tracking.enabled = true;
  ShardedModDatabase db(&network_, options);
  for (std::size_t c = 0; c < kConvoys; ++c) {
    for (std::size_t m = 0; m < kMembers; ++m) {
      ASSERT_TRUE(db.Insert(member_id(c, m), "convoy",
                            Attr(routes_[c], 0.5 * m, 1.0))
                      .ok());
    }
  }

  std::atomic<int> update_failures{0};
  std::atomic<int> malformed_answers{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int tick = 0; tick < kTicks; ++tick) {
      const auto batch = build_tick(tick);
      if (!db.ApplyUpdateBatch(batch).first_error().ok()) {
        update_failures.fetch_add(1);
      }
    }
  });
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      util::Rng rng(3000 + r);
      for (int op = 0; op < 200; ++op) {
        const double x0 = rng.Uniform(0.0, 400.0);
        const geo::Polygon region =
            geo::Polygon::Rectangle(x0, -5.0, x0 + 60.0, 80.0);
        const core::Time t = rng.Uniform(0.0, 130.0);
        if (op % 3 == 0) {
          const NearestAnswer a =
              db.QueryNearest({x0, rng.Uniform(0.0, 75.0)}, 4, t);
          if (a.items.size() > 4) malformed_answers.fetch_add(1);
          continue;
        }
        if (op % 3 == 1) {
          const IntervalRangeAnswer a =
              db.QueryRangeInterval(region, t, t + 5.0, 2.5);
          if (!std::includes(a.may.begin(), a.may.end(),
                             a.must_at_some_time.begin(),
                             a.must_at_some_time.end())) {
            malformed_answers.fetch_add(1);
          }
          continue;
        }
        const RangeAnswer a = db.QueryRange(region, t);
        if (a.may.size() != a.may_probability.size() ||
            !std::is_sorted(a.must.begin(), a.must.end()) ||
            !std::is_sorted(a.may.begin(), a.may.end())) {
          malformed_answers.fetch_add(1);
        }
        for (core::ObjectId id : a.must) {
          // MUST answers name real member objects, never a group's
          // synthetic envelope id (bit 63).
          if ((id >> 63) != 0) malformed_answers.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(update_failures.load(), 0);
  EXPECT_EQ(malformed_answers.load(), 0);

  // The shards' trackers aggregated their group activity into the shared
  // registry, and the writer's convoys really formed and split.
  EXPECT_GT(db.metrics().GetCounter("mod.group.forms")->value(), 0u);
  EXPECT_GT(db.metrics().GetCounter("mod.group.splits")->value(), 0u);

  // Final answers equal an ungrouped, unsharded replay byte-for-byte.
  ModDatabase reference(&network_);
  for (std::size_t c = 0; c < kConvoys; ++c) {
    for (std::size_t m = 0; m < kMembers; ++m) {
      ASSERT_TRUE(reference.Insert(member_id(c, m), "convoy",
                                   Attr(routes_[c], 0.5 * m, 1.0))
                      .ok());
    }
  }
  for (int tick = 0; tick < kTicks; ++tick) {
    const auto batch = build_tick(tick);
    ASSERT_TRUE(reference.ApplyUpdateBatch(batch).first_error().ok());
  }
  for (const double x0 : {0.0, 60.0, 120.0, 180.0}) {
    const geo::Polygon region =
        geo::Polygon::Rectangle(x0, -5.0, x0 + 70.0, 80.0);
    for (const double t : {5.0, 60.0, 119.0, 125.0}) {
      const RangeAnswer got = db.QueryRange(region, t);
      const RangeAnswer want = reference.QueryRange(region, t);
      EXPECT_EQ(got.must, want.must) << x0 << "@" << t;
      EXPECT_EQ(got.may, want.may) << x0 << "@" << t;
      EXPECT_EQ(got.may_probability, want.may_probability) << x0 << "@" << t;
    }
  }
}

}  // namespace
}  // namespace modb::db
