#include "index/velocity_partitioned_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "index/linear_scan_index.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace modb::index {
namespace {

core::PositionAttribute AttrOnRoute(geo::RouteId route, double start,
                                    double speed, core::Time t0 = 0.0) {
  core::PositionAttribute attr;
  attr.start_time = t0;
  attr.route = route;
  attr.start_route_distance = start;
  attr.speed = speed;
  attr.update_cost = 5.0;
  attr.max_speed = 40.0;
  attr.policy = core::PolicyKind::kAverageImmediateLinear;
  return attr;
}

class VelocityPartitionedIndexTest : public testing::Test {
 protected:
  VelocityPartitionedIndexTest() {
    // Two parallel horizontal streets and one vertical.
    h0_ = network_.AddStraightRoute({0.0, 0.0}, {200.0, 0.0});
    h1_ = network_.AddStraightRoute({0.0, 50.0}, {200.0, 50.0});
    v0_ = network_.AddStraightRoute({100.0, 0.0}, {100.0, 50.0});
  }

  // A three-band index with explicit city-traffic bounds: jam < 2,
  // city < 10, highway above.
  VelocityPartitionedIndex::Options ExplicitBounds() const {
    VelocityPartitionedIndex::Options options;
    options.band_bounds = {2.0, 10.0};
    return options;
  }

  geo::RouteNetwork network_;
  geo::RouteId h0_, h1_, v0_;
};

TEST_F(VelocityPartitionedIndexTest, ExplicitBoundsDefineBands) {
  VelocityPartitionedIndex index(&network_, ExplicitBounds());
  EXPECT_EQ(index.name(), "vp-rtree");
  EXPECT_EQ(index.num_bands(), 3u);
  EXPECT_TRUE(index.banded());
  EXPECT_EQ(index.TargetBand(0.0), 0u);
  EXPECT_EQ(index.TargetBand(1.99), 0u);
  EXPECT_EQ(index.TargetBand(2.0), 1u);  // bounds are exclusive upper ends
  EXPECT_EQ(index.TargetBand(9.0), 1u);
  EXPECT_EQ(index.TargetBand(10.0), 2u);
  EXPECT_EQ(index.TargetBand(35.0), 2u);
}

TEST_F(VelocityPartitionedIndexTest, FastBandsGetNarrowerSlabs) {
  VelocityPartitionedIndex::Options options = ExplicitBounds();
  options.oplane.slab_width = 4.0;
  options.min_slab_width = 0.5;
  VelocityPartitionedIndex index(&network_, options);
  // Band 0 keeps the base slab; faster bands shrink by the speed ratio,
  // clamped to the floor.
  EXPECT_DOUBLE_EQ(index.band_slab_width(0), 4.0);
  EXPECT_DOUBLE_EQ(index.band_slab_width(1), 4.0 * 2.0 / 10.0);
  EXPECT_GE(index.band_slab_width(2), options.min_slab_width);
  EXPECT_LT(index.band_slab_width(2), index.band_slab_width(1));
}

TEST_F(VelocityPartitionedIndexTest, ObjectsLandInTheirSpeedBand) {
  VelocityPartitionedIndex index(&network_, ExplicitBounds());
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 0.0, 0.5)).ok());    // jam
  ASSERT_TRUE(index.Upsert(2, AttrOnRoute(h0_, 10.0, 5.0)).ok());   // city
  ASSERT_TRUE(index.Upsert(3, AttrOnRoute(h1_, 0.0, 30.0)).ok());   // highway
  EXPECT_EQ(index.num_objects(), 3u);
  ASSERT_TRUE(index.BandOf(1).ok());
  EXPECT_EQ(*index.BandOf(1), 0u);
  EXPECT_EQ(*index.BandOf(2), 1u);
  EXPECT_EQ(*index.BandOf(3), 2u);
  EXPECT_EQ(index.band_object_count(0), 1u);
  EXPECT_EQ(index.band_object_count(1), 1u);
  EXPECT_EQ(index.band_object_count(2), 1u);
  EXPECT_FALSE(index.BandOf(99).ok());
}

TEST_F(VelocityPartitionedIndexTest, UnknownRouteIsHandledNotFatal) {
  VelocityPartitionedIndex index(&network_, ExplicitBounds());
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 0.0, 1.0)).ok());
  const std::size_t entries = index.num_entries();

  // Incremental upsert with a bogus route: a surfaced error, index
  // unchanged — including the existing object's state.
  const util::Status s = index.Upsert(2, AttrOnRoute(999, 0.0, 1.0));
  EXPECT_EQ(s.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(index.num_objects(), 1u);
  EXPECT_EQ(index.num_entries(), entries);

  // Same for the packed bulk path: all-or-nothing.
  const util::Status bulk = index.BulkUpsert(
      {{3, AttrOnRoute(h0_, 5.0, 1.0)}, {4, AttrOnRoute(999, 0.0, 1.0)}});
  EXPECT_EQ(bulk.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(index.num_objects(), 1u);
  EXPECT_EQ(index.num_entries(), entries);
}

TEST_F(VelocityPartitionedIndexTest, HysteresisKeepsBoundaryOscillators) {
  VelocityPartitionedIndex index(&network_, ExplicitBounds());
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 0.0, 1.9)).ok());
  EXPECT_EQ(*index.BandOf(1), 0u);
  // 2.1 < 2.0 * (1 + 0.1): inside the hysteresis envelope, stays put.
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 2.0, 2.1, 1.0)).ok());
  EXPECT_EQ(*index.BandOf(1), 0u);
  EXPECT_EQ(index.band_migrations(), 0u);
  // 5.0 is well outside: the object migrates to the city band.
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 4.0, 5.0, 2.0)).ok());
  EXPECT_EQ(*index.BandOf(1), 1u);
  EXPECT_EQ(index.band_migrations(), 1u);
  EXPECT_EQ(index.band_object_count(0), 0u);
  EXPECT_EQ(index.band_object_count(1), 1u);
}

TEST_F(VelocityPartitionedIndexTest, MigratedObjectStaysQueryable) {
  VelocityPartitionedIndex index(&network_, ExplicitBounds());
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 10.0, 1.0)).ok());
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -5.0, 40.0, 5.0);
  ASSERT_EQ(index.Candidates(region, 10.0).size(), 1u);
  // Accelerates onto the highway band: found at its new motion model, the
  // old band holds no stale boxes for it.
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 20.0, 20.0, 10.0)).ok());
  EXPECT_EQ(*index.BandOf(1), 2u);
  EXPECT_EQ(index.band_entry_count(0), 0u);
  const geo::Polygon ahead = geo::Polygon::Rectangle(30.0, -5.0, 60.0, 5.0);
  const auto candidates = index.Candidates(ahead, 11.0);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 1u);
  EXPECT_EQ(index.remove_misses(), 0u);
}

// The delta-batch path must implement a re-band as a full remove+insert
// pair: every old box leaves the source band's tree and the new model's
// boxes land in the target band — no ghost entries, no lost object.
TEST_F(VelocityPartitionedIndexTest, DeltaBatchRebandIsRemovePlusInsert) {
  VelocityPartitionedIndex index(&network_, ExplicitBounds());
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 10.0, 1.0)).ok());
  const std::size_t slow_entries = index.band_entry_count(0);
  ASSERT_GT(slow_entries, 0u);

  // Within the hysteresis envelope: same band, boxes replaced in place.
  const auto wobble = AttrOnRoute(h0_, 12.0, 2.1, 2.0);
  ASSERT_TRUE(index.ApplyDeltaBatch({{1, &wobble}}).ok());
  EXPECT_EQ(*index.BandOf(1), 0u);
  EXPECT_EQ(index.band_migrations(), 0u);
  EXPECT_EQ(index.remove_misses(), 0u);

  // Clear migration: the slow band must end up empty (remove half of the
  // pair) and the highway band must hold the object (insert half).
  const auto fast = AttrOnRoute(h0_, 20.0, 20.0, 4.0);
  ASSERT_TRUE(index.ApplyDeltaBatch({{1, &fast}}).ok());
  EXPECT_EQ(*index.BandOf(1), 2u);
  EXPECT_EQ(index.band_migrations(), 1u);
  EXPECT_EQ(index.remove_misses(), 0u);
  EXPECT_EQ(index.band_entry_count(0), 0u);
  EXPECT_EQ(index.band_object_count(0), 0u);
  EXPECT_GT(index.band_entry_count(2), 0u);
  EXPECT_EQ(index.band_object_count(2), 1u);

  // Queries see exactly the new motion model.
  const auto ahead = index.Candidates(
      geo::Polygon::Rectangle(30.0, -5.0, 80.0, 5.0), 6.0);
  ASSERT_EQ(ahead.size(), 1u);
  const auto behind = index.Candidates(
      geo::Polygon::Rectangle(0.0, -5.0, 15.0, 5.0), 0.0);
  EXPECT_TRUE(behind.empty());
}

// A migration and an erase for the same object inside one batch: the
// remove+insert pair from the re-band must not leave boxes behind for the
// final remove to miss.
TEST_F(VelocityPartitionedIndexTest, DeltaBatchRebandThenRemoveLeavesNothing) {
  VelocityPartitionedIndex index(&network_, ExplicitBounds());
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 10.0, 1.0)).ok());
  ASSERT_TRUE(index.Upsert(2, AttrOnRoute(h1_, 10.0, 5.0)).ok());
  const auto fast = AttrOnRoute(h0_, 20.0, 20.0, 4.0);
  ASSERT_TRUE(
      index.ApplyDeltaBatch({{1, &fast}, {1, nullptr}, {2, nullptr}}).ok());
  EXPECT_EQ(index.num_objects(), 0u);
  EXPECT_EQ(index.num_entries(), 0u);
  EXPECT_EQ(index.remove_misses(), 0u);
  EXPECT_EQ(index.band_migrations(), 1u);
  for (std::size_t b = 0; b < index.num_bands(); ++b) {
    EXPECT_EQ(index.band_object_count(b), 0u) << b;
  }
}

TEST_F(VelocityPartitionedIndexTest, RemoveDropsAllBoxes) {
  VelocityPartitionedIndex index(&network_, ExplicitBounds());
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 0.0, 0.5)).ok());
  ASSERT_TRUE(index.Upsert(2, AttrOnRoute(h0_, 0.0, 30.0)).ok());
  index.Remove(1);
  EXPECT_EQ(index.num_objects(), 1u);
  EXPECT_EQ(index.band_entry_count(0), 0u);
  index.Remove(99);  // unknown: no-op
  EXPECT_EQ(index.num_objects(), 1u);
  EXPECT_EQ(index.remove_misses(), 0u);
}

TEST_F(VelocityPartitionedIndexTest, BulkUpsertDerivesQuantileBounds) {
  VelocityPartitionedIndex::Options options;
  options.num_bands = 3;
  VelocityPartitionedIndex index(&network_, options);
  EXPECT_FALSE(index.banded());
  std::vector<std::pair<core::ObjectId, core::PositionAttribute>> fleet;
  for (core::ObjectId id = 0; id < 30; ++id) {
    // Ten objects each at jam (~0.5), city (~5) and highway (~25) speeds.
    const double speed = id < 10 ? 0.5 : (id < 20 ? 5.0 : 25.0);
    fleet.emplace_back(id, AttrOnRoute(h0_, static_cast<double>(id), speed));
  }
  ASSERT_TRUE(index.BulkUpsert(fleet).ok());
  ASSERT_TRUE(index.banded());
  ASSERT_EQ(index.band_bounds().size(), 2u);
  // The derived quantile bounds separate the three clusters.
  EXPECT_EQ(index.band_object_count(0), 10u);
  EXPECT_EQ(index.band_object_count(1), 10u);
  EXPECT_EQ(index.band_object_count(2), 10u);
}

TEST_F(VelocityPartitionedIndexTest, IncrementalBandingTrigger) {
  VelocityPartitionedIndex::Options options;
  options.num_bands = 2;
  options.banding_trigger = 8;
  VelocityPartitionedIndex index(&network_, options);
  for (core::ObjectId id = 0; id < 7; ++id) {
    const double speed = id % 2 == 0 ? 0.5 : 20.0;
    ASSERT_TRUE(
        index.Upsert(id, AttrOnRoute(h0_, static_cast<double>(id), speed))
            .ok());
  }
  EXPECT_FALSE(index.banded());
  EXPECT_EQ(index.band_object_count(0), 7u);  // everyone in band 0 so far
  ASSERT_TRUE(index.Upsert(7, AttrOnRoute(h0_, 7.0, 20.0)).ok());
  EXPECT_TRUE(index.banded());  // trigger hit: fleet re-banded in place
  EXPECT_EQ(index.band_object_count(0) + index.band_object_count(1), 8u);
  EXPECT_GT(index.band_object_count(1), 0u);
}

TEST_F(VelocityPartitionedIndexTest, BulkLoadIsDeterministic) {
  // Identical fleets presented in different orders must build structurally
  // identical band trees (ascending-id packed input), so recovery replay
  // reproduces the exact index.
  std::vector<std::pair<core::ObjectId, core::PositionAttribute>> fleet;
  util::Rng rng(11);
  for (core::ObjectId id = 0; id < 200; ++id) {
    fleet.emplace_back(
        id, AttrOnRoute(h0_, rng.Uniform(0.0, 100.0), rng.Uniform(0.1, 30.0)));
  }
  auto shuffled = fleet;
  std::reverse(shuffled.begin(), shuffled.end());

  VelocityPartitionedIndex a(&network_, ExplicitBounds());
  VelocityPartitionedIndex b(&network_, ExplicitBounds());
  ASSERT_TRUE(a.BulkUpsert(fleet).ok());
  ASSERT_TRUE(b.BulkUpsert(shuffled).ok());
  ASSERT_EQ(a.num_entries(), b.num_entries());
  for (std::size_t band = 0; band < a.num_bands(); ++band) {
    EXPECT_EQ(a.band_entry_count(band), b.band_entry_count(band)) << band;
  }
  util::Rng qrng(13);
  for (int q = 0; q < 30; ++q) {
    const geo::Polygon region = geo::Polygon::CenteredRectangle(
        {qrng.Uniform(0.0, 200.0), qrng.Uniform(-5.0, 5.0)}, 20.0, 10.0);
    const core::Time t = qrng.Uniform(0.0, 60.0);
    EXPECT_EQ(a.Candidates(region, t), b.Candidates(region, t)) << q;
  }
}

TEST_F(VelocityPartitionedIndexTest, NoFalseNegativesVsLinearScan) {
  // Differential test against the scan baseline on a mixed-speed fleet:
  // the banded candidates must be a superset of every object whose exact
  // uncertainty interval intersects the region.
  util::Rng rng(77);
  VelocityPartitionedIndex banded(&network_, ExplicitBounds());
  LinearScanIndex scan(&network_);
  const std::vector<geo::RouteId> routes = {h0_, h1_, v0_};
  for (core::ObjectId id = 0; id < 80; ++id) {
    const geo::RouteId route =
        routes[static_cast<std::size_t>(rng.UniformInt(0, 2))];
    const double max_start = network_.route(route).Length() * 0.5;
    const int cls = rng.UniformInt(0, 2);
    const double speed = cls == 0 ? rng.Uniform(0.1, 1.5)
                                  : cls == 1 ? rng.Uniform(3.0, 8.0)
                                             : rng.Uniform(12.0, 30.0);
    const auto attr = AttrOnRoute(route, rng.Uniform(0.0, max_start), speed);
    ASSERT_TRUE(banded.Upsert(id, attr).ok());
    ASSERT_TRUE(scan.Upsert(id, attr).ok());
  }
  for (int q = 0; q < 50; ++q) {
    const double cx = rng.Uniform(0.0, 200.0);
    const double cy = rng.Uniform(0.0, 50.0);
    const geo::Polygon region =
        geo::Polygon::CenteredRectangle({cx, cy}, 15.0, 10.0);
    const core::Time t = rng.Uniform(0.0, 30.0);
    const auto from_banded = banded.Candidates(region, t);
    for (core::ObjectId id : scan.Candidates(region, t)) {
      EXPECT_TRUE(
          std::binary_search(from_banded.begin(), from_banded.end(), id))
          << "query " << q << " t=" << t << " missing object " << id;
    }
    // Window queries too.
    const auto window = banded.CandidatesInWindow(region, t, t + 5.0);
    for (core::ObjectId id : scan.CandidatesInWindow(region, t, t + 5.0)) {
      EXPECT_TRUE(std::binary_search(window.begin(), window.end(), id))
          << "window query " << q << " missing object " << id;
    }
  }
}

TEST_F(VelocityPartitionedIndexTest, PoolFanOutMatchesSerial) {
  util::ThreadPool pool(3);
  VelocityPartitionedIndex::Options parallel_options = ExplicitBounds();
  parallel_options.pool = &pool;
  VelocityPartitionedIndex parallel(&network_, parallel_options);
  VelocityPartitionedIndex serial(&network_, ExplicitBounds());
  util::Rng rng(5);
  std::vector<std::pair<core::ObjectId, core::PositionAttribute>> fleet;
  for (core::ObjectId id = 0; id < 120; ++id) {
    fleet.emplace_back(
        id, AttrOnRoute(h0_, rng.Uniform(0.0, 150.0), rng.Uniform(0.1, 30.0)));
  }
  ASSERT_TRUE(parallel.BulkUpsert(fleet).ok());
  ASSERT_TRUE(serial.BulkUpsert(fleet).ok());
  EXPECT_EQ(parallel.num_entries(), serial.num_entries());
  for (int q = 0; q < 25; ++q) {
    const geo::Polygon region = geo::Polygon::CenteredRectangle(
        {rng.Uniform(0.0, 200.0), 0.0}, 25.0, 8.0);
    const core::Time t = rng.Uniform(0.0, 40.0);
    EXPECT_EQ(parallel.Candidates(region, t), serial.Candidates(region, t));
    EXPECT_EQ(parallel.CandidatesInWindow(region, t, t + 10.0),
              serial.CandidatesInWindow(region, t, t + 10.0));
  }
}

TEST_F(VelocityPartitionedIndexTest, PerBandMetrics) {
  util::MetricsRegistry registry;
  VelocityPartitionedIndex index(&network_, ExplicitBounds());
  index.SetMetrics(&registry, "vp.");
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 0.0, 0.5)).ok());
  ASSERT_TRUE(index.Upsert(2, AttrOnRoute(h0_, 10.0, 25.0)).ok());
  EXPECT_EQ(registry.GetGauge("vp.band0.objects")->value(), 1);
  EXPECT_EQ(registry.GetGauge("vp.band2.objects")->value(), 1);
  EXPECT_EQ(registry.GetGauge("vp.band0.entries")->value(),
            static_cast<std::int64_t>(index.band_entry_count(0)));
  EXPECT_EQ(registry.GetGauge("vp.band2.entries")->value(),
            static_cast<std::int64_t>(index.band_entry_count(2)));

  // Migration is counted.
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 5.0, 5.0, 1.0)).ok());
  EXPECT_EQ(registry.GetCounter("vp.band_migrations")->value(), 1u);
  EXPECT_EQ(registry.GetGauge("vp.band0.objects")->value(), 0);
  EXPECT_EQ(registry.GetGauge("vp.band1.objects")->value(), 1);

  // Band probes bump the per-band candidates counters.
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -5.0, 200.0, 5.0);
  const auto candidates = index.Candidates(region, 1.0);
  EXPECT_EQ(candidates.size(), 2u);
  EXPECT_GT(registry.GetCounter("vp.band1.candidates")->value(), 0u);
  EXPECT_GT(registry.GetCounter("vp.band2.candidates")->value(), 0u);

  // Detaching withdraws this index's contribution from the shared gauges.
  index.SetMetrics(nullptr, "");
  EXPECT_EQ(registry.GetGauge("vp.band1.objects")->value(), 0);
  EXPECT_EQ(registry.GetGauge("vp.band2.objects")->value(), 0);
  EXPECT_EQ(registry.GetGauge("vp.band2.entries")->value(), 0);
}

TEST_F(VelocityPartitionedIndexTest, SharedRegistryAggregatesAcrossIndexes) {
  // Two indexes sharing one registry and prefix (the sharded layer): the
  // gauges read as sums of both contributions.
  util::MetricsRegistry registry;
  VelocityPartitionedIndex a(&network_, ExplicitBounds());
  VelocityPartitionedIndex b(&network_, ExplicitBounds());
  a.SetMetrics(&registry, "vp.");
  b.SetMetrics(&registry, "vp.");
  ASSERT_TRUE(a.Upsert(1, AttrOnRoute(h0_, 0.0, 0.5)).ok());
  ASSERT_TRUE(b.Upsert(2, AttrOnRoute(h1_, 0.0, 0.5)).ok());
  EXPECT_EQ(registry.GetGauge("vp.band0.objects")->value(), 2);
  a.SetMetrics(nullptr, "");
  EXPECT_EQ(registry.GetGauge("vp.band0.objects")->value(), 1);
}

}  // namespace
}  // namespace modb::index
