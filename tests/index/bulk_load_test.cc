// Tests of STR bulk loading: RTree3::BulkLoad and the index/database bulk
// paths built on it.

#include <gtest/gtest.h>

#include <algorithm>

#include "index/rtree3.h"
#include "index/timespace_index.h"
#include "util/rng.h"

namespace modb::index {
namespace {

using geo::Box3;

std::vector<std::pair<Box3, RTree3::Value>> RandomEntries(std::size_t n,
                                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<Box3, RTree3::Value>> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0.0, 200.0);
    const double y = rng.Uniform(0.0, 200.0);
    const double t = rng.Uniform(0.0, 200.0);
    entries.emplace_back(Box3(x, y, t, x + rng.Uniform(0.5, 4.0),
                              y + rng.Uniform(0.5, 4.0),
                              t + rng.Uniform(0.5, 4.0)),
                         i);
  }
  return entries;
}

TEST(BulkLoadTest, EmptyAndTiny) {
  RTree3 tree;
  tree.BulkLoad({});
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  tree.BulkLoad(RandomEntries(3, 1));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BulkLoadTest, InvariantsAcrossSizes) {
  for (std::size_t n : {1u, 15u, 16u, 17u, 100u, 1000u, 5000u}) {
    RTree3 tree;
    tree.BulkLoad(RandomEntries(n, n));
    EXPECT_EQ(tree.size(), n);
    EXPECT_TRUE(tree.CheckInvariants().ok())
        << "n=" << n << ": " << tree.CheckInvariants().ToString();
  }
}

TEST(BulkLoadTest, SearchMatchesIncrementalBuild) {
  const auto entries = RandomEntries(2000, 7);
  RTree3 bulk;
  bulk.BulkLoad(entries);
  RTree3 incremental;
  for (const auto& [box, value] : entries) incremental.Insert(box, value);

  util::Rng rng(8);
  for (int q = 0; q < 100; ++q) {
    const double x = rng.Uniform(0.0, 180.0);
    const double y = rng.Uniform(0.0, 180.0);
    const double t = rng.Uniform(0.0, 180.0);
    const Box3 query(x, y, t, x + 20.0, y + 20.0, t + 20.0);
    auto a = bulk.SearchValues(query);
    auto b = incremental.SearchValues(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "query " << q;
  }
}

TEST(BulkLoadTest, PacksTighterThanIncremental) {
  const auto entries = RandomEntries(5000, 3);
  RTree3 bulk;
  bulk.BulkLoad(entries);
  RTree3 incremental;
  for (const auto& [box, value] : entries) incremental.Insert(box, value);
  // STR packs nodes nearly full: fewer nodes for the same data.
  EXPECT_LT(bulk.num_nodes(), incremental.num_nodes());
  EXPECT_LE(bulk.height(), incremental.height());
}

TEST(BulkLoadTest, TreeRemainsMutableAfterBulkLoad) {
  RTree3 tree;
  tree.BulkLoad(RandomEntries(500, 11));
  // Inserts and removals on top of a packed tree keep working.
  const Box3 extra(500.0, 500.0, 500.0, 501.0, 501.0, 501.0);
  tree.Insert(extra, 99999);
  EXPECT_EQ(tree.size(), 501u);
  EXPECT_EQ(tree.SearchValues(extra).size(), 1u);
  EXPECT_TRUE(tree.Remove(extra, 99999));
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), 500u);
}

TEST(BulkLoadTest, ReplacesPreviousContents) {
  RTree3 tree;
  tree.Insert(Box3(0, 0, 0, 1, 1, 1), 1);
  tree.BulkLoad(RandomEntries(10, 13));
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_TRUE(tree.SearchValues(Box3(0, 0, 0, 0.5, 0.5, 0.5)).empty() ||
              tree.size() == 10u);
}

TEST(TimeSpaceBulkUpsertTest, MatchesIncrementalUpserts) {
  geo::RouteNetwork network;
  network.AddGridNetwork(6, 6, 50.0);
  util::Rng rng(17);
  std::vector<std::pair<core::ObjectId, core::PositionAttribute>> objects;
  for (core::ObjectId id = 0; id < 80; ++id) {
    core::PositionAttribute attr;
    attr.route = static_cast<geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(network.size()) - 1));
    attr.start_route_distance =
        rng.Uniform(0.0, network.route(attr.route).Length() * 0.5);
    attr.speed = rng.Uniform(0.1, 1.2);
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    objects.emplace_back(id, attr);
  }
  TimeSpaceIndex bulk(&network);
  bulk.BulkUpsert(objects);
  TimeSpaceIndex incremental(&network);
  for (const auto& [id, attr] : objects) incremental.Upsert(id, attr);

  EXPECT_EQ(bulk.num_objects(), incremental.num_objects());
  EXPECT_EQ(bulk.num_entries(), incremental.num_entries());
  EXPECT_TRUE(bulk.rtree().CheckInvariants().ok());

  for (int q = 0; q < 40; ++q) {
    const geo::Polygon region = geo::Polygon::CenteredRectangle(
        {rng.Uniform(0.0, 250.0), rng.Uniform(0.0, 250.0)}, 30.0, 30.0);
    const core::Time t = rng.Uniform(0.0, 60.0);
    EXPECT_EQ(bulk.Candidates(region, t), incremental.Candidates(region, t))
        << "q=" << q;
  }
}

TEST(TimeSpaceBulkUpsertTest, DeterministicAcrossInputOrder) {
  // Regression: the packed-load input used to be emitted in unordered-map
  // iteration order, so two identical stores bulk-loaded structurally
  // different trees — recovery replay did not reproduce the index. The
  // input is now sorted by id.
  geo::RouteNetwork network;
  network.AddGridNetwork(5, 5, 40.0);
  util::Rng rng(23);
  std::vector<std::pair<core::ObjectId, core::PositionAttribute>> objects;
  for (core::ObjectId id = 0; id < 150; ++id) {
    core::PositionAttribute attr;
    attr.route = static_cast<geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(network.size()) - 1));
    attr.start_route_distance =
        rng.Uniform(0.0, network.route(attr.route).Length() * 0.5);
    attr.speed = rng.Uniform(0.1, 1.2);
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    objects.emplace_back(id, attr);
  }
  auto reversed = objects;
  std::reverse(reversed.begin(), reversed.end());

  TimeSpaceIndex a(&network);
  TimeSpaceIndex b(&network);
  ASSERT_TRUE(a.BulkUpsert(objects).ok());
  ASSERT_TRUE(b.BulkUpsert(reversed).ok());
  EXPECT_EQ(a.rtree().size(), b.rtree().size());
  EXPECT_EQ(a.rtree().num_nodes(), b.rtree().num_nodes());
  EXPECT_EQ(a.rtree().height(), b.rtree().height());
  for (int q = 0; q < 40; ++q) {
    const geo::Polygon region = geo::Polygon::CenteredRectangle(
        {rng.Uniform(0.0, 200.0), rng.Uniform(0.0, 200.0)}, 30.0, 30.0);
    const core::Time t = rng.Uniform(0.0, 60.0);
    EXPECT_EQ(a.Candidates(region, t), b.Candidates(region, t)) << "q=" << q;
  }
}

TEST(TimeSpaceBulkUpsertTest, UnknownRouteFailsWithoutSideEffects) {
  geo::RouteNetwork network;
  const geo::RouteId r = network.AddStraightRoute({0.0, 0.0}, {100.0, 0.0});
  core::PositionAttribute good;
  good.route = r;
  good.start_route_distance = 10.0;
  good.speed = 1.0;
  good.update_cost = 5.0;
  good.max_speed = 1.5;
  good.policy = core::PolicyKind::kAverageImmediateLinear;
  core::PositionAttribute bad = good;
  bad.route = 777;  // no such route

  TimeSpaceIndex index(&network);
  ASSERT_TRUE(index.BulkUpsert({{1, good}}).ok());
  const std::size_t entries = index.num_entries();
  // All rows are validated before anything is touched: the good row in a
  // failing batch must NOT be applied.
  const util::Status s = index.BulkUpsert({{2, good}, {3, bad}});
  EXPECT_EQ(s.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(index.num_objects(), 1u);
  EXPECT_EQ(index.num_entries(), entries);
  EXPECT_TRUE(index.rtree().CheckInvariants().ok());
}

TEST(TimeSpaceBulkUpsertTest, UpdatesAfterBulkLoadWork) {
  geo::RouteNetwork network;
  const geo::RouteId r = network.AddStraightRoute({0.0, 0.0}, {300.0, 0.0});
  core::PositionAttribute attr;
  attr.route = r;
  attr.start_route_distance = 10.0;
  attr.speed = 1.0;
  attr.update_cost = 5.0;
  attr.max_speed = 1.5;
  attr.policy = core::PolicyKind::kAverageImmediateLinear;
  TimeSpaceIndex index(&network);
  index.BulkUpsert({{1, attr}, {2, attr}});
  // A later single-object upsert replaces only that object's plane.
  attr.start_time = 50.0;
  attr.start_route_distance = 200.0;
  index.Upsert(1, attr);
  EXPECT_EQ(index.num_objects(), 2u);
  EXPECT_TRUE(index.rtree().CheckInvariants().ok());
  const geo::Polygon near_start =
      geo::Polygon::Rectangle(0.0, -1.0, 40.0, 1.0);
  const auto candidates = index.Candidates(near_start, 55.0);
  // Object 1 moved away; object 2's stale plane still covers the region
  // only within its own horizon — at t=55 object 2's database position is
  // at 65, uncertainty small, so neither appears... but the index is only
  // a candidate filter; we assert object 1 is definitely not reported at
  // its old anchor once re-upserted far away.
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), 1u) ==
              candidates.end());
}

}  // namespace
}  // namespace modb::index
