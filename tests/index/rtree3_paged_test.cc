#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "geo/box.h"
#include "index/rtree3.h"
#include "util/rng.h"

namespace modb::index {
namespace {

namespace fs = std::filesystem;

// Property: an RTree3 on disk-backed pages behind a bounded buffer pool
// answers every query byte-identically to the historical all-in-memory
// tree — the storage layer is allowed to change cost, never answers.

geo::Box3 RandomBox(util::Rng& rng) {
  const double x = rng.Uniform(0.0, 1000.0);
  const double y = rng.Uniform(0.0, 1000.0);
  const double t = rng.Uniform(0.0, 120.0);
  return geo::Box3(x, y, t, x + rng.Uniform(0.1, 30.0),
                   y + rng.Uniform(0.1, 30.0), t + rng.Uniform(0.1, 10.0));
}

std::vector<RTree3::Value> Sorted(std::vector<RTree3::Value> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class PagedRTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("modb_paged_rtree_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  RTree3::Options PagedOptions(std::size_t pool_pages) const {
    RTree3::Options options;
    options.storage.kind = storage::StorageKind::kDisk;
    options.storage.path = (dir_ / "tree.pages").string();
    options.storage.pool_pages = pool_pages;
    return options;
  }

  fs::path dir_;
};

TEST_F(PagedRTreeTest, RandomWorkloadsMatchInMemoryTree) {
  // Three seeds x (insert / remove / search) against a pool far smaller
  // than the tree, so queries continuously fault pages in and out.
  for (const std::uint64_t seed : {7u, 101u, 90210u}) {
    util::Rng rng(seed);
    RTree3 mem;
    RTree3 paged(PagedOptions(/*pool_pages=*/8));

    std::vector<std::pair<geo::Box3, RTree3::Value>> live;
    for (int step = 0; step < 600; ++step) {
      const double dice = rng.Uniform(0.0, 1.0);
      if (dice < 0.65 || live.empty()) {
        const geo::Box3 box = RandomBox(rng);
        const auto value = static_cast<RTree3::Value>(step);
        mem.Insert(box, value);
        paged.Insert(box, value);
        live.emplace_back(box, value);
      } else if (dice < 0.85) {
        const std::size_t victim = static_cast<std::size_t>(
            rng.Uniform(0.0, static_cast<double>(live.size())));
        const auto [box, value] = live[std::min(victim, live.size() - 1)];
        EXPECT_TRUE(mem.Remove(box, value));
        EXPECT_TRUE(paged.Remove(box, value));
        live.erase(live.begin() +
                   static_cast<std::ptrdiff_t>(std::min(victim, live.size() - 1)));
      } else {
        const geo::Box3 query = RandomBox(rng);
        EXPECT_EQ(Sorted(mem.SearchValues(query)),
                  Sorted(paged.SearchValues(query)))
            << "seed " << seed << " step " << step;
      }
    }
    ASSERT_TRUE(paged.storage_status().ok())
        << paged.storage_status().ToString();
    ASSERT_TRUE(mem.CheckInvariants().ok());
    ASSERT_TRUE(paged.CheckInvariants().ok())
        << paged.CheckInvariants().ToString();
    EXPECT_EQ(mem.size(), paged.size());
    EXPECT_EQ(mem.height(), paged.height());
    EXPECT_EQ(mem.num_nodes(), paged.num_nodes());

    // Full-extent query: the complete stored sets are identical.
    const geo::Box3 everything(-1e9, -1e9, -1e9, 1e9, 1e9, 1e9);
    EXPECT_EQ(Sorted(mem.SearchValues(everything)),
              Sorted(paged.SearchValues(everything)));
    // The tiny pool really was under pressure.
    EXPECT_GT(paged.pool_stats().evictions, 0u) << "seed " << seed;
    EXPECT_LE(paged.pool_frames(), 8u + 4u)
        << "pool should stay near its cap (allowing pinned overflow)";
  }
}

TEST_F(PagedRTreeTest, BulkLoadMatchesInMemoryTree) {
  util::Rng rng(424242);
  std::vector<std::pair<geo::Box3, RTree3::Value>> entries;
  for (int i = 0; i < 800; ++i) {
    entries.emplace_back(RandomBox(rng), static_cast<RTree3::Value>(i));
  }
  RTree3 mem;
  RTree3 paged(PagedOptions(/*pool_pages=*/8));
  mem.BulkLoad(entries);
  paged.BulkLoad(std::move(entries));
  ASSERT_TRUE(paged.storage_status().ok());
  ASSERT_TRUE(paged.CheckInvariants().ok())
      << paged.CheckInvariants().ToString();
  EXPECT_EQ(mem.size(), paged.size());
  EXPECT_EQ(mem.height(), paged.height());
  EXPECT_EQ(mem.num_nodes(), paged.num_nodes());

  util::Rng qrng(5);
  for (int q = 0; q < 100; ++q) {
    const geo::Box3 query = RandomBox(qrng);
    EXPECT_EQ(Sorted(mem.SearchValues(query)), Sorted(paged.SearchValues(query)))
        << "query " << q;
  }
}

TEST_F(PagedRTreeTest, FlushCommitsAndClearRecovers) {
  RTree3 paged(PagedOptions(/*pool_pages=*/4));
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    paged.Insert(RandomBox(rng), static_cast<RTree3::Value>(i));
  }
  ASSERT_TRUE(paged.FlushStorage().ok());
  EXPECT_GT(paged.pool_stats().writebacks, 0u);
  ASSERT_TRUE(paged.storage_status().ok());
  EXPECT_EQ(paged.size(), 200u);

  // Clear resets the page store to a fresh generation; the tree is usable
  // again immediately.
  paged.Clear();
  EXPECT_EQ(paged.size(), 0u);
  paged.Insert(RandomBox(rng), 1);
  EXPECT_EQ(paged.size(), 1u);
  ASSERT_TRUE(paged.CheckInvariants().ok());
}

TEST_F(PagedRTreeTest, PageFitValidationPoisonsOversizedFanout) {
  // max_entries+1 entries must fit one page (an overfull node can be
  // evicted between insert and split). 512-byte pages cannot hold a
  // 64-way node, and the tree must refuse cleanly instead of corrupting.
  RTree3::Options options = PagedOptions(/*pool_pages=*/4);
  options.max_entries = 64;
  options.min_entries = 26;
  options.storage.page_size = 512;
  RTree3 tree(options);
  EXPECT_FALSE(tree.storage_status().ok());
  tree.Insert(geo::Box3(0, 0, 0, 1, 1, 1), 7);  // no-op under poison
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(
      tree.SearchValues(geo::Box3(-10, -10, -10, 10, 10, 10)).empty());
}

}  // namespace
}  // namespace modb::index
