// Randomized differential suite for the packed SoA intersection kernel:
// the batched branch-free compare must agree with geo::Box3::Intersects
// box-for-box, including degenerate (zero-extent) boxes and exactly
// touching faces, and the SoA-node tree must answer queries identically to
// a tree running the legacy configuration.

#include "index/soa_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "geo/box.h"
#include "index/rtree3.h"
#include "util/rng.h"

namespace modb::index {
namespace {

using geo::Box3;

struct SoAColumns {
  std::vector<double> min_x, min_y, min_t, max_x, max_y, max_t;

  void Push(const Box3& b) {
    min_x.push_back(b.min[0]);
    min_y.push_back(b.min[1]);
    min_t.push_back(b.min[2]);
    max_x.push_back(b.max[0]);
    max_y.push_back(b.max[1]);
    max_t.push_back(b.max[2]);
  }
  std::size_t size() const { return min_x.size(); }
};

std::vector<std::uint32_t> RunKernel(const SoAColumns& c, const Box3& query) {
  std::vector<std::uint32_t> hits(c.size());
  const std::size_t n = soa::IntersectBoxes(
      c.min_x.data(), c.min_y.data(), c.min_t.data(), c.max_x.data(),
      c.max_y.data(), c.max_t.data(), c.size(), query, hits.data());
  hits.resize(n);
  return hits;
}

std::vector<std::uint32_t> RunScalar(const std::vector<Box3>& boxes,
                                     const Box3& query) {
  std::vector<std::uint32_t> hits;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(query)) {
      hits.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return hits;
}

// A random non-empty box. Coordinates are quantized to a 0.25 grid so
// exactly-touching and exactly-equal faces occur constantly, and roughly a
// third of the boxes are degenerate in at least one dimension (zero
// extent — points, segments, and slabs are all legal non-empty boxes).
Box3 RandomBox(util::Rng& rng) {
  auto q = [&](double lo, double hi) {
    return std::round(rng.Uniform(lo, hi) * 4.0) / 4.0;
  };
  double lo[3];
  double hi[3];
  for (int d = 0; d < 3; ++d) {
    lo[d] = q(0.0, 100.0);
    const double extent = rng.Bernoulli(0.33) ? 0.0 : q(0.0, 10.0);
    hi[d] = lo[d] + extent;
  }
  return Box3(lo[0], lo[1], lo[2], hi[0], hi[1], hi[2]);
}

TEST(SoAKernelTest, MatchesScalarIntersectsOnRandomBoxes) {
  util::Rng rng(20260808);
  constexpr std::size_t kBoxes = 12000;
  std::vector<Box3> boxes;
  SoAColumns columns;
  for (std::size_t i = 0; i < kBoxes; ++i) {
    const Box3 b = RandomBox(rng);
    boxes.push_back(b);
    columns.Push(b);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const Box3 query = RandomBox(rng);
    EXPECT_EQ(RunKernel(columns, query), RunScalar(boxes, query))
        << "trial " << trial;
  }
}

TEST(SoAKernelTest, TouchingFacesIntersect) {
  // Closed-interval semantics: sharing a face, an edge, or a corner is an
  // intersection; any strict gap, in any one dimension, is not.
  const Box3 base(0.0, 0.0, 0.0, 1.0, 1.0, 1.0);
  SoAColumns columns;
  std::vector<Box3> boxes = {
      Box3(1.0, 0.0, 0.0, 2.0, 1.0, 1.0),  // shares the x = 1 face
      Box3(1.0, 1.0, 0.0, 2.0, 2.0, 1.0),  // shares an edge
      Box3(1.0, 1.0, 1.0, 2.0, 2.0, 2.0),  // shares one corner point
      Box3(1.0, 1.0, 1.0, 1.0, 1.0, 1.0),  // degenerate point on the corner
      Box3(1.0 + 1e-12, 0.0, 0.0, 2.0, 1.0, 1.0),  // strict gap in x
      Box3(0.0, 0.0, -1.0, 1.0, 1.0, -1e-12),      // strict gap in t
  };
  for (const Box3& b : boxes) columns.Push(b);
  const std::vector<std::uint32_t> expected = {0, 1, 2, 3};
  EXPECT_EQ(RunKernel(columns, base), expected);
  EXPECT_EQ(RunKernel(columns, base), RunScalar(boxes, base));
}

TEST(SoAKernelTest, EmptyInputYieldsNoHits) {
  SoAColumns columns;
  EXPECT_TRUE(RunKernel(columns, Box3(0, 0, 0, 1, 1, 1)).empty());
}

// Tree-level differential: the resident SoA/copy-on-write tree and a tree
// running the legacy in-place configuration must answer every query with
// the same value multiset through an interleaved insert/remove workload.
TEST(SoAKernelTest, ResidentTreeMatchesLegacyTree) {
  RTree3 resident;  // defaults: resident, concurrent reads on
  RTree3::Options legacy_options;
  legacy_options.concurrent_reads = false;
  RTree3 legacy(legacy_options);
  ASSERT_TRUE(resident.concurrent_reads());
  ASSERT_FALSE(legacy.concurrent_reads());

  util::Rng rng(7);
  std::vector<std::pair<Box3, RTree3::Value>> live;
  for (int step = 0; step < 4000; ++step) {
    if (!live.empty() && rng.Bernoulli(0.35)) {
      const std::size_t victim = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      const auto [box, value] = live[victim];
      EXPECT_TRUE(resident.Remove(box, value));
      EXPECT_TRUE(legacy.Remove(box, value));
      live[victim] = live.back();
      live.pop_back();
    } else {
      const Box3 box = RandomBox(rng);
      const auto value = static_cast<RTree3::Value>(step);
      resident.Insert(box, value);
      legacy.Insert(box, value);
      live.emplace_back(box, value);
    }
    if (step % 250 == 0) {
      const Box3 query = RandomBox(rng);
      std::vector<RTree3::Value> a = resident.SearchValues(query);
      std::vector<RTree3::Value> b = legacy.SearchValues(query);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "step " << step;
    }
  }
  EXPECT_EQ(resident.size(), legacy.size());
  ASSERT_TRUE(resident.CheckInvariants().ok());
  ASSERT_TRUE(legacy.CheckInvariants().ok());

  // Full-universe queries agree after the workload too.
  const Box3 everything(-1e9, -1e9, -1e9, 1e9, 1e9, 1e9);
  std::vector<RTree3::Value> a = resident.SearchValues(everything);
  std::vector<RTree3::Value> b = legacy.SearchValues(everything);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), live.size());
}

}  // namespace
}  // namespace modb::index
