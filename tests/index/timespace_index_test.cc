#include "index/timespace_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "index/linear_scan_index.h"
#include "util/rng.h"

namespace modb::index {
namespace {

core::PositionAttribute AttrOnRoute(geo::RouteId route, double start,
                                    double speed, core::Time t0 = 0.0) {
  core::PositionAttribute attr;
  attr.start_time = t0;
  attr.route = route;
  attr.start_route_distance = start;
  attr.speed = speed;
  attr.update_cost = 5.0;
  attr.max_speed = 1.5;
  attr.policy = core::PolicyKind::kAverageImmediateLinear;
  return attr;
}

class TimeSpaceIndexTest : public testing::Test {
 protected:
  TimeSpaceIndexTest() {
    // Two parallel horizontal streets and one vertical.
    h0_ = network_.AddStraightRoute({0.0, 0.0}, {200.0, 0.0});
    h1_ = network_.AddStraightRoute({0.0, 50.0}, {200.0, 50.0});
    v0_ = network_.AddStraightRoute({100.0, 0.0}, {100.0, 50.0});
  }

  geo::RouteNetwork network_;
  geo::RouteId h0_, h1_, v0_;
};

TEST_F(TimeSpaceIndexTest, UpsertAndCandidates) {
  TimeSpaceIndex index(&network_);
  index.Upsert(1, AttrOnRoute(h0_, 10.0, 1.0));
  index.Upsert(2, AttrOnRoute(h1_, 10.0, 1.0));
  EXPECT_EQ(index.num_objects(), 2u);
  EXPECT_GT(index.num_entries(), 0u);

  // Query around (20, 0) at t=10: object 1 should be a candidate, object 2
  // travels 50 units north of it.
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -5.0, 40.0, 5.0);
  const auto candidates = index.Candidates(region, 10.0);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 1u);
}

TEST_F(TimeSpaceIndexTest, UpsertReplacesOldPlane) {
  TimeSpaceIndex index(&network_);
  index.Upsert(1, AttrOnRoute(h0_, 10.0, 1.0));
  const std::size_t entries_before = index.num_entries();
  // The object reports from the vertical street; the old o-plane must be
  // gone (paper §4.2 update processing).
  index.Upsert(1, AttrOnRoute(v0_, 0.0, 1.0, 50.0));
  EXPECT_EQ(index.num_objects(), 1u);
  EXPECT_EQ(index.num_entries(), entries_before);
  const geo::Polygon old_region =
      geo::Polygon::Rectangle(0.0, -5.0, 40.0, 5.0);
  EXPECT_TRUE(index.Candidates(old_region, 55.0).empty());
  const geo::Polygon new_region =
      geo::Polygon::Rectangle(95.0, 0.0, 105.0, 20.0);
  EXPECT_EQ(index.Candidates(new_region, 55.0).size(), 1u);
}

TEST_F(TimeSpaceIndexTest, RemoveDeletesAllBoxes) {
  TimeSpaceIndex index(&network_);
  index.Upsert(1, AttrOnRoute(h0_, 10.0, 1.0));
  index.Remove(1);
  EXPECT_EQ(index.num_objects(), 0u);
  EXPECT_EQ(index.num_entries(), 0u);
  EXPECT_TRUE(index.rtree().CheckInvariants().ok());
  // Removing a missing object is a no-op.
  index.Remove(99);
}

TEST_F(TimeSpaceIndexTest, FutureQueriesWithinHorizon) {
  TimeSpaceIndex::Options options;
  options.oplane.horizon = 100.0;
  options.oplane.slab_width = 5.0;
  TimeSpaceIndex index(&network_, options);
  index.Upsert(1, AttrOnRoute(h0_, 0.0, 1.0));
  // At t=80 the database position is x=80.
  const geo::Polygon region = geo::Polygon::Rectangle(70.0, -5.0, 90.0, 5.0);
  EXPECT_EQ(index.Candidates(region, 80.0).size(), 1u);
  // A region the object has long passed yields nothing at t=80 (the
  // uncertainty interval of ail shrinks, so the old stretch is excluded).
  const geo::Polygon passed = geo::Polygon::Rectangle(0.0, -5.0, 20.0, 5.0);
  EXPECT_TRUE(index.Candidates(passed, 80.0).empty());
}

TEST_F(TimeSpaceIndexTest, CandidatesAreDeduplicated) {
  TimeSpaceIndex::Options options;
  options.oplane.slab_width = 1.0;  // many boxes per object
  TimeSpaceIndex index(&network_, options);
  index.Upsert(1, AttrOnRoute(h0_, 10.0, 0.0));  // parked: boxes overlap
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -5.0, 40.0, 5.0);
  const auto candidates = index.Candidates(region, 10.0);
  EXPECT_EQ(candidates.size(), 1u);
}

TEST_F(TimeSpaceIndexTest, LinearScanAgreesWithRTree) {
  // Differential test against the scan baseline: the R*-tree candidates
  // must be a superset of every object whose exact uncertainty interval
  // intersects the region (no false negatives).
  util::Rng rng(77);
  TimeSpaceIndex rtree(&network_);
  LinearScanIndex scan(&network_);
  const std::vector<geo::RouteId> routes = {h0_, h1_, v0_};
  for (core::ObjectId id = 0; id < 60; ++id) {
    const geo::RouteId route =
        routes[static_cast<std::size_t>(rng.UniformInt(0, 2))];
    const double max_start = network_.route(route).Length() * 0.5;
    const auto attr = AttrOnRoute(route, rng.Uniform(0.0, max_start),
                                  rng.Uniform(0.2, 1.2));
    rtree.Upsert(id, attr);
    scan.Upsert(id, attr);
  }
  for (int q = 0; q < 50; ++q) {
    const double cx = rng.Uniform(0.0, 200.0);
    const double cy = rng.Uniform(0.0, 50.0);
    const geo::Polygon region =
        geo::Polygon::CenteredRectangle({cx, cy}, 15.0, 10.0);
    const core::Time t = rng.Uniform(0.0, 60.0);
    const auto from_tree = rtree.Candidates(region, t);
    const auto from_scan = scan.Candidates(region, t);
    // Every scan candidate (exact-interval bbox test) must appear in the
    // tree candidates.
    for (core::ObjectId id : from_scan) {
      EXPECT_TRUE(std::binary_search(from_tree.begin(), from_tree.end(), id))
          << "query " << q << " t=" << t << " missing object " << id;
    }
  }
}

TEST_F(TimeSpaceIndexTest, UnknownRouteUpsertIsHandledError) {
  // Regression: this used to be an assert-guarded dereference — release
  // builds walked straight into undefined behaviour on an unknown route.
  TimeSpaceIndex index(&network_);
  ASSERT_TRUE(index.Upsert(1, AttrOnRoute(h0_, 10.0, 1.0)).ok());
  const std::size_t entries = index.num_entries();

  const util::Status s = index.Upsert(2, AttrOnRoute(999, 0.0, 1.0));
  EXPECT_EQ(s.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(index.num_objects(), 1u);
  EXPECT_EQ(index.num_entries(), entries);

  // The existing object is untouched even when *it* reports a bad route.
  const util::Status s2 = index.Upsert(1, AttrOnRoute(999, 0.0, 1.0));
  EXPECT_EQ(s2.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(index.num_entries(), entries);
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -5.0, 40.0, 5.0);
  EXPECT_EQ(index.Candidates(region, 10.0).size(), 1u);
}

TEST_F(TimeSpaceIndexTest, RemoveMissIsSurfacedNotSwallowed) {
  // Regression: a failed box removal during an upsert was an assert that
  // release builds compiled out, silently leaking a stale ghost box. Now
  // it is counted. Provoke the invariant breach by deleting one of the
  // object's boxes behind the bookkeeping's back.
  util::MetricsRegistry registry;
  TimeSpaceIndex index(&network_);
  index.SetMetrics(&registry, "index.");
  const auto attr = AttrOnRoute(h0_, 10.0, 1.0);
  ASSERT_TRUE(index.Upsert(1, attr).ok());
  EXPECT_EQ(index.remove_misses(), 0u);

  const std::vector<geo::Box3> boxes =
      BuildOPlaneBoxes(attr, network_.route(h0_), index.options().oplane);
  ASSERT_FALSE(boxes.empty());
  ASSERT_TRUE(index.rtree_for_testing().Remove(boxes.front(), 1));

  // The re-upsert tries to drop all recorded boxes; one is already gone.
  const auto moved = AttrOnRoute(h0_, 50.0, 1.0, 5.0);
  ASSERT_TRUE(index.Upsert(1, moved).ok());
  EXPECT_EQ(index.remove_misses(), 1u);
  EXPECT_EQ(registry.GetCounter("index.remove_miss")->value(), 1u);
  // The new plane is fully installed regardless.
  const std::vector<geo::Box3> new_boxes =
      BuildOPlaneBoxes(moved, network_.route(h0_), index.options().oplane);
  EXPECT_EQ(index.num_entries(), new_boxes.size());
}

TEST_F(TimeSpaceIndexTest, NamesAndOptions) {
  TimeSpaceIndex rtree(&network_);
  LinearScanIndex scan(&network_);
  EXPECT_EQ(rtree.name(), "rtree");
  EXPECT_EQ(scan.name(), "scan");
  EXPECT_GT(rtree.options().oplane.horizon, 0.0);
}

TEST_F(TimeSpaceIndexTest, ScanIndexBasics) {
  LinearScanIndex scan(&network_);
  scan.Upsert(1, AttrOnRoute(h0_, 10.0, 1.0));
  scan.Upsert(2, AttrOnRoute(h1_, 10.0, 1.0));
  EXPECT_EQ(scan.num_objects(), 2u);
  EXPECT_EQ(scan.num_entries(), 2u);
  const geo::Polygon region = geo::Polygon::Rectangle(0.0, -5.0, 40.0, 5.0);
  const auto candidates = scan.Candidates(region, 10.0);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 1u);
  scan.Remove(1);
  EXPECT_TRUE(scan.Candidates(region, 10.0).empty());
}

}  // namespace
}  // namespace modb::index
