#include "index/oplane.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.h"

namespace modb::index {
namespace {

geo::Route StraightRoute(double length = 1000.0) {
  return geo::Route(0, geo::Polyline({{0.0, 0.0}, {length, 0.0}}));
}

core::PositionAttribute MakeAttr(
    core::PolicyKind kind = core::PolicyKind::kDelayedLinear) {
  core::PositionAttribute attr;
  attr.start_time = 10.0;
  attr.route = 0;
  attr.start_route_distance = 100.0;
  attr.start_position = {100.0, 0.0};
  attr.speed = 1.0;
  attr.update_cost = 5.0;
  attr.max_speed = 1.5;
  attr.policy = kind;
  return attr;
}

TEST(OPlaneTest, SlabCountMatchesHorizon) {
  const geo::Route route = StraightRoute();
  OPlaneOptions options;
  options.horizon = 60.0;
  options.slab_width = 4.0;
  const auto boxes = BuildOPlaneBoxes(MakeAttr(), route, options);
  EXPECT_EQ(boxes.size(), 15u);
}

TEST(OPlaneTest, PartialSlabAtHorizonEnd) {
  const geo::Route route = StraightRoute();
  OPlaneOptions options;
  options.horizon = 10.0;
  options.slab_width = 4.0;
  const auto boxes = BuildOPlaneBoxes(MakeAttr(), route, options);
  ASSERT_EQ(boxes.size(), 3u);
  EXPECT_DOUBLE_EQ(boxes.back().max[2], 20.0);  // start_time + horizon
}

TEST(OPlaneTest, SlabsTileTimeContiguously) {
  const geo::Route route = StraightRoute();
  OPlaneOptions options;
  options.horizon = 20.0;
  options.slab_width = 5.0;
  const auto boxes = BuildOPlaneBoxes(MakeAttr(), route, options);
  ASSERT_EQ(boxes.size(), 4u);
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_DOUBLE_EQ(boxes[i].min[2], 10.0 + 5.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(boxes[i].max[2], 10.0 + 5.0 * static_cast<double>(i + 1));
  }
}

TEST(OPlaneTest, BoxesCoverUncertaintyIntervalEverywhere) {
  // Soundness: at any time inside a slab, the exact uncertainty interval
  // must lie inside the slab's spatial box — else the index would produce
  // false negatives.
  const geo::Route route = StraightRoute();
  for (core::PolicyKind kind :
       {core::PolicyKind::kDelayedLinear,
        core::PolicyKind::kAverageImmediateLinear,
        core::PolicyKind::kFixedThreshold, core::PolicyKind::kPeriodic}) {
    core::PositionAttribute attr = MakeAttr(kind);
    attr.fixed_threshold = 2.0;
    attr.period = 1.0;
    OPlaneOptions options;
    options.horizon = 40.0;
    options.slab_width = 7.0;  // deliberately not aligned with bound peaks
    const auto boxes = BuildOPlaneBoxes(attr, route, options);
    for (double dt = 0.0; dt <= 40.0; dt += 0.01) {
      const core::Time t = attr.start_time + dt;
      const core::UncertaintyInterval iv =
          core::ComputeUncertainty(attr, route, t);
      // Find the slab containing t (boundary times may be in either slab).
      bool covered = false;
      for (const geo::Box3& box : boxes) {
        if (t < box.min[2] - 1e-12 || t > box.max[2] + 1e-12) continue;
        const geo::Point2 lo = route.PointAt(iv.lo);
        const geo::Point2 hi = route.PointAt(iv.hi);
        if (lo.x >= box.min[0] - 1e-9 && hi.x <= box.max[0] + 1e-9) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << PolicyKindName(kind) << " at dt=" << dt;
      if (!covered) break;
    }
  }
}

TEST(OPlaneTest, PaddingInflatesBoxes) {
  const geo::Route route = StraightRoute();
  OPlaneOptions plain;
  plain.horizon = 8.0;
  plain.slab_width = 8.0;
  OPlaneOptions padded = plain;
  padded.padding = 2.0;
  const auto a = BuildOPlaneBoxes(MakeAttr(), route, plain);
  const auto b = BuildOPlaneBoxes(MakeAttr(), route, padded);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(b[0].min[0], a[0].min[0] - 2.0);
  EXPECT_DOUBLE_EQ(b[0].max[1], a[0].max[1] + 2.0);
}

TEST(OPlaneTest, DegenerateOptionsYieldNothing) {
  const geo::Route route = StraightRoute();
  OPlaneOptions options;
  options.horizon = 0.0;
  EXPECT_TRUE(BuildOPlaneBoxes(MakeAttr(), route, options).empty());
  options.horizon = 10.0;
  options.slab_width = 0.0;
  EXPECT_TRUE(BuildOPlaneBoxes(MakeAttr(), route, options).empty());
}

TEST(OPlaneTest, NarrowSlabsGiveTighterBoxes) {
  // Ablation E7: smaller slab width -> smaller per-box spatial extent.
  const geo::Route route = StraightRoute();
  OPlaneOptions coarse;
  coarse.horizon = 32.0;
  coarse.slab_width = 16.0;
  OPlaneOptions fine = coarse;
  fine.slab_width = 2.0;
  const auto big = BuildOPlaneBoxes(MakeAttr(), route, coarse);
  const auto small = BuildOPlaneBoxes(MakeAttr(), route, fine);
  double max_big = 0.0;
  double max_small = 0.0;
  for (const auto& b : big) max_big = std::max(max_big, b.Extent(0));
  for (const auto& b : small) max_small = std::max(max_small, b.Extent(0));
  EXPECT_LT(max_small, max_big);
  EXPECT_GT(small.size(), big.size());
}

TEST(QuerySlabTest, ZeroThicknessTimeSlice) {
  const geo::Box2 region({0.0, 0.0}, {10.0, 10.0});
  const geo::Box3 slab = QuerySlab(region, 42.0);
  EXPECT_DOUBLE_EQ(slab.min[2], 42.0);
  EXPECT_DOUBLE_EQ(slab.max[2], 42.0);
  EXPECT_DOUBLE_EQ(slab.min[0], 0.0);
  EXPECT_DOUBLE_EQ(slab.max[1], 10.0);
}

}  // namespace
}  // namespace modb::index
