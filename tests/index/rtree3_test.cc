#include "index/rtree3.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace modb::index {
namespace {

using geo::Box3;

Box3 UnitBoxAt(double x, double y, double t) {
  return Box3(x, y, t, x + 1.0, y + 1.0, t + 1.0);
}

TEST(RTree3Test, EmptyTree) {
  RTree3 tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.SearchValues(Box3(0, 0, 0, 100, 100, 100)).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTree3Test, SingleInsertAndSearch) {
  RTree3 tree;
  tree.Insert(UnitBoxAt(5, 5, 5), 42);
  EXPECT_EQ(tree.size(), 1u);
  const auto hits = tree.SearchValues(Box3(4, 4, 4, 6, 6, 6));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  EXPECT_TRUE(tree.SearchValues(Box3(10, 10, 10, 11, 11, 11)).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTree3Test, TouchingBoxesIntersect) {
  RTree3 tree;
  tree.Insert(UnitBoxAt(0, 0, 0), 1);
  // Query sharing only the face x = 1.
  const auto hits = tree.SearchValues(Box3(1, 0, 0, 2, 1, 1));
  EXPECT_EQ(hits.size(), 1u);
}

TEST(RTree3Test, SplitsGrowTheTree) {
  RTree3::Options options;
  options.max_entries = 4;
  options.min_entries = 2;
  RTree3 tree(options);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(UnitBoxAt(i * 2.0, 0.0, 0.0), static_cast<RTree3::Value>(i));
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.height(), 2u);
  EXPECT_GT(tree.num_nodes(), 25u);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
}

TEST(RTree3Test, SearchFindsAllInsertedUnderSplits) {
  RTree3::Options options;
  options.max_entries = 6;
  options.min_entries = 2;
  RTree3 tree(options);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(UnitBoxAt(static_cast<double>(i % 20) * 3.0,
                          static_cast<double>(i / 20) * 3.0, 0.0),
                static_cast<RTree3::Value>(i));
  }
  auto hits = tree.SearchValues(Box3(-1e9, -1e9, -1e9, 1e9, 1e9, 1e9));
  EXPECT_EQ(hits.size(), 200u);
  std::sort(hits.begin(), hits.end());
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], i);
}

TEST(RTree3Test, RemoveExactEntry) {
  RTree3 tree;
  const Box3 box = UnitBoxAt(1, 1, 1);
  tree.Insert(box, 7);
  tree.Insert(UnitBoxAt(3, 3, 3), 8);
  EXPECT_TRUE(tree.Remove(box, 7));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.SearchValues(Box3(0, 0, 0, 2, 2, 2)).empty());
  // Removing again fails.
  EXPECT_FALSE(tree.Remove(box, 7));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTree3Test, RemoveRequiresMatchingValue) {
  RTree3 tree;
  const Box3 box = UnitBoxAt(1, 1, 1);
  tree.Insert(box, 7);
  EXPECT_FALSE(tree.Remove(box, 8));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTree3Test, DuplicateBoxesDistinctValues) {
  RTree3 tree;
  const Box3 box = UnitBoxAt(2, 2, 2);
  tree.Insert(box, 1);
  tree.Insert(box, 2);
  EXPECT_EQ(tree.SearchValues(box).size(), 2u);
  EXPECT_TRUE(tree.Remove(box, 1));
  const auto hits = tree.SearchValues(box);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);
}

TEST(RTree3Test, ClearResets) {
  RTree3 tree;
  for (int i = 0; i < 50; ++i) tree.Insert(UnitBoxAt(i, 0, 0), i);
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.SearchValues(Box3(-1e9, -1e9, -1e9, 1e9, 1e9, 1e9)).empty());
}

TEST(RTree3Test, MoveConstruction) {
  RTree3 tree;
  tree.Insert(UnitBoxAt(0, 0, 0), 1);
  RTree3 moved = std::move(tree);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.SearchValues(UnitBoxAt(0, 0, 0)).size(), 1u);
}

// Reference implementation for the randomized differential test.
class NaiveIndex {
 public:
  void Insert(const Box3& box, RTree3::Value value) {
    entries_.push_back({box, value});
  }
  bool Remove(const Box3& box, RTree3::Value value) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto& [b, v] = entries_[i];
      bool same = v == value;
      for (int d = 0; d < 3 && same; ++d) {
        same = b.min[d] == box.min[d] && b.max[d] == box.max[d];
      }
      if (same) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }
  std::vector<RTree3::Value> Search(const Box3& query) const {
    std::vector<RTree3::Value> out;
    for (const auto& [b, v] : entries_) {
      if (b.Intersects(query)) out.push_back(v);
    }
    return out;
  }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<Box3, RTree3::Value>> entries_;
};

Box3 RandomBox(util::Rng& rng, double extent) {
  const double x = rng.Uniform(0.0, 100.0);
  const double y = rng.Uniform(0.0, 100.0);
  const double t = rng.Uniform(0.0, 100.0);
  return Box3(x, y, t, x + rng.Uniform(0.1, extent),
              y + rng.Uniform(0.1, extent), t + rng.Uniform(0.1, extent));
}

// Differential property test: random inserts/removes/searches agree with a
// linear-scan reference, and the structural invariants hold throughout.
class RTreeDifferentialTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RTreeDifferentialTest, MatchesNaiveReference) {
  util::Rng rng(GetParam());
  RTree3::Options options;
  options.max_entries = 8;
  options.min_entries = 3;
  RTree3 tree(options);
  NaiveIndex naive;
  std::vector<std::pair<Box3, RTree3::Value>> live;
  RTree3::Value next_value = 0;

  for (int step = 0; step < 600; ++step) {
    const double action = rng.Uniform();
    if (action < 0.6 || live.empty()) {
      const Box3 box = RandomBox(rng, 8.0);
      tree.Insert(box, next_value);
      naive.Insert(box, next_value);
      live.push_back({box, next_value});
      ++next_value;
    } else if (action < 0.8) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      const auto [box, value] = live[pick];
      EXPECT_TRUE(tree.Remove(box, value));
      EXPECT_TRUE(naive.Remove(box, value));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const Box3 query = RandomBox(rng, 30.0);
      auto got = tree.SearchValues(query);
      auto want = naive.Search(query);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "step " << step;
    }
    if (step % 100 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << step << ": " << tree.CheckInvariants().ToString();
    }
    ASSERT_EQ(tree.size(), naive.size());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeDifferentialTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(RTree3Test, SublinearSearchTouchesFewNodes) {
  // Indirect sublinearity check: a point query on a large tree must visit
  // far fewer leaf entries than a full scan would. We approximate "visited"
  // by the number of results for a tiny query being tiny while the tree is
  // large and well-formed.
  RTree3 tree;
  for (int i = 0; i < 5000; ++i) {
    const double x = static_cast<double>(i % 100);
    const double y = static_cast<double>(i / 100);
    tree.Insert(Box3(x, y, 0.0, x + 0.5, y + 0.5, 1.0), i);
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const auto hits = tree.SearchValues(Box3(10.1, 10.1, 0.0, 10.4, 10.4, 1.0));
  EXPECT_EQ(hits.size(), 1u);
  EXPECT_GE(tree.height(), 3u);
}

}  // namespace
}  // namespace modb::index
