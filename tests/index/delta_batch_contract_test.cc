#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "geo/polygon.h"
#include "geo/route_network.h"
#include "index/linear_scan_index.h"
#include "index/object_index.h"
#include "index/timespace_index.h"
#include "index/velocity_partitioned_index.h"

namespace modb::index {
namespace {

/// The `ApplyDeltaBatch` validate-all-first contract, uniformly across all
/// three index kinds: a batch with a mid-batch invalid row must fail
/// without touching the index — no prefix of the batch may be applied
/// (regression: the velocity-partitioned index previously lacked this
/// case; the database's group layer now also routes structural rows
/// through the same call and relies on the all-or-nothing behaviour for
/// its rollback).
class DeltaBatchContractTest
    : public testing::TestWithParam<const char*> {
 protected:
  DeltaBatchContractTest() {
    street_ = network_.AddStraightRoute({0.0, 0.0}, {200.0, 0.0});
    avenue_ = network_.AddStraightRoute({0.0, 0.0}, {0.0, 200.0});
  }

  std::unique_ptr<ObjectIndex> MakeIndex() const {
    const std::string kind = GetParam();
    if (kind == "rtree") return std::make_unique<TimeSpaceIndex>(&network_);
    if (kind == "vp-rtree") {
      return std::make_unique<VelocityPartitionedIndex>(&network_);
    }
    return std::make_unique<LinearScanIndex>(&network_);
  }

  core::PositionAttribute Attr(geo::RouteId route, double start,
                               double speed) const {
    core::PositionAttribute attr;
    attr.start_time = 0.0;
    attr.route = route;
    attr.start_route_distance = start;
    attr.start_position = network_.route(route).PointAt(start);
    attr.speed = speed;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  }

  /// Candidate sets over a probe grid — the observable index state.
  std::string Probe(const ObjectIndex& index) const {
    std::string out;
    for (const double x0 : {0.0, 50.0, 120.0}) {
      const geo::Polygon region =
          geo::Polygon::Rectangle(x0, -10.0, x0 + 60.0, 210.0);
      for (const double t : {0.0, 10.0, 40.0}) {
        std::vector<core::ObjectId> ids = index.Candidates(region, t);
        std::sort(ids.begin(), ids.end());
        for (core::ObjectId id : ids) out += std::to_string(id) + ',';
        out += ';';
      }
    }
    return out;
  }

  geo::RouteNetwork network_;
  geo::RouteId street_ = geo::kInvalidRouteId;
  geo::RouteId avenue_ = geo::kInvalidRouteId;
};

TEST_P(DeltaBatchContractTest, MidBatchInvalidRouteLeavesIndexUntouched) {
  auto index = MakeIndex();
  const core::PositionAttribute a = Attr(street_, 10.0, 1.0);
  const core::PositionAttribute b = Attr(avenue_, 20.0, 0.5);
  ASSERT_TRUE(index->ApplyDeltaBatch({{1, &a}, {2, &b}}).ok());
  const std::size_t objects = index->num_objects();
  const std::size_t entries = index->num_entries();
  const std::string before = Probe(*index);

  // Valid rows ahead of and behind the poisoned row: an upsert moving an
  // existing object, a remove, a fresh insert — none may land.
  core::PositionAttribute moved = Attr(street_, 50.0, 1.2);
  core::PositionAttribute invalid = Attr(street_, 5.0, 1.0);
  invalid.route = 777;  // no such route
  core::PositionAttribute fresh = Attr(avenue_, 40.0, 0.8);
  const util::Status status = index->ApplyDeltaBatch(
      {{1, &moved}, {2, nullptr}, {3, &invalid}, {4, &fresh}});
  EXPECT_FALSE(status.ok());

  EXPECT_EQ(index->num_objects(), objects);
  EXPECT_EQ(index->num_entries(), entries);
  EXPECT_EQ(Probe(*index), before);
  // The index still works: the same batch without the poisoned row applies.
  ASSERT_TRUE(
      index->ApplyDeltaBatch({{1, &moved}, {2, nullptr}, {4, &fresh}}).ok());
  EXPECT_EQ(index->num_objects(), objects);  // +1 insert, -1 remove
  EXPECT_NE(Probe(*index), before);
}

TEST_P(DeltaBatchContractTest, InvalidHiddenRowAlsoLeavesIndexUntouched) {
  auto index = MakeIndex();
  if (!index->supports_group_envelopes()) {
    GTEST_SKIP() << "no group-delta extensions";
  }
  const core::PositionAttribute a = Attr(street_, 10.0, 1.0);
  ASSERT_TRUE(index->ApplyDeltaBatch({{1, &a}}).ok());
  const std::string before = Probe(*index);
  // A hidden (state-only) row still names an attribute; an invalid route
  // in it must poison the whole batch like a normal row's would.
  core::PositionAttribute bad = Attr(street_, 12.0, 1.0);
  bad.route = 777;
  core::PositionAttribute good = Attr(street_, 30.0, 1.0);
  IndexDelta hidden_bad{2, &bad, nullptr, true};
  IndexDelta normal_good{3, &good, nullptr, false};
  EXPECT_FALSE(index->ApplyDeltaBatch({normal_good, hidden_bad}).ok());
  EXPECT_EQ(index->num_objects(), 1u);
  EXPECT_EQ(Probe(*index), before);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DeltaBatchContractTest,
                         testing::Values("rtree", "vp-rtree", "scan"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace modb::index
