// Reader/writer stress for the resident R*-tree's copy-on-write / epoch
// read scheme, and for the sharded layer's lock-free probe path built on
// it. The `Concurrent` fixture names put this file inside the
// ThreadSanitizer ctest gate (CMakePresets `Sharded|Concurrent|...`), which
// is where these tests earn their keep: TSan verifies the epoch scheme's
// happens-before edges, the asserts verify MUST-soundness under races.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "db/sharded_database.h"
#include "geo/box.h"
#include "index/rtree3.h"
#include "util/rng.h"

namespace modb::index {
namespace {

using geo::Box3;

Box3 BoxAt(double x, double y, double t, double extent) {
  return Box3(x, y, t, x + extent, y + extent, t + extent);
}

TEST(ConcurrentRTreeReadsTest, ReadersNeverMissStableEntriesUnderWriter) {
  RTree3 tree;
  ASSERT_TRUE(tree.concurrent_reads());

  // Stable population the writer never touches: every concurrent search
  // that covers the whole space must see all of it, in every snapshot.
  constexpr std::uint64_t kStable = 512;
  util::Rng rng(11);
  for (std::uint64_t v = 0; v < kStable; ++v) {
    tree.Insert(BoxAt(rng.Uniform(0.0, 90.0), rng.Uniform(0.0, 90.0),
                      rng.Uniform(0.0, 90.0), 5.0),
                v);
  }

  // Churn population: the writer replaces these in batches, so readers see
  // each replacement atomically — either the old churn boxes or the new
  // ones, never a half-applied batch.
  constexpr std::uint64_t kChurnBase = 1'000'000;
  constexpr std::uint64_t kChurnCount = 64;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::thread writer([&] {
    util::Rng wrng(12);
    std::vector<std::pair<Box3, std::uint64_t>> churn;
    for (int round = 0; round < 400; ++round) {
      RTree3::BatchScope batch(tree);
      for (const auto& [box, value] : churn) {
        ASSERT_TRUE(tree.Remove(box, value));
      }
      churn.clear();
      for (std::uint64_t i = 0; i < kChurnCount; ++i) {
        const Box3 box = BoxAt(wrng.Uniform(0.0, 90.0),
                               wrng.Uniform(0.0, 90.0),
                               wrng.Uniform(0.0, 90.0), 5.0);
        tree.Insert(box, kChurnBase + i);
        churn.emplace_back(box, kChurnBase + i);
      }
    }
    stop.store(true, std::memory_order_release);
  });

  const Box3 everything(-1.0, -1.0, -1.0, 100.0, 100.0, 100.0);
  std::vector<std::thread> readers;
  for (int r = 0; r < 8; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::uint64_t stable_seen = 0;
        std::uint64_t churn_seen = 0;
        tree.Search(everything, [&](const Box3&, std::uint64_t value) {
          if (value < kStable) {
            ++stable_seen;
          } else {
            ++churn_seen;
          }
        });
        // Every snapshot holds the full stable population, and the churn
        // batch is atomic: a snapshot holds exactly 0 or kChurnCount churn
        // entries (0 only before the writer's first publication).
        EXPECT_EQ(stable_seen, kStable);
        EXPECT_TRUE(churn_seen == 0 || churn_seen == kChurnCount)
            << "torn batch: " << churn_seen;
        // Concurrent metric reads are part of the contract under test.
        (void)tree.size();
        (void)tree.splits();
        (void)tree.pool_stats();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);

  // With readers quiesced, the next publication reclaims every retired
  // page: the grace period of each retirement is over, so the epoch scheme
  // must not leak.
  tree.Insert(BoxAt(1.0, 1.0, 1.0, 1.0), kChurnBase + kChurnCount);
  ASSERT_TRUE(tree.Remove(BoxAt(1.0, 1.0, 1.0, 1.0), kChurnBase + kChurnCount));
  EXPECT_EQ(tree.retired_pages(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(ConcurrentRTreeReadsTest, BulkLoadPublishesAtomically) {
  RTree3 tree;
  ASSERT_TRUE(tree.concurrent_reads());
  constexpr std::size_t kPerLoad = 300;

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    util::Rng rng(21);
    for (int round = 0; round < 60; ++round) {
      std::vector<std::pair<Box3, RTree3::Value>> entries;
      for (std::size_t i = 0; i < kPerLoad; ++i) {
        entries.emplace_back(BoxAt(rng.Uniform(0.0, 90.0),
                                   rng.Uniform(0.0, 90.0),
                                   rng.Uniform(0.0, 90.0), 4.0),
                             static_cast<RTree3::Value>(i));
      }
      tree.BulkLoad(std::move(entries));
    }
    stop.store(true, std::memory_order_release);
  });

  const Box3 everything(-1.0, -1.0, -1.0, 100.0, 100.0, 100.0);
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t n = tree.SearchValues(everything).size();
        // A snapshot is a whole bulk load or the initial empty tree.
        EXPECT_TRUE(n == 0 || n == kPerLoad) << "torn bulk load: " << n;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
}

}  // namespace
}  // namespace modb::index

namespace modb::db {
namespace {

// Lock-free probe path of the sharded store under a concurrent writer:
// range answers must stay MUST-sound for objects that are not being
// mutated, while updates stream into every shard.
TEST(ShardedConcurrentLockFreeProbeTest, RangeQueriesSoundUnderWrites) {
  geo::RouteNetwork network;
  const geo::RouteId street =
      network.AddStraightRoute({0.0, 0.0}, {400.0, 0.0}, "street");

  ShardedModDatabaseOptions options;
  options.num_shards = 4;
  options.num_query_threads = 0;  // probe on the caller, races come from us
  ASSERT_TRUE(options.lock_free_index_probes);
  ShardedModDatabase db(&network, options);

  auto attr_at = [&](double s, double v) {
    core::PositionAttribute attr;
    attr.route = street;
    attr.start_route_distance = s;
    attr.start_position = network.route(street).PointAt(s);
    attr.speed = v;
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    return attr;
  };

  // Stationary fleet inside the query region: every answer must contain
  // all of them in MUST, whatever the concurrent writers are doing to the
  // moving fleet.
  constexpr core::ObjectId kStationary = 64;
  for (core::ObjectId id = 0; id < kStationary; ++id) {
    ASSERT_TRUE(db.Insert(id, "s", attr_at(100.0 + id, 0.0)).ok());
  }
  constexpr core::ObjectId kMovingBase = 1000;
  constexpr core::ObjectId kMoving = 64;
  for (core::ObjectId id = 0; id < kMoving; ++id) {
    ASSERT_TRUE(
        db.Insert(kMovingBase + id, "m", attr_at(10.0 + id, 0.5)).ok());
  }

  // x in [80, 320]: the whole stationary fleet is inside, the moving
  // fleet crosses the boundary as the writer streams updates.
  const geo::Polygon region = geo::Polygon::CenteredRectangle(
      {200.0, 0.0}, 120.0, 40.0);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    util::Rng rng(31);
    for (int round = 0; round < 150; ++round) {
      core::PositionUpdate update;
      update.object = kMovingBase + (round % kMoving);
      update.time = 1.0 + round * 0.01;
      update.route = street;
      update.route_distance = rng.Uniform(10.0, 390.0);
      update.position = network.route(street).PointAt(update.route_distance);
      update.direction = core::TravelDirection::kForward;
      update.speed = rng.Uniform(0.1, 1.0);
      ASSERT_TRUE(db.ApplyUpdate(update).ok());
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const RangeAnswer answer = db.QueryRange(region, 2.0);
        std::size_t stationary_must = 0;
        for (core::ObjectId id : answer.must) {
          if (id < kStationary) ++stationary_must;
        }
        EXPECT_EQ(stationary_must, kStationary);
        (void)db.QueryNearest({200.0, 0.0}, 5, 2.0);
        (void)db.QueryRangeInterval(region, 1.0, 3.0, 1.0);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
}

}  // namespace
}  // namespace modb::db
