#include "sim/vehicle.h"

#include <gtest/gtest.h>

#include <cmath>

namespace modb::sim {
namespace {

core::PolicyConfig Config(core::PolicyKind kind, double C = 5.0) {
  core::PolicyConfig config;
  config.kind = kind;
  config.update_cost = C;
  config.max_speed = 1.5;
  return config;
}

TEST(VehicleTest, InitialAttributeWritesAllSubattributes) {
  const geo::Route route(4, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  Trip trip(&route, 10.0, core::TravelDirection::kForward, 2.0,
            SpeedCurve::Constant(1.0, 30.0));
  Vehicle vehicle(9, trip, core::MakePolicy(Config(
                                core::PolicyKind::kDelayedLinear)));
  const core::PositionAttribute attr = vehicle.InitialAttribute();
  EXPECT_DOUBLE_EQ(attr.start_time, 2.0);
  EXPECT_EQ(attr.route, 4u);
  EXPECT_DOUBLE_EQ(attr.start_route_distance, 10.0);
  EXPECT_TRUE(geo::ApproxEqual(attr.start_position, {10.0, 0.0}));
  EXPECT_DOUBLE_EQ(attr.speed, 1.0);  // current speed
  EXPECT_EQ(attr.policy, core::PolicyKind::kDelayedLinear);
  EXPECT_DOUBLE_EQ(attr.update_cost, 5.0);
  EXPECT_DOUBLE_EQ(attr.max_speed, 1.5);
}

TEST(VehicleTest, PeriodicInitialSpeedIsZero) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
            SpeedCurve::Constant(1.0, 30.0));
  Vehicle vehicle(1, trip,
                  core::MakePolicy(Config(core::PolicyKind::kPeriodic)));
  EXPECT_DOUBLE_EQ(vehicle.InitialAttribute().speed, 0.0);
}

TEST(VehicleTest, MaxSpeedFallsBackToCurveMax) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
            SpeedCurve({1.0, 1.3, 0.7}, 1.0));
  core::PolicyConfig config = Config(core::PolicyKind::kDelayedLinear);
  config.max_speed = 0.0;  // unknown
  Vehicle vehicle(1, trip, core::MakePolicy(config));
  EXPECT_DOUBLE_EQ(vehicle.InitialAttribute().max_speed, 1.3);
}

TEST(VehicleTest, NoUpdateWhileOnPrediction) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
            SpeedCurve::Constant(1.0, 30.0));
  Vehicle vehicle(1, trip, core::MakePolicy(Config(
                               core::PolicyKind::kCurrentImmediateLinear)));
  vehicle.InitialAttribute();
  for (double t = 1.0; t <= 30.0; t += 1.0) {
    EXPECT_FALSE(vehicle.Tick(t).has_value()) << "t=" << t;
    EXPECT_DOUBLE_EQ(vehicle.current_deviation(), 0.0);
  }
}

TEST(VehicleTest, StopTriggersUpdateAndResetsDeviation) {
  // Example 1 pattern: declared speed 1, drives 2 minutes, then stops.
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  std::vector<double> speeds(30, 0.0);
  speeds[0] = speeds[1] = 1.0;
  Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
            SpeedCurve(speeds, 1.0));
  Vehicle vehicle(1, trip, core::MakePolicy(Config(
                               core::PolicyKind::kDelayedLinear)));
  vehicle.InitialAttribute();
  std::optional<core::PositionUpdate> update;
  double fired_at = -1.0;
  for (double t = 1.0; t <= 30.0 && !update; t += 1.0) {
    update = vehicle.Tick(t);
    if (update) fired_at = t;
  }
  ASSERT_TRUE(update.has_value());
  // Deviation reaches k_opt = 1.74 between t=3 (dev 1) and t=4 (dev 2).
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
  EXPECT_DOUBLE_EQ(update->route_distance, 2.0);  // the actual position
  EXPECT_DOUBLE_EQ(update->speed, 0.0);           // current speed: stopped
  // The vehicle's mirrored attribute reflects the update.
  EXPECT_DOUBLE_EQ(vehicle.attribute().start_time, 4.0);
  EXPECT_DOUBLE_EQ(vehicle.attribute().speed, 0.0);
  EXPECT_DOUBLE_EQ(vehicle.current_deviation(), 0.0);
  EXPECT_DOUBLE_EQ(vehicle.DeviationAt(5.0), 0.0);
}

TEST(VehicleTest, AilDeclaresAverageSpeed) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {200.0, 0.0}}));
  // Speed 1.5 for 4 minutes, then 0.5: declared 1.5 at start; the deviation
  // grows at rate 1 once the slowdown starts.
  std::vector<double> speeds(30, 0.5);
  for (int i = 0; i < 4; ++i) speeds[i] = 1.5;
  Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
            SpeedCurve(speeds, 1.0));
  Vehicle vehicle(1, trip, core::MakePolicy(Config(
                               core::PolicyKind::kAverageImmediateLinear)));
  vehicle.InitialAttribute();
  std::optional<core::PositionUpdate> update;
  for (double t = 1.0; t <= 30.0 && !update; t += 1.0) {
    update = vehicle.Tick(t);
  }
  ASSERT_TRUE(update.has_value());
  // Declared speed is the average since trip start, strictly between the
  // fast and slow phase speeds.
  EXPECT_GT(update->speed, 0.5);
  EXPECT_LT(update->speed, 1.5);
}

TEST(VehicleTest, SlowAndFastDeviationSides) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  // Declared 1.0 but drives 0.5: actual falls behind -> slow deviation.
  std::vector<double> slow_speeds(10, 0.5);
  SpeedCurve slow_curve(slow_speeds, 1.0);
  Trip slow_trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
                 slow_curve);
  core::PolicyConfig config = Config(core::PolicyKind::kFixedThreshold);
  config.fixed_threshold = 100.0;  // never update
  {
    Vehicle vehicle(1, slow_trip, core::MakePolicy(config));
    core::PositionAttribute attr = vehicle.InitialAttribute();
    EXPECT_DOUBLE_EQ(attr.speed, 0.5);
  }
  // Force a slow deviation by constructing the trip mid-flight: declared
  // speed comes from the curve, so emulate with a two-phase curve instead.
  std::vector<double> speeds(20, 0.25);
  speeds[0] = 1.0;  // declared at start
  Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
            SpeedCurve(speeds, 1.0));
  Vehicle vehicle(1, trip, core::MakePolicy(config));
  vehicle.InitialAttribute();
  vehicle.Tick(2.0);
  EXPECT_TRUE(vehicle.IsSlowDeviationAt(2.0));
  EXPECT_GT(vehicle.DeviationAt(2.0), 0.0);
}

TEST(VehicleTest, FastDeviationWhenDrivingAboveDeclared) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  std::vector<double> speeds(20, 1.5);
  speeds[0] = 0.5;  // declared low at start
  Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
            SpeedCurve(speeds, 1.0));
  core::PolicyConfig config = Config(core::PolicyKind::kFixedThreshold);
  config.fixed_threshold = 100.0;
  Vehicle vehicle(1, trip, core::MakePolicy(config));
  vehicle.InitialAttribute();
  vehicle.Tick(3.0);
  EXPECT_FALSE(vehicle.IsSlowDeviationAt(3.0));
  EXPECT_GT(vehicle.DeviationAt(3.0), 0.0);
}

TEST(VehicleTest, TrackerStateVisible) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
            SpeedCurve::Constant(1.0, 10.0));
  Vehicle vehicle(1, trip,
                  core::MakePolicy(Config(core::PolicyKind::kDelayedLinear)));
  vehicle.InitialAttribute();
  vehicle.Tick(1.0);
  vehicle.Tick(2.0);
  EXPECT_EQ(vehicle.tracker().num_observations(), 2u);
  EXPECT_EQ(vehicle.id(), 1u);
  EXPECT_EQ(vehicle.policy().kind(), core::PolicyKind::kDelayedLinear);
}

}  // namespace
}  // namespace modb::sim
