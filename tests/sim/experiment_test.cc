#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace modb::sim {
namespace {

std::vector<NamedCurve> SmallSuite() {
  util::Rng rng(23);
  CurveGenOptions options;
  options.duration = 30.0;
  return MakeStandardSuite(rng, 1, options);
}

TEST(RunSweepTest, ProducesOneCellPerCombination) {
  SweepConfig config;
  config.policies = {core::PolicyKind::kDelayedLinear,
                     core::PolicyKind::kAverageImmediateLinear};
  config.update_costs = {1.0, 5.0};
  config.base_policy.max_speed = 1.5;
  const auto cells = RunSweep(SmallSuite(), config);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].policy, core::PolicyKind::kDelayedLinear);
  EXPECT_EQ(cells[0].update_cost, 1.0);
  EXPECT_EQ(cells[3].policy, core::PolicyKind::kAverageImmediateLinear);
  EXPECT_EQ(cells[3].update_cost, 5.0);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.mean.runs, 4u);  // 4 curves in the suite
    EXPECT_EQ(cell.mean.bound_violations, 0.0);
  }
}

TEST(RunSweepTest, BasePolicyParametersPropagate) {
  SweepConfig config;
  config.policies = {core::PolicyKind::kFixedThreshold};
  config.update_costs = {5.0};
  config.base_policy.fixed_threshold = 0.5;
  config.base_policy.max_speed = 1.5;
  const auto tight = RunSweep(SmallSuite(), config);
  config.base_policy.fixed_threshold = 5.0;
  const auto loose = RunSweep(SmallSuite(), config);
  // A tighter dead-reckoning bound must send more messages.
  EXPECT_GT(tight[0].mean.messages, loose[0].mean.messages);
}

TEST(MetricAccessorTest, NamesAndValues) {
  MeanMetrics mean;
  mean.messages = 1.0;
  mean.total_cost = 2.0;
  mean.avg_uncertainty = 3.0;
  mean.deviation_cost = 4.0;
  mean.avg_deviation = 5.0;
  EXPECT_EQ(GetMetric(mean, MetricKind::kMessages), 1.0);
  EXPECT_EQ(GetMetric(mean, MetricKind::kTotalCost), 2.0);
  EXPECT_EQ(GetMetric(mean, MetricKind::kAvgUncertainty), 3.0);
  EXPECT_EQ(GetMetric(mean, MetricKind::kDeviationCost), 4.0);
  EXPECT_EQ(GetMetric(mean, MetricKind::kAvgDeviation), 5.0);
  EXPECT_EQ(MetricKindName(MetricKind::kMessages), "messages");
  EXPECT_EQ(MetricKindName(MetricKind::kTotalCost), "total_cost");
  EXPECT_EQ(MetricKindName(MetricKind::kAvgUncertainty), "avg_uncertainty");
}

TEST(SweepTableTest, LayoutMatchesPaperPlots) {
  SweepConfig config;
  config.policies = {core::PolicyKind::kDelayedLinear,
                     core::PolicyKind::kAverageImmediateLinear,
                     core::PolicyKind::kCurrentImmediateLinear};
  config.update_costs = {2.0, 1.0};  // unsorted on purpose
  config.base_policy.max_speed = 1.5;
  const auto cells = RunSweep(SmallSuite(), config);
  const util::Table table = SweepTable(cells, MetricKind::kMessages);
  // One row per C (sorted ascending), one column per policy.
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_cols(), 4u);
  EXPECT_EQ(table.cell(0, 0), "1.00");
  EXPECT_EQ(table.cell(1, 0), "2.00");
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("dl"), std::string::npos);
  EXPECT_NE(rendered.find("ail"), std::string::npos);
  EXPECT_NE(rendered.find("cil"), std::string::npos);
}

TEST(SweepTest, MessagesDecreaseWithCostOnAverage) {
  // The paper's central trade-off: update frequency falls as C rises.
  SweepConfig config;
  config.policies = {core::PolicyKind::kAverageImmediateLinear};
  config.update_costs = {0.5, 5.0, 50.0};
  config.base_policy.max_speed = 1.5;
  const auto cells = RunSweep(SmallSuite(), config);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_GT(cells[0].mean.messages, cells[1].mean.messages);
  EXPECT_GT(cells[1].mean.messages, cells[2].mean.messages);
}

}  // namespace
}  // namespace modb::sim
