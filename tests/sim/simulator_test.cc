#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/route_network.h"
#include "util/rng.h"

namespace modb::sim {
namespace {

core::PolicyConfig Config(core::PolicyKind kind, double C = 5.0) {
  core::PolicyConfig config;
  config.kind = kind;
  config.update_cost = C;
  config.max_speed = 1.5;
  return config;
}

TEST(MakeStraightRouteTest, LongEnoughForCurve) {
  const SpeedCurve curve = SpeedCurve::Constant(1.5, 60.0);
  const geo::Route route = MakeStraightRouteForCurve(curve, 2.0);
  EXPECT_DOUBLE_EQ(route.Length(), 92.0);  // 1.5 * 60 + 2
  EXPECT_TRUE(route.Valid());
}

TEST(SimulatorTest, PerfectPredictionIsFree) {
  const SpeedCurve curve = SpeedCurve::Constant(1.0, 60.0);
  const RunMetrics m = SimulatePolicyOnCurve(
      curve, Config(core::PolicyKind::kDelayedLinear), SimulationOptions{});
  EXPECT_EQ(m.messages, 0u);
  EXPECT_EQ(m.deviation_cost, 0.0);
  EXPECT_EQ(m.total_cost, 0.0);
  EXPECT_EQ(m.bound_violations, 0u);
  EXPECT_EQ(m.ticks, 60u);
  EXPECT_DOUBLE_EQ(m.duration, 60.0);
}

TEST(SimulatorTest, Example1JamScenario) {
  // Paper Example 1: drive at 1 mi/min for 2 minutes, then a jam. With
  // C = 5 the dl vehicle updates when its deviation reaches 1.74 miles,
  // i.e. one message at the 4th minute under unit ticks.
  std::vector<double> speeds(10, 0.0);
  speeds[0] = speeds[1] = 1.0;
  const SpeedCurve curve(speeds, 1.0);
  const RunMetrics m = SimulatePolicyOnCurve(
      curve, Config(core::PolicyKind::kDelayedLinear), SimulationOptions{});
  EXPECT_EQ(m.messages, 1u);
  // Deviation: 1 at t=3, 2 at t=4 (update), 0 afterwards.
  // Trapezoid integral: 0.5 + 1.5 = 2.
  EXPECT_NEAR(m.deviation_cost, 2.0, 1e-9);
  EXPECT_EQ(m.bound_violations, 0u);
}

TEST(SimulatorTest, TotalCostIdentity) {
  util::Rng rng(5);
  const SpeedCurve curve = MakeCityCurve(rng, CurveGenOptions{});
  for (double C : {0.5, 5.0, 50.0}) {
    const RunMetrics m = SimulatePolicyOnCurve(
        curve, Config(core::PolicyKind::kAverageImmediateLinear, C),
        SimulationOptions{});
    EXPECT_NEAR(m.total_cost,
                C * static_cast<double>(m.messages) + m.deviation_cost,
                1e-9);
  }
}

TEST(SimulatorTest, StepCostFunctionSelectable) {
  std::vector<double> speeds(10, 0.0);
  speeds[0] = speeds[1] = 1.0;
  const SpeedCurve curve(speeds, 1.0);
  const core::StepDeviationCost step(0.5);
  SimulationOptions options;
  options.cost_function = &step;
  const RunMetrics m = SimulatePolicyOnCurve(
      curve, Config(core::PolicyKind::kDelayedLinear), options);
  // Deviation exceeds 0.5 between ~t=2.5 and t=4 -> step cost ~1.5 units.
  EXPECT_GT(m.deviation_cost, 0.5);
  EXPECT_LT(m.deviation_cost, 2.5);
}

TEST(SimulatorTest, FinerTicksApproachContinuousBehaviour) {
  std::vector<double> speeds(10, 0.0);
  speeds[0] = speeds[1] = 1.0;
  const SpeedCurve curve(speeds, 1.0);
  SimulationOptions coarse;
  coarse.tick = 1.0;
  SimulationOptions fine;
  fine.tick = 0.05;
  const RunMetrics mc = SimulatePolicyOnCurve(
      curve, Config(core::PolicyKind::kDelayedLinear), coarse);
  const RunMetrics mf = SimulatePolicyOnCurve(
      curve, Config(core::PolicyKind::kDelayedLinear), fine);
  EXPECT_EQ(mc.messages, mf.messages);
  // With fine ticks the update fires at deviation ~1.742 instead of 2.0,
  // so the deviation cost shrinks.
  EXPECT_LT(mf.deviation_cost, mc.deviation_cost);
  EXPECT_EQ(mf.bound_violations, 0u);
}

TEST(SimulatorTest, UncertaintyAveragesBoundOverTicks) {
  // For the fixed-threshold policy with tiny B the bound is B almost
  // everywhere, so the average uncertainty is close to B.
  util::Rng rng(9);
  const SpeedCurve curve = MakeCityCurve(rng, CurveGenOptions{});
  core::PolicyConfig config = Config(core::PolicyKind::kFixedThreshold);
  config.fixed_threshold = 0.25;
  const RunMetrics m =
      SimulatePolicyOnCurve(curve, config, SimulationOptions{});
  EXPECT_GT(m.avg_uncertainty, 0.0);
  EXPECT_LE(m.avg_uncertainty, 0.25 + 1e-9);
}

TEST(SimulatorTest, CustomTripOnWindingRoute) {
  util::Rng rng(13);
  geo::RouteNetwork net;
  const geo::RouteId id =
      net.AddRandomWindingRoute(rng, {0.0, 0.0}, 200, 1.0, 0.5);
  const Trip trip(&net.route(id), 0.0, core::TravelDirection::kForward, 0.0,
                  MakeCityCurve(rng, CurveGenOptions{}));
  const RunMetrics m = SimulatePolicyOnTrip(
      trip, Config(core::PolicyKind::kAverageImmediateLinear),
      SimulationOptions{});
  EXPECT_EQ(m.bound_violations, 0u);
  EXPECT_GT(m.messages, 0u);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  util::Rng rng(17);
  const SpeedCurve curve = MakeRushHourCurve(rng, CurveGenOptions{});
  const RunMetrics a = SimulatePolicyOnCurve(
      curve, Config(core::PolicyKind::kCurrentImmediateLinear),
      SimulationOptions{});
  const RunMetrics b = SimulatePolicyOnCurve(
      curve, Config(core::PolicyKind::kCurrentImmediateLinear),
      SimulationOptions{});
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.deviation_cost, b.deviation_cost);
  EXPECT_EQ(a.avg_uncertainty, b.avg_uncertainty);
}

TEST(AggregateTest, MeansAcrossRuns) {
  RunMetrics a;
  a.messages = 2;
  a.deviation_cost = 10.0;
  a.total_cost = 20.0;
  a.avg_uncertainty = 1.0;
  RunMetrics b;
  b.messages = 4;
  b.deviation_cost = 20.0;
  b.total_cost = 40.0;
  b.avg_uncertainty = 3.0;
  const MeanMetrics mean = Aggregate({a, b});
  EXPECT_DOUBLE_EQ(mean.messages, 3.0);
  EXPECT_DOUBLE_EQ(mean.deviation_cost, 15.0);
  EXPECT_DOUBLE_EQ(mean.total_cost, 30.0);
  EXPECT_DOUBLE_EQ(mean.avg_uncertainty, 2.0);
  EXPECT_EQ(mean.runs, 2u);
}

TEST(AggregateTest, EmptyInput) {
  const MeanMetrics mean = Aggregate({});
  EXPECT_EQ(mean.runs, 0u);
  EXPECT_EQ(mean.messages, 0.0);
}

}  // namespace
}  // namespace modb::sim
