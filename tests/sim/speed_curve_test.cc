#include "sim/speed_curve.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace modb::sim {
namespace {

TEST(SpeedCurveTest, ConstantCurve) {
  const SpeedCurve c = SpeedCurve::Constant(2.0, 10.0);
  EXPECT_DOUBLE_EQ(c.duration(), 10.0);
  EXPECT_DOUBLE_EQ(c.SpeedAt(0.0), 2.0);
  EXPECT_DOUBLE_EQ(c.SpeedAt(9.9), 2.0);
  EXPECT_DOUBLE_EQ(c.DistanceAt(10.0), 20.0);
  EXPECT_DOUBLE_EQ(c.MaxSpeed(), 2.0);
  EXPECT_DOUBLE_EQ(c.MeanSpeed(), 2.0);
}

TEST(SpeedCurveTest, PiecewiseDistanceIntegral) {
  const SpeedCurve c({1.0, 0.0, 2.0}, 1.0);
  EXPECT_DOUBLE_EQ(c.DistanceAt(0.5), 0.5);
  EXPECT_DOUBLE_EQ(c.DistanceAt(1.0), 1.0);
  EXPECT_DOUBLE_EQ(c.DistanceAt(1.7), 1.0);  // stopped
  EXPECT_DOUBLE_EQ(c.DistanceAt(2.5), 2.0);
  EXPECT_DOUBLE_EQ(c.DistanceAt(3.0), 3.0);
  // Past the trip end: parked.
  EXPECT_DOUBLE_EQ(c.DistanceAt(100.0), 3.0);
  EXPECT_DOUBLE_EQ(c.SpeedAt(100.0), 0.0);
}

TEST(SpeedCurveTest, NegativeTimeAndEmptyCurve) {
  const SpeedCurve c({1.0}, 1.0);
  EXPECT_DOUBLE_EQ(c.SpeedAt(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(c.DistanceAt(-1.0), 0.0);
  const SpeedCurve empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_DOUBLE_EQ(empty.DistanceAt(5.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.MeanSpeed(), 0.0);
}

TEST(SpeedCurveTest, FractionalStep) {
  const SpeedCurve c({1.0, 3.0}, 0.5);
  EXPECT_DOUBLE_EQ(c.duration(), 1.0);
  EXPECT_DOUBLE_EQ(c.SpeedAt(0.25), 1.0);
  EXPECT_DOUBLE_EQ(c.SpeedAt(0.75), 3.0);
  EXPECT_DOUBLE_EQ(c.DistanceAt(1.0), 2.0);
}

TEST(SpeedCurveTest, DistanceIsMonotone) {
  util::Rng rng(3);
  const SpeedCurve c = MakeCityCurve(rng, CurveGenOptions{});
  double prev = 0.0;
  for (double t = 0.0; t <= c.duration(); t += 0.1) {
    const double d = c.DistanceAt(t);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

struct GeneratorCase {
  std::string name;
  SpeedCurve (*make)(util::Rng&, const CurveGenOptions&);
};

class GeneratorTest : public testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorTest, RespectsDurationAndSpeedCap) {
  util::Rng rng(11);
  CurveGenOptions options;
  options.duration = 60.0;
  options.max_speed = 1.5;
  for (int rep = 0; rep < 10; ++rep) {
    const SpeedCurve c = GetParam().make(rng, options);
    EXPECT_DOUBLE_EQ(c.duration(), 60.0);
    EXPECT_LE(c.MaxSpeed(), 1.5 + 1e-12);
    for (double v : c.speeds()) EXPECT_GE(v, 0.0);
  }
}

TEST_P(GeneratorTest, DeterministicPerSeed) {
  util::Rng a(21);
  util::Rng b(21);
  const SpeedCurve ca = GetParam().make(a, CurveGenOptions{});
  const SpeedCurve cb = GetParam().make(b, CurveGenOptions{});
  ASSERT_EQ(ca.speeds().size(), cb.speeds().size());
  for (std::size_t i = 0; i < ca.speeds().size(); ++i) {
    EXPECT_EQ(ca.speeds()[i], cb.speeds()[i]);
  }
}

TEST_P(GeneratorTest, VehicleActuallyMoves) {
  util::Rng rng(31);
  const SpeedCurve c = GetParam().make(rng, CurveGenOptions{});
  EXPECT_GT(c.DistanceAt(c.duration()), 5.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorTest,
    testing::Values(GeneratorCase{"highway", &MakeHighwayCurve},
                    GeneratorCase{"city", &MakeCityCurve},
                    GeneratorCase{"jam", &MakeTrafficJamCurve},
                    GeneratorCase{"rush", &MakeRushHourCurve}),
    [](const testing::TestParamInfo<GeneratorCase>& info) {
      return info.param.name;
    });

TEST(GeneratorCharacterTest, CityFluctuatesMoreThanHighway) {
  // The premise behind dl-vs-ail (paper §3.1): city speed fluctuates
  // sharply, highway speed mildly.
  util::Rng rng(41);
  double city_stops = 0.0;
  double highway_stops = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    const SpeedCurve city = MakeCityCurve(rng, CurveGenOptions{});
    const SpeedCurve highway = MakeHighwayCurve(rng, CurveGenOptions{});
    for (double v : city.speeds()) city_stops += v == 0.0 ? 1.0 : 0.0;
    for (double v : highway.speeds()) highway_stops += v == 0.0 ? 1.0 : 0.0;
  }
  EXPECT_GT(city_stops, 10.0 * (highway_stops + 1.0));
}

TEST(GeneratorCharacterTest, JamContainsLongSlowStretch) {
  util::Rng rng(51);
  const SpeedCurve jam = MakeTrafficJamCurve(rng, CurveGenOptions{});
  int longest_slow = 0;
  int current = 0;
  for (double v : jam.speeds()) {
    current = v < 0.3 ? current + 1 : 0;
    longest_slow = std::max(longest_slow, current);
  }
  EXPECT_GE(longest_slow, 5);
}

TEST(StandardSuiteTest, SizeAndNames) {
  util::Rng rng(61);
  const auto suite = MakeStandardSuite(rng, 3, CurveGenOptions{});
  ASSERT_EQ(suite.size(), 12u);
  EXPECT_EQ(suite[0].name, "highway-0");
  EXPECT_EQ(suite[3].name, "city-0");
  EXPECT_EQ(suite[6].name, "jam-0");
  EXPECT_EQ(suite[9].name, "rush-0");
  for (const auto& named : suite) {
    EXPECT_DOUBLE_EQ(named.curve.duration(), 60.0);
  }
}

}  // namespace
}  // namespace modb::sim
