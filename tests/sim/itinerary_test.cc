#include "sim/itinerary.h"

#include <gtest/gtest.h>

#include "db/mod_database.h"
#include "sim/vehicle.h"

namespace modb::sim {
namespace {

class ItineraryTest : public testing::Test {
 protected:
  ItineraryTest()
      : east_(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}), "east"),
        north_(1, geo::Polyline({{50.0, 0.0}, {50.0, 100.0}}), "north") {}

  // Drive east 50 units, turn north at the junction, drive north 30.
  Itinerary MakeTurn(double speed = 1.0) const {
    return Itinerary(
        {
            {&east_, 0.0, 50.0},
            {&north_, 0.0, 30.0},
        },
        0.0, SpeedCurve::Constant(speed, 100.0));
  }

  geo::Route east_;
  geo::Route north_;
};

TEST_F(ItineraryTest, TotalLengthAndLegLookup) {
  const Itinerary it = MakeTurn();
  EXPECT_DOUBLE_EQ(it.TotalLength(), 80.0);
  EXPECT_EQ(it.legs().size(), 2u);
  EXPECT_EQ(it.LegIndexAt(0.0), 0u);
  EXPECT_EQ(it.LegIndexAt(49.0), 0u);
  EXPECT_EQ(it.LegIndexAt(51.0), 1u);
  EXPECT_EQ(it.LegIndexAt(1000.0), 1u);  // clamped after the journey
}

TEST_F(ItineraryTest, PositionAcrossLegs) {
  const Itinerary it = MakeTurn();
  EXPECT_EQ(&it.RouteAt(10.0), &east_);
  EXPECT_DOUBLE_EQ(it.ActualRouteDistanceAt(10.0), 10.0);
  EXPECT_TRUE(geo::ApproxEqual(it.ActualPositionAt(10.0), {10.0, 0.0}));
  // After the turn (50 units in): on the north route.
  EXPECT_EQ(&it.RouteAt(60.0), &north_);
  EXPECT_DOUBLE_EQ(it.ActualRouteDistanceAt(60.0), 10.0);
  EXPECT_TRUE(geo::ApproxEqual(it.ActualPositionAt(60.0), {50.0, 10.0}));
}

TEST_F(ItineraryTest, ParksAtJourneyEnd) {
  const Itinerary it = MakeTurn();
  // Journey is 80 units at speed 1 -> done at t=80.
  EXPECT_DOUBLE_EQ(it.ActualRouteDistanceAt(90.0), 30.0);
  EXPECT_DOUBLE_EQ(it.ActualSpeedAt(90.0), 0.0);
  EXPECT_TRUE(geo::ApproxEqual(it.ActualPositionAt(90.0), {50.0, 30.0}));
}

TEST_F(ItineraryTest, BackwardLeg) {
  // Second leg runs the east route backwards from 100 to 60.
  const Itinerary it(
      {
          {&north_, 0.0, 20.0},
          {&east_, 100.0, 60.0},
      },
      0.0, SpeedCurve::Constant(2.0, 60.0));
  EXPECT_EQ(it.legs()[1].Direction(), core::TravelDirection::kBackward);
  // After 15 time units: 30 units in -> 10 into the backward leg.
  EXPECT_EQ(&it.RouteAt(15.0), &east_);
  EXPECT_DOUBLE_EQ(it.ActualRouteDistanceAt(15.0), 90.0);
  EXPECT_EQ(it.DirectionAt(15.0), core::TravelDirection::kBackward);
}

TEST_F(ItineraryTest, VehicleEmitsForcedRouteChangeUpdate) {
  // A vehicle driving the turn must send an update when it crosses onto
  // the north route even if its speed prediction is perfect (paper §2:
  // cross-route distance is infinite).
  core::PolicyConfig policy;
  policy.kind = core::PolicyKind::kCurrentImmediateLinear;
  policy.update_cost = 5.0;
  policy.max_speed = 1.5;
  ItineraryVehicle vehicle(1, MakeTurn(), core::MakePolicy(policy));
  const core::PositionAttribute attr0 = vehicle.InitialAttribute();
  EXPECT_EQ(attr0.route, 0u);

  std::vector<core::PositionUpdate> updates;
  for (double t = 1.0; t <= 100.0; t += 1.0) {
    if (const auto update = vehicle.Tick(t)) updates.push_back(*update);
  }
  // Perfect prediction yields exactly two updates: the forced route change
  // at the junction (t=50, the junction point already counts as the new
  // leg), and a stop-correction after the journey ends at t=80 (the
  // vehicle parks at leg-end s=30 while the database extrapolates onward).
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_DOUBLE_EQ(updates[0].time, 50.0);
  EXPECT_EQ(updates[0].route, 1u);
  EXPECT_DOUBLE_EQ(updates[0].route_distance, 0.0);
  EXPECT_GT(updates[1].time, 80.0);
  EXPECT_DOUBLE_EQ(updates[1].route_distance, 30.0);
  EXPECT_DOUBLE_EQ(updates[1].speed, 0.0);
  EXPECT_EQ(vehicle.attribute().route, 1u);
}

TEST_F(ItineraryTest, DeviationInfiniteAcrossRoutes) {
  core::PolicyConfig policy;
  policy.kind = core::PolicyKind::kDelayedLinear;
  policy.max_speed = 1.5;
  ItineraryVehicle vehicle(1, MakeTurn(), core::MakePolicy(policy));
  vehicle.InitialAttribute();
  // Before the junction: finite; after (attribute still on route 0):
  // infinite.
  EXPECT_EQ(vehicle.DeviationAt(10.0), 0.0);
  EXPECT_TRUE(std::isinf(vehicle.DeviationAt(60.0)));
  EXPECT_FALSE(vehicle.IsSlowDeviationAt(60.0));
}

TEST_F(ItineraryTest, DatabaseFollowsRouteChanges) {
  geo::RouteNetwork net;
  const geo::RouteId east_id =
      net.AddStraightRoute({0.0, 0.0}, {100.0, 0.0}, "east");
  const geo::RouteId north_id =
      net.AddStraightRoute({50.0, 0.0}, {50.0, 100.0}, "north");
  db::ModDatabase db(&net);

  const Itinerary it(
      {
          {&net.route(east_id), 0.0, 50.0},
          {&net.route(north_id), 0.0, 30.0},
      },
      0.0, SpeedCurve::Constant(1.0, 100.0));
  core::PolicyConfig policy;
  policy.kind = core::PolicyKind::kAverageImmediateLinear;
  policy.max_speed = 1.5;
  ItineraryVehicle vehicle(1, it, core::MakePolicy(policy));
  ASSERT_TRUE(db.Insert(1, "turner", vehicle.InitialAttribute()).ok());

  for (double t = 1.0; t <= 90.0; t += 1.0) {
    if (const auto update = vehicle.Tick(t)) {
      ASSERT_TRUE(db.ApplyUpdate(*update).ok());
    }
  }
  // After the run the database has the object on the north route, near the
  // end of the second leg.
  const auto answer = db.QueryPosition(1, 80.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->route, north_id);
  EXPECT_NEAR(answer->position.x, 50.0, 1e-9);
  EXPECT_GT(answer->position.y, 20.0);
}

TEST(ItineraryFromPathTest, FollowsRoutingGraphShortestPath) {
  geo::RouteNetwork net;
  net.AddGridNetwork(4, 4, 10.0);
  const geo::RoutingGraph graph(&net);
  // From EW street 0 (y=0) at x=5 to EW street 2 (y=20) at x=25.
  const auto path = graph.ShortestPath({0, 5.0}, {2, 25.0});
  ASSERT_TRUE(path.ok());
  const double length = geo::RoutingGraph::PathLength(*path);
  EXPECT_DOUBLE_EQ(length, 40.0);  // Manhattan: 20 across + 20 up

  const Itinerary itinerary = MakeItineraryFromPath(
      net, *path, 0.0, SpeedCurve::Constant(1.0, 60.0));
  EXPECT_DOUBLE_EQ(itinerary.TotalLength(), length);
  // Start and end positions match the requested anchors.
  EXPECT_TRUE(geo::ApproxEqual(itinerary.ActualPositionAt(0.0), {5.0, 0.0}));
  EXPECT_TRUE(
      geo::ApproxEqual(itinerary.ActualPositionAt(40.0), {25.0, 20.0}));
  // The trajectory is spatially continuous across every route change.
  geo::Point2 prev = itinerary.ActualPositionAt(0.0);
  for (double t = 0.25; t <= 40.0; t += 0.25) {
    const geo::Point2 cur = itinerary.ActualPositionAt(t);
    EXPECT_LE(geo::Distance(prev, cur), 0.25 + 1e-9) << "t=" << t;
    prev = cur;
  }
}

TEST(ItineraryFromPathTest, VehicleDrivesPlannedPathThroughDatabase) {
  geo::RouteNetwork net;
  net.AddGridNetwork(3, 3, 20.0);
  const geo::RoutingGraph graph(&net);
  const auto path = graph.ShortestPath({0, 2.0}, {2, 38.0});
  ASSERT_TRUE(path.ok());
  ASSERT_GE(path->size(), 2u);  // at least one turn

  db::ModDatabase db(&net);
  core::PolicyConfig policy;
  policy.kind = core::PolicyKind::kCurrentImmediateLinear;
  policy.update_cost = 5.0;
  policy.max_speed = 1.5;
  ItineraryVehicle vehicle(
      1,
      MakeItineraryFromPath(net, *path, 0.0, SpeedCurve::Constant(1.0, 80.0)),
      core::MakePolicy(policy));
  ASSERT_TRUE(db.Insert(1, "courier", vehicle.InitialAttribute()).ok());
  for (double t = 1.0; t <= 80.0; t += 1.0) {
    if (const auto update = vehicle.Tick(t)) {
      ASSERT_TRUE(db.ApplyUpdate(*update).ok());
    }
  }
  // The database ends up with the object on the destination route near the
  // destination anchor.
  const auto answer = db.QueryPosition(1, 80.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->route, 2u);
  EXPECT_NEAR(answer->route_distance, 38.0, 1.0);
}

}  // namespace
}  // namespace modb::sim
