#include "sim/fleet.h"

#include <gtest/gtest.h>

#include "sim/speed_curve.h"
#include "util/rng.h"

namespace modb::sim {
namespace {

class FleetTest : public testing::Test {
 protected:
  FleetTest() { network_.AddGridNetwork(4, 4, 40.0); }

  std::unique_ptr<Vehicle> MakeVehicle(core::ObjectId id, util::Rng& rng,
                                       core::PolicyKind kind) {
    const geo::RouteId route_id = static_cast<geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(network_.size()) - 1));
    const geo::Route& route = network_.route(route_id);
    CurveGenOptions options;
    options.duration = 40.0;
    Trip trip(&route, rng.Uniform(0.0, route.Length() * 0.2),
              core::TravelDirection::kForward, 0.0,
              MakeCityCurve(rng, options));
    core::PolicyConfig policy;
    policy.kind = kind;
    policy.update_cost = 5.0;
    policy.max_speed = 1.5;
    return std::make_unique<Vehicle>(id, std::move(trip),
                                     core::MakePolicy(policy));
  }

  geo::RouteNetwork network_;
};

TEST_F(FleetTest, LosslessRunDeliversEverything) {
  db::ModDatabase db(&network_);
  FleetOptions options;
  FleetSimulator fleet(&db, options);
  util::Rng rng(5);
  for (core::ObjectId id = 0; id < 10; ++id) {
    fleet.AddVehicle(
        MakeVehicle(id, rng, core::PolicyKind::kAverageImmediateLinear));
  }
  ASSERT_TRUE(fleet.RegisterAll().ok());
  ASSERT_TRUE(fleet.Run().ok());
  const FleetStats& stats = fleet.stats();
  EXPECT_GT(stats.messages_attempted, 0u);
  EXPECT_EQ(stats.messages_lost, 0u);
  EXPECT_EQ(stats.messages_delivered(), stats.messages_attempted);
  EXPECT_EQ(stats.bound_violations, 0u);
  EXPECT_EQ(stats.vehicle_ticks, 10u * 40u);
  EXPECT_EQ(db.log().total_updates(), stats.messages_attempted);
}

TEST_F(FleetTest, StepBeforeRegisterFails) {
  db::ModDatabase db(&network_);
  FleetSimulator fleet(&db, FleetOptions{});
  EXPECT_EQ(fleet.Step(1.0).code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(FleetTest, EmptyFleetRunIsOk) {
  db::ModDatabase db(&network_);
  FleetSimulator fleet(&db, FleetOptions{});
  ASSERT_TRUE(fleet.RegisterAll().ok());
  EXPECT_TRUE(fleet.Run().ok());
  EXPECT_EQ(fleet.stats().messages_attempted, 0u);
}

TEST_F(FleetTest, MessageLossTriggersRetransmission) {
  db::ModDatabase db(&network_);
  FleetOptions options;
  options.message_loss_probability = 0.5;
  options.seed = 99;
  options.verify_bounds = false;
  FleetSimulator fleet(&db, options);
  util::Rng rng(7);
  for (core::ObjectId id = 0; id < 10; ++id) {
    fleet.AddVehicle(
        MakeVehicle(id, rng, core::PolicyKind::kCurrentImmediateLinear));
  }
  ASSERT_TRUE(fleet.RegisterAll().ok());
  ASSERT_TRUE(fleet.Run().ok());
  const FleetStats& stats = fleet.stats();
  EXPECT_GT(stats.messages_lost, 0u);
  // Retransmission: attempts exceed what a lossless run sends, and the
  // database still received the delivered share exactly.
  EXPECT_EQ(db.log().total_updates(), stats.messages_delivered());
  EXPECT_GT(stats.messages_delivered(), 0u);
}

TEST_F(FleetTest, BoundsHoldUnderModerateLoss) {
  // The vehicle only advances its mirror on delivery, so the DBMS bounds
  // stay sound; loss merely delays updates by the retransmission ticks.
  // Allow a small excess budget for consecutive losses.
  db::ModDatabase db(&network_);
  FleetOptions options;
  options.message_loss_probability = 0.3;
  options.seed = 4242;
  FleetSimulator fleet(&db, options);
  util::Rng rng(11);
  for (core::ObjectId id = 0; id < 15; ++id) {
    fleet.AddVehicle(
        MakeVehicle(id, rng, core::PolicyKind::kAverageImmediateLinear));
  }
  ASSERT_TRUE(fleet.RegisterAll().ok());
  ASSERT_TRUE(fleet.Run().ok());
  // Consecutive losses extend the overshoot by ~rate*tick each; with
  // p=0.3 long loss streaks are rare — the excess stays within a few
  // ticks of growth.
  EXPECT_LT(fleet.stats().max_bound_excess, 5.0 * 1.5);
}

TEST_F(FleetTest, LosslessDeterministicAcrossRuns) {
  auto run_once = [this](std::uint64_t seed) {
    db::ModDatabase db(&network_);
    FleetOptions options;
    options.seed = seed;
    FleetSimulator fleet(&db, options);
    util::Rng rng(13);
    for (core::ObjectId id = 0; id < 5; ++id) {
      fleet.AddVehicle(MakeVehicle(id, rng, core::PolicyKind::kDelayedLinear));
    }
    EXPECT_TRUE(fleet.RegisterAll().ok());
    EXPECT_TRUE(fleet.Run().ok());
    return fleet.stats().messages_attempted;
  };
  EXPECT_EQ(run_once(1), run_once(2));  // seed only affects the channel
}

TEST_F(FleetTest, BatchedChannelMatchesPerUpdateChannel) {
  // The uplink batch size must only change how the write path is driven,
  // never what lands in the database or what the vehicles mirror.
  auto run_once = [this](std::size_t batch_size) {
    auto db = std::make_unique<db::ModDatabase>(&network_);
    FleetOptions options;
    options.update_batch_size = batch_size;
    options.message_loss_probability = 0.1;  // loss interleaves with batching
    FleetSimulator fleet(db.get(), options);
    util::Rng rng(23);
    for (core::ObjectId id = 0; id < 8; ++id) {
      fleet.AddVehicle(
          MakeVehicle(id, rng, core::PolicyKind::kAverageImmediateLinear));
    }
    EXPECT_TRUE(fleet.RegisterAll().ok());
    EXPECT_TRUE(fleet.Run().ok());
    EXPECT_EQ(fleet.stats().bound_violations, 0u);
    return std::make_pair(std::move(db), fleet.stats());
  };
  auto [db1, stats1] = run_once(1);
  for (const std::size_t batch : {std::size_t{3}, std::size_t{64}}) {
    auto [dbn, statsn] = run_once(batch);
    EXPECT_EQ(statsn.messages_attempted, stats1.messages_attempted);
    EXPECT_EQ(statsn.messages_lost, stats1.messages_lost);
    EXPECT_EQ(dbn->num_objects(), db1->num_objects());
    db1->ForEachRecord([&](const db::MovingObjectRecord& record) {
      const auto other = dbn->Get(record.id);
      ASSERT_TRUE(other.ok());
      EXPECT_EQ((*other)->attr.start_time, record.attr.start_time);
      EXPECT_EQ((*other)->attr.start_route_distance,
                record.attr.start_route_distance);
      EXPECT_EQ((*other)->attr.route, record.attr.route);
      EXPECT_EQ((*other)->update_count, record.update_count);
    });
  }
}

TEST_F(FleetTest, MixedFleetWithItineraries) {
  db::ModDatabase db(&network_);
  FleetOptions options;
  FleetSimulator fleet(&db, options);
  util::Rng rng(17);
  fleet.AddVehicle(MakeVehicle(0, rng, core::PolicyKind::kDelayedLinear));
  // An itinerary vehicle turning from the first east-west street onto a
  // north-south street.
  const geo::Route& ew = network_.route(0);     // y = 0
  const geo::Route& ns = network_.route(5);     // x = 40: the junction
  Itinerary turn({{&ew, 0.0, 40.0}, {&ns, 0.0, 30.0}}, 0.0,
                 SpeedCurve::Constant(1.0, 40.0));
  core::PolicyConfig policy;
  policy.kind = core::PolicyKind::kCurrentImmediateLinear;
  policy.max_speed = 1.5;
  fleet.AddVehicle(ItineraryVehicle(7, std::move(turn),
                                    core::MakePolicy(policy)));
  ASSERT_TRUE(fleet.RegisterAll().ok());
  ASSERT_TRUE(fleet.Run().ok());
  EXPECT_EQ(fleet.stats().bound_violations, 0u);
  // The route-change update reached the database.
  const auto rec = db.Get(7);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->attr.route, ns.id());
}

}  // namespace
}  // namespace modb::sim
