#include "sim/trip.h"

#include <gtest/gtest.h>

namespace modb::sim {
namespace {

TEST(TripTest, ForwardTravel) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  const Trip trip(&route, 10.0, core::TravelDirection::kForward, 5.0,
                  SpeedCurve::Constant(2.0, 20.0));
  EXPECT_DOUBLE_EQ(trip.start_time(), 5.0);
  EXPECT_DOUBLE_EQ(trip.end_time(), 25.0);
  EXPECT_DOUBLE_EQ(trip.ActualRouteDistanceAt(5.0), 10.0);
  EXPECT_DOUBLE_EQ(trip.ActualRouteDistanceAt(10.0), 20.0);
  EXPECT_TRUE(geo::ApproxEqual(trip.ActualPositionAt(10.0), {20.0, 0.0}));
  EXPECT_DOUBLE_EQ(trip.ActualSpeedAt(10.0), 2.0);
}

TEST(TripTest, BeforeStartTimeStaysAtOrigin) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  const Trip trip(&route, 10.0, core::TravelDirection::kForward, 5.0,
                  SpeedCurve::Constant(2.0, 20.0));
  EXPECT_DOUBLE_EQ(trip.ActualRouteDistanceAt(0.0), 10.0);
}

TEST(TripTest, BackwardTravel) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  const Trip trip(&route, 90.0, core::TravelDirection::kBackward, 0.0,
                  SpeedCurve::Constant(1.0, 50.0));
  EXPECT_DOUBLE_EQ(trip.ActualRouteDistanceAt(10.0), 80.0);
  EXPECT_DOUBLE_EQ(trip.ActualSpeedAt(10.0), 1.0);
}

TEST(TripTest, ClampsAtRouteEnd) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {30.0, 0.0}}));
  const Trip trip(&route, 10.0, core::TravelDirection::kForward, 0.0,
                  SpeedCurve::Constant(2.0, 60.0));
  // Reaches the end (30) after 10 time units and parks.
  EXPECT_DOUBLE_EQ(trip.ActualRouteDistanceAt(10.0), 30.0);
  EXPECT_DOUBLE_EQ(trip.ActualRouteDistanceAt(40.0), 30.0);
  EXPECT_DOUBLE_EQ(trip.ActualSpeedAt(40.0), 0.0);
}

TEST(TripTest, ClampsAtRouteStartGoingBackward) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {30.0, 0.0}}));
  const Trip trip(&route, 5.0, core::TravelDirection::kBackward, 0.0,
                  SpeedCurve::Constant(1.0, 60.0));
  EXPECT_DOUBLE_EQ(trip.ActualRouteDistanceAt(20.0), 0.0);
  EXPECT_DOUBLE_EQ(trip.ActualSpeedAt(20.0), 0.0);
}

TEST(TripTest, SpeedAtStartOfRouteIsNotParked) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  const Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
                  SpeedCurve::Constant(1.5, 10.0));
  EXPECT_DOUBLE_EQ(trip.ActualSpeedAt(0.0), 1.5);
}

TEST(TripTest, FollowsWindingRouteGeometry) {
  const geo::Route route(
      0, geo::Polyline({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}}));
  const Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0,
                  SpeedCurve::Constant(1.0, 20.0));
  EXPECT_TRUE(geo::ApproxEqual(trip.ActualPositionAt(15.0), {10.0, 5.0}));
}

}  // namespace
}  // namespace modb::sim
