// Tests of the prepare/commit message-channel contract of BasicVehicle:
// TickPrepare never mutates the mirror, CommitUpdate applies it, dropped
// messages lead to retransmission.

#include <gtest/gtest.h>

#include "sim/vehicle.h"

namespace modb::sim {
namespace {

core::PolicyConfig Config(core::PolicyKind kind) {
  core::PolicyConfig config;
  config.kind = kind;
  config.update_cost = 5.0;
  config.max_speed = 1.5;
  return config;
}

// A trip that stops after 2 minutes (Example-1 pattern): the dl policy
// fires at t=4 with unit ticks.
Trip StopTrip(const geo::Route* route) {
  std::vector<double> speeds(30, 0.0);
  speeds[0] = speeds[1] = 1.0;
  return Trip(route, 0.0, core::TravelDirection::kForward, 0.0,
              SpeedCurve(speeds, 1.0));
}

TEST(VehicleChannelTest, PrepareDoesNotMutateMirror) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  Vehicle vehicle(1, StopTrip(&route),
                  core::MakePolicy(Config(core::PolicyKind::kDelayedLinear)));
  vehicle.InitialAttribute();
  for (double t = 1.0; t <= 3.0; t += 1.0) vehicle.Tick(t);
  const core::PositionAttribute before = vehicle.attribute();
  const auto update = vehicle.TickPrepare(4.0);
  ASSERT_TRUE(update.has_value());
  // Mirror unchanged until commit.
  EXPECT_DOUBLE_EQ(vehicle.attribute().start_time, before.start_time);
  EXPECT_DOUBLE_EQ(vehicle.attribute().speed, before.speed);
  vehicle.CommitUpdate(*update);
  EXPECT_DOUBLE_EQ(vehicle.attribute().start_time, 4.0);
  EXPECT_DOUBLE_EQ(vehicle.attribute().speed, 0.0);
  EXPECT_DOUBLE_EQ(vehicle.current_deviation(), 0.0);
}

TEST(VehicleChannelTest, DroppedMessageRetransmits) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  Vehicle vehicle(1, StopTrip(&route),
                  core::MakePolicy(Config(core::PolicyKind::kDelayedLinear)));
  vehicle.InitialAttribute();
  for (double t = 1.0; t <= 3.0; t += 1.0) vehicle.Tick(t);
  // Drop the t=4 message: the decision state stays, so t=5 re-fires.
  const auto first = vehicle.TickPrepare(4.0);
  ASSERT_TRUE(first.has_value());
  const auto retry = vehicle.TickPrepare(5.0);
  ASSERT_TRUE(retry.has_value());
  EXPECT_DOUBLE_EQ(retry->time, 5.0);
  EXPECT_DOUBLE_EQ(retry->route_distance, 2.0);  // still parked at mile 2
  vehicle.CommitUpdate(*retry);
  // After delivery the deviation is gone and no further update fires.
  EXPECT_FALSE(vehicle.TickPrepare(6.0).has_value());
}

TEST(VehicleChannelTest, TickEqualsPreparePlusCommit) {
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  Vehicle a(1, StopTrip(&route),
            core::MakePolicy(Config(core::PolicyKind::kAverageImmediateLinear)));
  Vehicle b(1, StopTrip(&route),
            core::MakePolicy(Config(core::PolicyKind::kAverageImmediateLinear)));
  a.InitialAttribute();
  b.InitialAttribute();
  for (double t = 1.0; t <= 20.0; t += 1.0) {
    const auto ua = a.Tick(t);
    auto ub = b.TickPrepare(t);
    if (ub.has_value()) b.CommitUpdate(*ub);
    ASSERT_EQ(ua.has_value(), ub.has_value()) << "t=" << t;
    if (ua.has_value()) {
      EXPECT_DOUBLE_EQ(ua->route_distance, ub->route_distance);
      EXPECT_DOUBLE_EQ(ua->speed, ub->speed);
    }
    EXPECT_DOUBLE_EQ(a.attribute().start_time, b.attribute().start_time);
  }
}

TEST(VehicleChannelTest, VehicleBaseInterfaceIsSufficient) {
  // Everything the fleet layer needs is reachable through the base class.
  const geo::Route route(0, geo::Polyline({{0.0, 0.0}, {100.0, 0.0}}));
  Vehicle concrete(9, StopTrip(&route),
                   core::MakePolicy(Config(core::PolicyKind::kDelayedLinear)));
  VehicleBase& vehicle = concrete;
  EXPECT_EQ(vehicle.id(), 9u);
  vehicle.InitialAttribute();
  EXPECT_DOUBLE_EQ(vehicle.trip_start_time(), 0.0);
  EXPECT_DOUBLE_EQ(vehicle.trip_end_time(), 30.0);
  EXPECT_EQ(vehicle.GroundTruthRouteIdAt(1.0), 0u);
  EXPECT_DOUBLE_EQ(vehicle.GroundTruthRouteDistanceAt(1.0), 1.0);
  EXPECT_TRUE(
      geo::ApproxEqual(vehicle.GroundTruthPositionAt(1.0), {1.0, 0.0}));
  for (double t = 1.0; t <= 10.0; t += 1.0) {
    vehicle.Tick(t);  // non-virtual convenience on the base
  }
  EXPECT_EQ(vehicle.policy().kind(), core::PolicyKind::kDelayedLinear);
  EXPECT_GE(vehicle.tracker().num_observations(), 1u);
}

}  // namespace
}  // namespace modb::sim
