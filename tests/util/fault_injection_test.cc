#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace modb::util {
namespace {

std::string TestPath(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

TEST(FaultInjectionTest, DefaultFactoryWritesAndSyncs) {
  const std::string path = TestPath("fi_default.bin");
  auto file = DefaultWritableFileFactory()(path);
  ASSERT_TRUE(file.ok()) << file.status().message();
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadAll(path), "hello world");
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, FactoryTruncatesExistingFile) {
  const std::string path = TestPath("fi_trunc.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "stale contents";
  }
  auto file = DefaultWritableFileFactory()(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("new").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadAll(path), "new");
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, CrashTearsTheCrossingWrite) {
  const std::string path = TestPath("fi_crash.bin");
  FaultPlan plan;
  plan.crash_after_bytes = 10;
  FaultInjector injector(plan);
  auto file = injector.factory()(path);
  ASSERT_TRUE(file.ok());

  ASSERT_TRUE((*file)->Append("01234567").ok());  // 8 bytes, under budget
  EXPECT_FALSE(injector.crashed());
  // This append crosses the 10-byte mark: only 2 bytes land.
  EXPECT_FALSE((*file)->Append("abcdef").ok());
  EXPECT_TRUE(injector.crashed());
  EXPECT_EQ(injector.bytes_written(), 10u);
  // Everything after the crash fails, including new files.
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  auto post = injector.factory()(TestPath("fi_crash2.bin"));
  if (post.ok()) {
    EXPECT_FALSE((*post)->Append("y").ok());
  }
  EXPECT_EQ(ReadAll(path), "01234567ab");
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, CrashCountsBytesAcrossFiles) {
  const std::string path_a = TestPath("fi_multi_a.bin");
  const std::string path_b = TestPath("fi_multi_b.bin");
  FaultPlan plan;
  plan.crash_after_bytes = 6;
  FaultInjector injector(plan);
  auto factory = injector.factory();

  auto a = factory(path_a);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->Append("1234").ok());
  ASSERT_TRUE((*a)->Close().ok());

  auto b = factory(path_b);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE((*b)->Append("5678").ok());  // crosses 6 cumulative bytes
  EXPECT_TRUE(injector.crashed());
  EXPECT_EQ(ReadAll(path_b), "56");
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(FaultInjectionTest, SyncFailuresStartAtThreshold) {
  const std::string path = TestPath("fi_sync.bin");
  FaultPlan plan;
  plan.fail_syncs_after = 2;
  FaultInjector injector(plan);
  auto file = injector.factory()(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("data").ok());
  EXPECT_TRUE((*file)->Sync().ok());
  EXPECT_TRUE((*file)->Sync().ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_EQ(injector.syncs_attempted(), 4u);
  // Appends keep working: a failing fsync is not a crash.
  EXPECT_TRUE((*file)->Append("more").ok());
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, BitFlipsAreDeterministic) {
  const std::string payload(4096, 'A');
  FaultPlan plan;
  plan.bit_flip_probability = 0.01;
  plan.seed = 42;

  std::string first;
  for (int run = 0; run < 2; ++run) {
    const std::string path = TestPath("fi_flip.bin");
    FaultInjector injector(plan);
    auto file = injector.factory()(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(payload).ok());
    ASSERT_TRUE((*file)->Close().ok());
    EXPECT_GT(injector.bits_flipped(), 0u);
    const std::string written = ReadAll(path);
    ASSERT_EQ(written.size(), payload.size());
    EXPECT_NE(written, payload);
    if (run == 0) {
      first = written;
    } else {
      EXPECT_EQ(written, first) << "same seed must corrupt identically";
    }
    std::remove(path.c_str());
  }
}

TEST(FaultInjectionTest, NoFaultsMeansPassThrough) {
  const std::string path = TestPath("fi_clean.bin");
  FaultInjector injector(FaultPlan{});
  auto file = injector.factory()(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("untouched").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_FALSE(injector.crashed());
  EXPECT_EQ(injector.bits_flipped(), 0u);
  EXPECT_EQ(ReadAll(path), "untouched");
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, TransientAppendWindow) {
  const std::string path = TestPath("fi_append_window.bin");
  FaultPlan plan;
  plan.fail_appends_after = 1;
  plan.fail_appends_count = 2;
  FaultInjector injector(plan);
  auto file = injector.factory()(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("a").ok());   // op 0: before window
  EXPECT_FALSE((*file)->Append("b").ok());  // op 1: in window
  EXPECT_FALSE((*file)->Append("c").ok());  // op 2: in window
  EXPECT_TRUE((*file)->Append("d").ok());   // op 3: window closed
  ASSERT_TRUE((*file)->Close().ok());
  // Failed appends write nothing — the torn-write path is crash_after_bytes.
  EXPECT_EQ(ReadAll(path), "ad");
  EXPECT_EQ(injector.appends_attempted(), 4u);
  EXPECT_EQ(injector.injected_append_faults(), 2u);
  EXPECT_FALSE(injector.crashed()) << "transient faults are not sticky";
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, TransientOpenWindowCountsAcrossFiles) {
  FaultPlan plan;
  plan.fail_opens_after = 1;
  plan.fail_opens_count = 1;
  FaultInjector injector(plan);
  auto factory = injector.factory();
  auto first = factory(TestPath("fi_open_0.bin"));
  EXPECT_TRUE(first.ok());
  auto second = factory(TestPath("fi_open_1.bin"));
  EXPECT_FALSE(second.ok());  // op 1 falls in the window
  auto third = factory(TestPath("fi_open_2.bin"));
  EXPECT_TRUE(third.ok());
  EXPECT_EQ(injector.opens_attempted(), 3u);
  EXPECT_EQ(injector.injected_open_faults(), 1u);
  std::remove(TestPath("fi_open_0.bin").c_str());
  std::remove(TestPath("fi_open_2.bin").c_str());
}

TEST(FaultInjectionTest, TransientReadWindow) {
  const std::string path = TestPath("fi_read_window.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "payload";
  }
  FaultPlan plan;
  plan.fail_reads_after = 0;
  plan.fail_reads_count = 2;
  FaultInjector injector(plan);
  auto reader = injector.reader();
  EXPECT_FALSE(reader(path).ok());  // op 0
  EXPECT_FALSE(reader(path).ok());  // op 1
  auto ok = reader(path);           // op 2: window closed
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "payload");
  EXPECT_EQ(injector.reads_attempted(), 3u);
  EXPECT_EQ(injector.injected_read_faults(), 2u);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, DefaultFileReaderReadsWholeFile) {
  const std::string path = TestPath("fi_reader.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "whole file\0with nul" << std::flush;
  }
  auto contents = DefaultFileReader()(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->substr(0, 10), "whole file");
  EXPECT_FALSE(DefaultFileReader()(TestPath("fi_reader_missing.bin")).ok());
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, SyncWindowClosesWhenCountIsFinite) {
  const std::string path = TestPath("fi_sync_window.bin");
  FaultPlan plan;
  plan.fail_syncs_after = 1;
  plan.fail_syncs_count = 2;  // finite window, unlike the sticky default
  FaultInjector injector(plan);
  auto file = injector.factory()(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("x").ok());
  EXPECT_TRUE((*file)->Sync().ok());   // op 0
  EXPECT_FALSE((*file)->Sync().ok());  // op 1
  EXPECT_FALSE((*file)->Sync().ok());  // op 2
  EXPECT_TRUE((*file)->Sync().ok());   // op 3: recovered
  EXPECT_EQ(injector.injected_sync_faults(), 2u);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, InjectedFaultTotalSumsAllKinds) {
  const std::string path = TestPath("fi_total.bin");
  FaultPlan plan;
  plan.fail_appends_after = 0;
  plan.fail_appends_count = 1;
  plan.fail_syncs_after = 0;
  plan.fail_syncs_count = 1;
  plan.fail_reads_after = 0;
  plan.fail_reads_count = 1;
  FaultInjector injector(plan);
  auto file = injector.factory()(path);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("a").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(injector.reader()(path).ok());
  EXPECT_EQ(injector.injected_faults(), 3u);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, WindowPastWorkloadNeverFires) {
  const std::string path = TestPath("fi_vacuous.bin");
  FaultPlan plan;
  plan.fail_appends_after = 100;  // workload only makes 2 appends
  FaultInjector injector(plan);
  auto file = injector.factory()(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("a").ok());
  EXPECT_TRUE((*file)->Append("b").ok());
  // The counter is how a test detects its plan was vacuous.
  EXPECT_EQ(injector.injected_faults(), 0u);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, FileHelpers) {
  const std::string path = TestPath("fi_helpers.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "0123456789";
  }
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 10u);

  ASSERT_TRUE(FlipFileByte(path, 3).ok());
  std::string data = ReadAll(path);
  EXPECT_EQ(data[3], static_cast<char>('3' ^ 0xff));
  ASSERT_TRUE(FlipFileByte(path, 3).ok());  // flip back
  EXPECT_EQ(ReadAll(path), "0123456789");

  ASSERT_TRUE(FlipFileByte(path, 0, 0x01).ok());
  EXPECT_EQ(ReadAll(path)[0], static_cast<char>('0' ^ 0x01));

  ASSERT_TRUE(TruncateFile(path, 4).ok());
  auto truncated = FileSize(path);
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(*truncated, 4u);

  EXPECT_FALSE(FlipFileByte(path, 100).ok());
  EXPECT_FALSE(FileSize(TestPath("fi_missing.bin")).ok());
  EXPECT_FALSE(TruncateFile(TestPath("fi_missing.bin"), 0).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace modb::util
