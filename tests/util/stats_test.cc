#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace modb::util {
namespace {

TEST(RunningStatTest, EmptyState) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatTest, SingleObservation) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  Rng rng(1);
  RunningStat whole;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    whole.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.Add(4.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 1.0 / 3.0), 2.0);
}

TEST(PercentileTest, SingleElement) {
  const std::vector<double> one = {7.0};
  EXPECT_EQ(PercentileOfSorted(one, 0.0), 7.0);
  EXPECT_EQ(PercentileOfSorted(one, 0.5), 7.0);
  EXPECT_EQ(PercentileOfSorted(one, 1.0), 7.0);
}

TEST(PercentileTest, ClampsOutOfRangeQuantile) {
  const std::vector<double> sorted = {1.0, 2.0};
  EXPECT_EQ(PercentileOfSorted(sorted, -0.5), 1.0);
  EXPECT_EQ(PercentileOfSorted(sorted, 1.5), 2.0);
}

TEST(SummarizeTest, EmptySampleIsAllZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(SummarizeTest, UnsortedInputHandled) {
  const Summary s = Summarize({9.0, 1.0, 5.0, 3.0, 7.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 3.0);
  EXPECT_DOUBLE_EQ(s.p75, 7.0);
}

TEST(TrapezoidIntegralTest, ConstantFunction) {
  EXPECT_DOUBLE_EQ(TrapezoidIntegral({2.0, 2.0, 2.0, 2.0, 2.0}, 0.5), 4.0);
}

TEST(TrapezoidIntegralTest, LinearRamp) {
  // y = t on [0, 4] sampled at dx=1 -> exact integral 8.
  EXPECT_DOUBLE_EQ(TrapezoidIntegral({0.0, 1.0, 2.0, 3.0, 4.0}, 1.0), 8.0);
}

TEST(TrapezoidIntegralTest, FewSamplesYieldZero) {
  EXPECT_EQ(TrapezoidIntegral({}, 1.0), 0.0);
  EXPECT_EQ(TrapezoidIntegral({3.0}, 1.0), 0.0);
}

}  // namespace
}  // namespace modb::util
