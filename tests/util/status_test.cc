#include "util/status.h"

#include <gtest/gtest.h>

namespace modb::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::NotFound("route 7").message(), "route 7");
}

TEST(StatusTest, OkCodeClearsMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("object 3").ToString(), "not_found: object 3");
  EXPECT_EQ(Status::Internal("boom").ToString(), "internal: boom");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, CoversEveryCode) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "not_found");
  EXPECT_EQ(StatusCodeName(StatusCode::kAlreadyExists), "already_exists");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "out_of_range");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "failed_precondition");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r(std::string("abc"));
  r.value() += "def";
  EXPECT_EQ(*r, "abcdef");
  EXPECT_EQ(r->size(), 6u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace modb::util
