#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace modb::util {
namespace {

TEST(TableTest, BuildsRowsAndCells) {
  Table t({"a", "b", "c"});
  t.NewRow().Add(std::string("x")).Add(1.5, 2).Add(std::size_t{7});
  t.NewRow().Add(std::string("y")).Add(-2.25, 2).Add(std::size_t{0});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.cell(0, 0), "x");
  EXPECT_EQ(t.cell(0, 1), "1.50");
  EXPECT_EQ(t.cell(0, 2), "7");
  EXPECT_EQ(t.cell(1, 1), "-2.25");
}

TEST(TableTest, IntCell) {
  Table t({"n"});
  t.NewRow().Add(-5);
  EXPECT_EQ(t.cell(0, 0), "-5");
}

TEST(TableTest, ToStringAligned) {
  Table t({"name", "v"});
  t.NewRow().Add(std::string("long-name-here")).Add(1.0, 1);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("long-name-here"), std::string::npos);
  EXPECT_NE(s.find("+-"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.NewRow().Add(std::string("plain")).Add(std::string("with,comma"));
  t.NewRow().Add(std::string("q\"uote")).Add(std::string("nl\nline"));
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"uote\""), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table t({"x"});
  t.NewRow().Add(std::string("1"));
  const std::string path = testing::TempDir() + "/modb_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "1");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvFailsOnBadPath) {
  Table t({"x"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir-zzz/out.csv"));
}

}  // namespace
}  // namespace modb::util
