#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace modb::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, ForkDecorrelatesStreams) {
  Rng parent(31);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_LT(Rng::min(), Rng::max());
}

}  // namespace
}  // namespace modb::util
