#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace modb::util {
namespace {

TEST(MetricsTest, CounterIncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeSetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(10);
  EXPECT_EQ(g.value(), 10);
  g.Add(5);
  g.Add(-12);  // signed deltas: levels may go down (and below zero)
  EXPECT_EQ(g.value(), 3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsTest, SharedGaugeAggregatesSignedDeltas) {
  // Two writers applying deltas to one gauge (the sharded layer's
  // aggregation pattern): the gauge reads as the sum of contributions.
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("pool.depth");
  EXPECT_EQ(g, registry.GetGauge("pool.depth"));
  g->Add(7);   // writer A
  g->Add(4);   // writer B
  g->Add(-7);  // writer A withdraws on detach
  EXPECT_EQ(g->value(), 4);
}

TEST(MetricsTest, RegistryReturnsStableSharedInstruments) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);  // same name -> same instrument (aggregation across shards)
  EXPECT_NE(a, registry.GetCounter("y"));
  EXPECT_EQ(registry.GetLatency("l"), registry.GetLatency("l"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
}

TEST(MetricsTest, LatencyHistogramStatistics) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ApproxQuantileMicros(0.5), 0.0);
  // 1000 samples of 8 µs, 10 of 1024 µs.
  for (int i = 0; i < 1000; ++i) h.RecordNanos(8 * 1000);
  for (int i = 0; i < 10; ++i) h.RecordNanos(1024 * 1000);
  EXPECT_EQ(h.count(), 1010u);
  EXPECT_NEAR(h.mean_micros(), (1000.0 * 8 + 10.0 * 1024) / 1010.0, 0.1);
  EXPECT_NEAR(h.max_micros(), 1024.0, 0.001);
  // Log2 buckets: the p50 lands in the [8, 16) µs bucket, i.e. within a
  // factor of 2 of the true value; p999-ish lands near 1024.
  const double p50 = h.ApproxQuantileMicros(0.5);
  EXPECT_GE(p50, 4.0);
  EXPECT_LE(p50, 16.0);
  const double p999 = h.ApproxQuantileMicros(0.999);
  EXPECT_GE(p999, 512.0);
  EXPECT_LE(p999, 2048.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_micros(), 0.0);
}

TEST(MetricsTest, SnapshotReusesHistogram) {
  LatencyHistogram h;
  for (int i = 0; i < 7; ++i) h.RecordNanos(3 * 1000);  // bucket [2,4) µs
  const Histogram snapshot = h.SnapshotLog2Micros();
  EXPECT_EQ(snapshot.count(), 7u);
  // log2 domain: 3 µs -> bucket index 2 (spans [2^1, 2^2) µs).
  EXPECT_EQ(snapshot.bucket_count(2), 7u);
}

TEST(MetricsTest, DumpListsInstrumentsSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Increment(3);
  registry.GetCounter("a.count")->Increment(1);
  registry.GetGauge("g.level")->Add(-2);
  registry.GetLatency("q.latency")->RecordNanos(5000);
  const std::string dump = registry.Dump();
  EXPECT_NE(dump.find("counter a.count 1"), std::string::npos);
  EXPECT_NE(dump.find("counter b.count 3"), std::string::npos);
  EXPECT_NE(dump.find("gauge g.level -2"), std::string::npos);
  EXPECT_NE(dump.find("latency q.latency count=1"), std::string::npos);
  EXPECT_LT(dump.find("a.count"), dump.find("b.count"));
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hot");
  LatencyHistogram* h = registry.GetLatency("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->RecordNanos(1000 * (1 + i % 64));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace modb::util
