#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace modb::util {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Canonical CRC-32C test vectors (RFC 3720 appendix / iSCSI).
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32c("a"), 0xc1d04330u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
  const std::string ffs(32, '\xff');
  EXPECT_EQ(Crc32c(ffs), 0x62a8ab43u);
}

TEST(Crc32cTest, ExtendMatchesConcatenation) {
  const std::string a = "hello ";
  const std::string b = "world";
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b), Crc32c(a + b));
  EXPECT_EQ(Crc32cExtend(0, a), Crc32c(a));
}

TEST(Crc32cTest, SensitiveToSingleBitFlips) {
  std::string data = "the update stream must survive a server crash";
  const std::uint32_t clean = Crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(data), clean) << "byte " << i << " bit " << bit;
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
    }
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (const std::uint32_t crc :
       {0u, 1u, 0xe3069283u, 0xffffffffu, 0xdeadbeefu}) {
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
    EXPECT_NE(Crc32cMask(crc), crc);
  }
}

}  // namespace
}  // namespace modb::util
