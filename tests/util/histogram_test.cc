#include "util/histogram.h"

#include <gtest/gtest.h>

#include <limits>

namespace modb::util {
namespace {

TEST(HistogramTest, BucketsObservations) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.6, 9.9}) h.Add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramTest, UnderOverflowCounted) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-0.1);
  h.Add(1.0);  // hi edge is exclusive
  h.Add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, BucketEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(HistogramTest, ApproxQuantile) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.ApproxQuantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.ApproxQuantile(0.95), 95.0, 1.5);
  EXPECT_NEAR(h.ApproxQuantile(0.0), 0.5, 0.5);
}

TEST(HistogramTest, ApproxQuantileEmpty) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0.0);
}

// Regression: Add(NaN) used to fall through both range guards into a
// NaN-derived double->size_t cast (UB — an out-of-range bucket write under
// UBSan/ASan). Non-finite observations must land in the counted invalid
// bucket and leave every positional bucket untouched.
TEST(HistogramTest, NonFiniteObservationsCountedAsInvalid) {
  Histogram h(0.0, 10.0, 10);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(-std::numeric_limits<double>::infinity());
  h.Add(5.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.invalid(), 3u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  std::size_t bucketed = 0;
  for (std::size_t i = 0; i < h.num_buckets(); ++i) bucketed += h.bucket_count(i);
  EXPECT_EQ(bucketed, 1u);
  EXPECT_NE(h.ToString().find("invalid"), std::string::npos);
}

// Invalid mass has no rank: quantiles are computed over the finite
// observations only, so a NaN-polluted stream still reports the right
// percentiles for the real samples.
TEST(HistogramTest, ApproxQuantileIgnoresInvalidMass) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i) + 0.5);
  for (int i = 0; i < 50; ++i) h.Add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_NEAR(h.ApproxQuantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.ApproxQuantile(0.95), 95.0, 1.5);
}

TEST(HistogramTest, ApproxQuantileAllInvalidIsZero) {
  Histogram h(0.0, 1.0, 4);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.ApproxQuantile(0.5), 0.0);
}

// Contract pin (see the header): a target rank inside the underflow mass
// answers lo_ and one inside the overflow mass answers hi_ — the tightest
// retained bounds, not measured values.
TEST(HistogramTest, ApproxQuantileTailClampContract) {
  Histogram all_under(10.0, 20.0, 4);
  all_under.Add(1.0);
  all_under.Add(2.0);
  EXPECT_DOUBLE_EQ(all_under.ApproxQuantile(0.5), 10.0);

  Histogram all_over(10.0, 20.0, 4);
  all_over.Add(99.0);
  all_over.Add(250.0);
  EXPECT_DOUBLE_EQ(all_over.ApproxQuantile(0.5), 20.0);

  // Mixed: the low ranks clamp to lo_, the in-range rank reports its
  // bucket midpoint, the top rank clamps to hi_.
  Histogram mixed(0.0, 10.0, 10);
  mixed.Add(-5.0);
  mixed.Add(5.5);
  mixed.Add(42.0);
  EXPECT_DOUBLE_EQ(mixed.ApproxQuantile(0.0), 0.0);    // underflow rank
  EXPECT_DOUBLE_EQ(mixed.ApproxQuantile(0.5), 5.5);    // bucket midpoint
  EXPECT_DOUBLE_EQ(mixed.ApproxQuantile(1.0), 10.0);   // overflow rank
}

// AddBucketCount is bounds-checked in release builds too: out-of-range
// external bucket mass lands in invalid() instead of past the array.
TEST(HistogramTest, AddBucketCountOutOfRangeCountsInvalid) {
#ifdef NDEBUG
  Histogram h(0.0, 1.0, 4);
  h.AddBucketCount(2, 3);
  h.AddBucketCount(4, 7);  // one past the last bucket
  EXPECT_EQ(h.bucket_count(2), 3u);
  EXPECT_EQ(h.invalid(), 7u);
  EXPECT_EQ(h.count(), 10u);
#else
  GTEST_SKIP() << "debug build: out-of-range AddBucketCount asserts";
#endif
}

TEST(HistogramTest, ToStringRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string s = h.ToString(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("0.000"), std::string::npos);
}

}  // namespace
}  // namespace modb::util
