#include "util/histogram.h"

#include <gtest/gtest.h>

namespace modb::util {
namespace {

TEST(HistogramTest, BucketsObservations) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.6, 9.9}) h.Add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramTest, UnderOverflowCounted) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-0.1);
  h.Add(1.0);  // hi edge is exclusive
  h.Add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, BucketEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(HistogramTest, ApproxQuantile) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.ApproxQuantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.ApproxQuantile(0.95), 95.0, 1.5);
  EXPECT_NEAR(h.ApproxQuantile(0.0), 0.5, 0.5);
}

TEST(HistogramTest, ApproxQuantileEmpty) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0.0);
}

TEST(HistogramTest, ToStringRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string s = h.ToString(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("0.000"), std::string::npos);
}

}  // namespace
}  // namespace modb::util
