#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace modb::util {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.ParallelFor(visits.size(),
                   [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "n=0 must not invoke"; });
  int calls = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.ParallelFor(8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: inline execution is sequential
  });
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  // The destructor drains the queue; but also poll so the expectation is
  // checked while the pool is alive.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ran.load() < 16 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(4, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 16);
}

TEST(ThreadPoolTest, ParallelForSumsCorrectlyUnderContention) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  const std::size_t n = 10000;
  pool.ParallelFor(n, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace modb::util
