#include "util/retry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace modb::util {
namespace {

TEST(RetryPolicyTest, FirstDelayIsNearInitial) {
  RetryPolicy::Options options;
  options.initial_delay_ms = 100;
  options.jitter_fraction = 0.2;
  RetryPolicy policy(options);
  const std::uint64_t d = policy.NextDelayMs();
  EXPECT_GE(d, 80u);
  EXPECT_LE(d, 120u);
  EXPECT_EQ(policy.attempts(), 1u);
}

TEST(RetryPolicyTest, DelaysGrowGeometricallyAndCap) {
  RetryPolicy::Options options;
  options.initial_delay_ms = 10;
  options.max_delay_ms = 100;
  options.multiplier = 2.0;
  options.jitter_fraction = 0.0;  // exact values, no jitter
  RetryPolicy policy(options);
  EXPECT_EQ(policy.NextDelayMs(), 10u);
  EXPECT_EQ(policy.NextDelayMs(), 20u);
  EXPECT_EQ(policy.NextDelayMs(), 40u);
  EXPECT_EQ(policy.NextDelayMs(), 80u);
  EXPECT_EQ(policy.NextDelayMs(), 100u);  // clamped
  EXPECT_EQ(policy.NextDelayMs(), 100u);  // stays clamped
}

TEST(RetryPolicyTest, JitterStaysWithinFraction) {
  RetryPolicy::Options options;
  options.initial_delay_ms = 1000;
  options.max_delay_ms = 1000;  // constant base, isolates jitter
  options.multiplier = 1.0;
  options.jitter_fraction = 0.25;
  RetryPolicy policy(options);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t d = policy.NextDelayMs();
    EXPECT_GE(d, 750u) << "attempt " << i;
    EXPECT_LE(d, 1250u) << "attempt " << i;
  }
}

TEST(RetryPolicyTest, SameSeedSameDelays) {
  RetryPolicy::Options options;
  options.seed = 99;
  RetryPolicy a(options);
  RetryPolicy b(options);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.NextDelayMs(), b.NextDelayMs()) << "attempt " << i;
  }
}

TEST(RetryPolicyTest, DifferentSeedsDiverge) {
  RetryPolicy::Options a_opts;
  a_opts.seed = 1;
  RetryPolicy::Options b_opts;
  b_opts.seed = 2;
  RetryPolicy a(a_opts);
  RetryPolicy b(b_opts);
  bool diverged = false;
  for (int i = 0; i < 16; ++i) {
    if (a.NextDelayMs() != b.NextDelayMs()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "distinct seeds should de-synchronise the fleet";
}

TEST(RetryPolicyTest, DelayForAttemptMatchesLiveStream) {
  RetryPolicy::Options options;
  options.initial_delay_ms = 10;
  options.max_delay_ms = 5000;
  options.jitter_fraction = 0.3;
  options.seed = 1234;
  RetryPolicy policy(options);
  // Peek the whole schedule up front, then confirm the live stream
  // reproduces it — the supervisor publishes retry-after hints this way.
  std::vector<std::uint64_t> expected;
  for (std::uint64_t attempt = 0; attempt < 8; ++attempt) {
    expected.push_back(policy.DelayForAttempt(attempt));
  }
  for (std::uint64_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(policy.NextDelayMs(), expected[attempt])
        << "attempt " << attempt;
  }
  // Peeking never advanced state.
  EXPECT_EQ(policy.attempts(), 8u);
}

TEST(RetryPolicyTest, ResetReplaysTheSchedule) {
  RetryPolicy policy;
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 5; ++i) first.push_back(policy.NextDelayMs());
  policy.Reset();
  EXPECT_EQ(policy.attempts(), 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(policy.NextDelayMs(), first[static_cast<std::size_t>(i)])
        << "attempt " << i;
  }
}

TEST(RetryPolicyTest, MaxAttemptsGatesShouldRetry) {
  RetryPolicy::Options options;
  options.max_attempts = 3;
  RetryPolicy policy(options);
  EXPECT_TRUE(policy.ShouldRetry());
  policy.NextDelayMs();
  policy.NextDelayMs();
  EXPECT_TRUE(policy.ShouldRetry());
  policy.NextDelayMs();
  EXPECT_FALSE(policy.ShouldRetry());
  policy.Reset();
  EXPECT_TRUE(policy.ShouldRetry());
}

TEST(RetryPolicyTest, ZeroMaxAttemptsMeansUnlimited) {
  RetryPolicy policy;  // default max_attempts = 0
  for (int i = 0; i < 100; ++i) policy.NextDelayMs();
  EXPECT_TRUE(policy.ShouldRetry());
}

TEST(RetryPolicyTest, SubUnitMultiplierTreatedAsConstant) {
  RetryPolicy::Options options;
  options.initial_delay_ms = 50;
  options.multiplier = 0.5;  // nonsensical shrink; treated as 1.0
  options.jitter_fraction = 0.0;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.NextDelayMs(), 50u);
  EXPECT_EQ(policy.NextDelayMs(), 50u);
  EXPECT_EQ(policy.NextDelayMs(), 50u);
}

}  // namespace
}  // namespace modb::util
