# Empty dependencies file for modb_core.
# This may be replaced when dependencies are built.
