file(REMOVE_RECURSE
  "libmodb_core.a"
)
