
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cc" "src/core/CMakeFiles/modb_core.dir/bounds.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/bounds.cc.o.d"
  "/root/repo/src/core/deviation.cc" "src/core/CMakeFiles/modb_core.dir/deviation.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/deviation.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/modb_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/policies/ail_policy.cc" "src/core/CMakeFiles/modb_core.dir/policies/ail_policy.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/policies/ail_policy.cc.o.d"
  "/root/repo/src/core/policies/cil_policy.cc" "src/core/CMakeFiles/modb_core.dir/policies/cil_policy.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/policies/cil_policy.cc.o.d"
  "/root/repo/src/core/policies/dl_policy.cc" "src/core/CMakeFiles/modb_core.dir/policies/dl_policy.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/policies/dl_policy.cc.o.d"
  "/root/repo/src/core/policies/fixed_threshold_policy.cc" "src/core/CMakeFiles/modb_core.dir/policies/fixed_threshold_policy.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/policies/fixed_threshold_policy.cc.o.d"
  "/root/repo/src/core/policies/hybrid_policy.cc" "src/core/CMakeFiles/modb_core.dir/policies/hybrid_policy.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/policies/hybrid_policy.cc.o.d"
  "/root/repo/src/core/policies/periodic_policy.cc" "src/core/CMakeFiles/modb_core.dir/policies/periodic_policy.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/policies/periodic_policy.cc.o.d"
  "/root/repo/src/core/policies/step_threshold_policy.cc" "src/core/CMakeFiles/modb_core.dir/policies/step_threshold_policy.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/policies/step_threshold_policy.cc.o.d"
  "/root/repo/src/core/position_attribute.cc" "src/core/CMakeFiles/modb_core.dir/position_attribute.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/position_attribute.cc.o.d"
  "/root/repo/src/core/thresholds.cc" "src/core/CMakeFiles/modb_core.dir/thresholds.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/thresholds.cc.o.d"
  "/root/repo/src/core/uncertainty.cc" "src/core/CMakeFiles/modb_core.dir/uncertainty.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/uncertainty.cc.o.d"
  "/root/repo/src/core/update_policy.cc" "src/core/CMakeFiles/modb_core.dir/update_policy.cc.o" "gcc" "src/core/CMakeFiles/modb_core.dir/update_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/modb_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/modb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
