# Empty compiler generated dependencies file for modb_core.
# This may be replaced when dependencies are built.
