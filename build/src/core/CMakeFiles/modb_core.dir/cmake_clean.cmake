file(REMOVE_RECURSE
  "CMakeFiles/modb_core.dir/bounds.cc.o"
  "CMakeFiles/modb_core.dir/bounds.cc.o.d"
  "CMakeFiles/modb_core.dir/deviation.cc.o"
  "CMakeFiles/modb_core.dir/deviation.cc.o.d"
  "CMakeFiles/modb_core.dir/estimator.cc.o"
  "CMakeFiles/modb_core.dir/estimator.cc.o.d"
  "CMakeFiles/modb_core.dir/policies/ail_policy.cc.o"
  "CMakeFiles/modb_core.dir/policies/ail_policy.cc.o.d"
  "CMakeFiles/modb_core.dir/policies/cil_policy.cc.o"
  "CMakeFiles/modb_core.dir/policies/cil_policy.cc.o.d"
  "CMakeFiles/modb_core.dir/policies/dl_policy.cc.o"
  "CMakeFiles/modb_core.dir/policies/dl_policy.cc.o.d"
  "CMakeFiles/modb_core.dir/policies/fixed_threshold_policy.cc.o"
  "CMakeFiles/modb_core.dir/policies/fixed_threshold_policy.cc.o.d"
  "CMakeFiles/modb_core.dir/policies/hybrid_policy.cc.o"
  "CMakeFiles/modb_core.dir/policies/hybrid_policy.cc.o.d"
  "CMakeFiles/modb_core.dir/policies/periodic_policy.cc.o"
  "CMakeFiles/modb_core.dir/policies/periodic_policy.cc.o.d"
  "CMakeFiles/modb_core.dir/policies/step_threshold_policy.cc.o"
  "CMakeFiles/modb_core.dir/policies/step_threshold_policy.cc.o.d"
  "CMakeFiles/modb_core.dir/position_attribute.cc.o"
  "CMakeFiles/modb_core.dir/position_attribute.cc.o.d"
  "CMakeFiles/modb_core.dir/thresholds.cc.o"
  "CMakeFiles/modb_core.dir/thresholds.cc.o.d"
  "CMakeFiles/modb_core.dir/uncertainty.cc.o"
  "CMakeFiles/modb_core.dir/uncertainty.cc.o.d"
  "CMakeFiles/modb_core.dir/update_policy.cc.o"
  "CMakeFiles/modb_core.dir/update_policy.cc.o.d"
  "libmodb_core.a"
  "libmodb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
