# Empty compiler generated dependencies file for modb_sim.
# This may be replaced when dependencies are built.
