file(REMOVE_RECURSE
  "CMakeFiles/modb_sim.dir/experiment.cc.o"
  "CMakeFiles/modb_sim.dir/experiment.cc.o.d"
  "CMakeFiles/modb_sim.dir/fleet.cc.o"
  "CMakeFiles/modb_sim.dir/fleet.cc.o.d"
  "CMakeFiles/modb_sim.dir/itinerary.cc.o"
  "CMakeFiles/modb_sim.dir/itinerary.cc.o.d"
  "CMakeFiles/modb_sim.dir/metrics.cc.o"
  "CMakeFiles/modb_sim.dir/metrics.cc.o.d"
  "CMakeFiles/modb_sim.dir/simulator.cc.o"
  "CMakeFiles/modb_sim.dir/simulator.cc.o.d"
  "CMakeFiles/modb_sim.dir/speed_curve.cc.o"
  "CMakeFiles/modb_sim.dir/speed_curve.cc.o.d"
  "libmodb_sim.a"
  "libmodb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
