file(REMOVE_RECURSE
  "libmodb_sim.a"
)
