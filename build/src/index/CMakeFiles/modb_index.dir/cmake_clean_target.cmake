file(REMOVE_RECURSE
  "libmodb_index.a"
)
