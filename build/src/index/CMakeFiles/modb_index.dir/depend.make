# Empty dependencies file for modb_index.
# This may be replaced when dependencies are built.
