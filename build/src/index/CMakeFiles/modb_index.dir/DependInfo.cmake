
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/linear_scan_index.cc" "src/index/CMakeFiles/modb_index.dir/linear_scan_index.cc.o" "gcc" "src/index/CMakeFiles/modb_index.dir/linear_scan_index.cc.o.d"
  "/root/repo/src/index/oplane.cc" "src/index/CMakeFiles/modb_index.dir/oplane.cc.o" "gcc" "src/index/CMakeFiles/modb_index.dir/oplane.cc.o.d"
  "/root/repo/src/index/rtree3.cc" "src/index/CMakeFiles/modb_index.dir/rtree3.cc.o" "gcc" "src/index/CMakeFiles/modb_index.dir/rtree3.cc.o.d"
  "/root/repo/src/index/timespace_index.cc" "src/index/CMakeFiles/modb_index.dir/timespace_index.cc.o" "gcc" "src/index/CMakeFiles/modb_index.dir/timespace_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/modb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/modb_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/modb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
