file(REMOVE_RECURSE
  "CMakeFiles/modb_index.dir/linear_scan_index.cc.o"
  "CMakeFiles/modb_index.dir/linear_scan_index.cc.o.d"
  "CMakeFiles/modb_index.dir/oplane.cc.o"
  "CMakeFiles/modb_index.dir/oplane.cc.o.d"
  "CMakeFiles/modb_index.dir/rtree3.cc.o"
  "CMakeFiles/modb_index.dir/rtree3.cc.o.d"
  "CMakeFiles/modb_index.dir/timespace_index.cc.o"
  "CMakeFiles/modb_index.dir/timespace_index.cc.o.d"
  "libmodb_index.a"
  "libmodb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
