# Empty compiler generated dependencies file for modb_util.
# This may be replaced when dependencies are built.
