file(REMOVE_RECURSE
  "CMakeFiles/modb_util.dir/histogram.cc.o"
  "CMakeFiles/modb_util.dir/histogram.cc.o.d"
  "CMakeFiles/modb_util.dir/metrics.cc.o"
  "CMakeFiles/modb_util.dir/metrics.cc.o.d"
  "CMakeFiles/modb_util.dir/rng.cc.o"
  "CMakeFiles/modb_util.dir/rng.cc.o.d"
  "CMakeFiles/modb_util.dir/stats.cc.o"
  "CMakeFiles/modb_util.dir/stats.cc.o.d"
  "CMakeFiles/modb_util.dir/status.cc.o"
  "CMakeFiles/modb_util.dir/status.cc.o.d"
  "CMakeFiles/modb_util.dir/table.cc.o"
  "CMakeFiles/modb_util.dir/table.cc.o.d"
  "CMakeFiles/modb_util.dir/thread_pool.cc.o"
  "CMakeFiles/modb_util.dir/thread_pool.cc.o.d"
  "libmodb_util.a"
  "libmodb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
