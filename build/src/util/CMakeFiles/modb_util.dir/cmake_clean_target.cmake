file(REMOVE_RECURSE
  "libmodb_util.a"
)
