file(REMOVE_RECURSE
  "libmodb_geo.a"
)
