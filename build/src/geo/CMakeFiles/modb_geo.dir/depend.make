# Empty dependencies file for modb_geo.
# This may be replaced when dependencies are built.
