
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/box.cc" "src/geo/CMakeFiles/modb_geo.dir/box.cc.o" "gcc" "src/geo/CMakeFiles/modb_geo.dir/box.cc.o.d"
  "/root/repo/src/geo/point.cc" "src/geo/CMakeFiles/modb_geo.dir/point.cc.o" "gcc" "src/geo/CMakeFiles/modb_geo.dir/point.cc.o.d"
  "/root/repo/src/geo/polygon.cc" "src/geo/CMakeFiles/modb_geo.dir/polygon.cc.o" "gcc" "src/geo/CMakeFiles/modb_geo.dir/polygon.cc.o.d"
  "/root/repo/src/geo/polyline.cc" "src/geo/CMakeFiles/modb_geo.dir/polyline.cc.o" "gcc" "src/geo/CMakeFiles/modb_geo.dir/polyline.cc.o.d"
  "/root/repo/src/geo/route.cc" "src/geo/CMakeFiles/modb_geo.dir/route.cc.o" "gcc" "src/geo/CMakeFiles/modb_geo.dir/route.cc.o.d"
  "/root/repo/src/geo/route_network.cc" "src/geo/CMakeFiles/modb_geo.dir/route_network.cc.o" "gcc" "src/geo/CMakeFiles/modb_geo.dir/route_network.cc.o.d"
  "/root/repo/src/geo/routing.cc" "src/geo/CMakeFiles/modb_geo.dir/routing.cc.o" "gcc" "src/geo/CMakeFiles/modb_geo.dir/routing.cc.o.d"
  "/root/repo/src/geo/segment.cc" "src/geo/CMakeFiles/modb_geo.dir/segment.cc.o" "gcc" "src/geo/CMakeFiles/modb_geo.dir/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/modb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
