file(REMOVE_RECURSE
  "CMakeFiles/modb_geo.dir/box.cc.o"
  "CMakeFiles/modb_geo.dir/box.cc.o.d"
  "CMakeFiles/modb_geo.dir/point.cc.o"
  "CMakeFiles/modb_geo.dir/point.cc.o.d"
  "CMakeFiles/modb_geo.dir/polygon.cc.o"
  "CMakeFiles/modb_geo.dir/polygon.cc.o.d"
  "CMakeFiles/modb_geo.dir/polyline.cc.o"
  "CMakeFiles/modb_geo.dir/polyline.cc.o.d"
  "CMakeFiles/modb_geo.dir/route.cc.o"
  "CMakeFiles/modb_geo.dir/route.cc.o.d"
  "CMakeFiles/modb_geo.dir/route_network.cc.o"
  "CMakeFiles/modb_geo.dir/route_network.cc.o.d"
  "CMakeFiles/modb_geo.dir/routing.cc.o"
  "CMakeFiles/modb_geo.dir/routing.cc.o.d"
  "CMakeFiles/modb_geo.dir/segment.cc.o"
  "CMakeFiles/modb_geo.dir/segment.cc.o.d"
  "libmodb_geo.a"
  "libmodb_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
