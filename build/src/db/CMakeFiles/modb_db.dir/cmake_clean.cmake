file(REMOVE_RECURSE
  "CMakeFiles/modb_db.dir/mod_database.cc.o"
  "CMakeFiles/modb_db.dir/mod_database.cc.o.d"
  "CMakeFiles/modb_db.dir/query_language.cc.o"
  "CMakeFiles/modb_db.dir/query_language.cc.o.d"
  "CMakeFiles/modb_db.dir/sharded_database.cc.o"
  "CMakeFiles/modb_db.dir/sharded_database.cc.o.d"
  "CMakeFiles/modb_db.dir/snapshot.cc.o"
  "CMakeFiles/modb_db.dir/snapshot.cc.o.d"
  "CMakeFiles/modb_db.dir/statistics.cc.o"
  "CMakeFiles/modb_db.dir/statistics.cc.o.d"
  "CMakeFiles/modb_db.dir/update_log.cc.o"
  "CMakeFiles/modb_db.dir/update_log.cc.o.d"
  "libmodb_db.a"
  "libmodb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
