file(REMOVE_RECURSE
  "libmodb_db.a"
)
