# Empty dependencies file for modb_db.
# This may be replaced when dependencies are built.
