
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/mod_database.cc" "src/db/CMakeFiles/modb_db.dir/mod_database.cc.o" "gcc" "src/db/CMakeFiles/modb_db.dir/mod_database.cc.o.d"
  "/root/repo/src/db/query_language.cc" "src/db/CMakeFiles/modb_db.dir/query_language.cc.o" "gcc" "src/db/CMakeFiles/modb_db.dir/query_language.cc.o.d"
  "/root/repo/src/db/sharded_database.cc" "src/db/CMakeFiles/modb_db.dir/sharded_database.cc.o" "gcc" "src/db/CMakeFiles/modb_db.dir/sharded_database.cc.o.d"
  "/root/repo/src/db/snapshot.cc" "src/db/CMakeFiles/modb_db.dir/snapshot.cc.o" "gcc" "src/db/CMakeFiles/modb_db.dir/snapshot.cc.o.d"
  "/root/repo/src/db/statistics.cc" "src/db/CMakeFiles/modb_db.dir/statistics.cc.o" "gcc" "src/db/CMakeFiles/modb_db.dir/statistics.cc.o.d"
  "/root/repo/src/db/update_log.cc" "src/db/CMakeFiles/modb_db.dir/update_log.cc.o" "gcc" "src/db/CMakeFiles/modb_db.dir/update_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/modb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/modb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/modb_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/modb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
