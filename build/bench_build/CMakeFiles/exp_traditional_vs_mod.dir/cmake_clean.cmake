file(REMOVE_RECURSE
  "../bench/exp_traditional_vs_mod"
  "../bench/exp_traditional_vs_mod.pdb"
  "CMakeFiles/exp_traditional_vs_mod.dir/exp_traditional_vs_mod.cc.o"
  "CMakeFiles/exp_traditional_vs_mod.dir/exp_traditional_vs_mod.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_traditional_vs_mod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
