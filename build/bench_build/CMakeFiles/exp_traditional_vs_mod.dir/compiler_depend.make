# Empty compiler generated dependencies file for exp_traditional_vs_mod.
# This may be replaced when dependencies are built.
