# Empty dependencies file for exp_concurrent_throughput.
# This may be replaced when dependencies are built.
