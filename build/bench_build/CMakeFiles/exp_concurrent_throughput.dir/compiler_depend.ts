# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_concurrent_throughput.
