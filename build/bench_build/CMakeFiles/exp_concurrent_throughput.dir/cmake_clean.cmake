file(REMOVE_RECURSE
  "../bench/exp_concurrent_throughput"
  "../bench/exp_concurrent_throughput.pdb"
  "CMakeFiles/exp_concurrent_throughput.dir/exp_concurrent_throughput.cc.o"
  "CMakeFiles/exp_concurrent_throughput.dir/exp_concurrent_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_concurrent_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
