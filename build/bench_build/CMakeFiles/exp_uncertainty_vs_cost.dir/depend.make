# Empty dependencies file for exp_uncertainty_vs_cost.
# This may be replaced when dependencies are built.
