file(REMOVE_RECURSE
  "../bench/exp_index_query"
  "../bench/exp_index_query.pdb"
  "CMakeFiles/exp_index_query.dir/exp_index_query.cc.o"
  "CMakeFiles/exp_index_query.dir/exp_index_query.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_index_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
