# Empty dependencies file for exp_index_query.
# This may be replaced when dependencies are built.
