file(REMOVE_RECURSE
  "../bench/exp_threshold_optimality"
  "../bench/exp_threshold_optimality.pdb"
  "CMakeFiles/exp_threshold_optimality.dir/exp_threshold_optimality.cc.o"
  "CMakeFiles/exp_threshold_optimality.dir/exp_threshold_optimality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_threshold_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
