# Empty compiler generated dependencies file for exp_threshold_optimality.
# This may be replaced when dependencies are built.
