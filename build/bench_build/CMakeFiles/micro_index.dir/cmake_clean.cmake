file(REMOVE_RECURSE
  "../bench/micro_index"
  "../bench/micro_index.pdb"
  "CMakeFiles/micro_index.dir/micro_index.cc.o"
  "CMakeFiles/micro_index.dir/micro_index.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
