# Empty compiler generated dependencies file for micro_index.
# This may be replaced when dependencies are built.
