file(REMOVE_RECURSE
  "../bench/micro_db"
  "../bench/micro_db.pdb"
  "CMakeFiles/micro_db.dir/micro_db.cc.o"
  "CMakeFiles/micro_db.dir/micro_db.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
