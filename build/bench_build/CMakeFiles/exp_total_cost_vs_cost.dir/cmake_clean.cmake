file(REMOVE_RECURSE
  "../bench/exp_total_cost_vs_cost"
  "../bench/exp_total_cost_vs_cost.pdb"
  "CMakeFiles/exp_total_cost_vs_cost.dir/exp_total_cost_vs_cost.cc.o"
  "CMakeFiles/exp_total_cost_vs_cost.dir/exp_total_cost_vs_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_total_cost_vs_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
