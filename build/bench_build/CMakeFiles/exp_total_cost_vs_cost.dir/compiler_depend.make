# Empty compiler generated dependencies file for exp_total_cost_vs_cost.
# This may be replaced when dependencies are built.
