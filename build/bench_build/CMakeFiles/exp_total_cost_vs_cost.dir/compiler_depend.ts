# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_total_cost_vs_cost.
