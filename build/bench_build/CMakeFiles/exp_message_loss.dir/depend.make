# Empty dependencies file for exp_message_loss.
# This may be replaced when dependencies are built.
