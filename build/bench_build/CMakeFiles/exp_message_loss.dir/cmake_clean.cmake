file(REMOVE_RECURSE
  "../bench/exp_message_loss"
  "../bench/exp_message_loss.pdb"
  "CMakeFiles/exp_message_loss.dir/exp_message_loss.cc.o"
  "CMakeFiles/exp_message_loss.dir/exp_message_loss.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_message_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
