file(REMOVE_RECURSE
  "../bench/exp_step_cost"
  "../bench/exp_step_cost.pdb"
  "CMakeFiles/exp_step_cost.dir/exp_step_cost.cc.o"
  "CMakeFiles/exp_step_cost.dir/exp_step_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_step_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
