# Empty compiler generated dependencies file for exp_step_cost.
# This may be replaced when dependencies are built.
