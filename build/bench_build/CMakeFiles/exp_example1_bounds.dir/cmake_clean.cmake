file(REMOVE_RECURSE
  "../bench/exp_example1_bounds"
  "../bench/exp_example1_bounds.pdb"
  "CMakeFiles/exp_example1_bounds.dir/exp_example1_bounds.cc.o"
  "CMakeFiles/exp_example1_bounds.dir/exp_example1_bounds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_example1_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
