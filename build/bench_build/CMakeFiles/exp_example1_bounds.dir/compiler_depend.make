# Empty compiler generated dependencies file for exp_example1_bounds.
# This may be replaced when dependencies are built.
