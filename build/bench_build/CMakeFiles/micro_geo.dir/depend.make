# Empty dependencies file for micro_geo.
# This may be replaced when dependencies are built.
