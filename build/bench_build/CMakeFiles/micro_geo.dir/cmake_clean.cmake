file(REMOVE_RECURSE
  "../bench/micro_geo"
  "../bench/micro_geo.pdb"
  "CMakeFiles/micro_geo.dir/micro_geo.cc.o"
  "CMakeFiles/micro_geo.dir/micro_geo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
