file(REMOVE_RECURSE
  "../bench/exp_hybrid_ablation"
  "../bench/exp_hybrid_ablation.pdb"
  "CMakeFiles/exp_hybrid_ablation.dir/exp_hybrid_ablation.cc.o"
  "CMakeFiles/exp_hybrid_ablation.dir/exp_hybrid_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_hybrid_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
