# Empty dependencies file for exp_hybrid_ablation.
# This may be replaced when dependencies are built.
