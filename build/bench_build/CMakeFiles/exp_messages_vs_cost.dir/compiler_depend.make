# Empty compiler generated dependencies file for exp_messages_vs_cost.
# This may be replaced when dependencies are built.
