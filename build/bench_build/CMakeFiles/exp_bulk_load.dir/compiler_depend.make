# Empty compiler generated dependencies file for exp_bulk_load.
# This may be replaced when dependencies are built.
