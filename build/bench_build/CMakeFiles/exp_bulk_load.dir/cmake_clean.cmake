file(REMOVE_RECURSE
  "../bench/exp_bulk_load"
  "../bench/exp_bulk_load.pdb"
  "CMakeFiles/exp_bulk_load.dir/exp_bulk_load.cc.o"
  "CMakeFiles/exp_bulk_load.dir/exp_bulk_load.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_bulk_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
