# Empty dependencies file for battlefield.
# This may be replaced when dependencies are built.
