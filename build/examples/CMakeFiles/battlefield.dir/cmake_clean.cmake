file(REMOVE_RECURSE
  "CMakeFiles/battlefield.dir/battlefield.cpp.o"
  "CMakeFiles/battlefield.dir/battlefield.cpp.o.d"
  "battlefield"
  "battlefield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battlefield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
