# Empty compiler generated dependencies file for city_courier.
# This may be replaced when dependencies are built.
