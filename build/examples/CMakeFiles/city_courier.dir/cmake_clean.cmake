file(REMOVE_RECURSE
  "CMakeFiles/city_courier.dir/city_courier.cpp.o"
  "CMakeFiles/city_courier.dir/city_courier.cpp.o.d"
  "city_courier"
  "city_courier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_courier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
