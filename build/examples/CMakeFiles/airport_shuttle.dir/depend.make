# Empty dependencies file for airport_shuttle.
# This may be replaced when dependencies are built.
