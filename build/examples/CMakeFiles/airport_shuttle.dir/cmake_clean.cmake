file(REMOVE_RECURSE
  "CMakeFiles/airport_shuttle.dir/airport_shuttle.cpp.o"
  "CMakeFiles/airport_shuttle.dir/airport_shuttle.cpp.o.d"
  "airport_shuttle"
  "airport_shuttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airport_shuttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
