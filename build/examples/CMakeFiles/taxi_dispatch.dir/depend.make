# Empty dependencies file for taxi_dispatch.
# This may be replaced when dependencies are built.
