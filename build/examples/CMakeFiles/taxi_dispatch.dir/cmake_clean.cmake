file(REMOVE_RECURSE
  "CMakeFiles/taxi_dispatch.dir/taxi_dispatch.cpp.o"
  "CMakeFiles/taxi_dispatch.dir/taxi_dispatch.cpp.o.d"
  "taxi_dispatch"
  "taxi_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
