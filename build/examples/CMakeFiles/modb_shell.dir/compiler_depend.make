# Empty compiler generated dependencies file for modb_shell.
# This may be replaced when dependencies are built.
