file(REMOVE_RECURSE
  "CMakeFiles/modb_shell.dir/modb_shell.cpp.o"
  "CMakeFiles/modb_shell.dir/modb_shell.cpp.o.d"
  "modb_shell"
  "modb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
