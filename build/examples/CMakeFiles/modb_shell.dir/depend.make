# Empty dependencies file for modb_shell.
# This may be replaced when dependencies are built.
