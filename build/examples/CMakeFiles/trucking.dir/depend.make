# Empty dependencies file for trucking.
# This may be replaced when dependencies are built.
