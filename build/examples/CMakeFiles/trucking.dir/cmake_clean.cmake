file(REMOVE_RECURSE
  "CMakeFiles/trucking.dir/trucking.cpp.o"
  "CMakeFiles/trucking.dir/trucking.cpp.o.d"
  "trucking"
  "trucking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trucking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
