# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/modb_util_test[1]_include.cmake")
include("/root/repo/build/tests/modb_geo_test[1]_include.cmake")
include("/root/repo/build/tests/modb_core_test[1]_include.cmake")
include("/root/repo/build/tests/modb_index_test[1]_include.cmake")
include("/root/repo/build/tests/modb_db_test[1]_include.cmake")
include("/root/repo/build/tests/modb_sim_test[1]_include.cmake")
include("/root/repo/build/tests/modb_integration_test[1]_include.cmake")
include("/root/repo/build/tests/modb_concurrency_test[1]_include.cmake")
