file(REMOVE_RECURSE
  "CMakeFiles/modb_geo_test.dir/geo/box_test.cc.o"
  "CMakeFiles/modb_geo_test.dir/geo/box_test.cc.o.d"
  "CMakeFiles/modb_geo_test.dir/geo/clip_test.cc.o"
  "CMakeFiles/modb_geo_test.dir/geo/clip_test.cc.o.d"
  "CMakeFiles/modb_geo_test.dir/geo/point_test.cc.o"
  "CMakeFiles/modb_geo_test.dir/geo/point_test.cc.o.d"
  "CMakeFiles/modb_geo_test.dir/geo/polygon_test.cc.o"
  "CMakeFiles/modb_geo_test.dir/geo/polygon_test.cc.o.d"
  "CMakeFiles/modb_geo_test.dir/geo/polyline_test.cc.o"
  "CMakeFiles/modb_geo_test.dir/geo/polyline_test.cc.o.d"
  "CMakeFiles/modb_geo_test.dir/geo/route_network_test.cc.o"
  "CMakeFiles/modb_geo_test.dir/geo/route_network_test.cc.o.d"
  "CMakeFiles/modb_geo_test.dir/geo/route_test.cc.o"
  "CMakeFiles/modb_geo_test.dir/geo/route_test.cc.o.d"
  "CMakeFiles/modb_geo_test.dir/geo/routing_test.cc.o"
  "CMakeFiles/modb_geo_test.dir/geo/routing_test.cc.o.d"
  "CMakeFiles/modb_geo_test.dir/geo/segment_test.cc.o"
  "CMakeFiles/modb_geo_test.dir/geo/segment_test.cc.o.d"
  "modb_geo_test"
  "modb_geo_test.pdb"
  "modb_geo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_geo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
