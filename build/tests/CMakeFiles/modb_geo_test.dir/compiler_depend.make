# Empty compiler generated dependencies file for modb_geo_test.
# This may be replaced when dependencies are built.
