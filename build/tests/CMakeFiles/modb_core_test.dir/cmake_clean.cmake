file(REMOVE_RECURSE
  "CMakeFiles/modb_core_test.dir/core/bounds_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/bounds_test.cc.o.d"
  "CMakeFiles/modb_core_test.dir/core/deviation_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/deviation_test.cc.o.d"
  "CMakeFiles/modb_core_test.dir/core/estimator_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/estimator_test.cc.o.d"
  "CMakeFiles/modb_core_test.dir/core/policies_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/policies_test.cc.o.d"
  "CMakeFiles/modb_core_test.dir/core/policy_property_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/policy_property_test.cc.o.d"
  "CMakeFiles/modb_core_test.dir/core/position_attribute_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/position_attribute_test.cc.o.d"
  "CMakeFiles/modb_core_test.dir/core/probability_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/probability_test.cc.o.d"
  "CMakeFiles/modb_core_test.dir/core/step_cost_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/step_cost_test.cc.o.d"
  "CMakeFiles/modb_core_test.dir/core/thresholds_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/thresholds_test.cc.o.d"
  "CMakeFiles/modb_core_test.dir/core/uncertainty_span_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/uncertainty_span_test.cc.o.d"
  "CMakeFiles/modb_core_test.dir/core/uncertainty_test.cc.o"
  "CMakeFiles/modb_core_test.dir/core/uncertainty_test.cc.o.d"
  "modb_core_test"
  "modb_core_test.pdb"
  "modb_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
