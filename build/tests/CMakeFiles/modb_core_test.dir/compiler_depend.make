# Empty compiler generated dependencies file for modb_core_test.
# This may be replaced when dependencies are built.
