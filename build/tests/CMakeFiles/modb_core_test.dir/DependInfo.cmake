
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/bounds_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/bounds_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/bounds_test.cc.o.d"
  "/root/repo/tests/core/deviation_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/deviation_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/deviation_test.cc.o.d"
  "/root/repo/tests/core/estimator_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/estimator_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/estimator_test.cc.o.d"
  "/root/repo/tests/core/policies_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/policies_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/policies_test.cc.o.d"
  "/root/repo/tests/core/policy_property_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/policy_property_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/policy_property_test.cc.o.d"
  "/root/repo/tests/core/position_attribute_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/position_attribute_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/position_attribute_test.cc.o.d"
  "/root/repo/tests/core/probability_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/probability_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/probability_test.cc.o.d"
  "/root/repo/tests/core/step_cost_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/step_cost_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/step_cost_test.cc.o.d"
  "/root/repo/tests/core/thresholds_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/thresholds_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/thresholds_test.cc.o.d"
  "/root/repo/tests/core/uncertainty_span_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/uncertainty_span_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/uncertainty_span_test.cc.o.d"
  "/root/repo/tests/core/uncertainty_test.cc" "tests/CMakeFiles/modb_core_test.dir/core/uncertainty_test.cc.o" "gcc" "tests/CMakeFiles/modb_core_test.dir/core/uncertainty_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/modb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/modb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/modb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/modb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/modb_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/modb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
