file(REMOVE_RECURSE
  "CMakeFiles/modb_sim_test.dir/sim/experiment_test.cc.o"
  "CMakeFiles/modb_sim_test.dir/sim/experiment_test.cc.o.d"
  "CMakeFiles/modb_sim_test.dir/sim/fleet_test.cc.o"
  "CMakeFiles/modb_sim_test.dir/sim/fleet_test.cc.o.d"
  "CMakeFiles/modb_sim_test.dir/sim/itinerary_test.cc.o"
  "CMakeFiles/modb_sim_test.dir/sim/itinerary_test.cc.o.d"
  "CMakeFiles/modb_sim_test.dir/sim/simulator_test.cc.o"
  "CMakeFiles/modb_sim_test.dir/sim/simulator_test.cc.o.d"
  "CMakeFiles/modb_sim_test.dir/sim/speed_curve_test.cc.o"
  "CMakeFiles/modb_sim_test.dir/sim/speed_curve_test.cc.o.d"
  "CMakeFiles/modb_sim_test.dir/sim/trip_test.cc.o"
  "CMakeFiles/modb_sim_test.dir/sim/trip_test.cc.o.d"
  "CMakeFiles/modb_sim_test.dir/sim/vehicle_channel_test.cc.o"
  "CMakeFiles/modb_sim_test.dir/sim/vehicle_channel_test.cc.o.d"
  "CMakeFiles/modb_sim_test.dir/sim/vehicle_test.cc.o"
  "CMakeFiles/modb_sim_test.dir/sim/vehicle_test.cc.o.d"
  "modb_sim_test"
  "modb_sim_test.pdb"
  "modb_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
