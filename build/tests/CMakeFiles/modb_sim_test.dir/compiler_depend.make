# Empty compiler generated dependencies file for modb_sim_test.
# This may be replaced when dependencies are built.
