# Empty dependencies file for modb_integration_test.
# This may be replaced when dependencies are built.
