file(REMOVE_RECURSE
  "CMakeFiles/modb_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/modb_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/modb_integration_test.dir/integration/stress_test.cc.o"
  "CMakeFiles/modb_integration_test.dir/integration/stress_test.cc.o.d"
  "modb_integration_test"
  "modb_integration_test.pdb"
  "modb_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
