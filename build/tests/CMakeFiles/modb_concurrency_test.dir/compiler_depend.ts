# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for modb_concurrency_test.
