file(REMOVE_RECURSE
  "CMakeFiles/modb_concurrency_test.dir/db/sharded_database_test.cc.o"
  "CMakeFiles/modb_concurrency_test.dir/db/sharded_database_test.cc.o.d"
  "CMakeFiles/modb_concurrency_test.dir/integration/concurrent_stress_test.cc.o"
  "CMakeFiles/modb_concurrency_test.dir/integration/concurrent_stress_test.cc.o.d"
  "modb_concurrency_test"
  "modb_concurrency_test.pdb"
  "modb_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
