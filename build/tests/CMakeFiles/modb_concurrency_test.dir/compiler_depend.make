# Empty compiler generated dependencies file for modb_concurrency_test.
# This may be replaced when dependencies are built.
