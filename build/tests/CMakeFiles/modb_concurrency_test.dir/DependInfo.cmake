
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/db/sharded_database_test.cc" "tests/CMakeFiles/modb_concurrency_test.dir/db/sharded_database_test.cc.o" "gcc" "tests/CMakeFiles/modb_concurrency_test.dir/db/sharded_database_test.cc.o.d"
  "/root/repo/tests/integration/concurrent_stress_test.cc" "tests/CMakeFiles/modb_concurrency_test.dir/integration/concurrent_stress_test.cc.o" "gcc" "tests/CMakeFiles/modb_concurrency_test.dir/integration/concurrent_stress_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/modb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/modb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/modb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/modb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/modb_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/modb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
