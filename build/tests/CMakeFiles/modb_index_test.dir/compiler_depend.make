# Empty compiler generated dependencies file for modb_index_test.
# This may be replaced when dependencies are built.
