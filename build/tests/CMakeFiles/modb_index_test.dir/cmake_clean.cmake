file(REMOVE_RECURSE
  "CMakeFiles/modb_index_test.dir/index/bulk_load_test.cc.o"
  "CMakeFiles/modb_index_test.dir/index/bulk_load_test.cc.o.d"
  "CMakeFiles/modb_index_test.dir/index/oplane_test.cc.o"
  "CMakeFiles/modb_index_test.dir/index/oplane_test.cc.o.d"
  "CMakeFiles/modb_index_test.dir/index/rtree3_test.cc.o"
  "CMakeFiles/modb_index_test.dir/index/rtree3_test.cc.o.d"
  "CMakeFiles/modb_index_test.dir/index/timespace_index_test.cc.o"
  "CMakeFiles/modb_index_test.dir/index/timespace_index_test.cc.o.d"
  "modb_index_test"
  "modb_index_test.pdb"
  "modb_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
