file(REMOVE_RECURSE
  "CMakeFiles/modb_db_test.dir/db/advanced_query_test.cc.o"
  "CMakeFiles/modb_db_test.dir/db/advanced_query_test.cc.o.d"
  "CMakeFiles/modb_db_test.dir/db/mod_database_test.cc.o"
  "CMakeFiles/modb_db_test.dir/db/mod_database_test.cc.o.d"
  "CMakeFiles/modb_db_test.dir/db/query_language_test.cc.o"
  "CMakeFiles/modb_db_test.dir/db/query_language_test.cc.o.d"
  "CMakeFiles/modb_db_test.dir/db/snapshot_test.cc.o"
  "CMakeFiles/modb_db_test.dir/db/snapshot_test.cc.o.d"
  "CMakeFiles/modb_db_test.dir/db/statistics_test.cc.o"
  "CMakeFiles/modb_db_test.dir/db/statistics_test.cc.o.d"
  "CMakeFiles/modb_db_test.dir/db/trajectory_test.cc.o"
  "CMakeFiles/modb_db_test.dir/db/trajectory_test.cc.o.d"
  "CMakeFiles/modb_db_test.dir/db/update_log_test.cc.o"
  "CMakeFiles/modb_db_test.dir/db/update_log_test.cc.o.d"
  "modb_db_test"
  "modb_db_test.pdb"
  "modb_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
