# Empty dependencies file for modb_db_test.
# This may be replaced when dependencies are built.
