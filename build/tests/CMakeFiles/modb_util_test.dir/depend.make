# Empty dependencies file for modb_util_test.
# This may be replaced when dependencies are built.
