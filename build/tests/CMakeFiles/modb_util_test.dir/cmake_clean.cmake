file(REMOVE_RECURSE
  "CMakeFiles/modb_util_test.dir/util/histogram_test.cc.o"
  "CMakeFiles/modb_util_test.dir/util/histogram_test.cc.o.d"
  "CMakeFiles/modb_util_test.dir/util/metrics_test.cc.o"
  "CMakeFiles/modb_util_test.dir/util/metrics_test.cc.o.d"
  "CMakeFiles/modb_util_test.dir/util/rng_test.cc.o"
  "CMakeFiles/modb_util_test.dir/util/rng_test.cc.o.d"
  "CMakeFiles/modb_util_test.dir/util/stats_test.cc.o"
  "CMakeFiles/modb_util_test.dir/util/stats_test.cc.o.d"
  "CMakeFiles/modb_util_test.dir/util/status_test.cc.o"
  "CMakeFiles/modb_util_test.dir/util/status_test.cc.o.d"
  "CMakeFiles/modb_util_test.dir/util/table_test.cc.o"
  "CMakeFiles/modb_util_test.dir/util/table_test.cc.o.d"
  "CMakeFiles/modb_util_test.dir/util/thread_pool_test.cc.o"
  "CMakeFiles/modb_util_test.dir/util/thread_pool_test.cc.o.d"
  "modb_util_test"
  "modb_util_test.pdb"
  "modb_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modb_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
