// E10 (extension) — STR bulk loading vs incremental insertion for the
// initial fleet load of the time-space index: build time, tree size, and
// query cost on the packed vs grown tree.

#include <chrono>
#include <cstdio>

#include "bench/exp_common.h"
#include "index/rtree3.h"
#include "util/rng.h"

namespace modb::bench {
namespace {

using Clock = std::chrono::steady_clock;
using geo::Box3;

std::vector<std::pair<Box3, index::RTree3::Value>> MakeEntries(
    std::size_t n, util::Rng& rng) {
  std::vector<std::pair<Box3, index::RTree3::Value>> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0.0, 1000.0);
    const double y = rng.Uniform(0.0, 1000.0);
    const double t = rng.Uniform(0.0, 120.0);
    entries.emplace_back(
        Box3(x, y, t, x + rng.Uniform(0.5, 5.0), y + rng.Uniform(0.5, 5.0),
             t + 4.0),
        i);
  }
  return entries;
}

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int Run() {
  PrintHeader("E10: STR bulk load vs incremental R*-tree build",
              "packed builds are much faster and yield a smaller tree with "
              "equal answers");

  util::Table table({"N entries", "insert ms", "bulk ms", "speedup",
                     "insert nodes", "bulk nodes", "insert us/q",
                     "bulk us/q"});
  bool pass = true;
  for (std::size_t n : {10000u, 40000u, 160000u}) {
    util::Rng rng(n);
    const auto entries = MakeEntries(n, rng);

    const auto t0 = Clock::now();
    index::RTree3 incremental;
    for (const auto& [box, value] : entries) incremental.Insert(box, value);
    const double insert_ms = MillisSince(t0);

    const auto t1 = Clock::now();
    index::RTree3 bulk;
    bulk.BulkLoad(entries);
    const double bulk_ms = MillisSince(t1);

    // Query cost on both trees.
    auto time_queries = [](const index::RTree3& tree) {
      util::Rng qrng(99);
      const auto q0 = Clock::now();
      std::size_t hits = 0;
      for (int q = 0; q < 500; ++q) {
        const double x = qrng.Uniform(0.0, 950.0);
        const double y = qrng.Uniform(0.0, 950.0);
        const double t = qrng.Uniform(0.0, 120.0);
        tree.Search(Box3(x, y, t, x + 50.0, y + 50.0, t),
                    [&hits](const Box3&, index::RTree3::Value) { ++hits; });
      }
      (void)hits;
      return MillisSince(q0) * 1000.0 / 500.0;
    };
    const double insert_usq = time_queries(incremental);
    const double bulk_usq = time_queries(bulk);

    table.NewRow()
        .Add(n)
        .Add(insert_ms, 1)
        .Add(bulk_ms, 1)
        .Add(insert_ms / bulk_ms, 1)
        .Add(incremental.num_nodes())
        .Add(bulk.num_nodes())
        .Add(insert_usq, 1)
        .Add(bulk_usq, 1);

    pass &= bulk_ms < insert_ms;
    pass &= bulk.num_nodes() <= incremental.num_nodes();
    pass &= bulk.size() == incremental.size();
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape check — bulk build faster and at least as compact at "
              "every size: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
