// E14: durability tax — update throughput with the WAL off, on (OS page
// cache), on with group commit (fsync per MiB), and on with
// fsync-per-append, plus recovery time as a function of log length.
//
// Workload: a fleet of dead-reckoning vehicles on an urban grid, a pure
// position-update firehose (the paper's dominant operation). The WAL
// appends one ~60-byte checksummed frame per update before the in-memory
// commit; "group" fsyncs once per MiB of frames (bounding power-cut loss
// to that window); "fsync" forces every frame to durable storage (group
// commit of 1 — the worst case). Recovery bulk-replays the whole log into
// an empty store restored from the bootstrap checkpoint: records are
// staged into the fleet map and the time-space index is rebuilt once via
// the packed STR bulk load.
//
// Shape checks (exit non-zero on failure):
//   - WAL-on (no fsync) sustains at least half the WAL-off throughput;
//   - group commit sustains at least 0.9x the WAL-off throughput;
//   - recovery replays every appended record and restores the full fleet;
//   - replay sustains >= 40k records/s (10x the pre-bulk-replay ~4k/s).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "db/mod_database.h"
#include "db/recovery.h"
#include "geo/route_network.h"
#include "util/rng.h"
#include "util/table.h"

namespace modb::bench {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kFleetSize = 1024;
constexpr std::size_t kUpdates = 100000;      // off / wal modes
constexpr std::size_t kFsyncUpdates = 2000;   // fsync is ~3 orders slower

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
      .count();
}

void LoadFleet(const geo::RouteNetwork& network, db::ModDatabase* db) {
  std::vector<db::ModDatabase::BulkObject> batch;
  util::Rng rng(7);
  const auto& routes = network.routes();
  for (core::ObjectId id = 0; id < kFleetSize; ++id) {
    const geo::Route& route = routes[id % routes.size()];
    db::ModDatabase::BulkObject object;
    object.id = id;
    object.attr.route = route.id();
    object.attr.start_route_distance = rng.Uniform(0.0, route.Length() * 0.9);
    object.attr.start_position =
        route.PointAt(object.attr.start_route_distance);
    object.attr.speed = rng.Uniform(0.2, 1.2);
    object.attr.max_speed = 1.5;
    object.attr.policy = core::PolicyKind::kAverageImmediateLinear;
    batch.push_back(std::move(object));
  }
  if (!db->BulkInsert(std::move(batch)).ok()) {
    std::fprintf(stderr, "fleet load failed\n");
    std::abort();
  }
}

/// Applies `count` updates (monotone time per object) and returns seconds.
double UpdateFirehose(const geo::RouteNetwork& network, db::ModDatabase* db,
                      std::size_t count) {
  util::Rng rng(42);
  const auto& routes = network.routes();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    const core::ObjectId id = i % kFleetSize;
    const geo::Route& route = routes[id % routes.size()];
    core::PositionUpdate update;
    update.object = id;
    update.time = 1.0 + static_cast<double>(i / kFleetSize);
    update.route = route.id();
    update.route_distance = rng.Uniform(0.0, route.Length() * 0.9);
    update.position = route.PointAt(update.route_distance);
    update.direction = core::TravelDirection::kForward;
    update.speed = rng.Uniform(0.2, 1.2);
    if (!db->ApplyUpdate(update).ok()) {
      std::fprintf(stderr, "update %zu failed\n", i);
      std::abort();
    }
  }
  return Seconds(t0, std::chrono::steady_clock::now());
}

struct ModeResult {
  std::string mode;
  std::size_t updates = 0;
  double seconds = 0.0;
  double updates_per_sec = 0.0;
};

ModeResult RunMode(const geo::RouteNetwork& network, const std::string& mode,
                   const std::string& dir) {
  db::ModDatabase db(&network);
  LoadFleet(network, &db);

  std::unique_ptr<db::DurabilityManager> durability;
  std::size_t count = kUpdates;
  if (mode != "off") {
    fs::remove_all(dir);
    db::DurabilityOptions options;
    if (mode == "group") {
      options.wal.sync_every_bytes = 1ull << 20;
    } else if (mode == "fsync") {
      options.wal.sync_every_append = true;
      count = kFsyncUpdates;
    }
    auto opened = db::DurabilityManager::Open(&db, dir, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "durability open failed: %s\n",
                   opened.status().message().c_str());
      std::abort();
    }
    durability = std::move(*opened);
  }

  ModeResult result;
  result.mode = mode;
  result.updates = count;
  result.seconds = UpdateFirehose(network, &db, count);
  result.updates_per_sec = static_cast<double>(count) / result.seconds;
  durability.reset();
  fs::remove_all(dir);
  return result;
}

struct RecoveryResult {
  std::size_t log_records = 0;
  double recover_ms = 0.0;
  std::uint64_t replayed = 0;
  std::size_t objects = 0;
  bool clean = false;
};

RecoveryResult RunRecovery(const geo::RouteNetwork& network,
                           const std::string& dir, std::size_t log_records) {
  fs::remove_all(dir);
  {
    db::ModDatabase db(&network);
    LoadFleet(network, &db);
    auto opened = db::DurabilityManager::Open(&db, dir, {});
    if (!opened.ok()) std::abort();
    (void)UpdateFirehose(network, &db, log_records);
  }

  const auto t0 = std::chrono::steady_clock::now();
  auto recovered = db::Recover(dir);
  const double seconds = Seconds(t0, std::chrono::steady_clock::now());
  RecoveryResult result;
  result.log_records = log_records;
  result.recover_ms = seconds * 1e3;
  if (recovered.ok()) {
    result.replayed = recovered->report.wal_records_replayed;
    result.objects = recovered->database->num_objects();
    result.clean = recovered->report.clean;
  }
  fs::remove_all(dir);
  return result;
}

}  // namespace
}  // namespace modb::bench

int main() {
  using namespace modb::bench;

  PrintHeader("E14 WAL overhead & recovery",
              "write-ahead logging makes the MOD store durable at a small "
              "throughput tax (OS-cached appends), with crash recovery "
              "bounded by checkpoint + log-replay time (systems extension; "
              "not a claim of the 1998 paper)");

  modb::geo::RouteNetwork network;
  network.AddGridNetwork(10, 10, 100.0);
  const std::string dir =
      (fs::temp_directory_path() / "modb_e14_wal_overhead").string();

  // --- update throughput per durability mode -----------------------------
  modb::util::Table table({"mode", "updates", "seconds", "updates/s",
                           "vs off"});
  std::vector<ModeResult> results;
  for (const std::string mode : {"off", "wal", "group", "fsync"}) {
    results.push_back(RunMode(network, mode, dir));
  }
  const double off_ups = results[0].updates_per_sec;
  for (const ModeResult& r : results) {
    table.NewRow()
        .Add(r.mode)
        .Add(r.updates)
        .Add(r.seconds, 3)
        .Add(r.updates_per_sec, 0)
        .Add(r.updates_per_sec / off_ups, 3);
  }
  std::printf("%s\n", table.ToString().c_str());

  // --- recovery time vs log length ---------------------------------------
  modb::util::Table recovery_table({"log records", "recover ms", "records/s",
                                    "replayed", "objects", "clean"});
  std::vector<RecoveryResult> recoveries;
  for (const std::size_t log_records :
       {std::size_t{10000}, std::size_t{40000}, std::size_t{160000}}) {
    const RecoveryResult r = RunRecovery(network, dir, log_records);
    recoveries.push_back(r);
    recovery_table.NewRow()
        .Add(r.log_records)
        .Add(r.recover_ms, 1)
        .Add(static_cast<double>(r.log_records) / (r.recover_ms * 1e-3), 0)
        .Add(static_cast<std::size_t>(r.replayed))
        .Add(r.objects)
        .Add(std::string(r.clean ? "yes" : "NO"));
  }
  std::printf("%s\n", recovery_table.ToString().c_str());

  // --- shape checks ------------------------------------------------------
  bool pass = true;
  const double wal_ratio = results[1].updates_per_sec / off_ups;
  if (wal_ratio < 0.5) {
    std::printf("shape check — WAL-on >= 0.5x WAL-off throughput: FAIL "
                "(ratio %.3f)\n",
                wal_ratio);
    pass = false;
  } else {
    std::printf("shape check — WAL-on >= 0.5x WAL-off throughput: PASS "
                "(ratio %.3f)\n",
                wal_ratio);
  }
  const double group_ratio = results[2].updates_per_sec / off_ups;
  if (group_ratio < 0.9) {
    std::printf("shape check — group commit >= 0.9x WAL-off throughput: FAIL "
                "(ratio %.3f)\n",
                group_ratio);
    pass = false;
  } else {
    std::printf("shape check — group commit >= 0.9x WAL-off throughput: PASS "
                "(ratio %.3f)\n",
                group_ratio);
  }
  bool recovery_ok = true;
  for (const RecoveryResult& r : recoveries) {
    if (r.replayed != r.log_records || r.objects != kFleetSize || !r.clean) {
      std::printf("shape check — recovery replays the full log (%zu): FAIL\n",
                  r.log_records);
      pass = false;
      recovery_ok = false;
    }
  }
  if (recovery_ok) {
    std::printf("shape check — recovery replays the full log at every "
                "length: PASS\n");
  }
  double worst_rate = std::numeric_limits<double>::infinity();
  for (const RecoveryResult& r : recoveries) {
    worst_rate = std::min(worst_rate, static_cast<double>(r.log_records) /
                                          (r.recover_ms * 1e-3));
  }
  if (worst_rate < 40000.0) {
    std::printf("shape check — bulk replay >= 40k records/s: FAIL "
                "(worst %.0f/s)\n",
                worst_rate);
    pass = false;
  } else {
    std::printf("shape check — bulk replay >= 40k records/s: PASS "
                "(worst %.0f/s)\n",
                worst_rate);
  }
  return pass ? 0 : 1;
}
