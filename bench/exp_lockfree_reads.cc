// E20 — epoch-based lock-free index reads under a concurrent writer: the
// same R*-tree workload (8 query threads + 1 continuous update thread) run
// against three configurations of the in-place tree + external lock
// baseline and the resident copy-on-write tree.
//
// The baseline has an inherent tradeoff this experiment makes explicit. A
// reader-preferring shared_mutex (glibc's std::shared_mutex) keeps query
// threads fast, but under a continuous query load the update thread
// starves — single-digit update cycles per second, which for a MOD is
// fatal: position updates are the lifeblood of the model (the paper's
// whole subject is when to send them). A writer-preferring rwlock keeps
// updates flowing at full rate, but then every update blocks all eight
// query threads and read throughput collapses. The epoch scheme removes
// the tradeoff: readers traverse an immutable epoch-protected snapshot
// and take no lock at all, so both sides run at full speed.
//
// The speed gate is therefore measured against the baseline that a real
// deployment would have to pick — the writer-preferring lock, the only
// locked configuration that sustains the update stream — and the claim is
// >= 1.5x aggregate query throughput at byte-identical answers. The
// reader-preferring row is reported alongside for the full story.
// Identity is checked both at the tree level (resident vs legacy
// differential) and at the sharded database level (lock-free probes on
// vs off).
//
// `--smoke` shrinks the fleet and the measured window for CI;
// `--no-speed-gate` (sanitizer builds) gates on identity only.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "bench/exp_common.h"
#include "db/mod_database.h"
#include "db/sharded_database.h"
#include "geo/route_network.h"
#include "index/rtree3.h"
#include "util/rng.h"
#include "util/table.h"

namespace modb::bench {
namespace {

using Clock = std::chrono::steady_clock;
using geo::Box3;
using index::RTree3;

constexpr std::size_t kReaders = 8;
constexpr std::size_t kBoxesPerObject = 15;
constexpr std::size_t kObjectsPerCycle = 4;

Box3 RandomBox(util::Rng& rng, double space, double extent) {
  const double x = rng.Uniform(0.0, space);
  const double y = rng.Uniform(0.0, space);
  const double t = rng.Uniform(0.0, space);
  return Box3(x, y, t, x + extent, y + extent, t + extent);
}

// ---- Part 1: tree-level reader throughput, locked vs lock-free ----

// The locked configuration a deployment would actually have to run: a
// rwlock that admits no new readers while a writer is waiting, so the
// update stream cannot starve behind a continuous query load.
class WriterPreferringLock {
 public:
  void lock_shared() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return writers_waiting_ == 0 && !writer_active_; });
    ++readers_;
  }
  void unlock_shared() {
    std::unique_lock lock(mu_);
    if (--readers_ == 0) cv_.notify_all();
  }
  void lock() {
    std::unique_lock lock(mu_);
    ++writers_waiting_;
    cv_.wait(lock, [&] { return readers_ == 0 && !writer_active_; });
    --writers_waiting_;
    writer_active_ = true;
  }
  void unlock() {
    std::unique_lock lock(mu_);
    writer_active_ = false;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int readers_ = 0;
  int writers_waiting_ = 0;
  bool writer_active_ = false;
};

enum class ReadMode {
  kSharedMutex,  // reader-preferring std::shared_mutex: writer starves
  kFairLock,     // writer-preferring rwlock: updates flow, readers stall
  kLockFree,     // epoch-protected snapshot reads, no lock
};

struct TreeThroughput {
  double reads_per_sec = 0.0;
  double write_cycles_per_sec = 0.0;
};

TreeThroughput MeasureTree(ReadMode mode, std::size_t objects,
                           double seconds) {
  const bool lock_free = mode == ReadMode::kLockFree;
  RTree3::Options options;
  options.concurrent_reads = lock_free;
  RTree3 tree(options);

  util::Rng rng(404);
  std::vector<std::vector<Box3>> boxes(objects);
  std::vector<std::pair<Box3, RTree3::Value>> load;
  load.reserve(objects * kBoxesPerObject);
  for (std::size_t i = 0; i < objects; ++i) {
    for (std::size_t b = 0; b < kBoxesPerObject; ++b) {
      boxes[i].push_back(RandomBox(rng, 500.0, 4.0));
      load.emplace_back(boxes[i][b], i);
    }
  }
  tree.BulkLoad(std::move(load));

  // The historical read contract needs a lock around every access; the
  // resident tree's readers go straight in.
  std::shared_mutex shared_mu;
  WriterPreferringLock fair_mu;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> cycles{0};

  std::thread writer([&] {
    // The §4.2 position-update cycle, batched the way ApplyUpdateBatch
    // delivers it: for each of a handful of objects, drop its o-plane
    // boxes and insert the new ones — one atomic unit per cycle
    // (exclusive lock in locked modes, a write batch in lock-free mode).
    util::Rng wrng(405);
    std::size_t next = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<std::size_t> ids;
      std::vector<std::vector<Box3>> fresh(kObjectsPerCycle);
      for (std::size_t o = 0; o < kObjectsPerCycle; ++o) {
        ids.push_back(next++ % objects);
        for (std::size_t b = 0; b < kBoxesPerObject; ++b) {
          fresh[o].push_back(RandomBox(wrng, 500.0, 4.0));
        }
      }
      const auto apply = [&] {
        for (std::size_t o = 0; o < kObjectsPerCycle; ++o) {
          const std::size_t id = ids[o];
          for (const Box3& b : boxes[id]) (void)tree.Remove(b, id);
          for (const Box3& b : fresh[o]) tree.Insert(b, id);
        }
      };
      if (mode == ReadMode::kLockFree) {
        RTree3::BatchScope batch(tree);
        apply();
      } else if (mode == ReadMode::kFairLock) {
        std::unique_lock lock(fair_mu);
        apply();
      } else {
        std::unique_lock lock(shared_mu);
        apply();
      }
      for (std::size_t o = 0; o < kObjectsPerCycle; ++o) {
        boxes[ids[o]] = std::move(fresh[o]);
      }
      cycles.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rrng(500 + r);
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // A range query's shape: a thin time slice over a spatial window.
        const double t = rrng.Uniform(0.0, 500.0);
        const double x = rrng.Uniform(0.0, 450.0);
        const double y = rrng.Uniform(0.0, 450.0);
        const Box3 slice(x, y, t, x + 50.0, y + 50.0, t);
        std::size_t hits = 0;
        const auto count = [&hits](const Box3&, RTree3::Value) { ++hits; };
        if (mode == ReadMode::kLockFree) {
          tree.Search(slice, count);
        } else if (mode == ReadMode::kFairLock) {
          std::shared_lock lock(fair_mu);
          tree.Search(slice, count);
        } else {
          std::shared_lock lock(shared_mu);
          tree.Search(slice, count);
        }
        local += 1 + (hits == static_cast<std::size_t>(-1));  // keep `hits`
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  writer.join();
  for (std::thread& th : readers) th.join();

  TreeThroughput out;
  out.reads_per_sec = static_cast<double>(reads.load()) / seconds;
  out.write_cycles_per_sec =
      static_cast<double>(cycles.load() * kObjectsPerCycle) / seconds;
  return out;
}

// ---- Part 2: identity, tree level and sharded-database level ----

bool TreesAnswerIdentically(std::size_t objects) {
  RTree3 resident;
  RTree3::Options legacy_options;
  legacy_options.concurrent_reads = false;
  RTree3 legacy(legacy_options);

  util::Rng rng(406);
  std::vector<std::vector<Box3>> boxes(objects);
  for (std::size_t i = 0; i < objects; ++i) {
    for (std::size_t b = 0; b < kBoxesPerObject; ++b) {
      const Box3 box = RandomBox(rng, 500.0, 4.0);
      boxes[i].push_back(box);
      resident.Insert(box, i);
      legacy.Insert(box, i);
    }
  }
  // A round of update cycles so both trees have been through the
  // remove+reinsert path, then a query sweep.
  for (std::size_t i = 0; i < objects; i += 3) {
    for (const Box3& b : boxes[i]) {
      if (!resident.Remove(b, i)) return false;
      if (!legacy.Remove(b, i)) return false;
    }
    boxes[i].clear();
    for (std::size_t b = 0; b < kBoxesPerObject; ++b) {
      boxes[i].push_back(RandomBox(rng, 500.0, 4.0));
      resident.Insert(boxes[i][b], i);
      legacy.Insert(boxes[i][b], i);
    }
  }
  for (int q = 0; q < 64; ++q) {
    const Box3 query = RandomBox(rng, 460.0, 40.0);
    std::vector<RTree3::Value> a = resident.SearchValues(query);
    std::vector<RTree3::Value> b = legacy.SearchValues(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return false;
  }
  return true;
}

struct Fleet {
  geo::RouteNetwork network;
  std::vector<core::PositionAttribute> attrs;
  std::vector<core::PositionUpdate> updates;
  std::vector<geo::Polygon> queries;
};

std::unique_ptr<Fleet> MakeFleet(std::size_t num_objects,
                                 std::size_t num_queries) {
  auto f = std::make_unique<Fleet>();
  f->network.AddGridNetwork(20, 20, 30.0);
  util::Rng rng(407);
  for (std::size_t i = 0; i < num_objects; ++i) {
    core::PositionAttribute attr;
    attr.route = static_cast<geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(f->network.size()) - 1));
    const double len = f->network.route(attr.route).Length();
    attr.start_route_distance = rng.Uniform(0.0, len * 0.5);
    attr.start_position =
        f->network.route(attr.route).PointAt(attr.start_route_distance);
    attr.speed = rng.Uniform(0.5, 5.0);
    attr.update_cost = 5.0;
    attr.max_speed = 25.0;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    f->attrs.push_back(attr);
  }
  for (std::size_t i = 0; i < num_objects; ++i) {
    const core::PositionAttribute& attr = f->attrs[i];
    core::PositionUpdate u;
    u.object = static_cast<core::ObjectId>(i);
    u.time = 10.0;
    u.route = attr.route;
    const double len = f->network.route(attr.route).Length();
    u.route_distance =
        std::min(len, attr.start_route_distance + attr.speed * 10.0);
    u.position = f->network.route(u.route).PointAt(u.route_distance);
    u.direction = core::TravelDirection::kForward;
    u.speed = rng.Uniform(0.5, 5.0);
    f->updates.push_back(u);
  }
  for (std::size_t q = 0; q < num_queries; ++q) {
    f->queries.push_back(geo::Polygon::CenteredRectangle(
        {rng.Uniform(50.0, 520.0), rng.Uniform(50.0, 520.0)}, 40.0, 40.0));
  }
  return f;
}

std::unique_ptr<db::ShardedModDatabase> BuildSharded(const Fleet& f,
                                                     bool lock_free) {
  db::ShardedModDatabaseOptions options;
  options.num_shards = 4;
  options.num_query_threads = 0;
  options.lock_free_index_probes = lock_free;
  auto database =
      std::make_unique<db::ShardedModDatabase>(&f.network, options);
  std::vector<db::ModDatabase::BulkObject> fleet;
  for (std::size_t i = 0; i < f.attrs.size(); ++i) {
    db::ModDatabase::BulkObject o;
    o.id = static_cast<core::ObjectId>(i);
    o.attr = f.attrs[i];
    fleet.push_back(std::move(o));
  }
  if (!database->BulkInsert(std::move(fleet)).ok()) return nullptr;
  for (const auto& u : f.updates) (void)database->ApplyUpdate(u);
  return database;
}

bool SameNearest(const db::NearestAnswer& a, const db::NearestAnswer& b) {
  if (a.items.size() != b.items.size()) return false;
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    if (a.items[i].id != b.items[i].id ||
        a.items[i].db_distance != b.items[i].db_distance) {
      return false;
    }
  }
  return true;
}

bool ShardedAnswersIdentically(const Fleet& f) {
  auto lock_free = BuildSharded(f, true);
  auto locked = BuildSharded(f, false);
  if (lock_free == nullptr || locked == nullptr) return false;
  for (const geo::Polygon& region : f.queries) {
    const db::RangeAnswer a = lock_free->QueryRange(region, 15.0);
    const db::RangeAnswer b = locked->QueryRange(region, 15.0);
    if (a.must != b.must || a.may != b.may ||
        a.may_probability != b.may_probability) {
      return false;
    }
    const db::IntervalRangeAnswer ia =
        lock_free->QueryRangeInterval(region, 12.0, 18.0, 1.0);
    const db::IntervalRangeAnswer ib =
        locked->QueryRangeInterval(region, 12.0, 18.0, 1.0);
    if (ia.may != ib.may || ia.must_at_some_time != ib.must_at_some_time) {
      return false;
    }
    const geo::Point2 center = region.vertices()[0];
    if (!SameNearest(lock_free->QueryNearest(center, 5, 15.0),
                     locked->QueryNearest(center, 5, 15.0))) {
      return false;
    }
  }
  return true;
}

int Run(bool smoke, bool speed_gate) {
  PrintHeader(
      "E20: epoch-based lock-free index reads",
      "readers of the resident copy-on-write R*-tree take no lock and "
      "sustain >= 1.5x the aggregate query throughput of the locked "
      "configuration that keeps updates flowing (a writer-preferring "
      "rwlock) under a concurrent writer, at byte-identical answers; the "
      "reader-preferring shared_mutex baseline only reads fast by "
      "starving the update stream");

  const std::size_t kObjects = smoke ? 800 : 2000;
  const double kSeconds = smoke ? 0.3 : 1.0;

  const TreeThroughput shared =
      MeasureTree(ReadMode::kSharedMutex, kObjects, kSeconds);
  const TreeThroughput fair =
      MeasureTree(ReadMode::kFairLock, kObjects, kSeconds);
  const TreeThroughput lock_free =
      MeasureTree(ReadMode::kLockFree, kObjects, kSeconds);
  const double speedup = fair.reads_per_sec > 0.0
                             ? lock_free.reads_per_sec / fair.reads_per_sec
                             : 0.0;

  util::Table table({"config", "readers", "queries/s", "object updates/s",
                     "speedup vs fair lock"});
  table.NewRow()
      .Add("shared_mutex (writer starves)")
      .Add(kReaders)
      .Add(shared.reads_per_sec, 0)
      .Add(shared.write_cycles_per_sec, 0)
      .Add(fair.reads_per_sec > 0.0
               ? shared.reads_per_sec / fair.reads_per_sec
               : 0.0,
           2);
  table.NewRow()
      .Add("writer-preferring rwlock")
      .Add(kReaders)
      .Add(fair.reads_per_sec, 0)
      .Add(fair.write_cycles_per_sec, 0)
      .Add(1.0, 2);
  table.NewRow()
      .Add("epoch lock-free readers")
      .Add(kReaders)
      .Add(lock_free.reads_per_sec, 0)
      .Add(lock_free.write_cycles_per_sec, 0)
      .Add(speedup, 2);
  std::printf("%s\n", table.ToString().c_str());

  const bool tree_identical = TreesAnswerIdentically(smoke ? 120 : 400);
  const auto fleet = MakeFleet(smoke ? 300 : 2000, smoke ? 12 : 48);
  const bool sharded_identical = ShardedAnswersIdentically(*fleet);

  const bool identical = tree_identical && sharded_identical;
  const bool pass = identical && (speed_gate ? speedup >= 1.5 : true);
  std::printf(
      "shape check — lock-free readers at %.2fx the writer-preferring "
      "locked throughput (claim: >= 1.5x%s), with the update stream at "
      "full rate (shared_mutex baseline starved it to %.0f updates/s); "
      "resident tree answers == legacy tree answers: %s; sharded "
      "lock-free probes == locked probes: %s -> %s\n\n",
      speedup, speed_gate ? "" : "; speed gate off, identity only",
      shared.write_cycles_per_sec, tree_identical ? "yes" : "NO",
      sharded_identical ? "yes" : "NO", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  bool speed_gate = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    // Sanitizer-instrumented CI runs: timings are distorted, so gate only
    // on answer identity there.
    if (std::strcmp(argv[i], "--no-speed-gate") == 0) speed_gate = false;
  }
  return modb::bench::Run(smoke, speed_gate);
}
