// E9 (extension; DESIGN.md §5 ablation 4) — the step deviation cost
// function (paper §3.1): zero penalty while the deviation stays below h,
// one per time unit above. The kStepThreshold policy implements the
// bang-bang optimum (update at h iff C < b + h/a). This bench scores every
// policy on the *step* metric across (h, C) and verifies the step policy
// is never beaten by more than a small margin by the uniform-cost
// policies — they optimise the wrong objective.

#include <cstdio>

#include "bench/exp_common.h"
#include "core/deviation.h"
#include "sim/simulator.h"

namespace modb::bench {
namespace {

int Run() {
  PrintHeader("E9: step deviation cost ablation",
              "for the step cost the optimal rule is bang-bang: update the "
              "moment the deviation reaches h iff C < b + h/a");

  const auto suite = StandardSuite(/*per_kind=*/5);
  bool pass = true;

  for (double h : {0.5, 1.0, 2.0}) {
    const core::StepDeviationCost metric(h);
    sim::SimulationOptions sim_options;
    sim_options.cost_function = &metric;

    util::Table table({"C", "step", "dl", "ail", "cil", "fixed(B=h)"});
    for (double C : {1.0, 5.0, 20.0}) {
      table.NewRow().Add(C, 1);
      double step_cost = 0.0;
      double best_other = 1e300;
      for (core::PolicyKind kind :
           {core::PolicyKind::kStepThreshold, core::PolicyKind::kDelayedLinear,
            core::PolicyKind::kAverageImmediateLinear,
            core::PolicyKind::kCurrentImmediateLinear,
            core::PolicyKind::kFixedThreshold}) {
        core::PolicyConfig policy;
        policy.kind = kind;
        policy.update_cost = C;
        policy.max_speed = 1.5;
        policy.step_threshold = h;
        policy.fixed_threshold = h;  // give dead reckoning the same h
        std::vector<sim::RunMetrics> runs;
        runs.reserve(suite.size());
        for (const auto& named : suite) {
          runs.push_back(
              sim::SimulatePolicyOnCurve(named.curve, policy, sim_options));
        }
        const sim::MeanMetrics mean = sim::Aggregate(runs);
        table.Add(mean.total_cost, 2);
        if (kind == core::PolicyKind::kStepThreshold) {
          step_cost = mean.total_cost;
        } else {
          best_other = std::min(best_other, mean.total_cost);
        }
      }
      // The step policy may lose slightly to a lucky competitor on a
      // finite suite, but not by more than 10%.
      if (step_cost > 1.10 * best_other) pass = false;
    }
    std::printf("h = %.1f (mean step-cost total per trip, %zu curves):\n%s\n",
                h, suite.size(), table.ToString().c_str());
  }

  std::printf("shape check — step policy within 10%% of the best policy on "
              "its own metric at every (h, C): %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
