// E17 — continuous queries on the delta stream: a registry of standing
// MAY/MUST region queries maintained incrementally (the subscriptions are
// themselves a 3-D rectangle set, so each committed delta batch becomes a
// spatial join) versus the naive architecture that re-evaluates every
// standing query against every committed record. The claim under test:
// at 10k standing queries the spatial join runs >= 10x fewer predicate
// evaluations than the naive rescan, at a byte-identical event stream —
// and the stream is also byte-identical between batched and sequential
// ingest and between the sharded and unsharded layers. A second table
// measures the delta-invalidated hot result cache for repeated ad-hoc
// range queries.
//
// `--smoke` runs small standing-query counts for CI; `--no-eval-gate`
// reports without failing (not used by CI, kept symmetrical with E16's
// `--no-speed-gate`).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "db/mod_database.h"
#include "db/result_cache.h"
#include "db/sharded_database.h"
#include "db/subscription_engine.h"
#include "geo/route_network.h"
#include "util/rng.h"
#include "util/table.h"

namespace modb::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Workload {
  geo::RouteNetwork network;
  std::vector<db::ModDatabase::BulkObject> fleet;
  std::vector<core::PositionUpdate> updates;  // interleaved rounds
};

std::unique_ptr<Workload> MakeWorkload(std::size_t num_objects,
                                       std::size_t rounds,
                                       std::uint64_t seed) {
  auto w = std::make_unique<Workload>();
  w->network.AddGridNetwork(20, 20, 30.0);  // 570 x 570 street grid
  util::Rng rng(seed);
  const auto routes = static_cast<std::int64_t>(w->network.size());
  w->fleet.reserve(num_objects);
  for (std::size_t i = 0; i < num_objects; ++i) {
    db::ModDatabase::BulkObject o;
    o.id = static_cast<core::ObjectId>(i);
    o.attr.route = static_cast<geo::RouteId>(rng.UniformInt(0, routes - 1));
    const double len = w->network.route(o.attr.route).Length();
    o.attr.start_route_distance = rng.Uniform(0.0, len * 0.5);
    o.attr.start_position =
        w->network.route(o.attr.route).PointAt(o.attr.start_route_distance);
    o.attr.speed = rng.Uniform(0.5, 5.0);
    o.attr.update_cost = 5.0;
    o.attr.max_speed = 25.0;
    o.attr.policy = core::PolicyKind::kAverageImmediateLinear;
    w->fleet.push_back(std::move(o));
  }
  w->updates.reserve(num_objects * rounds);
  for (std::size_t r = 1; r <= rounds; ++r) {
    const double t = 10.0 * static_cast<double>(r);
    for (std::size_t i = 0; i < num_objects; ++i) {
      core::PositionUpdate u;
      u.object = static_cast<core::ObjectId>(i);
      u.time = t;
      u.route = static_cast<geo::RouteId>(rng.UniformInt(0, routes - 1));
      const double len = w->network.route(u.route).Length();
      u.route_distance = rng.Uniform(0.0, len);
      u.position = w->network.route(u.route).PointAt(u.route_distance);
      u.direction = core::TravelDirection::kForward;
      u.speed = rng.Uniform(0.5, 5.0);
      w->updates.push_back(u);
    }
  }
  return w;
}

/// `count` standing queries: 30x30 watch rectangles over the grid, mixed
/// modes, half AT an instant, half DURING a window. Deterministic in
/// `seed` so every store registers the identical set.
std::vector<db::SubscriptionSpec> MakeSubscriptions(std::size_t count,
                                                    std::uint64_t seed) {
  std::vector<db::SubscriptionSpec> specs;
  specs.reserve(count);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    db::SubscriptionSpec spec;
    spec.region = geo::Polygon::CenteredRectangle(
        {rng.Uniform(20.0, 550.0), rng.Uniform(20.0, 550.0)}, 15.0, 15.0);
    spec.mode = static_cast<db::SubscriptionMode>(rng.UniformInt(0, 2));
    if (rng.Uniform() < 0.5) {
      spec.time = rng.Uniform(0.0, 50.0);
    } else {
      spec.windowed = true;
      spec.time = rng.Uniform(0.0, 25.0);
      spec.window_end = rng.Uniform(25.0, 50.0);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct MatcherRun {
  double updates_per_sec = -1.0;
  std::uint64_t evals = 0;
  std::vector<std::string> stream;
};

/// Loads the fleet, registers `specs`, drives `stream` in batches of
/// `batch` (1 = sequential ApplyUpdate), and renders the event stream.
/// The engine attaches *after* the bulk load: E17 measures the standing
/// cost of the update stream, not the one-time load.
MatcherRun RunMatcher(const Workload& w,
                      const std::vector<db::SubscriptionSpec>& specs,
                      std::span<const core::PositionUpdate> stream,
                      std::size_t batch, bool naive) {
  MatcherRun run;
  db::ModDatabase database(&w.network);
  if (!database.BulkInsert(w.fleet).ok()) return run;
  db::SubscriptionEngine::Options options;
  options.naive_rescan = naive;
  db::SubscriptionEngine engine(&w.network, options);
  database.AttachSubscriptions(&engine);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!engine.Subscribe(static_cast<db::SubscriptionId>(i), specs[i])
             .ok()) {
      return run;
    }
  }

  const auto start = Clock::now();
  if (batch <= 1) {
    for (const core::PositionUpdate& u : stream) {
      if (!database.ApplyUpdate(u).ok()) return run;
    }
  } else {
    for (std::size_t i = 0; i < stream.size(); i += batch) {
      const std::size_t n = std::min(batch, stream.size() - i);
      if (!database.ApplyUpdateBatch(stream.subspan(i, n)).all_ok()) {
        return run;
      }
    }
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  run.updates_per_sec = static_cast<double>(stream.size()) / secs;
  run.evals = engine.evals();
  for (const auto& event : engine.TakeEvents()) {
    run.stream.push_back(event.ToString());
  }
  return run;
}

bool StreamsEqual(const std::vector<std::string>& a,
                  const std::vector<std::string>& b) {
  return a == b;
}

int RunComparison(bool smoke, bool eval_gate) {
  const std::size_t kObjects = smoke ? 150 : 1500;
  const std::size_t kRounds = smoke ? 2 : 3;
  const std::vector<std::size_t> kSubCounts =
      smoke ? std::vector<std::size_t>{100, 1000}
            : std::vector<std::size_t>{1000, 10000, 100000};
  const std::size_t kGateSubs = smoke ? 1000 : 10000;
  // Bound the naive baseline's work per row: it pays subs x deltas pair
  // evaluations, so large registries get a shorter slice of the stream
  // (both architectures see the identical slice — the comparison stands).
  const std::uint64_t kEvalBudget = smoke ? 2'000'000 : 20'000'000;

  const auto w = MakeWorkload(kObjects, kRounds, 1998);

  std::printf("--- standing-query matching: spatial join vs naive rescan "
              "(%zu objects, batch-64 ingest) ---\n",
              kObjects);
  bool streams_identical = true;
  double gate_ratio = 0.0;
  {
    util::Table table({"standing queries", "stream len", "evals (join)",
                       "evals (naive)", "evals saved", "updates/s (join)",
                       "updates/s (naive)", "events", "identical"});
    for (const std::size_t subs : kSubCounts) {
      const std::size_t slice_len = std::min(
          w->updates.size(),
          std::max<std::size_t>(120, kEvalBudget / std::max<std::size_t>(
                                         subs, 1)));
      const std::span<const core::PositionUpdate> slice(w->updates.data(),
                                                        slice_len);
      const auto specs = MakeSubscriptions(subs, 7);
      const MatcherRun join = RunMatcher(*w, specs, slice, 64, false);
      const MatcherRun naive = RunMatcher(*w, specs, slice, 64, true);
      if (join.updates_per_sec < 0.0 || naive.updates_per_sec < 0.0) {
        std::printf("matcher run failed\n");
        return 1;
      }
      const bool identical = StreamsEqual(join.stream, naive.stream);
      streams_identical = streams_identical && identical;
      const double ratio = join.evals > 0
                               ? static_cast<double>(naive.evals) /
                                     static_cast<double>(join.evals)
                               : 0.0;
      if (subs == kGateSubs) gate_ratio = ratio;
      table.NewRow()
          .Add(subs)
          .Add(slice_len)
          .Add(join.evals)
          .Add(naive.evals)
          .Add(ratio, 1)
          .Add(join.updates_per_sec, 0)
          .Add(naive.updates_per_sec, 0)
          .Add(join.stream.size())
          .Add(identical ? "yes" : "NO");
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  // --- Ingest-shape parity: the event stream must not depend on how the
  // mutations were framed (sequential / batch-64) or on the concurrency
  // layer (4-shard store with per-shard engines, merged by input slot).
  std::printf("--- ingest-shape parity (%zu standing queries, full "
              "stream) ---\n",
              std::min<std::size_t>(kSubCounts.front(), 1000));
  bool parity = true;
  {
    const auto specs =
        MakeSubscriptions(std::min<std::size_t>(kSubCounts.front(), 1000), 7);
    const std::span<const core::PositionUpdate> stream(w->updates.data(),
                                                       w->updates.size());
    // All three stores register their standing queries *before* the bulk
    // load, so the compared streams include the load's enter events — the
    // BulkInsert event merge is part of the parity claim.
    auto unsharded = [&](std::size_t batch) -> std::vector<std::string> {
      db::ModDatabase database(&w->network);
      db::SubscriptionEngine engine(&w->network);
      database.AttachSubscriptions(&engine);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!engine.Subscribe(static_cast<db::SubscriptionId>(i), specs[i])
                 .ok()) {
          return {};
        }
      }
      if (!database.BulkInsert(w->fleet).ok()) return {};
      if (batch <= 1) {
        for (const core::PositionUpdate& u : stream) {
          if (!database.ApplyUpdate(u).ok()) return {};
        }
      } else {
        for (std::size_t i = 0; i < stream.size(); i += batch) {
          const std::size_t n = std::min(batch, stream.size() - i);
          if (!database.ApplyUpdateBatch(stream.subspan(i, n)).all_ok()) {
            return {};
          }
        }
      }
      std::vector<std::string> rendered;
      for (const auto& event : engine.TakeEvents()) {
        rendered.push_back(event.ToString());
      }
      return rendered;
    };
    const std::vector<std::string> sequential = unsharded(1);
    const std::vector<std::string> batched = unsharded(64);

    db::ShardedModDatabaseOptions sharded_options;
    sharded_options.num_shards = 4;
    sharded_options.enable_subscriptions = true;
    db::ShardedModDatabase sharded(&w->network, sharded_options);
    std::vector<std::string> sharded_stream;
    bool sharded_ok = true;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      sharded_ok = sharded_ok &&
                   sharded
                       .Subscribe(static_cast<db::SubscriptionId>(i),
                                  specs[i])
                       .ok();
    }
    sharded_ok = sharded_ok && sharded.BulkInsert(w->fleet).ok();
    for (std::size_t i = 0; sharded_ok && i < stream.size(); i += 64) {
      const std::size_t n = std::min<std::size_t>(64, stream.size() - i);
      sharded_ok = sharded.ApplyUpdateBatch(stream.subspan(i, n)).all_ok();
    }
    for (const auto& event : sharded.TakeSubscriptionEvents()) {
      sharded_stream.push_back(event.ToString());
    }
    if (sequential.empty() || batched.empty() || !sharded_ok) {
      std::printf("parity run failed\n");
      return 1;
    }

    const bool batch_eq = StreamsEqual(sequential, batched);
    const bool shard_eq = StreamsEqual(batched, sharded_stream);
    parity = batch_eq && shard_eq;
    std::printf("events: %zu; batch-64 == sequential: %s; "
                "4-shard == unsharded: %s\n\n",
                sequential.size(), batch_eq ? "yes" : "NO",
                shard_eq ? "yes" : "NO");
  }

  // --- Hot ad-hoc result cache: repeated range queries between update
  // batches, invalidated by the same delta stream. Answers must stay
  // byte-identical to uncached fan-out.
  std::printf("--- delta-invalidated result cache (repeated ad-hoc "
              "queries) ---\n");
  bool cache_identical = true;
  {
    db::ModDatabase database(&w->network);
    if (!database.BulkInsert(w->fleet).ok()) return 1;
    db::RangeQueryCache cache(&w->network, {});
    database.AttachResultCache(&cache);

    util::Rng rng(23);
    std::vector<geo::Polygon> regions;
    for (int q = 0; q < 16; ++q) {
      regions.push_back(geo::Polygon::CenteredRectangle(
          {rng.Uniform(50.0, 520.0), rng.Uniform(50.0, 520.0)}, 25.0, 25.0));
    }
    const std::size_t reps = 4;
    double cached_secs = 0.0;
    double plain_secs = 0.0;
    for (std::size_t i = 0; i <= w->updates.size(); i += 256) {
      const double t = 10.0 * static_cast<double>(kRounds);
      for (std::size_t rep = 0; rep < reps; ++rep) {
        for (const auto& region : regions) {
          const auto c0 = Clock::now();
          const db::RangeAnswer cached = database.QueryRangeCached(region, t);
          const auto c1 = Clock::now();
          const db::RangeAnswer plain = database.QueryRange(region, t);
          const auto c2 = Clock::now();
          cached_secs += std::chrono::duration<double>(c1 - c0).count();
          plain_secs += std::chrono::duration<double>(c2 - c1).count();
          cache_identical = cache_identical && cached.must == plain.must &&
                            cached.may == plain.may &&
                            cached.may_probability == plain.may_probability;
        }
      }
      if (i < w->updates.size()) {
        const std::size_t n =
            std::min<std::size_t>(256, w->updates.size() - i);
        if (!database
                 .ApplyUpdateBatch(std::span<const core::PositionUpdate>(
                     w->updates.data() + i, n))
                 .all_ok()) {
          return 1;
        }
      }
    }
    const std::uint64_t lookups = cache.hits() + cache.misses();
    std::printf("lookups: %llu, hits: %llu (%.0f%%), misses: %llu, "
                "invalidations: %llu, cached/plain query time: %.2fx, "
                "answers identical: %s\n\n",
                static_cast<unsigned long long>(lookups),
                static_cast<unsigned long long>(cache.hits()),
                lookups > 0 ? 100.0 * static_cast<double>(cache.hits()) /
                                  static_cast<double>(lookups)
                            : 0.0,
                static_cast<unsigned long long>(cache.misses()),
                static_cast<unsigned long long>(cache.invalidations()),
                plain_secs > 0.0 ? cached_secs / plain_secs : 0.0,
                cache_identical ? "yes" : "NO");
  }

  const bool identical = streams_identical && parity && cache_identical;
  const bool pass =
      identical && (eval_gate ? gate_ratio >= 10.0 : true);
  std::printf("shape check — spatial join at %zu standing queries runs "
              "%.1fx fewer predicate evaluations than the naive rescan "
              "(claim: >= 10x%s), event streams byte-identical across "
              "matcher modes, ingest shapes, and layers, cached answers "
              "byte-identical: %s -> %s\n\n",
              kGateSubs, gate_ratio,
              eval_gate ? "" : "; eval gate off, identity only",
              identical ? "yes" : "NO", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

int Run(bool smoke, bool eval_gate) {
  PrintHeader(
      "E17: continuous queries — incremental matching vs naive rescan",
      "indexing the standing queries as a 3-D rectangle set turns each "
      "delta batch into a spatial join: >= 10x fewer predicate "
      "evaluations than re-evaluating every standing query per record, "
      "at a byte-identical transition-event stream");
  return RunComparison(smoke, eval_gate);
}

}  // namespace
}  // namespace modb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  bool eval_gate = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--no-eval-gate") == 0) eval_gate = false;
  }
  return modb::bench::Run(smoke, eval_gate);
}
