// E16 — staged batch ingest: the same position-update stream driven
// through the per-update write path (one WAL frame, one group-commit
// check, one index remove+reinsert per message) versus the four-stage
// batch engine (one frame, one grouped index delta per batch). The cost
// model behind the claim: a durable per-update ingest pays one fsync per
// message, a batch of B amortises the fsync — and the validate/log/mutate/
// index stages — over B messages. The claim under test: >= 2x ingest
// throughput at batch >= 64 on the durable path, at a byte-identical final
// store (same records, same query answers).
//
// `--smoke` runs a tiny fleet for CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "db/mod_database.h"
#include "db/sharded_database.h"
#include "db/wal.h"
#include "geo/route_network.h"
#include "util/rng.h"
#include "util/table.h"

namespace modb::bench {
namespace {

using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

struct Workload {
  geo::RouteNetwork network;
  std::vector<core::PositionAttribute> attrs;
  // `rounds` waves over the fleet, interleaved by object (round order), so
  // consecutive stream entries hit different objects — the unfavourable
  // access pattern for any per-object locality in the write path.
  std::vector<core::PositionUpdate> updates;
  std::vector<geo::Polygon> queries;
};

std::unique_ptr<Workload> MakeWorkload(std::size_t num_objects,
                                       std::size_t rounds,
                                       std::size_t num_queries,
                                       std::uint64_t seed) {
  auto w = std::make_unique<Workload>();
  w->network.AddGridNetwork(20, 20, 30.0);  // 570 x 570 street grid
  util::Rng rng(seed);
  w->attrs.reserve(num_objects);
  for (std::size_t i = 0; i < num_objects; ++i) {
    core::PositionAttribute attr;
    attr.route = static_cast<geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(w->network.size()) - 1));
    const double len = w->network.route(attr.route).Length();
    attr.start_route_distance = rng.Uniform(0.0, len * 0.5);
    attr.start_position =
        w->network.route(attr.route).PointAt(attr.start_route_distance);
    attr.speed = rng.Uniform(0.5, 5.0);
    attr.update_cost = 5.0;
    attr.max_speed = 25.0;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    w->attrs.push_back(attr);
  }
  w->updates.reserve(num_objects * rounds);
  for (std::size_t r = 1; r <= rounds; ++r) {
    const double t = 10.0 * static_cast<double>(r);
    for (std::size_t i = 0; i < num_objects; ++i) {
      core::PositionUpdate u;
      u.object = static_cast<core::ObjectId>(i);
      u.time = t;
      u.route = static_cast<geo::RouteId>(
          rng.UniformInt(0, static_cast<std::int64_t>(w->network.size()) - 1));
      const double len = w->network.route(u.route).Length();
      u.route_distance = rng.Uniform(0.0, len);
      u.position = w->network.route(u.route).PointAt(u.route_distance);
      u.direction = core::TravelDirection::kForward;
      u.speed = rng.Uniform(0.5, 5.0);
      w->updates.push_back(u);
    }
  }
  w->queries.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    w->queries.push_back(geo::Polygon::CenteredRectangle(
        {rng.Uniform(50.0, 520.0), rng.Uniform(50.0, 520.0)}, 25.0, 25.0));
  }
  return w;
}

template <typename Db>
bool LoadFleet(Db& db, const Workload& w) {
  std::vector<db::ModDatabase::BulkObject> fleet;
  fleet.reserve(w.attrs.size());
  for (std::size_t i = 0; i < w.attrs.size(); ++i) {
    db::ModDatabase::BulkObject o;
    o.id = static_cast<core::ObjectId>(i);
    o.attr = w.attrs[i];
    fleet.push_back(std::move(o));
  }
  return db.BulkInsert(std::move(fleet)).ok();
}

/// Drives the whole stream; batch == 1 uses the plain `ApplyUpdate` entry
/// point (the historical call shape), larger batches slice the stream
/// through `ApplyUpdateBatch`. Returns updates/s, or < 0 on any failure.
template <typename Db>
double TimeIngest(Db& db, const std::vector<core::PositionUpdate>& stream,
                  std::size_t batch) {
  const auto start = Clock::now();
  if (batch <= 1) {
    for (const core::PositionUpdate& u : stream) {
      if (!db.ApplyUpdate(u).ok()) return -1.0;
    }
  } else {
    for (std::size_t i = 0; i < stream.size(); i += batch) {
      const std::size_t n = std::min(batch, stream.size() - i);
      const db::UpdateBatchResult r = db.ApplyUpdateBatch(
          std::span<const core::PositionUpdate>(stream.data() + i, n));
      if (!r.all_ok()) return -1.0;
    }
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(stream.size()) / secs;
}

/// Canonical dump of every record (attribute + counters), order-free.
template <typename Db>
std::string Fingerprint(const Db& db) {
  std::map<core::ObjectId, std::string> rows;
  db.ForEachRecord([&](const db::MovingObjectRecord& record) {
    std::ostringstream row;
    row << std::hexfloat << record.attr.start_time << ' ' << record.attr.route
        << ' ' << record.attr.start_route_distance << ' '
        << record.attr.speed << ' ' << record.update_count;
    rows[record.id] = row.str();
  });
  std::string out;
  for (const auto& [id, row] : rows) {
    out += std::to_string(id) + ':' + row + '\n';
  }
  return out;
}

template <typename Db>
bool AnswersAgree(const Db& a, const Db& b, const Workload& w,
                  core::Time t) {
  for (const auto& region : w.queries) {
    const db::RangeAnswer ra = a.QueryRange(region, t);
    const db::RangeAnswer rb = b.QueryRange(region, t);
    if (ra.must != rb.must || ra.may != rb.may) return false;
  }
  return true;
}

struct DurableRun {
  double updates_per_sec = 0.0;
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_syncs = 0;
  std::string fingerprint;
};

/// One durable ingest: fresh WAL with per-append fsync (group commit of 1,
/// the strictest no-loss setting — E14 measured the WAL knobs themselves),
/// so the frame amortisation of the batch path is visible as fewer syncs.
/// The store runs on the linear-scan index to hold index maintenance at its
/// E7 floor: this table isolates the write-path (validate/log/mutate) cost,
/// while the in-memory tables above and E7/E15 cover the index side.
DurableRun RunDurable(const Workload& w, const fs::path& dir,
                      std::size_t batch) {
  DurableRun run;
  fs::remove_all(dir);
  util::MetricsRegistry registry;
  db::WalWriterOptions wal_options;
  wal_options.sync_every_append = true;
  auto writer = db::WalWriter::Open(dir.string(), 1, wal_options);
  if (!writer.ok()) return run;
  (*writer)->SetMetrics(&registry);
  db::ModDatabaseOptions db_options;
  db_options.index_kind = db::IndexKind::kLinearScan;
  db::ModDatabase db(&w.network, db_options);
  if (!LoadFleet(db, w)) return run;
  db.AttachWal(writer->get());
  run.updates_per_sec = TimeIngest(db, w.updates, batch);
  run.wal_appends = registry.GetCounter("wal.appends")->value();
  run.wal_syncs = registry.GetCounter("wal.syncs")->value();
  run.fingerprint = Fingerprint(db);
  (*writer)->Close().ok();
  fs::remove_all(dir);
  return run;
}

int RunComparison(bool smoke, bool speed_gate) {
  const std::size_t kObjects = smoke ? 200 : 4000;
  const std::size_t kRounds = smoke ? 3 : 8;
  const std::size_t kQueries = smoke ? 8 : 32;
  const std::vector<std::size_t> kBatches = {1, 16, 64, 256, 1024};
  const auto w = MakeWorkload(kObjects, kRounds, kQueries, 1998);
  const double t_final = 10.0 * static_cast<double>(kRounds) + 5.0;
  // Each timed configuration is best-of-N: fsync latency on shared storage
  // is noisy enough to swing a single short run by 30%+, and the fast run
  // is the one that reflects the work the code actually does.
  const int kTrials = smoke ? 3 : 2;

  // --- In-memory, single store: stage amortisation without the fsync
  // lever (grouped index deltas, one validation/merge pass per batch).
  std::printf("--- in-memory ModDatabase, %zu objects x %zu rounds "
              "(%zu updates) ---\n",
              kObjects, kRounds, w->updates.size());
  std::string mem_baseline_fp;
  std::unique_ptr<db::ModDatabase> mem_baseline;
  bool mem_identical = true;
  double mem_base_rate = 0.0;
  double mem_batch64_rate = 0.0;
  {
    util::Table table({"batch", "updates/s", "speedup"});
    for (const std::size_t batch : kBatches) {
      std::unique_ptr<db::ModDatabase> db;
      double rate = -1.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        auto attempt = std::make_unique<db::ModDatabase>(&w->network);
        if (!LoadFleet(*attempt, *w)) return 1;
        const double r = TimeIngest(*attempt, w->updates, batch);
        if (r < 0.0) return 1;
        rate = std::max(rate, r);
        db = std::move(attempt);
      }
      if (batch == 1) {
        mem_base_rate = rate;
        mem_baseline_fp = Fingerprint(*db);
        mem_baseline = std::move(db);
      } else {
        mem_identical = mem_identical &&
                        Fingerprint(*db) == mem_baseline_fp &&
                        AnswersAgree(*db, *mem_baseline, *w, t_final);
        if (batch == 64) mem_batch64_rate = rate;
      }
      table.NewRow().Add(batch).Add(rate, 0).Add(
          mem_base_rate > 0.0 ? rate / mem_base_rate : 1.0, 2);
    }
    std::printf("%s(final stores byte-identical across batch sizes: %s)\n\n",
                table.ToString().c_str(), mem_identical ? "yes" : "NO");
  }

  // --- Durable, per-append fsync: the headline claim. Every batch is one
  // WAL frame and one sync, so appends/syncs collapse by the batch factor.
  const fs::path dir =
      fs::temp_directory_path() / "modb_exp_update_throughput";
  std::printf("--- durable ModDatabase (WAL, fsync per append; linear-scan "
              "index holds maintenance at its floor) ---\n");
  DurableRun durable_base;
  double durable_batch64_rate = 0.0;
  bool durable_identical = true;
  {
    util::Table table(
        {"batch", "updates/s", "speedup", "wal appends", "wal syncs"});
    for (const std::size_t batch : kBatches) {
      DurableRun run;
      for (int trial = 0; trial < kTrials; ++trial) {
        DurableRun attempt = RunDurable(*w, dir, batch);
        if (attempt.updates_per_sec < 0.0 || attempt.fingerprint.empty()) {
          return 1;
        }
        if (attempt.updates_per_sec > run.updates_per_sec) {
          run = std::move(attempt);
        }
      }
      if (batch == 1) {
        durable_base = run;
        // Records are index-independent, so the durable store must match
        // the in-memory default-index store byte for byte.
        durable_identical =
            durable_identical && run.fingerprint == mem_baseline_fp;
      } else {
        durable_identical =
            durable_identical && run.fingerprint == durable_base.fingerprint;
        if (batch == 64) durable_batch64_rate = run.updates_per_sec;
      }
      table.NewRow()
          .Add(batch)
          .Add(run.updates_per_sec, 0)
          .Add(durable_base.updates_per_sec > 0.0
                   ? run.updates_per_sec / durable_base.updates_per_sec
                   : 1.0,
               2)
          .Add(run.wal_appends)
          .Add(run.wal_syncs);
    }
    std::printf("%s(final stores byte-identical across batch sizes: %s)\n\n",
                table.ToString().c_str(), durable_identical ? "yes" : "NO");
  }

  // --- Sharded, in-memory: the batch partitions across shards and the
  // sub-batches run on the fan-out pool, so batching also buys write
  // parallelism a single ApplyUpdate call can never have.
  std::printf("--- sharded in-memory store (4 shards) ---\n");
  bool sharded_identical = true;
  {
    util::Table table({"batch", "updates/s", "speedup"});
    double base_rate = 0.0;
    std::string base_fp;
    for (const std::size_t batch : kBatches) {
      db::ShardedModDatabaseOptions opts;
      opts.num_shards = 4;
      std::unique_ptr<db::ShardedModDatabase> db;
      double rate = -1.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        auto attempt =
            std::make_unique<db::ShardedModDatabase>(&w->network, opts);
        if (!LoadFleet(*attempt, *w)) return 1;
        const double r = TimeIngest(*attempt, w->updates, batch);
        if (r < 0.0) return 1;
        rate = std::max(rate, r);
        db = std::move(attempt);
      }
      if (batch == 1) {
        base_rate = rate;
        base_fp = Fingerprint(*db);
      } else {
        sharded_identical =
            sharded_identical && Fingerprint(*db) == base_fp &&
            base_fp == mem_baseline_fp;  // sharding is invisible too
      }
      table.NewRow().Add(batch).Add(rate, 0).Add(
          base_rate > 0.0 ? rate / base_rate : 1.0, 2);
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  const double speedup = durable_base.updates_per_sec > 0.0
                             ? durable_batch64_rate /
                                   durable_base.updates_per_sec
                             : 0.0;
  const bool identical =
      mem_identical && durable_identical && sharded_identical;
  const bool pass = identical && (speed_gate ? speedup >= 2.0 : true);
  std::printf("shape check — durable batch-64 ingest at %.2fx the "
              "per-update rate (claim: >= 2x%s), final stores "
              "byte-identical across batch sizes and layers: %s -> %s\n\n",
              speedup,
              speed_gate ? "" : "; speed gate off, identity only",
              identical ? "yes" : "NO", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

int Run(bool smoke, bool speed_gate) {
  PrintHeader("E16: staged batch ingest vs per-update writes",
              "one WAL frame + one grouped index delta per batch amortises "
              "the per-message write cost; durable ingest at batch >= 64 "
              "runs >= 2x the per-update rate at an identical final store");
  return RunComparison(smoke, speed_gate);
}

}  // namespace
}  // namespace modb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  bool speed_gate = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    // Sanitizer-instrumented CI runs: timings are distorted (CPU inflates,
    // fsync does not), so gate only on state identity there.
    if (std::strcmp(argv[i], "--no-speed-gate") == 0) speed_gate = false;
  }
  return modb::bench::Run(smoke, speed_gate);
}
