// E18 — shard failure domains: a seeded fault storm (WAL append and fsync
// faults routed to specific shards, plus an operator-injected fault) must
// quarantine the affected shards without wedging the fleet. The claims
// under test:
//   1. while a shard is quarantined, writes to it fail `Unavailable` with
//      a retry hint, STRICT queries refuse the partial answer, and ALLOW
//      PARTIAL answers carry a correct completeness flag whose MUST list
//      is byte-identical to a fault-free control filtered by the excluded
//      shards (the surviving shards' answers stay sound);
//   2. the supervisor's backoff remediation loop re-admits every
//      quarantined shard (WAL reopen for poisoned logs, full re-recovery
//      for the operator fault), after which the store converges to the
//      control byte-for-byte;
//   3. the continuous-query event stream survives the storm: per
//      (standing query, object) transition streams equal the control's
//      (deferred writes replay in per-object order, so only the global
//      interleaving may differ).
//
// `--smoke` shrinks the fleet for CI; `--no-fault-gate` reports without
// failing (symmetrical with E17's `--no-eval-gate`).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/exp_common.h"
#include "db/mod_database.h"
#include "db/query_language.h"
#include "db/sharded_database.h"
#include "db/subscription_engine.h"
#include "geo/route_network.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/table.h"

namespace modb::bench {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 4;

struct Workload {
  geo::RouteNetwork network;
  std::vector<db::ModDatabase::BulkObject> fleet;
  std::vector<core::PositionUpdate> updates;  // round-major
  std::size_t rounds = 0;
  std::size_t objects = 0;
};

std::unique_ptr<Workload> MakeWorkload(std::size_t num_objects,
                                       std::size_t rounds,
                                       std::uint64_t seed) {
  auto w = std::make_unique<Workload>();
  w->network.AddGridNetwork(10, 10, 30.0);  // 270 x 270 street grid
  w->rounds = rounds;
  w->objects = num_objects;
  util::Rng rng(seed);
  const auto routes = static_cast<std::int64_t>(w->network.size());
  w->fleet.reserve(num_objects);
  for (std::size_t i = 0; i < num_objects; ++i) {
    db::ModDatabase::BulkObject o;
    o.id = static_cast<core::ObjectId>(i);
    o.attr.route = static_cast<geo::RouteId>(rng.UniformInt(0, routes - 1));
    const double len = w->network.route(o.attr.route).Length();
    o.attr.start_route_distance = rng.Uniform(0.0, len * 0.5);
    o.attr.start_position =
        w->network.route(o.attr.route).PointAt(o.attr.start_route_distance);
    o.attr.speed = rng.Uniform(0.5, 5.0);
    o.attr.update_cost = 5.0;
    o.attr.max_speed = 25.0;
    o.attr.policy = core::PolicyKind::kAverageImmediateLinear;
    w->fleet.push_back(std::move(o));
  }
  w->updates.reserve(num_objects * rounds);
  for (std::size_t r = 1; r <= rounds; ++r) {
    const double t = 5.0 * static_cast<double>(r);
    for (std::size_t i = 0; i < num_objects; ++i) {
      core::PositionUpdate u;
      u.object = static_cast<core::ObjectId>(i);
      u.time = t;
      u.route = static_cast<geo::RouteId>(rng.UniformInt(0, routes - 1));
      const double len = w->network.route(u.route).Length();
      u.route_distance = rng.Uniform(0.0, len);
      u.position = w->network.route(u.route).PointAt(u.route_distance);
      u.direction = core::TravelDirection::kForward;
      u.speed = rng.Uniform(0.5, 5.0);
      w->updates.push_back(u);
    }
  }
  return w;
}

std::vector<db::SubscriptionSpec> MakeSubscriptions(std::size_t count,
                                                    double horizon,
                                                    std::uint64_t seed) {
  std::vector<db::SubscriptionSpec> specs;
  specs.reserve(count);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    db::SubscriptionSpec spec;
    spec.region = geo::Polygon::CenteredRectangle(
        {rng.Uniform(15.0, 255.0), rng.Uniform(15.0, 255.0)}, 40.0, 40.0);
    spec.mode = static_cast<db::SubscriptionMode>(rng.UniformInt(0, 2));
    if (rng.Uniform() < 0.5) {
      spec.time = rng.Uniform(0.0, horizon);
    } else {
      spec.windowed = true;
      spec.time = rng.Uniform(0.0, horizon * 0.5);
      spec.window_end = rng.Uniform(horizon * 0.5, horizon);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Routes WAL file creation for `shard-000<k>` through that shard's fault
/// injector; everything else (other shards, checkpoints) gets the real
/// filesystem. The chaos schedule targets exactly one failure domain no
/// matter how the fan-out interleaves.
util::WritableFileFactory RoutedFactory(
    std::map<std::size_t, util::FaultInjector*> by_shard) {
  return [by_shard](const std::string& path)
             -> util::Result<std::unique_ptr<util::WritableFile>> {
    for (const auto& [shard, injector] : by_shard) {
      char needle[16];
      std::snprintf(needle, sizeof(needle), "shard-%04zu", shard);
      if (path.find(needle) != std::string::npos &&
          path.find("wal-") != std::string::npos) {
        return injector->factory()(path);
      }
    }
    return util::DefaultWritableFileFactory()(path);
  };
}

db::ShardedModDatabaseOptions StoreOptions(const std::string& dir) {
  db::ShardedModDatabaseOptions options;
  options.num_shards = kShards;
  options.num_query_threads = 0;  // inline fan-out: deterministic
  options.enable_subscriptions = true;
  options.durable_dir = dir;
  options.durability.wal.sync_every_append = true;
  options.supervisor.auto_remediate = true;
  options.supervisor.retry.initial_delay_ms = 250;
  options.supervisor.retry.max_delay_ms = 1000;
  options.supervisor.retry.seed = 1998;
  return options;
}

geo::Polygon WholeMap() {
  return geo::Polygon::Rectangle(-10.0, -10.0, 280.0, 280.0);
}

/// Control answer restricted to the shards a partial answer could see.
db::RangeAnswer FilterByShards(const db::RangeAnswer& full,
                               const db::ShardedModDatabase& db,
                               const std::vector<std::size_t>& excluded) {
  auto excluded_shard = [&](core::ObjectId id) {
    return std::find(excluded.begin(), excluded.end(), db.ShardOf(id)) !=
           excluded.end();
  };
  db::RangeAnswer out;
  for (core::ObjectId id : full.must) {
    if (!excluded_shard(id)) out.must.push_back(id);
  }
  for (std::size_t i = 0; i < full.may.size(); ++i) {
    if (excluded_shard(full.may[i])) continue;
    out.may.push_back(full.may[i]);
    if (i < full.may_probability.size()) {
      out.may_probability.push_back(full.may_probability[i]);
    }
  }
  return out;
}

using StreamKey = std::pair<db::SubscriptionId, core::ObjectId>;

std::map<StreamKey, std::vector<std::string>> GroupStream(
    const std::vector<db::SubscriptionEvent>& events) {
  std::map<StreamKey, std::vector<std::string>> grouped;
  for (const auto& event : events) {
    grouped[{event.subscription, event.object}].push_back(event.ToString());
  }
  return grouped;
}

struct DegradedSnapshot {
  bool checked = false;
  bool completeness_ok = false;
  bool must_identical = false;
  bool may_identical = false;
  bool strict_refused = false;
  bool partial_annotated = false;
  std::vector<std::size_t> excluded;
};

int RunStorm(bool smoke, bool fault_gate) {
  const std::size_t kObjects = smoke ? 48 : 256;
  const std::size_t kPreRounds = smoke ? 2 : 3;
  const std::size_t kStormRounds = 2;
  const std::size_t kPostRounds = smoke ? 2 : 4;
  const std::size_t kRounds = kPreRounds + kStormRounds + kPostRounds;
  const std::size_t kSubs = smoke ? 24 : 96;

  const auto w = MakeWorkload(kObjects, kRounds, 1998);
  const auto specs =
      MakeSubscriptions(kSubs, 5.0 * static_cast<double>(kRounds) + 5.0, 7);

  const fs::path root = fs::temp_directory_path() / "modb_e18_fault_tolerance";
  fs::remove_all(root);
  const std::string control_dir = (root / "control").string();
  const std::string probe_dir = (root / "probe").string();
  const std::string faulted_dir = (root / "faulted").string();

  // --- Calibration: count the WAL traffic shards 1 and 2 see through the
  // load and the pre-storm rounds, so the storm's fault windows land on
  // the first appends of round kPreRounds+1 exactly.
  std::uint64_t appends_before_storm = 0;
  std::uint64_t syncs_before_storm = 0;
  {
    util::FaultInjector probe1{util::FaultPlan{}};
    util::FaultInjector probe2{util::FaultPlan{}};
    auto options = StoreOptions(probe_dir);
    options.durability.wal.file_factory =
        RoutedFactory({{1, &probe1}, {2, &probe2}});
    db::ShardedModDatabase probe(&w->network, options);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!probe.Subscribe(static_cast<db::SubscriptionId>(i), specs[i])
               .ok()) {
        std::printf("probe subscribe failed\n");
        return 1;
      }
    }
    if (!probe.BulkInsert(w->fleet).ok()) {
      std::printf("probe load failed\n");
      return 1;
    }
    for (std::size_t i = 0; i < kPreRounds * kObjects; ++i) {
      if (!probe.ApplyUpdate(w->updates[i]).ok()) {
        std::printf("probe update failed\n");
        return 1;
      }
    }
    appends_before_storm = probe1.appends_attempted();
    syncs_before_storm = probe2.syncs_attempted();
  }
  fs::remove_all(probe_dir);

  // --- The storm plan: shard 1 takes a transient append fault, shard 2 a
  // transient fsync fault, both on their first WAL write of the storm
  // round. Each poisons its shard's log; the supervisor's reopen path is
  // what un-poisons it.
  util::FaultPlan plan1;
  plan1.fail_appends_after = appends_before_storm;
  plan1.fail_appends_count = 1;
  util::FaultPlan plan2;
  plan2.fail_syncs_after = syncs_before_storm;
  plan2.fail_syncs_count = 1;
  util::FaultInjector injector1(plan1);
  util::FaultInjector injector2(plan2);

  db::ShardedModDatabase control(&w->network, StoreOptions(control_dir));
  auto faulted_options = StoreOptions(faulted_dir);
  faulted_options.durability.wal.file_factory =
      RoutedFactory({{1, &injector1}, {2, &injector2}});
  db::ShardedModDatabase faulted(&w->network, faulted_options);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto id = static_cast<db::SubscriptionId>(i);
    if (!control.Subscribe(id, specs[i]).ok() ||
        !faulted.Subscribe(id, specs[i]).ok()) {
      std::printf("subscribe failed\n");
      return 1;
    }
  }
  if (!control.BulkInsert(w->fleet).ok() ||
      !faulted.BulkInsert(w->fleet).ok()) {
    std::printf("fleet load failed\n");
    return 1;
  }

  // --- Drive the rounds in lockstep. On the faulted store a failed write
  // starts a per-object FIFO of deferred updates (later updates for an
  // object with a backlog are deferred too — per-object order is what
  // keeps the event streams comparable). The first deferral triggers the
  // degraded-read checks while the quarantine is provably open.
  DegradedSnapshot degraded;
  std::map<core::ObjectId, std::deque<core::PositionUpdate>> deferred;
  std::size_t deferrals = 0;
  bool unavailable_typed_ok = true;

  auto check_degraded = [&](double t_now) {
    degraded.checked = true;
    degraded.excluded = faulted.supervisor().UnavailableShards();
    const db::RangeAnswer partial = faulted.QueryRange(WholeMap(), t_now);
    const db::RangeAnswer full = control.QueryRange(WholeMap(), t_now);
    const db::RangeAnswer expected =
        FilterByShards(full, faulted, degraded.excluded);
    degraded.completeness_ok = !degraded.excluded.empty() &&
                               !partial.completeness.complete &&
                               partial.completeness.excluded_shards ==
                                   degraded.excluded;
    degraded.must_identical = partial.must == expected.must;
    degraded.may_identical =
        partial.may == expected.may &&
        partial.may_probability == expected.may_probability;

    char statement[128];
    std::snprintf(statement, sizeof(statement),
                  "SELECT ALL INSIDE RECT(-10, -10, 280, 280) AT %g", t_now);
    const auto strict = db::ExecuteQuery(faulted, statement);
    degraded.strict_refused =
        !strict.ok() &&
        strict.status().code() == util::StatusCode::kUnavailable &&
        strict.status().message().find("partial answer refused (STRICT)") !=
            std::string::npos;
    const auto partial_text = db::ExecuteQuery(
        faulted, std::string(statement) + " ALLOW PARTIAL");
    degraded.partial_annotated =
        partial_text.ok() &&
        partial_text->find("partial (excluded shards:") != std::string::npos;
  };

  for (std::size_t i = 0; i < w->updates.size(); ++i) {
    const core::PositionUpdate& u = w->updates[i];
    if (!control.ApplyUpdate(u).ok()) {
      std::printf("control update failed\n");
      return 1;
    }
    if (auto backlog = deferred.find(u.object); backlog != deferred.end()) {
      backlog->second.push_back(u);
      continue;
    }
    const bool was_down = !faulted.supervisor().writable(faulted.ShardOf(u.object));
    const util::Status status = faulted.ApplyUpdate(u);
    if (!status.ok()) {
      // The fault's own write fails with the injected error; every write
      // to an already-down shard gets the typed Unavailable + retry hint.
      if (was_down) {
        unavailable_typed_ok =
            unavailable_typed_ok &&
            status.code() == util::StatusCode::kUnavailable &&
            status.message().find("retry_after_ms=") != std::string::npos;
      }
      ++deferrals;
      deferred[u.object].push_back(u);
      if (!degraded.checked && faulted.supervisor().num_unavailable() > 0) {
        check_degraded(u.time);
      }
    }
  }

  // --- Heal: the remediation loop owns the quarantined shards; once every
  // domain is re-admitted, replay the deferred updates in arrival order.
  const bool healed =
      faulted.supervisor().AwaitAllAvailable(std::chrono::seconds(30));
  std::size_t replayed = 0;
  bool replay_ok = healed;
  if (healed) {
    bool progressed = true;
    while (progressed && !deferred.empty()) {
      progressed = false;
      for (auto it = deferred.begin(); it != deferred.end();) {
        while (!it->second.empty() &&
               faulted.ApplyUpdate(it->second.front()).ok()) {
          it->second.pop_front();
          ++replayed;
          progressed = true;
        }
        it = it->second.empty() ? deferred.erase(it) : std::next(it);
      }
    }
    replay_ok = deferred.empty();
  }

  // --- Operator drill: a fault report on a shard with a healthy WAL takes
  // the full re-recovery path (fresh store, epoch replay, silent
  // subscription repriming) instead of the WAL reopen.
  faulted.supervisor().ReportFault(
      3, util::Status::Internal("operator drill: suspected corruption"));
  const bool drill_quarantined = !faulted.supervisor().writable(3);
  const bool drill_healed =
      faulted.supervisor().AwaitAllAvailable(std::chrono::seconds(30));

  // --- Convergence: after the storm and both heals the faulted store must
  // answer complete and byte-identical to the control.
  const double t_final = 5.0 * static_cast<double>(kRounds);
  const db::RangeAnswer final_faulted = faulted.QueryRange(WholeMap(), t_final);
  const db::RangeAnswer final_control = control.QueryRange(WholeMap(), t_final);
  const bool converged = final_faulted.completeness.complete &&
                         final_control.completeness.complete &&
                         final_faulted.must == final_control.must &&
                         final_faulted.may == final_control.may &&
                         final_faulted.may_probability ==
                             final_control.may_probability;

  // --- Stream parity: per (standing query, object) transition sequences.
  const auto control_stream = GroupStream(control.TakeSubscriptionEvents());
  const auto faulted_stream = GroupStream(faulted.TakeSubscriptionEvents());
  const bool streams_equal = control_stream == faulted_stream;
  std::size_t control_events = 0;
  for (const auto& [key, lines] : control_stream) {
    control_events += lines.size();
  }

  const std::uint64_t injected =
      injector1.injected_faults() + injector2.injected_faults();
  const std::uint64_t quarantines =
      faulted.metrics().GetCounter("shard.quarantine_total")->value();
  const std::uint64_t recoveries =
      faulted.metrics().GetCounter("shard.recoveries")->value();

  {
    util::Table table({"phase", "check", "result"});
    auto row = [&table](const char* phase, const char* check, bool ok) {
      table.NewRow().Add(phase).Add(check).Add(ok ? "yes" : "NO");
    };
    row("storm", "injected faults fired (>= 2)", injected >= 2);
    row("storm", ">= 1 shard quarantined at check time", degraded.checked);
    row("storm", "partial answer flagged, excluded shards exact",
        degraded.completeness_ok);
    row("storm", "MUST identical to control minus excluded shards",
        degraded.must_identical);
    row("storm", "MAY + probabilities identical on survivors",
        degraded.may_identical);
    row("storm", "STRICT query refused with typed Unavailable",
        degraded.strict_refused);
    row("storm", "ALLOW PARTIAL annotated the rendering",
        degraded.partial_annotated);
    row("storm", "later writes got Unavailable + retry hint",
        unavailable_typed_ok);
    row("heal", "remediation re-admitted every shard", healed);
    row("heal", "deferred updates replayed in order", replay_ok);
    row("drill", "operator fault quarantined shard 3", drill_quarantined);
    row("drill", "full re-recovery re-admitted shard 3", drill_healed);
    row("final", "faulted store converged to control", converged);
    row("final", "per-(query, object) event streams identical",
        streams_equal);
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf(
      "storm: %zu deferred writes across %llu injected faults; supervisor "
      "counted %llu quarantines / %llu recoveries; %zu deferred updates "
      "replayed after heal; %zu control events compared\n\n",
      deferrals, static_cast<unsigned long long>(injected),
      static_cast<unsigned long long>(quarantines),
      static_cast<unsigned long long>(recoveries), replayed, control_events);

  const bool pass_checks =
      injected >= 2 && degraded.checked && degraded.completeness_ok &&
      degraded.must_identical && degraded.may_identical &&
      degraded.strict_refused && degraded.partial_annotated &&
      unavailable_typed_ok && healed && replay_ok && drill_quarantined &&
      drill_healed && converged && streams_equal && quarantines >= 3 &&
      recoveries >= 3;
  const bool pass = fault_gate ? pass_checks : true;
  std::printf("shape check — seeded fault storm quarantined %llu shard "
              "domains, degraded reads stayed sound, every domain was "
              "re-admitted and the store converged to the fault-free "
              "control%s: %s -> %s\n\n",
              static_cast<unsigned long long>(quarantines),
              fault_gate ? "" : " (fault gate off, report only)",
              pass_checks ? "yes" : "NO", pass ? "PASS" : "FAIL");

  fs::remove_all(root);
  return pass ? 0 : 1;
}

int Run(bool smoke, bool fault_gate) {
  PrintHeader(
      "E18: shard failure domains — quarantine, backoff re-recovery, "
      "degraded reads",
      "a fault that poisons one shard's log costs that shard's answers, "
      "not the store: surviving shards keep answering (MUST stays sound, "
      "flagged partial), the remediation loop re-admits the domain, and "
      "the continuous-query streams come back byte-identical");
  return RunStorm(smoke, fault_gate);
}

}  // namespace
}  // namespace modb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  bool fault_gate = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--no-fault-gate") == 0) fault_gate = false;
  }
  return modb::bench::Run(smoke, fault_gate);
}
