// E8a — google-benchmark microbenchmarks of the geometry substrate: the
// route-distance operations every policy tick and query classification
// depends on.

#include <benchmark/benchmark.h>

#include "geo/polygon.h"
#include "geo/polyline.h"
#include "geo/route_network.h"
#include "util/rng.h"

namespace modb::geo {
namespace {

Polyline MakeWinding(std::size_t segments) {
  util::Rng rng(5);
  RouteNetwork net;
  const RouteId id =
      net.AddRandomWindingRoute(rng, {0.0, 0.0}, segments, 2.0, 0.5);
  return net.route(id).shape();
}

void BM_PointAtDistance(benchmark::State& state) {
  const Polyline line = MakeWinding(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(1);
  double s = 0.0;
  for (auto _ : state) {
    s += line.Length() * 0.37;
    if (s > line.Length()) s -= line.Length();
    benchmark::DoNotOptimize(line.PointAtDistance(s));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointAtDistance)->Arg(16)->Arg(256)->Arg(4096);

void BM_ProjectPoint(benchmark::State& state) {
  const Polyline line = MakeWinding(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(2);
  const Box2 box = line.BoundingBox();
  std::vector<Point2> probes;
  for (int i = 0; i < 64; ++i) {
    probes.push_back({rng.Uniform(box.min.x, box.max.x),
                      rng.Uniform(box.min.y, box.max.y)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(line.ProjectPoint(probes[i++ % probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProjectPoint)->Arg(16)->Arg(256)->Arg(4096);

void BM_SubPolylineBBox(benchmark::State& state) {
  const Polyline line = MakeWinding(1024);
  double s = 0.0;
  for (auto _ : state) {
    s += 13.7;
    if (s + 40.0 > line.Length()) s = 0.0;
    benchmark::DoNotOptimize(line.BoundingBoxBetween(s, s + 40.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubPolylineBBox);

void BM_PolygonContains(benchmark::State& state) {
  const Polygon poly = Polygon::RegularNGon(
      {0.0, 0.0}, 10.0, static_cast<std::size_t>(state.range(0)));
  util::Rng rng(3);
  std::vector<Point2> probes;
  for (int i = 0; i < 64; ++i) {
    probes.push_back({rng.Uniform(-12.0, 12.0), rng.Uniform(-12.0, 12.0)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.Contains(probes[i++ % probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolygonContains)->Arg(4)->Arg(32)->Arg(256);

void BM_SubInsidePolygon(benchmark::State& state) {
  const Polyline line = MakeWinding(256);
  Box2 box = line.BoundingBox();
  box.Inflate(1.0);
  const Polygon poly =
      Polygon::Rectangle(box.min.x, box.min.y, box.max.x, box.max.y);
  double s = 0.0;
  for (auto _ : state) {
    s += 7.3;
    if (s + 30.0 > line.Length()) s = 0.0;
    benchmark::DoNotOptimize(line.SubInsidePolygon(s, s + 30.0, poly));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubInsidePolygon);

}  // namespace
}  // namespace modb::geo

BENCHMARK_MAIN();
