// E2 — regenerates the paper's "total cost as a function of the message
// cost" plot (§3.4): total cost = C * messages + integral of the deviation
// (eq. 2 summed over the trip), averaged over the curve suite. The paper
// states the plots "indicate that the ail policy is superior to the other
// policies"; its motivation for ail is sharply-fluctuating (city
// stop-and-go) speed, where the average speed is stable while the current
// speed is a poor predictor (§3.2). The shape check therefore verifies ail
// attains the lowest total cost of the three paper policies on the city
// workload for all but the smallest message costs; the mixed-suite table is
// reported alongside (on smooth highway / traffic-jam curves the
// current-speed policies remain competitive — see EXPERIMENTS.md).

#include <cstdio>

#include "bench/exp_common.h"

namespace modb::bench {
namespace {

std::vector<sim::NamedCurve> CityOnlySuite(int count = 20) {
  util::Rng rng(1999);
  std::vector<sim::NamedCurve> suite;
  suite.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    suite.push_back({"city-" + std::to_string(i),
                     sim::MakeCityCurve(rng, StandardCurveOptions())});
  }
  return suite;
}

int Run() {
  PrintHeader("E2: total cost vs message cost C",
              "ail achieves the lowest total cost of the three policies "
              "(Section 3.4; ail is motivated by sharply-fluctuating city "
              "speed, Section 3.2)");

  const auto mixed = StandardSuite();
  const sim::SweepConfig config = StandardSweepConfig(/*include_baselines=*/true);
  const auto mixed_cells = sim::RunSweep(mixed, config);
  std::printf("Mixed suite (highway + city + jam + rush):\n%s\n",
              sim::SweepTable(mixed_cells, sim::MetricKind::kTotalCost)
                  .ToString()
                  .c_str());

  const auto city = CityOnlySuite();
  sim::SweepConfig city_config = StandardSweepConfig(/*include_baselines=*/false);
  const auto city_cells = sim::RunSweep(city, city_config);
  std::printf("City stop-and-go suite (the regime the paper motivates ail "
              "with):\n%s\n",
              sim::SweepTable(city_cells, sim::MetricKind::kTotalCost)
                  .ToString()
                  .c_str());

  // Shape check: ail cheapest of {dl, ail, cil} on the city workload for
  // C >= 5 (the paper's worked message cost). Below the crossover (~C=3)
  // updates are cheap enough that the current-speed policies' tighter
  // post-update tracking wins; see EXPERIMENTS.md.
  int ail_wins = 0;
  int axis_points = 0;
  for (double C : StandardCostAxis()) {
    if (C < 5.0) continue;
    double dl = 0.0;
    double ail = 0.0;
    double cil = 0.0;
    for (const auto& cell : city_cells) {
      if (cell.update_cost != C) continue;
      if (cell.policy == core::PolicyKind::kDelayedLinear) {
        dl = cell.mean.total_cost;
      } else if (cell.policy == core::PolicyKind::kAverageImmediateLinear) {
        ail = cell.mean.total_cost;
      } else if (cell.policy == core::PolicyKind::kCurrentImmediateLinear) {
        cil = cell.mean.total_cost;
      }
    }
    ++axis_points;
    if (ail <= dl + 1e-9 && ail <= cil + 1e-9) ++ail_wins;
  }
  const bool pass = ail_wins == axis_points;
  std::printf("shape check — ail cheapest of {dl, ail, cil} on city "
              "workload for C >= 5: %d/%d cost points: %s\n",
              ail_wins, axis_points, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
