#ifndef MODB_BENCH_EXP_COMMON_H_
#define MODB_BENCH_EXP_COMMON_H_

// Shared setup for the experiment-reproduction binaries (E1-E7 in
// DESIGN.md): the standard speed-curve suite and sweep parameters that play
// the role of the paper's §3.4 simulation protocol.

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/speed_curve.h"
#include "util/rng.h"

namespace modb::bench {

/// One-hour trips, minutes as the time unit, cruise 1 mi/min, V = 1.5.
inline sim::CurveGenOptions StandardCurveOptions() {
  sim::CurveGenOptions options;
  options.duration = 60.0;
  options.step = 1.0;
  options.cruise_speed = 1.0;
  options.max_speed = 1.5;
  return options;
}

/// The evaluation suite: `per_kind` curves per pattern (highway, city,
/// traffic-jam, rush-hour), deterministically seeded.
inline std::vector<sim::NamedCurve> StandardSuite(int per_kind = 10,
                                                  std::uint64_t seed = 1998) {
  util::Rng rng(seed);
  return sim::MakeStandardSuite(rng, per_kind, StandardCurveOptions());
}

/// Update costs swept in the paper-style plots ("as a function of the
/// message cost").
inline std::vector<double> StandardCostAxis() {
  return {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0};
}

/// The three policies of the paper plus our baselines/extension.
inline sim::SweepConfig StandardSweepConfig(bool include_baselines) {
  sim::SweepConfig config;
  config.policies = {core::PolicyKind::kDelayedLinear,
                     core::PolicyKind::kAverageImmediateLinear,
                     core::PolicyKind::kCurrentImmediateLinear};
  if (include_baselines) {
    config.policies.push_back(core::PolicyKind::kFixedThreshold);
    config.policies.push_back(core::PolicyKind::kHybridAdaptive);
  }
  config.update_costs = StandardCostAxis();
  config.base_policy.max_speed = 1.5;
  config.base_policy.fixed_threshold = 1.5;
  config.base_policy.period = 1.0;
  return config;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("Paper claim: %s\n\n", claim.c_str());
}

}  // namespace modb::bench

#endif  // MODB_BENCH_EXP_COMMON_H_
