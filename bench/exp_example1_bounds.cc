// E5 — reproduces every worked number in the paper's Example 1:
//   - the dl optimal update threshold k_opt = 1.74 miles for a = 1, b = 2,
//     C = 5 ("after it has been stopped for one minute and 44 seconds"),
//   - the dl slow-bound curve: slope 1 for ~3 minutes, then constant 3.16,
//   - the dl fast-bound curve: slope 0.5 for ~4.5 minutes, then 2.24,
//   - the il bound curves: same rise, then decreasing as 10/t,
// and cross-checks the threshold against a simulated Example-1 vehicle.

#include <cmath>
#include <cstdio>

#include "bench/exp_common.h"
#include "core/bounds.h"
#include "core/thresholds.h"
#include "sim/simulator.h"

namespace modb::bench {
namespace {

int Run() {
  PrintHeader("E5: Example 1 worked numbers (threshold and bound curves)",
              "k_opt = 1.74; dl slow bound plateaus at 3.16 after ~3 min; "
              "dl fast bound plateaus at 2.24 after ~4.5 min; il bounds "
              "decrease as 10/t after their peak");

  bool pass = true;
  const double C = 5.0;
  const double v = 1.0;
  const double V = 1.5;

  const double k_opt = core::OptimalThresholdDelayedLinear(1.0, 2.0, C);
  std::printf("dl optimal threshold (a=1, b=2, C=5): %.4f miles "
              "(paper: 1.74)\n", k_opt);
  pass &= std::fabs(k_opt - 1.74) < 0.01;

  // The stop lasts from minute 2; threshold reached after k_opt more
  // minutes, i.e. 1 minute 44 seconds into the stop.
  const int seconds = static_cast<int>(std::lround((k_opt - 1.0) * 60.0));
  std::printf("update fires after stopped for: 1 minute %d seconds "
              "(paper: 1 minute 44 seconds)\n\n", seconds);
  pass &= seconds == 44 || seconds == 45;

  util::Table table({"t (min)", "dl slow", "dl fast", "il slow", "il fast"});
  for (double t : {1.0, 2.0, 3.0, 4.0, 5.0, 10.0, 15.0, 20.0}) {
    table.NewRow()
        .Add(t, 1)
        .Add(core::DlSlowBound(v, C, t), 3)
        .Add(core::DlFastBound(V, v, C, t), 3)
        .Add(core::IlSlowBound(v, C, t), 3)
        .Add(core::IlFastBound(V, v, C, t), 3);
  }
  std::printf("%s\n", table.ToString().c_str());

  pass &= std::fabs(core::DlSlowBound(v, C, 10.0) - 3.16) < 0.01;
  pass &= std::fabs(core::DlSlowBound(v, C, 15.0) - 3.16) < 0.01;
  pass &= std::fabs(core::DlFastBound(V, v, C, 10.0) - 2.24) < 0.01;
  pass &= std::fabs(core::IlSlowBound(v, C, 10.0) - 1.0) < 1e-9;   // 10/t
  pass &= std::fabs(core::IlSlowBound(v, C, 20.0) - 0.5) < 1e-9;
  pass &= std::fabs(core::IlFastBound(V, v, C, 5.0) - 2.0) < 1e-9;

  // Simulated cross-check: the Example-1 vehicle (1 mi/min for 2 minutes,
  // then a jam) running dl sends exactly one update, once the deviation
  // crosses k_opt.
  std::vector<double> speeds(10, 0.0);
  speeds[0] = speeds[1] = 1.0;
  core::PolicyConfig policy;
  policy.kind = core::PolicyKind::kDelayedLinear;
  policy.update_cost = C;
  policy.max_speed = V;
  sim::SimulationOptions fine;
  fine.tick = 1.0 / 60.0;  // one-second ticks
  const sim::RunMetrics m = sim::SimulatePolicyOnCurve(
      sim::SpeedCurve(speeds, 1.0), policy, fine);
  std::printf("simulated Example-1 vehicle: %zu update(s), max deviation "
              "%.3f (threshold %.3f)\n", m.messages, m.max_deviation, k_opt);
  pass &= m.messages == 1;
  pass &= std::fabs(m.max_deviation - k_opt) < 0.05;

  std::printf("\nshape check — all Example 1 numbers reproduced: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
