// E8b — google-benchmark microbenchmarks of the 3-D R*-tree: insert,
// update (remove + insert, the position-update path of §4.2), and
// time-slice search throughput.

#include <benchmark/benchmark.h>

#include <vector>

#include "index/rtree3.h"
#include "index/soa_kernel.h"
#include "util/rng.h"

namespace modb::index {
namespace {

using geo::Box3;

Box3 RandomBox(util::Rng& rng, double space, double extent) {
  const double x = rng.Uniform(0.0, space);
  const double y = rng.Uniform(0.0, space);
  const double t = rng.Uniform(0.0, space);
  return Box3(x, y, t, x + extent, y + extent, t + extent);
}

void BM_RTreeInsert(benchmark::State& state) {
  util::Rng rng(1);
  const auto prefill = static_cast<std::size_t>(state.range(0));
  RTree3 tree;
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < prefill; ++i) {
    tree.Insert(RandomBox(rng, 500.0, 5.0), value++);
  }
  for (auto _ : state) {
    tree.Insert(RandomBox(rng, 500.0, 5.0), value++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeSearch(benchmark::State& state) {
  util::Rng rng(2);
  const auto size = static_cast<std::size_t>(state.range(0));
  RTree3 tree;
  for (std::size_t i = 0; i < size; ++i) {
    tree.Insert(RandomBox(rng, 500.0, 5.0), i);
  }
  std::size_t results = 0;
  for (auto _ : state) {
    const Box3 query = RandomBox(rng, 480.0, 20.0);
    tree.Search(query, [&results](const Box3&, std::uint64_t) { ++results; });
  }
  benchmark::DoNotOptimize(results);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeSearch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeTimeSliceSearch(benchmark::State& state) {
  // The shape of a range query: a zero-thickness time slice.
  util::Rng rng(3);
  RTree3 tree;
  for (std::size_t i = 0; i < 50000; ++i) {
    tree.Insert(RandomBox(rng, 500.0, 5.0), i);
  }
  std::size_t results = 0;
  for (auto _ : state) {
    const double t = rng.Uniform(0.0, 500.0);
    const Box3 slice(rng.Uniform(0.0, 460.0), rng.Uniform(0.0, 460.0), t,
                     rng.Uniform(460.0, 500.0), rng.Uniform(460.0, 500.0), t);
    tree.Search(slice, [&results](const Box3&, std::uint64_t) { ++results; });
  }
  benchmark::DoNotOptimize(results);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeTimeSliceSearch);

void BM_RTreeUpdateCycle(benchmark::State& state) {
  // The §4.2 position-update path: remove the old o-plane boxes, insert the
  // new ones (here 15 boxes per object, matching a 60-unit horizon with
  // 4-unit slabs).
  util::Rng rng(4);
  constexpr std::size_t kObjects = 2000;
  constexpr std::size_t kBoxesPerObject = 15;
  RTree3 tree;
  std::vector<std::vector<Box3>> boxes(kObjects);
  for (std::size_t i = 0; i < kObjects; ++i) {
    for (std::size_t b = 0; b < kBoxesPerObject; ++b) {
      boxes[i].push_back(RandomBox(rng, 500.0, 4.0));
      tree.Insert(boxes[i][b], i);
    }
  }
  std::size_t next = 0;
  for (auto _ : state) {
    const std::size_t id = next++ % kObjects;
    for (const Box3& b : boxes[id]) tree.Remove(b, id);
    boxes[id].clear();
    for (std::size_t b = 0; b < kBoxesPerObject; ++b) {
      boxes[id].push_back(RandomBox(rng, 500.0, 4.0));
      tree.Insert(boxes[id][b], id);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeUpdateCycle);

// SoA arrays holding `n` random boxes plus a query that hits ~half of them.
struct SoAFixture {
  std::vector<double> min_x, min_y, min_t, max_x, max_y, max_t;
  std::vector<Box3> aos;  // same boxes, array-of-structs, for the baseline
  Box3 query{0.0, 0.0, 0.0, 250.0, 250.0, 250.0};

  explicit SoAFixture(std::size_t n) {
    util::Rng rng(5);
    for (std::size_t i = 0; i < n; ++i) {
      const Box3 b = RandomBox(rng, 500.0, 5.0);
      min_x.push_back(b.min[0]);
      min_y.push_back(b.min[1]);
      min_t.push_back(b.min[2]);
      max_x.push_back(b.max[0]);
      max_y.push_back(b.max[1]);
      max_t.push_back(b.max[2]);
      aos.push_back(b);
    }
  }
};

void BM_SoAIntersectKernel(benchmark::State& state) {
  // The packed node-scan kernel `Search` runs per visited node: one
  // batched compare pass + compacting hit-index store. Arg is the batch
  // width — 16 is one node's worth (Options::max_entries default).
  const auto n = static_cast<std::size_t>(state.range(0));
  SoAFixture f(n);
  std::vector<std::uint32_t> hits(n);
  for (auto _ : state) {
    const std::size_t count = soa::IntersectBoxes(
        f.min_x.data(), f.min_y.data(), f.min_t.data(), f.max_x.data(),
        f.max_y.data(), f.max_t.data(), n, f.query, hits.data());
    benchmark::DoNotOptimize(count);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SoAIntersectKernel)->Arg(16)->Arg(256)->Arg(4096);

void BM_ScalarIntersectBaseline(benchmark::State& state) {
  // The legacy per-entry path: Box3::Intersects on array-of-structs
  // entries with a branchy push. Same workload as BM_SoAIntersectKernel.
  const auto n = static_cast<std::size_t>(state.range(0));
  SoAFixture f(n);
  std::vector<std::uint32_t> hits(n);
  for (auto _ : state) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (f.aos[i].Intersects(f.query)) {
        hits[count++] = static_cast<std::uint32_t>(i);
      }
    }
    benchmark::DoNotOptimize(count);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScalarIntersectBaseline)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace modb::index

BENCHMARK_MAIN();
