// E8c — google-benchmark microbenchmarks of the database layer: object
// registration (incremental vs bulk), the position-update path, and both
// query forms.

#include <benchmark/benchmark.h>

#include <memory>

#include "db/mod_database.h"
#include "util/rng.h"

namespace modb::db {
namespace {

struct Fixture {
  geo::RouteNetwork network;
  std::vector<core::PositionAttribute> attrs;

  explicit Fixture(std::size_t n, std::uint64_t seed = 1) {
    network.AddGridNetwork(10, 10, 60.0);
    util::Rng rng(seed);
    attrs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      core::PositionAttribute attr;
      attr.route = static_cast<geo::RouteId>(
          rng.UniformInt(0, static_cast<std::int64_t>(network.size()) - 1));
      attr.start_route_distance =
          rng.Uniform(0.0, network.route(attr.route).Length() * 0.5);
      attr.start_position =
          network.route(attr.route).PointAt(attr.start_route_distance);
      attr.speed = rng.Uniform(0.2, 1.2);
      attr.update_cost = 5.0;
      attr.max_speed = 1.5;
      attr.policy = core::PolicyKind::kAverageImmediateLinear;
      attrs.push_back(attr);
    }
  }
};

void BM_DbInsert(benchmark::State& state) {
  const Fixture fx(10000);
  std::size_t i = 0;
  std::unique_ptr<ModDatabase> db;
  for (auto _ : state) {
    if (i % fx.attrs.size() == 0) {
      state.PauseTiming();
      db = std::make_unique<ModDatabase>(&fx.network);
      state.ResumeTiming();
    }
    const std::size_t idx = i++ % fx.attrs.size();
    benchmark::DoNotOptimize(db->Insert(idx, "", fx.attrs[idx]).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbInsert);

void BM_DbBulkInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Fixture fx(n);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ModDatabase::BulkObject> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) batch.push_back({i, "", fx.attrs[i]});
    ModDatabase db(&fx.network);
    state.ResumeTiming();
    benchmark::DoNotOptimize(db.BulkInsert(std::move(batch)).ok());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DbBulkInsert)->Arg(1000)->Arg(10000);

void BM_DbApplyUpdate(benchmark::State& state) {
  const Fixture fx(5000);
  ModDatabase db(&fx.network);
  for (std::size_t i = 0; i < fx.attrs.size(); ++i) {
    db.Insert(i, "", fx.attrs[i]).ok();
  }
  util::Rng rng(3);
  double t = 1.0;
  for (auto _ : state) {
    const auto id = static_cast<core::ObjectId>(
        rng.UniformInt(0, static_cast<std::int64_t>(fx.attrs.size()) - 1));
    const core::PositionAttribute& base = fx.attrs[id];
    core::PositionUpdate update;
    update.object = id;
    update.time = t;
    update.route = base.route;
    update.route_distance = base.start_route_distance;
    update.position = base.start_position;
    update.direction = base.direction;
    update.speed = rng.Uniform(0.2, 1.2);
    benchmark::DoNotOptimize(db.ApplyUpdate(update).ok());
    t += 1e-4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbApplyUpdate);

void BM_DbQueryPosition(benchmark::State& state) {
  const Fixture fx(5000);
  ModDatabase db(&fx.network);
  for (std::size_t i = 0; i < fx.attrs.size(); ++i) {
    db.Insert(i, "", fx.attrs[i]).ok();
  }
  util::Rng rng(4);
  for (auto _ : state) {
    const auto id = static_cast<core::ObjectId>(
        rng.UniformInt(0, static_cast<std::int64_t>(fx.attrs.size()) - 1));
    benchmark::DoNotOptimize(db.QueryPosition(id, rng.Uniform(0.0, 60.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbQueryPosition);

void BM_DbQueryRange(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Fixture fx(n);
  ModDatabase db(&fx.network);
  for (std::size_t i = 0; i < n; ++i) db.Insert(i, "", fx.attrs[i]).ok();
  util::Rng rng(5);
  std::size_t results = 0;
  for (auto _ : state) {
    const geo::Polygon region = geo::Polygon::CenteredRectangle(
        {rng.Uniform(50.0, 500.0), rng.Uniform(50.0, 500.0)}, 25.0, 25.0);
    const RangeAnswer answer = db.QueryRange(region, rng.Uniform(0.0, 40.0));
    results += answer.must.size() + answer.may.size();
  }
  benchmark::DoNotOptimize(results);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbQueryRange)->Arg(1000)->Arg(10000);

void BM_DbQueryNearest(benchmark::State& state) {
  const Fixture fx(10000);
  ModDatabase db(&fx.network);
  for (std::size_t i = 0; i < fx.attrs.size(); ++i) {
    db.Insert(i, "", fx.attrs[i]).ok();
  }
  util::Rng rng(6);
  for (auto _ : state) {
    const geo::Point2 p{rng.Uniform(0.0, 540.0), rng.Uniform(0.0, 540.0)};
    benchmark::DoNotOptimize(db.QueryNearest(p, 5, rng.Uniform(0.0, 40.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbQueryNearest);

}  // namespace
}  // namespace modb::db

BENCHMARK_MAIN();
