// E11 (extension) — robustness of the paper's bounds under an unreliable
// wireless channel. The paper assumes instantaneous, reliable updates; this
// experiment injects message loss with onboard retransmission (a message is
// only mirrored onboard once acknowledged) and measures how the bound
// guarantee degrades: delivered traffic, verification failures beyond the
// lossless tolerance, and the worst excess.

#include <cstdio>

#include "bench/exp_common.h"
#include "sim/fleet.h"
#include "sim/trip.h"

namespace modb::bench {
namespace {

int Run() {
  PrintHeader("E11: bound robustness under message loss",
              "with delivery-acknowledged retransmission the DBMS bounds "
              "remain nearly sound; excess grows only with loss streaks");

  util::Table table({"loss p", "attempted", "delivered", "retransmit "
                     "overhead %", "violations", "violation rate %",
                     "max excess"});
  bool pass = true;
  double lossless_attempts = 0.0;
  for (double p : {0.0, 0.1, 0.2, 0.3, 0.5}) {
    geo::RouteNetwork network;
    network.AddGridNetwork(5, 5, 40.0);
    db::ModDatabase db(&network);
    sim::FleetOptions options;
    options.message_loss_probability = p;
    options.seed = 1234;
    sim::FleetSimulator fleet(&db, options);

    util::Rng rng(2026);
    const sim::CurveGenOptions curve_options = StandardCurveOptions();
    for (core::ObjectId id = 0; id < 30; ++id) {
      const auto route_id = static_cast<geo::RouteId>(
          rng.UniformInt(0, static_cast<std::int64_t>(network.size()) - 1));
      const geo::Route& route = network.route(route_id);
      sim::Trip trip(&route, rng.Uniform(0.0, route.Length() * 0.2),
                     core::TravelDirection::kForward, 0.0,
                     sim::MakeCityCurve(rng, curve_options));
      core::PolicyConfig policy;
      policy.kind = core::PolicyKind::kAverageImmediateLinear;
      policy.update_cost = 5.0;
      policy.max_speed = 1.5;
      fleet.AddVehicle(
          sim::Vehicle(id, std::move(trip), core::MakePolicy(policy)));
    }
    if (!fleet.RegisterAll().ok() || !fleet.Run().ok()) return 1;

    const sim::FleetStats& stats = fleet.stats();
    if (p == 0.0) {
      lossless_attempts = static_cast<double>(stats.messages_attempted);
    }
    const double overhead =
        lossless_attempts > 0.0
            ? 100.0 * (static_cast<double>(stats.messages_attempted) -
                       lossless_attempts) /
                  lossless_attempts
            : 0.0;
    const double violation_rate =
        100.0 * static_cast<double>(stats.bound_violations) /
        static_cast<double>(stats.vehicle_ticks);
    table.NewRow()
        .Add(p, 2)
        .Add(static_cast<std::size_t>(stats.messages_attempted))
        .Add(static_cast<std::size_t>(stats.messages_delivered()))
        .Add(overhead, 1)
        .Add(static_cast<std::size_t>(stats.bound_violations))
        .Add(violation_rate, 2)
        .Add(stats.max_bound_excess, 3);

    if (p == 0.0) {
      pass &= stats.bound_violations == 0;
      pass &= stats.messages_lost == 0;
    } else {
      // Under loss the guarantee degrades gracefully: transient violations
      // stay rare and small (a few ticks of worst-case growth).
      pass &= violation_rate < 5.0;
      pass &= stats.max_bound_excess < 6.0 * 1.5;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape check — zero violations lossless; rare, small excess "
              "under loss up to 50%%: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
