// E4 — the paper's headline claim (§1, §6): modeling positions with motion
// attributes "reduces the number of updates to 15% of the number used by
// the traditional, non-temporal method; this saves 85% of the bandwidth".
// The traditional method re-reports the raw position every time unit
// (kPeriodic, period 1); the motion-model policies only report when the
// cost-based threshold fires.

#include <cstdio>

#include "bench/exp_common.h"

namespace modb::bench {
namespace {

int Run() {
  PrintHeader("E4: motion-model updates vs traditional per-time-unit method",
              "position attributes cut update messages to ~15% of the "
              "traditional method (85% bandwidth saving)");

  const auto suite = StandardSuite();
  sim::SweepConfig config;
  config.policies = {core::PolicyKind::kPeriodic,
                     core::PolicyKind::kDelayedLinear,
                     core::PolicyKind::kAverageImmediateLinear,
                     core::PolicyKind::kCurrentImmediateLinear,
                     core::PolicyKind::kHybridAdaptive};
  config.update_costs = {5.0};  // the paper's worked message cost
  config.base_policy.max_speed = 1.5;
  config.base_policy.period = 1.0;
  const auto cells = sim::RunSweep(suite, config);

  double traditional = 0.0;
  for (const auto& cell : cells) {
    if (cell.policy == core::PolicyKind::kPeriodic) {
      traditional = cell.mean.messages;
    }
  }

  util::Table table({"policy", "messages/trip", "% of traditional",
                     "bandwidth saving"});
  double best_ratio = 1.0;
  for (const auto& cell : cells) {
    const double ratio =
        traditional > 0.0 ? cell.mean.messages / traditional : 0.0;
    table.NewRow()
        .Add(std::string(core::PolicyKindName(cell.policy)))
        .Add(cell.mean.messages, 2)
        .Add(100.0 * ratio, 1)
        .Add(100.0 * (1.0 - ratio), 1);
    if (cell.policy != core::PolicyKind::kPeriodic) {
      best_ratio = std::min(best_ratio, ratio);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(60-minute trips, C = 5, %zu curves)\n\n", suite.size());

  const bool pass = best_ratio <= 0.25;
  std::printf("shape check — best motion-model policy uses <= 25%% of "
              "traditional messages (paper: ~15%%): %.1f%% %s\n",
              100.0 * best_ratio, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
