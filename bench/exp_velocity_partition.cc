// E15 — velocity-partitioned time-space indexing: a mixed-speed fleet
// (traffic-jam + city + highway classes) indexed by one R*-tree over
// everyone versus speed-banded R*-trees with band-tuned slab widths. A fast
// object's per-slab box covers speed × slab_width of route, so in a single
// tree a handful of highway objects inflate node MBRs with dead space and
// drag candidate precision down for the whole fleet; banding bounds the
// dead space per band. The claim under test: fewer candidates examined per
// query at equal (byte-identical) refined answers.
//
// `--smoke` runs a tiny fleet for CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "core/update_policy.h"
#include "db/mod_database.h"
#include "geo/route_network.h"
#include "index/velocity_partitioned_index.h"
#include "util/rng.h"

namespace modb::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Workload {
  geo::RouteNetwork network;
  std::vector<core::PositionAttribute> attrs;
  std::vector<core::PositionUpdate> updates;
  std::vector<geo::Polygon> queries;
};

// Speed classes: jam crawls, city flows, highway flies. One fleet mixes
// all three (a third each).
double ClassSpeed(int cls, util::Rng& rng) {
  switch (cls) {
    case 0: return rng.Uniform(0.1, 0.6);    // jam
    case 1: return rng.Uniform(2.0, 5.0);    // city
    default: return rng.Uniform(10.0, 20.0); // highway
  }
}

std::unique_ptr<Workload> MakeWorkload(std::size_t num_objects,
                                       std::size_t num_queries,
                                       std::uint64_t seed) {
  auto w = std::make_unique<Workload>();
  // 20x20 street grid spanning 570 x 570.
  w->network.AddGridNetwork(20, 20, 30.0);
  util::Rng rng(seed);
  w->attrs.reserve(num_objects);
  for (std::size_t i = 0; i < num_objects; ++i) {
    core::PositionAttribute attr;
    attr.route = static_cast<geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(w->network.size()) - 1));
    const double len = w->network.route(attr.route).Length();
    attr.start_route_distance = rng.Uniform(0.0, len * 0.5);
    attr.start_position =
        w->network.route(attr.route).PointAt(attr.start_route_distance);
    attr.speed = ClassSpeed(static_cast<int>(i % 3), rng);
    attr.update_cost = 5.0;
    attr.max_speed = 25.0;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    w->attrs.push_back(attr);
  }
  // One position report per object at t=10; a tenth of the fleet changes
  // speed class (merging onto / leaving the highway), which exercises the
  // banded index's migration path.
  w->updates.reserve(num_objects);
  for (std::size_t i = 0; i < num_objects; ++i) {
    const core::PositionAttribute& attr = w->attrs[i];
    core::PositionUpdate u;
    u.object = static_cast<core::ObjectId>(i);
    u.time = 10.0;
    u.route = attr.route;
    const double len = w->network.route(attr.route).Length();
    u.route_distance =
        std::min(len, attr.start_route_distance + attr.speed * 10.0);
    u.position = w->network.route(u.route).PointAt(u.route_distance);
    u.direction = core::TravelDirection::kForward;
    const int cls = static_cast<int>(i % 3);
    u.speed = i % 10 == 0 ? ClassSpeed((cls + 1) % 3, rng)
                          : ClassSpeed(cls, rng);
    w->updates.push_back(u);
  }
  w->queries.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    w->queries.push_back(geo::Polygon::CenteredRectangle(
        {rng.Uniform(50.0, 520.0), rng.Uniform(50.0, 520.0)}, 20.0, 20.0));
  }
  return w;
}

struct QueryStats {
  double us_per_query = 0.0;
  double candidates_per_query = 0.0;
  std::size_t results = 0;
};

QueryStats TimeQueries(const db::ModDatabase& db, const Workload& w,
                       core::Time t) {
  QueryStats stats;
  const auto start = Clock::now();
  for (const auto& region : w.queries) {
    const db::RangeAnswer answer = db.QueryRange(region, t);
    stats.results += answer.must.size() + answer.may.size();
    stats.candidates_per_query +=
        static_cast<double>(answer.candidates_examined);
  }
  const auto end = Clock::now();
  const double total_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  stats.us_per_query = total_us / static_cast<double>(w.queries.size());
  stats.candidates_per_query /= static_cast<double>(w.queries.size());
  return stats;
}

// Answers must be byte-identical across index kinds (the index is only a
// candidate filter; refinement decides).
bool AnswersAgree(const db::ModDatabase& a, const db::ModDatabase& b,
                  const Workload& w, core::Time t) {
  for (const auto& region : w.queries) {
    const db::RangeAnswer ra = a.QueryRange(region, t);
    const db::RangeAnswer rb = b.QueryRange(region, t);
    if (ra.must != rb.must || ra.may != rb.may) return false;
  }
  return true;
}

double TimeUpdates(db::ModDatabase& db, const Workload& w) {
  const auto start = Clock::now();
  for (const auto& u : w.updates) db.ApplyUpdate(u).ok();
  const auto end = Clock::now();
  const double secs = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(w.updates.size()) / secs;
}

void PrintBandTable(const db::ModDatabase& db) {
  const auto* vp = dynamic_cast<const index::VelocityPartitionedIndex*>(
      &db.object_index());
  if (vp == nullptr) return;
  util::Table table({"band", "upper speed", "slab width", "objects",
                     "entries"});
  for (std::size_t b = 0; b < vp->num_bands(); ++b) {
    const double upper = b < vp->band_bounds().size()
                             ? vp->band_bounds()[b]
                             : std::numeric_limits<double>::infinity();
    table.NewRow()
        .Add(b)
        .Add(upper, 2)
        .Add(vp->band_slab_width(b), 2)
        .Add(vp->band_object_count(b))
        .Add(vp->band_entry_count(b));
  }
  std::printf("%s(band migrations so far: %zu, remove misses: %zu)\n\n",
              table.ToString().c_str(), vp->band_migrations(),
              vp->remove_misses());
}

int RunComparison(bool smoke) {
  const std::size_t kObjects = smoke ? 300 : 12000;
  const std::size_t kQueries = smoke ? 16 : 64;
  std::printf("--- single tree vs velocity-banded, mixed-speed fleet "
              "(N = %zu) ---\n", kObjects);

  util::Table table({"index", "entries", "us/query", "candidates/query",
                     "% of DB examined", "updates/s"});
  double single_candidates = 0.0;
  double banded_candidates = 0.0;
  bool agree = true;
  for (int kind = 0; kind < 2; ++kind) {
    const auto w = MakeWorkload(kObjects, kQueries, 1998);
    db::ModDatabaseOptions opts;
    opts.oplane_horizon = 60.0;
    opts.oplane_slab_width = 4.0;
    if (kind == 0) {
      opts.index_kind = db::IndexKind::kTimeSpaceRTree;
    } else {
      opts.index_kind = db::IndexKind::kVelocityPartitioned;
      opts.velocity_bands = 3;
      opts.velocity_min_slab_width = 0.5;
    }
    db::ModDatabase db(&w->network, opts);
    std::vector<db::ModDatabase::BulkObject> fleet;
    fleet.reserve(w->attrs.size());
    for (std::size_t i = 0; i < w->attrs.size(); ++i) {
      db::ModDatabase::BulkObject o;
      o.id = static_cast<core::ObjectId>(i);
      o.attr = w->attrs[i];
      fleet.push_back(std::move(o));
    }
    if (!db.BulkInsert(std::move(fleet)).ok()) return 1;

    const core::Time t = 5.0;
    const QueryStats stats = TimeQueries(db, *w, t);
    const double updates_per_sec = TimeUpdates(db, *w);
    // Re-query after the update wave too (t=15) so migration correctness
    // is part of the agreement check below.
    const QueryStats after = TimeQueries(db, *w, 15.0);
    (void)after;
    table.NewRow()
        .Add(std::string(db.object_index().name()))
        .Add(db.object_index().num_entries())
        .Add(stats.us_per_query, 1)
        .Add(stats.candidates_per_query, 1)
        .Add(100.0 * stats.candidates_per_query /
                 static_cast<double>(kObjects), 2)
        .Add(updates_per_sec, 0);
    if (kind == 0) {
      single_candidates = stats.candidates_per_query;
    } else {
      banded_candidates = stats.candidates_per_query;
      PrintBandTable(db);
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  // Agreement check on fresh instances (the timed ones have diverged
  // through their update waves at independently drawn speeds).
  {
    const auto w = MakeWorkload(kObjects, kQueries, 1998);
    db::ModDatabaseOptions single_opts;
    single_opts.index_kind = db::IndexKind::kTimeSpaceRTree;
    single_opts.oplane_horizon = 60.0;
    single_opts.oplane_slab_width = 4.0;
    db::ModDatabaseOptions banded_opts = single_opts;
    banded_opts.index_kind = db::IndexKind::kVelocityPartitioned;
    banded_opts.velocity_bands = 3;
    db::ModDatabase single_db(&w->network, single_opts);
    db::ModDatabase banded_db(&w->network, banded_opts);
    for (std::size_t i = 0; i < w->attrs.size(); ++i) {
      const auto id = static_cast<core::ObjectId>(i);
      single_db.Insert(id, "", w->attrs[i]).ok();
      banded_db.Insert(id, "", w->attrs[i]).ok();
    }
    agree = AnswersAgree(single_db, banded_db, *w, 5.0);
    for (const auto& u : w->updates) {
      single_db.ApplyUpdate(u).ok();
      banded_db.ApplyUpdate(u).ok();
    }
    agree = agree && AnswersAgree(single_db, banded_db, *w, 15.0);
  }

  const bool fewer = banded_candidates < single_candidates;
  const bool pass = agree && fewer;
  std::printf("shape check — banded index examines %.1f candidates/query vs "
              "%.1f for the single tree (%.0f%% reduction), answers "
              "identical before and after the update wave: %s -> %s\n\n",
              banded_candidates, single_candidates,
              single_candidates > 0.0
                  ? 100.0 * (1.0 - banded_candidates / single_candidates)
                  : 0.0,
              agree ? "yes" : "NO", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

int Run(bool smoke) {
  PrintHeader("E15: velocity-partitioned time-space indexing",
              "speed-banded R*-trees with band-tuned slab widths examine "
              "fewer candidates than one tree over a mixed-speed fleet, at "
              "identical refined answers");
  return RunComparison(smoke);
}

}  // namespace
}  // namespace modb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return modb::bench::Run(smoke);
}
