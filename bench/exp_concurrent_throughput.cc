// E13: concurrent update+query throughput of the sharded MOD vs. the
// single-shard baseline.
//
// Workload: T client threads, each issuing a 90/10 mix of dead-reckoning
// position updates (ApplyUpdate on its own stripe of the fleet) and range /
// nearest queries, against a ShardedModDatabase with S shards. S = 1 is the
// baseline: every operation funnels through one shard lock, which is
// exactly a mutex-wrapped single ModDatabase. The table reports aggregate
// operations per second; the speedup column is relative to the
// 1-shard/1-thread cell.
//
// What scales and why: updates to different shards hold different locks
// (true parallelism on multicore, and far fewer contended lock handoffs
// even on one core); fan-out queries read shards under shared locks so
// they overlap with each other and with writers on other shards. Expect
// near-linear update scaling up to min(shards, cores) and a contention
// cliff at S = 1; on a single-core host the gain reduces to the contended
// vs. uncontended locking delta, so run on multicore hardware for the
// headline numbers.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/exp_common.h"
#include "db/sharded_database.h"
#include "geo/route_network.h"
#include "util/rng.h"
#include "util/table.h"

namespace modb::bench {
namespace {

struct WorkloadResult {
  double ops_per_sec = 0.0;
  std::uint64_t updates = 0;
  std::uint64_t queries = 0;
  std::string metrics_dump;
};

constexpr std::size_t kFleetSize = 2048;
constexpr int kOpsPerThread = 6000;
constexpr int kQueryEvery = 10;  // 1 query per 9 updates

db::ShardedModDatabase MakeDatabase(const geo::RouteNetwork& network,
                                    std::size_t shards,
                                    std::size_t query_threads) {
  db::ShardedModDatabaseOptions options;
  options.num_shards = shards;
  options.num_query_threads = query_threads;
  return db::ShardedModDatabase(&network, options);
}

void LoadFleet(const geo::RouteNetwork& network, db::ShardedModDatabase* db) {
  std::vector<db::ShardedModDatabase::BulkObject> batch;
  util::Rng rng(7);
  const auto& routes = network.routes();
  for (core::ObjectId id = 0; id < kFleetSize; ++id) {
    const geo::Route& route = routes[id % routes.size()];
    db::ShardedModDatabase::BulkObject object;
    object.id = id;
    core::PositionAttribute attr;
    attr.route = route.id();
    attr.start_route_distance = rng.Uniform(0.0, route.Length() * 0.9);
    attr.start_position = route.PointAt(attr.start_route_distance);
    attr.speed = rng.Uniform(0.2, 1.2);
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    object.attr = attr;
    batch.push_back(std::move(object));
  }
  if (!db->BulkInsert(std::move(batch)).ok()) {
    std::fprintf(stderr, "fleet load failed\n");
    std::abort();
  }
}

WorkloadResult RunWorkload(const geo::RouteNetwork& network,
                           std::size_t shards, std::size_t threads) {
  db::ShardedModDatabase db = MakeDatabase(network, shards, /*query_threads=*/
                                           0);
  LoadFleet(network, &db);

  std::atomic<std::uint64_t> updates{0};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      util::Rng rng(100 + w);
      const auto& routes = network.routes();
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t my_updates = 0;
      std::uint64_t my_queries = 0;
      for (int op = 0; op < kOpsPerThread; ++op) {
        if (op % kQueryEvery == kQueryEvery - 1) {
          const double x0 = rng.Uniform(0.0, 900.0);
          const double y0 = rng.Uniform(0.0, 900.0);
          if (my_queries % 2 == 0) {
            const geo::Polygon region =
                geo::Polygon::Rectangle(x0, y0, x0 + 60.0, y0 + 60.0);
            (void)db.QueryRange(region, 1.0 + op);
          } else {
            (void)db.QueryNearest({x0, y0}, 5, 1.0 + op);
          }
          ++my_queries;
          continue;
        }
        // Each thread updates its own stripe of the fleet so update times
        // stay monotone per object.
        const core::ObjectId id =
            (static_cast<core::ObjectId>(rng.UniformInt(
                 0, static_cast<std::int64_t>(kFleetSize) - 1)) /
             threads) *
                threads +
            w;
        if (id >= kFleetSize) continue;
        const geo::Route& route = routes[id % routes.size()];
        core::PositionUpdate update;
        update.object = id;
        update.time = 1.0 + op;
        update.route = route.id();
        update.route_distance = rng.Uniform(0.0, route.Length() * 0.9);
        update.position = route.PointAt(update.route_distance);
        update.direction = core::TravelDirection::kForward;
        update.speed = rng.Uniform(0.2, 1.2);
        (void)db.ApplyUpdate(update);
        ++my_updates;
      }
      updates.fetch_add(my_updates);
      queries.fetch_add(my_queries);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();

  WorkloadResult result;
  result.updates = updates.load();
  result.queries = queries.load();
  result.ops_per_sec =
      static_cast<double>(result.updates + result.queries) / seconds;
  result.metrics_dump = db.DumpMetrics();
  return result;
}

}  // namespace
}  // namespace modb::bench

int main() {
  using namespace modb::bench;

  PrintHeader("E13 concurrent throughput",
              "sharding the MOD removes the single-writer bottleneck: "
              "aggregate update+query throughput scales with shards x "
              "threads (ROADMAP north star, not a claim of the 1998 paper)");

  modb::geo::RouteNetwork network;
  network.AddGridNetwork(10, 10, 100.0);  // 1km-ish urban grid

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u (speedups over the 1-shard/1-thread "
              "baseline need cores to materialise)\n\n",
              hw);

  modb::util::Table table(
      {"shards", "threads", "updates", "queries", "ops/s", "speedup"});
  const double baseline = RunWorkload(network, 1, 1).ops_per_sec;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
      const WorkloadResult r = RunWorkload(network, shards, threads);
      table.NewRow()
          .Add(shards)
          .Add(threads)
          .Add(static_cast<std::size_t>(r.updates))
          .Add(static_cast<std::size_t>(r.queries))
          .Add(r.ops_per_sec, 0)
          .Add(r.ops_per_sec / baseline, 2);
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("\nmetrics endpoint sample (8 shards / 8 threads):\n");
  const WorkloadResult sample = RunWorkload(network, 8, 8);
  std::printf("%s\n", sample.metrics_dump.c_str());
  return 0;
}
