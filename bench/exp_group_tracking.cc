// E21 — group/convoy tracking: the same convoy-heavy fleet is replayed
// into two databases, one with the group tracker off (every vehicle
// maintains its own index entry) and one with it on (each detected convoy
// elects a leader whose motion model drives a single envelope entry while
// member updates become state-only rows that never touch the tree). The
// group layer is pure write-path mechanics: it must leave every
// MUST/MAY answer byte-identical. The table reports, normalised per 1M
// vehicle-updates, the index-node touches (page hits + misses of a
// disk-backed tree whose pool holds the whole working set, so every
// touch is a node visit) and the WAL bytes appended (grouped batches log
// compact member rows with recomputable time/position elided).
//
// Shape checks (exit non-zero on failure):
//   - range / interval / nearest answers byte-identical on vs off;
//   - tracking-on formed convoys and skipped member tree work;
//   - materially fewer index-node touches per update with tracking on;
//   - fewer WAL bytes per update with tracking on.
//
// `--smoke` runs a tiny fleet for CI; `--no-speed-gate` keeps the
// relative shape checks but is accepted for symmetry with the other
// experiments (E21's checks are ratio-based, not wall-clock gates).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "db/mod_database.h"
#include "db/recovery.h"
#include "geo/route_network.h"
#include "sim/fleet.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/table.h"

namespace modb::bench {
namespace {

namespace fs = std::filesystem;

struct Scale {
  std::size_t num_convoys;
  std::size_t vehicles_per_convoy;
  std::size_t num_singletons;
  double duration;
  std::size_t grid;
  double grid_spacing;
};

Scale ScaleFor(bool smoke) {
  if (smoke) return {3, 6, 8, 120.0, 4, 40.0};
  return {16, 12, 80, 900.0, 8, 60.0};
}

struct RunOutcome {
  std::uint64_t updates = 0;
  std::uint64_t node_touches = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t forms = 0;
  std::uint64_t splits = 0;
  std::uint64_t member_skips = 0;
  std::uint64_t leader_upserts = 0;
  std::string answers;
};

/// Byte-exact rendering of range / interval / nearest answers over a probe
/// grid — the observable the group layer must not perturb.
std::string AnswerSignature(const db::ModDatabase& database, double extent,
                            double duration) {
  std::string out;
  auto render = [&out](const std::vector<core::ObjectId>& ids) {
    for (core::ObjectId id : ids) {
      out += std::to_string(id);
      out += ',';
    }
    out += ';';
  };
  const double span = extent / 3.0;
  for (int gx = 0; gx < 3; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      const double x0 = gx * span;
      const double y0 = gy * span;
      const geo::Polygon region =
          geo::Polygon::Rectangle(x0, y0, x0 + span, y0 + span);
      for (const double frac : {0.25, 0.6, 0.95}) {
        const core::Time t = duration * frac;
        const db::RangeAnswer range = database.QueryRange(region, t);
        render(range.must);
        render(range.may);
        const db::IntervalRangeAnswer interval =
            database.QueryRangeInterval(region, t, t + duration * 0.1);
        render(interval.may);
        render(interval.must_at_some_time);
        const db::NearestAnswer nearest = database.QueryNearest(
            {x0 + span * 0.5, y0 + span * 0.5}, 5, t);
        for (const auto& item : nearest.items) {
          out += std::to_string(item.id);
          out += ',';
        }
        out += ';';
      }
    }
  }
  return out;
}

bool RunFleet(bool tracking, bool smoke, const fs::path& dir,
              RunOutcome* out) {
  const Scale scale = ScaleFor(smoke);
  geo::RouteNetwork network;
  network.AddGridNetwork(scale.grid, scale.grid, scale.grid_spacing);

  db::ModDatabaseOptions options;
  // Whole-working-set pool: every page access is a node visit, never an
  // artefact of eviction pressure.
  options.index_storage.kind = storage::StorageKind::kDisk;
  options.index_storage.path = (dir / "index.pages").string();
  options.index_storage.pool_pages = 1u << 20;
  options.group_tracking.enabled = tracking;
  db::ModDatabase database(&network, options);

  util::MetricsRegistry registry;
  database.SetMetrics(&registry, "db.");

  db::DurabilityOptions durability_options;
  auto durability =
      db::DurabilityManager::Open(&database, (dir / "wal").string(),
                                  durability_options);
  if (!durability.ok()) {
    std::fprintf(stderr, "durability open failed: %s\n",
                 durability.status().message().c_str());
    return false;
  }

  sim::FleetOptions fleet_options;
  fleet_options.tick = 1.0;
  fleet_options.verify_bounds = false;  // measured elsewhere (E5/E15)
  fleet_options.update_batch_size = 256;
  sim::FleetSimulator fleet(&database, fleet_options);

  sim::ConvoyScenarioOptions convoy;
  convoy.num_convoys = scale.num_convoys;
  convoy.vehicles_per_convoy = scale.vehicles_per_convoy;
  convoy.num_singletons = scale.num_singletons;
  convoy.spacing = 0.5;
  convoy.curve.duration = scale.duration;
  util::Rng rng(2026);  // identical fleet in both runs
  (void)sim::BuildConvoyFleet(fleet, network, convoy, rng);
  if (!fleet.RegisterAll().ok()) return false;

  // Reset the ingest-side instrumentation so the table measures the update
  // stream, not the initial bulk registration.
  const auto baseline_touches =
      registry.GetCounter("db.index.pages.hits")->value() +
      registry.GetCounter("db.index.pages.misses")->value();
  const auto baseline_wal = (*durability)->wal()->bytes();

  if (!fleet.Run().ok()) return false;

  out->updates = fleet.stats().messages_delivered();
  out->node_touches = registry.GetCounter("db.index.pages.hits")->value() +
                      registry.GetCounter("db.index.pages.misses")->value() -
                      baseline_touches;
  out->wal_bytes = (*durability)->wal()->bytes() - baseline_wal;
  out->forms = registry.GetCounter("db.group.forms")->value();
  out->splits = registry.GetCounter("db.group.splits")->value();
  out->member_skips = registry.GetCounter("db.group.member_skips")->value();
  out->leader_upserts =
      registry.GetCounter("db.group.leader_upserts")->value();
  out->answers = AnswerSignature(database, scale.grid * scale.grid_spacing,
                                 scale.duration);
  return true;
}

int Run(bool smoke) {
  PrintHeader(
      "E21: group/convoy tracking",
      "convoys share one leader-driven envelope entry, so member updates "
      "skip the tree and log compact WAL rows — at byte-identical "
      "MUST/MAY range, interval and nearest answers");

  const auto dir = fs::temp_directory_path() /
                   (smoke ? "modb_e21_smoke" : "modb_e21_full");

  RunOutcome off, on;
  for (const bool tracking : {false, true}) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    if (!RunFleet(tracking, smoke, dir, tracking ? &on : &off)) {
      fs::remove_all(dir);
      return 1;
    }
  }
  fs::remove_all(dir);

  auto per_million = [](std::uint64_t value, std::uint64_t updates) {
    return updates == 0
               ? 0.0
               : static_cast<double>(value) * 1e6 /
                     static_cast<double>(updates);
  };
  util::Table table({"tracking", "updates", "node touches/1M", "WAL B/1M",
                     "convoys", "splits", "member skips", "leader upserts"});
  for (const auto* r : {&off, &on}) {
    table.NewRow()
        .Add(r == &on ? "on" : "off")
        .Add(static_cast<std::size_t>(r->updates))
        .Add(per_million(r->node_touches, r->updates), 0)
        .Add(per_million(r->wal_bytes, r->updates), 0)
        .Add(static_cast<std::size_t>(r->forms))
        .Add(static_cast<std::size_t>(r->splits))
        .Add(static_cast<std::size_t>(r->member_skips))
        .Add(static_cast<std::size_t>(r->leader_upserts));
  }
  std::printf("%s\n", table.ToString().c_str());

  bool pass = true;
  const bool identical =
      off.updates == on.updates && off.answers == on.answers;
  std::printf("shape check — %llu updates, answers byte-identical on vs "
              "off: %s\n",
              static_cast<unsigned long long>(on.updates),
              identical ? "PASS" : "FAIL");
  pass = pass && identical;

  const bool grouped = on.forms > 0 && on.member_skips > 0;
  std::printf("shape check — tracker formed convoys and skipped member "
              "tree work: %s\n",
              grouped ? "PASS" : "FAIL");
  pass = pass && grouped;

  const double touch_ratio =
      off.node_touches == 0
          ? 1.0
          : static_cast<double>(on.node_touches) /
                static_cast<double>(off.node_touches);
  const bool fewer_touches = touch_ratio <= 0.9;
  std::printf("shape check — index-node touches per update on/off <= 0.9: "
              "%s (ratio %.3f)\n",
              fewer_touches ? "PASS" : "FAIL", touch_ratio);
  pass = pass && fewer_touches;

  const double wal_ratio =
      off.wal_bytes == 0 ? 1.0
                         : static_cast<double>(on.wal_bytes) /
                               static_cast<double>(off.wal_bytes);
  const bool fewer_bytes = wal_ratio < 1.0;
  std::printf("shape check — WAL bytes per update on/off < 1.0: %s "
              "(ratio %.3f)\n\n",
              fewer_bytes ? "PASS" : "FAIL", wal_ratio);
  pass = pass && fewer_bytes;

  return pass ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    // --no-speed-gate accepted for CI symmetry; E21 has no wall-clock gate.
  }
  return modb::bench::Run(smoke);
}
