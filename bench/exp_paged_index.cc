// E19 — paged, disk-backed index storage under memory pressure: the same
// fleet and query workload run against (a) the historical all-in-memory
// R*-tree and (b) a disk-backed page file behind buffer pools sized to
// hold the whole tree (1x), a quarter of it (4x pressure), and a
// sixteenth (16x pressure). The index is a candidate filter, so storage
// placement may change cost but never answers: every configuration must
// return byte-identical MUST/MAY sets. The table reports the page-hit
// rate and eviction traffic at each pressure level — the cost curve the
// buffer pool buys in exchange for a bounded resident set.
//
// `--smoke` runs a tiny fleet for CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "db/mod_database.h"
#include "geo/route_network.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/table.h"

namespace modb::bench {
namespace {

using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

struct Workload {
  geo::RouteNetwork network;
  std::vector<core::PositionAttribute> attrs;
  std::vector<core::PositionUpdate> updates;
  std::vector<geo::Polygon> queries;
};

std::unique_ptr<Workload> MakeWorkload(std::size_t num_objects,
                                       std::size_t num_queries,
                                       std::uint64_t seed) {
  auto w = std::make_unique<Workload>();
  w->network.AddGridNetwork(20, 20, 30.0);
  util::Rng rng(seed);
  w->attrs.reserve(num_objects);
  for (std::size_t i = 0; i < num_objects; ++i) {
    core::PositionAttribute attr;
    attr.route = static_cast<geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(w->network.size()) - 1));
    const double len = w->network.route(attr.route).Length();
    attr.start_route_distance = rng.Uniform(0.0, len * 0.5);
    attr.start_position =
        w->network.route(attr.route).PointAt(attr.start_route_distance);
    attr.speed = rng.Uniform(0.5, 5.0);
    attr.update_cost = 5.0;
    attr.max_speed = 25.0;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    w->attrs.push_back(attr);
  }
  // One report per object at t=10 keeps the remove+reinsert path (and its
  // page traffic) in the measured window.
  w->updates.reserve(num_objects);
  for (std::size_t i = 0; i < num_objects; ++i) {
    const core::PositionAttribute& attr = w->attrs[i];
    core::PositionUpdate u;
    u.object = static_cast<core::ObjectId>(i);
    u.time = 10.0;
    u.route = attr.route;
    const double len = w->network.route(attr.route).Length();
    u.route_distance =
        std::min(len, attr.start_route_distance + attr.speed * 10.0);
    u.position = w->network.route(u.route).PointAt(u.route_distance);
    u.direction = core::TravelDirection::kForward;
    u.speed = rng.Uniform(0.5, 5.0);
    w->updates.push_back(u);
  }
  w->queries.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    w->queries.push_back(geo::Polygon::CenteredRectangle(
        {rng.Uniform(50.0, 520.0), rng.Uniform(50.0, 520.0)}, 40.0, 40.0));
  }
  return w;
}

std::unique_ptr<db::ModDatabase> BuildDatabase(
    const Workload& w, const db::ModDatabaseOptions& options) {
  auto database = std::make_unique<db::ModDatabase>(&w.network, options);
  std::vector<db::ModDatabase::BulkObject> fleet;
  fleet.reserve(w.attrs.size());
  for (std::size_t i = 0; i < w.attrs.size(); ++i) {
    db::ModDatabase::BulkObject o;
    o.id = static_cast<core::ObjectId>(i);
    o.attr = w.attrs[i];
    fleet.push_back(std::move(o));
  }
  if (!database->BulkInsert(std::move(fleet)).ok()) return nullptr;
  return database;
}

struct RunResult {
  double us_per_query = 0.0;
  bool identical = true;
};

/// Runs updates + the query sweep, checking every answer against the
/// in-memory reference database.
RunResult RunWorkload(db::ModDatabase& database,
                      const db::ModDatabase& reference, const Workload& w) {
  RunResult result;
  for (const auto& u : w.updates) (void)database.ApplyUpdate(u);
  const auto start = Clock::now();
  for (const auto& region : w.queries) {
    const db::RangeAnswer got = database.QueryRange(region, 15.0);
    const db::RangeAnswer want = reference.QueryRange(region, 15.0);
    if (got.must != want.must || got.may != want.may ||
        got.may_probability != want.may_probability) {
      result.identical = false;
    }
  }
  const auto end = Clock::now();
  result.us_per_query =
      std::chrono::duration<double, std::micro>(end - start).count() /
      static_cast<double>(w.queries.size());
  return result;
}

int Run(bool smoke) {
  PrintHeader(
      "E19: paged index storage under memory pressure",
      "a disk-backed R*-tree behind a clock-eviction buffer pool returns "
      "byte-identical range answers at 1x, 4x and 16x memory pressure; "
      "only the page-hit rate degrades");

  const std::size_t kObjects = smoke ? 400 : 8000;
  const std::size_t kQueries = smoke ? 16 : 64;
  const auto dir =
      fs::temp_directory_path() / ("modb_exp_paged_" + std::to_string(
                                       static_cast<unsigned>(kObjects)));
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto w = MakeWorkload(kObjects, kQueries, 1998);
  db::ModDatabaseOptions memory_options;  // the in-memory reference
  auto reference = BuildDatabase(*w, memory_options);
  if (reference == nullptr) return 1;
  for (const auto& u : w->updates) (void)reference->ApplyUpdate(u);

  // Pilot: an effectively unbounded pool learns the tree's page count, so
  // the pressure levels below are sized in units of the real working set.
  std::size_t total_pages = 0;
  {
    db::ModDatabaseOptions pilot = memory_options;
    pilot.index_storage.kind = storage::StorageKind::kDisk;
    pilot.index_storage.path = (dir / "pilot.pages").string();
    pilot.index_storage.pool_pages = 1u << 20;
    auto database = BuildDatabase(*w, pilot);
    if (database == nullptr) return 1;
    util::MetricsRegistry registry;
    database->SetMetrics(&registry, "db.");
    total_pages =
        static_cast<std::size_t>(registry.GetGauge("db.index.pages.frames")
                                     ->value());
  }
  std::printf("index working set: %zu pages of %zu objects\n\n", total_pages,
              kObjects);

  util::Table table({"config", "pool pages", "hit rate %", "evictions",
                     "writebacks", "resident pages", "us/query",
                     "identical"});
  bool all_identical = true;
  bool pressured_evictions = false;
  for (const std::size_t pressure : {std::size_t{1}, std::size_t{4},
                                     std::size_t{16}}) {
    const std::size_t pool =
        std::max<std::size_t>(4, total_pages / pressure);
    db::ModDatabaseOptions options = memory_options;
    options.index_storage.kind = storage::StorageKind::kDisk;
    options.index_storage.path =
        (dir / ("x" + std::to_string(pressure) + ".pages")).string();
    options.index_storage.pool_pages = pool;
    auto database = BuildDatabase(*w, options);
    if (database == nullptr) return 1;
    util::MetricsRegistry registry;
    database->SetMetrics(&registry, "db.");

    const RunResult result = RunWorkload(*database, *reference, *w);
    const auto hits = registry.GetCounter("db.index.pages.hits")->value();
    const auto misses = registry.GetCounter("db.index.pages.misses")->value();
    const auto evictions =
        registry.GetCounter("db.index.pages.evictions")->value();
    const auto writebacks =
        registry.GetCounter("db.index.pages.writebacks")->value();
    const auto frames = registry.GetGauge("db.index.pages.frames")->value();
    const double hit_rate =
        hits + misses == 0
            ? 100.0
            : 100.0 * static_cast<double>(hits) /
                  static_cast<double>(hits + misses);
    table.NewRow()
        .Add("working set " + std::to_string(pressure) + "x pool")
        .Add(pool)
        .Add(hit_rate, 2)
        .Add(evictions)
        .Add(writebacks)
        .Add(static_cast<std::size_t>(frames))
        .Add(result.us_per_query, 1)
        .Add(result.identical ? "yes" : "NO");
    all_identical = all_identical && result.identical;
    if (pressure == 16 && evictions > 0) pressured_evictions = true;
    // The pool really bounded residency (a small overshoot is legal for
    // frames pinned mid-operation).
    if (static_cast<std::size_t>(frames) > pool + 8) all_identical = false;
  }
  std::printf("%s\n", table.ToString().c_str());

  const bool pass = all_identical && pressured_evictions;
  std::printf("shape check — answers byte-identical at every pressure "
              "level: %s; 16x pool saw real eviction traffic: %s -> %s\n\n",
              all_identical ? "yes" : "NO",
              pressured_evictions ? "yes" : "NO", pass ? "PASS" : "FAIL");
  fs::remove_all(dir);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return modb::bench::Run(smoke);
}
