// E6 — ablation of Proposition 1 and of the fitting method (DESIGN.md §5):
//  (a) sweeps the update threshold around k_opt on synthetic delayed-linear
//      deviations and verifies the analytic optimum minimises the simulated
//      cost per time unit;
//  (b) compares the simple fitting method against least-squares fitting on
//      the standard curve suite (total cost at C = 5).

#include <cmath>
#include <cstdio>

#include "bench/exp_common.h"
#include "core/thresholds.h"
#include "sim/simulator.h"

namespace modb::bench {
namespace {

// Simulated cost/time-unit of a fixed-threshold policy on an exact
// delayed-linear deviation process (declared speed v, real stop after b
// minutes). The process repeats: each update restarts the window.
double SimulatedCostPerTimeUnit(double k, double a, double b, double C) {
  // One cycle: deviation 0 for b, then grows at a until it hits k.
  const double cycle = b + k / a;
  const double area = 0.5 * k * (k / a);
  return (C + area) / cycle;
}

int RunThresholdSweep() {
  std::printf("--- (a) threshold sweep around k_opt ---\n");
  bool pass = true;
  util::Table table({"a", "b", "C", "k_opt", "cost(k_opt)", "cost(k/2)",
                     "cost(2k)", "analytic==simulated"});
  for (double a : {0.5, 1.0, 2.0}) {
    for (double b : {0.0, 2.0, 6.0}) {
      for (double C : {1.0, 5.0, 20.0}) {
        const double k_opt = core::OptimalThresholdDelayedLinear(a, b, C);
        const double best = SimulatedCostPerTimeUnit(k_opt, a, b, C);
        const double half = SimulatedCostPerTimeUnit(0.5 * k_opt, a, b, C);
        const double twice = SimulatedCostPerTimeUnit(2.0 * k_opt, a, b, C);
        const double analytic =
            core::CostPerTimeUnitDelayedLinear(k_opt, a, b, C);
        const bool ok = best <= half + 1e-12 && best <= twice + 1e-12 &&
                        std::fabs(analytic - best) < 1e-12;
        // Dense sweep.
        bool dense_ok = true;
        for (int i = 1; i <= 100; ++i) {
          const double k = k_opt * 3.0 * i / 100.0;
          if (SimulatedCostPerTimeUnit(k, a, b, C) < best - 1e-12) {
            dense_ok = false;
          }
        }
        pass &= ok && dense_ok;
        table.NewRow()
            .Add(a, 1)
            .Add(b, 1)
            .Add(C, 1)
            .Add(k_opt, 3)
            .Add(best, 4)
            .Add(half, 4)
            .Add(twice, 4)
            .Add(std::string(ok && dense_ok ? "yes" : "NO"));
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape check — k_opt minimises cost/time-unit on every grid "
              "point: %s\n\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

int RunFittingAblation() {
  std::printf("--- (b) fitting-method ablation (C = 5) ---\n");
  const auto suite = StandardSuite();
  util::Table table({"policy", "fitting", "messages", "total cost",
                     "avg uncertainty"});
  for (core::PolicyKind kind : {core::PolicyKind::kDelayedLinear,
                                core::PolicyKind::kAverageImmediateLinear}) {
    for (core::FittingMethod fitting :
         {core::FittingMethod::kSimple, core::FittingMethod::kLeastSquares}) {
      core::PolicyConfig policy;
      policy.kind = kind;
      policy.update_cost = 5.0;
      policy.max_speed = 1.5;
      policy.fitting = fitting;
      std::vector<sim::RunMetrics> runs;
      sim::SimulationOptions sim_options;
      // Least-squares has no bound guarantee (the simple-fit propositions
      // do not apply verbatim); skip the bound check for it.
      sim_options.check_bounds = fitting == core::FittingMethod::kSimple;
      runs.reserve(suite.size());
      for (const auto& named : suite) {
        runs.push_back(
            sim::SimulatePolicyOnCurve(named.curve, policy, sim_options));
      }
      const sim::MeanMetrics mean = sim::Aggregate(runs);
      table.NewRow()
          .Add(std::string(core::PolicyKindName(kind)))
          .Add(std::string(core::FittingMethodName(fitting)))
          .Add(mean.messages, 2)
          .Add(mean.total_cost, 2)
          .Add(mean.avg_uncertainty, 3);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(informational: the paper uses simple fitting; least-squares "
              "is the DESIGN.md §5 ablation)\n");
  return 0;
}

int Run() {
  PrintHeader("E6: Proposition 1 optimality + fitting-method ablation",
              "updating at k_opt = sqrt(a^2 b^2 + 2aC) - ab minimises the "
              "total cost per time unit");
  const int a = RunThresholdSweep();
  const int b = RunFittingAblation();
  return a + b;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
