// E1 — regenerates the paper's "number of position-update messages as a
// function of the message cost" plot (§3.4, plots omitted from the
// camera-ready for space). One row per update cost C, one column per
// policy; every value is the mean over the standard one-hour curve suite.

#include <cstdio>

#include "bench/exp_common.h"

namespace modb::bench {
namespace {

int Run() {
  PrintHeader("E1: position-update messages vs message cost C",
              "update frequency decreases as the update cost increases "
              "(Section 1); plots report #messages per policy vs C");

  const auto suite = StandardSuite();
  const sim::SweepConfig config = StandardSweepConfig(/*include_baselines=*/true);
  const auto cells = sim::RunSweep(suite, config);

  const util::Table table =
      sim::SweepTable(cells, sim::MetricKind::kMessages);
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(mean messages per 60-minute trip, %zu curves per cell)\n\n",
              suite.size());

  // Qualitative check: monotone non-increasing in C for the cost-based
  // policies.
  bool monotone = true;
  for (core::PolicyKind kind :
       {core::PolicyKind::kDelayedLinear,
        core::PolicyKind::kAverageImmediateLinear,
        core::PolicyKind::kCurrentImmediateLinear}) {
    double prev = 1e18;
    for (const auto& cell : cells) {
      if (cell.policy != kind) continue;
      if (cell.mean.messages > prev + 1e-9) monotone = false;
      prev = cell.mean.messages;
    }
  }
  std::printf("shape check — messages non-increasing in C: %s\n",
              monotone ? "PASS" : "FAIL");
  return monotone ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
