// E3 — regenerates the paper's "average uncertainty as a function of the
// message cost" plot (§3.4): the mean, over trip time, of the deviation
// bound the DBMS would attach to a position answer. The immediate policies'
// bound decreases after sqrt(2C/D) time units (proposition 4) while the
// delayed policy's plateaus (corollary 1), so ail/cil should show lower
// average uncertainty than dl across the cost axis.

#include <cstdio>

#include "bench/exp_common.h"

namespace modb::bench {
namespace {

int Run() {
  PrintHeader("E3: average uncertainty vs message cost C",
              "the il policies' error bound decreases as time-since-update "
              "grows (prop. 4), making ail superior in uncertainty");

  const auto suite = StandardSuite();
  const sim::SweepConfig config = StandardSweepConfig(/*include_baselines=*/true);
  const auto cells = sim::RunSweep(suite, config);

  const util::Table table =
      sim::SweepTable(cells, sim::MetricKind::kAvgUncertainty);
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(mean deviation bound over trip time, %zu curves per cell)\n\n",
              suite.size());

  // Shape check 1: ail uncertainty <= dl uncertainty at every C.
  // Shape check 2: uncertainty grows with C (fewer updates -> wider bound).
  bool ail_beats_dl = true;
  for (double C : StandardCostAxis()) {
    double dl = 0.0;
    double ail = 0.0;
    for (const auto& cell : cells) {
      if (cell.update_cost != C) continue;
      if (cell.policy == core::PolicyKind::kDelayedLinear) {
        dl = cell.mean.avg_uncertainty;
      } else if (cell.policy == core::PolicyKind::kAverageImmediateLinear) {
        ail = cell.mean.avg_uncertainty;
      }
    }
    if (ail > dl + 1e-9) ail_beats_dl = false;
  }
  bool grows_with_cost = true;
  double prev = -1.0;
  for (const auto& cell : cells) {
    if (cell.policy != core::PolicyKind::kAverageImmediateLinear) continue;
    if (cell.mean.avg_uncertainty < prev - 1e-9) grows_with_cost = false;
    prev = cell.mean.avg_uncertainty;
  }
  std::printf("shape check — ail bound <= dl bound at every C: %s\n",
              ail_beats_dl ? "PASS" : "FAIL");
  std::printf("shape check — ail uncertainty non-decreasing in C: %s\n",
              grows_with_cost ? "PASS" : "FAIL");
  return ail_beats_dl && grows_with_cost ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
