// E12 (extension; paper §6 future work "other update policies" and §3.1's
// observation that the best policy depends on the speed pattern) — the
// hybrid adaptive policy classifies each update-to-update window by its
// speed fluctuation (coefficient of variation) and runs dl on steady
// windows, ail on fluctuating ones. This ablation compares hybrid against
// its two ingredients per workload class and sweeps the switching
// threshold.

#include <cstdio>

#include "bench/exp_common.h"
#include "sim/simulator.h"

namespace modb::bench {
namespace {

sim::MeanMetrics RunOn(const std::vector<sim::NamedCurve>& curves,
                       const core::PolicyConfig& policy) {
  std::vector<sim::RunMetrics> runs;
  runs.reserve(curves.size());
  for (const auto& named : curves) {
    runs.push_back(
        sim::SimulatePolicyOnCurve(named.curve, policy, sim::SimulationOptions{}));
  }
  return sim::Aggregate(runs);
}

std::vector<sim::NamedCurve> KindSuite(const char* kind, int count) {
  util::Rng rng(4711);
  const sim::CurveGenOptions options = StandardCurveOptions();
  std::vector<sim::NamedCurve> out;
  for (int i = 0; i < count; ++i) {
    sim::SpeedCurve curve;
    if (std::string(kind) == "highway") {
      curve = sim::MakeHighwayCurve(rng, options);
    } else if (std::string(kind) == "city") {
      curve = sim::MakeCityCurve(rng, options);
    } else {
      curve = sim::MakeRushHourCurve(rng, options);
    }
    out.push_back({kind, std::move(curve)});
  }
  return out;
}

int Run() {
  PrintHeader("E12: hybrid adaptive policy ablation",
              "per-window adaptation should track the better of dl/ail on "
              "each workload class");

  bool pass = true;
  std::printf("--- (a) hybrid vs its ingredients per workload (C = 5) ---\n");
  util::Table table({"workload", "dl cost", "ail cost", "hybrid cost",
                     "hybrid within 15% of best"});
  for (const char* kind : {"highway", "city", "rush"}) {
    const auto suite = KindSuite(kind, 15);
    core::PolicyConfig base;
    base.update_cost = 5.0;
    base.max_speed = 1.5;
    base.kind = core::PolicyKind::kDelayedLinear;
    const double dl = RunOn(suite, base).total_cost;
    base.kind = core::PolicyKind::kAverageImmediateLinear;
    const double ail = RunOn(suite, base).total_cost;
    base.kind = core::PolicyKind::kHybridAdaptive;
    const double hybrid = RunOn(suite, base).total_cost;
    const bool ok = hybrid <= 1.15 * std::min(dl, ail);
    pass &= ok;
    table.NewRow()
        .Add(std::string(kind))
        .Add(dl, 2)
        .Add(ail, 2)
        .Add(hybrid, 2)
        .Add(std::string(ok ? "yes" : "NO"));
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("--- (b) switching-threshold sweep (rush-hour mix, C = 5) ---\n");
  util::Table sweep({"cv switch", "messages", "total cost",
                     "avg uncertainty"});
  const auto rush = KindSuite("rush", 15);
  for (double cv : {0.0, 0.15, 0.3, 0.6, 1.0, 1e9}) {
    core::PolicyConfig policy;
    policy.kind = core::PolicyKind::kHybridAdaptive;
    policy.update_cost = 5.0;
    policy.max_speed = 1.5;
    policy.hybrid_cv_switch = cv;
    const sim::MeanMetrics mean = RunOn(rush, policy);
    sweep.NewRow()
        .Add(cv >= 1e9 ? std::string("inf (pure dl)")
                       : std::to_string(cv).substr(0, 4))
        .Add(mean.messages, 2)
        .Add(mean.total_cost, 2)
        .Add(mean.avg_uncertainty, 3);
  }
  std::printf("%s\n", sweep.ToString().c_str());
  std::printf("(cv = 0 behaves as pure ail decisions, cv = inf as pure dl; "
              "the default 0.3 sits between)\n\n");

  std::printf("shape check — hybrid within 15%% of the better ingredient on "
              "every workload: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
