// E7 — the §4 indexing experiment: range queries ("retrieve the objects
// inside polygon G at time t0") answered through the 3-D time-space R*-tree
// versus the linear-scan baseline, over growing database sizes, plus the
// slab-width ablation (DESIGN.md §5). The paper's claim is sublinear query
// processing: the R*-tree's cost per query grows far slower than the scan's.

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/exp_common.h"
#include "core/update_policy.h"
#include "db/mod_database.h"
#include "geo/route_network.h"
#include "index/timespace_index.h"
#include "util/rng.h"

namespace modb::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Workload {
  geo::RouteNetwork network;
  std::vector<core::PositionAttribute> attrs;
  std::vector<geo::Polygon> queries;
};

std::unique_ptr<Workload> MakeWorkload(std::size_t num_objects,
                                       std::size_t num_queries,
                                       std::uint64_t seed) {
  auto w = std::make_unique<Workload>();
  // 20x20 street grid spanning 570 x 570.
  w->network.AddGridNetwork(20, 20, 30.0);
  util::Rng rng(seed);
  w->attrs.reserve(num_objects);
  for (std::size_t i = 0; i < num_objects; ++i) {
    core::PositionAttribute attr;
    attr.route = static_cast<geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(w->network.size()) - 1));
    const double len = w->network.route(attr.route).Length();
    attr.start_route_distance = rng.Uniform(0.0, len * 0.5);
    attr.start_position =
        w->network.route(attr.route).PointAt(attr.start_route_distance);
    attr.speed = rng.Uniform(0.3, 1.2);
    attr.update_cost = 5.0;
    attr.max_speed = 1.5;
    attr.policy = core::PolicyKind::kAverageImmediateLinear;
    w->attrs.push_back(attr);
  }
  w->queries.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    w->queries.push_back(geo::Polygon::CenteredRectangle(
        {rng.Uniform(50.0, 520.0), rng.Uniform(50.0, 520.0)}, 20.0, 20.0));
  }
  return w;
}

// Returns (mean microseconds per query, total MUST+MAY results).
std::pair<double, std::size_t> TimeQueries(const db::ModDatabase& db,
                                           const Workload& w,
                                           core::Time t) {
  const auto start = Clock::now();
  std::size_t results = 0;
  for (const auto& region : w.queries) {
    const db::RangeAnswer answer = db.QueryRange(region, t);
    results += answer.must.size() + answer.may.size();
  }
  const auto end = Clock::now();
  const double total_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  return {total_us / static_cast<double>(w.queries.size()), results};
}

int RunScaling() {
  std::printf("--- (a) query cost vs database size ---\n");
  util::Table table({"N objects", "rtree us/query", "scan us/query",
                     "speedup", "rtree candidates/query",
                     "% of DB examined", "results agree"});
  bool agree_all = true;
  double first_speedup = 0.0;
  double last_speedup = 0.0;
  double last_fraction = 1.0;
  const std::size_t kQueries = 64;
  for (std::size_t n : {1000u, 4000u, 16000u, 64000u}) {
    const auto w = MakeWorkload(n, kQueries, 42);
    db::ModDatabaseOptions rtree_opts;
    rtree_opts.index_kind = db::IndexKind::kTimeSpaceRTree;
    rtree_opts.oplane_horizon = 60.0;
    rtree_opts.oplane_slab_width = 4.0;
    db::ModDatabaseOptions scan_opts;
    scan_opts.index_kind = db::IndexKind::kLinearScan;
    db::ModDatabase rtree_db(&w->network, rtree_opts);
    db::ModDatabase scan_db(&w->network, scan_opts);
    for (std::size_t i = 0; i < w->attrs.size(); ++i) {
      rtree_db.Insert(i, "", w->attrs[i]).ok();
      scan_db.Insert(i, "", w->attrs[i]).ok();
    }
    const core::Time t = 20.0;
    const auto [rtree_us, rtree_results] = TimeQueries(rtree_db, *w, t);
    const auto [scan_us, scan_results] = TimeQueries(scan_db, *w, t);
    const bool agree = rtree_results == scan_results;
    agree_all &= agree;
    double candidates = 0.0;
    for (const auto& region : w->queries) {
      candidates += static_cast<double>(
          rtree_db.QueryRange(region, t).candidates_examined);
    }
    candidates /= static_cast<double>(w->queries.size());
    const double fraction = candidates / static_cast<double>(n);
    table.NewRow()
        .Add(n)
        .Add(rtree_us, 1)
        .Add(scan_us, 1)
        .Add(scan_us / rtree_us, 1)
        .Add(candidates, 1)
        .Add(100.0 * fraction, 2)
        .Add(std::string(agree ? "yes" : "NO"));
    if (n == 1000u) first_speedup = scan_us / rtree_us;
    last_speedup = scan_us / rtree_us;
    last_fraction = fraction;
  }
  std::printf("%s\n", table.ToString().c_str());
  // Sublinearity shape check. The query output itself scales with N (the
  // query polygon has constant selectivity), so the meaningful claims are:
  // the index refines only a tiny fraction of the database per query (vs
  // the scan's 100%) and stays several times faster at the largest size.
  // (The speedup trend across sizes is reported informationally; exact
  // wall-clock ratios between runs are noisy.)
  const bool pass =
      agree_all && last_fraction < 0.02 && last_speedup >= 5.0;
  std::printf("shape check — examines %.2f%% of a 64k-object DB per query "
              "(scan: 100%%), speedup %.1fx -> %.1fx over a 64x database, "
              "answers agree: %s\n\n",
              100.0 * last_fraction, first_speedup, last_speedup,
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

int RunSlabAblation() {
  std::printf("--- (b) slab-width ablation (N = 16000) ---\n");
  const auto w = MakeWorkload(16000, 64, 7);
  util::Table table({"slab width", "index entries", "us/query",
                     "candidates/query"});
  for (double slab : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    db::ModDatabaseOptions opts;
    opts.index_kind = db::IndexKind::kTimeSpaceRTree;
    opts.oplane_horizon = 60.0;
    opts.oplane_slab_width = slab;
    db::ModDatabase db(&w->network, opts);
    for (std::size_t i = 0; i < w->attrs.size(); ++i) {
      db.Insert(i, "", w->attrs[i]).ok();
    }
    const core::Time t = 20.0;
    const auto [us, results] = TimeQueries(db, *w, t);
    (void)results;
    double candidates = 0.0;
    for (const auto& region : w->queries) {
      candidates += static_cast<double>(
          db.QueryRange(region, t).candidates_examined);
    }
    candidates /= static_cast<double>(w->queries.size());
    table.NewRow()
        .Add(slab, 1)
        .Add(db.object_index().num_entries())
        .Add(us, 1)
        .Add(candidates, 1);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(narrower slabs: bigger index, fewer false candidates — the "
              "space/selectivity trade-off of DESIGN.md section 5)\n");
  return 0;
}

int Run() {
  PrintHeader("E7: sublinear range-query processing via time-space indexing",
              "queries on position attributes are answered in sublinear "
              "time using a 3-D spatial index with MUST/MAY semantics");
  const int a = RunScaling();
  const int b = RunSlabAblation();
  return a + b;
}

}  // namespace
}  // namespace modb::bench

int main() { return modb::bench::Run(); }
