#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite, then
# (optionally) the sanitizer gates. Usage:
#
#   scripts/check.sh            # default build + full ctest
#   scripts/check.sh --asan     # + AddressSanitizer whole-tree build & tests
#   scripts/check.sh --tsan     # + ThreadSanitizer concurrency/durability gate
#   scripts/check.sh --all      # everything
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=0
run_tsan=0
for arg in "$@"; do
  case "$arg" in
    --asan) run_asan=1 ;;
    --tsan) run_tsan=1 ;;
    --all) run_asan=1; run_tsan=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier 1: default build + full test suite =="
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

# Experiment smoke checks — one "<label>|<binary>" entry per bench; keep
# the list in sync with the jobs in .github/workflows/ci.yml.
smoke_benches=(
  "E16 staged batch ingest|exp_update_throughput"
  "E17 continuous-query matching|exp_continuous_query"
  "E18 shard failure domains|exp_fault_tolerance"
  "E19 paged index storage|exp_paged_index"
  "E20 lock-free index reads|exp_lockfree_reads"
  "E21 group/convoy tracking|exp_group_tracking"
)
for entry in "${smoke_benches[@]}"; do
  label="${entry%%|*}"
  bench="${entry##*|}"
  echo "== ${label} smoke: shape check (${bench}) =="
  "build/bench/${bench}" --smoke
done

if [[ "$run_asan" == 1 ]]; then
  echo "== AddressSanitizer gate =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan -j "$jobs"
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== ThreadSanitizer gate (concurrency + durability suites) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --preset tsan -j "$jobs"
fi

echo "check.sh: all requested suites passed"
