#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite, then
# (optionally) the sanitizer gates. Usage:
#
#   scripts/check.sh            # default build + full ctest
#   scripts/check.sh --asan     # + AddressSanitizer whole-tree build & tests
#   scripts/check.sh --tsan     # + ThreadSanitizer concurrency/durability gate
#   scripts/check.sh --all      # everything
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=0
run_tsan=0
for arg in "$@"; do
  case "$arg" in
    --asan) run_asan=1 ;;
    --tsan) run_tsan=1 ;;
    --all) run_asan=1; run_tsan=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier 1: default build + full test suite =="
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

echo "== E16 smoke: staged batch ingest shape check =="
build/bench/exp_update_throughput --smoke

echo "== E17 smoke: continuous-query matching shape check =="
build/bench/exp_continuous_query --smoke

echo "== E18 smoke: shard failure-domain shape check =="
build/bench/exp_fault_tolerance --smoke

echo "== E19 smoke: paged index storage shape check =="
build/bench/exp_paged_index --smoke

echo "== E20 smoke: lock-free index reads shape check =="
build/bench/exp_lockfree_reads --smoke

if [[ "$run_asan" == 1 ]]; then
  echo "== AddressSanitizer gate =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan -j "$jobs"
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== ThreadSanitizer gate (concurrency + durability suites) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --preset tsan -j "$jobs"
fi

echo "check.sh: all requested suites passed"
