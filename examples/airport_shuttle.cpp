// Airport shuttle — multi-route journeys, lossy wireless, and persistence
// in one scenario. Shuttles run a fixed multi-leg itinerary (terminal loop
// -> highway -> downtown boulevard); every leg change forces a position
// update (paper §2: cross-route distance is infinite). The wireless uplink
// drops 20% of messages; the onboard computers retransmit, and the
// database's uncertainty bounds stay sound. At the end of the shift the
// database state is snapshotted to disk and reloaded.
//
// Run: ./build/examples/airport_shuttle

#include <cstdio>
#include <string>

#include "db/mod_database.h"
#include "db/snapshot.h"
#include "sim/fleet.h"
#include "sim/itinerary.h"
#include "sim/speed_curve.h"
#include "util/rng.h"

int main() {
  modb::util::Rng rng(747);

  // The road network: airport loop, connector highway, downtown boulevard.
  modb::geo::RouteNetwork roads;
  const auto loop =
      roads.AddLoopRoute(0.0, 0.0, 4.0, 3.0, /*laps=*/6, "terminal-loop");
  const auto highway =
      roads.AddStraightRoute({4.0, 3.0}, {24.0, 18.0}, "connector");
  const auto boulevard =
      roads.AddStraightRoute({24.0, 18.0}, {24.0, 38.0}, "boulevard");

  modb::db::ModDatabase db(&roads);

  modb::sim::FleetOptions fleet_options;
  fleet_options.message_loss_probability = 0.2;  // flaky uplink
  fleet_options.seed = 7;
  modb::sim::FleetSimulator fleet(&db, fleet_options);

  // Each shuttle: half a terminal lap, the full connector, then downtown.
  modb::sim::CurveGenOptions curve_options;
  curve_options.duration = 60.0;
  curve_options.cruise_speed = 0.9;
  curve_options.max_speed = 1.3;

  modb::core::PolicyConfig policy;
  policy.kind = modb::core::PolicyKind::kAverageImmediateLinear;
  policy.update_cost = 5.0;
  policy.max_speed = curve_options.max_speed;

  constexpr std::size_t kShuttles = 8;
  for (modb::core::ObjectId id = 0; id < kShuttles; ++id) {
    const double loop_start =
        rng.Uniform(0.0, roads.route(loop).Length() * 0.3);
    modb::sim::Itinerary itinerary(
        {
            {&roads.route(loop), loop_start, loop_start + 7.0},
            {&roads.route(highway), 0.0, roads.route(highway).Length()},
            {&roads.route(boulevard), 0.0, 15.0},
        },
        0.0, modb::sim::MakeCityCurve(rng, curve_options));
    fleet.AddVehicle(modb::sim::ItineraryVehicle(
        id, std::move(itinerary), modb::core::MakePolicy(policy)));
  }
  if (!fleet.RegisterAll().ok()) return 1;
  if (!fleet.Run().ok()) return 1;

  const modb::sim::FleetStats& stats = fleet.stats();
  std::printf("shift complete: %llu update attempts, %llu lost in transit "
              "(retransmitted), %llu delivered\n",
              static_cast<unsigned long long>(stats.messages_attempted),
              static_cast<unsigned long long>(stats.messages_lost),
              static_cast<unsigned long long>(stats.messages_delivered()));
  std::printf("bound violations beyond tolerance despite 20%% loss: %llu "
              "(max excess %.3f)\n",
              static_cast<unsigned long long>(stats.bound_violations),
              stats.max_bound_excess);

  // Where did everyone end up?
  for (modb::core::ObjectId id = 0; id < kShuttles; ++id) {
    const auto pos = db.QueryPosition(id, 60.0);
    if (!pos.ok()) return 1;
    std::printf("  shuttle %llu: route %u ('%s'), %s +/- %.2f\n",
                static_cast<unsigned long long>(id), pos->route,
                roads.route(pos->route).name().c_str(),
                pos->position.ToString().c_str(), pos->deviation_bound);
  }

  // Persist the end-of-shift state and prove the snapshot round-trips.
  const std::string path = "/tmp/airport_shuttle.modb";
  if (!modb::db::SaveSnapshot(db, path).ok()) return 1;
  const auto restored = modb::db::LoadSnapshot(path);
  if (!restored.ok()) return 1;
  std::printf("\nsnapshot round-trip: %zu routes, %zu shuttles restored "
              "from %s\n",
              restored->network->size(), restored->database->num_objects(),
              path.c_str());
  const auto before = db.QueryPosition(0, 60.0);
  const auto after = restored->database->QueryPosition(0, 60.0);
  if (before.ok() && after.ok()) {
    std::printf("shuttle 0 answers identically after reload: %s\n",
                before->route_distance == after->route_distance ? "yes"
                                                                : "NO");
  }
  return 0;
}
