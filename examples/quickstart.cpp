// Quickstart: the smallest end-to-end use of the modb public API.
//
//  1. Build a route network (the DBMS's route database, paper §2).
//  2. Register a moving object with a position attribute: the database
//     models its motion instead of storing a raw coordinate.
//  3. Ask "where is it now?" — answered by extrapolation, with the
//     deviation bound of §3.3 attached.
//  4. Deliver a position update (what the onboard update policy would
//     send) and query again.
//  5. Run a range query with MUST / MAY semantics (§4).
//  6. Ingest a window of updates in one batched call — the staged write
//     path validates, logs, applies and re-indexes the whole window at
//     once, with per-record statuses.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "db/mod_database.h"
#include "geo/route_network.h"

using modb::core::PolicyKind;
using modb::core::PositionAttribute;
using modb::core::PositionUpdate;
using modb::core::TravelDirection;

int main() {
  // 1. A route database with one 100-mile highway.
  modb::geo::RouteNetwork network;
  const modb::geo::RouteId highway =
      network.AddStraightRoute({0.0, 0.0}, {100.0, 0.0}, "I-90");

  modb::db::ModDatabase db(&network);

  // 2. Truck 7 starts at mile 10, heading east at 1 mile/minute, using the
  //    average immediate-linear (ail) update policy with message cost C=5.
  PositionAttribute attr;
  attr.start_time = 0.0;
  attr.route = highway;
  attr.start_route_distance = 10.0;
  attr.start_position = {10.0, 0.0};
  attr.direction = TravelDirection::kForward;
  attr.speed = 1.0;
  attr.policy = PolicyKind::kAverageImmediateLinear;
  attr.update_cost = 5.0;
  attr.max_speed = 1.5;
  if (!db.Insert(7, "truck-7", attr).ok()) return 1;

  // 3. Where is truck 7 at minute 6? No message was ever sent; the DBMS
  //    extrapolates along the route and bounds the error.
  auto answer = db.QueryPosition(7, 6.0);
  if (!answer.ok()) return 1;
  std::printf("t=6:  db position mile %.1f at %s, actual position is within "
              "[-%.2f, +%.2f] miles of it\n",
              answer->route_distance, answer->position.ToString().c_str(),
              answer->slow_bound, answer->fast_bound);

  // 4. The truck hit traffic; its onboard policy decided to report. The
  //    update carries the new anchor point and predicted speed.
  PositionUpdate update;
  update.object = 7;
  update.time = 8.0;
  update.route = highway;
  update.route_distance = 16.5;  // actual position: fell behind
  update.position = {16.5, 0.0};
  update.direction = TravelDirection::kForward;
  update.speed = 0.6;  // average speed since the last report
  if (!db.ApplyUpdate(update).ok()) return 1;

  answer = db.QueryPosition(7, 10.0);
  if (!answer.ok()) return 1;
  std::printf("t=10: db position mile %.1f (re-anchored at t=8), bound "
              "%.2f miles\n",
              answer->route_distance, answer->deviation_bound);

  // 5. Which objects are inside miles [15, 20] of the highway right now?
  const modb::geo::Polygon region =
      modb::geo::Polygon::Rectangle(15.0, -1.0, 20.0, 1.0);
  const modb::db::RangeAnswer range = db.QueryRange(region, 10.0);
  std::printf("t=10: range query -> %zu object(s) MUST be in the region, "
              "%zu MAY be\n",
              range.must.size(), range.may.size());
  std::printf("      (update messages received so far: %llu)\n",
              static_cast<unsigned long long>(db.log().total_updates()));

  // 6. A base station hands over a whole window of reports at once.
  //    ApplyUpdateBatch runs the same staged write path as ApplyUpdate —
  //    validate, log, mutate, index — but pays the per-call costs once for
  //    the window and reports a status per record (a bad record never
  //    blocks the rest of the batch).
  std::vector<PositionUpdate> window;
  for (int i = 0; i < 3; ++i) {
    PositionUpdate u = update;
    u.time = 12.0 + static_cast<double>(i);
    u.route_distance = 17.0 + 0.5 * static_cast<double>(i);
    u.position = {u.route_distance, 0.0};
    window.push_back(u);
  }
  window.push_back(update);
  window.back().object = 99;  // never registered: rejected, others land
  const modb::db::UpdateBatchResult batch = db.ApplyUpdateBatch(window);
  std::printf("batch: %zu of %zu update(s) applied, %zu rejected (\"%s\")\n",
              batch.applied, batch.statuses.size(), batch.rejected,
              batch.first_error().message().c_str());
  return 0;
}
