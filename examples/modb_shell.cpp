// modb_shell — a scriptable command-line front end for the moving-objects
// database. Reads commands from stdin (or a script passed as argv[1]) and
// prints answers; every query form of the library is reachable, so the
// shell doubles as an interactive demo and a manual-testing tool.
//
//   $ ./build/examples/modb_shell <<'EOF'
//   grid 4 4 10
//   insert 1 cab-1 0 5 1.0 ail 5 1.5
//   pos 1 3
//   range 0 -1 20 1 3
//   quit
//   EOF
//
// Type `help` for the full command list.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "db/mod_database.h"
#include "db/query_language.h"
#include "db/subscription_engine.h"
#include "db/snapshot.h"
#include "db/statistics.h"
#include "geo/route_network.h"

namespace {

using modb::core::PolicyKind;

std::optional<PolicyKind> ParsePolicy(const std::string& name) {
  if (name == "dl") return PolicyKind::kDelayedLinear;
  if (name == "ail") return PolicyKind::kAverageImmediateLinear;
  if (name == "cil") return PolicyKind::kCurrentImmediateLinear;
  if (name == "fixed") return PolicyKind::kFixedThreshold;
  if (name == "periodic") return PolicyKind::kPeriodic;
  if (name == "hybrid") return PolicyKind::kHybridAdaptive;
  if (name == "step") return PolicyKind::kStepThreshold;
  return std::nullopt;
}

constexpr const char* kHelp = R"(commands:
  grid <rows> <cols> <spacing>          build a street-grid network
  route <x1> <y1> <x2> <y2> [name]      add a straight route
  routes                                list routes
  insert <id> <label> <route> <s> <v> <policy> <C> <V>
                                        register a moving object
                                        (policy: dl ail cil fixed periodic
                                         hybrid step)
  update <id> <t> <route> <s> <v>       apply a position update
  erase <id>                            remove an object
  pos <id> <t>                          position query with error bound
  range <x0> <y0> <x1> <y1> <t>         range query (MUST / MAY)
  window <x0> <y0> <x1> <y1> <t1> <t2>  time-window range query
  nearest <x> <y> <k> <t>               k-nearest-neighbour query
  stats                                 database statistics
  SELECT / POSITION / NEAREST ...       textual query language, e.g.
                                        SELECT ALL INSIDE RECT(0,0,9,9) AT 5
                                        POSITION OF 7 AT 6
                                        NEAREST 3 TO POINT(1,2) AT 4
  SUBSCRIBE / UNSUBSCRIBE / EVENTS      standing queries on the update
                                        stream, e.g.
                                        SUBSCRIBE 1 TO MUST INSIDE
                                          RECT(0,-1,20,1) DURING 0 TO 30
                                        EVENTS   (drains transition events)
                                        UNSUBSCRIBE 1
  save <path>                           write a snapshot
  load <path>                           replace state from a snapshot
  help                                  this text
  quit                                  exit
)";

class Shell {
 public:
  Shell() { Reset(); }

  int RunStream(std::istream& in, bool interactive) {
    std::string line;
    if (interactive) std::printf("modb> ");
    while (std::getline(in, line)) {
      if (!Dispatch(line)) return 0;
      if (interactive) std::printf("modb> ");
    }
    return 0;
  }

 private:
  void Reset() {
    network_ = std::make_unique<modb::geo::RouteNetwork>();
    db_ = std::make_unique<modb::db::ModDatabase>(network_.get());
    AttachSubscriptions();
  }

  // Standing queries don't survive a reset or a snapshot load: the engine
  // tracks per-object state against the live store, so a replaced store
  // gets a fresh (empty) engine.
  void AttachSubscriptions() {
    subscriptions_ =
        std::make_unique<modb::db::SubscriptionEngine>(network_.get());
    db_->AttachSubscriptions(subscriptions_.get());
  }

  // Returns false to quit.
  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') return true;

    if (cmd == "quit" || cmd == "exit") return false;
    // Textual query language pass-through. Keywords must be uppercase so
    // the lowercase `nearest` built-in stays reachable.
    if (cmd == "SELECT" || cmd == "POSITION" || cmd == "NEAREST" ||
        cmd == "SUBSCRIBE" || cmd == "UNSUBSCRIBE" || cmd == "EVENTS") {
      const auto result = modb::db::ExecuteQuery(*db_, line);
      std::printf("%s\n", result.ok() ? result->c_str()
                                      : result.status().ToString().c_str());
      return true;
    }
    if (cmd == "help") {
      std::printf("%s", kHelp);
    } else if (cmd == "grid") {
      std::size_t rows = 0;
      std::size_t cols = 0;
      double spacing = 0.0;
      if (!(in >> rows >> cols >> spacing)) return Usage("grid");
      const auto ids = network_->AddGridNetwork(rows, cols, spacing);
      std::printf("added %zu routes (grid %zux%zu, spacing %g)\n",
                  ids.size(), rows, cols, spacing);
    } else if (cmd == "route") {
      double x1, y1, x2, y2;
      if (!(in >> x1 >> y1 >> x2 >> y2)) return Usage("route");
      std::string name;
      in >> name;
      const auto id = network_->AddStraightRoute({x1, y1}, {x2, y2}, name);
      std::printf("route %u added (length %.3f)\n", id,
                  network_->route(id).Length());
    } else if (cmd == "routes") {
      for (const auto& route : network_->routes()) {
        std::printf("  route %u '%s' length %.3f\n", route.id(),
                    route.name().c_str(), route.Length());
      }
    } else if (cmd == "insert") {
      modb::core::ObjectId id;
      std::string label;
      modb::geo::RouteId route;
      double s, v, C, V;
      std::string policy_name;
      if (!(in >> id >> label >> route >> s >> v >> policy_name >> C >> V)) {
        return Usage("insert");
      }
      const auto policy = ParsePolicy(policy_name);
      if (!policy) {
        std::printf("error: unknown policy '%s'\n", policy_name.c_str());
        return true;
      }
      const auto found = network_->FindRoute(route);
      if (!found.ok()) {
        std::printf("error: %s\n", found.status().ToString().c_str());
        return true;
      }
      modb::core::PositionAttribute attr;
      attr.route = route;
      attr.start_route_distance = s;
      attr.start_position = (*found)->PointAt(s);
      attr.speed = v;
      attr.policy = *policy;
      attr.update_cost = C;
      attr.max_speed = V;
      Report(db_->Insert(id, label, attr));
    } else if (cmd == "update") {
      modb::core::PositionUpdate update;
      if (!(in >> update.object >> update.time >> update.route >>
            update.route_distance >> update.speed)) {
        return Usage("update");
      }
      const auto found = network_->FindRoute(update.route);
      if (found.ok()) {
        update.position = (*found)->PointAt(update.route_distance);
      }
      Report(db_->ApplyUpdate(update));
    } else if (cmd == "erase") {
      modb::core::ObjectId id;
      if (!(in >> id)) return Usage("erase");
      Report(db_->Erase(id));
    } else if (cmd == "pos") {
      modb::core::ObjectId id;
      double t;
      if (!(in >> id >> t)) return Usage("pos");
      const auto answer = db_->QueryPosition(id, t);
      if (!answer.ok()) {
        std::printf("error: %s\n", answer.status().ToString().c_str());
        return true;
      }
      std::printf("object %llu at t=%g: %s on route %u (mile %.3f), "
                  "bound %.3f, interval [%.3f, %.3f]\n",
                  static_cast<unsigned long long>(id), t,
                  answer->position.ToString().c_str(), answer->route,
                  answer->route_distance, answer->deviation_bound,
                  answer->uncertainty.lo, answer->uncertainty.hi);
    } else if (cmd == "range") {
      double x0, y0, x1, y1, t;
      if (!(in >> x0 >> y0 >> x1 >> y1 >> t)) return Usage("range");
      const auto answer =
          db_->QueryRange(modb::geo::Polygon::Rectangle(x0, y0, x1, y1), t);
      PrintIdList("MUST", answer.must);
      PrintIdList("MAY ", answer.may);
      std::printf("(%zu candidates examined)\n", answer.candidates_examined);
    } else if (cmd == "window") {
      double x0, y0, x1, y1, t1, t2;
      if (!(in >> x0 >> y0 >> x1 >> y1 >> t1 >> t2)) return Usage("window");
      const auto answer = db_->QueryRangeInterval(
          modb::geo::Polygon::Rectangle(x0, y0, x1, y1), t1, t2);
      PrintIdList("MAY within window    ", answer.may);
      PrintIdList("MUST at some instant ", answer.must_at_some_time);
    } else if (cmd == "nearest") {
      double x, y, t;
      std::size_t k;
      if (!(in >> x >> y >> k >> t)) return Usage("nearest");
      const auto answer = db_->QueryNearest({x, y}, k, t);
      for (const auto& item : answer.items) {
        std::printf("  object %llu: db-distance %.3f (possible %.3f .. "
                    "%.3f)\n",
                    static_cast<unsigned long long>(item.id),
                    item.db_distance, item.min_possible_distance,
                    item.max_possible_distance);
      }
      if (answer.items.empty()) std::printf("  (no objects)\n");
    } else if (cmd == "stats") {
      double t = 0.0;
      if (!(in >> t)) t = 0.0;
      std::printf("%s",
                  modb::db::StatisticsTable(
                      modb::db::ComputeStatistics(*db_, t))
                      .ToString()
                      .c_str());
    } else if (cmd == "save") {
      std::string path;
      if (!(in >> path)) return Usage("save");
      Report(modb::db::SaveSnapshot(*db_, path));
    } else if (cmd == "load") {
      std::string path;
      if (!(in >> path)) return Usage("load");
      auto loaded = modb::db::LoadSnapshot(path);
      if (!loaded.ok()) {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
        return true;
      }
      network_ = std::move(loaded->network);
      db_ = std::move(loaded->database);
      AttachSubscriptions();
      std::printf("ok: %zu routes, %zu objects\n", network_->size(),
                  db_->num_objects());
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

  bool Usage(const char* cmd) {
    std::printf("error: bad arguments for '%s' (try 'help')\n", cmd);
    return true;
  }

  void Report(const modb::util::Status& status) {
    std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
  }

  void PrintIdList(const char* label,
                   const std::vector<modb::core::ObjectId>& ids) {
    std::printf("%s:", label);
    for (const auto id : ids) {
      std::printf(" %llu", static_cast<unsigned long long>(id));
    }
    std::printf("\n");
  }

  std::unique_ptr<modb::geo::RouteNetwork> network_;
  std::unique_ptr<modb::db::ModDatabase> db_;
  std::unique_ptr<modb::db::SubscriptionEngine> subscriptions_;
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1) {
    std::ifstream script(argv[1]);
    if (!script) {
      std::fprintf(stderr, "cannot open script %s\n", argv[1]);
      return 1;
    }
    return shell.RunStream(script, /*interactive=*/false);
  }
  return shell.RunStream(std::cin, /*interactive=*/false);
}
