// Taxi dispatch — the paper's opening scenario: "retrieve the free cabs
// that are currently within 1 mile of 33 N. Michigan Ave., Chicago".
//
// A fleet of cabs drives a downtown street grid. Each cab's onboard
// computer runs the ail update policy (§3.2): it tracks its own deviation
// from what the database believes and only sends a position update when
// the cost-based threshold fires. The dispatcher polls the database with
// range queries around pickup requests; MUST cabs are guaranteed close,
// MAY cabs are possibly close.
//
// Run: ./build/examples/taxi_dispatch

#include <cstdio>
#include <string>
#include <vector>

#include "db/mod_database.h"
#include "sim/speed_curve.h"
#include "sim/trip.h"
#include "sim/vehicle.h"
#include "util/rng.h"

namespace {

constexpr double kMilePerMinute = 1.0;  // cruise speed: 60 mi/h
constexpr std::size_t kNumCabs = 40;
constexpr double kSimMinutes = 45.0;

}  // namespace

int main() {
  modb::util::Rng rng(33);

  // Downtown: cabs cruise rectangular loops through a 4 x 4 mile grid
  // (loop routes keep a cab circulating instead of parking at a street
  // end; 12 laps cover a full shift at cruise speed).
  modb::geo::RouteNetwork chicago;
  for (int i = 0; i < 10; ++i) {
    const double x0 = rng.Uniform(0.0, 1.5);
    const double y0 = rng.Uniform(0.0, 1.5);
    chicago.AddLoopRoute(x0, y0, x0 + rng.Uniform(1.5, 2.5),
                         y0 + rng.Uniform(1.5, 2.5), 12,
                         "loop-" + std::to_string(i));
  }

  modb::db::ModDatabase db(&chicago);

  // Spawn the fleet: city stop-and-go speed curves, random streets.
  modb::sim::CurveGenOptions curve_options;
  curve_options.duration = kSimMinutes;
  curve_options.cruise_speed = kMilePerMinute;
  curve_options.max_speed = 1.2;

  modb::core::PolicyConfig policy;
  policy.kind = modb::core::PolicyKind::kAverageImmediateLinear;
  policy.update_cost = 5.0;  // a wireless message costs 5 deviation units
  policy.max_speed = curve_options.max_speed;

  std::vector<modb::sim::Vehicle> cabs;
  cabs.reserve(kNumCabs);
  for (std::size_t i = 0; i < kNumCabs; ++i) {
    const auto route_id = static_cast<modb::geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(chicago.size()) - 1));
    const modb::geo::Route& route = chicago.route(route_id);
    const modb::sim::Trip trip(
        &route, rng.Uniform(0.0, route.Length() * 0.2),
        modb::core::TravelDirection::kForward, 0.0,
        modb::sim::MakeCityCurve(rng, curve_options));
    cabs.emplace_back(i, trip, modb::core::MakePolicy(policy));
    if (!db.Insert(i, "cab-" + std::to_string(i), cabs.back().InitialAttribute())
             .ok()) {
      return 1;
    }
  }

  // "33 N. Michigan Ave.": a street corner in the middle of the grid.
  const modb::geo::Point2 michigan_ave{1.5, 2.0};
  const modb::geo::Polygon one_mile_disc =
      modb::geo::Polygon::RegularNGon(michigan_ave, 1.0, 24);

  std::printf("dispatching from (%.1f, %.1f); 1-mile pickup radius\n\n",
              michigan_ave.x, michigan_ave.y);
  std::printf("%6s %10s %8s %8s %10s\n", "minute", "msgs-recvd", "MUST",
              "MAY", "candidates");

  std::vector<modb::core::PositionUpdate> window;
  for (double t = 1.0; t <= kSimMinutes; t += 1.0) {
    // Every cab's onboard computer decides whether to report; the base
    // station coalesces the minute's reports and hands the window to the
    // database as one staged batch (one validation pass, one WAL frame,
    // one grouped index delta) instead of a call per message.
    window.clear();
    for (auto& cab : cabs) {
      if (const auto update = cab.Tick(t)) window.push_back(*update);
    }
    if (!db.ApplyUpdateBatch(window).all_ok()) return 1;
    // A customer calls every 5 minutes.
    if (static_cast<int>(t) % 5 == 0) {
      const modb::db::RangeAnswer nearby = db.QueryRange(one_mile_disc, t);
      std::printf("%6.0f %10llu %8zu %8zu %10zu\n", t,
                  static_cast<unsigned long long>(db.log().total_updates()),
                  nearby.must.size(), nearby.may.size(),
                  nearby.candidates_examined);
      // Dispatch the first guaranteed-close cab, if any.
      if (!nearby.must.empty()) {
        const auto pos = db.QueryPosition(nearby.must.front(), t);
        if (pos.ok()) {
          std::printf("        -> dispatch cab %llu at %s "
                      "(uncertainty +/- %.2f mi)\n",
                      static_cast<unsigned long long>(nearby.must.front()),
                      pos->position.ToString().c_str(),
                      pos->deviation_bound);
        }
      }
    }
  }

  const double traditional = kNumCabs * kSimMinutes;  // one report/min/cab
  const double actual = static_cast<double>(db.log().total_updates());
  std::printf("\nwireless messages: %.0f (traditional per-minute reporting "
              "would use %.0f -> %.0f%% saved)\n",
              actual, traditional, 100.0 * (1.0 - actual / traditional));
  return 0;
}
