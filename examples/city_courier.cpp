// City courier — route planning meets moving-objects tracking. Couriers
// receive jobs (pickup -> drop-off anchors on a street grid), plan the
// shortest multi-route path with the routing graph, and drive it as a
// multi-leg itinerary; every turn onto a new street is a forced position
// update (paper §2). The dispatcher assigns each job to the courier whose
// *guaranteed* position (database position plus uncertainty) is nearest
// the pickup, using the textual query language for its console.
//
// Run: ./build/examples/city_courier

#include <cstdio>
#include <string>
#include <vector>

#include "db/mod_database.h"
#include "db/query_language.h"
#include "geo/routing.h"
#include "sim/itinerary.h"
#include "sim/speed_curve.h"
#include "sim/vehicle.h"
#include "util/rng.h"

namespace {

constexpr std::size_t kCouriers = 6;
constexpr double kShiftMinutes = 50.0;

}  // namespace

int main() {
  modb::util::Rng rng(606);

  // An 8x8 street grid, quarter-mile blocks.
  modb::geo::RouteNetwork city;
  city.AddGridNetwork(8, 8, 0.25 * 4.0);  // 1 unit = 1/4 mile * 4 = 1 block
  const modb::geo::RoutingGraph roads(&city);
  std::printf("city grid: %zu streets, %zu junctions, %zu road segments\n\n",
              city.size(), roads.num_junctions(), roads.num_edges());

  modb::db::ModDatabase db(&city);

  modb::core::PolicyConfig policy;
  policy.kind = modb::core::PolicyKind::kCurrentImmediateLinear;
  policy.update_cost = 4.0;
  policy.max_speed = 1.2;

  // Each courier plans one job: random pickup and drop-off anchors.
  auto random_anchor = [&]() {
    modb::geo::RouteAnchor anchor;
    anchor.route = static_cast<modb::geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(city.size()) - 1));
    anchor.distance = rng.Uniform(0.0, city.route(anchor.route).Length());
    return anchor;
  };

  std::vector<modb::sim::ItineraryVehicle> couriers;
  couriers.reserve(kCouriers);
  for (modb::core::ObjectId id = 0; id < kCouriers; ++id) {
    // Plan until we draw a connected pair with a non-trivial path.
    std::vector<modb::geo::PathLeg> path;
    for (int attempt = 0; attempt < 20; ++attempt) {
      const auto candidate = roads.ShortestPath(random_anchor(),
                                                random_anchor());
      if (candidate.ok() && modb::geo::RoutingGraph::PathLength(*candidate) >
                                5.0) {
        path = *candidate;
        break;
      }
    }
    if (path.empty()) return 1;
    modb::sim::CurveGenOptions curve;
    curve.duration = kShiftMinutes;
    curve.cruise_speed = 0.8;
    curve.max_speed = policy.max_speed;
    couriers.emplace_back(
        id,
        modb::sim::MakeItineraryFromPath(city, path, 0.0,
                                         modb::sim::MakeCityCurve(rng, curve)),
        modb::core::MakePolicy(policy));
    if (!db.Insert(id, "courier-" + std::to_string(id),
                   couriers.back().InitialAttribute())
             .ok()) {
      return 1;
    }
    std::printf("courier %llu: %zu-leg plan, %.1f blocks\n",
                static_cast<unsigned long long>(id), path.size(),
                modb::geo::RoutingGraph::PathLength(path));
  }

  // Drive the shift; a new job lands every 10 minutes and is offered to
  // the provably-closest courier.
  std::printf("\n");
  std::size_t route_changes = 0;
  for (double t = 1.0; t <= kShiftMinutes; t += 1.0) {
    for (auto& courier : couriers) {
      const modb::geo::RouteId before = courier.attribute().route;
      if (const auto update = courier.Tick(t)) {
        if (!db.ApplyUpdate(*update).ok()) return 1;
        if (update->route != before) ++route_changes;
      }
    }
    if (static_cast<int>(t) % 10 == 0) {
      const auto pickup = random_anchor();
      const modb::geo::Point2 where =
          city.route(pickup.route).PointAt(pickup.distance);
      char query[128];
      std::snprintf(query, sizeof(query),
                    "NEAREST 1 TO POINT(%.2f, %.2f) AT %.0f", where.x,
                    where.y, t);
      const auto answer = modb::db::ExecuteQuery(db, query);
      std::printf("t=%2.0f  job at (%.1f, %.1f)  ->  %s\n", t, where.x,
                  where.y,
                  answer.ok() ? answer->c_str()
                              : answer.status().ToString().c_str());
    }
  }

  std::printf("\nshift over: %llu updates total, %zu forced by route "
              "changes along planned paths\n",
              static_cast<unsigned long long>(db.log().total_updates()),
              route_changes);
  return 0;
}
