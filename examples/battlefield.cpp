// Battlefield awareness — the paper's military scenario: "retrieve the
// friendly helicopters that are currently in a given region", plus the
// future-time variant the time-space index supports ("where will they be
// in 10 minutes?", §4.2: t0 may be the current time or a future time).
//
// Helicopters fly winding patrol routes using the delayed-linear (dl)
// policy with the current speed as the prediction — appropriate for steady
// cruise flight. The command post runs range queries at the current time
// and 10 minutes ahead; MUST contacts are guaranteed inside the region,
// MAY contacts are possibly inside (their uncertainty interval crosses the
// boundary).
//
// Run: ./build/examples/battlefield

#include <cstdio>
#include <string>
#include <vector>

#include "db/mod_database.h"
#include "sim/speed_curve.h"
#include "sim/trip.h"
#include "sim/vehicle.h"
#include "util/rng.h"

int main() {
  modb::util::Rng rng(1998);

  // Patrol corridors: winding routes across a 60 x 60 km sector.
  modb::geo::RouteNetwork sector;
  for (int i = 0; i < 6; ++i) {
    sector.AddRandomWindingRoute(
        rng, {rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 60.0)},
        /*num_segments=*/60, /*leg_length=*/2.0,
        /*max_turn_radians=*/0.35, "patrol-" + std::to_string(i));
  }

  // Index with a 90-minute horizon so future-time queries stay covered.
  modb::db::ModDatabaseOptions db_options;
  db_options.oplane_horizon = 90.0;
  modb::db::ModDatabase db(&sector, db_options);

  // Helicopters: steady cruise with mild fluctuation -> dl policy with the
  // current speed (paper §3.1: appropriate when speed fluctuates mildly).
  modb::sim::CurveGenOptions cruise;
  cruise.duration = 60.0;
  cruise.cruise_speed = 1.8;  // km per minute (~108 km/h)
  cruise.max_speed = 2.4;

  modb::core::PolicyConfig policy;
  policy.kind = modb::core::PolicyKind::kDelayedLinear;
  policy.update_cost = 10.0;  // contested spectrum: radio silence is cheap
  policy.max_speed = cruise.max_speed;

  std::vector<modb::sim::Vehicle> helos;
  for (modb::core::ObjectId id = 0; id < 6; ++id) {
    const modb::geo::Route& route =
        sector.route(static_cast<modb::geo::RouteId>(id));
    const modb::sim::Trip trip(&route, 0.0,
                               modb::core::TravelDirection::kForward, 0.0,
                               modb::sim::MakeHighwayCurve(rng, cruise));
    helos.emplace_back(id, trip, modb::core::MakePolicy(policy));
    if (!db.Insert(id, "helo-" + std::to_string(id),
                   helos.back().InitialAttribute())
             .ok()) {
      return 1;
    }
  }

  // The area of operations being watched.
  const modb::geo::Polygon aoi =
      modb::geo::Polygon::Rectangle(20.0, 15.0, 55.0, 45.0);

  auto report = [&](double t, const char* label, double query_time) {
    const modb::db::RangeAnswer contacts = db.QueryRange(aoi, query_time);
    std::printf("t=%4.0f  %-14s MUST:", t, label);
    for (const auto id : contacts.must) {
      std::printf(" helo-%llu", static_cast<unsigned long long>(id));
    }
    std::printf("  MAY:");
    for (const auto id : contacts.may) {
      std::printf(" helo-%llu", static_cast<unsigned long long>(id));
    }
    std::printf("\n");
  };

  for (double t = 1.0; t <= 60.0; t += 1.0) {
    for (auto& helo : helos) {
      if (const auto update = helo.Tick(t)) {
        if (!db.ApplyUpdate(*update).ok()) return 1;
      }
    }
    if (static_cast<int>(t) % 15 == 0) {
      report(t, "(now)", t);
      report(t, "(in 10 min)", t + 10.0);
      // Precision on demand: the bound the DBMS can quote per §3.3.
      const auto pos = db.QueryPosition(0, t);
      if (pos.ok()) {
        std::printf("        helo-0 at %s, guaranteed within %.2f km "
                    "(interval [%.1f, %.1f] on its route)\n",
                    pos->position.ToString().c_str(), pos->deviation_bound,
                    pos->uncertainty.lo, pos->uncertainty.hi);
      }
    }
  }

  std::printf("\nradio messages for 6 aircraft over 60 minutes: %llu\n",
              static_cast<unsigned long long>(db.log().total_updates()));
  return 0;
}
