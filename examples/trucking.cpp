// Trucking assistance — the paper's third scenario: "retrieve the trucks
// that are currently within 1 mile of truck ABT312 (which needs
// assistance)". Also demonstrates tuning the update policy to the message
// price: the same fleet is simulated twice, with cheap and expensive
// wireless messages, showing how the cost-based policies adapt the update
// frequency (the paper's central trade-off, §1).
//
// Run: ./build/examples/trucking

#include <cstdio>
#include <string>
#include <vector>

#include "db/mod_database.h"
#include "sim/speed_curve.h"
#include "sim/trip.h"
#include "sim/vehicle.h"
#include "util/rng.h"

namespace {

struct FleetRun {
  double update_cost;
  unsigned long long messages;
  double avg_bound;
};

FleetRun RunFleet(double update_cost, bool print_assistance) {
  modb::util::Rng rng(312);

  // An interstate corridor: two parallel highways with an interchange.
  modb::geo::RouteNetwork corridor;
  const auto i80 =
      corridor.AddStraightRoute({0.0, 0.0}, {120.0, 0.0}, "I-80");
  const auto i76 =
      corridor.AddStraightRoute({0.0, 4.0}, {120.0, 4.0}, "I-76");

  modb::db::ModDatabase db(&corridor);

  modb::sim::CurveGenOptions highway;
  highway.duration = 60.0;
  highway.cruise_speed = 1.0;
  highway.max_speed = 1.3;

  modb::core::PolicyConfig policy;
  policy.kind = modb::core::PolicyKind::kCurrentImmediateLinear;
  policy.update_cost = update_cost;
  policy.max_speed = highway.max_speed;

  constexpr std::size_t kTrucks = 24;
  std::vector<modb::sim::Vehicle> trucks;
  trucks.reserve(kTrucks);
  for (modb::core::ObjectId id = 0; id < kTrucks; ++id) {
    const modb::geo::RouteId route_id = id % 2 == 0 ? i80 : i76;
    const modb::geo::Route& route = corridor.route(route_id);
    // Trucks enter staggered along the first half of the corridor.
    const modb::sim::Trip trip(
        &route, rng.Uniform(0.0, 50.0), modb::core::TravelDirection::kForward,
        0.0, modb::sim::MakeHighwayCurve(rng, highway));
    trucks.emplace_back(id, trip, modb::core::MakePolicy(policy));
    if (!db.Insert(id, id == 3 ? "ABT312" : "truck-" + std::to_string(id),
                   trucks.back().InitialAttribute())
             .ok()) {
      return {};
    }
  }

  double bound_sum = 0.0;
  std::size_t bound_samples = 0;
  for (double t = 1.0; t <= 60.0; t += 1.0) {
    for (auto& truck : trucks) {
      if (const auto update = truck.Tick(t)) {
        if (!db.ApplyUpdate(*update).ok()) return {};
      }
    }
    // Track the fleet-average uncertainty the dispatcher lives with.
    for (modb::core::ObjectId id = 0; id < kTrucks; ++id) {
      const auto pos = db.QueryPosition(id, t);
      if (pos.ok()) {
        bound_sum += pos->deviation_bound;
        ++bound_samples;
      }
    }
    // Minute 30: truck ABT312 (object 3) breaks down and calls for help.
    if (print_assistance && t == 30.0) {
      const auto stranded = db.QueryPosition(3, t);
      if (!stranded.ok()) return {};
      std::printf("t=30: ABT312 requests assistance near %s "
                  "(position known to within %.2f miles)\n",
                  stranded->position.ToString().c_str(),
                  stranded->deviation_bound);
      const modb::geo::Polygon disc = modb::geo::Polygon::RegularNGon(
          stranded->position, 5.0, 24);  // helpers within 5 miles
      const modb::db::RangeAnswer helpers = db.QueryRange(disc, t);
      std::printf("      trucks guaranteed within 5 miles:");
      for (const auto id : helpers.must) {
        if (id == 3) continue;
        std::printf(" %s", (*db.Get(id))->label.c_str());
      }
      std::printf("\n      possibly within 5 miles:");
      for (const auto id : helpers.may) {
        if (id == 3) continue;
        std::printf(" %s", (*db.Get(id))->label.c_str());
      }
      std::printf("\n\n");
    }
  }

  FleetRun run;
  run.update_cost = update_cost;
  run.messages = db.log().total_updates();
  run.avg_bound = bound_samples > 0
                      ? bound_sum / static_cast<double>(bound_samples)
                      : 0.0;
  return run;
}

}  // namespace

int main() {
  std::printf("-- fleet with cheap messages (C = 1) --\n");
  const FleetRun cheap = RunFleet(1.0, /*print_assistance=*/true);

  std::printf("-- fleet with expensive messages (C = 25) --\n\n");
  const FleetRun expensive = RunFleet(25.0, /*print_assistance=*/false);

  std::printf("policy adaptation to the message price (24 trucks, 60 min):\n");
  std::printf("  C = %4.0f : %4llu messages, fleet-average uncertainty "
              "%.2f miles\n",
              cheap.update_cost, cheap.messages, cheap.avg_bound);
  std::printf("  C = %4.0f : %4llu messages, fleet-average uncertainty "
              "%.2f miles\n",
              expensive.update_cost, expensive.messages,
              expensive.avg_bound);
  std::printf("expensive messages -> fewer updates, wider (but still "
              "bounded) uncertainty.\n");
  return 0;
}
