#ifndef MODB_SIM_SPEED_CURVE_H_
#define MODB_SIM_SPEED_CURVE_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace modb::sim {

/// The actual speed of a moving object as a function of time (paper §3.4:
/// "each trip is represented by a speed-curve").
///
/// Speeds are piecewise-constant over steps of width `step`; distance is the
/// exact integral of the curve (precomputed cumulative sums). Time 0 is the
/// start of the trip.
class SpeedCurve {
 public:
  SpeedCurve() = default;
  /// `speeds[i]` applies on [i*step, (i+1)*step); `step` > 0.
  SpeedCurve(std::vector<double> speeds, core::Duration step);

  /// Constant speed `v` for `duration` time units.
  static SpeedCurve Constant(double v, core::Duration duration,
                             core::Duration step = 1.0);

  /// Speed at time `t` (0 before the trip, last value after its end).
  double SpeedAt(core::Time t) const;

  /// Distance covered from time 0 to `t` (exact integral; clamped to the
  /// trip duration).
  double DistanceAt(core::Time t) const;

  /// Largest speed in the curve (the V of propositions 3 / 4).
  double MaxSpeed() const { return max_speed_; }

  /// Mean speed over the whole trip.
  double MeanSpeed() const;

  core::Duration duration() const {
    return step_ * static_cast<double>(speeds_.size());
  }
  core::Duration step() const { return step_; }
  const std::vector<double>& speeds() const { return speeds_; }
  bool Empty() const { return speeds_.empty(); }

 private:
  std::vector<double> speeds_;
  std::vector<double> cumulative_;  // distance at step boundaries
  core::Duration step_ = 1.0;
  double max_speed_ = 0.0;
};

/// Parameters shared by the synthetic speed-curve generators. Speeds are in
/// route-distance per time unit; the paper's worked examples use 1 =
/// 60 mi/h with minutes as the time unit.
struct CurveGenOptions {
  core::Duration duration = 60.0;  // one-hour trips (paper §3.4)
  core::Duration step = 1.0;
  double cruise_speed = 1.0;  // 60 mi/h
  double max_speed = 1.5;     // hard cap (the V the DBMS knows)
};

/// Highway driving in non-rush hour: the speed fluctuates only mildly
/// around the cruise speed (paper §3.1's motivation for predicting with the
/// current speed), with occasional brief slowdowns.
SpeedCurve MakeHighwayCurve(util::Rng& rng, const CurveGenOptions& options);

/// City stop-and-go driving: alternating go phases (speed near cruise,
/// strongly jittered) and stop phases (speed 0), with geometric phase
/// lengths — the speed fluctuates sharply but the average is stable
/// (the paper's motivation for the ail policy).
SpeedCurve MakeCityCurve(util::Rng& rng, const CurveGenOptions& options);

/// Example 1's pattern: travel at cruise speed, then hit a traffic jam
/// (speed 0 or crawling) for an extended period, then resume.
SpeedCurve MakeTrafficJamCurve(util::Rng& rng, const CurveGenOptions& options);

/// Rush-hour mix: city-like congestion for the first and last parts of the
/// trip with a highway-like middle.
SpeedCurve MakeRushHourCurve(util::Rng& rng, const CurveGenOptions& options);

/// Shared platoon profile for a convoy: cruise at a constant speed broken by
/// isolated single-step stop-and-go dips (shockwaves) that hit the whole
/// platoon at once. Because dips never occupy consecutive steps, a
/// dead-reckoning policy observes the accrued deviation on a cruise step and
/// its update re-declares the common cruise speed — so every member of a
/// convoy that shares the curve keeps declaring the same speed no matter
/// which tick its policy fires on, the condition for the group tracker to
/// hold a convoy together across member refreshes. Randomness (dip times and
/// crawl speeds) is per-curve: generate one curve per convoy and copy it to
/// the members.
SpeedCurve MakeConvoyCurve(util::Rng& rng, const CurveGenOptions& options);

/// A labelled speed curve.
struct NamedCurve {
  std::string name;
  SpeedCurve curve;
};

/// The standard evaluation suite (paper §3.4: "a set of one-hour trips"):
/// `per_kind` curves of each generator above, deterministically derived
/// from `rng`.
std::vector<NamedCurve> MakeStandardSuite(util::Rng& rng, int per_kind,
                                          const CurveGenOptions& options);

}  // namespace modb::sim

#endif  // MODB_SIM_SPEED_CURVE_H_
