#ifndef MODB_SIM_SIMULATOR_H_
#define MODB_SIM_SIMULATOR_H_

#include <memory>
#include <optional>

#include "core/deviation.h"
#include "core/update_policy.h"
#include "geo/route.h"
#include "sim/metrics.h"
#include "sim/speed_curve.h"
#include "sim/trip.h"
#include "sim/vehicle.h"

namespace modb::sim {

/// Parameters of a single-vehicle policy simulation (paper §3.4 protocol).
struct SimulationOptions {
  /// Tick width: the onboard computer re-evaluates the policy this often.
  core::Duration tick = 1.0;
  /// Verify at every tick that the actual deviation respects the DBMS
  /// bound (propositions 2-4), within the discretisation tolerance.
  bool check_bounds = true;
  /// Deviation cost function; null selects the uniform cost (eq. 1).
  const core::DeviationCostFunction* cost_function = nullptr;
};

/// Builds a straight route long enough for `curve`'s total distance plus
/// `margin`, with route id 0 (standalone simulations).
geo::Route MakeStraightRouteForCurve(const SpeedCurve& curve,
                                     double margin = 1.0);

/// Simulates one policy on one speed curve on a private straight route and
/// returns the cost/uncertainty metrics. Deterministic.
RunMetrics SimulatePolicyOnCurve(const SpeedCurve& curve,
                                 const core::PolicyConfig& policy,
                                 const SimulationOptions& options);

/// As above but on a caller-provided trip (e.g. a winding route); the
/// `trip.route()` pointer must stay valid for the duration of the call.
RunMetrics SimulatePolicyOnTrip(const Trip& trip,
                                const core::PolicyConfig& policy,
                                const SimulationOptions& options);

}  // namespace modb::sim

#endif  // MODB_SIM_SIMULATOR_H_
