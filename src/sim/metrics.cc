#include "sim/metrics.h"

namespace modb::sim {

MeanMetrics Aggregate(const std::vector<RunMetrics>& runs) {
  MeanMetrics mean;
  if (runs.empty()) return mean;
  for (const RunMetrics& r : runs) {
    mean.messages += static_cast<double>(r.messages);
    mean.deviation_cost += r.deviation_cost;
    mean.total_cost += r.total_cost;
    mean.avg_uncertainty += r.avg_uncertainty;
    mean.avg_deviation += r.avg_deviation;
    mean.max_deviation += r.max_deviation;
    mean.bound_violations += static_cast<double>(r.bound_violations);
  }
  const double n = static_cast<double>(runs.size());
  mean.messages /= n;
  mean.deviation_cost /= n;
  mean.total_cost /= n;
  mean.avg_uncertainty /= n;
  mean.avg_deviation /= n;
  mean.max_deviation /= n;
  mean.bound_violations /= n;
  mean.runs = runs.size();
  return mean;
}

}  // namespace modb::sim
