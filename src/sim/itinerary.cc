#include "sim/itinerary.h"

#include <algorithm>
#include <cassert>

namespace modb::sim {

Itinerary::Itinerary(std::vector<ItineraryLeg> legs, core::Time start_time,
                     SpeedCurve curve)
    : legs_(std::move(legs)), start_time_(start_time), curve_(std::move(curve)) {
  assert(!legs_.empty());
  cumulative_.reserve(legs_.size() + 1);
  cumulative_.push_back(0.0);
  for (const ItineraryLeg& leg : legs_) {
    assert(leg.route != nullptr);
    assert(leg.Length() > 0.0);
    assert(leg.enter_distance >= 0.0 &&
           leg.enter_distance <= leg.route->Length());
    assert(leg.exit_distance >= 0.0 &&
           leg.exit_distance <= leg.route->Length());
    cumulative_.push_back(cumulative_.back() + leg.Length());
  }
}

double Itinerary::TravelledAt(core::Time t) const {
  const double d = curve_.DistanceAt(std::max(0.0, t - start_time_));
  return std::min(d, TotalLength());
}

std::size_t Itinerary::LegIndexAt(core::Time t) const {
  assert(!legs_.empty());
  const double d = TravelledAt(t);
  // First cumulative boundary strictly greater than d; the leg before it.
  const auto it =
      std::upper_bound(cumulative_.begin() + 1, cumulative_.end(), d);
  std::size_t idx =
      static_cast<std::size_t>(it - cumulative_.begin()) - 1;
  return std::min(idx, legs_.size() - 1);
}

const geo::Route& Itinerary::RouteAt(core::Time t) const {
  return *legs_[LegIndexAt(t)].route;
}

double Itinerary::ActualRouteDistanceAt(core::Time t) const {
  const std::size_t i = LegIndexAt(t);
  const ItineraryLeg& leg = legs_[i];
  const double into_leg = TravelledAt(t) - cumulative_[i];
  const double s = leg.enter_distance +
                   core::DirectionSign(leg.Direction()) * into_leg;
  return std::clamp(s, std::min(leg.enter_distance, leg.exit_distance),
                    std::max(leg.enter_distance, leg.exit_distance));
}

geo::Point2 Itinerary::ActualPositionAt(core::Time t) const {
  return RouteAt(t).PointAt(ActualRouteDistanceAt(t));
}

double Itinerary::ActualSpeedAt(core::Time t) const {
  if (TravelledAt(t) >= TotalLength()) return 0.0;  // journey complete
  return curve_.SpeedAt(t - start_time_);
}

core::TravelDirection Itinerary::DirectionAt(core::Time t) const {
  return legs_[LegIndexAt(t)].Direction();
}

Itinerary MakeItineraryFromPath(const geo::RouteNetwork& network,
                                const std::vector<geo::PathLeg>& path,
                                core::Time start_time, SpeedCurve curve) {
  std::vector<ItineraryLeg> legs;
  legs.reserve(path.size());
  for (const geo::PathLeg& leg : path) {
    legs.push_back({&network.route(leg.route), leg.from, leg.to});
  }
  return Itinerary(std::move(legs), start_time, std::move(curve));
}

}  // namespace modb::sim
