#ifndef MODB_SIM_TRIP_H_
#define MODB_SIM_TRIP_H_

#include <algorithm>

#include "core/types.h"
#include "geo/route.h"
#include "sim/speed_curve.h"

namespace modb::sim {

/// One trip of one moving object: a route, a starting position on it, a
/// direction, a start time, and the actual speed curve. The trip is the
/// simulation's ground truth; the database only ever sees the position
/// updates derived from it.
class Trip {
 public:
  Trip() = default;
  /// `route` must outlive the trip.
  Trip(const geo::Route* route, double start_route_distance,
       core::TravelDirection direction, core::Time start_time,
       SpeedCurve curve)
      : route_(route),
        start_route_distance_(start_route_distance),
        direction_(direction),
        start_time_(start_time),
        curve_(std::move(curve)) {}

  const geo::Route& route() const { return *route_; }
  double start_route_distance() const { return start_route_distance_; }
  core::TravelDirection direction() const { return direction_; }
  core::Time start_time() const { return start_time_; }
  core::Time end_time() const { return start_time_ + curve_.duration(); }
  const SpeedCurve& curve() const { return curve_; }

  // Motion-source interface (shared with `Itinerary`): a single-route trip
  // has a time-invariant route and direction.
  const geo::Route& RouteAt(core::Time) const { return *route_; }
  core::TravelDirection DirectionAt(core::Time) const { return direction_; }
  double MaxSpeed() const { return curve_.MaxSpeed(); }

  /// Actual route-distance of the object at absolute time `t`, clamped to
  /// the route ends (a vehicle reaching the end of its route parks there).
  double ActualRouteDistanceAt(core::Time t) const {
    const double travelled =
        curve_.DistanceAt(std::max(0.0, t - start_time_));
    const double s = start_route_distance_ +
                     core::DirectionSign(direction_) * travelled;
    return std::clamp(s, 0.0, route_->Length());
  }

  /// Actual 2-D position at time `t`.
  geo::Point2 ActualPositionAt(core::Time t) const {
    return route_->PointAt(ActualRouteDistanceAt(t));
  }

  /// Actual instantaneous speed at time `t` (0 once the vehicle has parked
  /// at the route end it travels toward).
  double ActualSpeedAt(core::Time t) const {
    const double s = start_route_distance_ +
                     core::DirectionSign(direction_) *
                         curve_.DistanceAt(std::max(0.0, t - start_time_));
    const bool parked = direction_ == core::TravelDirection::kForward
                            ? s >= route_->Length()
                            : s <= 0.0;
    if (parked) return 0.0;
    return curve_.SpeedAt(t - start_time_);
  }

 private:
  const geo::Route* route_ = nullptr;
  double start_route_distance_ = 0.0;
  core::TravelDirection direction_ = core::TravelDirection::kForward;
  core::Time start_time_ = 0.0;
  SpeedCurve curve_;
};

}  // namespace modb::sim

#endif  // MODB_SIM_TRIP_H_
