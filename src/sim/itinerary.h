#ifndef MODB_SIM_ITINERARY_H_
#define MODB_SIM_ITINERARY_H_

#include <cstddef>
#include <vector>

#include "core/types.h"
#include "geo/route.h"
#include "geo/route_network.h"
#include "geo/routing.h"
#include "sim/speed_curve.h"

namespace modb::sim {

/// One leg of a multi-route journey: travel along `route` from arc length
/// `enter_distance` to `exit_distance` (backwards when exit < enter).
struct ItineraryLeg {
  const geo::Route* route = nullptr;
  double enter_distance = 0.0;
  double exit_distance = 0.0;

  double Length() const {
    return exit_distance >= enter_distance ? exit_distance - enter_distance
                                           : enter_distance - exit_distance;
  }
  core::TravelDirection Direction() const {
    return exit_distance >= enter_distance ? core::TravelDirection::kForward
                                           : core::TravelDirection::kBackward;
  }
};

/// Ground truth for a trip spanning several routes (paper §3.1: "if during
/// the trip the object changes its route, then it sends a position update
/// message that includes the identification of the new route"). The speed
/// curve drives progress along the concatenated legs; crossing a leg
/// boundary is a route change that the onboard computer must report because
/// the cross-route route-distance is infinite (§2).
class Itinerary {
 public:
  Itinerary() = default;
  /// `legs` must be non-empty with positive lengths; routes must outlive
  /// the itinerary.
  Itinerary(std::vector<ItineraryLeg> legs, core::Time start_time,
            SpeedCurve curve);

  const std::vector<ItineraryLeg>& legs() const { return legs_; }
  core::Time start_time() const { return start_time_; }
  core::Time end_time() const { return start_time_ + curve_.duration(); }
  const SpeedCurve& curve() const { return curve_; }
  /// Total route distance across all legs.
  double TotalLength() const {
    return cumulative_.empty() ? 0.0 : cumulative_.back();
  }

  /// Index of the leg the object occupies at time `t` (clamped to the last
  /// leg once the journey is complete).
  std::size_t LegIndexAt(core::Time t) const;

  // Motion-source interface (what `BasicVehicle` consumes):

  /// The route the object is on at time `t`.
  const geo::Route& RouteAt(core::Time t) const;
  /// Arc length of the object on `RouteAt(t)` at time `t`.
  double ActualRouteDistanceAt(core::Time t) const;
  /// 2-D position at time `t`.
  geo::Point2 ActualPositionAt(core::Time t) const;
  /// Instantaneous speed (0 once the final leg is complete).
  double ActualSpeedAt(core::Time t) const;
  /// Direction of travel on the current leg.
  core::TravelDirection DirectionAt(core::Time t) const;
  /// Largest speed of the underlying curve.
  double MaxSpeed() const { return curve_.MaxSpeed(); }

 private:
  /// Distance travelled along the concatenated legs at time `t`, clamped to
  /// the itinerary's total length.
  double TravelledAt(core::Time t) const;

  std::vector<ItineraryLeg> legs_;
  std::vector<double> cumulative_;  // cumulative_[i] = length of legs [0, i)
  core::Time start_time_ = 0.0;
  SpeedCurve curve_;
};

/// Builds an itinerary that follows a routing-graph path (see
/// `geo::RoutingGraph::ShortestPath`) with the given speed curve. The
/// network must outlive the itinerary. An empty path yields an invalid
/// itinerary only when truly empty — callers should check beforehand.
Itinerary MakeItineraryFromPath(const geo::RouteNetwork& network,
                                const std::vector<geo::PathLeg>& path,
                                core::Time start_time, SpeedCurve curve);

}  // namespace modb::sim

#endif  // MODB_SIM_ITINERARY_H_
