#ifndef MODB_SIM_FLEET_H_
#define MODB_SIM_FLEET_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "core/types.h"
#include "db/mod_database.h"
#include "geo/route_network.h"
#include "sim/speed_curve.h"
#include "sim/vehicle.h"
#include "util/rng.h"
#include "util/status.h"

namespace modb::sim {

/// Fleet-simulation parameters.
struct FleetOptions {
  /// Policy-evaluation interval of every onboard computer.
  core::Duration tick = 1.0;
  /// Probability that a position-update message is lost in transit. The
  /// onboard computer only mirrors an update after delivery (an implicit
  /// acknowledgement), so a lost message leaves the vehicle's deviation
  /// bookkeeping intact and the policy re-decides — i.e. retransmits — at
  /// the next tick. The paper assumes a reliable channel; this knob is the
  /// failure-injection extension used to show the bounds survive loss.
  double message_loss_probability = 0.0;
  /// Seed for the loss process.
  std::uint64_t seed = 1;
  /// Verify, at every tick, that each vehicle's true position lies inside
  /// the uncertainty interval the database would answer with.
  bool verify_bounds = true;
  /// Uplink batching: how many delivered messages accumulate before the
  /// channel flushes them into the database as one `ApplyUpdateBatch`
  /// call. 1 is the historical per-update channel; larger values model a
  /// base station coalescing a window of messages (flushed when full and
  /// unconditionally at the end of every tick, so no update outlives its
  /// tick). The final store state is identical for any value — batching
  /// only changes how the write path is driven.
  std::size_t update_batch_size = 1;
};

/// Aggregate outcome of a fleet run.
struct FleetStats {
  /// Updates the vehicles attempted to send.
  std::uint64_t messages_attempted = 0;
  /// Updates that reached the database (attempted minus lost).
  std::uint64_t messages_lost = 0;
  /// Ticks simulated across all vehicles.
  std::uint64_t vehicle_ticks = 0;
  /// Verification failures (must stay 0; see FleetOptions::verify_bounds).
  std::uint64_t bound_violations = 0;
  /// Largest observed excess of the true deviation over the DBMS bound
  /// beyond the discretisation tolerance (diagnostic; 0 when none).
  double max_bound_excess = 0.0;

  std::uint64_t messages_delivered() const {
    return messages_attempted - messages_lost;
  }
};

/// Drives a mixed fleet of vehicles against a moving-objects database: per
/// tick, every onboard computer decides whether to update; messages cross a
/// (possibly lossy) channel; delivered updates are applied to the database
/// and acknowledged back to the vehicle. This is the harness behind the
/// fleet-level experiments and the failure-injection tests.
class FleetSimulator {
 public:
  /// `db` must outlive the simulator. Vehicles are added before `Run`.
  FleetSimulator(db::ModDatabase* db, FleetOptions options);

  /// Takes ownership of a vehicle. Call before `RegisterAll`.
  void AddVehicle(std::unique_ptr<VehicleBase> vehicle);

  /// Convenience: wraps a concrete vehicle.
  template <typename Motion>
  void AddVehicle(BasicVehicle<Motion> vehicle) {
    AddVehicle(std::make_unique<BasicVehicle<Motion>>(std::move(vehicle)));
  }

  /// Writes every vehicle's initial attribute into the database.
  util::Status RegisterAll();

  /// Advances the whole fleet by one tick to time `t` (strictly
  /// increasing across calls).
  util::Status Step(core::Time t);

  /// Runs from just after the earliest trip start to the latest trip end.
  util::Status Run();

  const FleetStats& stats() const { return stats_; }
  std::size_t num_vehicles() const { return vehicles_.size(); }
  const VehicleBase& vehicle(std::size_t i) const { return *vehicles_[i]; }

 private:
  db::ModDatabase* db_;
  FleetOptions options_;
  util::Rng rng_;
  std::vector<std::unique_ptr<VehicleBase>> vehicles_;
  FleetStats stats_;
  bool registered_ = false;
};

/// Parameters for a convoy-heavy fleet: groups of vehicles travelling
/// together on a shared route — rush-hour platoons, traffic-jam columns —
/// plus optional independent background traffic. Built for exercising the
/// group tracker: every member of a convoy shares one speed curve (see
/// `MakeConvoyCurve`) and the same policy configuration, so the members
/// declare identical speeds and stay within a bounded along-route window of
/// each other for the whole trip.
struct ConvoyScenarioOptions {
  std::size_t num_convoys = 4;
  std::size_t vehicles_per_convoy = 8;
  /// Independent vehicles on randomly chosen routes with per-vehicle city /
  /// highway curves (never cohesive with the convoys).
  std::size_t num_singletons = 0;
  /// Along-route gap between consecutive convoy members at trip start; the
  /// convoy spans `(vehicles_per_convoy - 1) * spacing`, which must stay
  /// under the tracker's cohesion window for the convoy to group.
  double spacing = 0.5;
  /// First object id; vehicles get consecutive ids from here.
  core::ObjectId first_id = 0;
  core::PolicyKind policy = core::PolicyKind::kCurrentImmediateLinear;
  double update_cost = 5.0;
  /// Trip shape; `curve.max_speed` doubles as the policy's declared
  /// max-speed so all convoy members share one vmax.
  CurveGenOptions curve;
};

/// Adds `num_convoys * vehicles_per_convoy + num_singletons` vehicles to
/// `fleet`, drawing routes and curve shapes from `rng`. Returns the number
/// of vehicles added. Call before `RegisterAll`.
std::size_t BuildConvoyFleet(FleetSimulator& fleet,
                             const geo::RouteNetwork& network,
                             const ConvoyScenarioOptions& options,
                             util::Rng& rng);

}  // namespace modb::sim

#endif  // MODB_SIM_FLEET_H_
