#include "sim/fleet.h"

#include <algorithm>
#include <cmath>

namespace modb::sim {

FleetSimulator::FleetSimulator(db::ModDatabase* db, FleetOptions options)
    : db_(db), options_(options), rng_(options.seed) {}

void FleetSimulator::AddVehicle(std::unique_ptr<VehicleBase> vehicle) {
  vehicles_.push_back(std::move(vehicle));
}

util::Status FleetSimulator::RegisterAll() {
  for (auto& v : vehicles_) {
    const core::PositionAttribute attr = v->InitialAttribute();
    if (util::Status s =
            db_->Insert(v->id(), "fleet-" + std::to_string(v->id()), attr);
        !s.ok()) {
      return s;
    }
  }
  registered_ = true;
  return util::Status::Ok();
}

util::Status FleetSimulator::Step(core::Time t) {
  if (!registered_) {
    return util::Status::FailedPrecondition("RegisterAll() not called");
  }
  for (auto& v : vehicles_) {
    ++stats_.vehicle_ticks;
    if (std::optional<core::PositionUpdate> update = v->TickPrepare(t)) {
      ++stats_.messages_attempted;
      if (rng_.Bernoulli(options_.message_loss_probability)) {
        // Lost in transit: no acknowledgement, the vehicle's mirror stays
        // on the old anchor and the policy will re-fire.
        ++stats_.messages_lost;
      } else {
        if (util::Status s = db_->ApplyUpdate(*update); !s.ok()) return s;
        v->CommitUpdate(*update);
      }
    }
    if (options_.verify_bounds) {
      // Check the DBMS-side answer against ground truth. The database's
      // attribute equals the vehicle's mirror (updates are only mirrored on
      // delivery), so the paper's bounds must hold even under loss.
      const auto answer = db_->QueryPosition(v->id(), t);
      if (!answer.ok()) return answer.status();
      const geo::RouteId true_route = v->GroundTruthRouteIdAt(t);
      if (true_route != answer->route) continue;  // pending route change
      const double actual = v->GroundTruthRouteDistanceAt(t);
      const double tolerance =
          2.0 * v->attribute().max_speed * options_.tick + 1e-9;
      const double excess_lo = answer->uncertainty.lo - tolerance - actual;
      const double excess_hi = actual - answer->uncertainty.hi - tolerance;
      const double excess = std::max(excess_lo, excess_hi);
      if (excess > 0.0) {
        ++stats_.bound_violations;
        stats_.max_bound_excess = std::max(stats_.max_bound_excess, excess);
      }
    }
  }
  return util::Status::Ok();
}

util::Status FleetSimulator::Run() {
  if (vehicles_.empty()) return util::Status::Ok();
  core::Time start = vehicles_.front()->trip_start_time();
  core::Time end = vehicles_.front()->trip_end_time();
  for (const auto& v : vehicles_) {
    start = std::min(start, v->trip_start_time());
    end = std::max(end, v->trip_end_time());
  }
  for (core::Time t = start + options_.tick; t <= end + 1e-9;
       t += options_.tick) {
    if (util::Status s = Step(t); !s.ok()) return s;
  }
  return util::Status::Ok();
}

}  // namespace modb::sim
