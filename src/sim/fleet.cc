#include "sim/fleet.h"

#include <algorithm>
#include <cmath>

namespace modb::sim {

FleetSimulator::FleetSimulator(db::ModDatabase* db, FleetOptions options)
    : db_(db), options_(options), rng_(options.seed) {}

void FleetSimulator::AddVehicle(std::unique_ptr<VehicleBase> vehicle) {
  vehicles_.push_back(std::move(vehicle));
}

util::Status FleetSimulator::RegisterAll() {
  for (auto& v : vehicles_) {
    const core::PositionAttribute attr = v->InitialAttribute();
    if (util::Status s =
            db_->Insert(v->id(), "fleet-" + std::to_string(v->id()), attr);
        !s.ok()) {
      return s;
    }
  }
  registered_ = true;
  return util::Status::Ok();
}

util::Status FleetSimulator::Step(core::Time t) {
  if (!registered_) {
    return util::Status::FailedPrecondition("RegisterAll() not called");
  }
  // Delivered messages buffer in the channel and flush through the staged
  // batch path; an acknowledgement (CommitUpdate) only goes back for
  // records the database accepted, exactly as in the per-update channel.
  const std::size_t batch_size =
      std::max<std::size_t>(1, options_.update_batch_size);
  std::vector<core::PositionUpdate> pending;
  std::vector<VehicleBase*> senders;
  pending.reserve(batch_size);
  senders.reserve(batch_size);
  const auto flush = [&]() -> util::Status {
    if (pending.empty()) return util::Status::Ok();
    const db::UpdateBatchResult applied = db_->ApplyUpdateBatch(pending);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (!applied.statuses[i].ok()) return applied.statuses[i];
      senders[i]->CommitUpdate(pending[i]);
    }
    pending.clear();
    senders.clear();
    return util::Status::Ok();
  };
  for (auto& v : vehicles_) {
    ++stats_.vehicle_ticks;
    if (std::optional<core::PositionUpdate> update = v->TickPrepare(t)) {
      ++stats_.messages_attempted;
      if (rng_.Bernoulli(options_.message_loss_probability)) {
        // Lost in transit: no acknowledgement, the vehicle's mirror stays
        // on the old anchor and the policy will re-fire.
        ++stats_.messages_lost;
      } else {
        pending.push_back(*update);
        senders.push_back(v.get());
        if (pending.size() >= batch_size) {
          if (util::Status s = flush(); !s.ok()) return s;
        }
      }
    }
  }
  // End-of-tick flush: every delivered message lands within its tick.
  if (util::Status s = flush(); !s.ok()) return s;
  if (options_.verify_bounds) {
    // Check the DBMS-side answer against ground truth, after all of this
    // tick's updates landed (each vehicle's answer depends only on its own
    // record, so verifying after the flush matches the per-update order).
    // The database's attribute equals the vehicle's mirror (updates are
    // only mirrored on delivery), so the paper's bounds must hold even
    // under loss.
    for (auto& v : vehicles_) {
      const auto answer = db_->QueryPosition(v->id(), t);
      if (!answer.ok()) return answer.status();
      const geo::RouteId true_route = v->GroundTruthRouteIdAt(t);
      if (true_route != answer->route) continue;  // pending route change
      const double actual = v->GroundTruthRouteDistanceAt(t);
      const double tolerance =
          2.0 * v->attribute().max_speed * options_.tick + 1e-9;
      const double excess_lo = answer->uncertainty.lo - tolerance - actual;
      const double excess_hi = actual - answer->uncertainty.hi - tolerance;
      const double excess = std::max(excess_lo, excess_hi);
      if (excess > 0.0) {
        ++stats_.bound_violations;
        stats_.max_bound_excess = std::max(stats_.max_bound_excess, excess);
      }
    }
  }
  return util::Status::Ok();
}

util::Status FleetSimulator::Run() {
  if (vehicles_.empty()) return util::Status::Ok();
  core::Time start = vehicles_.front()->trip_start_time();
  core::Time end = vehicles_.front()->trip_end_time();
  for (const auto& v : vehicles_) {
    start = std::min(start, v->trip_start_time());
    end = std::max(end, v->trip_end_time());
  }
  for (core::Time t = start + options_.tick; t <= end + 1e-9;
       t += options_.tick) {
    if (util::Status s = Step(t); !s.ok()) return s;
  }
  return util::Status::Ok();
}

std::size_t BuildConvoyFleet(FleetSimulator& fleet,
                             const geo::RouteNetwork& network,
                             const ConvoyScenarioOptions& options,
                             util::Rng& rng) {
  if (network.size() == 0) return 0;
  const auto random_route = [&]() -> const geo::Route& {
    return network.route(static_cast<geo::RouteId>(
        rng.UniformInt(0, static_cast<std::int64_t>(network.size()) - 1)));
  };
  core::PolicyConfig policy;
  policy.kind = options.policy;
  policy.update_cost = options.update_cost;
  policy.max_speed = options.curve.max_speed;
  core::ObjectId id = options.first_id;
  for (std::size_t c = 0; c < options.num_convoys; ++c) {
    const geo::Route& route = random_route();
    const SpeedCurve profile = MakeConvoyCurve(rng, options.curve);
    const double base = rng.Uniform(0.0, route.Length() * 0.1);
    for (std::size_t m = 0; m < options.vehicles_per_convoy; ++m) {
      const double start = std::min(
          base + static_cast<double>(m) * options.spacing, route.Length());
      Trip trip(&route, start, core::TravelDirection::kForward, 0.0, profile);
      fleet.AddVehicle(std::make_unique<Vehicle>(id++, std::move(trip),
                                                 core::MakePolicy(policy)));
    }
  }
  for (std::size_t s = 0; s < options.num_singletons; ++s) {
    const geo::Route& route = random_route();
    SpeedCurve curve = (s % 2 == 0) ? MakeCityCurve(rng, options.curve)
                                    : MakeHighwayCurve(rng, options.curve);
    Trip trip(&route, rng.Uniform(0.0, route.Length() * 0.2),
              core::TravelDirection::kForward, 0.0, std::move(curve));
    fleet.AddVehicle(std::make_unique<Vehicle>(id++, std::move(trip),
                                               core::MakePolicy(policy)));
  }
  return static_cast<std::size_t>(id - options.first_id);
}

}  // namespace modb::sim
