#ifndef MODB_SIM_METRICS_H_
#define MODB_SIM_METRICS_H_

#include <cstddef>
#include <vector>

namespace modb::sim {

/// Outcome of simulating one update policy on one speed curve (the three
/// quantities the paper's §3.4 plots, plus diagnostics).
struct RunMetrics {
  /// Position-update messages sent during the trip (excluding the
  /// beginning-of-trip write that every policy performs).
  std::size_t messages = 0;
  /// Deviation cost over the trip (uniform cost: the integral of d(t) dt).
  double deviation_cost = 0.0;
  /// Total cost = C * messages + deviation_cost (paper eq. 2 summed over
  /// the trip).
  double total_cost = 0.0;
  /// Mean, over ticks, of the deviation bound the DBMS would quote
  /// (the paper's "average uncertainty").
  double avg_uncertainty = 0.0;
  /// Mean actual deviation over ticks.
  double avg_deviation = 0.0;
  /// Largest actual deviation over the trip.
  double max_deviation = 0.0;
  /// Ticks at which the actual deviation exceeded the DBMS bound by more
  /// than the discretisation tolerance. Must be 0 — checked by tests.
  std::size_t bound_violations = 0;
  /// Trip duration and number of ticks simulated.
  double duration = 0.0;
  std::size_t ticks = 0;
};

/// Arithmetic means of `RunMetrics` across several runs (the paper averages
/// each quantity over all speed curves).
struct MeanMetrics {
  double messages = 0.0;
  double deviation_cost = 0.0;
  double total_cost = 0.0;
  double avg_uncertainty = 0.0;
  double avg_deviation = 0.0;
  double max_deviation = 0.0;
  double bound_violations = 0.0;
  std::size_t runs = 0;
};

/// Averages `runs` (empty input yields an all-zero result).
MeanMetrics Aggregate(const std::vector<RunMetrics>& runs);

}  // namespace modb::sim

#endif  // MODB_SIM_METRICS_H_
