#include "sim/experiment.h"

#include <algorithm>
#include <set>

namespace modb::sim {

std::vector<SweepCell> RunSweep(const std::vector<NamedCurve>& curves,
                                const SweepConfig& config) {
  std::vector<SweepCell> cells;
  cells.reserve(config.policies.size() * config.update_costs.size());
  for (core::PolicyKind kind : config.policies) {
    for (double C : config.update_costs) {
      core::PolicyConfig policy = config.base_policy;
      policy.kind = kind;
      policy.update_cost = C;
      std::vector<RunMetrics> runs;
      runs.reserve(curves.size());
      for (const NamedCurve& named : curves) {
        runs.push_back(
            SimulatePolicyOnCurve(named.curve, policy, config.sim));
      }
      SweepCell cell;
      cell.policy = kind;
      cell.update_cost = C;
      cell.mean = Aggregate(runs);
      cells.push_back(cell);
    }
  }
  return cells;
}

std::string_view MetricKindName(MetricKind metric) {
  switch (metric) {
    case MetricKind::kMessages:
      return "messages";
    case MetricKind::kTotalCost:
      return "total_cost";
    case MetricKind::kAvgUncertainty:
      return "avg_uncertainty";
    case MetricKind::kDeviationCost:
      return "deviation_cost";
    case MetricKind::kAvgDeviation:
      return "avg_deviation";
  }
  return "unknown";
}

double GetMetric(const MeanMetrics& mean, MetricKind metric) {
  switch (metric) {
    case MetricKind::kMessages:
      return mean.messages;
    case MetricKind::kTotalCost:
      return mean.total_cost;
    case MetricKind::kAvgUncertainty:
      return mean.avg_uncertainty;
    case MetricKind::kDeviationCost:
      return mean.deviation_cost;
    case MetricKind::kAvgDeviation:
      return mean.avg_deviation;
  }
  return 0.0;
}

util::Table SweepTable(const std::vector<SweepCell>& cells,
                       MetricKind metric) {
  // Preserve first-appearance order of policies and costs.
  std::vector<core::PolicyKind> policies;
  std::vector<double> costs;
  for (const SweepCell& cell : cells) {
    if (std::find(policies.begin(), policies.end(), cell.policy) ==
        policies.end()) {
      policies.push_back(cell.policy);
    }
    if (std::find(costs.begin(), costs.end(), cell.update_cost) ==
        costs.end()) {
      costs.push_back(cell.update_cost);
    }
  }
  std::sort(costs.begin(), costs.end());

  std::vector<std::string> headers = {"C"};
  for (core::PolicyKind kind : policies) {
    headers.emplace_back(core::PolicyKindName(kind));
  }
  util::Table table(std::move(headers));
  for (double C : costs) {
    table.NewRow().Add(C, 2);
    for (core::PolicyKind kind : policies) {
      const auto it = std::find_if(
          cells.begin(), cells.end(), [&](const SweepCell& cell) {
            return cell.policy == kind && cell.update_cost == C;
          });
      if (it != cells.end()) {
        table.Add(GetMetric(it->mean, metric), 3);
      } else {
        table.Add(std::string("-"));
      }
    }
  }
  return table;
}

}  // namespace modb::sim
