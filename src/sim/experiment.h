#ifndef MODB_SIM_EXPERIMENT_H_
#define MODB_SIM_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/update_policy.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "sim/speed_curve.h"
#include "util/table.h"

namespace modb::sim {

/// One cell of a policy x update-cost sweep: metrics averaged over every
/// curve in the suite (the paper's §3.4 protocol).
struct SweepCell {
  core::PolicyKind policy = core::PolicyKind::kAverageImmediateLinear;
  double update_cost = 0.0;  // C
  MeanMetrics mean;
};

/// Sweep configuration. `base_policy` supplies the non-swept policy
/// parameters (fitting method, max speed, fixed threshold, period, ...).
struct SweepConfig {
  std::vector<core::PolicyKind> policies = {
      core::PolicyKind::kDelayedLinear,
      core::PolicyKind::kAverageImmediateLinear,
      core::PolicyKind::kCurrentImmediateLinear,
  };
  std::vector<double> update_costs = {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0};
  core::PolicyConfig base_policy;
  SimulationOptions sim;
};

/// Runs every (policy, C) combination over `curves` and averages the
/// metrics per combination. Cells are ordered policy-major in the order
/// given by the config.
std::vector<SweepCell> RunSweep(const std::vector<NamedCurve>& curves,
                                const SweepConfig& config);

/// Selector for one scalar out of `MeanMetrics`.
enum class MetricKind {
  kMessages,
  kTotalCost,
  kAvgUncertainty,
  kDeviationCost,
  kAvgDeviation,
};

std::string_view MetricKindName(MetricKind metric);
double GetMetric(const MeanMetrics& mean, MetricKind metric);

/// Renders a sweep as a table with one row per update cost C and one
/// column per policy, containing the selected metric — the layout of the
/// paper's plots ("<metric> as a function of the message cost").
util::Table SweepTable(const std::vector<SweepCell>& cells,
                       MetricKind metric);

}  // namespace modb::sim

#endif  // MODB_SIM_EXPERIMENT_H_
