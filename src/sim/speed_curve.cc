#include "sim/speed_curve.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace modb::sim {

SpeedCurve::SpeedCurve(std::vector<double> speeds, core::Duration step)
    : speeds_(std::move(speeds)), step_(step) {
  assert(step_ > 0.0);
  cumulative_.reserve(speeds_.size() + 1);
  cumulative_.push_back(0.0);
  double acc = 0.0;
  for (double v : speeds_) {
    assert(v >= 0.0);
    acc += v * step_;
    cumulative_.push_back(acc);
    max_speed_ = std::max(max_speed_, v);
  }
}

SpeedCurve SpeedCurve::Constant(double v, core::Duration duration,
                                core::Duration step) {
  const auto n = static_cast<std::size_t>(std::ceil(duration / step));
  return SpeedCurve(std::vector<double>(n, v), step);
}

double SpeedCurve::SpeedAt(core::Time t) const {
  if (speeds_.empty() || t < 0.0) return 0.0;
  auto idx = static_cast<std::size_t>(t / step_);
  if (idx >= speeds_.size()) return 0.0;  // trip over: parked
  return speeds_[idx];
}

double SpeedCurve::DistanceAt(core::Time t) const {
  if (speeds_.empty() || t <= 0.0) return 0.0;
  const double steps = t / step_;
  const auto whole = static_cast<std::size_t>(steps);
  if (whole >= speeds_.size()) return cumulative_.back();
  const double frac = steps - static_cast<double>(whole);
  return cumulative_[whole] + speeds_[whole] * frac * step_;
}

double SpeedCurve::MeanSpeed() const {
  if (speeds_.empty()) return 0.0;
  return cumulative_.back() / duration();
}

namespace {

std::size_t NumSteps(const CurveGenOptions& options) {
  return static_cast<std::size_t>(std::ceil(options.duration / options.step));
}

double ClampSpeed(double v, const CurveGenOptions& options) {
  return std::clamp(v, 0.0, options.max_speed);
}

}  // namespace

SpeedCurve MakeHighwayCurve(util::Rng& rng, const CurveGenOptions& options) {
  const std::size_t n = NumSteps(options);
  std::vector<double> speeds;
  speeds.reserve(n);
  double current = options.cruise_speed;
  std::size_t slowdown_left = 0;
  double slowdown_speed = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (slowdown_left > 0) {
      --slowdown_left;
      speeds.push_back(ClampSpeed(slowdown_speed, options));
      continue;
    }
    // Mild mean-reverting jitter around the cruise speed (~5%).
    current += 0.3 * (options.cruise_speed - current) +
               rng.Normal(0.0, 0.05 * options.cruise_speed);
    // Occasional brief slowdown (lane change, exit ramp, light traffic).
    if (rng.Bernoulli(0.03)) {
      slowdown_left = static_cast<std::size_t>(rng.UniformInt(1, 3));
      slowdown_speed = options.cruise_speed * rng.Uniform(0.3, 0.7);
    }
    speeds.push_back(ClampSpeed(current, options));
  }
  return SpeedCurve(std::move(speeds), options.step);
}

SpeedCurve MakeCityCurve(util::Rng& rng, const CurveGenOptions& options) {
  const std::size_t n = NumSteps(options);
  std::vector<double> speeds;
  speeds.reserve(n);
  bool moving = true;
  std::size_t phase_left = static_cast<std::size_t>(rng.UniformInt(1, 4));
  for (std::size_t i = 0; i < n; ++i) {
    if (phase_left == 0) {
      moving = !moving;
      phase_left = moving
                       ? static_cast<std::size_t>(rng.UniformInt(2, 6))
                       : static_cast<std::size_t>(rng.UniformInt(1, 3));
    }
    --phase_left;
    if (moving) {
      const double v =
          options.cruise_speed * rng.Uniform(0.5, 1.1);
      speeds.push_back(ClampSpeed(v, options));
    } else {
      speeds.push_back(0.0);
    }
  }
  return SpeedCurve(std::move(speeds), options.step);
}

SpeedCurve MakeTrafficJamCurve(util::Rng& rng,
                               const CurveGenOptions& options) {
  const std::size_t n = NumSteps(options);
  std::vector<double> speeds(n, options.cruise_speed);
  // One jam somewhere in the middle third, lasting 10-30% of the trip.
  const std::size_t jam_start = static_cast<std::size_t>(
      rng.UniformInt(static_cast<std::int64_t>(n / 3),
                     static_cast<std::int64_t>(n / 2)));
  const std::size_t jam_len = static_cast<std::size_t>(
      rng.UniformInt(static_cast<std::int64_t>(n / 10),
                     static_cast<std::int64_t>(3 * n / 10)));
  for (std::size_t i = jam_start; i < std::min(jam_start + jam_len, n); ++i) {
    // Crawl or full stop.
    speeds[i] = rng.Bernoulli(0.6) ? 0.0
                                   : options.cruise_speed * rng.Uniform(0.05, 0.2);
  }
  // Mild jitter outside the jam.
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= jam_start && i < jam_start + jam_len) continue;
    speeds[i] = ClampSpeed(
        speeds[i] + rng.Normal(0.0, 0.04 * options.cruise_speed), options);
  }
  return SpeedCurve(std::move(speeds), options.step);
}

SpeedCurve MakeRushHourCurve(util::Rng& rng, const CurveGenOptions& options) {
  const std::size_t n = NumSteps(options);
  CurveGenOptions part = options;

  // City-like first quarter, highway middle half, city-like last quarter.
  part.duration = options.duration * 0.25;
  SpeedCurve head = MakeCityCurve(rng, part);
  part.duration = options.duration * 0.5;
  SpeedCurve middle = MakeHighwayCurve(rng, part);
  part.duration = options.duration * 0.25;
  SpeedCurve tail = MakeCityCurve(rng, part);

  std::vector<double> speeds;
  speeds.reserve(n);
  for (double v : head.speeds()) speeds.push_back(v);
  for (double v : middle.speeds()) speeds.push_back(v);
  for (double v : tail.speeds()) speeds.push_back(v);
  speeds.resize(n, speeds.empty() ? 0.0 : speeds.back());
  return SpeedCurve(std::move(speeds), options.step);
}

SpeedCurve MakeConvoyCurve(util::Rng& rng, const CurveGenOptions& options) {
  const std::size_t n = NumSteps(options);
  std::vector<double> speeds(n, ClampSpeed(options.cruise_speed, options));
  // Stop-and-go shockwaves: isolated single-step dips hit the whole platoon
  // at once (every member shares this curve), always separated by cruise
  // steps. A dip accrues dead-reckoning deviation that the policy only
  // observes at the following tick — when the platoon is already back at
  // cruise — so a triggered update re-declares the shared cruise speed with
  // a refreshed position, and the convoy keeps one common motion model
  // while it slowly falls behind it.
  std::size_t i = 2 + static_cast<std::size_t>(rng.UniformInt(0, 4));
  while (i < n) {
    speeds[i] =
        ClampSpeed(options.cruise_speed * rng.Uniform(0.05, 0.25), options);
    i += static_cast<std::size_t>(rng.UniformInt(3, 8));
  }
  return SpeedCurve(std::move(speeds), options.step);
}

std::vector<NamedCurve> MakeStandardSuite(util::Rng& rng, int per_kind,
                                          const CurveGenOptions& options) {
  std::vector<NamedCurve> suite;
  suite.reserve(static_cast<std::size_t>(per_kind) * 4);
  for (int i = 0; i < per_kind; ++i) {
    suite.push_back({"highway-" + std::to_string(i),
                     MakeHighwayCurve(rng, options)});
  }
  for (int i = 0; i < per_kind; ++i) {
    suite.push_back({"city-" + std::to_string(i), MakeCityCurve(rng, options)});
  }
  for (int i = 0; i < per_kind; ++i) {
    suite.push_back({"jam-" + std::to_string(i),
                     MakeTrafficJamCurve(rng, options)});
  }
  for (int i = 0; i < per_kind; ++i) {
    suite.push_back({"rush-" + std::to_string(i),
                     MakeRushHourCurve(rng, options)});
  }
  return suite;
}

}  // namespace modb::sim
