#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "core/bounds.h"

namespace modb::sim {

geo::Route MakeStraightRouteForCurve(const SpeedCurve& curve, double margin) {
  // Long enough for the worst-case *database* extrapolation (declared speed
  // up to the curve maximum for the whole trip), not just the distance
  // actually travelled — otherwise the database position would clamp at the
  // route end and distort the deviation process.
  const double length = curve.MaxSpeed() * curve.duration() + margin;
  return geo::Route(0, geo::Polyline({{0.0, 0.0}, {length, 0.0}}),
                    "sim-straight");
}

RunMetrics SimulatePolicyOnTrip(const Trip& trip,
                                const core::PolicyConfig& policy,
                                const SimulationOptions& options) {
  const core::UniformDeviationCost uniform_cost;
  const core::DeviationCostFunction& cost_fn =
      options.cost_function != nullptr ? *options.cost_function
                                       : uniform_cost;

  Vehicle vehicle(0, trip, core::MakePolicy(policy));
  vehicle.InitialAttribute();

  RunMetrics metrics;
  metrics.duration = trip.curve().duration();

  const core::Time t0 = trip.start_time();
  const core::Time t_end = trip.end_time();
  const double dt = options.tick;
  // Discretisation tolerance: the policy re-evaluates once per tick, during
  // which the deviation can grow by rate*dt while a time-decreasing bound
  // (the immediate policies' 2C/t) can shrink by up to another rate*dt —
  // the transient overshoot is bounded by twice the worst-case rate.
  const double bound_tolerance =
      2.0 * std::max(trip.curve().MaxSpeed(), policy.max_speed) * dt + 1e-9;

  double prev_deviation = 0.0;
  double uncertainty_sum = 0.0;
  double deviation_sum = 0.0;

  for (core::Time t = t0 + dt; t <= t_end + 1e-9; t += dt) {
    // Pre-update state: deviation and the bound the DBMS would quote now.
    const double deviation = vehicle.DeviationAt(t);
    const core::PositionAttribute& attr = vehicle.attribute();
    const core::Duration since_update = t - attr.start_time;

    if (options.check_bounds) {
      const double bound = vehicle.IsSlowDeviationAt(t)
                               ? core::SlowDeviationBound(attr, since_update)
                               : core::FastDeviationBound(attr, since_update);
      if (deviation > bound + bound_tolerance) ++metrics.bound_violations;
    }

    metrics.deviation_cost +=
        cost_fn.IntervalCost(prev_deviation, deviation, dt);
    deviation_sum += deviation;
    metrics.max_deviation = std::max(metrics.max_deviation, deviation);

    const std::optional<core::PositionUpdate> update = vehicle.Tick(t);
    if (update.has_value()) ++metrics.messages;
    prev_deviation = update.has_value() ? 0.0 : deviation;

    // Post-update uncertainty: the bound the DBMS quotes for a query now.
    const core::PositionAttribute& attr_after = vehicle.attribute();
    uncertainty_sum +=
        core::DeviationBound(attr_after, t - attr_after.start_time);
    ++metrics.ticks;
  }

  if (metrics.ticks > 0) {
    metrics.avg_uncertainty =
        uncertainty_sum / static_cast<double>(metrics.ticks);
    metrics.avg_deviation = deviation_sum / static_cast<double>(metrics.ticks);
  }
  metrics.total_cost =
      policy.update_cost * static_cast<double>(metrics.messages) +
      metrics.deviation_cost;
  return metrics;
}

RunMetrics SimulatePolicyOnCurve(const SpeedCurve& curve,
                                 const core::PolicyConfig& policy,
                                 const SimulationOptions& options) {
  const geo::Route route = MakeStraightRouteForCurve(curve);
  const Trip trip(&route, 0.0, core::TravelDirection::kForward, 0.0, curve);
  return SimulatePolicyOnTrip(trip, policy, options);
}

}  // namespace modb::sim
