#ifndef MODB_SIM_VEHICLE_H_
#define MODB_SIM_VEHICLE_H_

#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "core/deviation.h"
#include "core/position_attribute.h"
#include "core/types.h"
#include "core/update_policy.h"
#include "sim/itinerary.h"
#include "sim/trip.h"

namespace modb::sim {

/// Type-erased view of a simulated vehicle, used by code (the fleet
/// simulator, verification harnesses) that must drive a mixed fleet of
/// single-route and multi-route vehicles uniformly.
class VehicleBase {
 public:
  virtual ~VehicleBase() = default;

  virtual core::ObjectId id() const = 0;

  /// The beginning-of-trip write of all position sub-attributes (§3.1).
  /// Call once, insert the result into the database, before any tick.
  virtual core::PositionAttribute InitialAttribute() = 0;

  /// Advances the onboard computer to time `t` and, when the update policy
  /// (or a route change) requires it, returns the position update — WITHOUT
  /// applying it to the vehicle's own mirror. Callers model the wireless
  /// channel: deliver the message and call `CommitUpdate`, or drop it (the
  /// vehicle then re-decides at the next tick, i.e. retransmits). Call once
  /// per tick with strictly increasing times.
  virtual std::optional<core::PositionUpdate> TickPrepare(core::Time t) = 0;

  /// Acknowledges delivery: mirrors the database's new state onboard
  /// (the paper's instantaneous-update assumption) and resets the
  /// deviation bookkeeping.
  virtual void CommitUpdate(const core::PositionUpdate& update) = 0;

  /// Convenience for a lossless channel: TickPrepare + CommitUpdate.
  std::optional<core::PositionUpdate> Tick(core::Time t) {
    std::optional<core::PositionUpdate> update = TickPrepare(t);
    if (update.has_value()) CommitUpdate(*update);
    return update;
  }

  /// The vehicle's mirror of its database position attribute.
  virtual const core::PositionAttribute& attribute() const = 0;
  virtual const core::DeviationTracker& tracker() const = 0;
  virtual const core::UpdatePolicy& policy() const = 0;

  /// Deviation the database attribute implies at time `t`: the
  /// route-distance between actual and database positions — infinite when
  /// the vehicle has moved to a different route (paper §2).
  virtual double DeviationAt(core::Time t) const = 0;

  /// True when the actual position is behind the database position along
  /// the direction of travel (a *slow* deviation, §3.3).
  virtual bool IsSlowDeviationAt(core::Time t) const = 0;

  // Ground truth (for verification):
  virtual geo::Point2 GroundTruthPositionAt(core::Time t) const = 0;
  virtual double GroundTruthRouteDistanceAt(core::Time t) const = 0;
  virtual geo::RouteId GroundTruthRouteIdAt(core::Time t) const = 0;
  virtual core::Time trip_start_time() const = 0;
  virtual core::Time trip_end_time() const = 0;
};

/// The computer onboard a moving object (paper §3.1): knows the exact
/// current position (GPS), mirrors the parameters of its own last database
/// update, tracks the deviation, and executes the position-update policy.
///
/// `Motion` supplies the ground truth and must provide the motion-source
/// interface (`RouteAt`, `ActualRouteDistanceAt`, `ActualPositionAt`,
/// `ActualSpeedAt`, `DirectionAt`, `start_time`, `end_time`, `MaxSpeed`);
/// `Trip` (single route) and `Itinerary` (multi-route) both qualify.
///
/// When the motion source crosses onto a new route, the vehicle emits a
/// forced position update regardless of the policy — the paper defines the
/// route-distance between points on different routes as infinite precisely
/// so that a route change always triggers an update (§2, §3.1).
template <typename Motion>
class BasicVehicle final : public VehicleBase {
 public:
  BasicVehicle(core::ObjectId id, Motion motion,
               std::unique_ptr<core::UpdatePolicy> policy)
      : id_(id),
        motion_(std::move(motion)),
        policy_(std::move(policy)),
        tracker_(policy_->config().zero_epsilon) {}

  BasicVehicle(BasicVehicle&&) = default;
  BasicVehicle& operator=(BasicVehicle&&) = default;

  core::ObjectId id() const override { return id_; }
  const Motion& motion() const { return motion_; }
  const core::UpdatePolicy& policy() const override { return *policy_; }
  const core::PositionAttribute& attribute() const override { return attr_; }
  const core::DeviationTracker& tracker() const override { return tracker_; }

  /// Deviation at the last tick.
  double current_deviation() const { return tracker_.current_deviation(); }

  core::PositionAttribute InitialAttribute() override {
    const core::Time t0 = motion_.start_time();
    const core::PolicyConfig& config = policy_->config();
    const geo::Route& route = motion_.RouteAt(t0);

    attr_ = core::PositionAttribute{};
    attr_.start_time = t0;
    attr_.route = route.id();
    attr_.start_route_distance = motion_.ActualRouteDistanceAt(t0);
    attr_.start_position = route.PointAt(attr_.start_route_distance);
    attr_.direction = motion_.DirectionAt(t0);
    // The declared speed at trip start: the current speed for the
    // motion-model policies, 0 for the traditional periodic reporter.
    attr_.speed = config.kind == core::PolicyKind::kPeriodic
                      ? 0.0
                      : motion_.ActualSpeedAt(t0);
    attr_.policy = config.kind;
    attr_.update_cost = config.update_cost;
    attr_.max_speed =
        config.max_speed > 0.0 ? config.max_speed : motion_.MaxSpeed();
    attr_.fixed_threshold = config.fixed_threshold;
    attr_.period = config.period;
    attr_.step_threshold = config.step_threshold;

    tracker_.Reset(t0, attr_.start_route_distance);
    policy_->OnUpdateSent(t0);
    initialized_ = true;
    return attr_;
  }

  double DeviationAt(core::Time t) const override {
    const geo::Route& route = motion_.RouteAt(t);
    if (route.id() != attr_.route) {
      return std::numeric_limits<double>::infinity();
    }
    const double actual = motion_.ActualRouteDistanceAt(t);
    const double db = attr_.ClampedDatabaseRouteDistanceAt(t, route.Length());
    return std::fabs(actual - db);
  }

  bool IsSlowDeviationAt(core::Time t) const override {
    const geo::Route& route = motion_.RouteAt(t);
    if (route.id() != attr_.route) return false;
    const double actual = motion_.ActualRouteDistanceAt(t);
    const double db = attr_.ClampedDatabaseRouteDistanceAt(t, route.Length());
    return core::DirectionSign(attr_.direction) * (actual - db) < 0.0;
  }

  std::optional<core::PositionUpdate> TickPrepare(core::Time t) override {
    assert(initialized_ && "call InitialAttribute() before ticking");
    const geo::Route& route = motion_.RouteAt(t);
    if (route.id() != attr_.route) {
      // Route change: the cross-route deviation is infinite, so the update
      // is mandatory and bypasses the cost-based policy.
      return BuildUpdate(t, motion_.ActualSpeedAt(t));
    }
    const double actual = motion_.ActualRouteDistanceAt(t);
    const double deviation = DeviationAt(t);
    const double current_speed = motion_.ActualSpeedAt(t);
    tracker_.Observe(t, deviation, actual, current_speed);

    const std::optional<core::UpdateDecision> decision =
        policy_->Decide(tracker_, t, current_speed);
    if (!decision.has_value()) return std::nullopt;
    return BuildUpdate(t, decision->declared_speed);
  }

  void CommitUpdate(const core::PositionUpdate& update) override {
    attr_.start_time = update.time;
    attr_.route = update.route;
    attr_.start_route_distance = update.route_distance;
    attr_.start_position = update.position;
    attr_.direction = update.direction;
    attr_.speed = update.speed;
    tracker_.Reset(update.time, update.route_distance);
    policy_->OnUpdateSent(update.time);
  }

  geo::Point2 GroundTruthPositionAt(core::Time t) const override {
    return motion_.ActualPositionAt(t);
  }
  double GroundTruthRouteDistanceAt(core::Time t) const override {
    return motion_.ActualRouteDistanceAt(t);
  }
  geo::RouteId GroundTruthRouteIdAt(core::Time t) const override {
    return motion_.RouteAt(t).id();
  }
  core::Time trip_start_time() const override { return motion_.start_time(); }
  core::Time trip_end_time() const override { return motion_.end_time(); }

 private:
  core::PositionUpdate BuildUpdate(core::Time t, double declared_speed) const {
    const geo::Route& route = motion_.RouteAt(t);
    core::PositionUpdate update;
    update.object = id_;
    update.time = t;
    update.route = route.id();
    update.route_distance = motion_.ActualRouteDistanceAt(t);
    update.position = route.PointAt(update.route_distance);
    update.direction = motion_.DirectionAt(t);
    update.speed = declared_speed;
    return update;
  }

  core::ObjectId id_;
  Motion motion_;
  std::unique_ptr<core::UpdatePolicy> policy_;
  core::PositionAttribute attr_;
  core::DeviationTracker tracker_;
  bool initialized_ = false;
};

/// Single-route vehicle (the common case).
using Vehicle = BasicVehicle<Trip>;
/// Vehicle whose journey spans several routes.
using ItineraryVehicle = BasicVehicle<Itinerary>;

}  // namespace modb::sim

#endif  // MODB_SIM_VEHICLE_H_
