#ifndef MODB_INDEX_RTREE3_H_
#define MODB_INDEX_RTREE3_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geo/box.h"
#include "util/status.h"

namespace modb::index {

/// 3-D R*-tree over (x, y, t) time-space.
///
/// This is the hierarchical spatial access method the paper's §4.2 calls
/// for: objects are stored as 3-dimensional rectangles (o-plane
/// approximations) and range queries retrieve, in sublinear time, every
/// rectangle intersecting a query box.
///
/// The implementation follows Beckmann et al.'s R*-tree heuristics:
///   - leaf-level ChooseSubtree minimises overlap enlargement (ties broken
///     by volume enlargement, then volume),
///   - node splits pick the axis with the smallest margin sum, then the
///     distribution with the smallest overlap (ties by volume).
/// Forced reinsertion is not implemented; deletions use the classical
/// condense-tree + reinsert of orphaned entries.
///
/// Concurrent reads: `Search` / `SearchValues` and the size accessors are
/// genuinely const (no internal caches), so any number of threads may
/// query simultaneously provided no mutation is in flight; writers need
/// external exclusion.
class RTree3 {
 public:
  struct Options {
    /// Maximum entries per node (fan-out). Must be >= 4.
    std::size_t max_entries = 16;
    /// Minimum entries per node after a split / before condensing.
    /// Must satisfy 2 <= min_entries <= max_entries / 2.
    std::size_t min_entries = 6;
  };

  using Value = std::uint64_t;
  /// Visitor for Search; return value is ignored.
  using Visitor = std::function<void(const geo::Box3&, Value)>;

  RTree3();
  explicit RTree3(Options options);
  ~RTree3();

  RTree3(const RTree3&) = delete;
  RTree3& operator=(const RTree3&) = delete;
  RTree3(RTree3&&) noexcept;
  RTree3& operator=(RTree3&&) noexcept;

  /// Inserts `value` with bounding box `box` (must be non-empty).
  void Insert(const geo::Box3& box, Value value);

  /// Replaces the tree contents with `entries`, packed bottom-up with the
  /// Sort-Tile-Recursive (STR) algorithm: O(n log n) and produces nearly
  /// full, well-clustered nodes — much faster than repeated `Insert` for
  /// the initial fleet load (benchmarked in E8b / exp_bulk_load).
  void BulkLoad(std::vector<std::pair<geo::Box3, Value>> entries);

  /// Removes the entry that was inserted with exactly this `box` and
  /// `value`. Returns false when no such entry exists.
  bool Remove(const geo::Box3& box, Value value);

  /// Calls `visitor` for every stored entry whose box intersects `query`.
  void Search(const geo::Box3& query, const Visitor& visitor) const;

  /// Convenience: collects the values of all intersecting entries
  /// (duplicates possible when a value was inserted under several boxes).
  std::vector<Value> SearchValues(const geo::Box3& query) const;

  /// Number of stored (box, value) entries.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 for a single leaf).
  std::size_t height() const;

  /// Number of nodes (for index-size accounting in benchmarks).
  std::size_t num_nodes() const;

  /// Removes all entries.
  void Clear();

  /// Validates the structural invariants (entry counts, bounding boxes,
  /// uniform leaf depth). Used by tests.
  util::Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry;

  Node* ChooseSubtree(const geo::Box3& box, std::size_t target_level) const;
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);
  bool RemoveRec(Node* node, const geo::Box3& box, Value value,
                 std::vector<Entry>* orphans);
  void CondenseAfterRemove(Node* node, std::vector<Entry>* orphans);
  void InsertEntryAtLevel(Entry entry, std::size_t level);

  Options options_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace modb::index

#endif  // MODB_INDEX_RTREE3_H_
