#ifndef MODB_INDEX_RTREE3_H_
#define MODB_INDEX_RTREE3_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "geo/box.h"
#include "index/epoch.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "util/metrics.h"
#include "util/status.h"

namespace modb::index {

/// 3-D R*-tree over (x, y, t) time-space.
///
/// This is the hierarchical spatial access method the paper's §4.2 calls
/// for: objects are stored as 3-dimensional rectangles (o-plane
/// approximations) and range queries retrieve, in sublinear time, every
/// rectangle intersecting a query box.
///
/// The implementation follows Beckmann et al.'s R*-tree heuristics:
///   - leaf-level ChooseSubtree minimises overlap enlargement (ties broken
///     by volume enlargement, then volume),
///   - node splits pick the axis with the smallest margin sum, then the
///     distribution with the smallest overlap (ties by volume).
/// Forced reinsertion is not implemented; deletions use the classical
/// condense-tree + reinsert of orphaned entries.
///
/// Node layout: nodes store their entries in structure-of-arrays form —
/// six coordinate arrays plus a word array — so the per-node intersection
/// test is one batched compare over contiguous doubles
/// (`soa::IntersectBoxes`, auto-vectorized) instead of a pointer-chasing
/// loop over box structs. Nodes carry no parent links; the mutation paths
/// operate on explicit root-to-leaf paths.
///
/// Node storage: nodes are not heap objects linked by pointers — they are
/// pages addressed by `NodeId` and resolved through a `storage::BufferPool`
/// in front of a `storage::IStorageManager`. With the default in-memory
/// manager and an unbounded pool nothing is ever evicted or serialised; with
/// a disk manager and a bounded pool the tree's RAM footprint is the pool,
/// not the index.
///
/// Concurrent reads — two regimes:
///   - Resident mode (in-memory backend, unbounded pool, and
///     `Options::concurrent_reads`, all defaults): `Search` /
///     `SearchValues` are lock-free and safe *concurrently with a writer*.
///     Mutations are copy-on-write — a writer path-copies every node it
///     changes into fresh pages, publishes the new root atomically, and
///     retires the replaced pages behind an epoch-based grace period
///     (`epoch::EpochManager`), so readers always traverse an immutable
///     snapshot. Writers still need external mutual exclusion among
///     themselves. `BeginWriteBatch` / `EndWriteBatch` defer publication so
///     a multi-step mutation (an upsert's removes + inserts) becomes
///     visible to readers atomically.
///   - Paged mode (disk backend or bounded pool): mutations are in-place
///     and readers need the historical contract — any number of threads
///     may query simultaneously provided no mutation is in flight.
/// `size()`, `splits()` and `pool_stats()` are safe to call concurrently
/// with anything (atomic counters / internally locked pool);
/// `height()` / `num_nodes()` / `CheckInvariants()` keep the
/// no-mutation-in-flight requirement in both modes.
///
/// Failure model: the in-memory backend cannot fail, but a disk backend
/// can (injected faults, full disk). Because the classic R-tree API is
/// void/bool, storage errors poison the tree instead of being returned
/// per-call: `storage_status()` turns sticky-non-OK, mutations become
/// no-ops, searches return what is reachable (lock-free searches return
/// nothing — a poisoned resident tree stops publishing). `TimeSpaceIndex`
/// surfaces the poison as a `Status` on its own API; `Clear()` (which
/// resets the backing store) is the recovery path — on a poisoned tree it
/// requires readers to be quiesced, since recovery drops every page.
class RTree3 {
 public:
  struct Options {
    /// Maximum entries per node (fan-out). Must be >= 4.
    std::size_t max_entries = 16;
    /// Minimum entries per node after a split / before condensing.
    /// Must satisfy 2 <= min_entries <= max_entries / 2.
    std::size_t min_entries = 6;
    /// Page store for the nodes. Default: in-memory, unbounded pool.
    storage::StorageConfig storage;
    /// Enable the copy-on-write / epoch read scheme when the storage
    /// permits it (in-memory backend, unbounded pool). Turn off for trees
    /// that are never queried concurrently with writers (the velocity
    /// bands do) to keep the historical in-place mutation cost.
    bool concurrent_reads = true;
  };

  using Value = std::uint64_t;
  using NodeId = storage::PageId;
  /// Visitor for Search; return value is ignored.
  using Visitor = std::function<void(const geo::Box3&, Value)>;

  RTree3();
  explicit RTree3(Options options);
  ~RTree3();

  RTree3(const RTree3&) = delete;
  RTree3& operator=(const RTree3&) = delete;
  /// Moves require the source to be quiesced (no concurrent readers or
  /// writers) — they reseat atomics non-atomically.
  RTree3(RTree3&&) noexcept;
  RTree3& operator=(RTree3&&) noexcept;

  /// Inserts `value` with bounding box `box` (must be non-empty).
  void Insert(const geo::Box3& box, Value value);

  /// Replaces the tree contents with `entries`, packed bottom-up with the
  /// Sort-Tile-Recursive (STR) algorithm: O(n log n) and produces nearly
  /// full, well-clustered nodes — much faster than repeated `Insert` for
  /// the initial fleet load (benchmarked in E8b / exp_bulk_load). In
  /// resident mode the packed tree is built aside and swapped in with one
  /// root publication, so concurrent readers see either the old contents
  /// or the new, never a partial load.
  void BulkLoad(std::vector<std::pair<geo::Box3, Value>> entries);

  /// Removes the entry that was inserted with exactly this `box` and
  /// `value`. Returns false when no such entry exists.
  bool Remove(const geo::Box3& box, Value value);

  /// Calls `visitor` for every stored entry whose box intersects `query`.
  void Search(const geo::Box3& query, const Visitor& visitor) const;

  /// Convenience: collects the values of all intersecting entries
  /// (duplicates possible when a value was inserted under several boxes).
  std::vector<Value> SearchValues(const geo::Box3& query) const;

  /// True when this tree runs the copy-on-write / epoch scheme, i.e.
  /// `Search` / `SearchValues` are lock-free and safe concurrently with a
  /// (single, externally serialised) writer.
  bool concurrent_reads() const { return resident_; }

  /// Defers publication of mutations to concurrent readers until the
  /// matching `EndWriteBatch`, making the batch atomic to them (no state
  /// where an upsert's removes are visible but its inserts are not).
  /// Nestable; no-ops outside resident mode. Prefer `BatchScope`.
  void BeginWriteBatch();
  void EndWriteBatch();

  /// RAII `BeginWriteBatch` / `EndWriteBatch` bracket.
  class BatchScope {
   public:
    explicit BatchScope(RTree3& tree) : tree_(tree) {
      tree_.BeginWriteBatch();
    }
    ~BatchScope() { tree_.EndWriteBatch(); }
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

   private:
    RTree3& tree_;
  };

  /// Number of stored (box, value) entries. Safe to read concurrently with
  /// mutations (the value is exact between operations, momentarily stale
  /// within one).
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  /// Height of the tree (1 for a single leaf; 0 when poisoned).
  std::size_t height() const;

  /// Number of nodes (for index-size accounting in benchmarks).
  std::size_t num_nodes() const;

  /// Removes all entries. In healthy resident mode this publishes a fresh
  /// empty root and retires the old tree (safe under concurrent readers);
  /// otherwise it resets the backing store, which is also the recovery
  /// path after a storage poison (readers must be quiesced then).
  void Clear();

  /// Writes every dirty node page back and commits the storage manager.
  /// The checkpoint protocol calls this before snapshotting so a published
  /// checkpoint's page file covers the tree it snapshotted.
  util::Status FlushStorage();

  /// Sticky storage-layer error (see the failure model above); OK for the
  /// in-memory backend.
  util::Status storage_status() const;

  /// Registers per-tree I/O and split instruments under `prefix`
  /// (`<prefix>splits`, `<prefix>pages.hits|misses|evictions|writebacks|
  /// reads|writes`, gauge `<prefix>pages.frames`). Several trees may share
  /// a prefix (the velocity bands do): counters aggregate by delta.
  void SetMetrics(util::MetricsRegistry* registry, const std::string& prefix);

  storage::BufferPoolStats pool_stats() const { return pool_->stats(); }
  storage::StorageStats storage_stats() const { return storage_->stats(); }
  const storage::IStorageManager& storage_manager() const { return *storage_; }
  std::size_t pool_frames() const { return pool_->num_frames(); }
  /// Node splits performed. Concurrent-read-safe like `size()`.
  std::uint64_t splits() const {
    return splits_.load(std::memory_order_relaxed);
  }

  /// Pages retired by copy-on-write mutations and not yet reclaimed (their
  /// grace period still covers an active reader epoch). 0 outside resident
  /// mode. Exposed for the epoch-reclamation tests.
  std::size_t retired_pages() const { return retired_.size(); }

  /// Validates the structural invariants (entry counts, bounding boxes,
  /// uniform leaf depth, resident child pointers). Also fails when the
  /// tree is poisoned. Used by tests.
  util::Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry;
  struct Pinned;

  static util::Status EncodeNode(const void* object, std::string* out);
  static util::Result<std::shared_ptr<void>> DecodeNode(
      std::string_view bytes);
  static storage::PageCodec NodeCodec();

  Pinned Pin(NodeId id) const;
  Pinned AllocNode(std::uint32_t level);
  /// Appends (box, word) to `node`, resolving the resident child pointer
  /// for internal entries. Returns false on storage failure.
  bool AppendEntry(Node* node, const geo::Box3& box, std::uint64_t word);
  /// Index of the slot in `node` whose word is `child` (npos = poisoned).
  std::size_t FindChildSlot(const Node& node, NodeId child) const;
  /// Drops a node that left the tree: frees it immediately when it was
  /// never published (or outside resident mode), otherwise defers the free
  /// to the epoch scheme.
  void RetireOrFree(NodeId id);
  void Poison(const util::Status& status) const;

  /// Root-to-target descent (R* ChooseSubtree scoring); returns the id
  /// path, empty on storage failure.
  std::vector<NodeId> ChoosePath(const geo::Box3& box,
                                 std::size_t target_level) const;
  /// Resident mode: path-copies every non-fresh node on `path` into new
  /// pages (ids updated in place) so subsequent in-place mutation never
  /// touches a published node. No-op in paged mode.
  void MakePathWritable(std::vector<NodeId>* path);
  void SplitAlongPath(std::vector<NodeId>& path, std::size_t depth);
  void AdjustPathBoxes(const std::vector<NodeId>& path, std::size_t depth);
  void CondenseAlongPath(const std::vector<NodeId>& path,
                         std::vector<Entry>* orphans);
  void InsertEntryAtLevel(const Entry& entry, std::size_t level);
  /// Depth-first match search for `Remove`; on success `path` holds the
  /// root-to-leaf id path and `entry_index` the slot within the leaf.
  bool FindRemovePath(NodeId id, const geo::Box3& box, Value value,
                      std::vector<NodeId>* path,
                      std::size_t* entry_index) const;
  /// STR-packs `level_entries` (leaf entries on entry) bottom-up into fresh
  /// nodes; returns the new root id or kInvalidPageId on storage failure.
  NodeId BuildPacked(std::vector<Entry>* level_entries);

  /// Retires every node reachable from the current root (resident
  /// tree-swap operations: Clear, BulkLoad).
  void RetireReachable();
  /// Resident mode: publishes the current root to readers, tags the
  /// pending retirements, advances the epoch and reclaims what is past its
  /// grace period. Deferred while a write batch is open.
  void Publish();
  void MaybePublish();
  void ReclaimRetired();

  void SearchResident(const geo::Box3& query, const Visitor& visitor) const;
  void SearchPaged(const geo::Box3& query, const Visitor& visitor) const;

  void SyncMetrics() const;
  bool healthy() const;

  struct Instruments {
    util::Counter* splits = nullptr;
    util::Counter* hits = nullptr;
    util::Counter* misses = nullptr;
    util::Counter* evictions = nullptr;
    util::Counter* writebacks = nullptr;
    util::Counter* reads = nullptr;
    util::Counter* writes = nullptr;
    util::Gauge* frames = nullptr;
  };
  struct Pushed {
    std::uint64_t splits = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::int64_t frames = 0;
  };
  /// Shared mutable state the const query paths may touch concurrently
  /// (poison writes, metric-delta baselines). Behind a `shared_ptr` so the
  /// tree stays movable (`std::mutex` is not).
  struct ControlBlock {
    std::mutex mu;
    util::Status status;
    /// Mirrors `status.ok()` for the lock-free read path, which must not
    /// take `mu`.
    std::atomic<bool> poisoned{false};
    Pushed pushed;
  };

  /// One copy-on-write retirement awaiting its grace period.
  struct RetiredPage {
    std::uint64_t tag = 0;
    NodeId id = storage::kInvalidPageId;
  };

  Options options_;
  std::unique_ptr<storage::IStorageManager> storage_;
  mutable std::unique_ptr<storage::BufferPool> pool_;
  NodeId root_ = storage::kInvalidPageId;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> splits_{0};
  std::shared_ptr<ControlBlock> ctl_;
  Instruments instruments_;

  // ---- Resident concurrent-read machinery (see the class comment) ----
  bool resident_ = false;
  /// Root of the snapshot readers traverse; stores happen in `Publish`.
  std::atomic<const Node*> pub_root_{nullptr};
  std::unique_ptr<epoch::EpochManager> epochs_;
  /// Pages created since the last publication: still private to the
  /// writer, mutable in place, freeable without a grace period.
  std::unordered_set<NodeId> fresh_;
  /// Published pages unlinked by the current write (batch); tagged and
  /// moved to `retired_` at publication.
  std::vector<NodeId> pending_retire_;
  std::vector<RetiredPage> retired_;
  std::size_t batch_depth_ = 0;
};

}  // namespace modb::index

#endif  // MODB_INDEX_RTREE3_H_
