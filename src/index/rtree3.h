#ifndef MODB_INDEX_RTREE3_H_
#define MODB_INDEX_RTREE3_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "geo/box.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "util/metrics.h"
#include "util/status.h"

namespace modb::index {

/// 3-D R*-tree over (x, y, t) time-space.
///
/// This is the hierarchical spatial access method the paper's §4.2 calls
/// for: objects are stored as 3-dimensional rectangles (o-plane
/// approximations) and range queries retrieve, in sublinear time, every
/// rectangle intersecting a query box.
///
/// The implementation follows Beckmann et al.'s R*-tree heuristics:
///   - leaf-level ChooseSubtree minimises overlap enlargement (ties broken
///     by volume enlargement, then volume),
///   - node splits pick the axis with the smallest margin sum, then the
///     distribution with the smallest overlap (ties by volume).
/// Forced reinsertion is not implemented; deletions use the classical
/// condense-tree + reinsert of orphaned entries.
///
/// Node storage: nodes are not heap objects linked by pointers — they are
/// pages addressed by `NodeId` and resolved through a `storage::BufferPool`
/// in front of a `storage::IStorageManager`. With the default in-memory
/// manager and an unbounded pool nothing is ever evicted or serialised, so
/// behaviour and performance match the historical heap-owned nodes; with a
/// disk manager and a bounded pool the tree's RAM footprint is the pool,
/// not the index.
///
/// Failure model: the in-memory backend cannot fail, but a disk backend
/// can (injected faults, full disk). Because the classic R-tree API is
/// void/bool, storage errors poison the tree instead of being returned
/// per-call: `storage_status()` turns sticky-non-OK, mutations become
/// no-ops, searches return what is reachable. `TimeSpaceIndex` surfaces
/// the poison as a `Status` on its own API; `Clear()` (which resets the
/// backing store) is the recovery path.
///
/// Concurrent reads: `Search` / `SearchValues` and the size accessors do
/// not mutate tree structure, and the buffer pool is internally
/// synchronised, so any number of threads may query simultaneously
/// provided no mutation is in flight; writers need external exclusion.
class RTree3 {
 public:
  struct Options {
    /// Maximum entries per node (fan-out). Must be >= 4.
    std::size_t max_entries = 16;
    /// Minimum entries per node after a split / before condensing.
    /// Must satisfy 2 <= min_entries <= max_entries / 2.
    std::size_t min_entries = 6;
    /// Page store for the nodes. Default: in-memory, unbounded pool.
    storage::StorageConfig storage;
  };

  using Value = std::uint64_t;
  using NodeId = storage::PageId;
  /// Visitor for Search; return value is ignored.
  using Visitor = std::function<void(const geo::Box3&, Value)>;

  RTree3();
  explicit RTree3(Options options);
  ~RTree3();

  RTree3(const RTree3&) = delete;
  RTree3& operator=(const RTree3&) = delete;
  RTree3(RTree3&&) noexcept;
  RTree3& operator=(RTree3&&) noexcept;

  /// Inserts `value` with bounding box `box` (must be non-empty).
  void Insert(const geo::Box3& box, Value value);

  /// Replaces the tree contents with `entries`, packed bottom-up with the
  /// Sort-Tile-Recursive (STR) algorithm: O(n log n) and produces nearly
  /// full, well-clustered nodes — much faster than repeated `Insert` for
  /// the initial fleet load (benchmarked in E8b / exp_bulk_load).
  void BulkLoad(std::vector<std::pair<geo::Box3, Value>> entries);

  /// Removes the entry that was inserted with exactly this `box` and
  /// `value`. Returns false when no such entry exists.
  bool Remove(const geo::Box3& box, Value value);

  /// Calls `visitor` for every stored entry whose box intersects `query`.
  void Search(const geo::Box3& query, const Visitor& visitor) const;

  /// Convenience: collects the values of all intersecting entries
  /// (duplicates possible when a value was inserted under several boxes).
  std::vector<Value> SearchValues(const geo::Box3& query) const;

  /// Number of stored (box, value) entries.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 for a single leaf; 0 when poisoned).
  std::size_t height() const;

  /// Number of nodes (for index-size accounting in benchmarks).
  std::size_t num_nodes() const;

  /// Removes all entries and resets the backing store (also the recovery
  /// path after a storage poison).
  void Clear();

  /// Writes every dirty node page back and commits the storage manager.
  /// The checkpoint protocol calls this before snapshotting so a published
  /// checkpoint's page file covers the tree it snapshotted.
  util::Status FlushStorage();

  /// Sticky storage-layer error (see the failure model above); OK for the
  /// in-memory backend.
  util::Status storage_status() const;

  /// Registers per-tree I/O and split instruments under `prefix`
  /// (`<prefix>splits`, `<prefix>pages.hits|misses|evictions|writebacks|
  /// reads|writes`, gauge `<prefix>pages.frames`). Several trees may share
  /// a prefix (the velocity bands do): counters aggregate by delta.
  void SetMetrics(util::MetricsRegistry* registry, const std::string& prefix);

  storage::BufferPoolStats pool_stats() const { return pool_->stats(); }
  storage::StorageStats storage_stats() const { return storage_->stats(); }
  const storage::IStorageManager& storage_manager() const { return *storage_; }
  std::size_t pool_frames() const { return pool_->num_frames(); }
  std::uint64_t splits() const { return splits_; }

  /// Validates the structural invariants (entry counts, bounding boxes,
  /// uniform leaf depth, parent links). Also fails when the tree is
  /// poisoned. Used by tests.
  util::Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry;
  struct Pinned;

  static util::Status EncodeNode(const void* object, std::string* out);
  static util::Result<std::shared_ptr<void>> DecodeNode(
      std::string_view bytes);
  static storage::PageCodec NodeCodec();

  Pinned Pin(NodeId id) const;
  Pinned AllocNode(std::uint32_t level, NodeId parent);
  void FreeNode(NodeId id);
  void Poison(const util::Status& status) const;

  NodeId ChooseSubtree(const geo::Box3& box, std::size_t target_level) const;
  void SplitNode(NodeId node_id);
  void AdjustUpward(NodeId node_id);
  void CondenseAfterRemove(NodeId node_id, std::vector<Entry>* orphans);
  void InsertEntryAtLevel(Entry entry, std::size_t level);
  void SyncMetrics() const;

  bool healthy() const;

  struct Instruments {
    util::Counter* splits = nullptr;
    util::Counter* hits = nullptr;
    util::Counter* misses = nullptr;
    util::Counter* evictions = nullptr;
    util::Counter* writebacks = nullptr;
    util::Counter* reads = nullptr;
    util::Counter* writes = nullptr;
    util::Gauge* frames = nullptr;
  };
  struct Pushed {
    std::uint64_t splits = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::int64_t frames = 0;
  };
  /// Shared mutable state the const query paths may touch concurrently
  /// (poison writes, metric-delta baselines). Behind a `shared_ptr` so the
  /// tree stays movable (`std::mutex` is not).
  struct ControlBlock {
    std::mutex mu;
    util::Status status;
    Pushed pushed;
  };

  Options options_;
  std::unique_ptr<storage::IStorageManager> storage_;
  mutable std::unique_ptr<storage::BufferPool> pool_;
  NodeId root_ = storage::kInvalidPageId;
  std::size_t size_ = 0;
  std::uint64_t splits_ = 0;
  std::shared_ptr<ControlBlock> ctl_;
  Instruments instruments_;
};

}  // namespace modb::index

#endif  // MODB_INDEX_RTREE3_H_
