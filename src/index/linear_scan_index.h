#ifndef MODB_INDEX_LINEAR_SCAN_INDEX_H_
#define MODB_INDEX_LINEAR_SCAN_INDEX_H_

#include <unordered_map>

#include "geo/route_network.h"
#include "index/object_index.h"

namespace modb::index {

/// Baseline access method: examine every object (the paper's strawman the
/// sublinear index is measured against). Returns each object whose current
/// uncertainty-interval bounding box intersects the query region's box.
///
/// Satisfies the `ObjectIndex` thread-compatibility contract: the const
/// query paths only read `attrs_`, so concurrent readers are safe under a
/// shared lock.
class LinearScanIndex final : public ObjectIndex {
 public:
  /// `network` must outlive the index.
  explicit LinearScanIndex(const geo::RouteNetwork* network)
      : network_(network) {}

  util::Status Upsert(core::ObjectId id,
                      const core::PositionAttribute& attr) override {
    // Same unknown-route contract as the tree indexes: a handled error
    // that leaves the index unchanged.
    if (const auto route = network_->FindRoute(attr.route); !route.ok()) {
      return route.status();
    }
    attrs_[id] = attr;
    return util::Status::Ok();
  }
  void Remove(core::ObjectId id) override { attrs_.erase(id); }
  util::Status ApplyDeltaBatch(const std::vector<IndexDelta>& deltas) override {
    // Validate every row first so a failure leaves the index unchanged.
    for (const IndexDelta& delta : deltas) {
      if (delta.attr == nullptr) continue;
      if (const auto route = network_->FindRoute(delta.attr->route);
          !route.ok()) {
        return route.status();
      }
    }
    for (const IndexDelta& delta : deltas) {
      if (delta.attr == nullptr) {
        attrs_.erase(delta.id);
      } else {
        attrs_[delta.id] = *delta.attr;
      }
    }
    return util::Status::Ok();
  }
  std::vector<core::ObjectId> Candidates(const geo::Polygon& region,
                                         core::Time t) const override;
  std::vector<core::ObjectId> CandidatesInWindow(const geo::Polygon& region,
                                                 core::Time t1,
                                                 core::Time t2) const override;
  std::string_view name() const override { return "scan"; }
  std::size_t num_objects() const override { return attrs_.size(); }
  std::size_t num_entries() const override { return attrs_.size(); }

 private:
  const geo::RouteNetwork* network_;
  std::unordered_map<core::ObjectId, core::PositionAttribute> attrs_;
};

}  // namespace modb::index

#endif  // MODB_INDEX_LINEAR_SCAN_INDEX_H_
